(* The paper's headline surprise (Theorem 1.7): in dynamic networks,
   neither of the synchronous and asynchronous algorithms dominates the
   other — G1 makes async linear while sync stays logarithmic, and G2
   does the exact opposite.

   Run with:  dune exec examples/dichotomy.exe *)

open Rumor_core.Rumor

let measure net seed =
  let rng = Rng.create seed in
  let a = Run.async_spread_times ~reps:60 rng net in
  let s = Run.sync_spread_rounds ~reps:30 rng net in
  ( Quantile.quantile a.Run.times 0.9,
    Descriptive.mean s.Run.times )

let () =
  let n = 512 in
  Printf.printf "n = %d, ln n = %.1f\n\n" n (log (float_of_int n));

  (* G1: clique with a pendant source, then two bridged cliques.  The
     synchronous round 0 *deterministically* pushes the rumor off the
     pendant; the asynchronous clocks miss that window with constant
     probability and then face a Theta(1/n)-rate bridge. *)
  let g1 = Dichotomy.g1 ~n in
  let a1, s1 = measure g1 1 in
  Printf.printf "G1 (Fig 1a): async q90 = %7.1f   sync mean = %5.1f rounds\n" a1 s1;
  Printf.printf "             -> async/sync = %.1fx (async pays Omega(n))\n\n"
    (a1 /. s1);

  (* G2: the re-centering star.  The synchronous algorithm can inform
     only the fresh centre each round (a node informed mid-round cannot
     relay), so it needs exactly n rounds; the asynchronous clocks
     finish in Theta(log n). *)
  let g2 = Dichotomy.g2 ~n in
  let a2, s2 = measure g2 2 in
  Printf.printf "G2 (Fig 1b): async q90 = %7.1f   sync mean = %5.1f rounds\n" a2 s2;
  Printf.printf "             -> sync/async = %.1fx (sync pays exactly n)\n\n"
    (s2 /. a2);

  Printf.printf
    "conclusion: in dynamic networks the spread times of the two algorithms \
     are\nincomparable in general — the static coupling Ta = O(Ts + log n) of \
     Giakkoupis\net al. [16] does not survive network dynamics.\n"
