(* Rumor spreading on social-network topologies — the setting behind
   "social networks spread rumors in sublogarithmic time" (Doerr, Fouz
   & Friedrich [12], cited in the paper's introduction).  We compare
   three 200-node topologies of equal average degree:

   - Barabási–Albert preferential attachment (heavy-tailed hubs),
   - Watts–Strogatz small world (local clustering + shortcuts),
   - a random regular graph (the degree-homogeneous control),

   both as static networks and under per-step edge dropout (people
   are not always reachable), and read the result through the paper's
   lens: hubs buy speed but cost diligence — the absolute diligence
   rho_bar of the BA graph is an order of magnitude worse, which is
   exactly the quantity Theorem 1.3 charges for.

   Run with:  dune exec examples/social_gossip.exe *)

open Rumor_core.Rumor

let () =
  let n = 200 in
  let rng = Rng.create 5 in
  let ba = Gen.barabasi_albert rng n 3 in
  let ws = Gen.watts_strogatz rng n 3 0.1 in
  let reg = Gen.random_connected_regular rng n 6 in
  let table =
    Table.create
      ~aligns:Table.[ Left; Right; Right; Right; Right; Right ]
      [ "topology"; "max deg"; "rho_bar"; "spread mean"; "q90"; "with 50% dropout" ]
  in
  List.iter
    (fun (label, g) ->
      let net = Dynet.of_static ~name:label g in
      let mc = Run.async_spread_times ~reps:50 rng net in
      let summary = Summary.of_samples mc.Run.times in
      let lossy = Combinators.with_edge_dropout ~p:0.5 net in
      let mc_lossy = Run.async_spread_times ~reps:50 ~horizon:1e4 rng lossy in
      Table.add_row table
        [
          label;
          Table.cell_i (Graph.max_degree g);
          Table.cell_g (Metrics.absolute_diligence g);
          Table.cell_f summary.Summary.mean;
          Table.cell_f summary.Summary.q90;
          Table.cell_f (Descriptive.mean mc_lossy.Run.times);
        ])
    [
      ("Barabasi-Albert m=3", ba);
      ("Watts-Strogatz k=3 b=0.1", ws);
      ("random 6-regular", reg);
    ];
  Table.print
    ~title:
      (Printf.sprintf
         "asynchronous push-pull on social topologies (n = %d, avg degree ~6)"
         n)
    table;
  (* Who hears it first?  Per-node informing times vs degree on the BA
     graph: hubs should be informed systematically earlier. *)
  let r =
    Async_cut.run (Rng.split rng) (Dynet.of_static ~name:"ba" ba) ~source:0
  in
  let times = r.Async_result.informed_times in
  let by_hub = ref [] and by_leaf = ref [] in
  for u = 0 to n - 1 do
    if u <> 0 && Float.is_finite times.(u) then begin
      if Graph.degree ba u >= 10 then by_hub := times.(u) :: !by_hub
      else if Graph.degree ba u <= 3 then by_leaf := times.(u) :: !by_leaf
    end
  done;
  Printf.printf
    "BA informing latency: hubs (deg >= 10) mean %.2f vs low-degree nodes \
     (deg <= 3) mean %.2f\n\n"
    (Descriptive.mean (Array.of_list !by_hub))
    (Descriptive.mean (Array.of_list !by_leaf));
  print_endline
    "reading: the hub-heavy BA graph spreads fastest (informed hubs reach\n\
     everyone), and dropout barely slows any topology — but its absolute\n\
     diligence is an order of magnitude worse than the regular control:\n\
     high-degree nodes sit on cut edges where max(1/du, 1/dv) is tiny, the\n\
     exact effect the paper's diligence machinery prices into Theorems 1.1\n\
     and 1.3."
