(* A realistic scenario from the paper's motivation: propagating an
   update through a peer-to-peer overlay under churn.  Peers keep a
   partial view of the network that is reshuffled over time; we model
   the overlay as an edge-Markovian evolving graph (Clementi et al.
   [7], the stochastic counterpart of the paper's adversarial
   families) tuned so the stationary degree is a small constant, and
   we ask:

   - how fast does the asynchronous push-pull spread the update?
   - how does that compare with the Theorem 1.3 budget computed from
     the observed per-step parameters?
   - how robust is the spread to harsher churn (higher death rate q)?

   Run with:  dune exec examples/p2p_churn.exe *)

open Rumor_core.Rumor

let () =
  let n = 200 in
  let target_degree = 6. in
  let rng = Rng.create 7 in
  let table =
    Table.create
      ~aligns:Table.[ Right; Right; Right; Right; Right; Right ]
      [ "churn q"; "stationary deg"; "spread mean"; "spread q90"; "completed"; "T_abs budget" ]
  in
  List.iter
    (fun q ->
      (* Edge birth probability giving the wanted stationary degree:
         stationary edge prob = p/(p+q) = target/(n-1). *)
      let pi = target_degree /. float_of_int (n - 1) in
      let p = q *. pi /. (1. -. pi) in
      (* Start at stationarity so the early steps are typical. *)
      let init = Gen.erdos_renyi rng n pi in
      let net = Markovian.network ~n ~p ~q ~init () in
      let mc = Run.async_spread_times ~reps:40 ~horizon:1e4 rng net in
      let summary = Summary.of_samples mc.Run.times in
      (* Theorem 1.3 budget from the observed absolute diligence of a
         profile window (the graphs are random, so we average). *)
      let profiles = Bounds.profile ~steps:64 (Rng.split rng) net in
      let avg_rho_abs =
        Array.fold_left (fun acc pr -> acc +. pr.Bounds.rho_abs) 0. profiles
        /. 64.
      in
      let budget =
        if avg_rho_abs > 0. then
          Table.cell_f ~digits:0 (Bounds.theorem_1_3_closed_form ~n ~rho_abs:avg_rho_abs)
        else "-"
      in
      Table.add_row table
        [
          Printf.sprintf "%.2f" q;
          Table.cell_f (Markovian.stationary_edge_probability ~p ~q *. float_of_int (n - 1));
          Table.cell_f summary.Summary.mean;
          Table.cell_f summary.Summary.q90;
          Printf.sprintf "%d/%d" mc.Run.completed mc.Run.reps;
          budget;
        ])
    [ 0.05; 0.2; 0.5; 0.9 ];
  Table.print
    ~title:
      (Printf.sprintf
         "update propagation in a churning P2P overlay (n = %d, ~%.0f-degree \
          stationary views)"
         n target_degree)
    table;
  print_endline
    "reading: higher churn reshuffles views faster but keeps the stationary\n\
     degree fixed — the asynchronous algorithm barely notices, exactly the\n\
     robustness the gossip literature advertises; the Theorem 1.3 budget is\n\
     a loose but sound ceiling throughout."
