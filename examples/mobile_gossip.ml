(* Gossip between mobile agents — the paper's other motivating setting
   (mobile wireless networks, cf. Pettarin et al. [22] / Lam et al.
   [20] in its related work).  Agents random-walk on a torus grid and
   can exchange the rumor whenever they are within radio range.  The
   proximity graph is often disconnected, which exercises the paper's
   conventions rho(G) = 0 and ceil(Phi(G)) = 0 on disconnected steps:
   progress simply pauses until mobility reconnects the frontier.

   We sweep the agent density and watch the spread time fall as the
   network spends more of its time connected.

   Run with:  dune exec examples/mobile_gossip.exe *)

open Rumor_core.Rumor

let () =
  let width = 20 and height = 20 in
  let radius = 2 in
  let rng = Rng.create 11 in
  let table =
    Table.create
      ~aligns:Table.[ Right; Right; Right; Right; Right ]
      [ "agents"; "density"; "connected steps %"; "spread mean"; "completed" ]
  in
  List.iter
    (fun agents ->
      let net = Mobile.network ~agents ~width ~height ~radius in
      (* Fraction of time steps whose proximity graph is connected,
         over a 100-step observation window. *)
      let profiles = Bounds.profile ~steps:100 (Rng.split rng) net in
      let connected =
        Array.fold_left
          (fun acc p -> if p.Bounds.connected then acc + 1 else acc)
          0 profiles
      in
      let mc = Run.async_spread_times ~reps:30 ~horizon:2000. rng net in
      let summary = Summary.of_samples mc.Run.times in
      Table.add_row table
        [
          Table.cell_i agents;
          Table.cell_f (float_of_int agents /. float_of_int (width * height));
          Table.cell_i connected;
          Table.cell_f summary.Summary.mean;
          Printf.sprintf "%d/%d" mc.Run.completed mc.Run.reps;
        ])
    [ 15; 25; 40; 60 ];
  Table.print
    ~title:
      (Printf.sprintf
         "rumor spreading between mobile agents (%dx%d torus, radio radius %d)"
         width height radius)
    table;
  print_endline
    "reading: below the percolation density the proximity graph is mostly\n\
     disconnected and the rumor waits for encounters (long spread, some runs\n\
     hit the horizon); as density rises the graph is connected most steps and\n\
     the spread time collapses toward the static-expander regime."
