(* Quickstart: simulate asynchronous push-pull rumor spreading on a
   static network, measure the spread time over Monte-Carlo
   repetitions, and compare against the paper's Theorem 1.1 and
   Theorem 1.3 upper bounds.

   Run with:  dune exec examples/quickstart.exe *)

open Rumor_core.Rumor

let () =
  let n = 256 in
  let rng = Rng.create 42 in

  (* 1. Build a network: a random 8-regular graph (an expander). *)
  let graph = Gen.random_connected_regular rng n 8 in
  Printf.printf "network: random 8-regular, n = %d, m = %d\n" (Graph.n graph)
    (Graph.m graph);

  (* 2. Its parameters: conductance (spectral estimate), diligence
        (exactly 1 on regular graphs) and absolute diligence. *)
  let phi = Spectral.conductance_sweep (Rng.split rng) graph in
  let rho = 1.0 (* regular graphs are 1-diligent *) in
  let rho_abs = Metrics.absolute_diligence graph in
  Printf.printf "parameters: Phi ~ %.3f, rho = %.1f, rho_bar = %.3f\n" phi rho
    rho_abs;

  (* 3. Wrap it as a (constant) dynamic network and run the
        asynchronous algorithm 100 times. *)
  let net = Dynet.of_static ~phi ~rho ~rho_abs graph in
  let mc = Run.async_spread_times ~reps:100 rng net in
  let summary = Summary.of_samples mc.Run.times in
  Printf.printf "asynchronous spread time over %d runs:\n  %s\n" mc.Run.reps
    (Format.asprintf "%a" Summary.pp summary);

  (* 4. One traced run: the classic S-curve of gossip, plus the
        Lemma 3.1 phase structure. *)
  let traced = Async_cut.run ~record_trace:true (Rng.split rng) net ~source:0 in
  let trace = traced.Async_result.trace in
  print_string
    (Ascii_plot.render ~height:12 ~title:"informed count over time (one run)"
       [
         {
           Ascii_plot.label = '*';
           points =
             Array.to_list (Array.map (fun (t, c) -> (t, float_of_int c)) trace);
         };
       ]);
  Printf.printf "doubling phases: %d (a-priori bound %d)\n\n"
    (List.length (Trace.doubling_phases trace ~n))
    (Trace.phase_count_bound ~n);

  (* 5. Compare with the paper's bounds. *)
  let t11 = Bounds.theorem_1_1_closed_form ~c:1. ~n ~phi_rho:(phi *. rho) in
  let t13 = Bounds.theorem_1_3_closed_form ~n ~rho_abs in
  Printf.printf "Theorem 1.1 bound T(G,1) = %.0f   (measured q99 = %.2f)\n" t11
    summary.Summary.q99;
  Printf.printf "Theorem 1.3 bound T_abs = %.0f\n" t13;
  Printf.printf "both hold: %b\n"
    (summary.Summary.max <= t11 && summary.Summary.max <= t13)
