(* Watching the cut rate live — a tour of the stepping interface.

   The paper's whole analysis is about the informing rate
   lambda(tau) = sum over cut edges of (1/d_u + 1/d_v): Theorem 1.1
   lower-bounds it through conductance and diligence, and the tight
   constructions are exactly the networks that keep it pinned down.
   The Async_cut stepping interface exposes every informing event, so
   we can watch lambda collapse when the rumor hits a bottleneck.

   We compare a clique (no bottleneck: the rate peaks mid-spread) with
   a barbell (two cliques + one bridge: the rate crashes to
   ~2 * 2/n while the rumor waits at the bridge).

   Run with:  dune exec examples/bottleneck.exe *)

open Rumor_core.Rumor

(* Drive a run through the stepping interface, recording the
   inter-informing gaps and the informed count at each event. *)
let gaps net seed =
  let e = Async_cut.create (Rng.create seed) net ~source:0 in
  let out = ref [] in
  let last = ref 0. in
  let rec drive () =
    match Async_cut.next_event e with
    | Async_cut.Complete _ -> List.rev !out
    | Async_cut.Informed (_, t) ->
      out := (Async_cut.informed_count e, t -. !last) :: !out;
      last := t;
      drive ()
    | Async_cut.Step_boundary _ -> drive ()
  in
  drive ()

let () =
  let n = 64 in
  let clique = Dynet.of_static ~name:"clique" (Gen.clique (2 * n)) in
  let barbell = Dynet.of_static ~name:"barbell" (Gen.barbell n) in
  let show label net =
    let g = gaps net 7 in
    (* Largest single wait and where it happened. *)
    let worst_count, worst_gap =
      List.fold_left
        (fun (bc, bg) (c, gap) -> if gap > bg then (c, gap) else (bc, bg))
        (0, 0.) g
    in
    let total = List.fold_left (fun acc (_, gap) -> acc +. gap) 0. g in
    Printf.printf
      "%-8s spread %.2f; longest single wait %.2f (%.0f%% of the run) while \
       %d/%d informed\n"
      label total worst_gap
      (100. *. worst_gap /. total)
      worst_count (2 * n);
    (* Plot the instantaneous rate (1/gap) against informed count. *)
    let points =
      List.filter_map
        (fun (c, gap) ->
          if gap > 1e-9 then Some (float_of_int c, 1. /. gap) else None)
        g
    in
    print_string
      (Ascii_plot.render ~height:10 ~logy:true
         ~title:
           (Printf.sprintf
              "%s: informing rate (1/gap, log scale) vs informed count" label)
         [ { Ascii_plot.label = '*'; points } ]);
    print_newline ()
  in
  show "clique" clique;
  show "barbell" barbell;
  print_endline
    "reading: on the clique the rate rises to a mid-spread maximum (the cut\n\
     I x U is largest at |I| = n); on the barbell it crashes by orders of\n\
     magnitude at half coverage — the one bridge edge, rate ~4/n, is the\n\
     paper's lambda bottleneck made visible.  Conductance sees this cut;\n\
     on degree-skewed dynamic networks only conductance *and* diligence\n\
     together do, which is Theorem 1.1's point."
