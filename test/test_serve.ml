(* Serve layer: query codec + fingerprints, the WAL-journaled LRU
   store, and the live daemon end to end — cache transparency
   (cold/warm/coalesced bit-identical to the offline sweep), streamed
   partials, overload shedding, stalled-connection drops, both wire
   framings, and WAL-backed restart. *)

open Rumor_core.Rumor

module Query = Serve.Query
module Store = Serve.Store
module Server = Serve.Server

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let str = Alcotest.string

let tmpdir () =
  let d = Filename.temp_file "rumor-test-serve" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let q32 ?(reps = 4) ?(seed = 2020) () =
  { (Query.default ~family:"clique" ~n:32) with Query.reps; seed }

(* --- query codec ------------------------------------------------- *)

let test_query_roundtrip () =
  let q =
    {
      (Query.default ~family:"er" ~n:64) with
      Query.reps = 12;
      loss = 0.1;
      crash = 0.01;
      recover = 0.2;
      slow_frac = 0.25;
      part_from = 3;
      part_until = 9;
      points = [ 0.25; 0.5; 0.75 ];
      max_events = Some 100_000;
      engine = Run.Tick;
      protocol = Protocol.Push;
    }
  in
  match Query.of_json (Query.to_json q) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok q' ->
    check bool "round trip is identity" true (q = q');
    check str "fingerprint stable" (Query.key q) (Query.key q')

let test_query_defaults_and_unknown_fields () =
  let j =
    Obs.Json.parse_exn
      {|{"op":"query","stream":true,"family":"Clique","n":32,"ignored":7}|}
  in
  match Query.of_json j with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok q ->
    check str "family lower-cased" "clique" q.Query.family;
    check int "default reps" 30 q.Query.reps;
    (* op/stream/unknown fields must not leak into the fingerprint *)
    let bare =
      Query.of_json (Obs.Json.parse_exn {|{"family":"clique","n":32}|})
      |> Result.get_ok
    in
    check str "wire-only fields don't change the key" (Query.key bare)
      (Query.key q)

let test_query_fingerprint_sensitivity () =
  let base = q32 () in
  let keys =
    List.map Query.key
      [
        base;
        { base with Query.n = 33 };
        { base with Query.seed = 2021 };
        { base with Query.reps = 5 };
        { base with Query.loss = 0.05 };
        { base with Query.points = [ 0.5 ] };
        { base with Query.protocol = Protocol.Push };
      ]
  in
  check int "all knobs distinguish" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_query_validation () =
  let bad j =
    match Query.of_json (Obs.Json.parse_exn j) with
    | Error _ -> true
    | Ok _ -> false
  in
  check bool "unknown family" true (bad {|{"family":"torus","n":32}|});
  check bool "n too small" true (bad {|{"family":"clique","n":1}|});
  check bool "bad reps" true (bad {|{"family":"clique","n":32,"reps":0}|});
  check bool "loss = 1" true (bad {|{"family":"clique","n":32,"loss":1}|});
  check bool "bad point" true
    (bad {|{"family":"clique","n":32,"points":[1.5]}|});
  check bool "missing n" true (bad {|{"family":"clique"}|})

(* --- store ------------------------------------------------------- *)

let entry ?(reps = 4) q quantiles =
  {
    Store.query = q;
    quantiles;
    reps;
    finished = reps;
    censored = 0;
    failed = 0;
    wall_s = 0.125;
  }

let test_store_persistence () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let q = q32 () in
      let fp = Query.key q in
      (* awkward constants: exact bit patterns must survive reopen *)
      let qs = [| 4.66353777474752107; 0.1 +. 0.2; 1e-300 |] in
      let s = Store.open_ ~fsync:false ~dir () in
      Store.add s fp (entry q qs);
      (match Store.find s fp with
      | None -> Alcotest.fail "find after add"
      | Some e -> check bool "same quantiles" true (e.Store.quantiles = qs));
      Store.close s;
      let s = Store.open_ ~fsync:false ~dir () in
      (match Store.find s fp with
      | None -> Alcotest.fail "find after reopen"
      | Some e ->
        check bool "bit-identical after reopen" true (e.Store.quantiles = qs);
        check bool "query survives" true (e.Store.query = q));
      check int "size" 1 (Store.size s);
      Store.close s)

let test_store_lru_eviction () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s = Store.open_ ~fsync:false ~cap:3 ~dir () in
      let queries = List.init 4 (fun i -> q32 ~seed:(3000 + i) ()) in
      let keys = List.map Query.key queries in
      List.iteri
        (fun i q ->
          (* touch key 0 before the overflowing insert: key 1 is LRU *)
          if i = 3 then ignore (Store.find s (List.nth keys 0));
          Store.add s (Query.key q) (entry q [| float_of_int i |]))
        queries;
      check int "capacity respected" 3 (Store.size s);
      check int "one eviction" 1 (Store.evictions s);
      check bool "LRU entry evicted" true
        (Store.find s (List.nth keys 1) = None);
      check bool "touched entry kept" true
        (Store.find s (List.nth keys 0) <> None);
      Store.close s;
      (* the journal replays to the same live set *)
      let s = Store.open_ ~fsync:false ~cap:3 ~dir () in
      check int "size after reopen" 3 (Store.size s);
      check bool "evicted stays evicted" true
        (Store.find s (List.nth keys 1) = None);
      Store.close s)

let test_store_compaction () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s = Store.open_ ~fsync:false ~cap:4 ~dir () in
      (* 100 inserts through a 4-entry cache: heavy eviction churn
         must trigger compaction rather than unbounded journal growth *)
      for i = 0 to 99 do
        let q = q32 ~seed:(5000 + i) () in
        Store.add s (Query.key q) (entry q [| float_of_int i |])
      done;
      Store.close s;
      let recovery = Wal.read (Filename.concat dir "results.wal") in
      check int "no corrupt records" 0 recovery.Wal.corrupt_records;
      check bool "journal compacted" true
        (List.length recovery.Wal.records < 60);
      let s = Store.open_ ~fsync:false ~cap:4 ~dir () in
      check int "live set intact" 4 (Store.size s);
      Store.close s)

(* --- live server -------------------------------------------------- *)

type client = { fd : Unix.file_descr; buf : Buffer.t }

let connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  { fd; buf = Buffer.create 256 }

let send_line c s =
  let b = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length b in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write c.fd b !written (len - !written)
  done

let send_query c ?(stream = false) q =
  let j =
    match Query.to_json q with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (fields @ if stream then [ ("stream", Obs.Json.Bool true) ] else [])
    | j -> j
  in
  send_line c (Obs.Json.to_string j)

(* Blocking line read with a test deadline, so a server bug fails the
   test instead of hanging the suite. *)
let recv_line ?(timeout_s = 60.) c =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear c.buf;
      Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
      String.sub s 0 i
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then Alcotest.fail "recv_line: timed out";
      (match Unix.select [ c.fd ] [] [] left with
      | [], _, _ -> ()
      | _ -> (
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 -> Alcotest.fail "recv_line: connection closed"
        | n -> Buffer.add_subbytes c.buf chunk 0 n));
      go ()
  in
  go ()

let recv_json ?timeout_s c = Obs.Json.parse_exn (recv_line ?timeout_s c)

let jstr field j =
  match Option.bind (Obs.Json.member field j) Obs.Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %s" field

let jint field j =
  match Option.bind (Obs.Json.member field j) Obs.Json.to_int_opt with
  | Some i -> i
  | None -> Alcotest.failf "missing int field %s" field

let hex_quantiles j =
  match Obs.Json.member "quantiles_hex" j with
  | Some (Obs.Json.List l) -> List.filter_map Obs.Json.to_string_opt l
  | _ -> Alcotest.fail "missing quantiles_hex"

let with_server config f =
  let t = Server.create config in
  let domain = Domain.spawn (fun () -> Server.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Domain.join domain)
    (fun () -> f t (Server.port t))

let offline_hex q =
  let sweep = Query.sweep ~jobs:1 q in
  Array.to_list (Run.quantiles_of_sweep sweep q.Query.points)
  |> List.map (Printf.sprintf "%h")

let test_serve_cache_transparent () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* reps 10 over chunk 4: exercises multi-chunk checkpoint resume *)
      let q = q32 ~reps:10 () in
      let expected = offline_hex q in
      let config =
        { (Server.default_config ~dir) with Server.fsync = false; chunk = 4 }
      in
      let reopened =
        with_server config (fun _t port ->
            let c = connect port in
            send_query c q;
            let cold = recv_json c in
            check str "cold is a miss" "miss" (jstr "cache" cold);
            check bool "cold quantiles = offline sweep" true
              (hex_quantiles cold = expected);
            check int "all replicates finished" 10 (jint "finished" cold);
            send_query c q;
            let warm = recv_json c in
            check str "warm is a hit" "hit" (jstr "cache" warm);
            check bool "warm bit-identical" true
              (hex_quantiles warm = expected);
            Unix.close c.fd;
            ())
      in
      ignore reopened;
      (* a restarted server serves the same bits from its journal *)
      with_server config (fun _t port ->
          let c = connect port in
          send_query c q;
          let j = recv_json c in
          check str "hit after restart" "hit" (jstr "cache" j);
          check bool "restart bit-identical" true
            (hex_quantiles j = expected);
          Unix.close c.fd))

let test_serve_coalescing () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let q = q32 ~reps:4 ~seed:4242 () in
      let config =
        {
          (Server.default_config ~dir) with
          Server.fsync = false;
          throttle_s = 0.4;
        }
      in
      with_server config (fun t port ->
          let a = connect port in
          let b = connect port in
          send_query a q;
          Unix.sleepf 0.1;
          send_query b q;
          let ra = recv_json a in
          let rb = recv_json b in
          check str "first is the miss" "miss" (jstr "cache" ra);
          check str "second coalesced" "coalesced" (jstr "cache" rb);
          check bool "coalesced bit-identical" true
            (hex_quantiles ra = hex_quantiles rb);
          let c = Server.counters t in
          check int "one coalesced" 1 c.Server.coalesced;
          check int "one miss" 1 c.Server.misses;
          Unix.close a.fd;
          Unix.close b.fd))

let test_serve_overload_shed () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let config =
        {
          (Server.default_config ~dir) with
          Server.fsync = false;
          throttle_s = 1.0;
          queue_cap = 1;
        }
      in
      with_server config (fun t port ->
          let c = connect port in
          (* distinct queries so nothing coalesces; the first occupies
             the compute domain, the rest fill then overflow the queue *)
          for i = 0 to 3 do
            send_query c (q32 ~reps:4 ~seed:(6000 + i) ())
          done;
          (* sheds are answered immediately, before the computes finish *)
          let first = recv_json c in
          check str "immediate response is the shed" "overloaded"
            (jstr "k" first);
          check int "reported capacity" 1 (jint "capacity" first);
          check bool "queue at capacity" true (jint "queue" first >= 1);
          let shed = ref 1 in
          let results = ref 0 in
          while !shed + !results < 4 do
            let j = recv_json c in
            match jstr "k" j with
            | "overloaded" -> incr shed
            | "result" -> incr results
            | k -> Alcotest.failf "unexpected response %s" k
          done;
          check bool "at least one computed" true (!results >= 1);
          let counters = Server.counters t in
          check int "shed counter matches" !shed counters.Server.shed;
          Unix.close c.fd))

let test_serve_streaming_partials () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let q = q32 ~reps:6 ~seed:777 () in
      let config =
        {
          (Server.default_config ~dir) with
          Server.fsync = false;
          chunk = 2;
          throttle_s = 0.05;
        }
      in
      with_server config (fun _t port ->
          let c = connect port in
          send_query c ~stream:true q;
          let partials = ref 0 in
          let result = ref None in
          while !result = None do
            let j = recv_json c in
            match jstr "k" j with
            | "partial" ->
              check bool "partial is a strict prefix" true
                (jint "done" j < q.Query.reps);
              incr partials
            | "result" -> result := Some j
            | k -> Alcotest.failf "unexpected response %s" k
          done;
          check bool "streamed at least one partial" true (!partials >= 1);
          check str "terminal result is the miss" "miss"
            (jstr "cache" (Option.get !result));
          Unix.close c.fd))

let test_serve_binary_framing () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let q = q32 ~reps:4 ~seed:31337 () in
      let config =
        { (Server.default_config ~dir) with Server.fsync = false }
      in
      with_server config (fun _t port ->
          let c = connect port in
          let frame = Proto.frame (Query.to_json q) in
          ignore (Unix.write c.fd frame 0 (Bytes.length frame));
          let rdr = Proto.reader () in
          let j =
            match Proto.recv c.fd rdr with
            | Some j -> j
            | None -> Alcotest.fail "no framed response"
          in
          check str "framed result" "result" (jstr "k" j);
          check str "framed miss" "miss" (jstr "cache" j);
          check bool "framed = offline" true
            (hex_quantiles j = offline_hex q);
          Unix.close c.fd))

let test_serve_stalled_drop () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let config =
        {
          (Server.default_config ~dir) with
          Server.fsync = false;
          read_timeout_s = 0.3;
        }
      in
      with_server config (fun t port ->
          let half_open = connect port in
          (* two bytes of a binary length prefix, then silence *)
          ignore (Unix.write half_open.fd (Bytes.make 2 '\001') 0 2);
          Unix.sleepf 1.0;
          check int "stalled connection counted" 1
            (Server.counters t).Server.stalled_drops;
          (* the slot is actually gone: the server closed the socket *)
          check int "dropped at the server" 0
            (Unix.read half_open.fd (Bytes.create 8) 0 8);
          (* a healthy idle connection with a clean boundary survives *)
          let healthy = connect port in
          send_line healthy {|{"op":"ping"}|};
          ignore (recv_json healthy);
          Unix.sleepf 0.6;
          send_line healthy {|{"op":"stats"}|};
          let stats = recv_json healthy in
          check int "clean-boundary conn not dropped" 1
            (jint "stalled_drops" stats);
          Unix.close half_open.fd;
          Unix.close healthy.fd))

let test_serve_rejects_bad_queries () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let config =
        {
          (Server.default_config ~dir) with
          Server.fsync = false;
          max_reps = 8;
        }
      in
      with_server config (fun _t port ->
          let c = connect port in
          send_line c {|{"family":"torus","n":32}|};
          check str "unknown family" "error" (jstr "k" (recv_json c));
          send_line c {|not json|};
          check str "malformed json" "error" (jstr "k" (recv_json c));
          send_line c {|{"family":"clique","n":32,"reps":9}|};
          let j = recv_json c in
          check str "reps above server limit" "error" (jstr "k" j);
          Unix.close c.fd))

let () =
  Alcotest.run "serve"
    [
      ( "query",
        [
          Alcotest.test_case "round trip" `Quick test_query_roundtrip;
          Alcotest.test_case "defaults / wire-only fields" `Quick
            test_query_defaults_and_unknown_fields;
          Alcotest.test_case "fingerprint sensitivity" `Quick
            test_query_fingerprint_sensitivity;
          Alcotest.test_case "validation" `Quick test_query_validation;
        ] );
      ( "store",
        [
          Alcotest.test_case "persistence" `Quick test_store_persistence;
          Alcotest.test_case "lru eviction" `Quick test_store_lru_eviction;
          Alcotest.test_case "compaction" `Quick test_store_compaction;
        ] );
      ( "server",
        [
          Alcotest.test_case "cache transparency" `Quick
            test_serve_cache_transparent;
          Alcotest.test_case "coalescing" `Quick test_serve_coalescing;
          Alcotest.test_case "overload shed" `Quick test_serve_overload_shed;
          Alcotest.test_case "streaming partials" `Quick
            test_serve_streaming_partials;
          Alcotest.test_case "binary framing" `Quick
            test_serve_binary_framing;
          Alcotest.test_case "stalled drop" `Quick test_serve_stalled_drop;
          Alcotest.test_case "bad queries" `Quick
            test_serve_rejects_bad_queries;
        ] );
    ]
