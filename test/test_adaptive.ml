(* Adaptive Monte-Carlo engine: sequential stopping, control variates,
   stratified allocation — and their wiring through Run, Estimate and
   the serve query.

   The load-bearing contracts under test:
   - the pure stopping rule (Stats.Adaptive) is correct at its edges
     and never reports a CI wider than requested when it converges;
   - the adaptive sweep's decided prefix is BIT-identical to the same
     prefix of a fixed-count sweep, for any job count — so
     checkpoints, the serve store and WAL replay stay valid;
   - the Rao-Blackwell control variate is exactly zero-mean on the
     clique (its residual is deterministic there, so the adjusted
     estimator collapses to the closed-form mean);
   - censored-heavy sweeps stop at the budget with [mean = nan] —
     never a silently understated estimate. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt = Alcotest.float 1e-9
let near tol = Alcotest.float tol

(* --- z_of_level / half_width / target --- *)

let test_z_of_level () =
  check (near 1e-3) "z(0.95)" 1.9600 (Adaptive.z_of_level 0.95);
  check (near 1e-3) "z(0.99)" 2.5758 (Adaptive.z_of_level 0.99);
  check (near 1e-3) "z(0.68) ~ 1 sigma" 0.9945 (Adaptive.z_of_level 0.68);
  Alcotest.check_raises "level 0 rejected"
    (Invalid_argument "Adaptive.z_of_level: level must lie in (0, 1)")
    (fun () -> ignore (Adaptive.z_of_level 0.));
  Alcotest.check_raises "level 1 rejected"
    (Invalid_argument "Adaptive.z_of_level: level must lie in (0, 1)")
    (fun () -> ignore (Adaptive.z_of_level 1.))

let test_half_width () =
  (* z * sd / sqrt n, with the unusable cases pinned to infinity so the
     stopping rule can never converge on them. *)
  check (near 1e-6) "basic" (1.959964 *. 2. /. 4.)
    (Adaptive.half_width ~level:0.95 ~count:16 ~sd:2.);
  check flt "count 0 is infinite" infinity
    (Adaptive.half_width ~level:0.95 ~count:0 ~sd:1.);
  check flt "count 1 is infinite" infinity
    (Adaptive.half_width ~level:0.95 ~count:1 ~sd:1.);
  check flt "nan sd is infinite" infinity
    (Adaptive.half_width ~level:0.95 ~count:10 ~sd:nan);
  check flt "zero sd converges immediately" 0.
    (Adaptive.half_width ~level:0.95 ~count:2 ~sd:0.)

let test_target () =
  let abs = Adaptive.config (Adaptive.Abs 0.25) in
  check flt "absolute target ignores mean" 0.25
    (Adaptive.target abs ~mean:123.);
  let rel = Adaptive.config (Adaptive.Rel 0.1) in
  check flt "relative target scales by |mean|" 0.5
    (Adaptive.target rel ~mean:(-5.));
  check flt "relative target at nan mean is 0" 0.
    (Adaptive.target rel ~mean:nan)

let test_config_validation () =
  Alcotest.check_raises "non-positive width"
    (Invalid_argument "Adaptive.config: width must be positive and finite") (fun () ->
      ignore (Adaptive.config (Adaptive.Abs 0.)));
  Alcotest.check_raises "min > max"
    (Invalid_argument "Adaptive.config: max_reps must be >= min_reps")
    (fun () ->
      ignore (Adaptive.config ~min_reps:10 ~max_reps:5 (Adaptive.Abs 1.)))

(* --- decide: ordering and precedence --- *)

let test_decide () =
  let c =
    Adaptive.config ~min_reps:8 ~max_reps:32 ~chunk:8 (Adaptive.Abs 0.5)
  in
  (* Tight CI but below min_reps: keep going. *)
  check bool "min_reps gates convergence" true
    (Adaptive.decide c ~consumed:4 ~used:4 ~mean:10. ~sd:0.01
     = Adaptive.Continue);
  (* Converged past min_reps. *)
  check bool "converges" true
    (Adaptive.decide c ~consumed:8 ~used:8 ~mean:10. ~sd:0.01
     = Adaptive.Stop Adaptive.Converged);
  (* Wide CI, budget left: continue. *)
  check bool "continues while wide" true
    (Adaptive.decide c ~consumed:16 ~used:16 ~mean:10. ~sd:50.
     = Adaptive.Continue);
  (* Wide CI at the budget: Budget. *)
  check bool "budget exhaustion" true
    (Adaptive.decide c ~consumed:32 ~used:32 ~mean:10. ~sd:50.
     = Adaptive.Stop Adaptive.Budget);
  (* Converged exactly at the budget: Converged wins — the estimate is
     good, the budget coincidence is irrelevant. *)
  check bool "converged at budget reports Converged" true
    (Adaptive.decide c ~consumed:32 ~used:32 ~mean:10. ~sd:0.01
     = Adaptive.Stop Adaptive.Converged);
  (* All-censored at the budget: used = 0 makes the half-width
     infinite, so the only stop is Budget. *)
  check bool "all-censored stops at budget only" true
    (Adaptive.decide c ~consumed:32 ~used:0 ~mean:nan ~sd:nan
     = Adaptive.Stop Adaptive.Budget)

(* --- the generic chunk driver --- *)

let test_run_driver () =
  (* A constant sampler converges at the first post-min_reps boundary. *)
  let c =
    Adaptive.config ~min_reps:8 ~max_reps:100 ~chunk:8 (Adaptive.Abs 0.1)
  in
  let calls = ref [] in
  let r =
    Adaptive.run c ~sample:(fun ~lo ~hi ->
        calls := (lo, hi) :: !calls;
        Array.init (hi - lo) (fun _ -> Some 5.))
  in
  check int "consumed one chunk" 8 r.Adaptive.consumed;
  check int "one batch" 1 r.Adaptive.batches;
  check bool "converged" true (r.Adaptive.reason = Adaptive.Converged);
  check flt "mean" 5. r.Adaptive.mean;
  check flt "half-width 0" 0. r.Adaptive.half_width;
  check bool "ranges are contiguous chunks" true (!calls = [ (0, 8) ]);
  (* All-censored: every chunk runs, used stays 0, reason is Budget. *)
  let r2 =
    Adaptive.run
      (Adaptive.config ~min_reps:4 ~max_reps:12 ~chunk:4 (Adaptive.Abs 0.1))
      ~sample:(fun ~lo ~hi -> Array.make (hi - lo) None)
  in
  check int "all-censored consumes the budget" 12 r2.Adaptive.consumed;
  check int "no usable sample" 0 r2.Adaptive.used;
  check bool "budget reason" true (r2.Adaptive.reason = Adaptive.Budget);
  check bool "nan mean" true (Float.is_nan r2.Adaptive.mean)

let test_run_driver_never_wider_than_target () =
  (* Deterministic pseudo-random sampler: whenever the driver reports
     Converged, the half-width it reports must be at or below the
     resolved target. *)
  let rng = Rng.create 4242 in
  for trial = 1 to 50 do
    let width = 0.05 +. Rng.float rng in
    let c =
      Adaptive.config ~min_reps:8
        ~max_reps:(64 + Rng.int rng 192)
        ~chunk:(4 + Rng.int rng 12)
        (Adaptive.Abs width)
    in
    let vals = Rng.create (trial * 7919) in
    let r =
      Adaptive.run c ~sample:(fun ~lo ~hi ->
          Array.init (hi - lo) (fun _ -> Some (10. +. Rng.float vals)))
    in
    (match r.Adaptive.reason with
    | Adaptive.Converged ->
      check bool
        (Printf.sprintf "trial %d: hw %.4f <= target %.4f" trial
           r.Adaptive.half_width width)
        true
        (r.Adaptive.half_width <= width)
    | Adaptive.Budget ->
      check int
        (Printf.sprintf "trial %d: budget exhausted" trial)
        c.Adaptive.max_reps r.Adaptive.consumed);
    check bool "consumed within budget" true
      (r.Adaptive.consumed <= c.Adaptive.max_reps
      && r.Adaptive.consumed >= min c.Adaptive.min_reps c.Adaptive.max_reps)
  done

(* --- control variates --- *)

let test_control_variate () =
  (* y = 2c + noise-free offset: a perfect linear control kills all the
     variance; beta recovers the slope. *)
  let controls = [| -2.; -1.; 0.; 1.; 2. |] in
  let values = Array.map (fun c -> 3. +. (2. *. c)) controls in
  let cv = Adaptive.control_variate ~values ~controls () in
  check (near 1e-9) "beta recovers the slope" 2. cv.Adaptive.beta;
  check (near 1e-9) "adjusted mean = raw mean (centred control)" 3.
    cv.Adaptive.mean;
  check (near 1e-9) "adjusted sd 0" 0. cv.Adaptive.sd;
  check bool "variance ratio blows up" true
    (cv.Adaptive.variance_ratio = infinity);
  (* Non-zero control mean shifts nothing when passed explicitly. *)
  let controls2 = [| 8.; 9.; 10.; 11.; 12. |] in
  let values2 = Array.map (fun c -> 3. +. (2. *. (c -. 10.))) controls2 in
  let cv2 =
    Adaptive.control_variate ~control_mean:10. ~values:values2
      ~controls:controls2 ()
  in
  check (near 1e-9) "explicit control mean preserves the estimate" 3.
    cv2.Adaptive.mean

let test_control_variate_degenerate () =
  (* Constant control: zero variance, fall back to beta = 0. *)
  let cv =
    Adaptive.control_variate ~values:[| 1.; 2.; 3. |]
      ~controls:[| 5.; 5.; 5. |] ()
  in
  check flt "degenerate beta" 0. cv.Adaptive.beta;
  check flt "degenerate ratio" 1. cv.Adaptive.variance_ratio;
  check (near 1e-9) "unadjusted mean" 2. cv.Adaptive.mean;
  (* Single sample. *)
  let cv1 = Adaptive.control_variate ~values:[| 7. |] ~controls:[| 1. |] () in
  check flt "n=1 beta" 0. cv1.Adaptive.beta;
  check (near 1e-9) "n=1 mean" 7. cv1.Adaptive.mean;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Adaptive.control_variate: length mismatch") (fun () ->
      ignore
        (Adaptive.control_variate ~values:[| 1. |] ~controls:[| 1.; 2. |] ()))

(* --- stratified allocation --- *)

let test_neyman () =
  (* sds 1:3 with budget 40 -> 10/30. *)
  check bool "proportional split" true
    (Adaptive.Strata.neyman ~budget:40 ~min_per:1 ~sds:[| 1.; 3. |]
    = [| 10; 30 |]);
  (* min_per floors a zero-sd stratum. *)
  let a = Adaptive.Strata.neyman ~budget:20 ~min_per:2 ~sds:[| 0.; 1. |] in
  check int "zero-sd stratum floored" 2 a.(0);
  check int "rest to the informative stratum" 18 a.(1);
  (* All-zero sds degrade to an even split. *)
  check bool "even-split degradation" true
    (Adaptive.Strata.neyman ~budget:12 ~min_per:1 ~sds:[| 0.; 0.; 0. |]
    = [| 4; 4; 4 |]);
  (* Sum always equals max budget (min_per * strata). *)
  let sds = [| 0.3; 2.7; 1.1; 0.; 5.2 |] in
  let alloc = Adaptive.Strata.neyman ~budget:97 ~min_per:3 ~sds in
  check int "largest-remainder sum" 97 (Array.fold_left ( + ) 0 alloc);
  Array.iter (fun k -> check bool "floor respected" true (k >= 3)) alloc

let test_strata_combine () =
  let mean, hw =
    Adaptive.Strata.combine ~level:0.95 ~means:[| 2.; 4. |] ~sds:[| 1.; 1. |]
      ~counts:[| 100; 100 |]
  in
  check (near 1e-9) "equal-weight mean" 3. mean;
  check (near 1e-4) "propagated half-width"
    (1.959964 /. 2. *. sqrt (2. /. 100.))
    hw;
  let _, hw1 =
    Adaptive.Strata.combine ~level:0.95 ~means:[| 2.; 4. |] ~sds:[| 1.; 1. |]
      ~counts:[| 1; 100 |]
  in
  check flt "a 1-count stratum makes the width infinite" infinity hw1

(* --- adaptive sweep: prefix bit-identity and convergence --- *)

let net64 () = Dynet.of_static (Gen.clique 64)

let test_sweep_prefix_bit_identity () =
  let config =
    Adaptive.config ~min_reps:16 ~max_reps:128 ~chunk:16 (Adaptive.Abs 0.15)
  in
  let a = Run.async_spread_sweep_adaptive ~jobs:1 ~config (Rng.create 5) (net64 ()) in
  (* The same prefix of a fixed-count sweep, any jobs: byte equality. *)
  let fixed =
    Run.async_spread_sweep ~jobs:4 ~reps:128 (Rng.create 5) (net64 ())
  in
  check int "consumed a chunk multiple" 0 (a.Run.consumed mod 16);
  check bool "outcome prefix bit-identical" true
    (a.Run.sweep.Run.outcomes
    = Array.sub fixed.Run.outcomes 0 a.Run.consumed);
  check bool "seed prefix bit-identical" true
    (a.Run.sweep.Run.seeds = Array.sub fixed.Run.seeds 0 a.Run.consumed);
  (* And the adaptive run itself is jobs-invariant. *)
  let a4 =
    Run.async_spread_sweep_adaptive ~jobs:4 ~config (Rng.create 5) (net64 ())
  in
  check int "consumed jobs-invariant" a.Run.consumed a4.Run.consumed;
  check bool "prefix jobs-invariant" true
    (a.Run.sweep.Run.outcomes = a4.Run.sweep.Run.outcomes);
  check (Alcotest.float 0.) "mean jobs-invariant" a.Run.mean a4.Run.mean

let test_sweep_converged_ci () =
  let target = 0.2 in
  let config =
    Adaptive.config ~min_reps:16 ~max_reps:512 ~chunk:32 (Adaptive.Abs target)
  in
  let a = Run.async_spread_sweep_adaptive ~config (Rng.create 11) (net64 ()) in
  check bool "clique-64 converges well before 512" true
    (a.Run.reason = Adaptive.Converged && a.Run.consumed < 512);
  check bool
    (Printf.sprintf "reported hw %.4f <= %.2f" a.Run.half_width target)
    true
    (a.Run.half_width <= target);
  check bool "mean near the closed form" true
    (abs_float (a.Run.mean -. Limit_laws.clique_mean 64) < 3. *. target)

let test_sweep_control_variate_exact () =
  (* On the clique the Rao-Blackwell residual is deterministic, so the
     CV-adjusted estimator collapses to the exact closed-form mean and
     stops at min_reps. *)
  let config =
    Adaptive.config ~min_reps:16 ~max_reps:256 ~chunk:16 (Adaptive.Abs 0.05)
  in
  let a =
    Run.async_spread_sweep_adaptive ~control:(Gen.clique 64) ~config
      (Rng.create 7) (net64 ())
  in
  check int "stops at min_reps" 16 a.Run.consumed;
  check bool "converged" true (a.Run.reason = Adaptive.Converged);
  check (near 1e-9) "mean is exactly (n-1)H_{n-1}/n"
    (Limit_laws.clique_mean 64) a.Run.mean;
  check (near 1e-9) "half-width collapses" 0. a.Run.half_width;
  (match a.Run.control with
  | None -> Alcotest.fail "control report missing"
  | Some cv ->
    check (near 1e-6) "beta 1 on the exact control" 1. cv.Adaptive.beta;
    check bool "variance ratio reported as savings factor" true
      (cv.Adaptive.variance_ratio > 2.));
  (* The decided prefix is STILL the fixed-count prefix: the control
     changes the stopping point, never the replicate values. *)
  let fixed = Run.async_spread_sweep ~reps:16 (Rng.create 7) (net64 ()) in
  check bool "CV prefix bit-identical to raw sweep" true
    (a.Run.sweep.Run.outcomes = fixed.Run.outcomes)

let test_sweep_control_guards () =
  let config = Adaptive.config ~max_reps:32 (Adaptive.Abs 0.1) in
  let rejects name f =
    match f () with
    | (_ : Run.adaptive) -> Alcotest.failf "%s: no exception" name
    | exception Invalid_argument msg ->
      check bool
        (Printf.sprintf "%s names the adaptive sweep (%s)" name msg)
        true
        (String.length msg > 31
        && String.sub msg 0 31 = "Run.async_spread_sweep_adaptive")
  in
  rejects "control x faults" (fun () ->
      Run.async_spread_sweep_adaptive ~control:(Gen.clique 64)
        ~faults:(Fault_plan.message_loss 0.5) ~config (Rng.create 1)
        (net64 ()));
  rejects "control x checkpoint" (fun () ->
      Run.async_spread_sweep_adaptive ~control:(Gen.clique 64)
        ~checkpoint:"/tmp/never-created.ckpt" ~config (Rng.create 1)
        (net64 ()));
  rejects "control order mismatch" (fun () ->
      Run.async_spread_sweep_adaptive ~control:(Gen.clique 32) ~config
        (Rng.create 1) (net64 ()))

let test_sweep_all_censored () =
  (* Unreachable nodes: every replicate censors; the adaptive sweep
     must burn the whole budget and report nan, never converge. *)
  let disconnected = Dynet.of_static (Graph.of_edges 4 [ (0, 1) ]) in
  let config =
    Adaptive.config ~min_reps:4 ~max_reps:24 ~chunk:8 (Adaptive.Abs 0.1)
  in
  let a =
    Run.async_spread_sweep_adaptive ~horizon:2. ~config (Rng.create 9)
      disconnected
  in
  check int "budget fully consumed" 24 a.Run.consumed;
  check int "no usable replicate" 0 a.Run.used;
  check bool "budget reason" true (a.Run.reason = Adaptive.Budget);
  check bool "nan mean, not an understatement" true (Float.is_nan a.Run.mean);
  let _, censored, _ = Run.sweep_counts a.Run.sweep in
  check int "all outcomes censored" 24 censored

let test_rao_blackwell_time () =
  (* Clique of 3: informing order fixed, residual rates are exact.
     First event from {0}: rate 2*1*2/2 = 2; second from a 2-set:
     2*2*1/2 = 2.  E[T | order] = 1/2 + 1/2 = 1. *)
  let g = Gen.clique 3 in
  let t = Run.rao_blackwell_time g ~informed_times:[| 0.; 0.3; 0.9 |] in
  check (near 1e-9) "K_3 conditional mean" 1. t;
  (* Matches the closed-form chain directly. *)
  check (near 1e-9) "K_3 closed form" (Limit_laws.clique_mean 3) t;
  (* Incomplete trajectory -> nan. *)
  check bool "non-finite entry -> nan" true
    (Float.is_nan
       (Run.rao_blackwell_time g ~informed_times:[| 0.; 0.5; infinity |]));
  (* Impossible trajectory (informing jump across a cut with no edges):
     path 0-1-2 cannot inform 2 before 1. *)
  let path = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  check bool "zero-rate event -> nan" true
    (Float.is_nan
       (Run.rao_blackwell_time path ~informed_times:[| 0.; 0.9; 0.5 |]));
  (* ... and an isolated node can never be informed at all. *)
  let isolated = Graph.of_edges 3 [ (0, 1) ] in
  check bool "isolated node -> nan" true
    (Float.is_nan
       (Run.rao_blackwell_time isolated ~informed_times:[| 0.; 0.5; 0.9 |]))

(* --- Estimate wiring --- *)

let test_estimate_adaptive () =
  let config =
    Adaptive.config ~min_reps:16 ~max_reps:256 ~chunk:16 (Adaptive.Abs 0.2)
  in
  let e, sweep =
    Estimate.spread_time_adaptive ~config (Rng.create 21) (net64 ())
  in
  check int "saved = budget - consumed" (256 - e.Estimate.consumed)
    e.Estimate.saved;
  check int "sweep is the decided prefix" e.Estimate.consumed
    (Array.length sweep.Run.outcomes);
  check bool "no control -> no ratio" true (e.Estimate.variance_ratio = None);
  (* With the clique control the savings factor is reported. *)
  let e2, _ =
    Estimate.spread_time_adaptive ~control:(Gen.clique 64) ~config
      (Rng.create 21) (net64 ())
  in
  check bool "control reports a ratio" true
    (match e2.Estimate.variance_ratio with Some r -> r > 1. | None -> false);
  check bool "control converges no later" true
    (e2.Estimate.consumed <= e.Estimate.consumed)

let test_estimate_stratified () =
  let net = Dynet.of_static (Gen.star 32) in
  (* Star: source 0 (the hub) vs a leaf have genuinely different
     spread-time laws — stratification must keep both. *)
  let s =
    Estimate.stratified_spread_time ~budget:64 ~pilot:4 ~min_per:2
      ~sources:[| 0; 5 |] (Rng.create 31) net
  in
  check int "two strata" 2 (Array.length s.Estimate.per_stratum);
  check int "allocation spends the budget" 64
    (Array.fold_left ( + ) 0 s.Estimate.allocation);
  Array.iter
    (fun k -> check bool "floor respected" true (k >= 2))
    s.Estimate.allocation;
  check bool "finite combined mean" true (Float.is_finite s.Estimate.mean);
  check bool "finite half-width" true (Float.is_finite s.Estimate.half_width)

(* --- Workloads default-adaptive funnel --- *)

let test_workloads_default_adaptive () =
  let module W = Rumor_experiments.Workloads in
  let net = net64 () in
  Fun.protect
    ~finally:(fun () -> Run.set_default_adaptive None)
    (fun () ->
      (* Without the override: the classic fixed-count path. *)
      let m0 = W.measure_async ~reps:64 (Rng.create 41) net in
      check int "fixed path consumes everything" 64 m0.W.reps;
      (* With it: same replicate prefix, early stop. *)
      Run.set_default_adaptive
        (Some (Adaptive.config ~min_reps:16 ~chunk:16 (Adaptive.Rel 0.15)));
      let m1 = W.measure_async ~reps:64 (Rng.create 41) net in
      check bool "adaptive path stops early" true (m1.W.reps < 64);
      check bool "reported reps is the consumed prefix" true
        (m1.W.reps >= 16 && m1.W.reps mod 16 = 0))

(* --- serve query: fingerprint back-compat --- *)

let test_query_ci_fingerprint () =
  let q = Serve.Query.default ~family:"clique" ~n:64 in
  let base_key = Serve.Query.key q in
  (* ci_level alone (the default 0.95 with no width) must not perturb
     the canonical rendering: pre-adaptive stores stay warm. *)
  check bool "default has no ci_width" true (q.Serve.Query.ci_width = None);
  let rendered = Rumor_obs.Json.to_string (Serve.Query.to_json q) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check bool "canonical form omits ci fields" true
    (not (contains rendered "ci_width"));
  (* An adaptive query fingerprints differently — it is a different
     computation. *)
  let qa = { q with Serve.Query.ci_width = Some 0.25 } in
  check bool "adaptive query gets its own key" true
    (Serve.Query.key qa <> base_key);
  (* And round-trips through the wire form. *)
  match Serve.Query.of_json (Serve.Query.to_json qa) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok qb ->
    check bool "ci_width survives" true (qb.Serve.Query.ci_width = Some 0.25);
    check (Alcotest.float 0.) "ci_level survives" 0.95
      qb.Serve.Query.ci_level;
    check bool "fingerprint stable" true
      (Serve.Query.key qa = Serve.Query.key qb)

let () =
  Alcotest.run "adaptive"
    [
      ( "stopping-rule",
        [
          Alcotest.test_case "z_of_level" `Quick test_z_of_level;
          Alcotest.test_case "half_width edges" `Quick test_half_width;
          Alcotest.test_case "width target" `Quick test_target;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "decide precedence" `Quick test_decide;
          Alcotest.test_case "chunk driver" `Quick test_run_driver;
          Alcotest.test_case "never wider than target" `Quick
            test_run_driver_never_wider_than_target;
        ] );
      ( "control-variate",
        [
          Alcotest.test_case "regression estimator" `Quick
            test_control_variate;
          Alcotest.test_case "degenerate fallbacks" `Quick
            test_control_variate_degenerate;
          Alcotest.test_case "rao-blackwell residual" `Quick
            test_rao_blackwell_time;
        ] );
      ( "strata",
        [
          Alcotest.test_case "neyman allocation" `Quick test_neyman;
          Alcotest.test_case "combine" `Quick test_strata_combine;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "prefix bit-identity" `Slow
            test_sweep_prefix_bit_identity;
          Alcotest.test_case "converged CI honest" `Slow
            test_sweep_converged_ci;
          Alcotest.test_case "clique control variate exact" `Slow
            test_sweep_control_variate_exact;
          Alcotest.test_case "control guards" `Quick test_sweep_control_guards;
          Alcotest.test_case "all-censored stops at budget" `Quick
            test_sweep_all_censored;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "Estimate.spread_time_adaptive" `Slow
            test_estimate_adaptive;
          Alcotest.test_case "stratified estimate" `Slow
            test_estimate_stratified;
          Alcotest.test_case "Workloads default funnel" `Slow
            test_workloads_default_adaptive;
          Alcotest.test_case "serve query fingerprint" `Quick
            test_query_ci_fingerprint;
        ] );
    ]
