(* Tests for the RNG substrate: known-answer vectors, determinism,
   split independence, and distribution moments. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- SplitMix64: canonical reference vector (seed 0). --- *)

let test_splitmix_vector () =
  let sm = Splitmix64.create 0L in
  check Alcotest.int64 "output 1" 0xE220A8397B1DCDAFL (Splitmix64.next sm);
  check Alcotest.int64 "output 2" 0x6E789E6AA1B965F4L (Splitmix64.next sm);
  check Alcotest.int64 "output 3" 0x06C45D188009454FL (Splitmix64.next sm)

let test_splitmix_split () =
  let a = Splitmix64.create 1L in
  let b = Splitmix64.split a in
  let xa = Splitmix64.next a and xb = Splitmix64.next b in
  check bool "parent and child differ" true (xa <> xb)

(* --- xoshiro256**: regression anchor (locked-in outputs). --- *)

let test_xoshiro_regression () =
  let x = Xoshiro256.of_seed 42L in
  check Alcotest.int64 "output 1" 0x15780B2E0C2EC716L (Xoshiro256.next x);
  check Alcotest.int64 "output 2" 0x6104D9866D113A7EL (Xoshiro256.next x);
  check Alcotest.int64 "output 3" 0xAE17533239E499A1L (Xoshiro256.next x)

let test_xoshiro_jump_disjoint () =
  let a = Xoshiro256.of_seed 9L in
  let b = Xoshiro256.copy a in
  Xoshiro256.jump b;
  let drew_same = ref false in
  for _ = 1 to 100 do
    if Xoshiro256.next a = Xoshiro256.next b then drew_same := true
  done;
  check bool "jumped stream differs" false !drew_same

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 12345 and b = Rng.create 12345 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_int_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    check bool "in range" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_uniform () =
  let rng = Rng.create 2 in
  let counts = Array.make 5 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let x = Rng.int rng 5 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int trials in
      check bool "within 2% of 0.2" true (abs_float (frac -. 0.2) < 0.02))
    counts

let test_rng_int_in () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng (-5) 5 in
    check bool "in [-5,5]" true (x >= -5 && x <= 5)
  done;
  check int "degenerate" 3 (Rng.int_in rng 3 3)

let test_rng_float_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    check bool "in [0,1)" true (x >= 0. && x < 1.);
    let y = Rng.float_pos rng in
    check bool "in (0,1]" true (y > 0. && y <= 1.)
  done

let test_rng_split_independent () =
  (* Children from consecutive splits must produce decorrelated
     streams (regression: the jump-based split produced shifted
     copies). *)
  let parent = Rng.create 77 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  (* Count positional collisions between the two child streams — for
     independent streams, expected 0 over 1000 draws of 64 bits. *)
  let collisions = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bits64 c1 = Rng.bits64 c2 then incr collisions
  done;
  check int "no positional collisions" 0 !collisions;
  (* And no off-by-one-shift relation either. *)
  let c3 = Rng.split parent in
  let c4 = Rng.split parent in
  let s3 = Array.init 100 (fun _ -> Rng.bits64 c3) in
  let s4 = Array.init 100 (fun _ -> Rng.bits64 c4) in
  let shifted = ref 0 in
  for i = 0 to 98 do
    if s3.(i + 1) = s4.(i) || s4.(i + 1) = s3.(i) then incr shifted
  done;
  check int "no shift relation" 0 !shifted

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array int) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_shuffle_uniform_3 () =
  (* Chi-square-ish check on all 6 permutations of 3 elements. *)
  let rng = Rng.create 6 in
  let tbl = Hashtbl.create 6 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let a = [| 0; 1; 2 |] in
    Rng.shuffle_in_place rng a;
    let key = (a.(0) * 100) + (a.(1) * 10) + a.(2) in
    Hashtbl.replace tbl key (1 + try Hashtbl.find tbl key with Not_found -> 0)
  done;
  check int "all 6 permutations appear" 6 (Hashtbl.length tbl);
  Hashtbl.iter
    (fun _ c ->
      let frac = float_of_int c /. float_of_int trials in
      check bool "each ~ 1/6" true (abs_float (frac -. (1. /. 6.)) < 0.02))
    tbl

let test_sample_without_replacement () =
  let rng = Rng.create 7 in
  (* Dense branch. *)
  let s = Rng.sample_without_replacement rng 8 10 in
  check int "dense size" 8 (Array.length s);
  let dedup = List.sort_uniq compare (Array.to_list s) in
  check int "dense distinct" 8 (List.length dedup);
  (* Sparse branch. *)
  let s2 = Rng.sample_without_replacement rng 5 1000 in
  check int "sparse size" 5 (Array.length s2);
  let dedup2 = List.sort_uniq compare (Array.to_list s2) in
  check int "sparse distinct" 5 (List.length dedup2);
  Array.iter (fun x -> check bool "in range" true (x >= 0 && x < 1000)) s2;
  check int "k = 0" 0 (Array.length (Rng.sample_without_replacement rng 0 5));
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: need 0 <= k <= n")
    (fun () -> ignore (Rng.sample_without_replacement rng 6 5))

(* --- Dist --- *)

let mean_of f n =
  let s = ref 0. in
  for _ = 1 to n do
    s := !s +. f ()
  done;
  !s /. float_of_int n

let test_exponential_moments () =
  let rng = Rng.create 8 in
  let m = mean_of (fun () -> Dist.exponential rng ~rate:2.0) 50_000 in
  check bool "mean ~ 1/2" true (abs_float (m -. 0.5) < 0.02);
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Dist.exponential: rate must be positive") (fun () ->
      ignore (Dist.exponential rng ~rate:0.))

let test_poisson_small_moments () =
  let rng = Rng.create 9 in
  let m = mean_of (fun () -> float_of_int (Dist.poisson rng ~rate:3.0)) 50_000 in
  check bool "mean ~ 3" true (abs_float (m -. 3.0) < 0.1)

let test_poisson_large_moments () =
  let rng = Rng.create 10 in
  let samples =
    Array.init 30_000 (fun _ -> float_of_int (Dist.poisson rng ~rate:50.0))
  in
  let m = Descriptive.mean samples in
  let v = Descriptive.variance samples in
  check bool "mean ~ 50" true (abs_float (m -. 50.) < 0.5);
  check bool "variance ~ 50" true (abs_float (v -. 50.) < 3.)

let test_poisson_zero () =
  let rng = Rng.create 11 in
  check int "rate 0" 0 (Dist.poisson rng ~rate:0.)

let test_geometric_moments () =
  let rng = Rng.create 12 in
  let p = 0.25 in
  let m = mean_of (fun () -> float_of_int (Dist.geometric rng ~p)) 50_000 in
  check bool "mean ~ 4" true (abs_float (m -. 4.) < 0.1);
  check int "p = 1" 1 (Dist.geometric rng ~p:1.0)

let test_binomial_moments () =
  let rng = Rng.create 13 in
  let m =
    mean_of (fun () -> float_of_int (Dist.binomial rng ~n:40 ~p:0.3)) 20_000
  in
  check bool "mean ~ 12" true (abs_float (m -. 12.) < 0.2)

let test_nonhomogeneous_count () =
  let rng = Rng.create 14 in
  (* rate(t) = 2t on [0, 2]: integral = 4. *)
  let samples =
    Array.init 20_000 (fun _ ->
        float_of_int
          (Dist.nonhomogeneous_count rng
             ~rate_at:(fun t -> 2. *. t)
             ~a:0. ~b:2. ~steps:64))
  in
  let m = Descriptive.mean samples in
  check bool "mean ~ 4" true (abs_float (m -. 4.) < 0.1)

(* --- Alias --- *)

let test_alias_probabilities () =
  let a = Alias.create [| 1.; 3.; 6. |] in
  check (Alcotest.float 1e-12) "p0" 0.1 (Alias.probability a 0);
  check (Alcotest.float 1e-12) "p2" 0.6 (Alias.probability a 2)

let test_alias_sampling () =
  let a = Alias.create [| 2.; 0.; 8. |] in
  let rng = Rng.create 15 in
  let counts = Array.make 3 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let i = Alias.sample a rng in
    counts.(i) <- counts.(i) + 1
  done;
  check int "zero-weight never drawn" 0 counts.(1);
  let frac i = float_of_int counts.(i) /. float_of_int trials in
  check bool "p0 ~ 0.2" true (abs_float (frac 0 -. 0.2) < 0.01);
  check bool "p2 ~ 0.8" true (abs_float (frac 2 -. 0.8) < 0.01)

let test_alias_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Alias.create: empty weight array") (fun () ->
      ignore (Alias.create [||]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Alias.create: all weights are zero") (fun () ->
      ignore (Alias.create [| 0.; 0. |]))

let () =
  Alcotest.run "rng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "reference vector" `Quick test_splitmix_vector;
          Alcotest.test_case "split" `Quick test_splitmix_split;
        ] );
      ( "xoshiro256",
        [
          Alcotest.test_case "regression anchor" `Quick test_xoshiro_regression;
          Alcotest.test_case "jump disjoint" `Quick test_xoshiro_jump_disjoint;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "float ranges" `Quick test_rng_float_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "shuffle uniform on 3" `Quick test_rng_shuffle_uniform_3;
          Alcotest.test_case "sample without replacement" `Quick
            test_sample_without_replacement;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential" `Quick test_exponential_moments;
          Alcotest.test_case "poisson small" `Quick test_poisson_small_moments;
          Alcotest.test_case "poisson large (PTRS)" `Quick test_poisson_large_moments;
          Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
          Alcotest.test_case "geometric" `Quick test_geometric_moments;
          Alcotest.test_case "binomial" `Quick test_binomial_moments;
          Alcotest.test_case "non-homogeneous Poisson" `Quick
            test_nonhomogeneous_count;
        ] );
      ( "alias",
        [
          Alcotest.test_case "probabilities" `Quick test_alias_probabilities;
          Alcotest.test_case "sampling" `Quick test_alias_sampling;
          Alcotest.test_case "invalid input" `Quick test_alias_invalid;
        ] );
    ]
