(* Property-based tests (qcheck, registered through qcheck-alcotest):
   structural invariants over randomly generated inputs. *)

open Rumor_core.Rumor

let count = 100

(* Arbitrary small connected-ish graph via Erdos-Renyi over a seed. *)
let arb_seed = QCheck.int_range 0 1_000_000

let gen_er seed n p = Gen.erdos_renyi (Rng.create seed) n p

(* --- Graph invariants --- *)

let prop_handshake =
  QCheck.Test.make ~count ~name:"sum of degrees = 2m"
    QCheck.(pair arb_seed (int_range 2 40))
    (fun (seed, n) ->
      let g = gen_er seed n 0.3 in
      Array.fold_left ( + ) 0 (Metrics.degree_array g) = 2 * Graph.m g)

let prop_edges_simple =
  QCheck.Test.make ~count ~name:"generated graphs are simple"
    QCheck.(pair arb_seed (int_range 2 30))
    (fun (seed, n) ->
      let g = gen_er seed n 0.5 in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      Graph.iter_edges
        (fun u v ->
          if u = v then ok := false;
          if Hashtbl.mem seen (u, v) then ok := false;
          Hashtbl.add seen (u, v) ())
        g;
      !ok)

let prop_adjacency_symmetric =
  QCheck.Test.make ~count ~name:"has_edge is symmetric"
    QCheck.(pair arb_seed (int_range 2 25))
    (fun (seed, n) ->
      let g = gen_er seed n 0.4 in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Graph.has_edge g u v <> Graph.has_edge g v u then
            ok := false
        done
      done;
      !ok)

let prop_random_regular_is_regular =
  QCheck.Test.make ~count:50 ~name:"random_regular yields d-regular simple graphs"
    QCheck.(pair arb_seed (int_range 3 8))
    (fun (seed, d) ->
      let n = if (16 * d) mod 2 = 0 then 16 else 17 in
      let g = Gen.random_regular (Rng.create seed) n d in
      Graph.is_regular g && Graph.max_degree g = d)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~count:50 ~name:"BFS distances obey edge relaxation"
    arb_seed
    (fun seed ->
      let g = gen_er seed 20 0.3 in
      let dist = Traverse.bfs g 0 in
      let ok = ref true in
      Graph.iter_edges
        (fun u v ->
          if dist.(u) >= 0 && dist.(v) >= 0 && abs (dist.(u) - dist.(v)) > 1 then
            ok := false;
          if (dist.(u) >= 0) <> (dist.(v) >= 0) then ok := false)
        g;
      !ok)

(* --- Parameter ranges (the paper's Section 1.1 inequalities) --- *)

let prop_conductance_range =
  QCheck.Test.make ~count:50 ~name:"0 < Phi <= 1 on connected graphs"
    arb_seed
    (fun seed ->
      let g = gen_er seed 10 0.5 in
      QCheck.assume (Traverse.is_connected g && Graph.m g > 0);
      let phi = Cut.conductance_exact g in
      phi > 0. && phi <= 1.)

let prop_diligence_range =
  QCheck.Test.make ~count:50 ~name:"1/(n-1) <= rho <= 1 on connected graphs"
    arb_seed
    (fun seed ->
      let g = gen_er seed 9 0.5 in
      QCheck.assume (Traverse.is_connected g);
      let rho = Cut.diligence_exact g in
      rho >= (1. /. 8.) -. 1e-12 && rho <= 1. +. 1e-12)

let prop_absolute_diligence_vs_min_degree =
  QCheck.Test.make ~count ~name:"rho_bar = 1/max_edge min-degree"
    arb_seed
    (fun seed ->
      let g = gen_er seed 15 0.4 in
      QCheck.assume (Graph.m g > 0);
      let direct =
        Graph.fold_edges
          (fun u v acc ->
            min acc (Float.max (1. /. float_of_int (Graph.degree g u))
                       (1. /. float_of_int (Graph.degree g v))))
          g infinity
      in
      abs_float (direct -. Metrics.absolute_diligence g) < 1e-12)

let prop_diligence_le_rho_times =
  QCheck.Test.make ~count:30
    ~name:"lambda lower bound (Eq. 3): Phi rho <= cut-rate/min-side on every cut"
    arb_seed
    (fun seed ->
      (* For random cut S with 0 < vol(S) <= vol/2:
         sum over cut edges of (1/du + 1/dv) >= Phi(G) rho(G) min(|S|, |S^c|). *)
      let g = gen_er seed 10 0.6 in
      QCheck.assume (Traverse.is_connected g && Graph.n g = 10);
      let phi = Cut.conductance_exact g in
      let rho = Cut.diligence_exact g in
      let rng = Rng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 20 do
        let s = Bitset.create 10 in
        for u = 0 to 9 do
          if Rng.bool rng then ignore (Bitset.add s u)
        done;
        let vol_s = Cut.volume_of g s in
        let vol_g = Graph.volume g in
        if vol_s > 0 && vol_s < vol_g then begin
          let lambda =
            List.fold_left
              (fun acc (u, v) ->
                acc
                +. (1. /. float_of_int (Graph.degree g u))
                +. (1. /. float_of_int (Graph.degree g v)))
              0. (Cut.cut_edges g s)
          in
          let min_side =
            min (Bitset.cardinal s) (10 - Bitset.cardinal s)
          in
          if lambda +. 1e-9 < phi *. rho *. float_of_int min_side then ok := false
        end
      done;
      !ok)

(* --- Bitset/Fenwick algebra --- *)

let prop_bitset_add_remove =
  QCheck.Test.make ~count ~name:"bitset add/remove round-trips"
    QCheck.(pair (int_range 1 200) (list (int_range 0 199)))
    (fun (n, ops) ->
      let s = Bitset.create 200 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun i ->
          let i = i mod 200 in
          if Hashtbl.mem model i then begin
            Hashtbl.remove model i;
            ignore (Bitset.remove s i)
          end
          else begin
            Hashtbl.add model i ();
            ignore (Bitset.add s i)
          end)
        ops;
      ignore n;
      Bitset.cardinal s = Hashtbl.length model
      && List.for_all (fun i -> Bitset.mem s i = Hashtbl.mem model i)
           (List.init 200 (fun i -> i)))

let prop_fenwick_matches_naive =
  QCheck.Test.make ~count ~name:"fenwick prefix sums match naive"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_range 0. 10.))
    (fun weights ->
      let arr = Array.of_list weights in
      let n = Array.length arr in
      let f = Fenwick.create n in
      Fenwick.fill_from f arr;
      let naive = Array.make n 0. in
      let acc = ref 0. in
      Array.iteri
        (fun i w ->
          acc := !acc +. w;
          naive.(i) <- !acc)
        arr;
      let ok = ref true in
      for i = 0 to n - 1 do
        if abs_float (Fenwick.prefix_sum f i -. naive.(i)) > 1e-9 then ok := false
      done;
      !ok)

let prop_heap_sorts =
  QCheck.Test.make ~count ~name:"heap drains in sorted order"
    QCheck.(list (float_range (-100.) 100.))
    (fun keys ->
      let h = Heap.of_list (List.map (fun k -> (k, ())) keys) in
      let rec drain acc =
        match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
      in
      let drained = drain [] in
      drained = List.sort compare keys)

(* --- Simulation invariants --- *)

let prop_async_completes_on_connected =
  QCheck.Test.make ~count:30 ~name:"async completes on connected static graphs"
    arb_seed
    (fun seed ->
      let g = gen_er seed 20 0.3 in
      QCheck.assume (Traverse.is_connected g);
      let net = Dynet.of_static g in
      let r = Async_cut.run ~horizon:1e5 (Rng.create (seed + 7)) net ~source:0 in
      r.Async_result.complete && Bitset.is_full r.Async_result.informed)

let prop_async_events_eq_n_minus_1 =
  QCheck.Test.make ~count:30 ~name:"cut engine informs each node exactly once"
    arb_seed
    (fun seed ->
      let g = gen_er seed 15 0.4 in
      QCheck.assume (Traverse.is_connected g);
      let net = Dynet.of_static g in
      let r = Async_cut.run (Rng.create seed) net ~source:0 in
      r.Async_result.events = 14)

let prop_sync_informed_monotone =
  QCheck.Test.make ~count:30 ~name:"sync trace is monotone and complete"
    arb_seed
    (fun seed ->
      let g = gen_er seed 15 0.4 in
      QCheck.assume (Traverse.is_connected g);
      let net = Dynet.of_static g in
      let r = Sync.run (Rng.create seed) net ~source:0 in
      r.Sync.complete
      &&
      let t = r.Sync.trace in
      let ok = ref true in
      for i = 1 to Array.length t - 1 do
        if t.(i) < t.(i - 1) then ok := false
      done;
      !ok && t.(Array.length t - 1) = 15)

let prop_flooding_fastest =
  QCheck.Test.make ~count:30 ~name:"flooding is no slower than any sync run"
    arb_seed
    (fun seed ->
      let g = gen_er seed 12 0.4 in
      QCheck.assume (Traverse.is_connected g);
      let net = Dynet.of_static g in
      let f = Flooding.run (Rng.create seed) net ~source:0 in
      let s = Sync.run (Rng.create (seed * 2)) net ~source:0 in
      f.Flooding.rounds <= s.Sync.rounds)

(* --- Degree sequences --- *)

let prop_havel_hakimi_sound =
  QCheck.Test.make ~count:50 ~name:"havel-hakimi realizes graphical sequences"
    arb_seed
    (fun seed ->
      (* Generate a guaranteed-graphical sequence by reading degrees
         off a random graph. *)
      let g = gen_er seed 12 0.4 in
      let seq = Metrics.degree_array g in
      QCheck.assume (Degree_seq.is_graphical seq);
      let h = Degree_seq.havel_hakimi seq in
      let got = Metrics.degree_array h in
      let a = Array.copy seq and b = Array.copy got in
      Array.sort compare a;
      Array.sort compare b;
      a = b)

let prop_degree_sequence_of_graph_graphical =
  QCheck.Test.make ~count ~name:"degree sequence of any graph is graphical"
    arb_seed
    (fun seed ->
      let g = gen_er seed 14 0.5 in
      Degree_seq.is_graphical (Metrics.degree_array g))


(* --- serialization and combinator properties --- *)

let prop_graph6_roundtrip =
  QCheck.Test.make ~count:50 ~name:"graph6 round-trips arbitrary graphs"
    QCheck.(pair arb_seed (int_range 1 70))
    (fun (seed, n) ->
      let g = gen_er seed n 0.25 in
      Graph.equal g (Graph6.decode (Graph6.encode g)))

let prop_dropout_subgraph =
  QCheck.Test.make ~count:50 ~name:"dropout yields a subgraph with same nodes"
    arb_seed
    (fun seed ->
      let g = gen_er seed 15 0.5 in
      let net =
        Combinators.with_edge_dropout ~p:0.4 (Dynet.of_static g)
      in
      let inst = net.Dynet.spawn (Rng.create (seed + 1)) in
      let g2 = (Dynet.next inst ~informed:(Bitset.create 15)).Dynet.graph in
      Graph.n g2 = Graph.n g
      && Graph.fold_edges (fun u v acc -> acc && Graph.has_edge g u v) g2 true)

let prop_ks_identical_zero =
  QCheck.Test.make ~count:50 ~name:"KS statistic of a sample against itself is 0"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-5.) 5.))
    (fun xs ->
      let a = Array.of_list xs in
      (Ks.two_sample a a).Ks.statistic = 0.)

let prop_trace_phases_le_events =
  QCheck.Test.make ~count:30 ~name:"phase count bounded by informing events"
    arb_seed
    (fun seed ->
      let g = gen_er seed 20 0.4 in
      QCheck.assume (Traverse.is_connected g);
      let net = Dynet.of_static g in
      let r = Async_cut.run ~record_trace:true (Rng.create seed) net ~source:0 in
      let phases = Trace.doubling_phases r.Async_result.trace ~n:20 in
      List.length phases <= r.Async_result.events
      && List.length phases <= Trace.phase_count_bound ~n:20)

let prop_eigen_spectrum_in_range =
  QCheck.Test.make ~count:30 ~name:"normalized adjacency spectrum lies in [-1, 1]"
    arb_seed
    (fun seed ->
      let g = gen_er seed 10 0.6 in
      QCheck.assume (Graph.min_degree g > 0);
      let eig = Eigen.normalized_adjacency_spectrum g in
      Array.for_all (fun l -> l >= -1. -. 1e-9 && l <= 1. +. 1e-9) eig
      && Float.abs (eig.(Array.length eig - 1) -. 1.) < 1e-6)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "props"
    [
      ( "graph",
        to_alcotest
          [
            prop_handshake;
            prop_edges_simple;
            prop_adjacency_symmetric;
            prop_random_regular_is_regular;
            prop_bfs_triangle_inequality;
          ] );
      ( "parameters",
        to_alcotest
          [
            prop_conductance_range;
            prop_diligence_range;
            prop_absolute_diligence_vs_min_degree;
            prop_diligence_le_rho_times;
          ] );
      ( "containers",
        to_alcotest
          [ prop_bitset_add_remove; prop_fenwick_matches_naive; prop_heap_sorts ] );
      ( "simulation",
        to_alcotest
          [
            prop_async_completes_on_connected;
            prop_async_events_eq_n_minus_1;
            prop_sync_informed_monotone;
            prop_flooding_fastest;
          ] );
      ( "degree sequences",
        to_alcotest
          [ prop_havel_hakimi_sound; prop_degree_sequence_of_graph_graphical ] );
          ( "extensions",
        to_alcotest
          [
            prop_graph6_roundtrip;
            prop_dropout_subgraph;
            prop_ks_identical_zero;
            prop_trace_phases_le_events;
            prop_eigen_spectrum_in_range;
          ] );
    ]
