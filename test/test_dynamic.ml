(* Tests for the dynamic-network layer: the Dynet interface and every
   family, with special attention to the paper's constructions
   (H_{k,Delta}, the adaptive G(n,rho) families, and Figure 1's G1/G2). *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let empty_informed n = Bitset.create n

(* --- Dynet basics --- *)

let test_of_static_constant () =
  let g = Gen.clique 5 in
  let net = Dynet.of_static ~phi:0.5 g in
  let inst = net.Dynet.spawn (Rng.create 1) in
  let i0 = Dynet.next inst ~informed:(empty_informed 5) in
  let i1 = Dynet.next inst ~informed:(empty_informed 5) in
  check bool "step 0 changed" true i0.Dynet.changed;
  check bool "step 1 unchanged" false i1.Dynet.changed;
  check bool "same graph" true (Graph.equal i0.Dynet.graph i1.Dynet.graph);
  check (Alcotest.option (Alcotest.float 1e-9)) "phi carried" (Some 0.5) i0.Dynet.phi;
  check int "step count" 2 (Dynet.step_count inst)

let test_of_sequence_cycles () =
  let a = Gen.cycle 4 and b = Gen.clique 4 in
  let net = Dynet.of_sequence [| a; b |] in
  let inst = net.Dynet.spawn (Rng.create 1) in
  let g0 = (Dynet.next inst ~informed:(empty_informed 4)).Dynet.graph in
  let g1 = (Dynet.next inst ~informed:(empty_informed 4)).Dynet.graph in
  let g2 = (Dynet.next inst ~informed:(empty_informed 4)).Dynet.graph in
  check bool "step 0 = a" true (Graph.equal g0 a);
  check bool "step 1 = b" true (Graph.equal g1 b);
  check bool "step 2 = a again" true (Graph.equal g2 a)

let test_of_sequence_rejects () =
  Alcotest.check_raises "mismatched sizes"
    (Invalid_argument "Dynet.of_sequence: node-count mismatch") (fun () ->
      ignore (Dynet.of_sequence [| Gen.cycle 4; Gen.cycle 5 |]));
  Alcotest.check_raises "empty"
    (Invalid_argument "Dynet.of_sequence: empty graph array") (fun () ->
      ignore (Dynet.of_sequence [||]))


let test_of_fun_state_per_spawn () =
  (* Each spawn gets fresh closure state; step numbers are supplied in
     order. *)
  let net =
    Dynet.of_fun ~n:4 ~name:"counter" (fun _rng ->
        let calls = ref 0 in
        fun ~step ~informed:_ ->
          incr calls;
          Alcotest.(check int) "step matches call order" !calls (step + 1);
          Dynet.info_of_graph ~changed:(step = 0) (Gen.cycle 4))
  in
  let i1 = net.Dynet.spawn (Rng.create 1) in
  let i2 = net.Dynet.spawn (Rng.create 1) in
  let informed = empty_informed 4 in
  ignore (Dynet.next i1 ~informed);
  ignore (Dynet.next i1 ~informed);
  (* i2 starts from step 0 independently. *)
  ignore (Dynet.next i2 ~informed);
  Alcotest.(check int) "i1 stepped twice" 2 (Dynet.step_count i1);
  Alcotest.(check int) "i2 stepped once" 1 (Dynet.step_count i2)

let test_step0_must_report_changed () =
  let net =
    Dynet.of_fun ~n:3 ~name:"bad" (fun _rng ~step:_ ~informed:_ ->
        Dynet.info_of_graph ~changed:false (Gen.cycle 3))
  in
  let inst = net.Dynet.spawn (Rng.create 2) in
  Alcotest.check_raises "step 0 unchanged rejected"
    (Invalid_argument "Dynet.next: step 0 must report changed = true")
    (fun () -> ignore (Dynet.next inst ~informed:(empty_informed 3)))

(* --- Paper_h --- *)

let build_h ?(k = 2) ?(delta = 3) () =
  let rng = Rng.create 7 in
  let a_size = Paper_h.min_side_a ~k ~delta + 4 in
  let b_size = Paper_h.min_side_b ~k ~delta + 4 in
  let universe = a_size + b_size in
  let a = Array.init a_size (fun i -> i) in
  let b = Array.init b_size (fun i -> a_size + i) in
  let g, analysis = Paper_h.build rng ~universe ~a ~b ~k ~delta in
  (g, analysis, a_size, b_size)

let test_h_structure () =
  let k = 2 and delta = 3 in
  let g, analysis, _a_size, _ = build_h ~k ~delta () in
  check bool "connected" true (Traverse.is_connected g);
  check int "k+1 clusters" (k + 1) (Array.length analysis.Paper_h.clusters);
  (* Every cluster node has degree delta (string side(s)) + delta
     (attachment or adjacent cluster): inner clusters see two
     neighbouring clusters; end clusters see one cluster plus delta
     expander attachments — 2 delta either way. *)
  Array.iter
    (fun cluster ->
      Array.iter
        (fun u -> check int "cluster degree 2 delta" (2 * delta) (Graph.degree g u))
        cluster)
    analysis.Paper_h.clusters

let test_h_cluster_bipartite_wiring () =
  let k = 3 and delta = 2 in
  let g, analysis, _, _ = build_h ~k ~delta () in
  let clusters = analysis.Paper_h.clusters in
  for i = 0 to k - 1 do
    Array.iter
      (fun u ->
        Array.iter
          (fun v ->
            check bool "consecutive clusters fully joined" true
              (Graph.has_edge g u v))
          clusters.(i + 1))
      clusters.(i)
  done;
  (* Non-consecutive clusters are not joined. *)
  Array.iter
    (fun u ->
      Array.iter
        (fun v -> check bool "skip connection absent" false (Graph.has_edge g u v))
        clusters.(2))
    clusters.(0)

let test_h_phi_estimate_vs_exact () =
  (* On a tiny instance the analytic Theta-estimate must be within a
     constant factor of the exact conductance. *)
  let rng = Rng.create 8 in
  let k = 1 and delta = 2 in
  let a_size = Paper_h.min_side_a ~k ~delta in
  let b_size = Paper_h.min_side_b ~k ~delta in
  let universe = a_size + b_size in
  if universe <= Cut.exact_size_limit then begin
    let a = Array.init a_size (fun i -> i) in
    let b = Array.init b_size (fun i -> a_size + i) in
    let g, analysis = Paper_h.build rng ~universe ~a ~b ~k ~delta in
    let exact = Cut.conductance_exact g in
    let est = analysis.Paper_h.phi_estimate in
    check bool "estimate within 8x of exact" true
      (est /. exact < 8. && exact /. est < 8.)
  end

let test_h_rejects_small_sides () =
  let rng = Rng.create 9 in
  Alcotest.check_raises "A too small"
    (Invalid_argument "Paper_h.build: |A| = 3 < 8") (fun () ->
      ignore
        (Paper_h.build rng ~universe:30 ~a:[| 0; 1; 2 |]
           ~b:(Array.init 20 (fun i -> i + 3))
           ~k:2 ~delta:3))

let test_default_k_grows () =
  check bool "k(10^2) >= 1" true (Paper_h.default_k 100 >= 1);
  check bool "k grows" true (Paper_h.default_k 100_000 > Paper_h.default_k 100)

(* --- Diligent G(n, rho) --- *)

let test_diligent_initial_structure () =
  let n = 256 and rho = 0.25 in
  let net = Diligent.network ~n ~rho () in
  check int "n" n net.Dynet.n;
  let inst = net.Dynet.spawn (Rng.create 3) in
  let info = Dynet.next inst ~informed:(empty_informed n) in
  check bool "connected" true (Traverse.is_connected info.Dynet.graph);
  check bool "phi analytic present" true (info.Dynet.phi <> None);
  check bool "rho analytic ~ rho" true
    (match info.Dynet.rho with
    | Some r -> abs_float (r -. rho) < 0.26
    | None -> false)

let test_diligent_rebuild_on_b_shrink () =
  let n = 256 and rho = 0.25 in
  let net = Diligent.network ~n ~rho () in
  let inst = net.Dynet.spawn (Rng.create 4) in
  let informed = empty_informed n in
  ignore (Bitset.add informed 0);
  let i0 = Dynet.next inst ~informed in
  (* Inform one B-side node (ids >= n/4 start in B). *)
  ignore (Bitset.add informed (n - 1));
  let i1 = Dynet.next inst ~informed in
  check bool "rebuild when B shrinks" true i1.Dynet.changed;
  (* No further defection -> frozen. *)
  let i2 = Dynet.next inst ~informed in
  check bool "frozen without defection" false i2.Dynet.changed;
  check bool "graphs differ after rebuild" false
    (Graph.equal i0.Dynet.graph i1.Dynet.graph)

let test_diligent_admissibility () =
  check bool "tiny rho at small n inadmissible" false
    (Diligent.admissible ~n:64 ~rho:0.01);
  check bool "moderate ok" true (Diligent.admissible ~n:512 ~rho:0.25);
  Alcotest.check_raises "network rejects"
    (Invalid_argument "Diligent.network: (n=64, rho=0.01, k=3) not admissible")
    (fun () -> ignore (Diligent.network ~k:3 ~n:64 ~rho:0.01 ()))

let test_delta_of_rho () =
  check int "rho = 1" 1 (Diligent.delta_of_rho 1.0);
  check int "rho = 0.3" 4 (Diligent.delta_of_rho 0.3);
  Alcotest.check_raises "rho > 1"
    (Invalid_argument "Diligent.delta_of_rho: need 0 < rho <= 1") (fun () ->
      ignore (Diligent.delta_of_rho 1.5))

(* --- Absolute family --- *)

let test_absolute_initial_structure () =
  let n = 240 and rho = 0.1 in
  let net = Absolute.network ~n ~rho in
  let delta = Absolute.delta_of_rho rho in
  let inst = net.Dynet.spawn (Rng.create 5) in
  let g = (Dynet.next inst ~informed:(empty_informed n)).Dynet.graph in
  check bool "connected" true (Traverse.is_connected g);
  (* Degree profile: node 0 (special) delta+1 with the bridge; A-side
     others 4; B-side delta except the bridged one delta+1. *)
  check int "special node degree" (delta + 1) (Graph.degree g 0);
  let hist = Metrics.degree_histogram g in
  let count d = try List.assoc d hist with Not_found -> 0 in
  check int "two bridge endpoints at delta+1" 2 (count (delta + 1));
  check int "A-side regulars at 4" ((n / 2) - 1) (count 4);
  check int "B-side regulars at delta" ((n - (n / 2)) - 1) (count delta);
  (* Absolute diligence is exactly 1/(delta+1). *)
  check (Alcotest.float 1e-9) "rho_bar exact"
    (1. /. float_of_int (delta + 1))
    (Metrics.absolute_diligence g)

let test_absolute_delta_even () =
  check int "rho 0.1 -> 10" 10 (Absolute.delta_of_rho 0.1);
  check int "rho 0.35 -> even 4" 4 (Absolute.delta_of_rho 0.35);
  check int "rho 1 -> 2" 2 (Absolute.delta_of_rho 1.0)

let test_absolute_freeze () =
  let n = 240 and rho = 0.1 in
  let net = Absolute.network ~n ~rho in
  let inst = net.Dynet.spawn (Rng.create 6) in
  let informed = empty_informed n in
  ignore (Bitset.add informed 1);
  let _ = Dynet.next inst ~informed in
  (* Inform everything: B shrinks below n/6 -> frozen forever after. *)
  for u = 0 to n - 1 do
    ignore (Bitset.add informed u)
  done;
  let i1 = Dynet.next inst ~informed in
  check bool "freeze keeps graph" false i1.Dynet.changed;
  let i2 = Dynet.next inst ~informed in
  check bool "still frozen" false i2.Dynet.changed;
  check bool "same graph" true (Graph.equal i1.Dynet.graph i2.Dynet.graph)

let test_regular_except_one_fast () =
  let ids = Array.init 40 (fun i -> i * 2) in
  let edges = Absolute.regular_except_one_fast ~ids ~delta:6 in
  let g = Graph.of_edges 80 edges in
  check int "special degree" 6 (Graph.degree g (ids.(0)));
  Array.iteri
    (fun i u -> if i > 0 then check int "others degree 4" 4 (Graph.degree g u))
    ids;
  (* Connected over the participating ids. *)
  let comp = Traverse.component_of g ids.(0) in
  Array.iter (fun u -> check bool "in one component" true (Bitset.mem comp u)) ids

let test_absolute_admissibility () =
  check bool "rho too small for n" false (Absolute.admissible ~n:60 ~rho:0.02);
  check bool "ok" true (Absolute.admissible ~n:240 ~rho:0.1)

(* --- Dichotomy (Figure 1) --- *)

let test_g1_evolution () =
  let n = 8 in
  let net = Dichotomy.g1 ~n in
  check int "n+1 nodes" (n + 1) net.Dynet.n;
  check (Alcotest.option int) "source is pendant" (Some n) net.Dynet.source_hint;
  let inst = net.Dynet.spawn (Rng.create 7) in
  let informed = empty_informed (n + 1) in
  let g0 = (Dynet.next inst ~informed).Dynet.graph in
  check int "pendant degree" 1 (Graph.degree g0 n);
  let i1 = Dynet.next inst ~informed in
  check bool "switch at step 1" true i1.Dynet.changed;
  let i2 = Dynet.next inst ~informed in
  check bool "frozen from step 2" false i2.Dynet.changed

let test_g2_center_adaptivity () =
  let n = 12 in
  let net = Dichotomy.g2 ~n in
  let inst = net.Dynet.spawn (Rng.create 8) in
  let informed = empty_informed (n + 1) in
  ignore (Bitset.add informed 0);
  let g0 = (Dynet.next inst ~informed).Dynet.graph in
  check int "initial centre n" n (Graph.degree g0 n);
  (* Mark many nodes informed; the next centre must be uninformed. *)
  List.iter (fun u -> ignore (Bitset.add informed u)) [ 1; 2; 3; 4; 5; n ];
  for _ = 1 to 5 do
    let g = (Dynet.next inst ~informed).Dynet.graph in
    let center = ref (-1) in
    for u = 0 to n do
      if Graph.degree g u = n then center := u
    done;
    check bool "star shape" true (!center >= 0);
    check bool "centre uninformed" false (Bitset.mem informed !center)
  done

let test_g2_all_informed_fallback () =
  let n = 6 in
  let net = Dichotomy.g2 ~n in
  let inst = net.Dynet.spawn (Rng.create 9) in
  let informed = empty_informed (n + 1) in
  for u = 0 to n do
    ignore (Bitset.add informed u)
  done;
  let _ = Dynet.next inst ~informed in
  (* Must not loop forever; any star is fine. *)
  let g = (Dynet.next inst ~informed).Dynet.graph in
  check int "still a star" n (Graph.m g)

let test_star_graph_invalid_center () =
  Alcotest.check_raises "bad centre"
    (Invalid_argument "Dichotomy.star_graph: bad center") (fun () ->
      ignore (Dichotomy.star_graph ~n:4 ~center:9))

(* --- Alternating --- *)

let test_alternating_periods () =
  let n = 16 in
  let net = Alternating.network ~n () in
  let inst = net.Dynet.spawn (Rng.create 10) in
  let informed = empty_informed n in
  let g0 = (Dynet.next inst ~informed).Dynet.graph in
  let g1 = (Dynet.next inst ~informed).Dynet.graph in
  let g2 = (Dynet.next inst ~informed).Dynet.graph in
  check int "even step complete" (n - 1) (Graph.max_degree g0);
  check bool "odd step cubic" true
    (Graph.is_regular g1 && Graph.max_degree g1 = 3);
  check bool "cubic connected" true (Traverse.is_connected g1);
  check bool "period 2" true (Graph.equal g0 g2)

let test_alternating_rejects_odd () =
  Alcotest.check_raises "odd n"
    (Invalid_argument "Alternating.network: need even n >= 6") (fun () ->
      ignore (Alternating.network ~n:15 ()))

let test_clique_conductance_formula () =
  check (Alcotest.float 1e-9) "K4" (2. /. 3.) (Alternating.clique_conductance 4);
  check (Alcotest.float 1e-9) "K5" (3. /. 4.) (Alternating.clique_conductance 5);
  (* Matches exact enumeration. *)
  check (Alcotest.float 1e-9) "matches exact"
    (Cut.conductance_exact (Gen.clique 7))
    (Alternating.clique_conductance 7)

(* --- Markovian --- *)

let test_markovian_stationary () =
  check (Alcotest.float 1e-9) "p/(p+q)" 0.25
    (Markovian.stationary_edge_probability ~p:0.1 ~q:0.3)

let test_markovian_dynamics () =
  let n = 24 in
  let net = Markovian.network ~n ~p:0.2 ~q:0.2 () in
  let inst = net.Dynet.spawn (Rng.create 11) in
  let informed = empty_informed n in
  let g0 = (Dynet.next inst ~informed).Dynet.graph in
  check int "starts empty" 0 (Graph.m g0);
  let g5 =
    let g = ref g0 in
    for _ = 1 to 5 do
      g := (Dynet.next inst ~informed).Dynet.graph
    done;
    !g
  in
  (* After a few steps the edge count should be near the stationary
     density 0.5 * C(n,2); allow wide tolerance. *)
  let expected = 0.5 *. float_of_int (n * (n - 1) / 2) in
  check bool "density near stationary" true
    (abs_float (float_of_int (Graph.m g5) -. expected) < 0.35 *. expected)

let test_markovian_absorbing_edges () =
  (* q = 0: edges never die, so edge count is non-decreasing. *)
  let n = 12 in
  let net = Markovian.network ~n ~p:0.3 ~q:0. () in
  let inst = net.Dynet.spawn (Rng.create 12) in
  let informed = empty_informed n in
  let prev = ref (-1) in
  for _ = 1 to 6 do
    let m = Graph.m (Dynet.next inst ~informed).Dynet.graph in
    check bool "monotone" true (m >= !prev);
    prev := m
  done

(* --- Mobile --- *)

let test_torus_distance () =
  check int "wraparound x" 2
    (Mobile.torus_distance ~width:10 ~height:10 (1, 0) (9, 0));
  check int "chebyshev" 3 (Mobile.torus_distance ~width:10 ~height:10 (0, 0) (3, 2));
  check int "self" 0 (Mobile.torus_distance ~width:5 ~height:5 (2, 2) (2, 2))

let test_mobile_network_steps () =
  let net = Mobile.network ~agents:10 ~width:8 ~height:8 ~radius:2 in
  let inst = net.Dynet.spawn (Rng.create 13) in
  let informed = empty_informed 10 in
  for _ = 1 to 5 do
    let g = (Dynet.next inst ~informed).Dynet.graph in
    check int "node count stable" 10 (Graph.n g)
  done

let () =
  Alcotest.run "dynamic"
    [
      ( "dynet",
        [
          Alcotest.test_case "of_static" `Quick test_of_static_constant;
          Alcotest.test_case "of_sequence cycles" `Quick test_of_sequence_cycles;
          Alcotest.test_case "of_sequence rejects" `Quick test_of_sequence_rejects;
          Alcotest.test_case "of_fun per-spawn state" `Quick
            test_of_fun_state_per_spawn;
          Alcotest.test_case "step-0 changed contract" `Quick
            test_step0_must_report_changed;
        ] );
      ( "paper_h",
        [
          Alcotest.test_case "structure" `Quick test_h_structure;
          Alcotest.test_case "bipartite wiring" `Quick test_h_cluster_bipartite_wiring;
          Alcotest.test_case "phi estimate vs exact" `Quick test_h_phi_estimate_vs_exact;
          Alcotest.test_case "rejects small sides" `Quick test_h_rejects_small_sides;
          Alcotest.test_case "default k" `Quick test_default_k_grows;
        ] );
      ( "diligent",
        [
          Alcotest.test_case "initial structure" `Quick test_diligent_initial_structure;
          Alcotest.test_case "rebuild on B shrink" `Quick
            test_diligent_rebuild_on_b_shrink;
          Alcotest.test_case "admissibility" `Quick test_diligent_admissibility;
          Alcotest.test_case "delta_of_rho" `Quick test_delta_of_rho;
        ] );
      ( "absolute",
        [
          Alcotest.test_case "initial structure" `Quick test_absolute_initial_structure;
          Alcotest.test_case "delta even" `Quick test_absolute_delta_even;
          Alcotest.test_case "freeze below n/6" `Quick test_absolute_freeze;
          Alcotest.test_case "regular-except-one gadget" `Quick
            test_regular_except_one_fast;
          Alcotest.test_case "admissibility" `Quick test_absolute_admissibility;
        ] );
      ( "dichotomy",
        [
          Alcotest.test_case "G1 evolution" `Quick test_g1_evolution;
          Alcotest.test_case "G2 centre adaptivity" `Quick test_g2_center_adaptivity;
          Alcotest.test_case "G2 all-informed fallback" `Quick
            test_g2_all_informed_fallback;
          Alcotest.test_case "star invalid centre" `Quick test_star_graph_invalid_center;
        ] );
      ( "alternating",
        [
          Alcotest.test_case "period structure" `Quick test_alternating_periods;
          Alcotest.test_case "rejects odd n" `Quick test_alternating_rejects_odd;
          Alcotest.test_case "clique conductance formula" `Quick
            test_clique_conductance_formula;
        ] );
      ( "markovian",
        [
          Alcotest.test_case "stationary probability" `Quick test_markovian_stationary;
          Alcotest.test_case "dynamics" `Quick test_markovian_dynamics;
          Alcotest.test_case "absorbing edges" `Quick test_markovian_absorbing_edges;
        ] );
      ( "mobile",
        [
          Alcotest.test_case "torus distance" `Quick test_torus_distance;
          Alcotest.test_case "steps" `Quick test_mobile_network_steps;
        ] );
    ]
