(* Tests for the conductance/diligence machinery: exact cut
   computations on graphs with known closed forms, the O(m) absolute
   diligence, and the spectral sweep estimator (validated against the
   exact values and Cheeger's inequality). *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt = Alcotest.float 1e-9
let flt3 = Alcotest.float 1e-3

(* --- Cut basics --- *)

let test_volume_cut_size () =
  let g = Gen.cycle 6 in
  let s = Bitset.of_list 6 [ 0; 1; 2 ] in
  check int "volume" 6 (Cut.volume_of g s);
  check int "cut size" 2 (Cut.cut_size g s);
  check flt "conductance of cut" (2. /. 6.) (Cut.conductance_of_cut g s)

let test_cut_edges_orientation () =
  let g = Gen.path 4 in
  let s = Bitset.of_list 4 [ 1; 2 ] in
  let edges = List.sort compare (Cut.cut_edges g s) in
  check
    (Alcotest.list (Alcotest.pair int int))
    "inside first" [ (1, 0); (2, 3) ] edges

(* --- Exact conductance closed forms --- *)

let test_conductance_clique () =
  (* Phi(K_n) = ceil(n/2) / (n-1). *)
  List.iter
    (fun n ->
      let expected = float_of_int ((n / 2) + (n mod 2)) /. float_of_int (n - 1) in
      check flt3
        (Printf.sprintf "clique %d" n)
        expected
        (Cut.conductance_exact (Gen.clique n)))
    [ 4; 5; 8 ]

let test_conductance_star () =
  check flt "star" 1.0 (Cut.conductance_exact (Gen.star 8))

let test_conductance_cycle () =
  (* Phi(C_n) = 2 / n (split in half: 2 crossing edges, volume n). *)
  List.iter
    (fun n ->
      check flt3
        (Printf.sprintf "cycle %d" n)
        (2. /. float_of_int n)
        (Cut.conductance_exact (Gen.cycle n)))
    [ 6; 8; 10 ]

let test_conductance_path () =
  (* Phi(P_n): cutting the middle edge gives 1 / (n - 1) for even n. *)
  check flt3 "path 8" (1. /. 7.) (Cut.conductance_exact (Gen.path 8))

let test_conductance_hypercube () =
  (* Phi(Q_d) = 1/d (dimension cut). *)
  check flt3 "Q3" (1. /. 3.) (Cut.conductance_exact (Gen.hypercube 3));
  check flt3 "Q4" (1. /. 4.) (Cut.conductance_exact (Gen.hypercube 4))

let test_conductance_complete_bipartite () =
  (* K_{2,2} = C_4: Phi = 2/4. *)
  check flt3 "K22" 0.5 (Cut.conductance_exact (Gen.complete_bipartite 2 2))

let test_conductance_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check flt "disconnected" 0. (Cut.conductance_exact g)

let test_conductance_size_limit () =
  Alcotest.check_raises "too large"
    (Invalid_argument
       "Cut: exact enumeration limited to n <= 22 (got 23)") (fun () ->
      ignore (Cut.conductance_exact (Gen.cycle 23)))

let test_min_conductance_cut_witness () =
  let g = Gen.barbell 4 in
  let set, phi = Cut.min_conductance_cut g in
  (* The witness cut must achieve the reported value. *)
  check flt "witness consistent" phi (Cut.conductance_of_cut g set);
  check flt3 "barbell bottleneck" (1. /. 13.) phi
(* Each side of the bridge: volume 2*6+1 = 13, one crossing edge. *)

(* --- Exact diligence --- *)

let test_diligence_regular_is_one () =
  (* Regular graphs are 1-diligent: dbar = d, max(d/d, d/d) = 1. *)
  List.iter
    (fun g -> check flt "regular -> 1" 1.0 (Cut.diligence_exact g))
    [ Gen.clique 6; Gen.cycle 8; Gen.hypercube 3 ]

let test_diligence_star_is_one () =
  (* The paper: stars are 1-diligent. *)
  check flt "star" 1.0 (Cut.diligence_exact (Gen.star 9))

let test_diligence_disconnected_zero () =
  check flt "disconnected" 0. (Cut.diligence_exact (Graph.of_edges 4 [ (0, 1); (2, 3) ]))

let test_diligence_range_property () =
  (* 1/(n-1) <= rho(G) <= 1 for connected G (paper, Section 1.1). *)
  let rng = Rng.create 55 in
  List.iter
    (fun g ->
      let rho = Cut.diligence_exact g in
      let n = float_of_int (Graph.n g) in
      check bool "lower" true (rho >= 1. /. (n -. 1.) -. 1e-12);
      check bool "upper" true (rho <= 1. +. 1e-12))
    [
      Gen.path 9;
      Gen.lollipop 5 4;
      Gen.clique_with_pendant 6;
      Gen.erdos_renyi rng 10 0.5;
      Gen.binary_tree 10;
    ]

let test_diligence_of_cut_validation () =
  let g = Gen.clique 4 in
  let whole = Bitset.of_list 4 [ 0; 1; 2; 3 ] in
  Alcotest.check_raises "volume too large"
    (Invalid_argument "Cut.diligence_of_cut: need 0 < vol(S) <= vol(G)/2")
    (fun () -> ignore (Cut.diligence_of_cut g whole));
  let s = Bitset.of_list 4 [ 0 ] in
  check flt "single node of clique" 1.0 (Cut.diligence_of_cut g s)

(* --- Metrics --- *)

let test_absolute_diligence_closed_forms () =
  check flt "star" 1.0 (Metrics.absolute_diligence (Gen.star 10));
  check flt "cycle" 0.5 (Metrics.absolute_diligence (Gen.cycle 10));
  check flt "clique" (1. /. 9.) (Metrics.absolute_diligence (Gen.clique 10));
  check flt "Q3" (1. /. 3.) (Metrics.absolute_diligence (Gen.hypercube 3));
  check flt "edgeless" 0. (Metrics.absolute_diligence (Gen.empty 5))

let test_absolute_diligence_range () =
  (* rho_bar(G) >= 1/(n-1) on any nonempty graph. *)
  let rng = Rng.create 56 in
  List.iter
    (fun g ->
      let r = Metrics.absolute_diligence g in
      check bool "range" true
        (r >= 1. /. float_of_int (Graph.n g - 1) -. 1e-12 && r <= 1.))
    [ Gen.clique_with_pendant 8; Gen.erdos_renyi rng 12 0.4; Gen.barbell 5 ]

let test_mean_degree_histogram () =
  let g = Gen.star 5 in
  check flt "mean degree" (8. /. 5.) (Metrics.mean_degree g);
  check
    (Alcotest.list (Alcotest.pair int int))
    "histogram" [ (1, 4); (4, 1) ] (Metrics.degree_histogram g)

let test_is_rho_diligent () =
  check bool "clique is 0.5-diligent" true (Metrics.is_rho_diligent (Gen.clique 6) 0.5);
  check bool "clique is not 1-diligent" false (Metrics.is_rho_diligent (Gen.clique 6) 1.0)

(* --- Spectral --- *)

let test_spectral_sweep_upper_bounds_exact () =
  (* The sweep value is an attained cut, so >= Phi; on these simple
     graphs power iteration finds the optimum (or near it). *)
  let rng = Rng.create 57 in
  List.iter
    (fun g ->
      let exact = Cut.conductance_exact g in
      let est = Spectral.estimate (Rng.split rng) g in
      check bool "sweep >= exact" true (est.Spectral.sweep_value >= exact -. 1e-9);
      check bool "sweep close to exact" true (est.Spectral.sweep_value <= 2. *. exact +. 1e-9))
    [ Gen.cycle 16; Gen.hypercube 4; Gen.clique 10; Gen.barbell 8 ]

let test_spectral_cheeger_sandwich () =
  let rng = Rng.create 58 in
  List.iter
    (fun g ->
      let exact = Cut.conductance_exact g in
      let est = Spectral.estimate (Rng.split rng) g in
      check bool "cheeger lower below exact" true
        (est.Spectral.cheeger_lower <= exact +. 0.05);
      check bool "cheeger upper above exact" true
        (est.Spectral.cheeger_upper >= exact -. 0.05))
    [ Gen.cycle 12; Gen.hypercube 4 ]

let test_spectral_rejects_degenerate () =
  let rng = Rng.create 59 in
  Alcotest.check_raises "edgeless"
    (Invalid_argument "Spectral.estimate: edgeless graph") (fun () ->
      ignore (Spectral.estimate rng (Gen.empty 4)));
  let isolated = Graph.of_edges 3 [ (0, 1) ] in
  Alcotest.check_raises "isolated node"
    (Invalid_argument "Spectral.estimate: isolated node (conductance undefined)")
    (fun () -> ignore (Spectral.estimate rng isolated))

let test_spectral_expander_gap () =
  (* Random cubic graphs are expanders: the sweep estimate must be
     bounded away from 0 at practical sizes. *)
  let rng = Rng.create 60 in
  let g = Gen.random_connected_regular rng 200 3 in
  let phi = Spectral.conductance_sweep rng g in
  check bool "expander conductance" true (phi > 0.04)

let () =
  Alcotest.run "cut_metrics"
    [
      ( "cut basics",
        [
          Alcotest.test_case "volume/cut size" `Quick test_volume_cut_size;
          Alcotest.test_case "cut edge orientation" `Quick test_cut_edges_orientation;
        ] );
      ( "conductance exact",
        [
          Alcotest.test_case "clique" `Quick test_conductance_clique;
          Alcotest.test_case "star" `Quick test_conductance_star;
          Alcotest.test_case "cycle" `Quick test_conductance_cycle;
          Alcotest.test_case "path" `Quick test_conductance_path;
          Alcotest.test_case "hypercube" `Quick test_conductance_hypercube;
          Alcotest.test_case "complete bipartite" `Quick
            test_conductance_complete_bipartite;
          Alcotest.test_case "disconnected" `Quick test_conductance_disconnected;
          Alcotest.test_case "size limit" `Quick test_conductance_size_limit;
          Alcotest.test_case "witness cut" `Quick test_min_conductance_cut_witness;
        ] );
      ( "diligence exact",
        [
          Alcotest.test_case "regular -> 1" `Quick test_diligence_regular_is_one;
          Alcotest.test_case "star -> 1" `Quick test_diligence_star_is_one;
          Alcotest.test_case "disconnected -> 0" `Quick test_diligence_disconnected_zero;
          Alcotest.test_case "range 1/(n-1)..1" `Quick test_diligence_range_property;
          Alcotest.test_case "cut validation" `Quick test_diligence_of_cut_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "absolute diligence closed forms" `Quick
            test_absolute_diligence_closed_forms;
          Alcotest.test_case "absolute diligence range" `Quick
            test_absolute_diligence_range;
          Alcotest.test_case "mean degree/histogram" `Quick test_mean_degree_histogram;
          Alcotest.test_case "is_rho_diligent" `Quick test_is_rho_diligent;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "sweep upper-bounds exact" `Quick
            test_spectral_sweep_upper_bounds_exact;
          Alcotest.test_case "cheeger sandwich" `Quick test_spectral_cheeger_sandwich;
          Alcotest.test_case "rejects degenerate" `Quick test_spectral_rejects_degenerate;
          Alcotest.test_case "expander gap" `Quick test_spectral_expander_gap;
        ] );
    ]
