(* Tests for the graph substrate: core type, builder, generators,
   traversal, union-find. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let degree_multiset g =
  List.sort compare (Array.to_list (Metrics.degree_array g))

(* --- Graph core --- *)

let test_of_edges_basic () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  check int "n" 4 (Graph.n g);
  check int "m" 3 (Graph.m g);
  check int "degree 1" 2 (Graph.degree g 1);
  check bool "has_edge" true (Graph.has_edge g 2 1);
  check bool "no edge" false (Graph.has_edge g 0 3);
  check int "volume" 6 (Graph.volume g)

let test_of_edges_rejects () =
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Graph.of_edges: self-loop at 1") (fun () ->
      ignore (Graph.of_edges 3 [ (1, 1) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.of_edges: duplicate edge (1, 0)") (fun () ->
      ignore (Graph.of_edges 3 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edges: edge (0, 3) out of range") (fun () ->
      ignore (Graph.of_edges 3 [ (0, 3) ]))

let test_edges_listing () =
  let g = Graph.of_edges 4 [ (2, 3); (0, 1); (1, 2) ] in
  check
    (Alcotest.list (Alcotest.pair int int))
    "sorted edges"
    [ (0, 1); (1, 2); (2, 3) ]
    (Array.to_list (Graph.edges g));
  check int "fold count" 3 (Graph.fold_edges (fun _ _ acc -> acc + 1) g 0)

let test_neighbor_indexing () =
  let g = Graph.of_edges 5 [ (2, 0); (2, 4); (2, 1) ] in
  check int "neighbor 0" 0 (Graph.neighbor g 2 0);
  check int "neighbor 2" 4 (Graph.neighbor g 2 2);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Graph.neighbor: index 3 out of range") (fun () ->
      ignore (Graph.neighbor g 2 3))

let test_graph_equal () =
  let a = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let b = Graph.of_edges 3 [ (1, 2); (0, 1) ] in
  let c = Graph.of_edges 3 [ (0, 1); (0, 2) ] in
  check bool "equal ignores edge order" true (Graph.equal a b);
  check bool "different edges" false (Graph.equal a c)

(* --- Builder --- *)

let test_builder_dedup () =
  let b = Builder.create 4 in
  check bool "add" true (Builder.add_edge b 0 1);
  check bool "dup" false (Builder.add_edge b 1 0);
  check int "m" 1 (Builder.m b);
  check bool "remove" true (Builder.remove_edge b 0 1);
  check int "m after remove" 0 (Builder.m b)

let test_builder_freeze_snapshot () =
  let b = Builder.create 3 in
  ignore (Builder.add_edge b 0 1);
  let g1 = Builder.freeze b in
  ignore (Builder.add_edge b 1 2);
  let g2 = Builder.freeze b in
  check int "snapshot m" 1 (Graph.m g1);
  check int "later m" 2 (Graph.m g2)

let test_builder_bipartite_overlap () =
  let b = Builder.create 4 in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Builder.add_complete_bipartite: sides intersect")
    (fun () -> Builder.add_complete_bipartite b [| 0; 1 |] [| 1; 2 |])

(* --- Generators --- *)

let test_clique () =
  let g = Gen.clique 6 in
  check int "m" 15 (Graph.m g);
  check bool "regular" true (Graph.is_regular g);
  check int "degree" 5 (Graph.max_degree g)

let test_star () =
  let g = Gen.star 7 in
  check int "m" 6 (Graph.m g);
  check int "center degree" 6 (Graph.degree g 0);
  check int "leaf degree" 1 (Graph.degree g 3)

let test_path_cycle () =
  let p = Gen.path 5 in
  check int "path m" 4 (Graph.m p);
  check int "path end degree" 1 (Graph.degree p 0);
  let c = Gen.cycle 5 in
  check int "cycle m" 5 (Graph.m c);
  check bool "cycle 2-regular" true
    (Graph.is_regular c && Graph.max_degree c = 2)

let test_circulant () =
  let g = Gen.circulant 10 [ 1; 2 ] in
  check bool "4-regular" true (Graph.is_regular g && Graph.max_degree g = 4);
  check bool "connected" true (Traverse.is_connected g);
  Alcotest.check_raises "stride too large"
    (Invalid_argument "Gen.circulant: stride 6 out of (0, n/2]") (fun () ->
      ignore (Gen.circulant 10 [ 6 ]))

let test_complete_bipartite () =
  let g = Gen.complete_bipartite 3 4 in
  check int "m" 12 (Graph.m g);
  check int "left degree" 4 (Graph.degree g 0);
  check int "right degree" 3 (Graph.degree g 5)

let test_grid_torus () =
  let g = Gen.grid 4 3 in
  check int "grid m" ((3 * 3) + (2 * 4)) (Graph.m g);
  check int "corner degree" 2 (Graph.degree g 0);
  let t = Gen.torus 4 3 in
  check bool "torus 4-regular" true
    (Graph.is_regular t && Graph.max_degree t = 4);
  check int "torus m" (2 * 12) (Graph.m t)

let test_hypercube () =
  let g = Gen.hypercube 4 in
  check int "n" 16 (Graph.n g);
  check bool "4-regular" true (Graph.is_regular g && Graph.max_degree g = 4);
  check int "diameter = dimension" 4 (Traverse.diameter g)

let test_binary_tree () =
  let g = Gen.binary_tree 7 in
  check int "m" 6 (Graph.m g);
  check int "root degree" 2 (Graph.degree g 0);
  check bool "connected" true (Traverse.is_connected g)

let test_barbell_lollipop () =
  let g = Gen.barbell 5 in
  check int "n" 10 (Graph.n g);
  check int "m" ((2 * 10) + 1) (Graph.m g);
  check bool "connected" true (Traverse.is_connected g);
  let l = Gen.lollipop 4 3 in
  check int "lollipop n" 7 (Graph.n l);
  check int "lollipop m" (6 + 3) (Graph.m l);
  check int "tail end degree" 1 (Graph.degree l 6)

let test_clique_with_pendant () =
  let g = Gen.clique_with_pendant 5 in
  check int "n" 6 (Graph.n g);
  check int "pendant degree" 1 (Graph.degree g 5);
  check int "attach degree" 5 (Graph.degree g 0)

let test_two_cliques_bridged () =
  let g = Gen.two_cliques_bridged 9 in
  (* 10 nodes: left 5, right 5, bridge 0-9. *)
  check int "n" 10 (Graph.n g);
  check bool "bridge exists" true (Graph.has_edge g 0 9);
  check bool "connected" true (Traverse.is_connected g);
  check int "m" (10 + 10 + 1) (Graph.m g)

let test_erdos_renyi () =
  let rng = Rng.create 31 in
  let g = Gen.erdos_renyi rng 100 0.1 in
  let expected = 0.1 *. float_of_int (100 * 99 / 2) in
  check bool "edge count near expectation" true
    (abs_float (float_of_int (Graph.m g) -. expected) < 5. *. sqrt expected);
  let empty = Gen.erdos_renyi rng 50 0. in
  check int "p = 0" 0 (Graph.m empty);
  let full = Gen.erdos_renyi rng 20 1. in
  check int "p = 1" 190 (Graph.m full)

let test_random_regular () =
  let rng = Rng.create 32 in
  List.iter
    (fun (n, d) ->
      let g = Gen.random_regular rng n d in
      check bool
        (Printf.sprintf "%d-regular on %d nodes" d n)
        true
        (Graph.is_regular g && Graph.max_degree g = d))
    [ (10, 3); (50, 4); (100, 8); (64, 9) ];
  Alcotest.check_raises "odd product"
    (Invalid_argument "Gen.random_regular: n * d must be even") (fun () ->
      ignore (Gen.random_regular rng 5 3));
  Alcotest.check_raises "d >= n" (Invalid_argument "Gen.random_regular: need d < n")
    (fun () -> ignore (Gen.random_regular rng 4 4))

let test_random_connected_regular () =
  let rng = Rng.create 33 in
  for _ = 1 to 5 do
    let g = Gen.random_connected_regular rng 60 3 in
    check bool "connected" true (Traverse.is_connected g);
    check bool "cubic" true (Graph.is_regular g && Graph.max_degree g = 3)
  done

let test_random_regular_distribution () =
  (* Degree sums and simplicity across seeds. *)
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.random_regular rng 40 6 in
      check int "volume" (40 * 6) (Graph.volume g);
      check (Alcotest.list int) "all degree 6"
        (List.init 40 (fun _ -> 6))
        (degree_multiset g))
    [ 1; 2; 3; 4; 5 ]

(* --- Traverse --- *)

let test_bfs_distances () =
  let g = Gen.path 5 in
  check (Alcotest.array int) "path distances" [| 0; 1; 2; 3; 4 |]
    (Traverse.bfs g 0);
  let g2 = Graph.of_edges 4 [ (0, 1) ] in
  let d = Traverse.bfs g2 0 in
  check int "unreachable" (-1) d.(3)

let test_components () =
  let g = Graph.of_edges 6 [ (0, 1); (2, 3); (3, 4) ] in
  let label, count = Traverse.components g in
  check int "three components" 3 count;
  check bool "0 and 1 together" true (label.(0) = label.(1));
  check bool "2, 3, 4 together" true (label.(2) = label.(3) && label.(3) = label.(4));
  check bool "5 alone" true (label.(5) <> label.(0) && label.(5) <> label.(2))

let test_connectivity_edge_cases () =
  check bool "empty graph connected" true (Traverse.is_connected (Gen.empty 0));
  check bool "single node connected" true (Traverse.is_connected (Gen.empty 1));
  check bool "two isolated nodes" false (Traverse.is_connected (Gen.empty 2))

let test_diameter () =
  check int "path diameter" 4 (Traverse.diameter (Gen.path 5));
  check int "clique diameter" 1 (Traverse.diameter (Gen.clique 5));
  check int "cycle diameter" 3 (Traverse.diameter (Gen.cycle 7));
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Traverse.eccentricity: disconnected graph") (fun () ->
      ignore (Traverse.diameter (Gen.empty 2)))

let test_component_of () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2) ] in
  let comp = Traverse.component_of g 1 in
  check int "component size" 3 (Bitset.cardinal comp);
  check bool "contains 0" true (Bitset.mem comp 0);
  check bool "not 4" false (Bitset.mem comp 4)

(* --- Unionfind --- *)

let test_unionfind () =
  let u = Unionfind.create 5 in
  check int "initial count" 5 (Unionfind.count u);
  check bool "union" true (Unionfind.union u 0 1);
  check bool "redundant union" false (Unionfind.union u 1 0);
  check bool "same" true (Unionfind.same u 0 1);
  check bool "not same" false (Unionfind.same u 0 2);
  ignore (Unionfind.union u 2 3);
  ignore (Unionfind.union u 0 3);
  check int "count after unions" 2 (Unionfind.count u);
  check bool "transitive" true (Unionfind.same u 1 2)

let () =
  Alcotest.run "graph"
    [
      ( "core",
        [
          Alcotest.test_case "of_edges" `Quick test_of_edges_basic;
          Alcotest.test_case "rejects malformed" `Quick test_of_edges_rejects;
          Alcotest.test_case "edge listing" `Quick test_edges_listing;
          Alcotest.test_case "neighbor indexing" `Quick test_neighbor_indexing;
          Alcotest.test_case "equal" `Quick test_graph_equal;
        ] );
      ( "builder",
        [
          Alcotest.test_case "dedup" `Quick test_builder_dedup;
          Alcotest.test_case "freeze snapshot" `Quick test_builder_freeze_snapshot;
          Alcotest.test_case "bipartite overlap" `Quick test_builder_bipartite_overlap;
        ] );
      ( "generators",
        [
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "path/cycle" `Quick test_path_cycle;
          Alcotest.test_case "circulant" `Quick test_circulant;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "grid/torus" `Quick test_grid_torus;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "barbell/lollipop" `Quick test_barbell_lollipop;
          Alcotest.test_case "clique with pendant" `Quick test_clique_with_pendant;
          Alcotest.test_case "two cliques bridged" `Quick test_two_cliques_bridged;
          Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "random connected regular" `Quick
            test_random_connected_regular;
          Alcotest.test_case "random regular degrees" `Quick
            test_random_regular_distribution;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "connectivity edge cases" `Quick
            test_connectivity_edge_cases;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "component_of" `Quick test_component_of;
        ] );
      ("unionfind", [ Alcotest.test_case "basic" `Quick test_unionfind ]);
    ]
