(* Cross-engine statistical conformance suite.

   Async_cut and Async_tick implement the same continuous-time
   push-pull process by different mechanisms — cut-rate event
   sequencing with rejection vs explicit per-node exponential clocks —
   so their spread-time {e distributions} must agree on every topology.
   A two-sample Kolmogorov-Smirnov test at alpha = 0.001 compares
   fixed-seed samples on the star, the cycle and a connected G(n, p)
   at n in {64, 256}; a closed-form round-count check pins the
   synchronous engine to the classical complete-graph results.

   False-positive budget: six KS comparisons at alpha = 0.001 carry a
   union-bound false-positive probability of 0.6% for a {e fresh}
   seed.  The seeds below are fixed, so the suite is deterministic: it
   either passes forever, or a code change genuinely moved one of the
   distributions.  If reseeding ever trips a single comparison with no
   engine change, pick another seed and require two consecutive
   failures before blaming an engine. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- KS: cut-rate engine vs tick engine --- *)

let reps = 150

let ks_engines_agree ~name ~seed net =
  let sample engine s =
    (Run.async_spread_times ~reps ~engine (Rng.create s) net).Run.times
  in
  (* Independent seeds per engine: the test compares distributions,
     not coupled paths. *)
  let cut = sample Run.Cut seed in
  let tick = sample Run.Tick (seed + 1) in
  let r = Ks.two_sample cut tick in
  let crit = Ks.critical_value ~n1:reps ~n2:reps ~alpha:0.001 in
  check bool
    (Printf.sprintf "%s: KS D=%.3f below critical %.3f (p=%.4f)" name
       r.Ks.statistic crit r.Ks.p_value)
    true
    (r.Ks.statistic < crit)

(* Connected G(n, p) at the connectivity threshold's safe side,
   resampling the (seeded) generator until connected so the spread
   time is finite. *)
let connected_gnp n seed =
  let p = 3. *. log (float_of_int n) /. float_of_int n in
  let rec go s =
    let g = Gen.erdos_renyi (Rng.create s) n p in
    if Traverse.is_connected g then g else go (s + 1)
  in
  go seed

let test_ks_star () =
  ks_engines_agree ~name:"star-64" ~seed:101
    (Dynet.of_static (Gen.star 64));
  ks_engines_agree ~name:"star-256" ~seed:103
    (Dynet.of_static (Gen.star 256))

let test_ks_cycle () =
  ks_engines_agree ~name:"cycle-64" ~seed:105
    (Dynet.of_static (Gen.cycle 64));
  ks_engines_agree ~name:"cycle-256" ~seed:107
    (Dynet.of_static (Gen.cycle 256))

let test_ks_gnp () =
  ks_engines_agree ~name:"gnp-64" ~seed:109
    (Dynet.of_static (connected_gnp 64 1064));
  ks_engines_agree ~name:"gnp-256" ~seed:111
    (Dynet.of_static (connected_gnp 256 1256))

(* --- Panagiotou-Speidel limit law on dense G(n,p) --- *)

(* PS (PAPERS.md) prove that push-pull spread times on dense G(n,p)
   (np >> log n) converge to the complete-graph law, independently of
   p: the per-edge rate 1/deg cancels the edge count.  The reference
   distribution needs no graph simulation — Limit_laws.clique_sample
   draws the exact K_n pure-jump chain — so this gate pins the whole
   simulator (graph generation, cut maintenance, event sequencing)
   against a closed form none of its code paths share. *)

let ps_reps = 200

let ks_against_clique_law ~name ~seed ~sim_seed net n =
  let sim =
    (Run.async_spread_times ~reps:ps_reps (Rng.create sim_seed) net).Run.times
  in
  let reference = Limit_laws.clique_samples (Rng.create seed) ~n ~reps:ps_reps in
  let r = Ks.two_sample sim reference in
  let crit = Ks.critical_value ~n1:ps_reps ~n2:ps_reps ~alpha:0.001 in
  check bool
    (Printf.sprintf "%s: KS D=%.3f below critical %.3f (p=%.4f)" name
       r.Ks.statistic crit r.Ks.p_value)
    true
    (r.Ks.statistic < crit)

let test_ps_clique_law_exact () =
  (* Sanity at p = 1: the simulator on K_n itself must match the chain
     at any n — this is an identity, not an asymptotic. *)
  ks_against_clique_law ~name:"K_64 vs chain" ~seed:201 ~sim_seed:301
    (Dynet.of_static (Gen.clique 64))
    64;
  ks_against_clique_law ~name:"K_256 vs chain" ~seed:203 ~sim_seed:303
    (Dynet.of_static (Gen.clique 256))
    256

let test_ps_gnp_limit_law () =
  (* Dense G(n,p): p = 0.75 at n = 256 gives np = 192 >> ln n = 5.5,
     deep in the PS regime; finite-n error is well inside the KS
     critical band at 200 replicates. *)
  let n = 256 in
  let g =
    let rec go s =
      let g = Gen.erdos_renyi (Rng.create s) n 0.75 in
      if Traverse.is_connected g then g else go (s + 1)
    in
    go 2056
  in
  ks_against_clique_law ~name:"G(256,0.75) vs clique law" ~seed:205
    ~sim_seed:305 (Dynet.of_static g) n;
  check (Alcotest.float 1e-12) "limit mean alias"
    (Limit_laws.clique_mean n) (Limit_laws.gnp_limit_mean n)

let test_acan_universal_pins () =
  (* Acan-Collevecchio-Mehrabian-Wormald: any connected n-vertex graph
     spreads in Omega(log n) and O(n) whp.  The deliberately slack
     pins (ln n / 4, 4n) must bracket the mean on the extremes we can
     build: the clique (fastest) and the path (slowest). *)
  List.iter
    (fun (name, n, net) ->
      let mc = Run.async_spread_times ~reps:60 (Rng.create 401) net in
      let m = Descriptive.mean mc.Run.times in
      let lo = Limit_laws.worst_case_lower n in
      let hi = Limit_laws.worst_case_upper n in
      check bool
        (Printf.sprintf "%s: %.3f inside [%.3f, %.3f]" name m lo hi)
        true
        (m > lo && m < hi))
    [
      ("clique-64", 64, Dynet.of_static (Gen.clique 64));
      ("clique-256", 256, Dynet.of_static (Gen.clique 256));
      ("path-64", 64, Dynet.of_static (Gen.path 64));
      ("star-256", 256, Dynet.of_static (Gen.star 256));
    ]

(* --- Sync engine vs complete-graph closed forms --- *)

let test_sync_push_pittel () =
  (* Pittel '87: push-only rounds on K_n are log2 n + ln n + O(1) in
     probability; the O(1) is small.  The mean over 100 fixed-seed
     replicates must sit in a +-3-round band around the closed form. *)
  let n = 128 in
  let net = Dynet.of_static (Gen.clique n) in
  let mc =
    Run.sync_spread_rounds ~reps:100 ~protocol:Protocol.Push (Rng.create 71)
      net
  in
  check int "all replicates complete" 100 mc.Run.completed;
  let expected =
    (log (float_of_int n) /. log 2.) +. log (float_of_int n)
  in
  let m = Descriptive.mean mc.Run.times in
  check bool
    (Printf.sprintf "push rounds mean %.2f ~ log2 n + ln n = %.2f" m expected)
    true
    (abs_float (m -. expected) < 3.)

let test_sync_push_pull_bounds () =
  (* Push-pull on K_n: the informed set at most triples per round, so
     every sample obeys the deterministic bound r >= ceil(log3 n); the
     classical upper tail is log3 n + O(ln ln n), a handful of rounds
     above it. *)
  let n = 243 in
  let net = Dynet.of_static (Gen.clique n) in
  let mc = Run.sync_spread_rounds ~reps:60 (Rng.create 72) net in
  check int "all replicates complete" 60 mc.Run.completed;
  let lower = Float.of_int 5 (* ceil(log3 243) = 5 exactly *) in
  Array.iter
    (fun r ->
      check bool
        (Printf.sprintf "sample %g >= log3 n = %g" r lower)
        true (r >= lower))
    mc.Run.times;
  let m = Descriptive.mean mc.Run.times in
  check bool
    (Printf.sprintf "push-pull rounds mean %.2f inside [%g, %g]" m lower
       (lower +. 6.))
    true
    (m >= lower && m <= lower +. 6.)

(* --- censoring conventions (regression pins) --- *)

(* Nodes 2 and 3 are unreachable, so every replicate censors at the
   horizon: the two runner tiers must expose that differently and
   consistently. *)
let disconnected = Dynet.of_static (Graph.of_edges 4 [ (0, 1) ])

let test_classic_censoring_convention () =
  (* Classic tier: a censored replicate contributes the time it
     reached — at least the horizon — and stays in [times], with
     [completed] telling the censored count apart. *)
  let horizon = 7.5 in
  let mc =
    Run.async_spread_times ~reps:20 ~horizon (Rng.create 80) disconnected
  in
  check int "no replicate completes" 0 mc.Run.completed;
  check int "censored replicates stay in the sample" 20
    (Array.length mc.Run.times);
  Array.iter
    (fun t -> check bool "censored entry carries the horizon" true (t >= horizon))
    mc.Run.times

let test_hardened_censoring_convention () =
  (* Hardened tier: censored replicates are tagged, excluded from
     [usable_times] (their times understate the truth), and restored
     under the classic convention only by [mc_of_sweep]. *)
  let horizon = 7.5 in
  let sweep =
    Run.async_spread_sweep ~reps:20 ~horizon (Rng.create 81) disconnected
  in
  let finished, censored, failed = Run.sweep_counts sweep in
  check int "all censored" 20 censored;
  check int "none finished" 0 finished;
  check int "none failed" 0 failed;
  check int "usable_times is Finished-only" 0
    (Array.length (Run.usable_times sweep));
  let mc = Run.mc_of_sweep sweep in
  check int "mc_of_sweep restores the classic sample" 20
    (Array.length mc.Run.times);
  check int "and keeps the completed count honest" 0 mc.Run.completed;
  Array.iter
    (fun t -> check bool "restored entry carries the horizon" true (t >= horizon))
    mc.Run.times

let test_estimate_follows_classic_convention () =
  (* Estimate sits on the classic runner: censored replicates are
     counted, their horizon-valued samples retained, and the requested
     quantile degrades to infinity when it falls in the censored
     mass. *)
  let est =
    Estimate.spread_time ~reps:15 ~q:0.9 ~horizon:5. (Rng.create 82)
      disconnected
  in
  check int "censored count" 15 est.Estimate.censored;
  check int "samples keep censored entries" 15
    (Array.length est.Estimate.samples);
  Array.iter
    (fun t -> check bool "sample at/after horizon" true (t >= 5.))
    est.Estimate.samples;
  check bool "censored quantile flagged infinite" true
    (est.Estimate.point = infinity);
  (* And the estimate is jobs-invariant like everything above it. *)
  let e1 =
    Estimate.spread_time ~jobs:1 ~reps:20 (Rng.create 83)
      (Dynet.of_static (Gen.clique 16))
  in
  let e3 =
    Estimate.spread_time ~jobs:3 ~reps:20 (Rng.create 83)
      (Dynet.of_static (Gen.clique 16))
  in
  check (Alcotest.float 0.) "estimate point identical across jobs"
    e1.Estimate.point e3.Estimate.point

let test_adaptive_censoring_pins () =
  (* Adaptive early stop must not bend the censoring conventions: a
     partially-censored sweep keeps censored replicates out of the
     estimator but inside the budget, and the decided prefix restores
     the classic convention through mc_of_sweep exactly like the
     fixed-count sweep does. *)
  let horizon = 4.0 in
  (* Cycle-48 at a tight horizon: a fraction of replicates censor. *)
  let net = Dynet.of_static (Gen.cycle 48) in
  let config =
    Adaptive.config ~min_reps:8 ~max_reps:64 ~chunk:8 (Adaptive.Abs 0.4)
  in
  let a =
    Run.async_spread_sweep_adaptive ~horizon ~config (Rng.create 83) net
  in
  let finished, censored, failed = Run.sweep_counts a.Run.sweep in
  check int "no replicate fails" 0 failed;
  check int "used counts Finished only" finished a.Run.used;
  check int "consumed = finished + censored" a.Run.consumed
    (finished + censored);
  check int "usable_times excludes censored" finished
    (Array.length (Run.usable_times a.Run.sweep));
  (* mc_of_sweep restores every replicate under the classic convention,
     horizon values included. *)
  let mc = Run.mc_of_sweep a.Run.sweep in
  check int "classic restoration keeps the prefix" a.Run.consumed
    (Array.length mc.Run.times);
  check int "completed honest" finished mc.Run.completed

let () =
  Alcotest.run "conformance"
    [
      ( "ks-cut-vs-tick",
        [
          Alcotest.test_case "star 64/256" `Slow test_ks_star;
          Alcotest.test_case "cycle 64/256" `Slow test_ks_cycle;
          Alcotest.test_case "G(n,p) 64/256" `Slow test_ks_gnp;
        ] );
      ( "limit-law",
        [
          Alcotest.test_case "clique vs exact chain" `Slow
            test_ps_clique_law_exact;
          Alcotest.test_case "PS G(n,p) limit" `Slow test_ps_gnp_limit_law;
          Alcotest.test_case "Acan universal pins" `Slow
            test_acan_universal_pins;
        ] );
      ( "sync-closed-form",
        [
          Alcotest.test_case "push matches Pittel" `Slow test_sync_push_pittel;
          Alcotest.test_case "push-pull round bounds" `Slow
            test_sync_push_pull_bounds;
        ] );
      ( "censoring",
        [
          Alcotest.test_case "classic keeps horizon values" `Quick
            test_classic_censoring_convention;
          Alcotest.test_case "hardened is Finished-only" `Quick
            test_hardened_censoring_convention;
          Alcotest.test_case "Estimate follows the classic tier" `Quick
            test_estimate_follows_classic_convention;
          Alcotest.test_case "adaptive early stop keeps the conventions"
            `Quick test_adaptive_censoring_pins;
        ] );
    ]
