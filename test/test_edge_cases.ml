(* Edge-case tests: boundary parameters, degenerate inputs and
   cross-module consistency checks not covered by the per-module
   suites. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt = Alcotest.float 1e-9

(* --- rng / dist boundaries --- *)

let test_rng_copy_snapshot () =
  let a = Rng.create 1 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  (* The copy continues the same stream; the original is unaffected by
     draws on the copy. *)
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  check Alcotest.int64 "same next draw" xa xb

let test_rng_int_bound_one () =
  let rng = Rng.create 2 in
  for _ = 1 to 100 do
    check int "bound 1 always 0" 0 (Rng.int rng 1)
  done

let test_poisson_sampler_boundary () =
  (* rate just below and above the PTRS switch (10.0). *)
  let rng = Rng.create 3 in
  List.iter
    (fun rate ->
      let samples =
        Array.init 30_000 (fun _ -> float_of_int (Dist.poisson rng ~rate))
      in
      let m = Descriptive.mean samples in
      check bool
        (Printf.sprintf "mean at rate %.1f" rate)
        true
        (abs_float (m -. rate) < 0.15))
    [ 9.9; 10.0; 10.1 ]

let test_geometric_high_p () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Dist.geometric rng ~p:0.999 in
    check bool "almost always 1" true (x >= 1 && x <= 3)
  done

let test_exponential_positive () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    check bool "strictly positive" true (Dist.exponential rng ~rate:1000. > 0.)
  done

let test_alias_singleton () =
  let a = Alias.create [| 5.0 |] in
  let rng = Rng.create 6 in
  for _ = 1 to 50 do
    check int "only choice" 0 (Alias.sample a rng)
  done;
  check flt "probability 1" 1.0 (Alias.probability a 0)

(* --- graph boundaries --- *)

let test_empty_and_singleton_graphs () =
  let e0 = Gen.empty 0 in
  check int "0 nodes" 0 (Graph.n e0);
  check int "0 edges" 0 (Graph.m e0);
  check bool "vacuously regular" true (Graph.is_regular e0);
  let e1 = Gen.empty 1 in
  check int "singleton degree" 0 (Graph.degree e1 0);
  check bool "singleton connected" true (Traverse.is_connected e1);
  check int "singleton diameter" 0 (Traverse.diameter e1)

let test_k2_parameters () =
  let g = Gen.clique 2 in
  check flt "phi(K2) = 1" 1.0 (Cut.conductance_exact g);
  check flt "rho(K2) = 1" 1.0 (Cut.diligence_exact g);
  check flt "rho_bar(K2) = 1" 1.0 (Metrics.absolute_diligence g)

let test_min_degree_with_isolated () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  check int "min degree 0" 0 (Graph.min_degree g);
  check int "max degree 1" 1 (Graph.max_degree g)

let test_grid_1xn_is_path () =
  let g = Gen.grid 5 1 in
  check bool "1xN grid = path" true (Graph.equal g (Gen.path 5))

let test_circulant_half_stride () =
  (* stride exactly n/2: each chord appears once (i and i+n/2 give the
     same pair), degree 1 from that class. *)
  let g = Gen.circulant 6 [ 3 ] in
  check int "m = n/2" 3 (Graph.m g);
  check bool "perfect matching" true (Graph.is_regular g && Graph.max_degree g = 1)

let test_builder_degree_tracking () =
  let b = Builder.create 5 in
  ignore (Builder.add_edge b 0 1);
  ignore (Builder.add_edge b 0 2);
  check int "degree" 2 (Builder.degree b 0);
  ignore (Builder.remove_edge b 0 1);
  check int "degree after removal" 1 (Builder.degree b 0)

(* --- engines on tiny / degenerate networks --- *)

let test_async_on_single_node () =
  let net = Dynet.of_static (Gen.empty 1) in
  let r = Async_cut.run (Rng.create 7) net ~source:0 in
  check bool "immediately complete" true r.Async_result.complete;
  check flt "zero time" 0. r.Async_result.time;
  let rt = Async_tick.run (Rng.create 7) net ~source:0 in
  check bool "tick immediately complete" true rt.Async_result.complete

let test_sync_on_single_node () =
  let net = Dynet.of_static (Gen.empty 1) in
  let r = Sync.run (Rng.create 8) net ~source:0 in
  check int "zero rounds" 0 r.Sync.rounds;
  check bool "complete" true r.Sync.complete

let test_flooding_zero_rounds_when_source_alone () =
  let net = Dynet.of_static (Gen.empty 1) in
  let r = Flooding.run (Rng.create 9) net ~source:0 in
  check int "zero rounds" 0 r.Flooding.rounds

let test_flooding_run_driver () =
  let net = Dynet.of_static (Gen.path 6) in
  let mc = Run.flooding_rounds ~reps:5 (Rng.create 10) net in
  check int "all complete" 5 mc.Run.completed;
  Array.iter
    (fun r -> check flt "flooding from node 0 = eccentricity 5" 5. r)
    mc.Run.times

let test_estimate_incomplete_runs () =
  (* Disconnected network: estimates must reflect the horizon, not
     crash. *)
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let net = Dynet.of_static g in
  let e = Estimate.spread_time ~reps:10 ~horizon:25. (Rng.create 11) net in
  check int "none complete" 0 e.Estimate.completed;
  check bool "point at horizon" true (e.Estimate.point >= 24.)

let test_trace_single_point () =
  check (Alcotest.list flt) "no phases on a single point" []
    (Trace.doubling_phases [| (0., 1) |] ~n:1)

(* --- dynamic families at minimum sizes --- *)

let test_g1_minimum () =
  let net = Dichotomy.g1 ~n:4 in
  let r = Async_cut.run (Rng.create 12) net ~source:4 in
  check bool "completes" true r.Async_result.complete

let test_g2_minimum () =
  let net = Dichotomy.g2 ~n:2 in
  let r = Sync.run (Rng.create 13) net ~source:0 in
  check bool "completes" true r.Sync.complete;
  check int "exactly n rounds" 2 r.Sync.rounds

let test_diligent_smallest_admissible () =
  (* Find the smallest n where rho = 0.5 is admissible and run it. *)
  let rec find n = if Diligent.admissible ~n ~rho:0.5 then n else find (n + 4) in
  let n = find 16 in
  let net = Diligent.network ~n ~rho:0.5 () in
  let r = Async_cut.run ~horizon:1e6 (Rng.create 14) net ~source:0 in
  check bool "completes at minimum size" true r.Async_result.complete

let test_absolute_smallest_admissible () =
  let rec find n = if Absolute.admissible ~n ~rho:0.5 then n else find (n + 2) in
  let n = find 12 in
  let net = Absolute.network ~n ~rho:0.5 in
  let r = Async_cut.run ~horizon:1e6 (Rng.create 15) net ~source:1 in
  check bool "completes at minimum size" true r.Async_result.complete

let test_adversary_minimum () =
  let net = Adversary.greedy_min_cut ~n:8 ~degree_budget:2 in
  let r = Async_cut.run ~horizon:1e6 (Rng.create 16) net ~source:0 in
  check bool "completes" true r.Async_result.complete;
  Alcotest.check_raises "tiny n"
    (Invalid_argument "Adversary.greedy_min_cut: need n >= 8") (fun () ->
      ignore (Adversary.greedy_min_cut ~n:4 ~degree_budget:2))

let test_adversary_structure () =
  let n = 20 in
  let net = Adversary.greedy_min_cut ~n ~degree_budget:4 in
  let inst = net.Dynet.spawn (Rng.create 17) in
  let informed = Bitset.of_list n [ 0; 1; 2 ] in
  let g = (Dynet.next inst ~informed).Dynet.graph in
  (* Exactly one edge crosses the informed/uninformed cut. *)
  check int "single bridge" 1 (Cut.cut_size g informed);
  check bool "connected" true (Traverse.is_connected g);
  check bool "budget respected (bridge adds 1)" true (Graph.max_degree g <= 5)

(* --- bounds edge cases --- *)

let test_bounds_profile_length () =
  let net = Dynet.of_static (Gen.clique 8) in
  let p = Bounds.profile ~steps:7 (Rng.create 18) net in
  check int "profile length" 7 (Array.length p)

let test_giakkoupis_disconnected () =
  (* A permanently disconnected network: M(G) is infinite, bound
     None. *)
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let net = Dynet.of_static g in
  let r = Giakkoupis.bound ~steps:4 (Rng.create 19) net in
  check bool "infinite M" true (r.Giakkoupis.m_factor = infinity);
  check bool "no bound" true (r.Giakkoupis.bound_time = None)

let test_corollary_none_when_unreachable () =
  let profiles = Array.make 4 { Bounds.phi = 0.; rho = 0.; rho_abs = 0.; connected = false } in
  check bool "both None -> None" true
    (Bounds.corollary_1_6_time ~c:1. ~n:16 profiles = None)

(* --- export round trips --- *)

let test_write_file_roundtrip () =
  let path = Filename.temp_file "rumor_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_file path "a,b\n1,2\n";
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check Alcotest.string "roundtrip" "a,b\n1,2\n" content)

let () =
  Alcotest.run "edge_cases"
    [
      ( "rng/dist boundaries",
        [
          Alcotest.test_case "copy snapshot" `Quick test_rng_copy_snapshot;
          Alcotest.test_case "int bound 1" `Quick test_rng_int_bound_one;
          Alcotest.test_case "poisson sampler switch" `Slow
            test_poisson_sampler_boundary;
          Alcotest.test_case "geometric high p" `Quick test_geometric_high_p;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "alias singleton" `Quick test_alias_singleton;
        ] );
      ( "graph boundaries",
        [
          Alcotest.test_case "empty/singleton" `Quick test_empty_and_singleton_graphs;
          Alcotest.test_case "K2 parameters" `Quick test_k2_parameters;
          Alcotest.test_case "isolated node degrees" `Quick
            test_min_degree_with_isolated;
          Alcotest.test_case "1xN grid" `Quick test_grid_1xn_is_path;
          Alcotest.test_case "circulant half stride" `Quick
            test_circulant_half_stride;
          Alcotest.test_case "builder degree tracking" `Quick
            test_builder_degree_tracking;
        ] );
      ( "degenerate simulations",
        [
          Alcotest.test_case "async single node" `Quick test_async_on_single_node;
          Alcotest.test_case "sync single node" `Quick test_sync_on_single_node;
          Alcotest.test_case "flooding single node" `Quick
            test_flooding_zero_rounds_when_source_alone;
          Alcotest.test_case "flooding driver" `Quick test_flooding_run_driver;
          Alcotest.test_case "estimate incomplete" `Quick test_estimate_incomplete_runs;
          Alcotest.test_case "trace single point" `Quick test_trace_single_point;
        ] );
      ( "families at minimum size",
        [
          Alcotest.test_case "G1 minimum" `Quick test_g1_minimum;
          Alcotest.test_case "G2 minimum" `Quick test_g2_minimum;
          Alcotest.test_case "diligent minimum" `Quick
            test_diligent_smallest_admissible;
          Alcotest.test_case "absolute minimum" `Quick
            test_absolute_smallest_admissible;
          Alcotest.test_case "adversary minimum" `Quick test_adversary_minimum;
          Alcotest.test_case "adversary structure" `Quick test_adversary_structure;
        ] );
      ( "bounds edge cases",
        [
          Alcotest.test_case "profile length" `Quick test_bounds_profile_length;
          Alcotest.test_case "giakkoupis disconnected" `Quick
            test_giakkoupis_disconnected;
          Alcotest.test_case "corollary unreachable" `Quick
            test_corollary_none_when_unreachable;
        ] );
      ( "export",
        [ Alcotest.test_case "write_file roundtrip" `Quick test_write_file_roundtrip ] );
    ]
