(* Tests for the supervised campaign harness (lib/harness): the
   CRC-framed write-ahead log and its crash recovery, the replicate
   supervisor (deadlines, retry/backoff, failure budget, journaled
   resume), and the campaign runner (done-task skipping, interrupt,
   quarantine, manifest).

   The load-bearing differential tests are the kill-and-resume ones:
   a sweep drained by a cancellation token mid-run and resumed from
   its journal must reproduce, replicate for replicate, the outcomes
   of an uninterrupted sweep — at jobs = 1 and jobs = 4 alike. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  go 0

let counter_value name = Obs.Metrics.value (Obs.Metrics.counter name)

let with_metrics f =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect ~finally:Obs.Metrics.disable f

let with_temp_wal f =
  let path = Filename.temp_file "rumor-wal" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Wal.quarantine_path path ])
    (fun () -> f path)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "rumor-campaign" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let sample_record i =
  Obs.Json.Obj
    [ ("i", Obs.Json.Int i); ("tag", Obs.Json.String "sample record") ]

(* --- CRC32 --- *)

let test_crc32_vectors () =
  (* The CRC-32/ISO-HDLC check value, and to_hex/of_hex round trips. *)
  check bool "check value" true
    (Crc32.digest "123456789" = 0xCBF43926l);
  check bool "empty digest" true (Crc32.digest "" = 0l);
  check bool "hex round trip" true
    (Crc32.of_hex (Crc32.to_hex 0xCBF43926l) = Some 0xCBF43926l);
  check bool "hex of zero" true (Crc32.to_hex 0l = "00000000");
  check bool "bad hex rejected" true (Crc32.of_hex "xyz" = None);
  check bool "short hex rejected" true (Crc32.of_hex "cbf439" = None);
  (* Incremental update equals one-shot digest. *)
  let s = "rumor-wal/1 incremental" in
  let mid = String.length s / 2 in
  let inc =
    Crc32.finish
      (Crc32.update
         (Crc32.update Crc32.init s ~pos:0 ~len:mid)
         s ~pos:mid
         ~len:(String.length s - mid))
  in
  check bool "incremental = one-shot" true (inc = Crc32.digest s)

(* --- WAL --- *)

let test_wal_roundtrip () =
  with_temp_wal (fun path ->
      let w = Wal.open_ ~fsync:false path in
      check bool "fresh log" true (not (Wal.recovery w).Wal.existed);
      for i = 0 to 2 do
        Wal.append w (sample_record i)
      done;
      Wal.close w;
      let r = Wal.read path in
      check int "three records read back" 3 (List.length r.Wal.records);
      check bool "records identical" true
        (r.Wal.records = [ sample_record 0; sample_record 1; sample_record 2 ]);
      check int "nothing corrupt" 0 r.Wal.corrupt_records;
      (* Reopening recovers the same records and appends after them. *)
      let w2 = Wal.open_ ~fsync:false path in
      check bool "reopen sees history" true
        ((Wal.recovery w2).Wal.records = r.Wal.records);
      Wal.append w2 (sample_record 3);
      Wal.close w2;
      check int "append after reopen" 4
        (List.length (Wal.read path).Wal.records))

let test_wal_truncated_tail () =
  with_metrics (fun () ->
      with_temp_wal (fun path ->
          let w = Wal.open_ ~fsync:false path in
          for i = 0 to 2 do
            Wal.append w (sample_record i)
          done;
          Wal.close w;
          (* Tear the final record mid-line, as a crash during a write
             would. *)
          let content = read_file path in
          write_file path (String.sub content 0 (String.length content - 9));
          let w2 = Wal.open_ ~fsync:false path in
          let r = Wal.recovery w2 in
          Wal.close w2;
          check int "two records survive" 2 (List.length r.Wal.records);
          check int "one quarantined" 1 r.Wal.corrupt_records;
          check bool "tail reported torn" true r.Wal.truncated_tail;
          check int "harness.wal_corrupt_records" 1
            (counter_value "harness.wal_corrupt_records");
          check bool "fragment quarantined, not dropped" true
            (Sys.file_exists (Wal.quarantine_path path));
          (* Recovery compacted the log: a second open is clean. *)
          let r2 = Wal.read path in
          check int "clean after compaction" 0 r2.Wal.corrupt_records;
          check int "survivors intact" 2 (List.length r2.Wal.records)))

let test_wal_lost_newline_keeps_record () =
  (* Only the terminating newline was lost: the record still verifies
     and must be kept, and the compaction must re-terminate it so the
     next append starts on a fresh line. *)
  with_temp_wal (fun path ->
      let w = Wal.open_ ~fsync:false path in
      for i = 0 to 2 do
        Wal.append w (sample_record i)
      done;
      Wal.close w;
      let content = read_file path in
      write_file path (String.sub content 0 (String.length content - 1));
      let w2 = Wal.open_ ~fsync:false path in
      check int "all three records kept" 3
        (List.length (Wal.recovery w2).Wal.records);
      check bool "not counted corrupt" true
        ((Wal.recovery w2).Wal.corrupt_records = 0);
      Wal.append w2 (sample_record 3);
      Wal.close w2;
      check int "append lands on its own line" 4
        (List.length (Wal.read path).Wal.records))

let test_wal_bit_flip () =
  with_metrics (fun () ->
      with_temp_wal (fun path ->
          let w = Wal.open_ ~fsync:false path in
          for i = 0 to 2 do
            Wal.append w (sample_record i)
          done;
          Wal.close w;
          (* Flip one payload byte of the middle record: the line still
             parses as JSON but its CRC no longer verifies. *)
          let lines = String.split_on_char '\n' (read_file path) in
          let flipped =
            List.mapi
              (fun i line ->
                if i = 2 then
                  String.map (fun c -> if c = '1' then '7' else c) line
                else line)
              lines
          in
          write_file path (String.concat "\n" flipped);
          let w2 = Wal.open_ ~fsync:false path in
          let r = Wal.recovery w2 in
          Wal.close w2;
          check int "two records survive the flip" 2
            (List.length r.Wal.records);
          check int "flipped record quarantined" 1 r.Wal.corrupt_records;
          check bool "not a torn tail" true (not r.Wal.truncated_tail);
          check int "harness.wal_corrupt_records" 1
            (counter_value "harness.wal_corrupt_records");
          check bool "quarantine holds the bad line" true
            (contains ~sub:"\"7\"" (read_file (Wal.quarantine_path path))
            || String.length (read_file (Wal.quarantine_path path)) > 0)))

let test_wal_bad_magic () =
  with_temp_wal (fun path ->
      write_file path "not-a-wal\n{\"crc\":\"00000000\",\"rec\":1}\n";
      (match Wal.read path with
      | _ -> Alcotest.fail "expected Bad_magic"
      | exception Wal.Bad_magic { found; _ } ->
        check bool "reports the found header" true (found = "not-a-wal"));
      match Wal.open_ ~fsync:false path with
      | _ -> Alcotest.fail "expected Bad_magic on open"
      | exception Wal.Bad_magic _ -> ())

let test_wal_missing_file_reads_empty () =
  with_temp_wal (fun path ->
      let r = Wal.read path in
      check bool "missing file is an empty recovery" true
        ((not r.Wal.existed) && r.Wal.records = [] && r.Wal.corrupt_records = 0))

(* --- Supervisor: parity, kill/resume, deadline, retry, budget --- *)

let test_supervisor_matches_unsupervised_sweep () =
  (* With nothing failing or timing out, the supervised sweep consumes
     the parent RNG identically to Run.async_spread_sweep and decides
     identical outcomes. *)
  let net = Dynet.of_static (Gen.clique 12) in
  let faults = Fault_plan.message_loss 0.2 in
  let reps = 8 in
  let plain = Run.async_spread_sweep ~reps ~faults (Rng.create 41) net in
  let supervised = Supervisor.sweep ~reps ~faults (Rng.create 41) net in
  check bool "seeds agree" true (supervised.Supervisor.seeds = plain.Run.seeds);
  Array.iteri
    (fun i o ->
      check bool
        (Printf.sprintf "outcome %d agrees" i)
        true
        (o = Some plain.Run.outcomes.(i)))
    supervised.Supervisor.outcomes;
  let f, c, x = Supervisor.counts supervised in
  check bool "counts agree" true ((f, c, x) = Run.sweep_counts plain);
  check bool "to_sweep round-trips" true
    ((Supervisor.to_sweep supervised).Run.outcomes = plain.Run.outcomes)

(* Wrap a network so the [k]-th spawn (1-based, across domains) fires
   a cancellation — simulating SIGTERM landing mid-sweep.  The wrapped
   spawn passes the replicate's own stream through untouched. *)
let cancel_after_spawns k token (net : Dynet.t) =
  let spawns = Atomic.make 0 in
  {
    net with
    Dynet.spawn =
      (fun rng ->
        if Atomic.fetch_and_add spawns 1 + 1 >= k then Pool.cancel token;
        net.Dynet.spawn rng);
  }

let kill_and_resume_bit_identical ~jobs () =
  let net = Dynet.of_static (Gen.clique 12) in
  let reps = 12 in
  let clean = Supervisor.sweep ~jobs ~reps (Rng.create 42) net in
  check bool "clean sweep decides everything" true
    (Array.for_all Option.is_some clean.Supervisor.outcomes);
  with_temp_wal (fun path ->
      (* Phase 1: drain mid-sweep.  The token is polled between
         replicates, so in-flight replicates finish and are journaled;
         the rest stay undecided. *)
      let token = Pool.token () in
      let w = Wal.open_ ~fsync:false path in
      let partial =
        Supervisor.sweep ~jobs ~reps ~wal:w ~cancel:token (Rng.create 42)
          (cancel_after_spawns 3 token net)
      in
      Wal.close w;
      check bool "drained early" true partial.Supervisor.cancelled;
      let decided =
        Array.fold_left
          (fun acc o -> if Option.is_some o then acc + 1 else acc)
          0 partial.Supervisor.outcomes
      in
      check bool "some replicates decided" true (decided >= 1);
      check bool "some replicates undecided" true (decided < reps);
      (* Phase 2: resume from the journal with a fresh parent RNG of
         the same seed; journaled outcomes are reused, missing indices
         re-derive the same child streams. *)
      let w2 = Wal.open_ ~fsync:false path in
      check int "journal holds the decided outcomes" decided
        (List.length (Wal.recovery w2).Wal.records);
      let resumed =
        Supervisor.sweep ~jobs ~reps ~wal:w2 (Rng.create 42) net
      in
      Wal.close w2;
      check int "journal prefill count" decided resumed.Supervisor.cached;
      Array.iteri
        (fun i o ->
          check bool
            (Printf.sprintf "replicate %d bit-identical after resume" i)
            true
            (o = clean.Supervisor.outcomes.(i)))
        resumed.Supervisor.outcomes)

let test_kill_resume_sequential () = kill_and_resume_bit_identical ~jobs:1 ()
let test_kill_resume_parallel () = kill_and_resume_bit_identical ~jobs:4 ()

let test_deadline_censors_and_counts () =
  with_metrics (fun () ->
      let net = Dynet.of_static (Gen.clique 64) in
      let config =
        { Supervisor.default_config with Supervisor.deadline_s = Some 1e-9 }
      in
      let report =
        Supervisor.sweep ~jobs:1 ~reps:4 ~config (Rng.create 43) net
      in
      let finished, censored, failed = Supervisor.counts report in
      check int "nothing finishes under an expired deadline" 0 finished;
      check int "every replicate censored" 4 censored;
      check int "no failures" 0 failed;
      check int "report tally" 4 report.Supervisor.deadline_censored;
      check int "harness.deadline_censored" 4
        (counter_value "harness.deadline_censored");
      check int "censored replicates have no finished times" 0
        (Array.length (Supervisor.finished_times report)))

(* Raise Sys_error from the first spawn only: a transient flake. *)
let flaky_first_spawn (net : Dynet.t) =
  let tripped = Atomic.make false in
  {
    net with
    Dynet.spawn =
      (fun rng ->
        if not (Atomic.exchange tripped true) then
          raise (Sys_error "injected transient flake");
        net.Dynet.spawn rng);
  }

let test_transient_retry_is_bit_identical () =
  with_metrics (fun () ->
      let net = Dynet.of_static (Gen.clique 12) in
      let reps = 6 in
      let clean = Supervisor.sweep ~jobs:1 ~reps (Rng.create 44) net in
      let config =
        {
          Supervisor.default_config with
          Supervisor.retries = 2;
          backoff_s = 0.;
        }
      in
      let report =
        Supervisor.sweep ~jobs:1 ~reps ~config (Rng.create 44)
          (flaky_first_spawn net)
      in
      check int "one retry consumed" 1 report.Supervisor.retried;
      check int "harness.retries" 1 (counter_value "harness.retries");
      check int "nothing quarantined" 0 report.Supervisor.quarantined;
      check int "first replicate took two attempts" 2
        report.Supervisor.attempts.(0);
      (* The retry re-derives the same child stream: outcomes are
         bit-identical to the run that never flaked. *)
      Array.iteri
        (fun i o ->
          check bool
            (Printf.sprintf "outcome %d identical despite the flake" i)
            true
            (o = clean.Supervisor.outcomes.(i)))
        report.Supervisor.outcomes)

let test_classification () =
  check bool "Sys_error is transient" true
    (Supervisor.default_classify (Sys_error "x") = Supervisor.Transient);
  check bool "Out_of_memory is transient" true
    (Supervisor.default_classify Out_of_memory = Supervisor.Transient);
  check bool "Failure is poison" true
    (Supervisor.default_classify (Failure "x") = Supervisor.Poison);
  check bool "injected failures are poison" true
    (Supervisor.default_classify (Inject.Injected_failure 0)
    = Supervisor.Poison)

let test_poison_quarantines_and_budget_aborts () =
  with_metrics (fun () ->
      let net = Dynet.of_static (Gen.clique 8) in
      let poison =
        { net with Dynet.spawn = (fun _ -> failwith "deterministic bug") }
      in
      let config =
        {
          Supervisor.default_config with
          Supervisor.retries = 2;
          backoff_s = 0.;
          fail_budget = 0.2;
        }
      in
      let token = Pool.token () in
      let report =
        Supervisor.sweep ~jobs:1 ~reps:10 ~cancel:token ~config
          (Rng.create 45) poison
      in
      (* 0.2 * 10 = 2 failures tolerated: the third quarantine trips
         the budget and the pool drains without touching the rest. *)
      check int "three quarantined" 3 report.Supervisor.quarantined;
      check int "harness.quarantined" 3 (counter_value "harness.quarantined");
      check int "poison is never retried" 0 report.Supervisor.retried;
      check bool "budget aborted the sweep" true report.Supervisor.aborted;
      check bool "pool drained" true report.Supervisor.cancelled;
      let decided =
        Array.fold_left
          (fun acc o -> if Option.is_some o then acc + 1 else acc)
          0 report.Supervisor.outcomes
      in
      check int "rest undecided" 3 decided;
      match report.Supervisor.outcomes.(0) with
      | Some (Run.Failed msg) ->
        check bool "failure message preserved" true
          (contains ~sub:"deterministic bug" msg)
      | _ -> Alcotest.fail "expected Failed")

(* --- Campaign --- *)

let quick_config ~dir =
  { (Campaign.default_config ~dir) with Campaign.fsync = false }

let test_campaign_done_and_cached () =
  with_temp_dir (fun dir ->
      let runs = Array.make 2 0 in
      let tasks =
        [
          { Campaign.id = "T1"; run = (fun () -> runs.(0) <- runs.(0) + 1) };
          { Campaign.id = "T2"; run = (fun () -> runs.(1) <- runs.(1) + 1) };
        ]
      in
      let cancel = Pool.token () in
      let s = Campaign.run ~cancel (quick_config ~dir) tasks in
      check bool "both done" true
        (List.for_all
           (fun (_, o) -> match o with Campaign.Done _ -> true | _ -> false)
           s.Campaign.outcomes);
      check bool "not resumed" true (not s.Campaign.resumed);
      check int "exit 0" 0 (Campaign.exit_code s);
      let manifest = read_file (Campaign.manifest_path (quick_config ~dir)) in
      check bool "manifest says resumed: false" true
        (contains ~sub:"\"resumed\": false" manifest);
      (* provenance rides along: argv is always recorded, as a list *)
      (match Obs.Json.member "argv" (Obs.Json.parse_exn manifest) with
      | Some (Obs.Json.List (Obs.Json.String _ :: _)) -> ()
      | _ -> Alcotest.fail "manifest missing argv provenance");
      (* Second run with --resume: everything journaled-done is
         skipped, nothing re-executes. *)
      let s2 =
        Campaign.run ~cancel
          { (quick_config ~dir) with Campaign.resume = true }
          tasks
      in
      check bool "both cached" true
        (List.for_all
           (fun (_, o) -> o = Campaign.Cached)
           s2.Campaign.outcomes);
      check bool "resumed" true s2.Campaign.resumed;
      check bool "tasks did not re-run" true (runs = [| 1; 1 |]);
      let manifest = read_file (Campaign.manifest_path (quick_config ~dir)) in
      check bool "manifest says resumed: true" true
        (contains ~sub:"\"resumed\": true" manifest))

let test_campaign_interrupt_and_resume () =
  with_temp_dir (fun dir ->
      let cancel = Pool.token () in
      let runs = Array.make 3 0 in
      let tasks =
        [
          { Campaign.id = "T1"; run = (fun () -> runs.(0) <- runs.(0) + 1) };
          {
            Campaign.id = "T2";
            run =
              (fun () ->
                runs.(1) <- runs.(1) + 1;
                (* SIGTERM lands while T2 runs: the handler cancels the
                   token, pools drain, the loop observes it after the
                   task body returns. *)
                Pool.cancel cancel);
          };
          { Campaign.id = "T3"; run = (fun () -> runs.(2) <- runs.(2) + 1) };
        ]
      in
      let s = Campaign.run ~cancel (quick_config ~dir) tasks in
      check bool "T1 done" true
        (match List.assoc "T1" s.Campaign.outcomes with
        | Campaign.Done _ -> true
        | _ -> false);
      check bool "T2 interrupted" true
        (List.assoc "T2" s.Campaign.outcomes = Campaign.Interrupted);
      check bool "T3 not run" true
        (List.assoc "T3" s.Campaign.outcomes = Campaign.Not_run);
      check bool "summary interrupted" true s.Campaign.interrupted;
      check int "interruption is exit 0" 0 (Campaign.exit_code s);
      check bool "T3 never started" true (runs.(2) = 0);
      (* Resume: T1 skips, T2 re-runs from scratch, T3 runs. *)
      let cancel2 = Pool.token () in
      let s2 =
        Campaign.run ~cancel:cancel2
          { (quick_config ~dir) with Campaign.resume = true }
          tasks
      in
      check bool "T1 cached on resume" true
        (List.assoc "T1" s2.Campaign.outcomes = Campaign.Cached);
      check bool "T2 done on resume" true
        (match List.assoc "T2" s2.Campaign.outcomes with
        | Campaign.Done _ -> true
        | _ -> false);
      check bool "T3 done on resume" true
        (match List.assoc "T3" s2.Campaign.outcomes with
        | Campaign.Done _ -> true
        | _ -> false);
      check bool "resume flagged" true s2.Campaign.resumed;
      check bool "T1 ran exactly once across both runs" true (runs.(0) = 1))

let test_campaign_retry_and_quarantine () =
  with_metrics (fun () ->
      with_temp_dir (fun dir ->
          let attempts = ref 0 in
          let tasks =
            [
              {
                Campaign.id = "FLAKY";
                run =
                  (fun () ->
                    incr attempts;
                    if !attempts = 1 then
                      raise (Sys_error "transient I/O flake"));
              };
              { Campaign.id = "POISON"; run = (fun () -> failwith "bug") };
              { Campaign.id = "OK"; run = (fun () -> ()) };
            ]
          in
          let cancel = Pool.token () in
          let config =
            { (quick_config ~dir) with Campaign.retries = 1; backoff_s = 0. }
          in
          let s = Campaign.run ~cancel config tasks in
          check bool "flaky task recovered" true
            (match List.assoc "FLAKY" s.Campaign.outcomes with
            | Campaign.Done _ -> true
            | _ -> false);
          check int "one retry recorded" 1 s.Campaign.retries;
          (match List.assoc "POISON" s.Campaign.outcomes with
          | Campaign.Quarantined msg ->
            check bool "quarantine message" true (contains ~sub:"bug" msg)
          | _ -> Alcotest.fail "expected Quarantined");
          check bool "later tasks still run" true
            (match List.assoc "OK" s.Campaign.outcomes with
            | Campaign.Done _ -> true
            | _ -> false);
          check int "quarantine is exit 1" 1 (Campaign.exit_code s);
          let manifest = read_file (Campaign.manifest_path config) in
          check bool "manifest records the quarantine" true
            (contains ~sub:"\"quarantined\": 1" manifest)))

let test_campaign_fail_budget_aborts () =
  with_temp_dir (fun dir ->
      let ran_good = ref false in
      let tasks =
        [
          { Campaign.id = "BAD1"; run = (fun () -> failwith "bug 1") };
          { Campaign.id = "BAD2"; run = (fun () -> failwith "bug 2") };
          { Campaign.id = "GOOD"; run = (fun () -> ran_good := true) };
        ]
      in
      let cancel = Pool.token () in
      let config =
        { (quick_config ~dir) with Campaign.fail_budget = 0.3; retries = 0 }
      in
      let s = Campaign.run ~cancel config tasks in
      check bool "aborted" true s.Campaign.aborted;
      check bool "BAD2 not run after the gate" true
        (List.assoc "BAD2" s.Campaign.outcomes = Campaign.Not_run);
      check bool "GOOD not run after the gate" true
        ((not !ran_good)
        && List.assoc "GOOD" s.Campaign.outcomes = Campaign.Not_run);
      check int "abort is exit 1" 1 (Campaign.exit_code s))

let test_campaign_recovers_corrupt_journal () =
  with_metrics (fun () ->
      with_temp_dir (fun dir ->
          let config = { (quick_config ~dir) with Campaign.resume = true } in
          (* A journal with a good record and a torn one, as a crash
             mid-append would leave. *)
          let w = Wal.open_ ~fsync:false (Campaign.wal_path config) in
          Wal.append w (sample_record 0);
          Wal.close w;
          let content = read_file (Campaign.wal_path config) in
          write_file (Campaign.wal_path config) (content ^ "{\"crc\":\"dead");
          let s =
            Campaign.run ~cancel:(Pool.token ()) config
              [ { Campaign.id = "T1"; run = (fun () -> ()) } ]
          in
          check int "torn record surfaced in the summary" 1
            s.Campaign.wal_corrupt_records;
          check bool "counter nonzero" true
            (counter_value "harness.wal_corrupt_records" > 0);
          check bool "manifest reports it" true
            (contains ~sub:"\"wal_corrupt_records\": 1"
               (read_file (Campaign.manifest_path config)))))

let () =
  Alcotest.run "harness"
    [
      ( "crc32",
        [ Alcotest.test_case "vectors and hex" `Quick test_crc32_vectors ] );
      ( "wal",
        [
          Alcotest.test_case "append/read round trip" `Quick
            test_wal_roundtrip;
          Alcotest.test_case "truncated tail quarantined" `Quick
            test_wal_truncated_tail;
          Alcotest.test_case "lost newline keeps the record" `Quick
            test_wal_lost_newline_keeps_record;
          Alcotest.test_case "bit flip quarantined" `Quick test_wal_bit_flip;
          Alcotest.test_case "bad magic refused" `Quick test_wal_bad_magic;
          Alcotest.test_case "missing file reads empty" `Quick
            test_wal_missing_file_reads_empty;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "parity with the unsupervised sweep" `Quick
            test_supervisor_matches_unsupervised_sweep;
          Alcotest.test_case "kill/resume bit-identical (jobs 1)" `Quick
            test_kill_resume_sequential;
          Alcotest.test_case "kill/resume bit-identical (jobs 4)" `Quick
            test_kill_resume_parallel;
          Alcotest.test_case "deadline censoring" `Quick
            test_deadline_censors_and_counts;
          Alcotest.test_case "transient retry bit-identity" `Quick
            test_transient_retry_is_bit_identical;
          Alcotest.test_case "failure classification" `Quick
            test_classification;
          Alcotest.test_case "poison quarantine and failure budget" `Quick
            test_poison_quarantines_and_budget_aborts;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "done and cached" `Quick
            test_campaign_done_and_cached;
          Alcotest.test_case "interrupt and resume" `Quick
            test_campaign_interrupt_and_resume;
          Alcotest.test_case "retry and quarantine" `Quick
            test_campaign_retry_and_quarantine;
          Alcotest.test_case "failure budget aborts" `Quick
            test_campaign_fail_budget_aborts;
          Alcotest.test_case "corrupt journal recovery" `Quick
            test_campaign_recovers_corrupt_journal;
        ] );
    ]
