(* Tests for the simulation engines.  The load-bearing one is the
   distribution-level agreement between the fast cut-rate engine and
   the literal per-tick engine. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Protocol --- *)

let test_protocol_apply () =
  let open Protocol in
  check (Alcotest.pair bool bool) "push transmits caller->callee" (true, true)
    (apply Push ~caller_informed:true ~callee_informed:false);
  check (Alcotest.pair bool bool) "push does not pull" (false, true)
    (apply Push ~caller_informed:false ~callee_informed:true);
  check (Alcotest.pair bool bool) "pull retrieves" (true, true)
    (apply Pull ~caller_informed:false ~callee_informed:true);
  check (Alcotest.pair bool bool) "pull does not push" (true, false)
    (apply Pull ~caller_informed:true ~callee_informed:false);
  check (Alcotest.pair bool bool) "push-pull both" (true, true)
    (apply Push_pull ~caller_informed:false ~callee_informed:true);
  check (Alcotest.pair bool bool) "nothing from nothing" (false, false)
    (apply Push_pull ~caller_informed:false ~callee_informed:false)

(* --- Async engines: basics --- *)

let test_cut_single_edge_mean () =
  (* On K2 the informing rate is 1/1 + 1/1 = 2: spread time is
     Exp(2), mean 0.5. *)
  let net = Dynet.of_static (Gen.clique 2) in
  let rng = Rng.create 1 in
  let samples =
    Array.init 4000 (fun _ ->
        let r = Async_cut.run (Rng.split rng) net ~source:0 in
        r.Async_result.time)
  in
  let m = Descriptive.mean samples in
  check bool "mean ~ 0.5" true (abs_float (m -. 0.5) < 0.03)

let test_tick_single_edge_mean () =
  let net = Dynet.of_static (Gen.clique 2) in
  let rng = Rng.create 2 in
  let samples =
    Array.init 4000 (fun _ ->
        let r = Async_tick.run (Rng.split rng) net ~source:0 in
        r.Async_result.time)
  in
  let m = Descriptive.mean samples in
  check bool "mean ~ 0.5" true (abs_float (m -. 0.5) < 0.03)

let test_async_completes_and_monotone () =
  let net = Dynet.of_static (Gen.cycle 20) in
  let r = Async_cut.run ~record_trace:true (Rng.create 3) net ~source:5 in
  check bool "complete" true r.Async_result.complete;
  check bool "all informed" true (Bitset.is_full r.Async_result.informed);
  check int "n-1 informing events" 19 r.Async_result.events;
  (* Trace is monotone in time and count. *)
  let trace = r.Async_result.trace in
  check int "trace length" 20 (Array.length trace);
  for i = 1 to Array.length trace - 1 do
    let t0, c0 = trace.(i - 1) and t1, c1 = trace.(i) in
    check bool "time monotone" true (t1 >= t0);
    check int "count increments" (c0 + 1) c1
  done

let test_async_source_validation () =
  let net = Dynet.of_static (Gen.cycle 5) in
  Alcotest.check_raises "bad source"
    (Invalid_argument "Async_cut.run: source 9 out of range") (fun () ->
      ignore (Async_cut.run (Rng.create 1) net ~source:9));
  Alcotest.check_raises "tick bad source"
    (Invalid_argument "Async_tick.run: source -1 out of range") (fun () ->
      ignore (Async_tick.run (Rng.create 1) net ~source:(-1)))

let test_async_horizon_incomplete () =
  (* Disconnected static graph: can never complete; must stop at the
     horizon. *)
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let net = Dynet.of_static g in
  let r = Async_cut.run ~horizon:50. (Rng.create 4) net ~source:0 in
  check bool "incomplete" false r.Async_result.complete;
  check bool "stopped at horizon" true (r.Async_result.time >= 49.);
  check int "informed only the component" 2
    (Bitset.cardinal r.Async_result.informed);
  let rt = Async_tick.run ~horizon:50. (Rng.create 4) net ~source:0 in
  check bool "tick incomplete" false rt.Async_result.complete

let test_engines_agree_in_distribution () =
  (* Means within Monte-Carlo tolerance across a zoo of graphs. *)
  let rng = Rng.create 5 in
  let reps = 400 in
  List.iter
    (fun (label, g) ->
      let net = Dynet.of_static g in
      let sample engine =
        let xs =
          Array.init reps (fun _ ->
              let child = Rng.split rng in
              match engine with
              | `Cut -> (Async_cut.run child net ~source:0).Async_result.time
              | `Tick -> (Async_tick.run child net ~source:0).Async_result.time)
        in
        (Descriptive.mean xs, Descriptive.std_error xs)
      in
      let mc, sc = sample `Cut in
      let mt, st = sample `Tick in
      let gap = abs_float (mc -. mt) in
      let tol = 5. *. sqrt ((sc *. sc) +. (st *. st)) in
      check bool (label ^ ": means agree") true (gap < tol))
    [
      ("K8", Gen.clique 8);
      ("star 12", Gen.star 12);
      ("cycle 10", Gen.cycle 10);
      ("path 8", Gen.path 8);
      ("barbell 5", Gen.barbell 5);
    ]

let test_engines_agree_on_dynamic () =
  (* Same check on the adaptive star (graph changes every step). *)
  let rng = Rng.create 6 in
  let reps = 400 in
  let net = Dichotomy.g2 ~n:16 in
  let sample engine =
    let xs =
      Array.init reps (fun _ ->
          let child = Rng.split rng in
          match engine with
          | `Cut -> (Async_cut.run child net ~source:0).Async_result.time
          | `Tick -> (Async_tick.run child net ~source:0).Async_result.time)
    in
    (Descriptive.mean xs, Descriptive.std_error xs)
  in
  let mc, sc = sample `Cut in
  let mt, st = sample `Tick in
  check bool "dynamic star means agree" true
    (abs_float (mc -. mt) < 5. *. sqrt ((sc *. sc) +. (st *. st)))

let test_clique_spread_logarithmic () =
  let rng = Rng.create 7 in
  let mean n =
    let net = Dynet.of_static (Gen.clique n) in
    let xs =
      Array.init 60 (fun _ ->
          (Async_cut.run (Rng.split rng) net ~source:0).Async_result.time)
    in
    Descriptive.mean xs
  in
  let m64 = mean 64 and m512 = mean 512 in
  (* Theta(log n): ratio ~ log 512 / log 64 = 1.5, far from the x8 of
     linear growth. *)
  check bool "sublinear growth" true (m512 /. m64 < 2.5);
  check bool "still grows" true (m512 > m64 *. 0.9)


let test_engines_agree_ks () =
  (* Full-distribution agreement (not just means): two-sample KS on a
     static expander and on the adaptive star. *)
  let rng = Rng.create 99 in
  List.iter
    (fun (label, net) ->
      let reps = 500 in
      let sample engine =
        Array.init reps (fun _ ->
            let child = Rng.split rng in
            match engine with
            | `Cut -> (Async_cut.run child net ~source:0).Async_result.time
            | `Tick -> (Async_tick.run child net ~source:0).Async_result.time)
      in
      let r = Ks.two_sample (sample `Cut) (sample `Tick) in
      (* 0.1% level: the test must not flag identical distributions. *)
      check bool
        (label ^ ": KS below critical value")
        true
        (r.Ks.statistic < Ks.critical_value ~n1:reps ~n2:reps ~alpha:0.001))
    [
      ("K12", Dynet.of_static (Gen.clique 12));
      ("G2-12", Dichotomy.g2 ~n:12);
    ]


let test_informed_times_consistent () =
  let net = Dynet.of_static (Gen.clique 24) in
  let r = Async_cut.run ~record_trace:true (Rng.create 55) net ~source:3 in
  let times = r.Async_result.informed_times in
  check (Alcotest.float 1e-12) "source at 0" 0. times.(3);
  Array.iter (fun t -> check bool "finite when complete" true (Float.is_finite t)) times;
  let latest = Array.fold_left Float.max 0. times in
  check (Alcotest.float 1e-9) "latest = spread time" r.Async_result.time latest;
  (* Counting times <= each trace point reproduces the trajectory. *)
  Array.iter
    (fun (t, c) ->
      let count =
        Array.fold_left (fun acc x -> if x <= t +. 1e-12 then acc + 1 else acc) 0 times
      in
      check int "trace consistent with per-node times" c count)
    r.Async_result.trace

let test_informed_times_incomplete_nan () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let net = Dynet.of_static g in
  let r = Async_cut.run ~horizon:20. (Rng.create 56) net ~source:0 in
  check bool "unreachable nodes are nan" true
    (Float.is_nan r.Async_result.informed_times.(3));
  check bool "reached node finite" true
    (Float.is_finite r.Async_result.informed_times.(1))

let test_informed_times_tick_engine () =
  let net = Dynet.of_static (Gen.star 10) in
  let r = Async_tick.run (Rng.create 57) net ~source:0 in
  Array.iter
    (fun t -> check bool "tick engine records times" true (Float.is_finite t))
    r.Async_result.informed_times


(* --- stepping interface --- *)

let test_stepping_event_stream () =
  let n = 16 in
  let net = Dynet.of_static (Gen.clique n) in
  let e = Async_cut.create (Rng.create 70) net ~source:0 in
  check int "starts with source informed" 1 (Async_cut.informed_count e);
  let informs = ref 0 and boundaries = ref 0 in
  let rec drive () =
    match Async_cut.next_event e with
    | Async_cut.Complete t ->
      check bool "complete time = engine time" true (t = Async_cut.time e)
    | Async_cut.Informed (v, t) ->
      incr informs;
      check bool "node in range" true (v >= 0 && v < n);
      check bool "time monotone" true (t = Async_cut.time e);
      drive ()
    | Async_cut.Step_boundary (step, _) ->
      incr boundaries;
      check bool "integer time at boundary" true
        (Float.is_integer (Async_cut.time e) && step >= 1);
      drive ()
  in
  drive ();
  check int "n-1 informing events" (n - 1) !informs;
  check bool "engine complete" true (Async_cut.is_complete e);
  (* Complete is sticky. *)
  (match Async_cut.next_event e with
  | Async_cut.Complete _ -> ()
  | _ -> Alcotest.fail "Complete must be sticky")

let test_stepping_matches_run () =
  (* Same seed: run and a manual stepping loop produce the identical
     spread time (run is built on the stepping interface). *)
  let net = Dichotomy.g2 ~n:24 in
  let r = Async_cut.run (Rng.create 71) net ~source:0 in
  let e = Async_cut.create (Rng.create 71) net ~source:0 in
  let rec drive () =
    match Async_cut.next_event e with
    | Async_cut.Complete t -> t
    | _ -> drive ()
  in
  check (Alcotest.float 1e-12) "identical spread time" r.Async_result.time
    (drive ())

let test_stepping_early_stop () =
  (* Custom stopping rule: halt at half coverage. *)
  let n = 64 in
  let net = Dynet.of_static (Gen.clique n) in
  let e = Async_cut.create (Rng.create 72) net ~source:0 in
  let rec drive () =
    if Async_cut.informed_count e >= n / 2 then ()
    else
      match Async_cut.next_event e with
      | Async_cut.Complete _ -> Alcotest.fail "should stop at half"
      | _ -> drive ()
  in
  drive ();
  check int "stopped at half" (n / 2) (Async_cut.informed_count e);
  check bool "not complete" false (Async_cut.is_complete e)

(* --- 2-push coupling (Lemma 4.2's tooling) --- *)

let test_push_rate2_on_regular_equivalent () =
  (* On a regular graph, push-pull at rate 1 and the 2-push (push-only
     at rate 2) pick each edge direction at the same total rate; their
     spread-time means agree. *)
  let rng = Rng.create 8 in
  let g = Gen.circulant 24 [ 1; 2 ] in
  let net = Dynet.of_static g in
  let reps = 400 in
  let sample f = Array.init reps (fun _ -> f (Rng.split rng)) in
  let pp =
    sample (fun c -> (Async_tick.run c net ~source:0).Async_result.time)
  in
  let push2 =
    sample (fun c ->
        (Async_tick.run ~protocol:Protocol.Push ~rate:2.0 c net ~source:0)
          .Async_result.time)
  in
  let mpp = Descriptive.mean pp and m2 = Descriptive.mean push2 in
  let tol =
    5. *. sqrt ((Descriptive.std_error pp ** 2.) +. (Descriptive.std_error push2 ** 2.))
  in
  check bool "2-push equivalent on regular graphs" true (abs_float (mpp -. m2) < tol)

(* --- Sync --- *)

let test_sync_star_from_center () =
  (* Centre source: every leaf pulls in round 0 -> exactly 1 round. *)
  let net = Dynet.of_static (Gen.star 10) in
  let r = Sync.run (Rng.create 9) net ~source:0 in
  check int "one round" 1 r.Sync.rounds;
  check bool "complete" true r.Sync.complete

let test_sync_snapshot_semantics () =
  (* Path 0-1-2, source 0.  Round 1 cannot inform node 2 via a relay
     through node 1 in the same round: node 1 learns in round 0 only if
     contacted, and node 2 can only learn from node 1's round-start
     state.  So spread needs >= 2 rounds. *)
  let net = Dynet.of_static (Gen.path 3) in
  for seed = 0 to 20 do
    let r = Sync.run (Rng.create seed) net ~source:0 in
    check bool "at least 2 rounds" true (r.Sync.rounds >= 2)
  done

let test_sync_max_rounds () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let net = Dynet.of_static g in
  let r = Sync.run ~max_rounds:7 (Rng.create 10) net ~source:0 in
  check bool "incomplete" false r.Sync.complete;
  check int "stopped at max" 7 r.Sync.rounds

let test_sync_trace () =
  let net = Dynet.of_static (Gen.clique 16) in
  let r = Sync.run (Rng.create 11) net ~source:0 in
  let trace = r.Sync.trace in
  check int "trace rounds+1 entries" (r.Sync.rounds + 1) (Array.length trace);
  check int "starts at 1" 1 trace.(0);
  check int "ends full" 16 trace.(Array.length trace - 1);
  for i = 1 to Array.length trace - 1 do
    check bool "monotone" true (trace.(i) >= trace.(i - 1))
  done


let test_sync_pull_star_from_center () =
  (* Pull-only, centre source: every leaf pulls the rumor in round 0. *)
  let net = Dynet.of_static (Gen.star 12) in
  let r = Sync.run ~protocol:Protocol.Pull (Rng.create 80) net ~source:0 in
  check int "one round" 1 r.Sync.rounds

let test_sync_push_star_coupon_collector () =
  (* Push-only, centre source: leaves' pushes do nothing (they have no
     rumor) and the centre informs one uniformly random leaf per round —
     a coupon collector, ~ n H_n rounds. *)
  let n = 16 in
  let net = Dynet.of_static (Gen.star (n + 1)) in
  let rng = Rng.create 81 in
  let reps = 60 in
  let total = ref 0. in
  for _ = 1 to reps do
    let r = Sync.run ~protocol:Protocol.Push (Rng.split rng) net ~source:0 in
    check bool "complete" true r.Sync.complete;
    total := !total +. float_of_int r.Sync.rounds
  done;
  let mean = !total /. float_of_int reps in
  let harmonic =
    Array.fold_left ( +. ) 0. (Array.init n (fun i -> 1. /. float_of_int (i + 1)))
  in
  let expected = float_of_int n *. harmonic in
  check bool "coupon collector scale" true
    (abs_float (mean -. expected) < 0.3 *. expected)

let test_sync_push_leaf_source_two_phases () =
  (* Push-only from a leaf: round 0 must push leaf -> centre (the
     leaf's only neighbour), so at least 2 rounds always. *)
  let net = Dynet.of_static (Gen.star 6) in
  for seed = 0 to 10 do
    let r = Sync.run ~protocol:Protocol.Push (Rng.create seed) net ~source:3 in
    check bool "at least 2 rounds" true (r.Sync.rounds >= 2)
  done

(* --- Flooding --- *)

let test_flooding_is_eccentricity () =
  List.iter
    (fun (g, src) ->
      let net = Dynet.of_static g in
      let r = Flooding.run (Rng.create 12) net ~source:src in
      check int "rounds = eccentricity" (Traverse.eccentricity g src) r.Flooding.rounds)
    [ (Gen.path 9, 0); (Gen.path 9, 4); (Gen.cycle 10, 3); (Gen.clique 7, 0) ]

let test_flooding_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let net = Dynet.of_static g in
  let r = Flooding.run ~max_rounds:5 (Rng.create 13) net ~source:0 in
  check bool "incomplete" false r.Flooding.complete

(* --- Run driver --- *)

let test_run_source_resolution () =
  let hinted = Dichotomy.g1 ~n:6 in
  check int "explicit wins" 3 (Run.source_of hinted (Some 3));
  check int "hint next" 6 (Run.source_of hinted None);
  let unhinted = Dynet.of_static (Gen.cycle 5) in
  check int "default 0" 0 (Run.source_of unhinted None)

let test_run_monte_carlo () =
  let net = Dynet.of_static (Gen.clique 12) in
  let mc = Run.async_spread_times ~reps:25 (Rng.create 14) net in
  check int "reps" 25 mc.Run.reps;
  check int "all completed" 25 mc.Run.completed;
  check int "sample count" 25 (Array.length mc.Run.times);
  Array.iter (fun t -> check bool "positive times" true (t > 0.)) mc.Run.times

let test_run_reps_prefix_stable () =
  (* Same parent seed: the first k samples are identical regardless of
     total reps (split-per-rep contract). *)
  let net = Dynet.of_static (Gen.clique 10) in
  let a = Run.async_spread_times ~reps:5 (Rng.create 15) net in
  let b = Run.async_spread_times ~reps:10 (Rng.create 15) net in
  for i = 0 to 4 do
    check (Alcotest.float 1e-12) "prefix stable" a.Run.times.(i) b.Run.times.(i)
  done

let () =
  Alcotest.run "sim"
    [
      ("protocol", [ Alcotest.test_case "apply" `Quick test_protocol_apply ]);
      ( "async engines",
        [
          Alcotest.test_case "cut: K2 mean 0.5" `Quick test_cut_single_edge_mean;
          Alcotest.test_case "tick: K2 mean 0.5" `Quick test_tick_single_edge_mean;
          Alcotest.test_case "completion and trace" `Quick
            test_async_completes_and_monotone;
          Alcotest.test_case "source validation" `Quick test_async_source_validation;
          Alcotest.test_case "horizon on disconnected" `Quick
            test_async_horizon_incomplete;
          Alcotest.test_case "engines agree (static zoo)" `Slow
            test_engines_agree_in_distribution;
          Alcotest.test_case "engines agree (dynamic star)" `Slow
            test_engines_agree_on_dynamic;
          Alcotest.test_case "engines agree (KS distribution test)" `Slow
            test_engines_agree_ks;
          Alcotest.test_case "per-node informed times" `Quick
            test_informed_times_consistent;
          Alcotest.test_case "informed times nan when unreachable" `Quick
            test_informed_times_incomplete_nan;
          Alcotest.test_case "informed times (tick)" `Quick
            test_informed_times_tick_engine;
          Alcotest.test_case "stepping event stream" `Quick
            test_stepping_event_stream;
          Alcotest.test_case "stepping matches run" `Quick
            test_stepping_matches_run;
          Alcotest.test_case "stepping early stop" `Quick test_stepping_early_stop;
          Alcotest.test_case "clique spread logarithmic" `Quick
            test_clique_spread_logarithmic;
          Alcotest.test_case "2-push coupling on regular" `Slow
            test_push_rate2_on_regular_equivalent;
        ] );
      ( "sync",
        [
          Alcotest.test_case "star from centre" `Quick test_sync_star_from_center;
          Alcotest.test_case "snapshot semantics" `Quick test_sync_snapshot_semantics;
          Alcotest.test_case "max rounds" `Quick test_sync_max_rounds;
          Alcotest.test_case "trace" `Quick test_sync_trace;
          Alcotest.test_case "pull star from centre" `Quick
            test_sync_pull_star_from_center;
          Alcotest.test_case "push star coupon collector" `Slow
            test_sync_push_star_coupon_collector;
          Alcotest.test_case "push from leaf two phases" `Quick
            test_sync_push_leaf_source_two_phases;
        ] );
      ( "flooding",
        [
          Alcotest.test_case "rounds = eccentricity" `Quick
            test_flooding_is_eccentricity;
          Alcotest.test_case "disconnected" `Quick test_flooding_disconnected;
        ] );
      ( "run",
        [
          Alcotest.test_case "source resolution" `Quick test_run_source_resolution;
          Alcotest.test_case "monte carlo" `Quick test_run_monte_carlo;
          Alcotest.test_case "prefix stability" `Quick test_run_reps_prefix_stable;
        ] );
    ]
