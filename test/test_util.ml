(* Unit tests for the utility substrate: Bitset, Heap, Fenwick, Table,
   Ascii_plot. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt = Alcotest.float 1e-9

(* --- Bitset --- *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check int "empty cardinal" 0 (Bitset.cardinal s);
  check bool "add new" true (Bitset.add s 5);
  check bool "add dup" false (Bitset.add s 5);
  check bool "mem" true (Bitset.mem s 5);
  check bool "not mem" false (Bitset.mem s 6);
  check int "cardinal after add" 1 (Bitset.cardinal s);
  check bool "remove" true (Bitset.remove s 5);
  check bool "remove absent" false (Bitset.remove s 5);
  check int "cardinal after remove" 0 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "mem out of range"
    (Invalid_argument "Bitset: index 10 out of range [0, 10)") (fun () ->
      ignore (Bitset.mem s 10));
  Alcotest.check_raises "negative"
    (Invalid_argument "Bitset: index -1 out of range [0, 10)") (fun () ->
      ignore (Bitset.add s (-1)))

let test_bitset_word_boundaries () =
  (* Exercise indices straddling the 63-bit word boundary. *)
  let s = Bitset.create 200 in
  List.iter
    (fun i -> ignore (Bitset.add s i))
    [ 0; 62; 63; 64; 125; 126; 127; 199 ];
  check int "cardinal" 8 (Bitset.cardinal s);
  check (Alcotest.list int) "to_list sorted"
    [ 0; 62; 63; 64; 125; 126; 127; 199 ]
    (Bitset.to_list s)

let test_bitset_complement () =
  let s = Bitset.of_list 130 [ 0; 1; 2; 129 ] in
  let c = Bitset.create 130 in
  Bitset.complement_into s c;
  check int "complement cardinal" 126 (Bitset.cardinal c);
  check bool "0 not in complement" false (Bitset.mem c 0);
  check bool "3 in complement" true (Bitset.mem c 3);
  check bool "129 not in complement" false (Bitset.mem c 129);
  (* No stray bits above capacity: complement twice is identity. *)
  let s2 = Bitset.create 130 in
  Bitset.complement_into c s2;
  check bool "double complement" true (Bitset.equal s s2)

let test_bitset_copy_independent () =
  let s = Bitset.of_list 16 [ 3; 7 ] in
  let c = Bitset.copy s in
  ignore (Bitset.add c 9);
  check bool "copy add does not leak" false (Bitset.mem s 9);
  check int "original unchanged" 2 (Bitset.cardinal s)

let test_bitset_full () =
  let s = Bitset.create 3 in
  check bool "not full" false (Bitset.is_full s);
  List.iter (fun i -> ignore (Bitset.add s i)) [ 0; 1; 2 ];
  check bool "full" true (Bitset.is_full s);
  let zero = Bitset.create 0 in
  check bool "empty universe is full" true (Bitset.is_full zero)

let test_bitset_fold () =
  let s = Bitset.of_list 50 [ 10; 20; 30 ] in
  check int "fold sum" 60 (Bitset.fold ( + ) s 0)

(* --- Heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.; 1.; 4.; 2.; 3. ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
      out := k :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list flt) "sorted ascending" [ 1.; 2.; 3.; 4.; 5. ]
    (List.rev !out)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  check bool "is_empty" true (Heap.is_empty h);
  check bool "pop None" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_duplicates_and_payloads () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.push h 1.0 "b";
  Heap.push h 0.5 "c";
  check int "length" 3 (Heap.length h);
  let k, p = Heap.pop_exn h in
  check flt "min key" 0.5 k;
  check Alcotest.string "min payload" "c" p;
  ignore (Heap.pop_exn h);
  ignore (Heap.pop_exn h);
  check bool "drained" true (Heap.is_empty h)

let test_heap_random_against_sort () =
  let rng = Rng.create 7 in
  let keys = Array.init 500 (fun _ -> Rng.float rng) in
  let h = Heap.of_list (Array.to_list (Array.map (fun k -> (k, ())) keys)) in
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Array.iter
    (fun expected ->
      let k, () = Heap.pop_exn h in
      check flt "heap matches sort" expected k)
    sorted

(* --- Fenwick --- *)

let test_fenwick_prefix_sums () =
  let f = Fenwick.create 8 in
  Fenwick.fill_from f [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |];
  check flt "total" 36. (Fenwick.total f);
  check flt "prefix 0" 1. (Fenwick.prefix_sum f 0);
  check flt "prefix 3" 10. (Fenwick.prefix_sum f 3);
  check flt "prefix 7" 36. (Fenwick.prefix_sum f 7)

let test_fenwick_find () =
  let f = Fenwick.create 4 in
  Fenwick.fill_from f [| 1.; 0.; 2.; 1. |];
  check int "find 0.0" 0 (Fenwick.find f 0.0);
  check int "find 0.99" 0 (Fenwick.find f 0.99);
  check int "find 1.0 skips zero slot" 2 (Fenwick.find f 1.0);
  check int "find 2.99" 2 (Fenwick.find f 2.99);
  check int "find 3.5" 3 (Fenwick.find f 3.5);
  check int "find at total clamps" 3 (Fenwick.find f 4.0)

let test_fenwick_set_add () =
  let f = Fenwick.create 5 in
  Fenwick.set f 2 3.0;
  Fenwick.add f 2 1.5;
  Fenwick.add f 4 2.0;
  check flt "get" 4.5 (Fenwick.get f 2);
  check flt "total" 6.5 (Fenwick.total f);
  Fenwick.set f 2 0.;
  check flt "cleared slot" 0. (Fenwick.get f 2);
  check flt "total after clear" 2.0 (Fenwick.total f)

let test_fenwick_negative_clamp () =
  let f = Fenwick.create 2 in
  Fenwick.set f 0 1.0;
  Fenwick.add f 0 (-1.0000000001);
  check bool "clamped to >= 0" true (Fenwick.get f 0 >= 0.)

let test_fenwick_sampling_frequencies () =
  (* find over uniform x must land proportionally to weights. *)
  let f = Fenwick.create 3 in
  Fenwick.fill_from f [| 1.; 2.; 7. |];
  let rng = Rng.create 11 in
  let counts = Array.make 3 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let i = Fenwick.find f (Rng.float rng *. Fenwick.total f) in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int trials in
  check bool "slot0 ~ 0.1" true (abs_float (frac 0 -. 0.1) < 0.02);
  check bool "slot1 ~ 0.2" true (abs_float (frac 1 -. 0.2) < 0.02);
  check bool "slot2 ~ 0.7" true (abs_float (frac 2 -. 0.7) < 0.02)

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  check bool "contains header" true
    (String.length rendered > 0
    && String.sub rendered 0 4 = "name");
  (* Right-aligned numeric column. *)
  check bool "right aligned" true
    (let lines = String.split_on_char '\n' rendered in
     match lines with
     | _header :: _sep :: row1 :: _ -> String.length row1 > 0
     | _ -> false)

let test_table_arity_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: expected 2 cells, got 1") (fun () ->
      Table.add_row t [ "only" ])

let test_table_cells () =
  check Alcotest.string "cell_f" "3.14" (Table.cell_f 3.14159);
  check Alcotest.string "cell_f nan" "-" (Table.cell_f Float.nan);
  check Alcotest.string "cell_i" "42" (Table.cell_i 42)

(* --- Ascii_plot --- *)

let test_plot_renders () =
  let s =
    Ascii_plot.render ~width:20 ~height:5
      [ { Ascii_plot.label = 'x'; points = [ (1., 1.); (2., 4.); (3., 9.) ] } ]
  in
  check bool "nonempty" true (String.length s > 0);
  check bool "contains glyph" true (String.contains s 'x')

let test_plot_log_skips_nonpositive () =
  let s =
    Ascii_plot.render ~logx:true ~logy:true
      [ { Ascii_plot.label = 'z'; points = [ (0., 1.); (-1., 2.) ] } ]
  in
  check bool "no plottable points message" true
    (String.length s > 0 && String.contains s '(')

(* --- Env.parse_duration --- *)

let test_parse_duration_units () =
  let ok s = match Env.parse_duration s with Ok v -> v | Error e -> failwith e in
  check flt "bare seconds" 10. (ok "10");
  check flt "fractional" 0.25 (ok "0.25");
  check flt "seconds suffix" 10. (ok "10s");
  check flt "milliseconds" 0.5 (ok "500ms");
  check flt "minutes" 300. (ok "5m");
  check flt "hours" 3600. (ok "1h");
  check flt "case/space" 1.5 (ok " 1500MS ")

let test_parse_duration_invalid () =
  let err s =
    match Env.parse_duration s with Ok _ -> false | Error _ -> true
  in
  check bool "empty" true (err "");
  check bool "junk" true (err "soon");
  check bool "bad number" true (err "1.2.3s");
  check bool "zero" true (err "0s");
  check bool "negative" true (err "-5s");
  check bool "infinite" true (err "inf");
  check bool "unit alone" true (err "ms")

(* --- Stream (Welford) --- *)

let test_stream_moments () =
  let s = Stream.create () in
  check bool "empty mean is nan" true (Float.is_nan (Stream.mean s));
  check bool "empty min is nan" true (Float.is_nan (Stream.min s));
  List.iter (Stream.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check int "count" 8 (Stream.count s);
  check flt "mean" 5. (Stream.mean s);
  (* reference: unbiased sample variance of the same list *)
  check flt "variance" (32. /. 7.) (Stream.variance s);
  check flt "min" 2. (Stream.min s);
  check flt "max" 9. (Stream.max s)

let test_stream_matches_descriptive () =
  let rng = Rng.create 7 in
  let xs = Array.init 500 (fun _ -> Rng.float rng *. 100.) in
  let s = Stream.create () in
  Array.iter (Stream.add s) xs;
  let close a b = Float.abs (a -. b) < 1e-6 *. Float.max 1. (Float.abs b) in
  check bool "mean matches" true (close (Stream.mean s) (Descriptive.mean xs));
  check bool "stddev matches" true
    (close (Stream.stddev s) (Descriptive.stddev xs))

(* --- Net --- *)

let test_parse_hostport () =
  let ok what expect s =
    match Net.parse_hostport s with
    | Ok hp ->
      check (Alcotest.pair Alcotest.string int) what expect hp
    | Error e -> Alcotest.failf "%s: unexpected error %s" what e
  in
  ok "host:port" ("10.0.0.1", 7070) "10.0.0.1:7070";
  ok "hostname kept unresolved" ("coord.example", 443) "coord.example:443";
  ok "bare port gets default host" ("127.0.0.1", 8080) "8080";
  ok "empty host gets default host" ("127.0.0.1", 9090) ":9090";
  ok "port 0 = kernel-assigned" ("127.0.0.1", 0) "0";
  (match Net.parse_hostport ~default_host:"0.0.0.0" "4040" with
  | Ok hp ->
    check (Alcotest.pair Alcotest.string int) "custom default host"
      ("0.0.0.0", 4040) hp
  | Error e -> Alcotest.failf "custom default host: %s" e);
  let err what s =
    match Net.parse_hostport s with
    | Ok (h, p) -> Alcotest.failf "%s: accepted as %s:%d" what h p
    | Error _ -> ()
  in
  err "port out of range" "host:65536";
  err "negative port" "host:-1";
  err "non-numeric port" "host:http";
  err "missing port" "host:";
  err "empty" ""

let test_resolve () =
  (match Net.resolve "127.0.0.1" with
  | Ok addr ->
    check Alcotest.string "numeric short-circuits" "127.0.0.1"
      (Unix.string_of_inet_addr addr)
  | Error e -> Alcotest.failf "127.0.0.1: %s" e);
  (match Net.resolve "localhost" with
  | Ok addr ->
    check bool "localhost resolves to loopback" true
      (String.length (Unix.string_of_inet_addr addr) > 0)
  | Error _ ->
    (* A container without /etc/hosts is legal; the error must at
       least name the host. *)
    ());
  match Net.resolve "no-such-host.invalid" with
  | Ok _ -> Alcotest.fail "nonexistent host resolved"
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check bool "error names the host" true (contains e "no-such-host.invalid")

let () =
  Alcotest.run "util"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "word boundaries" `Quick test_bitset_word_boundaries;
          Alcotest.test_case "complement" `Quick test_bitset_complement;
          Alcotest.test_case "copy independent" `Quick test_bitset_copy_independent;
          Alcotest.test_case "is_full" `Quick test_bitset_full;
          Alcotest.test_case "fold" `Quick test_bitset_fold;
        ] );
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "duplicates/payloads" `Quick test_heap_duplicates_and_payloads;
          Alcotest.test_case "random vs sort" `Quick test_heap_random_against_sort;
        ] );
      ( "fenwick",
        [
          Alcotest.test_case "prefix sums" `Quick test_fenwick_prefix_sums;
          Alcotest.test_case "find" `Quick test_fenwick_find;
          Alcotest.test_case "set/add" `Quick test_fenwick_set_add;
          Alcotest.test_case "negative clamp" `Quick test_fenwick_negative_clamp;
          Alcotest.test_case "sampling frequencies" `Quick test_fenwick_sampling_frequencies;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity mismatch" `Quick test_table_arity_mismatch;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "renders" `Quick test_plot_renders;
          Alcotest.test_case "log skips nonpositive" `Quick test_plot_log_skips_nonpositive;
        ] );
      ( "env.parse_duration",
        [
          Alcotest.test_case "units" `Quick test_parse_duration_units;
          Alcotest.test_case "invalid" `Quick test_parse_duration_invalid;
        ] );
      ( "stream",
        [
          Alcotest.test_case "moments" `Quick test_stream_moments;
          Alcotest.test_case "matches descriptive" `Quick
            test_stream_matches_descriptive;
        ] );
      ( "net",
        [
          Alcotest.test_case "parse_hostport" `Quick test_parse_hostport;
          Alcotest.test_case "resolve" `Quick test_resolve;
        ] );
    ]
