(* Tests for the bound calculators: constants, crossing-time search,
   profiles, and the literature bounds. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt = Alcotest.float 1e-9

let test_constants () =
  check flt "c0 = 1/2 - 1/e" (0.5 -. (1. /. exp 1.)) Bounds.c0;
  check flt "C(1) = 30/c0" (30. /. Bounds.c0) (Bounds.big_c ~c:1.);
  check flt "C(2) = 40/c0" (40. /. Bounds.c0) (Bounds.big_c ~c:2.);
  Alcotest.check_raises "c < 1"
    (Invalid_argument "Bounds.big_c: Theorem 1.1 requires c >= 1") (fun () ->
      ignore (Bounds.big_c ~c:0.5))

let test_first_time () =
  (* f(t) = 1 each step: crossing target 2.5 happens at t = 2
     (cumulative 3). *)
  check (Alcotest.option int) "constant steps" (Some 2)
    (Bounds.first_time ~target:2.5 (fun _ -> 1.) ~max_steps:10);
  check (Alcotest.option int) "exact hit" (Some 1)
    (Bounds.first_time ~target:2.0 (fun _ -> 1.) ~max_steps:10);
  check (Alcotest.option int) "never" None
    (Bounds.first_time ~target:100. (fun _ -> 1.) ~max_steps:10);
  check (Alcotest.option int) "immediate" (Some 0)
    (Bounds.first_time ~target:0.5 (fun _ -> 1.) ~max_steps:10);
  Alcotest.check_raises "nan contribution"
    (Invalid_argument "Bounds.first_time: NaN step contribution") (fun () ->
      ignore (Bounds.first_time ~target:1. (fun _ -> Float.nan) ~max_steps:3))

let test_closed_forms () =
  let n = 100 in
  check flt "thm 1.1 closed form"
    (Bounds.big_c ~c:1. *. log 100. /. 0.25)
    (Bounds.theorem_1_1_closed_form ~c:1. ~n ~phi_rho:0.25);
  check flt "thm 1.3 closed form" 4000.
    (Bounds.theorem_1_3_closed_form ~n ~rho_abs:0.05);
  Alcotest.check_raises "zero phi_rho"
    (Invalid_argument "Bounds.theorem_1_1_closed_form: phi_rho must be positive")
    (fun () -> ignore (Bounds.theorem_1_1_closed_form ~c:1. ~n ~phi_rho:0.))

let test_profile_uses_analytic () =
  let net = Dynet.of_static ~phi:0.4 ~rho:0.9 ~rho_abs:0.1 (Gen.clique 6) in
  let p = (Bounds.profile ~steps:1 (Rng.create 1) net).(0) in
  check flt "phi" 0.4 p.Bounds.phi;
  check flt "rho" 0.9 p.Bounds.rho;
  check flt "rho_abs" 0.1 p.Bounds.rho_abs;
  check bool "connected inferred" true p.Bounds.connected

let test_profile_exact_fallback () =
  (* No analytic values + small n: the profile computes exact
     parameters. *)
  let net = Dynet.of_static (Gen.cycle 8) in
  let p = (Bounds.profile ~steps:1 (Rng.create 1) net).(0) in
  check flt "exact phi" (2. /. 8.) p.Bounds.phi;
  check flt "exact rho (regular)" 1.0 p.Bounds.rho;
  check flt "exact rho_abs" 0.5 p.Bounds.rho_abs

let test_profile_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let net = Dynet.of_static g in
  let p = (Bounds.profile ~steps:1 (Rng.create 1) net).(0) in
  check bool "disconnected" false p.Bounds.connected;
  check flt "phi 0" 0. p.Bounds.phi;
  check flt "rho 0" 0. p.Bounds.rho

let test_theorem_times_on_profiles () =
  let mk phi rho rho_abs connected = { Bounds.phi; rho; rho_abs; connected } in
  let n = 64 in
  (* Constant phi rho = 0.5: crossing at ceil(target / 0.5) - 1. *)
  let profiles = Array.make 2048 (mk 0.5 1.0 0.25 true) in
  let target = Bounds.big_c ~c:1. *. log (float_of_int n) in
  let expect = int_of_float (Float.ceil (target /. 0.5)) - 1 in
  (match Bounds.theorem_1_1_time ~c:1. ~n profiles with
  | Some t -> check bool "within 1 step" true (abs (t - expect) <= 1)
  | None -> Alcotest.fail "bound not reached");
  (* Theorem 1.3: contributions only on connected steps. *)
  let mixed =
    Array.init 4096 (fun i ->
        if i mod 2 = 0 then mk 0.5 1.0 0.5 true else mk 0. 0. 0.5 false)
  in
  (match Bounds.theorem_1_3_time ~n mixed with
  | Some t ->
    (* Need 2n/0.5 = 256 connected steps -> t ~ 511. *)
    check bool "disconnected steps skipped" true (abs (t - 510) <= 2)
  | None -> Alcotest.fail "abs bound not reached");
  (* Corollary 1.6 is the min. *)
  let c16 = Bounds.corollary_1_6_time ~c:1. ~n mixed in
  let t11 = Bounds.theorem_1_1_time ~c:1. ~n mixed in
  let t13 = Bounds.theorem_1_3_time ~n mixed in
  (match (c16, t11, t13) with
  | Some c, Some a, Some b -> check int "min" (min a b) c
  | _ -> Alcotest.fail "corollary components missing")

let test_giakkoupis_m_factor () =
  check flt "uniform degrees" 1.0
    (Giakkoupis.m_factor_of_degrees ~mins:[| 3; 3 |] ~maxs:[| 3; 3 |]);
  check flt "fluctuating" (7. /. 2.)
    (Giakkoupis.m_factor_of_degrees ~mins:[| 2; 3 |] ~maxs:[| 7; 3 |]);
  check bool "isolated node -> infinite" true
    (Giakkoupis.m_factor_of_degrees ~mins:[| 0 |] ~maxs:[| 2 |] = infinity)

let test_giakkoupis_on_static () =
  (* On a static regular graph M = 1 and the bound reduces to
     sum phi >= log n. *)
  let n = 16 in
  let net = Dynet.of_static ~phi:0.5 (Gen.clique n) in
  let r = Giakkoupis.bound ~steps:64 (Rng.create 2) net in
  check flt "M = 1" 1.0 r.Giakkoupis.m_factor;
  (match r.Giakkoupis.bound_time with
  | Some t ->
    check bool "crossing near log n / phi" true
      (abs (t - int_of_float (log (float_of_int n) /. 0.5)) <= 1)
  | None -> Alcotest.fail "bound not reached")

let test_giakkoupis_alternating_m () =
  let n = 16 in
  let net = Alternating.network ~n () in
  let r = Giakkoupis.bound ~steps:8 (Rng.create 3) net in
  check flt "M = (n-1)/3" (float_of_int (n - 1) /. 3.) r.Giakkoupis.m_factor

let test_static_bounds () =
  check flt "chierichetti" (log 100. /. 0.1)
    (Static_bounds.chierichetti_rounds ~phi:0.1 100);
  check flt "n log n" (100. *. log 100.) (Static_bounds.static_async_worst_case 100);
  check flt "karp" (log 128. /. log 2.) (Static_bounds.karp_clique_rounds 128);
  check flt "coupling" (5. +. log 100.) (Static_bounds.async_from_sync ~ts:5. 100);
  Alcotest.check_raises "phi <= 0"
    (Invalid_argument "Static_bounds.chierichetti_rounds: phi must be positive")
    (fun () -> ignore (Static_bounds.chierichetti_rounds ~phi:0. 10))

let () =
  Alcotest.run "bounds"
    [
      ( "constants/search",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "first_time" `Quick test_first_time;
          Alcotest.test_case "closed forms" `Quick test_closed_forms;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "analytic preferred" `Quick test_profile_uses_analytic;
          Alcotest.test_case "exact fallback" `Quick test_profile_exact_fallback;
          Alcotest.test_case "disconnected" `Quick test_profile_disconnected;
          Alcotest.test_case "theorem times" `Quick test_theorem_times_on_profiles;
        ] );
      ( "giakkoupis",
        [
          Alcotest.test_case "m factor" `Quick test_giakkoupis_m_factor;
          Alcotest.test_case "static regular" `Quick test_giakkoupis_on_static;
          Alcotest.test_case "alternating M" `Quick test_giakkoupis_alternating_m;
        ] );
      ("static anchors", [ Alcotest.test_case "formulas" `Quick test_static_bounds ]);
    ]
