(* Integration tests: small-scale end-to-end checks of the paper's
   headline claims, tying the dynamic families, the engines and the
   bound calculators together (the experiment harness runs the same
   claims at larger scale). *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mean_async ?horizon ?(reps = 40) seed net =
  let mc = Rumor_sim.Run.async_spread_times ?horizon ~reps (Rng.create seed) net in
  (Descriptive.mean mc.Rumor_sim.Run.times, mc.Rumor_sim.Run.completed)

(* Theorem 1.1 at small scale: measured q-max under the bound. *)
let test_thm11_small () =
  let n = 64 in
  let net = Dynet.of_static ~phi:0.5 ~rho:1.0 (Gen.clique n) in
  let mc = Rumor_sim.Run.async_spread_times ~reps:50 (Rng.create 1) net in
  let worst = Descriptive.max mc.Rumor_sim.Run.times in
  let bound = Bounds.theorem_1_1_closed_form ~c:1. ~n ~phi_rho:0.5 in
  check bool "max sample under T(G,1)" true (worst <= bound)

(* Theorem 1.3 at small scale. *)
let test_thm13_small () =
  let n = 32 in
  let net = Dynet.of_static (Gen.cycle n) in
  let mc = Rumor_sim.Run.async_spread_times ~reps:50 (Rng.create 2) net in
  let worst = Descriptive.max mc.Rumor_sim.Run.times in
  let bound = Bounds.theorem_1_3_closed_form ~n ~rho_abs:0.5 in
  check bool "max sample under T_abs" true (worst <= bound)

(* Theorem 1.7(i): on G1 async is slower than sync by a growing
   factor. *)
let test_dichotomy_g1_small () =
  let n = 128 in
  let net = Dichotomy.g1 ~n in
  let mc_a = Rumor_sim.Run.async_spread_times ~reps:60 (Rng.create 3) net in
  let q90 = Quantile.quantile mc_a.Rumor_sim.Run.times 0.9 in
  let mc_s = Rumor_sim.Run.sync_spread_rounds ~reps:20 (Rng.create 4) net in
  let sync_mean = Descriptive.mean mc_s.Rumor_sim.Run.times in
  check bool "async q90 >> sync mean" true (q90 > 2. *. sync_mean);
  check bool "async q90 = Omega(n) scale" true (q90 > float_of_int n /. 16.)

(* Theorem 1.7(ii): sync on G2 is exactly n rounds; async is tiny. *)
let test_dichotomy_g2_small () =
  let n = 64 in
  let net = Dichotomy.g2 ~n in
  let mc_s = Rumor_sim.Run.sync_spread_rounds ~reps:5 (Rng.create 5) net in
  Array.iter
    (fun r -> check (Alcotest.float 1e-9) "exactly n rounds" (float_of_int n) r)
    mc_s.Rumor_sim.Run.times;
  let mean_a, completed = mean_async 6 net in
  check int "async all complete" 40 completed;
  check bool "async logarithmic scale" true (mean_a < 4. *. log (float_of_int n))

(* Theorem 1.2 family at small scale: spread lands between the scaled
   lower bound and the Theorem 1.1 upper bound. *)
let test_diligent_sandwich () =
  let n = 256 and rho = 0.25 in
  let k = Paper_h.default_k n in
  let net = Diligent.network ~k ~n ~rho () in
  let mean, completed = mean_async ~reps:10 7 net in
  check int "complete" 10 completed;
  let lower = Diligent.spread_lower_bound ~n ~rho ~k in
  let p = (Bounds.profile ~steps:1 (Rng.create 8) net).(0) in
  let upper =
    Bounds.theorem_1_1_closed_form ~c:1. ~n ~phi_rho:(p.Bounds.phi *. p.Bounds.rho)
  in
  check bool "above scaled lower bound" true (mean > lower /. 8.);
  check bool "below upper bound" true (mean < upper)

(* Theorem 1.5 family at small scale. *)
let test_absolute_sandwich () =
  let n = 180 and rho = 0.1 in
  let net = Absolute.network ~n ~rho in
  let mean, completed = mean_async ~horizon:1e6 ~reps:6 9 net in
  check int "complete" 6 completed;
  check bool "above scaled lower bound" true
    (mean > Absolute.spread_lower_bound ~n ~rho /. 4.);
  let delta = Absolute.delta_of_rho rho in
  check bool "below T_abs" true
    (mean < Bounds.theorem_1_3_closed_form ~n ~rho_abs:(1. /. float_of_int (delta + 1)))

(* The experiment registry itself: every experiment is registered and
   findable. *)
let test_registry () =
  check int "20 experiments" 20 (List.length Rumor_experiments.Registry.all);
  List.iter
    (fun id ->
      match Rumor_experiments.Registry.find id with
      | Some e ->
        check Alcotest.string "id round-trip" (String.uppercase_ascii id)
          (String.uppercase_ascii e.Rumor_experiments.Experiment.id)
      | None -> Alcotest.failf "experiment %s not found" id)
    [
      "e1"; "E2"; "e3"; "E4"; "e5"; "E6"; "e7"; "E8"; "e9"; "E10"; "e13";
      "f1"; "l";
    ];
  check bool "unknown id" true (Rumor_experiments.Registry.find "E99" = None)

(* Figure 1 invariants run green end to end. *)
let test_f1_green () =
  let out =
    Rumor_experiments.F1_figure1.experiment.Rumor_experiments.Experiment.run
      ~full:false (Rng.create 10)
  in
  let last_note = List.nth out.Rumor_experiments.Experiment.notes
      (List.length out.Rumor_experiments.Experiment.notes - 1) in
  check bool "F1 invariants pass" true
    (String.length last_note > 0 && not (String.contains last_note '!'))

(* Mobile + Markovian end to end: the async algorithm tolerates
   disconnected steps (rho = 0 / ceil(phi) = 0 convention). *)
let test_disconnected_tolerance () =
  let net = Mobile.network ~agents:20 ~width:6 ~height:6 ~radius:2 in
  let r = Async_cut.run ~horizon:500. (Rng.create 11) net ~source:0 in
  (* Either completes or hits the horizon; must not raise and must
     never lose informed nodes. *)
  check bool "informed non-empty" true (Bitset.cardinal r.Async_result.informed >= 1);
  let net2 = Markovian.network ~n:24 ~p:0.3 ~q:0.3 () in
  let r2 = Async_cut.run ~horizon:500. (Rng.create 12) net2 ~source:0 in
  check bool "markovian run completes" true r2.Async_result.complete

(* Corollary 1.6: the combined bound is never worse than either
   part, evaluated on a real profile. *)
let test_corollary_combined () =
  let net = Dynet.of_static (Gen.hypercube 4) in
  let profiles = Bounds.profile ~steps:4096 (Rng.create 13) net in
  let n = 16 in
  let t11 = Bounds.theorem_1_1_time ~c:1. ~n profiles in
  let t13 = Bounds.theorem_1_3_time ~n profiles in
  let c = Bounds.corollary_1_6_time ~c:1. ~n profiles in
  (match (t11, t13, c) with
  | Some a, Some b, Some m ->
    check int "corollary is the min" (min a b) m
  | _ -> Alcotest.fail "bounds did not cross on hypercube profile")

let () =
  Alcotest.run "integration"
    [
      ( "theorems small-scale",
        [
          Alcotest.test_case "thm 1.1 holds" `Quick test_thm11_small;
          Alcotest.test_case "thm 1.3 holds" `Quick test_thm13_small;
          Alcotest.test_case "thm 1.7(i) G1" `Quick test_dichotomy_g1_small;
          Alcotest.test_case "thm 1.7(ii) G2" `Quick test_dichotomy_g2_small;
          Alcotest.test_case "thm 1.2 sandwich" `Slow test_diligent_sandwich;
          Alcotest.test_case "thm 1.5 sandwich" `Slow test_absolute_sandwich;
        ] );
      ( "harness",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "figure 1 green" `Quick test_f1_green;
          Alcotest.test_case "disconnected tolerance" `Quick
            test_disconnected_tolerance;
          Alcotest.test_case "corollary 1.6 combined" `Quick test_corollary_combined;
        ] );
    ]
