(* Tests for the chunked Domain pool (lib/par) and the split-seed
   determinism contract of the Monte-Carlo runners.

   The load-bearing guarantee under test: every runner's sample is
   bit-identical for ANY job count — replicate r runs on
   [Rng.derive base r], a pure function of the sweep seed and the
   replicate index, and the pool's static chunk partition adds no
   scheduling nondeterminism.  Byte-equality assertions (not
   approximate ones) are deliberate throughout. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let times_t = Alcotest.(array (float 0.))

(* --- Pool.resolve / chunk partition --- *)

let test_resolve () =
  check int "clamped to task count" 2 (Pool.resolve ~jobs:4 2);
  check int "at least one domain" 1 (Pool.resolve ~jobs:4 0);
  check int "explicit jobs wins" 3 (Pool.resolve ~jobs:3 100);
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Par.Pool: jobs must be at least 1") (fun () ->
      ignore (Pool.resolve ~jobs:0 5));
  Alcotest.check_raises "negative override rejected"
    (Invalid_argument "Par.Pool.set_default_jobs: jobs must be at least 1")
    (fun () -> Pool.set_default_jobs (Some 0))

let test_default_jobs_override () =
  (* The process-wide override (the CLI's --jobs) beats the
     environment and the detected core count. *)
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs None)
    (fun () ->
      Pool.set_default_jobs (Some 2);
      check int "override visible" 2 (Pool.default_jobs ());
      check int "resolve uses the override" 2 (Pool.resolve 100);
      Pool.set_default_jobs None;
      check bool "cleared override falls back" true (Pool.default_jobs () >= 1))

let test_chunk_coverage () =
  (* Every index runs exactly once, on the domain the static partition
     assigns it to, in increasing order within each domain. *)
  List.iter
    (fun (jobs, n) ->
      let owner = Array.make (max n 1) (-1) in
      let runs = Array.make (max n 1) 0 in
      let mono = ref true in
      let last_in_domain = Array.make jobs (-1) in
      let st =
        Pool.run ~jobs n (fun ~domain i ->
            owner.(i) <- domain;
            runs.(i) <- runs.(i) + 1;
            if i <= last_in_domain.(domain) then mono := false;
            last_in_domain.(domain) <- i)
      in
      check int "stats.tasks" n st.Pool.tasks;
      check bool "stats.jobs clamped" true (st.Pool.jobs <= max 1 n);
      check int "one wall-time per domain" st.Pool.jobs
        (Array.length st.Pool.wall_s);
      Array.iter (fun r -> check int "each task ran exactly once" 1 r)
        (Array.sub runs 0 n);
      check bool "in-order within each domain" true !mono;
      (* Contiguity: the owner sequence is non-decreasing. *)
      for i = 1 to n - 1 do
        check bool "contiguous chunks" true (owner.(i) >= owner.(i - 1))
      done;
      (* stats.chunk agrees with the observed assignment. *)
      Array.iteri
        (fun d c ->
          let observed =
            Array.fold_left
              (fun acc o -> if o = d then acc + 1 else acc)
              0 (Array.sub owner 0 n)
          in
          check int "chunk count matches" c observed)
        st.Pool.chunk)
    [ (1, 7); (3, 10); (4, 4); (5, 3); (2, 0); (7, 100) ]

let test_run_rejects_negative () =
  Alcotest.check_raises "negative task count"
    (Invalid_argument "Par.Pool.run: negative task count") (fun () ->
      ignore (Pool.run ~jobs:2 (-1) (fun ~domain:_ _ -> ())))

(* --- exception policy --- *)

exception Boom of int

let test_exception_isolation () =
  (* Tasks 1 (domain 0) and 4 (domain 1) raise on a 3-domain pool over
     9 tasks (chunks [0..2][3..5][6..8]).  The raise stops only its own
     domain's chunk; every other domain completes; the lowest-domain
     exception is the one re-raised, whatever the arrival order. *)
  let completed = Array.make 9 false in
  (match
     Pool.run ~jobs:3 9 (fun ~domain:_ i ->
         if i = 1 || i = 4 then raise (Boom i);
         completed.(i) <- true)
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check int "lowest-domain exception wins" 1 i);
  check bool "task before the raise ran" true completed.(0);
  check bool "rest of domain 0 chunk skipped" false completed.(2);
  check bool "domain 1 prefix ran" true completed.(3);
  check bool "rest of domain 1 chunk skipped" false completed.(5);
  check bool "domain 2 unaffected" true
    (completed.(6) && completed.(7) && completed.(8));
  (* Stats are recorded even on the exception path. *)
  match Pool.last () with
  | Some st -> check int "last () after a raising run" 9 st.Pool.tasks
  | None -> Alcotest.fail "last () empty after run"

let test_single_domain_exception () =
  (match Pool.run ~jobs:1 4 (fun ~domain:_ i -> if i = 2 then raise (Boom i))
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check int "sequential raise propagates" 2 i)

(* --- cooperative cancellation tokens --- *)

let test_cancel_pre_cancelled () =
  let token = Pool.token () in
  Pool.cancel token;
  check bool "is_cancelled reads the flag" true (Pool.is_cancelled token);
  let hits = Atomic.make 0 in
  let st =
    Pool.run ~jobs:2 ~cancel:token 10 (fun ~domain:_ _ -> Atomic.incr hits)
  in
  check int "no task starts on a cancelled token" 0 (Atomic.get hits);
  check bool "stats flag the drain" true st.Pool.cancelled;
  Pool.reset token;
  check bool "reset re-arms" false (Pool.is_cancelled token);
  let st2 =
    Pool.run ~jobs:2 ~cancel:token 10 (fun ~domain:_ _ -> Atomic.incr hits)
  in
  check int "re-armed token runs everything" 10 (Atomic.get hits);
  check bool "clean run is not flagged" false st2.Pool.cancelled

let test_cancel_drains_between_tasks () =
  (* The drain guarantee (pool.mli): the in-flight task finishes,
     nothing after it starts — so callers recording per-task outcomes
     see undecided tasks, never partial ones. *)
  let token = Pool.token () in
  let ran = Array.make 12 false in
  let st =
    Pool.run ~jobs:1 ~cancel:token 12 (fun ~domain:_ i ->
        ran.(i) <- true;
        if i = 3 then Pool.cancel token)
  in
  check bool "cancellation reported" true st.Pool.cancelled;
  check bool "in-flight task completed" true ran.(3);
  for i = 4 to 11 do
    check bool (Printf.sprintf "task %d never started" i) false ran.(i)
  done

let test_global_token_drains_every_pool () =
  (* The process-wide token the SIGINT/SIGTERM handlers cancel is
     polled by every run, even without an explicit ?cancel. *)
  Fun.protect
    ~finally:(fun () -> Pool.reset Pool.global)
    (fun () ->
      Pool.cancel Pool.global;
      let hits = Atomic.make 0 in
      let st = Pool.run ~jobs:2 6 (fun ~domain:_ _ -> Atomic.incr hits) in
      check int "no task starts after shutdown" 0 (Atomic.get hits);
      check bool "drain flagged" true st.Pool.cancelled);
  let st = Pool.run ~jobs:2 6 (fun ~domain:_ _ -> ()) in
  check bool "reset global runs normally" false st.Pool.cancelled

(* --- Rng.derive: the index-keyed streams under everything --- *)

let test_derive () =
  let base = 0x9E3779B97F4A7C15L in
  let a = Rng.bits64 (Rng.derive base 5) in
  let b = Rng.bits64 (Rng.derive base 5) in
  check bool "derive is a pure function of (base, i)" true (a = b);
  let distinct =
    List.sort_uniq compare
      (List.init 64 (fun i -> Rng.bits64 (Rng.derive base i)))
  in
  check int "sibling streams distinct" 64 (List.length distinct);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.derive: negative child index") (fun () ->
      ignore (Rng.derive base (-1)))

(* --- bit-identity of the runners across job counts --- *)

let faulty_plan =
  Fault_plan.make ~loss:0.3 ~churn:{ Fault_plan.crash = 0.05; recover = 0.5 }
    ()

let test_classic_bit_identity () =
  let net = Dynet.of_static (Gen.clique 16) in
  let sample jobs faults =
    (Run.async_spread_times ~jobs ~reps:12 ?faults (Rng.create 51) net)
      .Run.times
  in
  List.iter
    (fun faults ->
      let s1 = sample 1 faults in
      check times_t "jobs 1 = 2" s1 (sample 2 faults);
      check times_t "jobs 1 = 4" s1 (sample 4 faults))
    [ None; Some faulty_plan ]

let test_engines_bit_identity () =
  let net = Dynet.of_static (Gen.cycle 12) in
  let tick jobs =
    (Run.async_spread_times ~jobs ~engine:Run.Tick ~reps:8 (Rng.create 52) net)
      .Run.times
  in
  check times_t "tick engine jobs 1 = 3" (tick 1) (tick 3);
  let sync jobs =
    (Run.sync_spread_rounds ~jobs ~reps:8 (Rng.create 53) net).Run.times
  in
  check times_t "sync rounds jobs 1 = 3" (sync 1) (sync 3);
  let flood jobs =
    (Run.flooding_rounds ~jobs ~reps:8 (Rng.create 54) net).Run.times
  in
  check times_t "flooding rounds jobs 1 = 3" (flood 1) (flood 3)

let test_sweep_bit_identity () =
  let net = Dynet.of_static (Gen.clique 16) in
  let sweep jobs =
    Run.async_spread_sweep ~jobs ~reps:10 ~faults:faulty_plan (Rng.create 55)
      net
  in
  let s1 = sweep 1 in
  List.iter
    (fun j ->
      let sj = sweep j in
      check bool
        (Printf.sprintf "outcomes identical jobs 1 vs %d" j)
        true
        (s1.Run.outcomes = sj.Run.outcomes);
      check bool
        (Printf.sprintf "seeds identical jobs 1 vs %d" j)
        true
        (s1.Run.seeds = sj.Run.seeds))
    [ 2; 4 ]

let with_temp_file f =
  let path = Filename.temp_file "rumor-par-ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_resume_across_job_counts () =
  (* Checkpoints are keyed by the index-derived fingerprint, so a sweep
     interrupted at one job count resumes bit-identically at another. *)
  let net = Dynet.of_static (Gen.clique 12) in
  let faults = Fault_plan.message_loss 0.2 in
  let uninterrupted =
    Run.async_spread_sweep ~jobs:2 ~reps:11 ~faults (Rng.create 56) net
  in
  with_temp_file (fun path ->
      let partial =
        Run.async_spread_sweep ~jobs:4 ~reps:5 ~faults ~checkpoint:path
          (Rng.create 56) net
      in
      for i = 0 to 4 do
        check bool "partial prefix matches" true
          (partial.Run.outcomes.(i) = uninterrupted.Run.outcomes.(i))
      done;
      let resumed =
        Run.async_spread_sweep ~jobs:3 ~reps:11 ~faults ~checkpoint:path
          (Rng.create 56) net
      in
      check bool "resumed sweep bit-identical across job counts" true
        (resumed.Run.outcomes = uninterrupted.Run.outcomes
        && resumed.Run.seeds = uninterrupted.Run.seeds))

let test_default_jobs_sample_invariance () =
  (* The sample must not depend on the process-wide default either —
     what --jobs selects is parallelism, never data. *)
  let net = Dynet.of_static (Gen.clique 16) in
  let sample () =
    (Run.async_spread_times ~reps:10 (Rng.create 57) net).Run.times
  in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs None)
    (fun () ->
      Pool.set_default_jobs (Some 1);
      let s1 = sample () in
      Pool.set_default_jobs (Some 3);
      check times_t "default 1 = default 3" s1 (sample ()))

(* --- metric shards --- *)

let test_adaptive_bit_identity () =
  (* The adaptive sweep inherits the full contract: for ANY job count
     the stopping point, the decided prefix (outcomes AND seeds) and
     every reported statistic are byte-identical — the decision is a
     pure function of outcomes in index order, so the pool's schedule
     cannot move it. *)
  let net = Dynet.of_static (Gen.clique 48) in
  let config =
    Adaptive.config ~min_reps:16 ~max_reps:96 ~chunk:16 (Adaptive.Abs 0.25)
  in
  let run jobs =
    Run.async_spread_sweep_adaptive ~jobs ~config (Rng.create 314) net
  in
  let a1 = run 1 in
  List.iter
    (fun jobs ->
      let aj = run jobs in
      check int
        (Printf.sprintf "consumed identical at jobs=%d" jobs)
        a1.Run.consumed aj.Run.consumed;
      check bool
        (Printf.sprintf "outcomes identical at jobs=%d" jobs)
        true
        (a1.Run.sweep.Run.outcomes = aj.Run.sweep.Run.outcomes);
      check bool
        (Printf.sprintf "seeds identical at jobs=%d" jobs)
        true
        (a1.Run.sweep.Run.seeds = aj.Run.sweep.Run.seeds);
      check (Alcotest.float 0.)
        (Printf.sprintf "mean identical at jobs=%d" jobs)
        a1.Run.mean aj.Run.mean;
      check (Alcotest.float 0.)
        (Printf.sprintf "half-width identical at jobs=%d" jobs)
        a1.Run.half_width aj.Run.half_width)
    [ 2; 3; 5; 8 ];
  (* And the RUMOR_JOBS-style process default is equally invisible. *)
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs None)
    (fun () ->
      Pool.set_default_jobs (Some 4);
      let a4 = Run.async_spread_sweep_adaptive ~config (Rng.create 314) net in
      check bool "default-jobs adaptive run identical" true
        (a1.Run.sweep.Run.outcomes = a4.Run.sweep.Run.outcomes
        && a1.Run.consumed = a4.Run.consumed))

let test_shard_merge_exactness () =
  (* Recording through per-domain shards then merging must yield a
     byte-identical registry snapshot to direct recording: counter
     addition and bucket increments commute. *)
  let c = Obs.Metrics.counter "test_par.events" in
  let h = Obs.Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test_par.h" in
  let data = List.init 40 (fun i -> float_of_int (i mod 7) /. 1.5) in
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  List.iter
    (fun x ->
      Obs.Metrics.observe h x;
      Obs.Metrics.incr c;
      Obs.Metrics.add c 2)
    data;
  let direct = Obs.Json.to_string (Obs.Metrics.snapshot ()) in
  Obs.Metrics.reset ();
  let shards = Array.init 3 (fun _ -> Obs.Metrics.Shard.create ()) in
  List.iteri
    (fun i x ->
      let s = shards.(i mod 3) in
      Obs.Metrics.Shard.observe s h x;
      Obs.Metrics.Shard.incr s c;
      Obs.Metrics.Shard.add s c 2)
    data;
  Array.iter Obs.Metrics.Shard.merge shards;
  let sharded = Obs.Json.to_string (Obs.Metrics.snapshot ()) in
  Obs.Metrics.disable ();
  check Alcotest.string "sharded snapshot byte-identical to direct" direct
    sharded

let test_shard_reuse_and_gating () =
  let c = Obs.Metrics.counter "test_par.gated" in
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let s = Obs.Metrics.Shard.create () in
  Obs.Metrics.Shard.add s c 5;
  Obs.Metrics.Shard.merge s;
  check int "first merge lands" 5 (Obs.Metrics.value c);
  (* The shard is zeroed by merge: merging again adds nothing. *)
  Obs.Metrics.Shard.merge s;
  check int "merge is idempotent once drained" 5 (Obs.Metrics.value c);
  (* Shards respect the enabled flag like the global entry points. *)
  Obs.Metrics.disable ();
  Obs.Metrics.Shard.add s c 7;
  Obs.Metrics.Shard.merge s;
  check int "disabled recording is dropped" 5 (Obs.Metrics.value c)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "resolve" `Quick test_resolve;
          Alcotest.test_case "default-jobs override" `Quick
            test_default_jobs_override;
          Alcotest.test_case "chunk coverage" `Quick test_chunk_coverage;
          Alcotest.test_case "negative task count" `Quick
            test_run_rejects_negative;
          Alcotest.test_case "exception isolation" `Quick
            test_exception_isolation;
          Alcotest.test_case "sequential exception" `Quick
            test_single_domain_exception;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "pre-cancelled token" `Quick
            test_cancel_pre_cancelled;
          Alcotest.test_case "drains between tasks" `Quick
            test_cancel_drains_between_tasks;
          Alcotest.test_case "global shutdown token" `Quick
            test_global_token_drains_every_pool;
        ] );
      ( "split-seed",
        [
          Alcotest.test_case "Rng.derive purity" `Quick test_derive;
          Alcotest.test_case "classic runner bit-identity" `Quick
            test_classic_bit_identity;
          Alcotest.test_case "tick/sync/flooding bit-identity" `Quick
            test_engines_bit_identity;
          Alcotest.test_case "hardened sweep bit-identity" `Quick
            test_sweep_bit_identity;
          Alcotest.test_case "resume across job counts" `Quick
            test_resume_across_job_counts;
          Alcotest.test_case "default-jobs sample invariance" `Quick
            test_default_jobs_sample_invariance;
          Alcotest.test_case "adaptive sweep bit-identity" `Slow
            test_adaptive_bit_identity;
        ] );
      ( "shards",
        [
          Alcotest.test_case "merge exactness" `Quick
            test_shard_merge_exactness;
          Alcotest.test_case "reuse and gating" `Quick
            test_shard_reuse_and_gating;
        ] );
    ]
