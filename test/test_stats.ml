(* Tests for the statistics layer. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let flt = Alcotest.float 1e-9
let flt4 = Alcotest.float 1e-4

(* --- Descriptive --- *)

let test_mean_variance () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check flt "mean" 5.0 (Descriptive.mean xs);
  check flt4 "variance (unbiased)" (32. /. 7.) (Descriptive.variance xs);
  check flt "min" 2. (Descriptive.min xs);
  check flt "max" 9. (Descriptive.max xs)

let test_singleton () =
  check flt "variance of singleton" 0. (Descriptive.variance [| 42. |]);
  check flt "mean of singleton" 42. (Descriptive.mean [| 42. |])

let test_empty_raises () =
  Alcotest.check_raises "mean" (Invalid_argument "Descriptive.mean: empty sample")
    (fun () -> ignore (Descriptive.mean [||]))

let test_kahan_stability () =
  (* 1e8 + many tiny values: naive summation loses them. *)
  let n = 100_000 in
  let xs = Array.make (n + 1) 1e-3 in
  xs.(0) <- 1e8;
  let s = Descriptive.sum xs in
  check (Alcotest.float 1e-6) "compensated sum" (1e8 +. (float_of_int n *. 1e-3)) s

let test_ci95 () =
  let xs = Array.init 1000 (fun i -> float_of_int (i mod 10)) in
  let lo, hi = Descriptive.mean_ci95 xs in
  let mu = Descriptive.mean xs in
  check bool "contains mean" true (lo < mu && mu < hi);
  check bool "narrow" true (hi -. lo < 0.5)

(* --- Quantile --- *)

let test_quantiles_known () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check flt "median" 3. (Quantile.median xs);
  check flt "q0" 1. (Quantile.quantile xs 0.);
  check flt "q1" 5. (Quantile.quantile xs 1.);
  check flt "q25 (type 7)" 2. (Quantile.quantile xs 0.25);
  check flt "interpolated" 3.8 (Quantile.quantile xs 0.7)

let test_quantile_unsorted_input () =
  let xs = [| 5.; 1.; 4.; 2.; 3. |] in
  check flt "median of unsorted" 3. (Quantile.median xs);
  (* Input is not mutated. *)
  check flt "input intact" 5. xs.(0)

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile: empty sample")
    (fun () -> ignore (Quantile.median [||]));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Quantile: q outside [0, 1]") (fun () ->
      ignore (Quantile.quantile [| 1. |] 1.5))

let test_iqr () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  check flt "iqr" 50. (Quantile.iqr xs)

let test_quantile_tiny_samples () =
  (* The adaptive sweep can stop with very short usable prefixes; the
     quantile layer under quantiles_of_sweep must behave at n=1 and
     n=2, not just at statistical sizes. *)
  check flt "n=1: every quantile is the sample" 7. (Quantile.quantile [| 7. |] 0.);
  check flt "n=1: median" 7. (Quantile.median [| 7. |]);
  check flt "n=1: q=1" 7. (Quantile.quantile [| 7. |] 1.);
  check flt "n=2: endpoints" 1. (Quantile.quantile [| 1.; 3. |] 0.);
  check flt "n=2: median interpolates" 2. (Quantile.median [| 1.; 3. |]);
  check flt "n=2: type-7 interior" 2.6 (Quantile.quantile [| 1.; 3. |] 0.8)

let test_quantile_duplicates () =
  (* Duplicate spread times (common on tiny graphs where several
     replicates share an event pattern): quantiles must sit on the
     duplicated value, and interpolation across a tie is exact. *)
  let xs = [| 2.; 2.; 2.; 2.; 5. |] in
  check flt "median on the tie" 2. (Quantile.median xs);
  check flt "q0.75 still tied" 2. (Quantile.quantile xs 0.75);
  check flt "q1 reaches the outlier" 5. (Quantile.quantile xs 1.);
  let all_same = Array.make 9 4.2 in
  check flt "all-duplicates: any q" 4.2 (Quantile.quantile all_same 0.37);
  check flt "all-duplicates: iqr 0" 0. (Quantile.iqr all_same)

(* --- Histogram --- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.; 3.; 9.9; 11.; -1. ];
  check Alcotest.int "count" 6 (Histogram.count h);
  check Alcotest.int "overflow" 1 (Histogram.overflow h);
  check Alcotest.int "underflow" 1 (Histogram.underflow h);
  let counts = Histogram.bin_counts h in
  check Alcotest.int "bin0 has 0.5, 1.0 and the underflow" 3 counts.(0);
  check Alcotest.int "bin4 has 9.9 and the overflow" 2 counts.(4);
  check flt "bin center" 1. (Histogram.bin_center h 0)

let test_empirical_tail () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check flt "tail above 2" 0.5 (Histogram.empirical_tail xs 2.);
  check flt "tail above 0" 1.0 (Histogram.empirical_tail xs 0.);
  check flt "tail above 4" 0.0 (Histogram.empirical_tail xs 4.);
  check flt "cdf" 0.5 (Histogram.empirical_cdf xs 2.)

(* --- Regression --- *)

let test_linear_exact () =
  let fit = Regression.linear [ (0., 1.); (1., 3.); (2., 5.) ] in
  check flt "slope" 2. fit.Regression.slope;
  check flt "intercept" 1. fit.Regression.intercept;
  check flt "r^2" 1. fit.Regression.r_squared

let test_log_log_powerlaw () =
  let points = List.map (fun x -> (x, 3. *. (x ** 2.5))) [ 1.; 2.; 4.; 8. ] in
  let fit = Regression.log_log points in
  check flt4 "exponent" 2.5 fit.Regression.slope;
  check flt4 "log coefficient" (log 3.) fit.Regression.intercept

let test_regression_errors () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Regression.linear: need at least two points") (fun () ->
      ignore (Regression.linear [ (1., 1.) ]));
  Alcotest.check_raises "zero x variance"
    (Invalid_argument "Regression.linear: zero variance in x") (fun () ->
      ignore (Regression.linear [ (1., 1.); (1., 2.) ]));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Regression.log_log: non-positive coordinate") (fun () ->
      ignore (Regression.log_log [ (0., 1.); (1., 1.) ]))

(* --- Bootstrap --- *)

let test_bootstrap_mean_ci () =
  let rng = Rng.create 21 in
  let xs = Array.init 200 (fun i -> float_of_int (i mod 7)) in
  let lo, hi = Bootstrap.mean_ci rng xs ~level:0.95 in
  let mu = Descriptive.mean xs in
  check bool "contains mean" true (lo <= mu && mu <= hi);
  check bool "nontrivial width" true (hi > lo)

let test_bootstrap_deterministic () =
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let a = Bootstrap.mean_ci (Rng.create 5) xs ~level:0.9 in
  let b = Bootstrap.mean_ci (Rng.create 5) xs ~level:0.9 in
  check bool "same rng, same CI" true (a = b)

(* --- Summary --- *)

let test_summary () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let s = Summary.of_samples xs in
  check Alcotest.int "count" 100 s.Summary.count;
  check flt "mean" 50.5 s.Summary.mean;
  check flt "min" 1. s.Summary.min;
  check flt "max" 100. s.Summary.max;
  check bool "q90 ~ 90" true (abs_float (s.Summary.q90 -. 90.1) < 0.5)


(* --- Kolmogorov-Smirnov --- *)

let test_ks_identical_samples () =
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let r = Ks.two_sample xs xs in
  check flt "zero statistic" 0. r.Ks.statistic;
  check bool "p ~ 1" true (r.Ks.p_value > 0.99)

let test_ks_disjoint_samples () =
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let ys = Array.init 50 (fun i -> float_of_int (i + 1000)) in
  let r = Ks.two_sample xs ys in
  check flt "statistic 1" 1. r.Ks.statistic;
  check bool "p ~ 0" true (r.Ks.p_value < 1e-6)

let test_ks_same_distribution () =
  let rng = Rng.create 60 in
  let sample () = Array.init 400 (fun _ -> Dist.exponential rng ~rate:2.) in
  let r = Ks.two_sample (sample ()) (sample ()) in
  check bool "below 5% critical value" true
    (r.Ks.statistic < Ks.critical_value ~n1:400 ~n2:400 ~alpha:0.05);
  check bool "p not tiny" true (r.Ks.p_value > 0.01)

let test_ks_different_distributions () =
  let rng = Rng.create 61 in
  let xs = Array.init 400 (fun _ -> Dist.exponential rng ~rate:1.) in
  let ys = Array.init 400 (fun _ -> Dist.exponential rng ~rate:2.) in
  let r = Ks.two_sample xs ys in
  check bool "detected" true
    (r.Ks.statistic > Ks.critical_value ~n1:400 ~n2:400 ~alpha:0.01)

let test_ks_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Ks.two_sample: empty sample")
    (fun () -> ignore (Ks.two_sample [||] [| 1. |]));
  Alcotest.check_raises "bad alpha" (Invalid_argument "Ks.critical_value: bad alpha")
    (fun () -> ignore (Ks.critical_value ~n1:10 ~n2:10 ~alpha:1.5))

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "kahan stability" `Quick test_kahan_stability;
          Alcotest.test_case "ci95" `Quick test_ci95;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "known values" `Quick test_quantiles_known;
          Alcotest.test_case "unsorted input" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "errors" `Quick test_quantile_errors;
          Alcotest.test_case "iqr" `Quick test_iqr;
          Alcotest.test_case "tiny samples" `Quick test_quantile_tiny_samples;
          Alcotest.test_case "duplicates" `Quick test_quantile_duplicates;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "empirical tail/cdf" `Quick test_empirical_tail;
        ] );
      ( "regression",
        [
          Alcotest.test_case "linear exact" `Quick test_linear_exact;
          Alcotest.test_case "log-log power law" `Quick test_log_log_powerlaw;
          Alcotest.test_case "errors" `Quick test_regression_errors;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "mean CI" `Quick test_bootstrap_mean_ci;
          Alcotest.test_case "deterministic" `Quick test_bootstrap_deterministic;
        ] );
      ("summary", [ Alcotest.test_case "of_samples" `Quick test_summary ]);
          ( "kolmogorov-smirnov",
        [
          Alcotest.test_case "identical" `Quick test_ks_identical_samples;
          Alcotest.test_case "disjoint" `Quick test_ks_disjoint_samples;
          Alcotest.test_case "same distribution" `Quick test_ks_same_distribution;
          Alcotest.test_case "different distributions" `Quick
            test_ks_different_distributions;
          Alcotest.test_case "errors" `Quick test_ks_errors;
        ] );
    ]
