(* The edge-delta pipeline: Graph.patch/diff, the Dynet.delta contract
   for every shipped dynamic family, and the differential guarantee
   that Async_cut's incremental delta path produces the same run
   outcomes as the full-rebuild path. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let close ?(tol = 1e-9) msg a b =
  if Float.is_nan a && Float.is_nan b then ()
  else if
    Float.abs (a -. b)
    > tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
  then Alcotest.failf "%s: %.17g vs %.17g" msg a b

(* --- Graph.patch / Graph.diff --- *)

let test_patch_basic () =
  let g = Gen.cycle 5 in
  (* Orientation-free delta: (1, 0) names the edge (0, 1). *)
  let g' = Graph.patch g ~add:[| (2, 0) |] ~remove:[| (1, 0) |] in
  check int "m preserved" 5 (Graph.m g');
  check bool "added present" true (Graph.has_edge g' 0 2);
  check bool "removed absent" false (Graph.has_edge g' 0 1);
  check bool "untouched kept" true (Graph.has_edge g' 3 4);
  check int "degree 0" 2 (Graph.degree g' 0);
  (* Neighbour segments stay sorted. *)
  check (Alcotest.array int) "sorted segment" [| 2; 4 |] (Graph.neighbors g' 0);
  (* Empty delta is the identity. *)
  check bool "empty delta" true (Graph.equal g (Graph.patch g ~add:[||] ~remove:[||]))

let test_patch_rejects () =
  let g = Gen.cycle 4 in
  Alcotest.check_raises "already present"
    (Invalid_argument "Graph.patch: added edge (0, 1) already present")
    (fun () -> ignore (Graph.patch g ~add:[| (1, 0) |] ~remove:[||]));
  Alcotest.check_raises "absent"
    (Invalid_argument "Graph.patch: removed edge (0, 2) absent") (fun () ->
      ignore (Graph.patch g ~add:[||] ~remove:[| (0, 2) |]));
  Alcotest.check_raises "repeated"
    (Invalid_argument "Graph.patch: edge (0, 2) repeated in the delta")
    (fun () -> ignore (Graph.patch g ~add:[| (0, 2) |] ~remove:[| (2, 0) |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.patch: added edge (0, 9) out of range") (fun () ->
      ignore (Graph.patch g ~add:[| (0, 9) |] ~remove:[||]));
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Graph.patch: self-loop at 2") (fun () ->
      ignore (Graph.patch g ~add:[| (2, 2) |] ~remove:[||]))

let test_diff_roundtrip () =
  let rng = Rng.create 17 in
  for _ = 1 to 20 do
    let n = 3 + Rng.int rng 12 in
    let a = Gen.erdos_renyi (Rng.split rng) n 0.4 in
    let b = Gen.erdos_renyi (Rng.split rng) n 0.4 in
    let added, removed = Graph.diff a b in
    check bool "patch(a, diff a b) = b" true
      (Graph.equal (Graph.patch a ~add:added ~remove:removed) b);
    let added', removed' = Graph.diff b a in
    check bool "reverse diff swaps roles" true
      (added' = removed && removed' = added);
    let s, r = Graph.diff a a in
    check bool "self diff empty" true (s = [||] && r = [||])
  done;
  Alcotest.check_raises "node-count mismatch"
    (Invalid_argument "Graph.diff: node-count mismatch") (fun () ->
      ignore (Graph.diff (Gen.cycle 4) (Gen.cycle 5)))

(* QCheck: a random patch sequence stays equal to a from-scratch oracle
   built from the maintained edge set. *)
let prop_patch_matches_oracle =
  QCheck.Test.make ~name:"patch sequence matches from-scratch oracle"
    ~count:60
    QCheck.(pair (int_range 2 14) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let present = Hashtbl.create 16 in
      let g = ref (Gen.empty n) in
      let ok = ref true in
      for _round = 1 to 10 do
        let adds = ref [] and rems = ref [] in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if Hashtbl.mem present (u, v) then begin
              if Rng.bernoulli rng 0.3 then rems := (u, v) :: !rems
            end
            else if Rng.bernoulli rng 0.3 then adds := (u, v) :: !adds
          done
        done;
        g :=
          Graph.patch !g ~add:(Array.of_list !adds)
            ~remove:(Array.of_list !rems);
        List.iter (fun e -> Hashtbl.replace present e ()) !adds;
        List.iter (fun e -> Hashtbl.remove present e) !rems;
        let oracle =
          Graph.of_edges n (List.of_seq (Hashtbl.to_seq_keys present))
        in
        if not (Graph.equal !g oracle) then ok := false;
        (* diff against the empty graph recovers the whole edge set *)
        let added, removed = Graph.diff (Gen.empty n) !g in
        if Array.length removed <> 0 || Array.length added <> Graph.m !g then
          ok := false
      done;
      !ok)

(* --- the Dynet.delta contract, per shipped family --- *)

let contract_nets () =
  let mk_seq =
    Dynet.of_sequence [| Gen.cycle 12; Gen.clique 12; Gen.path 12 |]
  in
  let markov = Markovian.network ~n:24 ~p:0.08 ~q:0.15 () in
  let diligent_n =
    let rec find n = if Diligent.admissible ~n ~rho:0.5 then n else find (n + 4) in
    find 16
  in
  let absolute_n =
    let rec find n = if Absolute.admissible ~n ~rho:0.5 then n else find (n + 2) in
    find 12
  in
  [
    ("markovian", markov);
    ("markovian-init", Markovian.network ~n:20 ~p:0.03 ~q:0.06 ~init:(Gen.cycle 20) ());
    ("alternating", Alternating.network ~n:16 ());
    ("alternating-fresh", Alternating.network ~fresh_cubic_each_step:true ~n:16 ());
    ("adversary", Adversary.greedy_min_cut ~n:16 ~degree_budget:4);
    ("dichotomy-g1", Dichotomy.g1 ~n:8);
    ("dichotomy-g2", Dichotomy.g2 ~n:8);
    ("sequence", mk_seq);
    ("intermittent", Combinators.intermittent ~every:3 (Markovian.network ~n:16 ~p:0.1 ~q:0.2 ()));
    ("intermittent-1", Combinators.intermittent ~every:1 (Markovian.network ~n:16 ~p:0.1 ~q:0.2 ()));
    ( "partition",
      Combinators.with_partition ~from_step:2 ~until_step:6
        ~side:(fun u -> u mod 2 = 0)
        (Markovian.network ~n:16 ~p:0.1 ~q:0.2 ()) );
    ( "interleave",
      Combinators.interleave
        [ Markovian.network ~n:16 ~p:0.1 ~q:0.2 (); Dynet.of_static (Gen.clique 16) ] );
    ("diligent", Diligent.network ~n:diligent_n ~rho:0.5 ());
    ("absolute", Absolute.network ~n:absolute_n ~rho:0.5);
  ]

let check_delta_contract ?(steps = 24) name (net : Dynet.t) =
  let rng = Rng.create 42 in
  let inst = net.Dynet.spawn (Rng.split rng) in
  let n = net.Dynet.n in
  let informed = Bitset.create n in
  ignore (Bitset.add informed 0);
  let prev = ref None in
  for step = 0 to steps - 1 do
    let info = Dynet.next inst ~informed in
    (match (!prev, info.Dynet.delta) with
    | None, Some _ -> Alcotest.failf "%s: delta at step 0" name
    | Some p, Some d ->
      let patched = Graph.patch p ~add:d.Dynet.added ~remove:d.Dynet.removed in
      if not (Graph.equal patched info.Dynet.graph) then
        Alcotest.failf "%s step %d: patch(prev, delta) <> next" name step;
      let expect = ref [] in
      for v = n - 1 downto 0 do
        if Graph.degree p v <> Graph.degree info.Dynet.graph v then
          expect := v :: !expect
      done;
      if Array.to_list d.Dynet.degree_changed <> !expect then
        Alcotest.failf "%s step %d: degree_changed mismatch" name step
    | _, None -> ());
    (match !prev with
    | Some p when not info.Dynet.changed ->
      if not (Graph.equal p info.Dynet.graph) then
        Alcotest.failf "%s step %d: changed = false but the graph differs"
          name step
    | _ -> ());
    prev := Some info.Dynet.graph;
    (* Grow the informed set so the adaptive families evolve. *)
    ignore (Bitset.add informed (Rng.int rng n))
  done

let test_delta_contract () =
  List.iter (fun (name, net) -> check_delta_contract name net) (contract_nets ())

let test_of_sequence_deltas () =
  let a = Gen.cycle 6 and b = Gen.clique 6 in
  let net = Dynet.of_sequence [| a; b |] in
  let inst = net.Dynet.spawn (Rng.create 1) in
  let informed = Bitset.create 6 in
  let i0 = Dynet.next inst ~informed in
  let i1 = Dynet.next inst ~informed in
  let i2 = Dynet.next inst ~informed in
  check bool "step 0 no delta" true (i0.Dynet.delta = None);
  (match i1.Dynet.delta with
  | None -> Alcotest.fail "step 1 should carry a delta"
  | Some d ->
    check bool "a + delta = b" true
      (Graph.equal (Graph.patch a ~add:d.Dynet.added ~remove:d.Dynet.removed) b));
  (match i2.Dynet.delta with
  | None -> Alcotest.fail "step 2 should carry a delta"
  | Some d ->
    check bool "b + delta = a" true
      (Graph.equal (Graph.patch b ~add:d.Dynet.added ~remove:d.Dynet.removed) a));
  (* A constant sequence reports unchanged (and delta-free) repeats. *)
  let net = Dynet.of_sequence [| a; a |] in
  let inst = net.Dynet.spawn (Rng.create 1) in
  ignore (Dynet.next inst ~informed);
  let i1 = Dynet.next inst ~informed in
  check bool "constant repeat unchanged" false i1.Dynet.changed;
  check bool "constant repeat delta-free" true (i1.Dynet.delta = None)

(* --- the Markovian sparse sampler --- *)

let graphs_of net seed steps =
  let inst = net.Dynet.spawn (Rng.create seed) in
  let informed = Bitset.create net.Dynet.n in
  Array.init steps (fun _ -> (Dynet.next inst ~informed).Dynet.graph)

let test_markovian_extremes () =
  (* Frozen chain: p = q = 0 never changes. *)
  let gs = graphs_of (Markovian.network ~n:10 ~p:0. ~q:0. ~init:(Gen.cycle 10) ()) 3 5 in
  Array.iter (fun g -> check bool "frozen" true (Graph.equal g (Gen.cycle 10))) gs;
  (* q = 1 kills every present edge in one step. *)
  let gs = graphs_of (Markovian.network ~n:8 ~p:0. ~q:1. ~init:(Gen.clique 8) ()) 3 2 in
  check int "all edges die" 0 (Graph.m gs.(1));
  (* p = 1 fills every absent pair in one step. *)
  let gs = graphs_of (Markovian.network ~n:8 ~p:1. ~q:0. ()) 3 2 in
  check int "all edges born" (8 * 7 / 2) (Graph.m gs.(1));
  (* p = q = 1 alternates complete and empty. *)
  let gs = graphs_of (Markovian.network ~n:6 ~p:1. ~q:1. ()) 3 4 in
  check int "empty" 0 (Graph.m gs.(0));
  check int "complete" (6 * 5 / 2) (Graph.m gs.(1));
  check int "empty again" 0 (Graph.m gs.(2));
  check int "complete again" (6 * 5 / 2) (Graph.m gs.(3))

let test_markovian_deterministic () =
  let net = Markovian.network ~n:20 ~p:0.1 ~q:0.2 () in
  let a = graphs_of net 5 10 and b = graphs_of net 5 10 in
  Array.iteri
    (fun i g -> check bool "same seed, same chain" true (Graph.equal g b.(i)))
    a

let test_markovian_density_cross_check () =
  (* Sparse and dense samplers are distinct implementations of the same
     chain: both must sit at the stationary density. *)
  let n = 24 and p = 0.05 and q = 0.15 in
  let density net seed =
    let inst = net.Dynet.spawn (Rng.create seed) in
    let informed = Bitset.create n in
    let total = ref 0 in
    for step = 0 to 299 do
      let info = Dynet.next inst ~informed in
      if step >= 200 then total := !total + Graph.m info.Dynet.graph
    done;
    float_of_int !total /. 100. /. float_of_int (n * (n - 1) / 2)
  in
  let target = Markovian.stationary_edge_probability ~p ~q in
  let ds = density (Markovian.network ~n ~p ~q ()) 9 in
  let dd = density (Markovian.network_dense ~n ~p ~q ()) 9 in
  check bool "sparse near stationary" true (Float.abs (ds -. target) < 0.08);
  check bool "dense near stationary" true (Float.abs (dd -. target) < 0.08)

(* --- differential: delta path vs rebuild path --- *)

let diff_nets () =
  let diligent_n =
    let rec find n = if Diligent.admissible ~n ~rho:0.5 then n else find (n + 4) in
    find 16
  in
  [
    ("markovian", Markovian.network ~n:32 ~p:0.08 ~q:0.15 (), 0);
    ("markovian-init", Markovian.network ~n:24 ~p:0.02 ~q:0.05 ~init:(Gen.cycle 24) (), 0);
    ("alternating", Alternating.network ~n:16 (), 0);
    ("adversary", Adversary.greedy_min_cut ~n:16 ~degree_budget:4, 0);
    ("dichotomy-g1", Dichotomy.g1 ~n:8, 8);
    ("dichotomy-g2", Dichotomy.g2 ~n:8, 0);
    ("sequence", Dynet.of_sequence [| Gen.cycle 12; Gen.clique 12; Gen.path 12 |], 0);
    ("intermittent", Combinators.intermittent ~every:3 (Markovian.network ~n:16 ~p:0.1 ~q:0.2 ()), 0);
    ( "partition",
      Combinators.with_partition ~from_step:2 ~until_step:6
        ~side:(fun u -> u mod 2 = 0)
        (Markovian.network ~n:16 ~p:0.1 ~q:0.2 ()),
      0 );
    ("diligent", Diligent.network ~n:diligent_n ~rho:0.5 (), 0);
  ]

let same_result name (r1 : Async_result.t) (r2 : Async_result.t) =
  check bool (name ^ ": complete") r1.Async_result.complete r2.Async_result.complete;
  check int (name ^ ": events") r1.Async_result.events r2.Async_result.events;
  check int (name ^ ": steps") r1.Async_result.steps r2.Async_result.steps;
  check int (name ^ ": lost") r1.Async_result.lost r2.Async_result.lost;
  check bool (name ^ ": informed sets") true
    (Bitset.to_list r1.Async_result.informed = Bitset.to_list r2.Async_result.informed);
  close (name ^ ": final time") r1.Async_result.time r2.Async_result.time;
  Array.iteri
    (fun v t1 -> close (Printf.sprintf "%s: time of %d" name v) t1 r2.Async_result.informed_times.(v))
    r1.Async_result.informed_times

let test_differential_runs () =
  List.iter
    (fun (name, net, source) ->
      List.iter
        (fun protocol ->
          List.iter
            (fun seed ->
              let r1 =
                Async_cut.run ~protocol ~horizon:400. ~max_events:200_000
                  (Rng.create seed) net ~source
              in
              let r2 =
                Async_cut.run ~protocol ~use_deltas:false ~horizon:400.
                  ~max_events:200_000 (Rng.create seed) net ~source
              in
              same_result (Printf.sprintf "%s/%s/seed%d" name (Protocol.to_string protocol) seed) r1 r2)
            [ 11; 12 ])
        [ Protocol.Push_pull; Protocol.Push; Protocol.Pull ])
    (diff_nets ())

let test_engine_state_parity () =
  (* Lockstep event-by-event comparison, including the Fenwick weight
     state after every event. *)
  let net = Markovian.network ~n:32 ~p:0.08 ~q:0.15 () in
  let e1 = Async_cut.create (Rng.create 7) net ~source:0 in
  let e2 = Async_cut.create ~use_deltas:false (Rng.create 7) net ~source:0 in
  let guard = ref 0 in
  let finished = ref false in
  while (not !finished) && !guard < 5_000 do
    incr guard;
    let ev1 = Async_cut.next_event e1 and ev2 = Async_cut.next_event e2 in
    (match (ev1, ev2) with
    | Async_cut.Informed (v1, t1), Async_cut.Informed (v2, t2) ->
      check int "same informed node" v1 v2;
      close "same informing time" t1 t2
    | Async_cut.Step_boundary (s1, c1), Async_cut.Step_boundary (s2, c2) ->
      check int "same step" s1 s2;
      check bool "same changed flag" c1 c2
    | Async_cut.Complete t1, Async_cut.Complete t2 ->
      close "same completion time" t1 t2;
      finished := true
    | _ -> Alcotest.fail "event kind mismatch between delta and rebuild paths");
    check bool "same graph" true
      (Graph.equal (Async_cut.current_graph e1) (Async_cut.current_graph e2));
    close "same total rate" (Async_cut.total_cut_rate e1) (Async_cut.total_cut_rate e2);
    for v = 0 to 31 do
      close
        (Printf.sprintf "weight of %d" v)
        (Async_cut.cut_weight e1 v) (Async_cut.cut_weight e2 v)
    done
  done;
  check bool "run completed" true !finished

let test_periodic_rebuild_parity () =
  (* Canonicalising every inform versus (effectively) never must not
     change any outcome, and the measured drift must be tiny. *)
  let net = Markovian.network ~n:48 ~p:0.05 ~q:0.1 () in
  let r1 =
    Async_cut.run ~rebuild_every:1 ~horizon:400. (Rng.create 3) net ~source:0
  in
  let r2 = Async_cut.run ~horizon:400. (Rng.create 3) net ~source:0 in
  same_result "rebuild-every-1 vs default" r1 r2;
  let e = Async_cut.create ~rebuild_every:4 (Rng.create 3) net ~source:0 in
  let guard = ref 0 in
  while (not (Async_cut.is_complete e)) && !guard < 50_000 do
    incr guard;
    ignore (Async_cut.next_event e)
  done;
  check bool "drift measured below 1e-6" true (Async_cut.max_weight_drift e < 1e-6)

(* --- Gray-code enumeration vs the naive reference --- *)

let naive_conductance g =
  let n = Graph.n g in
  let edges = Graph.edges g in
  let degrees = Array.init n (Graph.degree g) in
  let vol_g = Graph.volume g in
  if not (Traverse.is_connected g) then 0.
  else begin
    let best = ref infinity in
    for mask = 1 to (1 lsl n) - 2 do
      let vol_s = ref 0 in
      for u = 0 to n - 1 do
        if mask land (1 lsl u) <> 0 then vol_s := !vol_s + degrees.(u)
      done;
      if !vol_s > 0 && !vol_s < vol_g then begin
        let cut = ref 0 in
        Array.iter
          (fun (u, v) ->
            if mask land (1 lsl u) <> 0 <> (mask land (1 lsl v) <> 0) then
              incr cut)
          edges;
        let phi =
          float_of_int !cut /. float_of_int (min !vol_s (vol_g - !vol_s))
        in
        if phi < !best then best := phi
      end
    done;
    !best
  end

let naive_diligence g =
  let n = Graph.n g in
  let edges = Graph.edges g in
  let degrees = Array.init n (Graph.degree g) in
  let vol_g = Graph.volume g in
  if not (Traverse.is_connected g) then 0.
  else begin
    let popcount mask =
      let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
      go mask 0
    in
    let best = ref infinity in
    for mask = 1 to (1 lsl n) - 2 do
      let vol_s = ref 0 in
      for u = 0 to n - 1 do
        if mask land (1 lsl u) <> 0 then vol_s := !vol_s + degrees.(u)
      done;
      if !vol_s > 0 && 2 * !vol_s <= vol_g then begin
        let dbar = float_of_int !vol_s /. float_of_int (popcount mask) in
        let rho_s = ref infinity in
        Array.iter
          (fun (u, v) ->
            if mask land (1 lsl u) <> 0 <> (mask land (1 lsl v) <> 0) then begin
              let du = float_of_int degrees.(u)
              and dv = float_of_int degrees.(v) in
              let m = Float.max (dbar /. du) (dbar /. dv) in
              if m < !rho_s then rho_s := m
            end)
          edges;
        if !rho_s < !best then best := !rho_s
      end
    done;
    !best
  end

let test_gray_code_matches_naive () =
  let graphs =
    [ Gen.cycle 8; Gen.clique 6; Gen.star 7; Gen.barbell 8; Gen.path 6 ]
    @ List.filter_map
        (fun seed ->
          let g = Gen.erdos_renyi (Rng.create seed) 9 0.45 in
          if Traverse.is_connected g then Some g else None)
        [ 1; 2; 3; 4; 5 ]
  in
  List.iter
    (fun g ->
      (* Integer-exact incremental maintenance: results are bit-identical
         to the naive rescan. *)
      check (Alcotest.float 0.) "conductance" (naive_conductance g)
        (Cut.conductance_exact g);
      check (Alcotest.float 0.) "diligence" (naive_diligence g)
        (Cut.diligence_exact g))
    graphs

let () =
  Alcotest.run "delta"
    [
      ( "graph-patch",
        [
          Alcotest.test_case "basic" `Quick test_patch_basic;
          Alcotest.test_case "rejects" `Quick test_patch_rejects;
          Alcotest.test_case "diff round-trip" `Quick test_diff_roundtrip;
          QCheck_alcotest.to_alcotest prop_patch_matches_oracle;
        ] );
      ( "dynet-contract",
        [
          Alcotest.test_case "all families" `Quick test_delta_contract;
          Alcotest.test_case "of_sequence precomputed" `Quick test_of_sequence_deltas;
        ] );
      ( "markovian-sparse",
        [
          Alcotest.test_case "extremes" `Quick test_markovian_extremes;
          Alcotest.test_case "deterministic" `Quick test_markovian_deterministic;
          Alcotest.test_case "density vs dense" `Quick test_markovian_density_cross_check;
        ] );
      ( "differential",
        [
          Alcotest.test_case "run outcomes" `Quick test_differential_runs;
          Alcotest.test_case "engine state lockstep" `Quick test_engine_state_parity;
          Alcotest.test_case "periodic rebuild parity" `Quick test_periodic_rebuild_parity;
        ] );
      ( "gray-code",
        [ Alcotest.test_case "matches naive" `Quick test_gray_code_matches_naive ] );
    ]
