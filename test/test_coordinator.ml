(* Tests for the multi-process campaign layer (lib/harness): the
   length-prefixed wire protocol, the lease table and its epoch
   fencing (live and at journal replay), and the coordinator driving
   real forked worker processes — including the chaos scenarios the
   subsystem exists for: kill -9 mid-batch, heartbeat-timeout zombies
   whose late writes must fence, and byte-identity of the captured
   outputs against a single-worker run.

   Also here: the WAL record-codec fuzzer (random payloads with
   embedded newlines; random byte corruption), asserting recovery
   never crashes, never invents records, and never drops a record
   whose bytes were not touched. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "rumor-coord" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* --- wire protocol --- *)

let msg_roundtrip m =
  match Proto.of_json (Proto.to_json m) with
  | Some m' -> m = m'
  | None -> false

let test_proto_roundtrip () =
  check bool "hello (legacy)" true
    (msg_roundtrip
       (Proto.Hello
          { worker = 3; pid = 42; proto = 1; token = None; crc = false }));
  check bool "hello (v2, token + crc)" true
    (msg_roundtrip
       (Proto.Hello
          {
            worker = -1; pid = 42; proto = Proto.version;
            token = Some "s3cret"; crc = true;
          }));
  check bool "welcome" true
    (msg_roundtrip
       (Proto.Welcome { worker = 7; proto = Proto.version; crc = true }));
  check bool "reject" true
    (msg_roundtrip (Proto.Reject { reason = "bad token" }));
  check bool "beat" true (msg_roundtrip (Proto.Beat { worker = 0 }));
  check bool "grant" true
    (msg_roundtrip (Proto.Grant { lease = 7; epoch = 19; tasks = [ "E1"; "E2" ] }));
  check bool "stop" true (msg_roundtrip Proto.Stop);
  check bool "ok result" true
    (msg_roundtrip
       (Proto.Result
          {
            worker = 1; lease = 7; epoch = 19; task = "E1"; ok = true;
            wall_s = 1.25; file = ".E1.l7e19.partial"; err = None;
            transient = false; data = None;
          }));
  check bool "ok result with inline data" true
    (msg_roundtrip
       (Proto.Result
          {
            worker = 1; lease = 7; epoch = 19; task = "E1"; ok = true;
            wall_s = 1.25; file = ".E1.l7e19.partial"; err = None;
            transient = false; data = Some "captured\noutput\n";
          }));
  check bool "failed transient result" true
    (msg_roundtrip
       (Proto.Result
          {
            worker = 1; lease = 7; epoch = 19; task = "E1"; ok = false;
            wall_s = 0.5; file = ".E1.l7e19.partial";
            err = Some "oops\nwith a newline"; transient = true; data = None;
          }));
  check bool "unknown k rejected" true
    (Proto.of_json (Obs.Json.Obj [ ("k", Obs.Json.String "nope") ]) = None);
  (* A proto-1 hello must render without the v2 fields, so an old
     coordinator still parses it. *)
  (match
     Proto.to_json
       (Proto.Hello
          { worker = 3; pid = 42; proto = 1; token = None; crc = false })
   with
  | Obs.Json.Obj fields ->
    check bool "legacy hello has no v2 fields" true
      (not (List.mem_assoc "v" fields)
      && not (List.mem_assoc "tok" fields)
      && not (List.mem_assoc "crc" fields))
  | _ -> check bool "legacy hello is an object" true false)

(* Frames survive a socketpair in arbitrarily small reads, newlines in
   payload strings included (the framing is length-prefixed, not
   line-delimited). *)
let test_proto_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let msgs =
        [
          Proto.Hello
            { worker = 0; pid = 1; proto = 1; token = None; crc = false };
          Proto.Result
            {
              worker = 0; lease = 1; epoch = 1; task = "t\nwith\nnewlines";
              ok = false; wall_s = 0.; file = "f"; err = Some "line1\nline2";
              transient = false; data = None;
            };
          Proto.Stop;
        ]
      in
      List.iter (fun m -> Proto.send a (Proto.to_json m)) msgs;
      (* Feed the reader one byte at a time: reassembly must not care
         where the reads split. *)
      let reader = Proto.reader () in
      let buf = Bytes.create 1 in
      let got = ref [] in
      (try
         while List.length !got < List.length msgs do
           match Unix.read b buf 0 1 with
           | 0 -> raise Exit
           | n ->
             Proto.feed reader buf n;
             let rec pop () =
               match Proto.next reader with
               | Some j ->
                 got := j :: !got;
                 pop ()
               | None -> ()
             in
             pop ()
         done
       with Exit -> ());
      let got = List.rev_map Proto.of_json !got in
      check bool "all frames recovered" true
        (got = List.map (fun m -> Some m) msgs))

let test_proto_oversize_rejected () =
  let reader = Proto.reader () in
  let bogus = Bytes.create 4 in
  (* Length prefix claiming 2 GiB: must raise, not allocate. *)
  Bytes.set bogus 0 '\x7f';
  Bytes.set bogus 1 '\xff';
  Bytes.set bogus 2 '\xff';
  Bytes.set bogus 3 '\xff';
  Proto.feed reader bogus 4;
  check bool "oversize raises" true
    (match Proto.next reader with
    | exception Proto.Protocol_error _ -> true
    | _ -> false)

(* Every single-byte corruption of a CRC-trailered frame — payload or
   trailer — must surface as [Protocol_error], never as a decoded
   frame and never as a silent stall past the frame's length. *)
let test_proto_crc_detects_corruption () =
  let msg = Proto.Grant { lease = 1; epoch = 2; tasks = [ "E1"; "E2" ] } in
  let frame = Proto.frame ~crc:true (Proto.to_json msg) in
  let rd = Proto.reader () in
  Proto.set_crc rd true;
  Proto.feed rd frame (Bytes.length frame);
  check bool "clean frame decodes" true
    (Proto.next rd = Some (Proto.to_json msg));
  for i = 4 to Bytes.length frame - 1 do
    let copy = Bytes.copy frame in
    Bytes.set copy i (Char.chr (Char.code (Bytes.get copy i) lxor 0x20));
    let rd = Proto.reader () in
    Proto.set_crc rd true;
    Proto.feed rd copy (Bytes.length copy);
    match Proto.next rd with
    | exception Proto.Protocol_error _ -> ()
    | Some _ -> Alcotest.failf "corrupted byte %d silently accepted" i
    | None -> Alcotest.failf "corrupted byte %d never detected" i
  done

(* Random multi-message streams (payload strings full of newlines,
   quotes and control bytes), CRC trailers on or off, fed to one
   reader in random chunk sizes — including 1-byte feeds and splits
   inside the length prefix and the trailer.  Every message must come
   back, in order, whatever the chunking. *)
let prop_proto_random_split =
  let fuzz_string rng =
    let len = Rng.int rng 24 in
    String.init len (fun _ ->
        match Rng.int rng 6 with
        | 0 -> '\n'
        | 1 -> '"'
        | 2 -> '\\'
        | 3 -> Char.chr (Rng.int rng 32)
        | _ -> Char.chr (32 + Rng.int rng 95))
  in
  QCheck.Test.make ~count:300
    ~name:"reader survives random chunk splits (CRC on and off)"
    QCheck.(triple (int_range 0 1_000_000) (int_range 1 8) bool)
    (fun (seed, nmsgs, crc) ->
      let rng = Rng.create seed in
      let msgs =
        List.init nmsgs (fun i ->
            match Rng.int rng 3 with
            | 0 ->
              Proto.Grant
                {
                  lease = Rng.int rng 1000; epoch = Rng.int rng 1000;
                  tasks = List.init (Rng.int rng 4) (fun _ -> fuzz_string rng);
                }
            | 1 -> Proto.Beat { worker = i }
            | _ ->
              let ok = Rng.int rng 2 = 0 in
              Proto.Result
                {
                  worker = i; lease = Rng.int rng 1000;
                  epoch = Rng.int rng 1000; task = fuzz_string rng;
                  ok; wall_s = 0.5;
                  file = fuzz_string rng;
                  err =
                    (if Rng.int rng 2 = 0 then Some (fuzz_string rng)
                     else None);
                  (* [cls] only travels on failures: a transient flag
                     on an ok result is not representable on the wire,
                     so generate canonical messages only. *)
                  transient = Rng.int rng 2 = 0 && not ok;
                  data =
                    (if Rng.int rng 2 = 0 then Some (fuzz_string rng)
                     else None);
                })
      in
      let stream = Buffer.create 256 in
      List.iter
        (fun m -> Buffer.add_bytes stream (Proto.frame ~crc (Proto.to_json m)))
        msgs;
      let stream = Buffer.to_bytes stream in
      let reader = Proto.reader () in
      Proto.set_crc reader crc;
      let got = ref [] in
      let pos = ref 0 in
      let len = Bytes.length stream in
      while !pos < len do
        let n = Int.min (1 + Rng.int rng 7) (len - !pos) in
        Proto.feed reader (Bytes.sub stream !pos n) n;
        pos := !pos + n;
        let rec pop () =
          match Proto.next reader with
          | Some j ->
            got := j :: !got;
            pop ()
          | None -> ()
        in
        pop ()
      done;
      List.rev_map Proto.of_json !got = List.map (fun m -> Some m) msgs)

(* --- lease table --- *)

let test_lease_grant_complete () =
  let t = Lease.create () in
  let l = Lease.grant t ~worker:0 [ "a"; "b" ] in
  check int "outstanding after grant" 1 (Lease.outstanding t);
  check bool "complete a" true
    (Lease.complete t ~lease_id:l.Lease.id ~epoch:l.Lease.epoch ~task:"a"
     = `Ok);
  check bool "complete a twice" true
    (Lease.complete t ~lease_id:l.Lease.id ~epoch:l.Lease.epoch ~task:"a"
     = `Unknown_task);
  check bool "complete b retires the lease" true
    (Lease.complete t ~lease_id:l.Lease.id ~epoch:l.Lease.epoch ~task:"b"
     = `Ok);
  check int "retired" 0 (Lease.outstanding t);
  check bool "late duplicate fences" true
    (Lease.complete t ~lease_id:l.Lease.id ~epoch:l.Lease.epoch ~task:"b"
     = `Fenced)

let test_lease_fencing () =
  let t = Lease.create () in
  let l1 = Lease.grant t ~worker:0 [ "a"; "b" ] in
  (* The worker dies with "b" unfinished; its lease is reclaimed and
     "b" regranted under a fresh lease/epoch. *)
  check bool "complete a" true
    (Lease.complete t ~lease_id:l1.Lease.id ~epoch:l1.Lease.epoch ~task:"a"
     = `Ok);
  let pending = Lease.reclaim t ~lease_id:l1.Lease.id in
  check bool "reclaim returns the unfinished task" true (pending = [ "b" ]);
  let l2 = Lease.grant t ~worker:1 [ "b" ] in
  check bool "epoch advanced past the reclaim" true
    (l2.Lease.epoch > l1.Lease.epoch + 1);
  (* The zombie's late write carries the dead lease: fenced. *)
  check bool "stale lease fences" true
    (Lease.complete t ~lease_id:l1.Lease.id ~epoch:l1.Lease.epoch ~task:"b"
     = `Fenced);
  (* The legitimate holder is unaffected. *)
  check bool "fresh lease completes" true
    (Lease.complete t ~lease_id:l2.Lease.id ~epoch:l2.Lease.epoch ~task:"b"
     = `Ok)

let test_lease_wrong_epoch_fences () =
  let t = Lease.create () in
  let l = Lease.grant t ~worker:0 [ "a" ] in
  check bool "mismatched epoch fences even with a live lease id" true
    (Lease.complete t ~lease_id:l.Lease.id ~epoch:(l.Lease.epoch + 1)
       ~task:"a"
     = `Fenced)

let test_lease_replay () =
  let r = Lease.Replay.create () in
  Lease.Replay.note_grant r ~lease_id:1 ~epoch:1;
  check bool "granted is trusted" true
    (Lease.Replay.check_done r ~lease_id:1 ~epoch:1 = `Trusted);
  check bool "wrong epoch fenced" true
    (Lease.Replay.check_done r ~lease_id:1 ~epoch:2 = `Fenced);
  check bool "unknown lease fenced" true
    (Lease.Replay.check_done r ~lease_id:9 ~epoch:1 = `Fenced);
  Lease.Replay.note_reclaim r ~lease_id:1;
  check bool "reclaimed is fenced" true
    (Lease.Replay.check_done r ~lease_id:1 ~epoch:1 = `Fenced)

(* --- WAL record-codec fuzzer ---

   Deterministic pseudo-random campaigns of records (strings with
   embedded newlines, quotes, control bytes), then random single-byte
   corruption of the log body.  Recovery must never crash, never
   produce a record that was not appended, and never lose a record
   none of whose bytes were touched. *)

let fuzz_string rng =
  let len = Rng.int rng 24 in
  String.init len (fun _ ->
      (* Bias towards the characters that stress JSONL framing. *)
      match Rng.int rng 6 with
      | 0 -> '\n'
      | 1 -> '"'
      | 2 -> '\\'
      | 3 -> Char.chr (Rng.int rng 32)  (* control bytes *)
      | _ -> Char.chr (32 + Rng.int rng 95))

let fuzz_record rng i =
  Obs.Json.Obj
    [
      ("i", Obs.Json.Int i);
      ("s", Obs.Json.String (fuzz_string rng));
      ( "nested",
        Obs.Json.List
          [ Obs.Json.String (fuzz_string rng); Obs.Json.Int (Rng.int rng 1000) ]
      );
    ]

let prop_wal_codec_fuzz =
  QCheck.Test.make ~count:150
    ~name:"WAL recovery: no crash, no invention, no untouched loss"
    QCheck.(
      triple (int_range 0 1_000_000) (int_range 1 20) (int_range 0 30))
    (fun (seed, nrec, nflips) ->
      let rng = Rng.create seed in
      let path = Filename.temp_file "rumor-fuzz" ".wal" in
      Sys.remove path;
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            [ path; Wal.quarantine_path path ])
        (fun () ->
          let records = List.init nrec (fuzz_record rng) in
          let wal = Wal.open_ ~fsync:false path in
          List.iter (Wal.append wal) records;
          Wal.close wal;
          let content = Bytes.of_string (read_file path) in
          (* Line layout: magic header, then one line per record.
             Ranges are computed on the pristine bytes — an earlier
             flip may destroy a separator newline. *)
          let header_end = 1 + Bytes.index content '\n' in
          let ranges =
            Array.init nrec
              (let start = ref header_end in
               fun _ ->
                 let stop = Bytes.index_from content !start '\n' in
                 let r = (!start, stop) in
                 start := stop + 1;
                 r)
          in
          let touched = Array.make nrec false in
          for _ = 1 to nflips do
            let len = Bytes.length content in
            if len > header_end then begin
              let pos = header_end + Rng.int rng (len - header_end) in
              Bytes.set content pos (Char.chr (Rng.int rng 256));
              (* Mark every record whose line covers the corrupted
                 byte; a flipped separator newline merges two lines,
                 so it touches the records on both sides. *)
              for i = 0 to nrec - 1 do
                let start, stop = ranges.(i) in
                if pos >= start && pos <= stop then touched.(i) <- true;
                if pos = stop && i + 1 < nrec then touched.(i + 1) <- true
              done
            end
          done;
          write_file path (Bytes.to_string content);
          let recovery = Wal.read path in
          let render j = Obs.Json.to_string j in
          let count tbl k =
            Option.value ~default:0 (Hashtbl.find_opt tbl k)
          in
          let bump tbl k = Hashtbl.replace tbl k (count tbl k + 1) in
          let original_counts = Hashtbl.create 16 in
          List.iter (fun r -> bump original_counts (render r)) records;
          let recovered_counts = Hashtbl.create 16 in
          List.iter
            (fun r -> bump recovered_counts (render r))
            recovery.Wal.records;
          (* No invention: recovered is a sub-multiset of appended.
             (A flip that leaves the CRC valid for different bytes has
             probability ~2^-32; not a flake source at this count.) *)
          Hashtbl.iter
            (fun k n ->
              if n > count original_counts k then
                QCheck.Test.fail_reportf "invented record %s" k)
            recovered_counts;
          (* No untouched loss: every record whose bytes survived must
             be recovered at least as many times as it survived. *)
          let untouched = Hashtbl.create 16 in
          List.iteri
            (fun i r -> if not touched.(i) then bump untouched (render r))
            records;
          Hashtbl.iter
            (fun k n ->
              if count recovered_counts k < n then
                QCheck.Test.fail_reportf "dropped untouched record %s" k)
            untouched;
          true))

(* --- coordinator, with real forked workers ---

   [spawn] forks this very process; the child runs {!Worker.run} and
   [_exit]s without ever returning into Alcotest.  Forking is safe
   here because the coordinator side never has secondary domains live
   (the worker's heartbeat domain exists only in children). *)

let fork_spawn ?(heartbeat_s = 0.05) ~tasks_dir ~run_task () ~slot ~socket =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let code =
      try
        Worker.run ~heartbeat_s ~transport:(Worker.Unix_sock socket) ~id:slot
          ~tasks_dir ~run_task ()
      with _ -> 4
    in
    Unix._exit code
  | pid -> pid

let quick_config ~dir ~workers =
  {
    (Coordinator.default_config ~dir ~workers) with
    Coordinator.fsync = false;
    heartbeat_timeout_s = 5.;
  }

(* A deterministic pseudo-experiment: what [Experiment.print] is to
   the CLI, keyed only by the task id. *)
let print_task task =
  let rng = Rng.create (Hashtbl.hash task) in
  Printf.printf "task %s\n" task;
  for _ = 1 to 20 do
    Printf.printf "%Lx\n" (Rng.bits64 rng)
  done

let test_coordinator_runs_tasks () =
  with_temp_dir (fun dir ->
      let tasks = [ "a"; "b"; "c"; "d"; "e" ] in
      let config = quick_config ~dir ~workers:2 in
      let spawn =
        fork_spawn ~tasks_dir:(Coordinator.tasks_dir config)
          ~run_task:print_task ()
      in
      let summary = Coordinator.run ~spawn config tasks in
      check int "exit code" 0 (Coordinator.exit_code summary);
      List.iter
        (fun (id, outcome) ->
          check bool (id ^ " done") true
            (match outcome with Campaign.Done _ -> true | _ -> false);
          check bool (id ^ " output captured") true
            (let out = read_file (Coordinator.output_path config id) in
             String.length out > 0))
        summary.Coordinator.outcomes)

let run_campaign ~dir ~workers ?chaos ?(run_task = print_task)
    ?(tasks = [ "a"; "b"; "c"; "d"; "e" ]) () =
  let config =
    { (quick_config ~dir ~workers) with Coordinator.chaos_kill_every_s = chaos }
  in
  let spawn =
    fork_spawn ~tasks_dir:(Coordinator.tasks_dir config) ~run_task ()
  in
  (Coordinator.run ~spawn config tasks, config)

let outputs config tasks =
  List.map (fun id -> read_file (Coordinator.output_path config id)) tasks

let test_coordinator_byte_identity () =
  let tasks = [ "a"; "b"; "c"; "d"; "e" ] in
  with_temp_dir (fun dir1 ->
      with_temp_dir (fun dir4 ->
          let s1, c1 = run_campaign ~dir:dir1 ~workers:1 ~tasks () in
          let s4, c4 = run_campaign ~dir:dir4 ~workers:4 ~tasks () in
          check int "workers 1 clean" 0 (Coordinator.exit_code s1);
          check int "workers 4 clean" 0 (Coordinator.exit_code s4);
          check bool "captured outputs byte-identical" true
            (outputs c1 tasks = outputs c4 tasks)))

(* kill -9 mid-batch: the first attempt of the victim task SIGKILLs
   its own worker after leaving a marker; the reassigned attempt sees
   the marker and completes normally.  The campaign must finish with
   the reassignment journaled, the output byte-identical to an
   undisturbed single-worker run, and --resume all-cached. *)
let test_coordinator_kill9_reassign_and_resume () =
  let tasks = [ "a"; "b"; "victim"; "d" ] in
  with_temp_dir (fun ref_dir ->
      with_temp_dir (fun dir ->
          let ref_summary, ref_config =
            run_campaign ~dir:ref_dir ~workers:1 ~tasks ()
          in
          check int "reference clean" 0 (Coordinator.exit_code ref_summary);
          let marker = Filename.concat dir "victim-died-once" in
          let run_task task =
            if task = "victim" && not (Sys.file_exists marker) then begin
              write_file marker "";
              Unix.kill (Unix.getpid ()) Sys.sigkill
            end;
            print_task task
          in
          let config = quick_config ~dir ~workers:2 in
          let spawn =
            fork_spawn ~tasks_dir:(Coordinator.tasks_dir config) ~run_task ()
          in
          let summary = Coordinator.run ~spawn config tasks in
          check int "clean completion" 0 (Coordinator.exit_code summary);
          check bool "victim done" true
            (List.assoc "victim" summary.Coordinator.outcomes
             |> function Campaign.Done _ -> true | _ -> false);
          check bool "death observed" true
            (summary.Coordinator.worker_deaths >= 1);
          check bool "lease reassigned" true
            (summary.Coordinator.reassignments >= 1);
          check bool "replacement forked" true
            (summary.Coordinator.worker_restarts >= 1);
          check bool "outputs match the undisturbed run" true
            (outputs ref_config tasks = outputs config tasks);
          (* Resume: everything journaled-done is served from cache;
             nothing re-runs, outputs untouched. *)
          let resumed =
            Coordinator.run ~spawn
              { config with Coordinator.resume = true }
              tasks
          in
          check bool "resume flag" true resumed.Coordinator.resumed;
          check int "all cached" (List.length tasks)
            resumed.Coordinator.cached;
          check bool "resume outputs identical" true
            (outputs ref_config tasks = outputs config tasks)))

(* A poison task that kills every worker it lands on: each death
   charges the attempt budget, so it must end quarantined (not loop
   forever), with the rest of the campaign unharmed. *)
let test_coordinator_poison_task_quarantined () =
  with_temp_dir (fun dir ->
      let run_task task =
        if task = "poison" then Unix.kill (Unix.getpid ()) Sys.sigkill;
        print_task task
      in
      let config =
        { (quick_config ~dir ~workers:2) with Coordinator.retries = 1 }
      in
      let spawn =
        fork_spawn ~tasks_dir:(Coordinator.tasks_dir config) ~run_task ()
      in
      let summary = Coordinator.run ~spawn config [ "a"; "poison"; "b" ] in
      check int "exit code 1" 1 (Coordinator.exit_code summary);
      check bool "poison quarantined" true
        (List.assoc "poison" summary.Coordinator.outcomes
         |> function Campaign.Quarantined _ -> true | _ -> false);
      List.iter
        (fun id ->
          check bool (id ^ " survived") true
            (List.assoc id summary.Coordinator.outcomes
             |> function Campaign.Done _ -> true | _ -> false))
        [ "a"; "b" ])

(* Chaos mode on forked workers: kills land every 50ms across a
   5-task campaign of ~150ms tasks (so lease holders are hit), and
   the outputs must still be byte-identical to an undisturbed run —
   the sleep shapes the race, never the bytes. *)
let test_coordinator_chaos_byte_identity () =
  let tasks = [ "a"; "b"; "c"; "d"; "e" ] in
  let slow_task task =
    Unix.sleepf 0.15;
    print_task task
  in
  with_temp_dir (fun ref_dir ->
      with_temp_dir (fun dir ->
          let _, ref_config = run_campaign ~dir:ref_dir ~workers:1 ~tasks () in
          let summary, config =
            run_campaign ~dir ~workers:3 ~chaos:0.05 ~run_task:slow_task
              ~tasks ()
          in
          check int "chaos run clean" 0 (Coordinator.exit_code summary);
          check bool "chaos kills landed" true
            (summary.Coordinator.chaos_kills >= 1);
          check bool "outputs byte-identical under chaos" true
            (outputs ref_config tasks = outputs config tasks)))

(* Heartbeat-timeout zombie: a hand-rolled first incarnation of slot 0
   connects, takes a lease, then stops heartbeating — without dying.
   After the timeout the coordinator must reclaim the lease and regrant
   it; when the zombie finally submits its stale result, the stale
   (lease, epoch) stamp must fence it, and the canonical output must be
   the replacement's bytes. *)
let test_coordinator_zombie_is_fenced () =
  with_temp_dir (fun dir ->
      let config =
        {
          (quick_config ~dir ~workers:1) with
          Coordinator.heartbeat_timeout_s = 0.3;
        }
      in
      let tdir = Coordinator.tasks_dir config in
      let zombie_payload = "ZOMBIE OUTPUT: must never be accepted\n" in
      let slot0_spawns = ref 0 in
      let spawn ~slot ~socket =
        if slot = 0 then incr slot0_spawns;
        if slot = 0 && !slot0_spawns = 1 then begin
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 ->
            (try
               let fd =
                 Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
               in
               Unix.connect fd (Unix.ADDR_UNIX socket);
               Proto.send fd
                 (Proto.to_json
                    (Proto.Hello
                       {
                         worker = slot; pid = Unix.getpid (); proto = 1;
                         token = None; crc = false;
                       }));
               let reader = Proto.reader () in
               (match Option.bind (Proto.recv fd reader) Proto.of_json with
               | Some (Proto.Grant { lease; epoch; tasks = task :: _ }) ->
                 (* Outlive the declared death, then submit with the
                    (by now reclaimed) lease stamp. *)
                 Unix.sleepf 0.9;
                 let file = Worker.partial_name ~task ~lease ~epoch in
                 write_file (Filename.concat tdir file) zombie_payload;
                 Proto.send fd
                   (Proto.to_json
                      (Proto.Result
                         {
                           worker = slot; lease; epoch; task; ok = true;
                           wall_s = 0.; file; err = None; transient = false;
                           data = None;
                         }));
                 (* Stay alive until the coordinator hangs up. *)
                 let rec drain () =
                   match Proto.recv fd reader with
                   | Some _ -> drain ()
                   | None -> ()
                 in
                 drain ()
               | _ -> ())
             with _ -> ());
            Unix._exit 0
          | pid -> pid
        end
        else
          fork_spawn ~tasks_dir:tdir
            ~run_task:(fun task ->
              (* Slow enough that the campaign is still running when
                 the zombie's stale result arrives. *)
              Unix.sleepf 1.0;
              print_task task)
            () ~slot ~socket
      in
      let summary = Coordinator.run ~spawn config [ "t" ] in
      check int "clean completion" 0 (Coordinator.exit_code summary);
      check bool "zombie death journaled" true
        (summary.Coordinator.worker_deaths >= 1);
      check bool "stale result fenced" true (summary.Coordinator.fences >= 1);
      check bool "task reassigned" true
        (summary.Coordinator.reassignments >= 1);
      let out = read_file (Coordinator.output_path config "t") in
      check bool "canonical output is the replacement's" true
        (out <> zombie_payload && String.length out > 0))

(* Journal replay fencing: hand-craft a WAL in which task [t1]'s done
   record carries a lease that was reclaimed earlier in the log (the
   zombie's write raced a coordinator crash into the journal), while
   [t2]'s done record is properly fenced and has its output on disk.
   A --resume must re-run t1 and serve t2 from cache. *)
let test_coordinator_replay_fencing () =
  with_temp_dir (fun dir ->
      let config =
        { (quick_config ~dir ~workers:1) with Coordinator.resume = true }
      in
      Unix.mkdir (Coordinator.tasks_dir config) 0o755;
      let wal = Wal.open_ ~fsync:false (Coordinator.wal_path config) in
      let j fields = Obs.Json.Obj fields in
      let s v = Obs.Json.String v and i v = Obs.Json.Int v in
      List.iter (Wal.append wal)
        [
          j [ ("k", s "lease"); ("ev", s "grant"); ("lease", i 1);
              ("ep", i 1); ("w", i 0);
              ("tasks", Obs.Json.List [ s "t1" ]) ];
          j [ ("k", s "lease"); ("ev", s "reclaim"); ("lease", i 1);
              ("ep", i 2); ("w", i 0) ];
          (* Zombie's record: lease 1 was reclaimed above — fence. *)
          j [ ("k", s "task"); ("id", s "t1"); ("ev", s "done");
              ("att", i 1); ("wall", s "0x1p-1"); ("lease", i 1);
              ("ep", i 1); ("w", i 0) ];
          j [ ("k", s "lease"); ("ev", s "grant"); ("lease", i 2);
              ("ep", i 3); ("w", i 0);
              ("tasks", Obs.Json.List [ s "t2" ]) ];
          j [ ("k", s "task"); ("id", s "t2"); ("ev", s "done");
              ("att", i 1); ("wall", s "0x1p-1"); ("lease", i 2);
              ("ep", i 3); ("w", i 0) ];
        ];
      Wal.close wal;
      (* t1's output exists too — replay must reject it anyway, on the
         lease stamp alone. *)
      write_file (Coordinator.output_path config "t1") "stale zombie bytes\n";
      write_file (Coordinator.output_path config "t2") "trusted bytes\n";
      let spawn =
        fork_spawn ~tasks_dir:(Coordinator.tasks_dir config)
          ~run_task:print_task ()
      in
      let summary = Coordinator.run ~spawn config [ "t1"; "t2" ] in
      check int "replay fenced t1" 1 summary.Coordinator.replay_fenced;
      check int "t2 cached" 1 summary.Coordinator.cached;
      check bool "t1 re-ran" true
        (List.assoc "t1" summary.Coordinator.outcomes
         |> function Campaign.Done _ -> true | _ -> false);
      check bool "t1 output replaced" true
        (read_file (Coordinator.output_path config "t1")
        <> "stale zombie bytes\n");
      check bool "t2 output untouched" true
        (read_file (Coordinator.output_path config "t2") = "trusted bytes\n"))

(* A half-open client that sends part of a frame and then goes silent
   must be dropped after the heartbeat timeout and counted — it must
   not pin a select slot for the life of the campaign.  The real
   worker, heartbeating normally, must be unaffected. *)
let test_coordinator_stalled_stray_dropped () =
  with_temp_dir (fun dir ->
      let config =
        {
          (quick_config ~dir ~workers:1) with
          Coordinator.heartbeat_timeout_s = 0.4;
        }
      in
      let stray_pid = ref None in
      let spawn ~slot ~socket =
        (if !stray_pid = None then begin
           flush stdout;
           flush stderr;
           match Unix.fork () with
           | 0 ->
             (try
                let fd =
                  Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
                in
                Unix.connect fd (Unix.ADDR_UNIX socket);
                (* two bytes of a length prefix, then silence *)
                ignore (Unix.write fd (Bytes.make 2 '\000') 0 2);
                Unix.sleepf 30.
              with _ -> ());
             Unix._exit 0
           | pid -> stray_pid := Some pid
         end);
        fork_spawn ~tasks_dir:(Coordinator.tasks_dir config)
          ~run_task:(fun task ->
            (* keep the campaign alive well past the stall timeout *)
            Unix.sleepf 0.3;
            print_task task)
          () ~slot ~socket
      in
      let summary = Coordinator.run ~spawn config [ "a"; "b"; "c" ] in
      (match !stray_pid with
      | Some pid -> (
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      | None -> ());
      check int "campaign unaffected" 0 (Coordinator.exit_code summary);
      check bool "stalled stray dropped and counted" true
        (summary.Coordinator.stalled_drops >= 1);
      check bool "no worker death misattributed" true
        (summary.Coordinator.worker_deaths = 0))

(* A trusted done record whose output file was deleted out from under
   the journal must re-run, not silently count as cached. *)
let test_coordinator_replay_missing_output_reruns () =
  with_temp_dir (fun dir ->
      let tasks = [ "a"; "b" ] in
      let summary1, config = run_campaign ~dir ~workers:1 ~tasks () in
      check int "first run clean" 0 (Coordinator.exit_code summary1);
      Sys.remove (Coordinator.output_path config "a");
      let spawn =
        fork_spawn ~tasks_dir:(Coordinator.tasks_dir config)
          ~run_task:print_task ()
      in
      let summary =
        Coordinator.run ~spawn
          { config with Coordinator.resume = true }
          tasks
      in
      check int "only b cached" 1 summary.Coordinator.cached;
      check bool "a re-ran" true
        (List.assoc "a" summary.Coordinator.outcomes
         |> function Campaign.Done _ -> true | _ -> false);
      check bool "a output restored" true
        (Sys.file_exists (Coordinator.output_path config "a")))

(* --- TCP workers, through the deterministic chaos proxy ---

   Topology per test: remote worker processes dial a netchaos proxy,
   which forwards to the coordinator's TCP listener.  The OCaml 5
   runtime permanently refuses [Unix.fork] once any domain has ever
   been spawned in the process, and {!Netchaos.start} runs its relay
   loop in a domain — so the proxy lives in a forked child process of
   its own, keeping this (heavily forking) test binary domain-free.
   Ports are reserved up front by binding an ephemeral socket and
   closing it, so proxy, workers and coordinator can all be told
   their addresses in advance. *)

let free_port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false)

let fork_tcp_worker ?(heartbeat_s = 0.05) ?read_timeout_s ?token ~port
    ~tasks_dir ~run_task () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let code =
      try
        Worker.run ~heartbeat_s ?read_timeout_s
          ~transport:(Worker.Tcp { host = "127.0.0.1"; port; token })
          ~id:(-1) ~tasks_dir ~run_task ()
      with _ -> 4
    in
    Unix._exit code
  | pid -> pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> c
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> -1
  | exception Unix.Unix_error _ -> -1

let fork_proxy ~seed ~port ~forward_port fault =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try
       let _proxy =
         Netchaos.start ~seed ~port ~forward_host:"127.0.0.1" ~forward_port
           fault
       in
       let rec wait () =
         Unix.sleepf 3600.;
         wait ()
       in
       wait ()
     with _ -> ());
    Unix._exit 1
  | pid -> pid

let stop_proxy pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* Keep the campaign alive long enough for every forked worker to
   finish joining (and for byte-budgeted faults to land mid-stream);
   the sleep shapes timing, never the captured bytes. *)
let slow_task task =
  Unix.sleepf 0.15;
  print_task task

(* Run [tasks] on [nworkers] remote TCP workers behind a chaos proxy
   with [fault]; returns (summary, config, worker exit codes).  The
   workers spool partials into their own directory — distinct from
   the campaign's tasks dir — so the captured bytes can only have
   travelled inline in result frames. *)
let run_tcp_campaign ~dir ~nworkers ~fault ?token ?(proxy_seed = 7)
    ?(heartbeat_s = 0.05) ?read_timeout_s ?(run_task = slow_task) ~tasks () =
  let p_coord = free_port () in
  let p_proxy = free_port () in
  let config =
    {
      (quick_config ~dir ~workers:0) with
      Coordinator.listen = Some ("127.0.0.1", p_coord);
      token;
    }
  in
  let spool = Filename.concat dir "wspool" in
  Unix.mkdir spool 0o755;
  let proxy = fork_proxy ~seed:proxy_seed ~port:p_proxy ~forward_port:p_coord fault in
  let pids =
    List.init nworkers (fun _ ->
        fork_tcp_worker ~heartbeat_s ?read_timeout_s ?token ~port:p_proxy
          ~tasks_dir:spool ~run_task ())
  in
  Fun.protect
    ~finally:(fun () -> stop_proxy proxy)
    (fun () ->
      let summary =
        Coordinator.run
          ~spawn:(fun ~slot:_ ~socket:_ ->
            Alcotest.fail "spawn called with zero local workers")
          config tasks
      in
      let codes = List.map wait_exit pids in
      (summary, config, codes))

let test_tcp_campaign_byte_identity () =
  let tasks = [ "a"; "b"; "c"; "d"; "e" ] in
  with_temp_dir (fun ref_dir ->
      with_temp_dir (fun dir ->
          let _, ref_config = run_campaign ~dir:ref_dir ~workers:1 ~tasks () in
          let summary, config, codes =
            run_tcp_campaign ~dir ~nworkers:2 ~fault:Netchaos.passthrough
              ~token:"tcp-e2e" ~tasks ()
          in
          check int "campaign clean" 0 (Coordinator.exit_code summary);
          check bool "workers exited 0" true
            (List.for_all (fun c -> c = 0) codes);
          check bool "remote workers in the manifest" true
            (List.exists
               (fun w -> w.Coordinator.remote)
               summary.Coordinator.workers);
          check bool "inline outputs byte-identical to local run" true
            (outputs ref_config tasks = outputs config tasks)))

(* One forced mid-campaign reset: the link is abortively cut after
   ~1.5 KiB (well past admission, inside the stream of inline
   results), exactly once.  The worker must reconnect, resume its
   worker id, re-send what the coordinator never processed — and the
   outputs must not bear a single different byte. *)
let test_tcp_reconnect_after_reset () =
  let tasks = [ "a"; "b"; "c"; "d"; "e" ] in
  with_temp_dir (fun ref_dir ->
      with_temp_dir (fun dir ->
          let _, ref_config = run_campaign ~dir:ref_dir ~workers:1 ~tasks () in
          let fault =
            {
              Netchaos.passthrough with
              Netchaos.reset_after_bytes = Some 1536;
              max_resets = Some 1;
            }
          in
          let summary, config, codes =
            run_tcp_campaign ~dir ~nworkers:1 ~fault ~tasks ()
          in
          check int "campaign clean despite the reset" 0
            (Coordinator.exit_code summary);
          check bool "worker exited 0" true
            (List.for_all (fun c -> c = 0) codes);
          check bool "worker resumed its slot" true
            (summary.Coordinator.remote_reconnects >= 1);
          check bool "outputs byte-identical across the reset" true
            (outputs ref_config tasks = outputs config tasks)))

(* Random single-byte corruption on the wire: the negotiated CRC
   trailer must turn every hit into a protocol error and a reconnect —
   never a silently accepted frame — and the campaign must still end
   with byte-identical outputs. *)
let test_tcp_corruption_detected () =
  let tasks = [ "a"; "b"; "c"; "d"; "e" ] in
  with_temp_dir (fun ref_dir ->
      with_temp_dir (fun dir ->
          let _, ref_config = run_campaign ~dir:ref_dir ~workers:1 ~tasks () in
          (* Seed 3 deterministically corrupts early chunks of the
             first link in both directions; at one beat per 0.2 s the
             chunk indices land mid-campaign.  The rate stays low and
             the worker's read timeout short so recovery always
             outpaces the next hit. *)
          let fault =
            { Netchaos.passthrough with Netchaos.corrupt_p = 0.08 }
          in
          let summary, config, codes =
            run_tcp_campaign ~dir ~nworkers:1 ~fault ~proxy_seed:3
              ~heartbeat_s:0.2 ~read_timeout_s:3. ~tasks ()
          in
          check int "campaign clean under corruption" 0
            (Coordinator.exit_code summary);
          check bool "worker exited 0" true
            (List.for_all (fun c -> c = 0) codes);
          check bool "corruption forced at least one reconnect" true
            (summary.Coordinator.remote_reconnects >= 1);
          check bool "outputs byte-identical under corruption" true
            (outputs ref_config tasks = outputs config tasks)))

(* A worker with the wrong campaign token is refused at the door: a
   terminal Reject, worker exit 3, no lease ever granted to it.  A
   correctly-tokened worker on the same listener carries the campaign
   to a clean finish. *)
let test_tcp_bad_token_rejected () =
  let tasks = [ "a"; "b"; "c"; "d"; "e" ] in
  with_temp_dir (fun dir ->
      let p_coord = free_port () in
      let config =
        {
          (quick_config ~dir ~workers:0) with
          Coordinator.listen = Some ("127.0.0.1", p_coord);
          token = Some "right";
        }
      in
      let spool = Filename.concat dir "wspool" in
      Unix.mkdir spool 0o755;
      (* Slow tasks keep the campaign alive long enough that the bad
         worker's hello always lands while the listener is still up —
         otherwise it exits 3 for the wrong reason (unreachable) and
         no rejection is ever counted. *)
      let bad =
        fork_tcp_worker ~token:"wrong" ~port:p_coord ~tasks_dir:spool
          ~run_task:slow_task ()
      in
      let good =
        fork_tcp_worker ~token:"right" ~port:p_coord ~tasks_dir:spool
          ~run_task:slow_task ()
      in
      let summary =
        Coordinator.run
          ~spawn:(fun ~slot:_ ~socket:_ ->
            Alcotest.fail "spawn called with zero local workers")
          config tasks
      in
      let bad_code = wait_exit bad in
      let good_code = wait_exit good in
      check int "campaign clean" 0 (Coordinator.exit_code summary);
      check int "rejected worker exits 3" 3 bad_code;
      check int "admitted worker exits 0" 0 good_code;
      check bool "rejection counted" true (summary.Coordinator.rejected >= 1);
      List.iter
        (fun id ->
          check bool (id ^ " done") true
            (List.assoc id summary.Coordinator.outcomes
             |> function Campaign.Done _ -> true | _ -> false))
        tasks)

(* Reconnect backoff: pure function of (seed, attempt), exponential
   up to the 3 s cap, jittered into [0.5, 1.5) of the base — so it is
   reproducible per worker yet staggered across a fleet. *)
let test_worker_backoff () =
  for attempt = 1 to 12 do
    let base = Float.min 3. (0.05 *. (2. ** float_of_int (attempt - 1))) in
    let d = Worker.backoff_s ~seed:5L ~attempt in
    check bool
      (Printf.sprintf "attempt %d within jitter envelope" attempt)
      true
      (d >= 0.5 *. base && d < 1.5 *. base);
    check bool
      (Printf.sprintf "attempt %d deterministic" attempt)
      true
      (Worker.backoff_s ~seed:5L ~attempt = d)
  done;
  check bool "different seeds decorrelate" true
    (Worker.backoff_s ~seed:5L ~attempt:6
    <> Worker.backoff_s ~seed:6L ~attempt:6)

let () =
  Alcotest.run "coordinator"
    [
      ( "proto",
        [
          Alcotest.test_case "message codec round trip" `Quick
            test_proto_roundtrip;
          Alcotest.test_case "framing survives 1-byte reads" `Quick
            test_proto_framing;
          Alcotest.test_case "oversize frame rejected" `Quick
            test_proto_oversize_rejected;
          Alcotest.test_case "CRC trailer detects every 1-byte corruption"
            `Quick test_proto_crc_detects_corruption;
          QCheck_alcotest.to_alcotest prop_proto_random_split;
        ] );
      ( "lease",
        [
          Alcotest.test_case "grant and complete" `Quick
            test_lease_grant_complete;
          Alcotest.test_case "reclaim fences the old holder" `Quick
            test_lease_fencing;
          Alcotest.test_case "wrong epoch fences" `Quick
            test_lease_wrong_epoch_fences;
          Alcotest.test_case "replay fencing decisions" `Quick
            test_lease_replay;
        ] );
      ( "wal-fuzz",
        [ QCheck_alcotest.to_alcotest prop_wal_codec_fuzz ] );
      ( "coordinator",
        [
          Alcotest.test_case "runs tasks on forked workers" `Quick
            test_coordinator_runs_tasks;
          Alcotest.test_case "byte-identity across worker counts" `Quick
            test_coordinator_byte_identity;
          Alcotest.test_case "kill -9 mid-batch, reassign, resume" `Quick
            test_coordinator_kill9_reassign_and_resume;
          Alcotest.test_case "poison task quarantined" `Quick
            test_coordinator_poison_task_quarantined;
          Alcotest.test_case "chaos kills keep byte-identity" `Quick
            test_coordinator_chaos_byte_identity;
          Alcotest.test_case "zombie's late result fenced" `Quick
            test_coordinator_zombie_is_fenced;
          Alcotest.test_case "stalled stray connection dropped" `Quick
            test_coordinator_stalled_stray_dropped;
          Alcotest.test_case "journal replay fences reclaimed lease" `Quick
            test_coordinator_replay_fencing;
          Alcotest.test_case "missing output re-runs despite journal" `Quick
            test_coordinator_replay_missing_output_reruns;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "reconnect backoff deterministic and bounded"
            `Quick test_worker_backoff;
          Alcotest.test_case "remote workers via proxy, byte-identical" `Quick
            test_tcp_campaign_byte_identity;
          Alcotest.test_case "forced reset: reconnect, resume, identical"
            `Quick test_tcp_reconnect_after_reset;
          Alcotest.test_case "wire corruption caught by CRC, identical"
            `Quick test_tcp_corruption_detected;
          Alcotest.test_case "bad token rejected at admission" `Quick
            test_tcp_bad_token_rejected;
        ] );
    ]
