(* Unit tests for the deterministic network-chaos proxy.

   Everything here runs in ONE process with domains only — no forks.
   OCaml 5's [Unix.fork] refuses to run in any process that has ever
   spawned a domain, and [Netchaos.start] spawns one; the e2e tests
   that need fork + proxy together (test_coordinator's tcp group) run
   the proxy in a forked child instead.  Here the proxy's in-process
   [stats] are the point, so the echo peer gets a domain too.

   Shutdown order matters in every test: close the client socket,
   [Netchaos.stop] (resets live links, so the echo peer unblocks),
   then stop the echo server. *)

open Rumor_core.Rumor

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let write_all fd buf =
  let n = Bytes.length buf in
  let rec go off =
    if off < n then go (off + Unix.write fd buf off (n - off))
  in
  go 0

(* Read whatever arrives within [timeout_s]; "" = nothing came. *)
let read_within fd timeout_s =
  let buf = Buffer.create 64 in
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left > 0. then
      match Unix.select [ fd ] [] [] left with
      | [ _ ], _, _ -> (
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          ())
      | _ -> go ()
  in
  go ();
  Buffer.contents buf

(* Wait for the full [n] bytes of an expected echo (passthrough paths
   where delivery is certain). *)
let read_exactly fd n timeout_s =
  let s = ref "" in
  let deadline = Unix.gettimeofday () +. timeout_s in
  while String.length !s < n && Unix.gettimeofday () < deadline do
    s := !s ^ read_within fd 0.05
  done;
  !s

type echo = { e_port : int; e_listen : Unix.file_descr; e_dom : unit Domain.t }

let start_echo () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 8;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let dom =
    Domain.spawn (fun () ->
        let buf = Bytes.create 16384 in
        let rec serve c =
          match Unix.read c buf 0 16384 with
          | 0 -> Unix.close c
          | n ->
            (try write_all c (Bytes.sub buf 0 n)
             with Unix.Unix_error _ -> ());
            serve c
          | exception Unix.Unix_error _ -> (
            try Unix.close c with Unix.Unix_error _ -> ())
        in
        (* Exit when the accepted connection announces shutdown: the
           stopper dials once with a sentinel first byte. *)
        let rec loop () =
          match Unix.accept fd with
          | c, _ ->
            let stop =
              match Unix.read c buf 0 1 with
              | 1 when Bytes.get buf 0 = '\255' -> true
              | 0 -> false
              | n ->
                (try write_all c (Bytes.sub buf 0 n)
                 with Unix.Unix_error _ -> ());
                serve c;
                false
              | exception Unix.Unix_error _ -> false
            in
            if stop then (try Unix.close c with Unix.Unix_error _ -> ())
            else loop ()
          | exception Unix.Unix_error _ -> ()
        in
        loop ())
  in
  { e_port = port; e_listen = fd; e_dom = dom }

let stop_echo e =
  (try
     let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, e.e_port));
     write_all fd (Bytes.make 1 '\255');
     Unix.close fd
   with Unix.Unix_error _ -> ());
  Domain.join e.e_dom;
  try Unix.close e.e_listen with Unix.Unix_error _ -> ()

let dial port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Run [f client] against an echo server behind a proxy with [fault];
   returns (f's result, final proxy stats). *)
let with_proxied_echo ?(seed = 1) fault f =
  let echo = start_echo () in
  Fun.protect
    ~finally:(fun () -> stop_echo echo)
    (fun () ->
      let proxy =
        Netchaos.start ~seed ~forward_host:"127.0.0.1"
          ~forward_port:echo.e_port fault
      in
      Fun.protect
        ~finally:(fun () -> Netchaos.stop proxy)
        (fun () ->
          let c = dial (Netchaos.port proxy) in
          let r =
            Fun.protect ~finally:(fun () -> close_quiet c) (fun () -> f c)
          in
          (* Let in-flight counter updates land before the snapshot. *)
          Unix.sleepf 0.05;
          (r, Netchaos.stats proxy)))

let test_passthrough_relays () =
  let msg = "through the looking glass" in
  let got, stats =
    with_proxied_echo Netchaos.passthrough (fun c ->
        write_all c (Bytes.of_string msg);
        read_exactly c (String.length msg) 2.)
  in
  check Alcotest.string "echo intact" msg got;
  check int "one connection" 1 stats.Netchaos.conns;
  check bool "chunks counted" true (stats.Netchaos.chunks >= 2);
  check bool "bytes counted" true
    (stats.Netchaos.bytes >= 2 * String.length msg);
  check int "no drops" 0 stats.Netchaos.dropped_chunks;
  check int "no corruption" 0 stats.Netchaos.corrupted_chunks;
  check int "no resets" 0 stats.Netchaos.resets

let test_drop_all_delivers_nothing () =
  let got, stats =
    with_proxied_echo
      { Netchaos.passthrough with Netchaos.drop_p = 1. }
      (fun c ->
        write_all c (Bytes.of_string "into the void");
        read_within c 0.3)
  in
  check Alcotest.string "nothing comes back" "" got;
  check bool "drops counted" true (stats.Netchaos.dropped_chunks >= 1)

let test_reset_after_bytes () =
  let saw_reset, stats =
    with_proxied_echo
      {
        Netchaos.passthrough with
        Netchaos.reset_after_bytes = Some 1024;
        max_resets = Some 1;
      }
      (fun c ->
        (* 2 KiB in one write: the first proxied chunk blows the
           byte budget, so the link dies abortively instead of
           delivering. *)
        write_all c (Bytes.make 2048 'x');
        let rec poke n =
          if n = 0 then false
          else
            match Unix.read c (Bytes.create 64) 0 64 with
            | 0 -> true (* FIN also proves the cut; RST is typical *)
            | _ -> poke (n - 1)
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              true
        in
        poke 10)
  in
  check bool "client sees the cut" true saw_reset;
  check int "exactly one reset" 1 stats.Netchaos.resets

let test_latency_delays_roundtrip () =
  let lat = 0.15 in
  let elapsed, _ =
    with_proxied_echo
      { Netchaos.passthrough with Netchaos.latency_s = lat }
      (fun c ->
        let t0 = Unix.gettimeofday () in
        write_all c (Bytes.of_string "ping");
        let _ = read_exactly c 4 3. in
        Unix.gettimeofday () -. t0)
  in
  (* Two proxied hops, [lat] each way. *)
  check bool "round trip >= 2x latency" true (elapsed >= 2. *. lat *. 0.9)

(* Same seed -> same fault schedule.  One small write per chunk with a
   gap in between pins chunk index = message index, so the pattern of
   which messages come back is a pure function of the seed. *)
let delivery_pattern ~seed =
  let pattern, _ =
    with_proxied_echo ~seed
      { Netchaos.passthrough with Netchaos.drop_p = 0.5 }
      (fun c ->
        List.init 10 (fun i ->
            write_all c (Bytes.make 1 (Char.chr (Char.code 'a' + i)));
            let got = read_within c 0.25 in
            got <> ""))
  in
  pattern

let test_same_seed_same_schedule () =
  let p1 = delivery_pattern ~seed:42 in
  let p2 = delivery_pattern ~seed:42 in
  check (Alcotest.list bool) "same seed, same delivery pattern" p1 p2;
  check bool "pattern is nontrivial (some delivered)" true
    (List.exists Fun.id p1);
  check bool "pattern is nontrivial (some dropped)" true
    (List.exists not p1)

let test_stop_idempotent () =
  let echo = start_echo () in
  Fun.protect
    ~finally:(fun () -> stop_echo echo)
    (fun () ->
      let proxy =
        Netchaos.start ~forward_host:"127.0.0.1" ~forward_port:echo.e_port
          Netchaos.passthrough
      in
      check bool "port assigned" true (Netchaos.port proxy > 0);
      Netchaos.stop proxy;
      Netchaos.stop proxy)

let () =
  Alcotest.run "netchaos"
    [
      ( "netchaos",
        [
          Alcotest.test_case "passthrough relays intact" `Quick
            test_passthrough_relays;
          Alcotest.test_case "drop_p=1 delivers nothing" `Quick
            test_drop_all_delivers_nothing;
          Alcotest.test_case "reset_after_bytes cuts the link" `Quick
            test_reset_after_bytes;
          Alcotest.test_case "latency delays the round trip" `Quick
            test_latency_delays_roundtrip;
          Alcotest.test_case "same seed, same schedule" `Quick
            test_same_seed_same_schedule;
          Alcotest.test_case "stop is idempotent" `Quick
            test_stop_idempotent;
        ] );
    ]
