(* Tests for the fault-injection subsystem and the hardened
   Monte-Carlo runner.

   The load-bearing tests are distribution-level: by the thinning
   identity (paper Eq. 1) a run under per-message loss p must agree in
   distribution with a fault-free run at clock rate 1-p — the two are
   implemented by different mechanisms in the engines, so agreement
   exercises the whole fault path end to end. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  go 0

(* --- Fault_plan construction and validation --- *)

let test_plan_validation () =
  check bool "none is trivial" true (Fault_plan.trivial Fault_plan.none);
  check bool "make () is trivial" true (Fault_plan.trivial (Fault_plan.make ()));
  check bool "loss plan is not trivial" false
    (Fault_plan.trivial (Fault_plan.message_loss 0.1));
  Alcotest.check_raises "loss = 1 rejected"
    (Invalid_argument "Fault_plan.make: loss must lie in [0, 1)") (fun () ->
      ignore (Fault_plan.make ~loss:1.0 ()));
  Alcotest.check_raises "negative loss rejected"
    (Invalid_argument "Fault_plan.make: loss must lie in [0, 1)") (fun () ->
      ignore (Fault_plan.make ~loss:(-0.1) ()));
  Alcotest.check_raises "churn probability rejected"
    (Invalid_argument "Fault_plan.make: churn probabilities outside [0, 1]")
    (fun () ->
      ignore (Fault_plan.make ~churn:{ crash = 1.5; recover = 0.5 } ()));
  Alcotest.check_raises "empty partition window rejected"
    (Invalid_argument "Fault_plan.make: empty partition window")
    (fun () ->
      ignore
        (Fault_plan.partition_window ~from_step:3 ~until_step:3
           ~side:(fun u -> u = 0)));
  let a =
    Fault_plan.availability { Fault_plan.crash = 0.1; recover = 0.3 }
  in
  check bool "availability 0.75" true (abs_float (a -. 0.75) < 1e-12);
  check bool "availability of no churn" true
    (Fault_plan.availability { Fault_plan.crash = 0.; recover = 0. } = 1.0)

let test_plan_state_semantics () =
  (* Partition windows open and close as advance crosses boundaries;
     alive/allows reflect them. *)
  let plan =
    Fault_plan.partition_window ~from_step:2 ~until_step:4 ~side:(fun u ->
        u < 2)
  in
  let st = Fault_plan.init plan ~n:4 in
  let rng = Rng.create 7 in
  check bool "window closed at step 0" true (Fault_plan.allows st 0 3);
  ignore (Fault_plan.advance st rng ~step:1);
  check bool "still closed at step 1" true (Fault_plan.allows st 0 3);
  let changed = Fault_plan.advance st rng ~step:2 in
  check bool "opening reports a change" true changed;
  check bool "cross pair blocked" false (Fault_plan.allows st 0 3);
  check bool "same-side pair unaffected" true (Fault_plan.allows st 0 1);
  check bool "blocked is symmetric" true
    (Fault_plan.blocked st 0 3 && Fault_plan.blocked st 3 0);
  ignore (Fault_plan.advance st rng ~step:3);
  check bool "still open at step 3" false (Fault_plan.allows st 0 3);
  let changed = Fault_plan.advance st rng ~step:4 in
  check bool "closing reports a change" true changed;
  check bool "healed after the window" true (Fault_plan.allows st 0 3)

let test_deliver_draw_parity () =
  (* A trivial plan must consume no randomness: deliver draws nothing
     at loss = 0 and advance draws nothing without churn. *)
  let st = Fault_plan.init Fault_plan.none ~n:8 in
  let rng = Rng.create 11 in
  let before = Rng.bits64 (Rng.copy rng) in
  for step = 1 to 50 do
    ignore (Fault_plan.advance st rng ~step);
    check bool "deliver always true" true (Fault_plan.deliver st rng)
  done;
  check bool "no draws consumed" true (before = Rng.bits64 (Rng.copy rng))

(* --- Thinning identity: loss p == rate (1 - p) --- *)

let ks_agree ?(reps = 300) ~engine ~p net =
  let samples f =
    let rng = Rng.create 42 in
    (f rng).Run.times
  in
  let lossy =
    samples (fun rng ->
        Run.async_spread_times ~reps ~engine
          ~faults:(Fault_plan.message_loss p) rng net)
  in
  let rescaled =
    samples (fun rng ->
        Run.async_spread_times ~reps ~engine ~rate:(1. -. p) rng net)
  in
  let r = Ks.two_sample lossy rescaled in
  let crit = Ks.critical_value ~n1:reps ~n2:reps ~alpha:0.001 in
  check bool
    (Printf.sprintf "KS D=%.3f below alpha=0.001 critical %.3f" r.Ks.statistic
       crit)
    true
    (r.Ks.statistic < crit)

let test_thinning_cut () =
  List.iter
    (fun (label, net) ->
      ignore label;
      List.iter (fun p -> ks_agree ~engine:Run.Cut ~p net) [ 0.25; 0.5 ])
    [
      ("clique", Dynet.of_static (Gen.clique 16));
      ("star", Dynet.of_static (Gen.star 16));
      ("G2", Dichotomy.g2 ~n:16);
    ]

let test_thinning_tick () =
  List.iter
    (fun p -> ks_agree ~engine:Run.Tick ~p (Dynet.of_static (Gen.clique 16)))
    [ 0.25; 0.5 ]

let test_k2_loss_mean () =
  (* On K2 the fault-free informing rate is 2 (mean 0.5); under loss p
     the surviving rate is 2(1-p), so the mean is 0.5 / (1-p). *)
  let net = Dynet.of_static (Gen.clique 2) in
  let p = 0.4 in
  List.iter
    (fun engine ->
      let mc =
        Run.async_spread_times ~reps:4000 ~engine
          ~faults:(Fault_plan.message_loss p) (Rng.create 9) net
      in
      let m = Descriptive.mean mc.Run.times in
      let expected = 0.5 /. (1. -. p) in
      check bool
        (Printf.sprintf "mean %.3f ~ %.3f" m expected)
        true
        (abs_float (m -. expected) < 0.05))
    [ Run.Cut; Run.Tick ]

let test_k2_rate_heterogeneity () =
  (* Node 0 ticking at rate 2 makes the K2 pair rate 2/1 + 1/1 = 3:
     mean spread time 1/3 on both async engines. *)
  let net = Dynet.of_static (Gen.clique 2) in
  let faults =
    Fault_plan.make ~node_rate:(fun u -> if u = 0 then 2.0 else 1.0) ()
  in
  List.iter
    (fun engine ->
      let mc =
        Run.async_spread_times ~reps:4000 ~engine ~faults (Rng.create 10) net
      in
      let m = Descriptive.mean mc.Run.times in
      check bool
        (Printf.sprintf "mean %.3f ~ 1/3" m)
        true
        (abs_float (m -. (1. /. 3.)) < 0.04))
    [ Run.Cut; Run.Tick ]

let test_partition_delays_k2 () =
  (* K2 split by a partition during steps [0, 3): no delivery can
     happen before time 3, and the run completes after it heals. *)
  let net = Dynet.of_static (Gen.clique 2) in
  let faults =
    Fault_plan.partition_window ~from_step:0 ~until_step:3 ~side:(fun u ->
        u = 0)
  in
  List.iter
    (fun engine ->
      let mc =
        Run.async_spread_times ~reps:200 ~engine ~faults ~horizon:1e4
          (Rng.create 12) net
      in
      check int "all runs complete" 200 mc.Run.completed;
      Array.iter
        (fun t -> check bool "no spread before the window closes" true (t >= 3.))
        mc.Run.times)
    [ Run.Cut; Run.Tick ]

let test_crashed_nodes_inert () =
  (* With crash = 1 and recover = 0, every node is dead from step 1 on:
     on a clique only contacts drawn before time 1 can inform, so with
     a far-away horizon the run must stall rather than loop. *)
  let net = Dynet.of_static (Gen.clique 16) in
  let faults = Fault_plan.node_churn ~crash:1.0 ~recover:0.0 in
  let r =
    Async_cut.run ~horizon:50. ~faults (Rng.create 13)
      net ~source:0
  in
  check bool "cannot complete after global crash" false r.Async_result.complete

(* --- Graph-level combinators --- *)

let prop_with_churn_subgraph =
  QCheck.Test.make ~count:50 ~name:"with_churn exposes subgraphs of the base"
    QCheck.(triple (int_range 0 100_000) (int_range 4 24) (int_range 1 10))
    (fun (seed, n, steps) ->
      let g = Gen.clique n in
      let net =
        Combinators.with_churn ~crash:0.3 ~recover:0.4
          (Dynet.of_static g)
      in
      let inst = net.Dynet.spawn (Rng.create seed) in
      let informed = Bitset.create n in
      let ok = ref true in
      for _ = 1 to steps do
        let info = Dynet.next inst ~informed in
        if Graph.n info.Dynet.graph <> n then ok := false;
        Graph.iter_edges
          (fun u v ->
            if u < 0 || v < 0 || u >= n || v >= n then ok := false;
            if not (Graph.has_edge g u v) then ok := false)
          info.Dynet.graph
      done;
      !ok)

let prop_with_partition_window =
  QCheck.Test.make ~count:50
    ~name:"with_partition cuts cross edges exactly inside the window"
    QCheck.(pair (int_range 0 100_000) (int_range 4 20))
    (fun (seed, n) ->
      let g = Gen.clique n in
      let from_step = 2 and until_step = 5 in
      let side u = u < n / 2 in
      let net =
        Combinators.with_partition ~from_step ~until_step ~side
          (Dynet.of_static g)
      in
      let inst = net.Dynet.spawn (Rng.create seed) in
      let informed = Bitset.create n in
      let ok = ref true in
      for step = 0 to 7 do
        let info = Dynet.next inst ~informed in
        let in_window = step >= from_step && step < until_step in
        Graph.iter_edges
          (fun u v ->
            if in_window && side u <> side v then ok := false)
          info.Dynet.graph;
        if not in_window then begin
          (* Outside the window the graph must be the full base graph. *)
          if Graph.m info.Dynet.graph <> Graph.m g then ok := false
        end
      done;
      !ok)

(* --- Horizon_exceeded and censored estimates --- *)

let disconnected = Dynet.of_static (Graph.of_edges 4 [ (0, 1) ])

let test_horizon_exceeded () =
  let r = Async_cut.run ~horizon:10. (Rng.create 21) disconnected ~source:0 in
  check bool "incomplete" false r.Async_result.complete;
  (match Async_result.spread_time_exn r with
  | _ -> Alcotest.fail "expected Horizon_exceeded"
  | exception Async_result.Horizon_exceeded { horizon; informed } ->
    check bool "carries the horizon" true (horizon >= 10.);
    check int "carries the informed count" 2 informed);
  let complete = Async_cut.run (Rng.create 22) (Dynet.of_static (Gen.clique 4)) ~source:0 in
  check bool "exn accessor passes through complete runs" true
    (Async_result.spread_time_exn complete = complete.Async_result.time)

let test_estimate_censored_flag () =
  let est =
    Estimate.spread_time ~reps:40 ~q:0.9 ~horizon:5. (Rng.create 23)
      disconnected
  in
  check int "all reps censored" 40 est.Estimate.censored;
  check bool "point flagged infinite" true (est.Estimate.point = infinity);
  check bool "ci_high flagged infinite" true (est.Estimate.ci_high = infinity);
  check bool "ci_low is a finite lower bound" true
    (Float.is_finite est.Estimate.ci_low);
  let s = Format.asprintf "%a" Estimate.pp est in
  check bool "pp surfaces censoring" true (contains ~sub:"censored" s);
  (* An uncensored estimate keeps the old behaviour. *)
  let est2 =
    Estimate.spread_time ~reps:40 ~q:0.9 (Rng.create 24)
      (Dynet.of_static (Gen.clique 8))
  in
  check int "no censoring on the clique" 0 est2.Estimate.censored;
  check bool "finite point" true (Float.is_finite est2.Estimate.point)

(* --- Hardened sweep: isolation, watchdog, checkpoint --- *)

let test_sequential_sampler_propagates () =
  (* The classic (non-hardened) sampler must still propagate replicate
     exceptions. *)
  let net = Inject.failing ~spawns:[ 3 ] (Dynet.of_static (Gen.clique 8)) in
  (match Run.async_spread_times ~reps:6 (Rng.create 31) net with
  | _ -> Alcotest.fail "expected Injected_failure"
  | exception Inject.Injected_failure i -> check int "spawn index" 3 i)

let test_sweep_isolates_failures () =
  let reps = 8 in
  let net = Inject.failing ~spawns:[ 2 ] (Dynet.of_static (Gen.clique 16)) in
  let sweep = Run.async_spread_sweep ~reps (Rng.create 32) net in
  let finished, censored, failed = Run.sweep_counts sweep in
  check int "reps - 1 finished" (reps - 1) finished;
  check int "no censoring" 0 censored;
  check int "exactly one failure" 1 failed;
  check int "usable samples" (reps - 1) (Array.length (Run.usable_times sweep));
  (match Run.first_failure sweep with
  | Some msg ->
    check bool "failure message names the injection" true
      (contains ~sub:"Injected_failure" msg)
  | None -> Alcotest.fail "no failure recorded");
  let mc = Run.mc_of_sweep sweep in
  check int "mc drops the failed replicate" (reps - 1) mc.Run.reps;
  check int "mc completed count" (reps - 1) mc.Run.completed

let test_parallel_sweep_isolates_failures () =
  (* Same isolation guarantee on worker domains: the sweep returns (all
     domains joined) with the failure recorded. *)
  let reps = 8 in
  let net = Inject.failing ~spawns:[ 2 ] (Dynet.of_static (Gen.clique 16)) in
  let sweep = Run.async_spread_sweep ~jobs:3 ~reps (Rng.create 32) net in
  let finished, _, failed = Run.sweep_counts sweep in
  check int "reps - 1 finished (parallel)" (reps - 1) finished;
  check int "one failure (parallel)" 1 failed

let test_parallel_sampler_joins_then_raises () =
  (* The classic parallel sampler re-raises the worker exception after
     joining every domain. *)
  let net = Inject.failing ~spawns:[ 1 ] (Dynet.of_static (Gen.clique 8)) in
  match Run.async_spread_times ~jobs:3 ~reps:6 (Rng.create 33) net with
  | _ -> Alcotest.fail "expected Injected_failure"
  | exception Inject.Injected_failure _ -> ()

let test_sweep_watchdog_censors () =
  let net = Dynet.of_static (Gen.clique 32) in
  let sweep = Run.async_spread_sweep ~reps:5 ~max_events:3 (Rng.create 34) net in
  let finished, censored, failed = Run.sweep_counts sweep in
  check int "nothing finished under a 3-event budget" 0 finished;
  check int "all censored" 5 censored;
  check int "no failures" 0 failed;
  Array.iter
    (function
      | Run.Censored t -> check bool "censored time recorded" true (t >= 0.)
      | _ -> Alcotest.fail "expected Censored")
    sweep.Run.outcomes

let test_sweep_deterministic_vs_reps () =
  (* Pre-split child streams: the first k outcomes do not depend on the
     total number of reps. *)
  let net = Dynet.of_static (Gen.clique 12) in
  let s5 = Run.async_spread_sweep ~reps:5 (Rng.create 35) net in
  let s12 = Run.async_spread_sweep ~reps:12 (Rng.create 35) net in
  for i = 0 to 4 do
    check bool "prefix-stable outcome" true
      (s5.Run.outcomes.(i) = s12.Run.outcomes.(i));
    check bool "prefix-stable seed" true (s5.Run.seeds.(i) = s12.Run.seeds.(i))
  done

let with_temp_file f =
  let path = Filename.temp_file "rumor-ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_temp_file (fun path ->
      let seeds = [| 1L; 2L; 3L; 4L |] in
      let outcomes =
        [|
          Some (Run.Finished 3.141592653589793);
          Some (Run.Censored 1e4);
          Some (Run.Failed "boom with spaces\nand a newline");
          None;
        |]
      in
      Checkpoint.save path ~seeds ~outcomes;
      let table = Checkpoint.load path in
      check int "three decided outcomes" 3 (Hashtbl.length table);
      check bool "finished time exact" true
        (Hashtbl.find table 1L = Run.Finished 3.141592653589793);
      check bool "censored time exact" true
        (Hashtbl.find table 2L = Run.Censored 1e4);
      (match Hashtbl.find table 3L with
      | Run.Failed msg ->
        check bool "failure message round-trips" true
          (msg = "boom with spaces\nand a newline")
      | _ -> Alcotest.fail "expected Failed");
      check bool "pending replicate omitted" true (not (Hashtbl.mem table 4L)))

let test_checkpoint_missing_and_garbage () =
  check int "missing file loads empty" 0
    (Hashtbl.length (Checkpoint.load "/nonexistent/rumor-ckpt"));
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "rumor-checkpoint v1\nnot a valid line\n7b finished 0x1p+1\n";
      close_out oc;
      let table = Checkpoint.load path in
      check int "garbage line skipped" 1 (Hashtbl.length table);
      check bool "valid line kept" true
        (Hashtbl.find table 0x7bL = Run.Finished 2.0))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let with_metrics f =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect ~finally:Obs.Metrics.disable f

let counter_value name = Obs.Metrics.value (Obs.Metrics.counter name)

let test_checkpoint_v2_header_and_crc () =
  (* A fresh checkpoint carries the v2 magic and a payload CRC; a
     flipped payload byte is surfaced via checkpoint.crc_mismatches
     (the file still degrades to per-line parsing, it is not thrown
     away). *)
  with_temp_file (fun path ->
      Checkpoint.save path ~seeds:[| 0x11L; 0x22L |]
        ~outcomes:[| Some (Run.Finished 2.0); Some (Run.Censored 1.5) |];
      let header = String.concat "" [ Checkpoint.magic; " crc32=" ] in
      check bool "v2 header with crc" true
        (String.length (read_file path) > String.length header
        && String.sub (read_file path) 0 (String.length header) = header);
      check int "round trip" 2 (Hashtbl.length (Checkpoint.load path));
      with_metrics (fun () ->
          let content = read_file path in
          (* Flip a seed hex digit: every line still parses, but the
             payload no longer matches the header CRC. *)
          let flipped =
            String.map (fun c -> if c = '2' then '3' else c) content
          in
          write_file path
            (String.sub content 0 (String.index content '\n')
            ^ String.sub flipped (String.index content '\n')
                (String.length content - String.index content '\n'));
          let table = Checkpoint.load path in
          check int "crc mismatch counted" 1
            (counter_value "checkpoint.crc_mismatches");
          check int "degraded to per-line parsing" 2 (Hashtbl.length table)))

let test_checkpoint_wrong_magic_rejected () =
  with_metrics (fun () ->
      with_temp_file (fun path ->
          write_file path "rumor-checkpoint v9 bogus\n7b finished 0x1p+1\n";
          let table = Checkpoint.load path in
          check int "unknown magic loads nothing" 0 (Hashtbl.length table);
          check int "checkpoint.bad_magic counted" 1
            (counter_value "checkpoint.bad_magic")))

let test_checkpoint_corrupt_lines_counted () =
  (* Satellite of the harness PR: malformed lines are never silently
     dropped — they are tallied in checkpoint.corrupt_lines (one
     stderr warning names the first offender). *)
  with_metrics (fun () ->
      with_temp_file (fun path ->
          write_file path
            "rumor-checkpoint v1\n\
             garbage one\n\
             7b finished 0x1p+1\n\
             garbage two\n";
          let table = Checkpoint.load path in
          check int "valid line kept" 1 (Hashtbl.length table);
          check int "both corrupt lines counted" 2
            (counter_value "checkpoint.corrupt_lines")))

let test_checkpoint_resume_bit_identical () =
  (* Interrupt a sweep after 5 of 12 reps, resume from the checkpoint,
     and require Float-equality with an uninterrupted 12-rep sweep. *)
  let net = Dynet.of_static (Gen.clique 12) in
  let faults = Fault_plan.message_loss 0.2 in
  let uninterrupted =
    Run.async_spread_sweep ~reps:12 ~faults (Rng.create 36) net
  in
  with_temp_file (fun path ->
      let partial =
        Run.async_spread_sweep ~reps:5 ~faults ~checkpoint:path
          (Rng.create 36) net
      in
      for i = 0 to 4 do
        check bool "partial prefix matches" true
          (partial.Run.outcomes.(i) = uninterrupted.Run.outcomes.(i))
      done;
      let resumed =
        Run.async_spread_sweep ~reps:12 ~faults ~checkpoint:path
          (Rng.create 36) net
      in
      check int "resumed to full size" 12 (Array.length resumed.Run.outcomes);
      for i = 0 to 11 do
        check bool
          (Printf.sprintf "replicate %d bit-identical after resume" i)
          true
          (resumed.Run.outcomes.(i) = uninterrupted.Run.outcomes.(i))
      done)

let test_checkpoint_written_on_failure_path () =
  (* The Fun.protect finally must persist decided outcomes even though
     a replicate failed mid-sweep. *)
  let net = Inject.failing ~spawns:[ 1 ] (Dynet.of_static (Gen.clique 12)) in
  with_temp_file (fun path ->
      let sweep =
        Run.async_spread_sweep ~reps:4 ~checkpoint:path (Rng.create 37) net
      in
      let _, _, failed = Run.sweep_counts sweep in
      check int "one failure" 1 failed;
      let table = Checkpoint.load path in
      check int "all four outcomes persisted" 4 (Hashtbl.length table))

let () =
  Alcotest.run "faults"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "partition state machine" `Quick
            test_plan_state_semantics;
          Alcotest.test_case "trivial plan draw parity" `Quick
            test_deliver_draw_parity;
        ] );
      ( "thinning",
        [
          Alcotest.test_case "loss p == rate 1-p (cut)" `Slow test_thinning_cut;
          Alcotest.test_case "loss p == rate 1-p (tick)" `Slow
            test_thinning_tick;
          Alcotest.test_case "K2 mean under loss" `Slow test_k2_loss_mean;
          Alcotest.test_case "K2 mean under rate heterogeneity" `Slow
            test_k2_rate_heterogeneity;
        ] );
      ( "fault-semantics",
        [
          Alcotest.test_case "partition delays K2" `Quick
            test_partition_delays_k2;
          Alcotest.test_case "crashed nodes are inert" `Quick
            test_crashed_nodes_inert;
          QCheck_alcotest.to_alcotest prop_with_churn_subgraph;
          QCheck_alcotest.to_alcotest prop_with_partition_window;
        ] );
      ( "censoring",
        [
          Alcotest.test_case "Horizon_exceeded payload" `Quick
            test_horizon_exceeded;
          Alcotest.test_case "Estimate flags censored quantiles" `Quick
            test_estimate_censored_flag;
        ] );
      ( "hardened-sweep",
        [
          Alcotest.test_case "classic sampler propagates" `Quick
            test_sequential_sampler_propagates;
          Alcotest.test_case "sweep isolates failures" `Quick
            test_sweep_isolates_failures;
          Alcotest.test_case "parallel sweep isolates failures" `Quick
            test_parallel_sweep_isolates_failures;
          Alcotest.test_case "parallel sampler joins then raises" `Quick
            test_parallel_sampler_joins_then_raises;
          Alcotest.test_case "watchdog censors" `Quick
            test_sweep_watchdog_censors;
          Alcotest.test_case "prefix-stable under reps" `Quick
            test_sweep_deterministic_vs_reps;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "save/load round trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "missing and malformed input" `Quick
            test_checkpoint_missing_and_garbage;
          Alcotest.test_case "v2 header and payload CRC" `Quick
            test_checkpoint_v2_header_and_crc;
          Alcotest.test_case "wrong magic rejected" `Quick
            test_checkpoint_wrong_magic_rejected;
          Alcotest.test_case "corrupt lines counted" `Quick
            test_checkpoint_corrupt_lines_counted;
          Alcotest.test_case "resume is bit-identical" `Quick
            test_checkpoint_resume_bit_identical;
          Alcotest.test_case "checkpoint survives a failing replicate" `Quick
            test_checkpoint_written_on_failure_path;
        ] );
    ]
