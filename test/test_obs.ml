(* Observability subsystem (lib/obs): JSON codec round-trips, metric
   registry semantics, determinism of the counters under the
   domain-parallel runners, draws-parity with the subsystem on/off,
   sink artifacts, bench-report comparison, shared env parsing, and
   the per-step trace progress export. *)

open Rumor_core.Rumor

let check = Alcotest.check

let check_bool = check Alcotest.bool

let check_int = check Alcotest.int

let check_string = check Alcotest.string

let times_t = Alcotest.array (Alcotest.float 0.)

(* --- Json --- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("bool", Obs.Json.Bool true);
        ("int", Obs.Json.Int (-42));
        ("float", Obs.Json.Float 1.5);
        ("tiny", Obs.Json.Float 1e-12);
        ("string", Obs.Json.String "with \"quotes\", \n and \t controls");
        ( "list",
          Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ]
        );
      ]
  in
  let compact = Obs.Json.to_string v in
  check_string "compact round-trip" compact
    (Obs.Json.to_string (Obs.Json.parse_exn compact));
  let pretty = Obs.Json.to_string ~pretty:true v in
  check_string "pretty parses to the same value" compact
    (Obs.Json.to_string (Obs.Json.parse_exn pretty));
  (* Non-finite floats: NaN has no spelling (-> null); infinities
     round-trip through the overflowing literal. *)
  check_string "nan -> null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check_string "inf" "1e999" (Obs.Json.to_string (Obs.Json.Float Float.infinity));
  (match Obs.Json.parse_exn "1e999" with
  | Obs.Json.Float f -> check_bool "inf round-trip" true (f = Float.infinity)
  | _ -> Alcotest.fail "1e999 should parse as a float");
  (* Floats stay floats: a whole-number float keeps its ".0". *)
  check_string "float-ness preserved" "3.0"
    (Obs.Json.to_string (Obs.Json.Float 3.))

let test_json_errors () =
  let is_error s =
    match Obs.Json.parse s with Ok _ -> false | Error _ -> true
  in
  check_bool "unterminated obj" true (is_error "{");
  check_bool "trailing garbage" true (is_error "1 2");
  check_bool "bare word" true (is_error "nope");
  check_bool "trailing comma" true (is_error "[1,]");
  (match Obs.Json.parse_exn "\"\\u0041\\u00e9\"" with
  | Obs.Json.String s -> check_string "unicode escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "expected a string");
  match Obs.Json.parse_exn "{\"a\": [1, 2.5]}" with
  | v ->
    check_int "member/int" 1
      (match Obs.Json.member "a" v with
      | Some (Obs.Json.List (x :: _)) ->
        Option.value ~default:(-1) (Obs.Json.to_int_opt x)
      | _ -> -1)

(* --- Metrics --- *)

let test_metrics_gating () =
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.gating" in
  Obs.Metrics.incr c;
  check_int "disabled incr is a no-op" 0 (Obs.Metrics.value c);
  Obs.Metrics.enable ();
  Obs.Metrics.incr c;
  Obs.Metrics.add c 5;
  check_int "enabled counts" 6 (Obs.Metrics.value c);
  Obs.Metrics.disable ();
  Obs.Metrics.incr c;
  check_int "re-disabled" 6 (Obs.Metrics.value c);
  (* Registration is idempotent: same handle, same cell. *)
  let c' = Obs.Metrics.counter "test.gating" in
  check_int "idempotent registration" 6 (Obs.Metrics.value c')

let test_metrics_histogram () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let h = Obs.Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test.hist" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 2.0; 100. ];
  let snap = Obs.Metrics.snapshot () in
  let hist =
    match Obs.Json.(member "histograms" snap) with
    | Some hs -> Obs.Json.member "test.hist" hs
    | None -> None
  in
  (match hist with
  | Some hj ->
    check_int "count" 3
      (Option.value ~default:(-1)
         (Option.bind (Obs.Json.member "count" hj) Obs.Json.to_int_opt));
    let bucket_counts =
      match Option.bind (Obs.Json.member "buckets" hj) Obs.Json.to_list_opt with
      | Some bs ->
        List.map
          (fun b ->
            Option.value ~default:(-1)
              (Option.bind (Obs.Json.member "count" b) Obs.Json.to_int_opt))
          bs
      | None -> []
    in
    (* 0.5 -> le 1; 2.0 lands exactly on le 2; 100 -> overflow. *)
    check (Alcotest.list Alcotest.int) "bucket counts" [ 1; 1; 0; 1 ]
      bucket_counts
  | None -> Alcotest.fail "histogram missing from snapshot");
  Obs.Metrics.disable ();
  Alcotest.check_raises "non-increasing buckets rejected"
    (Invalid_argument
       "Metrics.histogram: bucket bounds must be strictly increasing")
    (fun () -> ignore (Obs.Metrics.histogram ~buckets:[| 2.; 1. |] "test.bad"))

(* --- determinism & parity under the Monte-Carlo runners --- *)

let test_run_determinism () =
  let net = Dynet.of_static ~name:"clique" (Gen.clique 48) in
  (* Draws-parity: the same seed yields the same sample with the
     subsystem off and on — recording never touches an RNG. *)
  Obs.Metrics.disable ();
  let off = Run.async_spread_times ~jobs:2 ~reps:16 (Rng.create 7) net in
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let one = Run.async_spread_times ~jobs:1 ~reps:16 (Rng.create 7) net in
  let snap1 = Obs.Json.to_string (Obs.Metrics.snapshot ()) in
  Obs.Metrics.reset ();
  let four = Run.async_spread_times ~jobs:4 ~reps:16 (Rng.create 7) net in
  let snap4 = Obs.Json.to_string (Obs.Metrics.snapshot ()) in
  Obs.Metrics.disable ();
  check times_t "times identical with metrics off vs on" off.Run.times
    one.Run.times;
  check times_t "times identical on 1 vs 4 domains" one.Run.times four.Run.times;
  check_string "metric snapshot identical on 1 vs 4 domains" snap1 snap4;
  check_bool "engines actually counted" true
    (String.length snap1 > 0
    && List.assoc "async_cut.runs" (Obs.Metrics.counters ()) = 16)

(* --- Span --- *)

let test_span () =
  Obs.Metrics.enable ();
  Obs.Span.reset ();
  let s = Obs.Span.create "test.span" in
  check_int "span thunk result" 41 (Obs.Span.time s (fun () -> 41));
  Obs.Span.record_ns s 1_000_000;
  check_int "span count" 2 (Obs.Span.count s);
  check_bool "span total positive" true (Obs.Span.total_s s >= 0.001);
  Obs.Metrics.disable ();
  ignore (Obs.Span.time s (fun () -> 0));
  check_int "disabled span not accumulated" 2 (Obs.Span.count s)

(* --- Sink + Run_manifest --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "rumor-obs-test" "" in
  Sys.remove dir;
  Obs.Sink.set_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.set_dir None;
      if Sys.file_exists dir then
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () -> f dir)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_sink_jsonl () =
  (* No directory configured: every writer is a silent no-op. *)
  Obs.Sink.set_dir None;
  check_bool "inactive without a dir" false (Obs.Sink.active ());
  Obs.Sink.append_jsonl "nowhere.jsonl" (Obs.Json.Int 1);
  with_temp_dir (fun dir ->
      check_bool "active" true (Obs.Sink.active ());
      Obs.Sink.append_jsonl "rows.jsonl"
        (Obs.Json.Obj [ ("i", Obs.Json.Int 1) ]);
      Obs.Sink.append_jsonl "rows.jsonl"
        (Obs.Json.Obj [ ("i", Obs.Json.Int 2); ("s", Obs.Json.String "x") ]);
      let lines = read_lines (Filename.concat dir "rows.jsonl") in
      check_int "two rows" 2 (List.length lines);
      let parsed = List.map Obs.Json.parse_exn lines in
      check (Alcotest.list Alcotest.int) "row payloads" [ 1; 2 ]
        (List.map
           (fun v ->
             Option.value ~default:(-1)
               (Option.bind (Obs.Json.member "i" v) Obs.Json.to_int_opt))
           parsed);
      (* CSV quoting. *)
      Obs.Sink.write_csv "t.csv" ~header:[ "a"; "b" ]
        [ [ "plain"; "with,comma" ]; [ "with\"quote"; "x" ] ];
      let csv = read_lines (Filename.concat dir "t.csv") in
      check_string "csv header" "a,b" (List.nth csv 0);
      check_string "csv comma quoted" "plain,\"with,comma\"" (List.nth csv 1);
      check_string "csv quote doubled" "\"with\"\"quote\",x" (List.nth csv 2))

let test_run_manifest () =
  with_temp_dir (fun dir ->
      Obs.Run_manifest.write ~with_registry:false
        (Obs.Run_manifest.make ~kind:"test" ~id:"t1" ~seed:5 ~engine:"cut"
           ~network:"clique" ~n:48 ~reps:3 ~wall_s:0.25 ());
      let v =
        Obs.Json.parse_exn
          (String.concat "\n" (read_lines (Filename.concat dir "t1.manifest.json")))
      in
      let str k =
        Option.value ~default:"?"
          (Option.bind (Obs.Json.member k v) Obs.Json.to_string_opt)
      in
      let int k =
        Option.value ~default:(-1)
          (Option.bind (Obs.Json.member k v) Obs.Json.to_int_opt)
      in
      check_string "schema" "rumor-manifest/1" (str "schema");
      check_string "kind" "test" (str "kind");
      check_string "engine" "cut" (str "engine");
      check_int "seed" 5 (int "seed");
      check_int "n" 48 (int "n");
      check_bool "registry suppressed" true (Obs.Json.member "metrics" v = None))

(* --- Bench_report --- *)

let test_bench_report () =
  let baseline =
    Obs.Bench_report.make ~rev:"base" ~seed:1 ~mode:"micro"
      ~entries:[ ("x", 100.); ("y", 2000.); ("gone", 5.) ]
      ~counters:[ ("c", 10); ("same", 3) ]
      ()
  in
  let path = Filename.temp_file "rumor-bench-test" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Obs.Bench_report.write path baseline;
      (match Obs.Bench_report.load path with
      | Ok loaded ->
        check_string "write/load round-trip"
          (Obs.Json.to_string (Obs.Bench_report.to_json baseline))
          (Obs.Json.to_string (Obs.Bench_report.to_json loaded))
      | Error e -> Alcotest.fail e);
      (* Wrong schema rejected. *)
      check_bool "wrong schema rejected" true
        (match Obs.Bench_report.of_json (Obs.Json.Obj [ ("schema", Obs.Json.String "nope/9") ]) with
        | Error _ -> true
        | Ok _ -> false));
  (* Injected 2.5x slowdown on x; y within tolerance; one entry each
     way that has no counterpart; one drifted counter. *)
  let current =
    Obs.Bench_report.make ~rev:"cur" ~seed:1 ~mode:"micro"
      ~entries:[ ("x", 250.); ("y", 2100.); ("fresh", 1.) ]
      ~counters:[ ("c", 12); ("same", 3) ]
      ()
  in
  let cmp : Obs.Bench_report.comparison =
    Obs.Bench_report.compare ~tolerance:0.25 ~baseline ~current ()
  in
  check_bool "regression flagged" true (Obs.Bench_report.has_regression cmp);
  check_int "one regression" 1 (List.length cmp.regressions);
  (match cmp.regressions with
  | [ d ] ->
    check_string "regressed entry" "x" d.Obs.Bench_report.entry;
    check_bool "ratio 2.5" true (Float.abs (d.Obs.Bench_report.ratio -. 2.5) < 1e-9)
  | _ -> Alcotest.fail "expected exactly one regression");
  check_int "y stable" 1 (List.length cmp.stable);
  check (Alcotest.list Alcotest.string) "only_base" [ "gone" ] cmp.only_base;
  check (Alcotest.list Alcotest.string) "only_current" [ "fresh" ]
    cmp.only_current;
  check_int "counter drift" 1 (List.length cmp.counter_drift);
  (* A generous tolerance absorbs the slowdown. *)
  let lax : Obs.Bench_report.comparison =
    Obs.Bench_report.compare ~tolerance:2.0 ~baseline ~current ()
  in
  check_bool "within 200% tolerance" false (Obs.Bench_report.has_regression lax);
  Alcotest.check_raises "negative tolerance rejected"
    (Invalid_argument "Bench_report.compare: negative tolerance") (fun () ->
      ignore (Obs.Bench_report.compare ~tolerance:(-0.1) ~baseline ~current ()))

(* --- Env --- *)

let test_env () =
  Unix.putenv "RUMOR_OBS_TEST_V" "yes";
  check_bool "yes" true (Env.flag "RUMOR_OBS_TEST_V");
  Unix.putenv "RUMOR_OBS_TEST_V" "0";
  check_bool "0" false (Env.flag "RUMOR_OBS_TEST_V");
  Unix.putenv "RUMOR_OBS_TEST_V" "junk";
  check_bool "junk -> default false" false (Env.flag "RUMOR_OBS_TEST_V");
  check_bool "junk -> explicit default" true
    (Env.flag ~default:true "RUMOR_OBS_TEST_V");
  Unix.putenv "RUMOR_OBS_TEST_V" "";
  check_bool "empty is unset" false (Env.flag "RUMOR_OBS_TEST_V");
  check_bool "unset never warns" false (Env.flag "RUMOR_OBS_TEST_UNSET_V");
  Unix.putenv "RUMOR_OBS_TEST_I" "17";
  check_int "int" 17 (Env.int ~default:3 "RUMOR_OBS_TEST_I");
  Unix.putenv "RUMOR_OBS_TEST_I" "202O";
  check_int "typo'd int -> default" 3 (Env.int ~default:3 "RUMOR_OBS_TEST_I");
  Unix.putenv "RUMOR_OBS_TEST_F" "2.5";
  check_bool "float" true (Env.float ~default:0. "RUMOR_OBS_TEST_F" = 2.5)

(* --- Trace.per_step_progress --- *)

let test_per_step_progress () =
  let deltas = Alcotest.array Alcotest.int in
  check deltas "bucketed by floor of event time" [| 2; 1; 6 |]
    (Trace.per_step_progress [| (0., 1); (0.5, 3); (1.2, 4); (2.9, 10) |]);
  (* A boundary event at t = s belongs to step s (graph G(s) is live
     from time s onwards). *)
  check deltas "integer boundary" [| 1; 2 |]
    (Trace.per_step_progress [| (0., 1); (0.5, 2); (1.0, 4) |]);
  check deltas "source only" [| 0 |] (Trace.per_step_progress [| (0., 1) |]);
  check deltas "empty" [||] (Trace.per_step_progress [||]);
  (* Consistency with a real engine trace: deltas sum to the informed
     count minus the source. *)
  let net = Dynet.of_static (Gen.clique 32) in
  let r = Async_cut.run ~record_trace:true (Rng.create 3) net ~source:0 in
  let p = Trace.per_step_progress r.Async_result.trace in
  check_int "deltas account for everyone but the source" 31
    (Array.fold_left ( + ) 0 p)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "gating" `Quick test_metrics_gating;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "determinism" `Quick test_run_determinism;
          Alcotest.test_case "span" `Quick test_span;
        ] );
      ( "sink",
        [
          Alcotest.test_case "jsonl+csv" `Quick test_sink_jsonl;
          Alcotest.test_case "manifest" `Quick test_run_manifest;
        ] );
      ( "bench-report",
        [ Alcotest.test_case "round-trip+compare" `Quick test_bench_report ] );
      ("env", [ Alcotest.test_case "parsing" `Quick test_env ]);
      ( "trace",
        [ Alcotest.test_case "per-step progress" `Quick test_per_step_progress ]
      );
    ]
