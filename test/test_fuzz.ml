(* Cross-family fuzz: random combinations of network family, engine,
   protocol and seed must never raise, and the universal invariants
   must hold (monotone informed set containing the source, event
   accounting, horizon discipline).  This is the safety net for the
   interactions the per-module suites cannot enumerate. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool

let pick_family rng =
  let n = 16 + Rng.int rng 48 in
  match Rng.int rng 11 with
  | 0 -> Dynet.of_static (Gen.clique n)
  | 1 -> Dynet.of_static (Gen.cycle (max 3 n))
  | 2 -> Dynet.of_static (Gen.erdos_renyi rng n 0.2)
  | 3 -> Dichotomy.g1 ~n:(max 4 n)
  | 4 -> Dichotomy.g2 ~n:(max 2 n)
  | 5 -> Markovian.network ~n ~p:0.2 ~q:0.3 ()
  | 6 -> Mobile.network ~agents:n ~width:8 ~height:8 ~radius:2
  | 7 ->
    Combinators.intermittent
      ~every:(1 + Rng.int rng 3)
      (Dynet.of_static (Gen.cycle (max 3 n)))
  | 8 ->
    Combinators.with_edge_dropout
      ~p:(Rng.float rng *. 0.7)
      (Dynet.of_static (Gen.clique n))
  | 9 ->
    let nn = max 8 n in
    Adversary.greedy_min_cut ~n:nn ~degree_budget:(2 + (2 * Rng.int rng 3))
  | 10 ->
    Combinators.with_node_outage
      ~p:(Rng.float rng *. 0.5)
      (Dynet.of_static (Gen.clique n))
  | _ -> assert false

let run_one rng =
  let net = pick_family rng in
  let n = net.Dynet.n in
  let source = Rng.int rng n in
  let seed = Rng.int rng 1_000_000 in
  let child = Rng.create seed in
  match Rng.int rng 4 with
  | 0 ->
    let protocol = Rng.choose rng [| Protocol.Push; Protocol.Pull; Protocol.Push_pull |] in
    let r = Async_cut.run ~protocol ~horizon:200. child net ~source in
    let informed = r.Async_result.informed in
    Bitset.mem informed source
    && Bitset.cardinal informed >= 1
    && r.Async_result.time <= 200. +. 1.
    && (not r.Async_result.complete) = (Bitset.cardinal informed < n)
  | 1 ->
    let r = Async_tick.run ~horizon:100. child net ~source in
    Bitset.mem r.Async_result.informed source
  | 2 ->
    let r = Sync.run ~max_rounds:300 child net ~source in
    Bitset.mem r.Sync.informed source
    && Array.length r.Sync.trace = r.Sync.rounds + 1
  | 3 ->
    let r = Flooding.run ~max_rounds:300 child net ~source in
    Bitset.mem r.Flooding.informed source
  | _ -> assert false

let test_fuzz () =
  let rng = Rng.create 20260706 in
  for i = 1 to 300 do
    let ok =
      try run_one rng
      with e ->
        Alcotest.failf "fuzz iteration %d raised %s" i (Printexc.to_string e)
    in
    check bool (Printf.sprintf "invariants at iteration %d" i) true ok
  done

(* --- split-seed determinism property --- *)

let prop_sweep_fingerprints_job_invariant =
  (* For any sweep seed and any job count, the multiset (in fact the
     ordered array) of per-replicate RNG fingerprints — the checkpoint
     keys — must equal the sequential run's: replicate streams are
     derived from the replicate index, never from execution order. *)
  QCheck.Test.make ~count:30
    ~name:"sweep fingerprints are job-count invariant"
    QCheck.(pair (int_range 0 1_000_000) (int_range 2 6))
    (fun (seed, jobs) ->
      let net = Dynet.of_static (Gen.clique 8) in
      let reps = 9 in
      let seq = Run.async_spread_sweep ~jobs:1 ~reps (Rng.create seed) net in
      let par = Run.async_spread_sweep ~jobs ~reps (Rng.create seed) net in
      seq.Run.seeds = par.Run.seeds && seq.Run.outcomes = par.Run.outcomes)

let () =
  Alcotest.run "fuzz"
    [
      ("cross-family", [ Alcotest.test_case "300 random runs" `Slow test_fuzz ]);
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_sweep_fingerprints_job_invariant ] );
    ]
