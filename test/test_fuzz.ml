(* Cross-family fuzz: random combinations of network family, engine,
   protocol and seed must never raise, and the universal invariants
   must hold (monotone informed set containing the source, event
   accounting, horizon discipline).  This is the safety net for the
   interactions the per-module suites cannot enumerate. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool

let pick_family rng =
  let n = 16 + Rng.int rng 48 in
  match Rng.int rng 11 with
  | 0 -> Dynet.of_static (Gen.clique n)
  | 1 -> Dynet.of_static (Gen.cycle (max 3 n))
  | 2 -> Dynet.of_static (Gen.erdos_renyi rng n 0.2)
  | 3 -> Dichotomy.g1 ~n:(max 4 n)
  | 4 -> Dichotomy.g2 ~n:(max 2 n)
  | 5 -> Markovian.network ~n ~p:0.2 ~q:0.3 ()
  | 6 -> Mobile.network ~agents:n ~width:8 ~height:8 ~radius:2
  | 7 ->
    Combinators.intermittent
      ~every:(1 + Rng.int rng 3)
      (Dynet.of_static (Gen.cycle (max 3 n)))
  | 8 ->
    Combinators.with_edge_dropout
      ~p:(Rng.float rng *. 0.7)
      (Dynet.of_static (Gen.clique n))
  | 9 ->
    let nn = max 8 n in
    Adversary.greedy_min_cut ~n:nn ~degree_budget:(2 + (2 * Rng.int rng 3))
  | 10 ->
    Combinators.with_node_outage
      ~p:(Rng.float rng *. 0.5)
      (Dynet.of_static (Gen.clique n))
  | _ -> assert false

let run_one rng =
  let net = pick_family rng in
  let n = net.Dynet.n in
  let source = Rng.int rng n in
  let seed = Rng.int rng 1_000_000 in
  let child = Rng.create seed in
  match Rng.int rng 4 with
  | 0 ->
    let protocol = Rng.choose rng [| Protocol.Push; Protocol.Pull; Protocol.Push_pull |] in
    let r = Async_cut.run ~protocol ~horizon:200. child net ~source in
    let informed = r.Async_result.informed in
    Bitset.mem informed source
    && Bitset.cardinal informed >= 1
    && r.Async_result.time <= 200. +. 1.
    && (not r.Async_result.complete) = (Bitset.cardinal informed < n)
  | 1 ->
    let r = Async_tick.run ~horizon:100. child net ~source in
    Bitset.mem r.Async_result.informed source
  | 2 ->
    let r = Sync.run ~max_rounds:300 child net ~source in
    Bitset.mem r.Sync.informed source
    && Array.length r.Sync.trace = r.Sync.rounds + 1
  | 3 ->
    let r = Flooding.run ~max_rounds:300 child net ~source in
    Bitset.mem r.Flooding.informed source
  | _ -> assert false

let test_fuzz () =
  let rng = Rng.create 20260706 in
  for i = 1 to 300 do
    let ok =
      try run_one rng
      with e ->
        Alcotest.failf "fuzz iteration %d raised %s" i (Printexc.to_string e)
    in
    check bool (Printf.sprintf "invariants at iteration %d" i) true ok
  done

(* --- split-seed determinism property --- *)

let prop_sweep_fingerprints_job_invariant =
  (* For any sweep seed and any job count, the multiset (in fact the
     ordered array) of per-replicate RNG fingerprints — the checkpoint
     keys — must equal the sequential run's: replicate streams are
     derived from the replicate index, never from execution order. *)
  QCheck.Test.make ~count:30
    ~name:"sweep fingerprints are job-count invariant"
    QCheck.(pair (int_range 0 1_000_000) (int_range 2 6))
    (fun (seed, jobs) ->
      let net = Dynet.of_static (Gen.clique 8) in
      let reps = 9 in
      let seq = Run.async_spread_sweep ~jobs:1 ~reps (Rng.create seed) net in
      let par = Run.async_spread_sweep ~jobs ~reps (Rng.create seed) net in
      seq.Run.seeds = par.Run.seeds && seq.Run.outcomes = par.Run.outcomes)

(* --- adaptive stopping properties --- *)

let prop_adaptive_ci_never_wider =
  (* Whenever the adaptive sweep reports Converged, the CI half-width
     it reports is at or below the requested target — the whole point
     of sequential stopping; a wider report would be a lie. *)
  QCheck.Test.make ~count:25 ~name:"adaptive converged CI never wider"
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 20))
    (fun (seed, w10) ->
      let target = 0.05 *. float_of_int w10 in
      let config =
        Adaptive.config ~min_reps:8 ~max_reps:96 ~chunk:8
          (Adaptive.Abs target)
      in
      let net = Dynet.of_static (Gen.clique 24) in
      let a = Run.async_spread_sweep_adaptive ~config (Rng.create seed) net in
      match a.Run.reason with
      | Adaptive.Converged ->
        a.Run.half_width <= target && a.Run.consumed <= 96
      | Adaptive.Budget ->
        (* budget exhaustion must consume exactly the budget *)
        a.Run.consumed = 96)

let prop_adaptive_prefix_bit_identical =
  (* For any seed, any job count and either width regime, the decided
     prefix equals (byte-for-byte) the same prefix of a fixed-count
     sweep at the full budget — so checkpoints, the serve store and
     WAL replay remain valid across the two modes. *)
  QCheck.Test.make ~count:20 ~name:"adaptive prefix bit-identical at any jobs"
    QCheck.(triple (int_range 0 1_000_000) (int_range 1 6) bool)
    (fun (seed, jobs, rel) ->
      let width = if rel then Adaptive.Rel 0.2 else Adaptive.Abs 0.3 in
      let config =
        Adaptive.config ~min_reps:8 ~max_reps:48 ~chunk:8 width
      in
      let net = Dynet.of_static (Gen.cycle 12) in
      let a =
        Run.async_spread_sweep_adaptive ~jobs ~config (Rng.create seed) net
      in
      let fixed =
        Run.async_spread_sweep ~jobs:1 ~reps:48 (Rng.create seed) net
      in
      let k = a.Run.consumed in
      k >= 8 && k <= 48
      && a.Run.sweep.Run.outcomes = Array.sub fixed.Run.outcomes 0 k
      && a.Run.sweep.Run.seeds = Array.sub fixed.Run.seeds 0 k)

let () =
  Alcotest.run "fuzz"
    [
      ("cross-family", [ Alcotest.test_case "300 random runs" `Slow test_fuzz ]);
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_sweep_fingerprints_job_invariant ] );
      ( "adaptive",
        [
          QCheck_alcotest.to_alcotest prop_adaptive_ci_never_wider;
          QCheck_alcotest.to_alcotest prop_adaptive_prefix_bit_identical;
        ] );
    ]
