(* Tests for the exact eigensolver, graph6 serialization, and random
   walks — the second wave of substrate. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt6 = Alcotest.float 1e-6
let flt3 = Alcotest.float 1e-3

(* --- Jacobi eigensolver --- *)

let test_jacobi_2x2 () =
  (* [[2, 1], [1, 2]] has eigenvalues 1 and 3. *)
  let eig = Eigen.jacobi [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  check flt6 "lambda_1" 1. eig.(0);
  check flt6 "lambda_2" 3. eig.(1)

let test_jacobi_diagonal () =
  let eig = Eigen.jacobi [| [| 5.; 0. |]; [| 0.; -2. |] |] in
  check flt6 "sorted" (-2.) eig.(0);
  check flt6 "sorted hi" 5. eig.(1)

let test_jacobi_rejects () =
  Alcotest.check_raises "asymmetric" (Invalid_argument "Eigen.jacobi: asymmetric matrix")
    (fun () -> ignore (Eigen.jacobi [| [| 1.; 2. |]; [| 3.; 1. |] |]));
  Alcotest.check_raises "empty" (Invalid_argument "Eigen.jacobi: empty matrix")
    (fun () -> ignore (Eigen.jacobi [||]))

let test_jacobi_trace_invariant () =
  let rng = Rng.create 1 in
  for _ = 1 to 10 do
    let n = 6 in
    let a = Array.make_matrix n n 0. in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        let v = Rng.float rng -. 0.5 in
        a.(i).(j) <- v;
        a.(j).(i) <- v
      done
    done;
    let trace = ref 0. in
    for i = 0 to n - 1 do
      trace := !trace +. a.(i).(i)
    done;
    let eig = Eigen.jacobi a in
    let sum = Array.fold_left ( +. ) 0. eig in
    check flt6 "eigenvalue sum = trace" !trace sum
  done

(* --- known graph spectra --- *)

let test_spectrum_complete_graph () =
  (* K_n normalized adjacency: 1 once, -1/(n-1) with multiplicity n-1. *)
  let n = 7 in
  let eig = Eigen.normalized_adjacency_spectrum (Gen.clique n) in
  check flt6 "top" 1. eig.(n - 1);
  for i = 0 to n - 2 do
    check flt6 "bulk" (-1. /. float_of_int (n - 1)) eig.(i)
  done

let test_spectrum_cycle () =
  (* C_n: eigenvalues cos(2 pi k / n). *)
  let n = 8 in
  let eig = Eigen.normalized_adjacency_spectrum (Gen.cycle n) in
  let expected =
    Array.init n (fun k -> cos (2. *. Float.pi *. float_of_int k /. float_of_int n))
  in
  Array.sort compare expected;
  Array.iteri (fun i e -> check flt6 "cycle eigenvalue" expected.(i) e) eig

let test_spectrum_complete_bipartite () =
  (* K_{a,b} normalized adjacency: +-1 and 0s. *)
  let eig = Eigen.normalized_adjacency_spectrum (Gen.complete_bipartite 3 4) in
  check flt6 "top 1" 1. eig.(6);
  check flt6 "bottom -1" (-1.) eig.(0);
  for i = 1 to 5 do
    check flt6 "zeros" 0. eig.(i)
  done

let test_spectrum_hypercube_gap () =
  (* Q_d: adjacency eigenvalues (d - 2i)/d; lambda_2 = 1 - 2/d, so the
     normalized Laplacian gap is 2/d. *)
  let d = 4 in
  let gap = Eigen.spectral_gap (Gen.hypercube d) in
  check flt6 "hypercube gap 2/d" (2. /. float_of_int d) gap

let test_cheeger_sandwich_exact () =
  List.iter
    (fun g ->
      let lo, hi = Eigen.cheeger_bounds g in
      let phi = Cut.conductance_exact g in
      check bool "lower" true (lo <= phi +. 1e-9);
      check bool "upper" true (hi >= phi -. 1e-9))
    [ Gen.cycle 12; Gen.clique 8; Gen.hypercube 3; Gen.barbell 6; Gen.star 9 ]

let test_eigen_vs_power_iteration () =
  (* The exact gap and the power-iteration estimate agree on the lazy
     walk's lambda_2 (Spectral uses the lazy operator: its gap is half
     the Laplacian gap). *)
  let rng = Rng.create 2 in
  let g = Gen.random_connected_regular rng 40 4 in
  let exact_lazy_gap = Eigen.spectral_gap g /. 2. in
  let est = Spectral.estimate ~iterations:3000 rng g in
  check flt3 "gap agreement" exact_lazy_gap est.Spectral.gap

(* --- graph6 --- *)

let test_graph6_known_encodings () =
  (* K_3 is "Bw" and P_3 (path 0-1-2) is "Bg" per the nauty spec
     examples. *)
  check Alcotest.string "K3" "Bw" (Graph6.encode (Gen.clique 3));
  let p3 = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  check Alcotest.string "P3" "Bg" (Graph6.encode p3);
  check Alcotest.string "K1" "@" (Graph6.encode (Gen.empty 1))

let test_graph6_roundtrip () =
  let rng = Rng.create 3 in
  List.iter
    (fun g ->
      let decoded = Graph6.decode (Graph6.encode g) in
      check bool "roundtrip" true (Graph.equal g decoded))
    [
      Gen.empty 5;
      Gen.clique 10;
      Gen.star 17;
      Gen.cycle 63 (* crosses the 62-node short-header boundary *);
      Gen.cycle 64;
      Gen.erdos_renyi rng 30 0.3;
      Gen.hypercube 5;
    ]

let test_graph6_long_header () =
  let g = Gen.cycle 100 in
  let s = Graph6.encode g in
  check bool "long header" true (s.[0] = '~');
  check bool "roundtrip" true (Graph.equal g (Graph6.decode s))

let test_graph6_prefix_and_whitespace () =
  let g = Gen.clique 4 in
  let s = ">>graph6<<" ^ Graph6.encode g ^ "\n" in
  check bool "prefix accepted" true (Graph.equal g (Graph6.decode s))

let test_graph6_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Graph6.decode: empty input")
    (fun () -> ignore (Graph6.decode ""));
  Alcotest.check_raises "truncated"
    (Invalid_argument "Graph6.decode: truncated adjacency") (fun () ->
      ignore (Graph6.decode "D"))

(* --- random walks --- *)

let test_cover_time_clique_coupon_collector () =
  (* Cover time of K_n is ~ n H_n (coupon collector). *)
  let n = 32 in
  let net = Dynet.of_static (Gen.clique n) in
  let mean = Walk.mean_cover_time ~reps:60 (Rng.create 4) net ~start:0 in
  let harmonic =
    Array.fold_left ( +. ) 0. (Array.init n (fun i -> 1. /. float_of_int (i + 1)))
  in
  let expected = float_of_int (n - 1) *. harmonic in
  check bool "within 25% of n H_n" true
    (abs_float (mean -. expected) < 0.25 *. expected)

let test_cover_time_cycle_quadratic () =
  (* Cover time of C_n is n(n-1)/2 exactly in expectation. *)
  let n = 24 in
  let net = Dynet.of_static (Gen.cycle n) in
  let mean = Walk.mean_cover_time ~reps:80 (Rng.create 5) net ~start:0 in
  let expected = float_of_int (n * (n - 1)) /. 2. in
  check bool "within 25% of n(n-1)/2" true
    (abs_float (mean -. expected) < 0.25 *. expected)

let test_hitting_time_path_end () =
  (* On a path, hitting the far end from the start is n^2-ish; just
     check completion and sanity. *)
  let net = Dynet.of_static (Gen.path 10) in
  let r = Walk.hitting_time (Rng.create 6) net ~start:0 ~target:9 in
  check bool "complete" true r.Walk.complete;
  check bool "at least distance" true (r.Walk.steps >= 9)

let test_walk_bounds_checks () =
  let net = Dynet.of_static (Gen.cycle 5) in
  Alcotest.check_raises "bad start" (Invalid_argument "Walk: start out of range")
    (fun () -> ignore (Walk.cover_time (Rng.create 7) net ~start:9));
  Alcotest.check_raises "bad laziness"
    (Invalid_argument "Walk: laziness must lie in [0, 1)") (fun () ->
      ignore (Walk.cover_time ~laziness:1.0 (Rng.create 7) net ~start:0))

let test_walk_max_steps () =
  (* Disconnected: can never cover. *)
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let net = Dynet.of_static g in
  let r = Walk.cover_time ~max_steps:100 (Rng.create 8) net ~start:0 in
  check bool "incomplete" false r.Walk.complete;
  check int "capped" 100 r.Walk.steps;
  check int "visited only component" 2 r.Walk.visited

let test_walk_on_dynamic () =
  (* On the re-centering star the walker still covers: every node is
     adjacent to the centre each step. *)
  let net = Dichotomy.g2 ~n:12 in
  let r = Walk.cover_time ~max_steps:100_000 (Rng.create 9) net ~start:0 in
  check bool "covers the dynamic star" true r.Walk.complete

let test_lazy_walk_slower () =
  let net = Dynet.of_static (Gen.cycle 16) in
  let fast = Walk.mean_cover_time ~reps:200 (Rng.create 10) net ~start:0 in
  let lazy_ =
    Walk.mean_cover_time ~reps:200 ~laziness:0.5 (Rng.create 11) net ~start:0
  in
  check bool "laziness roughly doubles cover time" true
    (lazy_ > 1.5 *. fast && lazy_ < 2.7 *. fast)

let () =
  Alcotest.run "spectral_walk"
    [
      ( "jacobi",
        [
          Alcotest.test_case "2x2" `Quick test_jacobi_2x2;
          Alcotest.test_case "diagonal" `Quick test_jacobi_diagonal;
          Alcotest.test_case "rejects" `Quick test_jacobi_rejects;
          Alcotest.test_case "trace invariant" `Quick test_jacobi_trace_invariant;
        ] );
      ( "known spectra",
        [
          Alcotest.test_case "complete graph" `Quick test_spectrum_complete_graph;
          Alcotest.test_case "cycle" `Quick test_spectrum_cycle;
          Alcotest.test_case "complete bipartite" `Quick
            test_spectrum_complete_bipartite;
          Alcotest.test_case "hypercube gap" `Quick test_spectrum_hypercube_gap;
          Alcotest.test_case "cheeger sandwich (exact)" `Quick
            test_cheeger_sandwich_exact;
          Alcotest.test_case "eigen vs power iteration" `Quick
            test_eigen_vs_power_iteration;
        ] );
      ( "graph6",
        [
          Alcotest.test_case "known encodings" `Quick test_graph6_known_encodings;
          Alcotest.test_case "roundtrip" `Quick test_graph6_roundtrip;
          Alcotest.test_case "long header" `Quick test_graph6_long_header;
          Alcotest.test_case "prefix/whitespace" `Quick
            test_graph6_prefix_and_whitespace;
          Alcotest.test_case "rejects malformed" `Quick test_graph6_rejects;
        ] );
      ( "random walks",
        [
          Alcotest.test_case "clique cover = coupon collector" `Slow
            test_cover_time_clique_coupon_collector;
          Alcotest.test_case "cycle cover quadratic" `Slow
            test_cover_time_cycle_quadratic;
          Alcotest.test_case "hitting time on path" `Quick test_hitting_time_path_end;
          Alcotest.test_case "bounds checks" `Quick test_walk_bounds_checks;
          Alcotest.test_case "max steps cap" `Quick test_walk_max_steps;
          Alcotest.test_case "dynamic star cover" `Quick test_walk_on_dynamic;
          Alcotest.test_case "lazy walk slower" `Slow test_lazy_walk_slower;
        ] );
    ]
