(* Tests for the extension surface: new generators (small-world,
   preferential attachment, geometric, wheel), dynamic-network
   combinators, trace analysis, and the protocol-generalized cut
   engine. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let empty_informed n = Bitset.create n

(* --- new generators --- *)

let test_wheel () =
  let g = Gen.wheel 8 in
  check int "hub degree" 7 (Graph.degree g 0);
  for u = 1 to 7 do
    check int "rim degree" 3 (Graph.degree g u)
  done;
  check int "m" 14 (Graph.m g);
  check bool "connected" true (Traverse.is_connected g)

let test_watts_strogatz_structure () =
  let rng = Rng.create 1 in
  (* beta = 0: the pure ring lattice, 2k-regular. *)
  let lattice = Gen.watts_strogatz rng 40 3 0. in
  check bool "beta 0 regular" true
    (Graph.is_regular lattice && Graph.max_degree lattice = 6);
  check bool "lattice equals circulant" true
    (Graph.equal lattice (Gen.circulant 40 [ 1; 2; 3 ]));
  (* beta = 1: fully rewired, edge count preserved. *)
  let rewired = Gen.watts_strogatz rng 40 3 1. in
  check int "edge count preserved" (40 * 3) (Graph.m rewired);
  check bool "no longer the lattice" false (Graph.equal rewired lattice)

let test_watts_strogatz_small_world () =
  (* Moderate rewiring shrinks the diameter well below the lattice's. *)
  let rng = Rng.create 2 in
  let lattice = Gen.watts_strogatz rng 100 2 0. in
  let small = Gen.watts_strogatz rng 100 2 0.3 in
  if Traverse.is_connected small then
    check bool "diameter shrinks" true
      (Traverse.diameter small < Traverse.diameter lattice)

let test_watts_strogatz_rejects () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "k too large"
    (Invalid_argument "Gen.watts_strogatz: need 1 <= k <= (n-1)/2") (fun () ->
      ignore (Gen.watts_strogatz rng 10 5 0.1))

let test_barabasi_albert () =
  let rng = Rng.create 4 in
  let n = 200 and m = 3 in
  let g = Gen.barabasi_albert rng n m in
  check int "n" n (Graph.n g);
  (* Edge count: seed clique + m per arrival. *)
  check int "m edges" ((m * (m + 1) / 2) + (m * (n - m - 1))) (Graph.m g);
  check bool "connected" true (Traverse.is_connected g);
  check bool "min degree >= m" true (Graph.min_degree g >= m);
  (* Heavy tail: the maximum degree should far exceed the mean. *)
  check bool "hub emerges" true
    (float_of_int (Graph.max_degree g) > 3. *. Metrics.mean_degree g)

let test_barabasi_albert_rejects () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "m >= n"
    (Invalid_argument "Gen.barabasi_albert: need 1 <= m < n") (fun () ->
      ignore (Gen.barabasi_albert rng 3 3))

let test_random_geometric () =
  let rng = Rng.create 6 in
  let g0 = Gen.random_geometric_torus rng 50 0. in
  check int "radius 0 -> empty" 0 (Graph.m g0);
  let gfull = Gen.random_geometric_torus rng 20 1.0 in
  check int "radius >= diag -> complete" (20 * 19 / 2) (Graph.m gfull);
  (* Monotone in radius (same points impossible across calls, so test
     expected density ordering statistically). *)
  let dense = Gen.random_geometric_torus rng 100 0.2 in
  let sparse = Gen.random_geometric_torus rng 100 0.05 in
  check bool "denser with bigger radius" true (Graph.m dense > Graph.m sparse)

(* --- combinators --- *)

let test_intermittent_exposure () =
  let base = Dynet.of_static ~name:"cycle" (Gen.cycle 10) in
  let net = Combinators.intermittent ~every:3 base in
  let inst = net.Dynet.spawn (Rng.create 7) in
  let informed = empty_informed 10 in
  let g0 = (Dynet.next inst ~informed).Dynet.graph in
  let g1 = (Dynet.next inst ~informed).Dynet.graph in
  let g2 = (Dynet.next inst ~informed).Dynet.graph in
  let g3 = (Dynet.next inst ~informed).Dynet.graph in
  check int "step 0 exposed" 10 (Graph.m g0);
  check int "step 1 blank" 0 (Graph.m g1);
  check int "step 2 blank" 0 (Graph.m g2);
  check int "step 3 exposed" 10 (Graph.m g3)

let test_intermittent_spread_scaling () =
  let base = Dynet.of_static ~name:"clique" (Gen.clique 64) in
  let rng = Rng.create 8 in
  let mean net =
    let mc = Run.async_spread_times ~reps:30 rng net in
    Descriptive.mean mc.Run.times
  in
  let m1 = mean base in
  let m4 = mean (Combinators.intermittent ~every:4 base) in
  check bool "roughly 4x slower" true (m4 > 2.2 *. m1 && m4 < 7. *. m1)

let test_dropout_degrades_gracefully () =
  let base = Dynet.of_static (Gen.clique 32) in
  let none = Combinators.with_edge_dropout ~p:0. base in
  let inst = none.Dynet.spawn (Rng.create 9) in
  let g = (Dynet.next inst ~informed:(empty_informed 32)).Dynet.graph in
  check int "p = 0 keeps all edges" (32 * 31 / 2) (Graph.m g);
  let all = Combinators.with_edge_dropout ~p:1. base in
  let inst2 = all.Dynet.spawn (Rng.create 9) in
  let g2 = (Dynet.next inst2 ~informed:(empty_informed 32)).Dynet.graph in
  check int "p = 1 drops all edges" 0 (Graph.m g2);
  (* Statistical middle ground. *)
  let half = Combinators.with_edge_dropout ~p:0.5 base in
  let inst3 = half.Dynet.spawn (Rng.create 10) in
  let g3 = (Dynet.next inst3 ~informed:(empty_informed 32)).Dynet.graph in
  let expected = float_of_int (32 * 31 / 2) *. 0.5 in
  check bool "p = 0.5 near half" true
    (abs_float (float_of_int (Graph.m g3) -. expected) < 5. *. sqrt expected)

let test_dropout_spread_still_completes () =
  let base = Dynet.of_static (Gen.clique 48) in
  let net = Combinators.with_edge_dropout ~p:0.7 base in
  let r = Async_cut.run ~horizon:1e4 (Rng.create 11) net ~source:0 in
  check bool "completes under dropout" true r.Async_result.complete

let test_interleave () =
  let a = Dynet.of_static ~name:"cycle" (Gen.cycle 8) in
  let b = Dynet.of_static ~name:"clique" (Gen.clique 8) in
  let net = Combinators.interleave [ a; b ] in
  let inst = net.Dynet.spawn (Rng.create 12) in
  let informed = empty_informed 8 in
  check int "step 0 from a" 8 (Graph.m (Dynet.next inst ~informed).Dynet.graph);
  check int "step 1 from b" 28 (Graph.m (Dynet.next inst ~informed).Dynet.graph);
  check int "step 2 from a" 8 (Graph.m (Dynet.next inst ~informed).Dynet.graph);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Combinators.interleave: node-count mismatch") (fun () ->
      ignore (Combinators.interleave [ a; Dynet.of_static (Gen.cycle 9) ]))

let test_map_graph () =
  let base = Dynet.of_static (Gen.cycle 8) in
  (* Surgery: add a chord at each step. *)
  let net =
    Combinators.map_graph
      (fun ~step:_ g ->
        let b = Builder.create (Graph.n g) in
        Graph.iter_edges (fun u v -> Builder.add_edge_exn b u v) g;
        ignore (Builder.add_edge b 0 4);
        Builder.freeze b)
      base
  in
  let inst = net.Dynet.spawn (Rng.create 13) in
  let g = (Dynet.next inst ~informed:(empty_informed 8)).Dynet.graph in
  check int "chord added" 9 (Graph.m g);
  check bool "chord present" true (Graph.has_edge g 0 4)


let test_node_outage_statistics () =
  let base = Dynet.of_static (Gen.clique 40) in
  let none = Combinators.with_node_outage ~p:0. base in
  let inst = none.Dynet.spawn (Rng.create 50) in
  let g = (Dynet.next inst ~informed:(empty_informed 40)).Dynet.graph in
  check int "p = 0 keeps all edges" (40 * 39 / 2) (Graph.m g);
  let all = Combinators.with_node_outage ~p:1. base in
  let inst2 = all.Dynet.spawn (Rng.create 50) in
  let g2 = (Dynet.next inst2 ~informed:(empty_informed 40)).Dynet.graph in
  check int "p = 1 drops everything" 0 (Graph.m g2);
  (* p = 0.5: surviving edges need both endpoints online: ~1/4. *)
  let half = Combinators.with_node_outage ~p:0.5 base in
  let inst3 = half.Dynet.spawn (Rng.create 51) in
  let m3 = Graph.m (Dynet.next inst3 ~informed:(empty_informed 40)).Dynet.graph in
  let expected = float_of_int (40 * 39 / 2) /. 4. in
  check bool "p = 0.5 ~ quarter of edges" true
    (abs_float (float_of_int m3 -. expected) < 6. *. sqrt expected)

let test_node_outage_spread_completes () =
  (* Even heavy churn only delays the spread (offline nodes keep the
     rumor). *)
  let base = Dynet.of_static (Gen.clique 48) in
  let net = Combinators.with_node_outage ~p:0.6 base in
  let r = Async_cut.run ~horizon:1e4 (Rng.create 52) net ~source:0 in
  check bool "completes under outages" true r.Async_result.complete

(* --- trace analysis --- *)

let run_traced n =
  let net = Dynet.of_static (Gen.clique n) in
  let r = Async_cut.run ~record_trace:true (Rng.create 14) net ~source:0 in
  r.Async_result.trace

let test_trace_validate () =
  let tr = run_traced 32 in
  Trace.validate tr ~n:32;
  Alcotest.check_raises "empty" (Invalid_argument "Trace.validate: empty trajectory")
    (fun () -> Trace.validate [||] ~n:5);
  Alcotest.check_raises "non-monotone"
    (Invalid_argument "Trace.validate: count not increasing") (fun () ->
      Trace.validate [| (0., 1); (1., 1) |] ~n:5)

let test_trace_time_to () =
  let tr = [| (0., 1); (1.5, 2); (2.0, 3); (4.0, 4) |] in
  check (Alcotest.option (Alcotest.float 1e-9)) "count 3" (Some 2.0)
    (Trace.time_to_count tr 3);
  check (Alcotest.option (Alcotest.float 1e-9)) "count 5 missing" None
    (Trace.time_to_count tr 5);
  check (Alcotest.option (Alcotest.float 1e-9)) "fraction 1.0" (Some 4.0)
    (Trace.time_to_fraction tr ~n:4 1.0);
  check (Alcotest.option (Alcotest.float 1e-9)) "fraction 0.5" (Some 1.5)
    (Trace.time_to_fraction tr ~n:4 0.5);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Trace.time_to_fraction: frac outside (0, 1]") (fun () ->
      ignore (Trace.time_to_fraction tr ~n:4 0.))

let test_trace_phases_bounded () =
  (* Lemma 3.1 structure: O(log n) phases on complete runs. *)
  List.iter
    (fun n ->
      let tr = run_traced n in
      let phases = Trace.doubling_phases tr ~n in
      check bool
        (Printf.sprintf "phase count bounded at n = %d" n)
        true
        (List.length phases <= Trace.phase_count_bound ~n);
      check bool "phases positive" true (List.for_all (fun d -> d >= 0.) phases))
    [ 16; 64; 256 ]

let test_trace_phases_grow_logarithmically () =
  let count n = List.length (Trace.doubling_phases (run_traced n) ~n) in
  let c16 = count 16 and c256 = count 256 in
  (* 16x nodes adds only ~ log-many phases. *)
  check bool "log growth" true (c256 - c16 <= 12 && c256 > c16)

(* --- protocol-generalized cut engine --- *)

let test_cut_protocols_on_k2 () =
  (* On K2: push-pull rate 2, push rate 1, pull rate 1 -> means 0.5 /
     1.0 / 1.0. *)
  let net = Dynet.of_static (Gen.clique 2) in
  let rng = Rng.create 15 in
  let mean protocol =
    let xs =
      Array.init 3000 (fun _ ->
          (Async_cut.run ~protocol (Rng.split rng) net ~source:0)
            .Async_result.time)
    in
    Descriptive.mean xs
  in
  check bool "push-pull ~ 0.5" true (abs_float (mean Protocol.Push_pull -. 0.5) < 0.04);
  check bool "push ~ 1.0" true (abs_float (mean Protocol.Push -. 1.0) < 0.07);
  check bool "pull ~ 1.0" true (abs_float (mean Protocol.Pull -. 1.0) < 0.07)

let test_cut_rate_scaling () =
  (* Doubling every clock halves the spread time exactly in
     distribution. *)
  let net = Dynet.of_static (Gen.clique 16) in
  let rng = Rng.create 16 in
  let mean rate =
    let xs =
      Array.init 1500 (fun _ ->
          (Async_cut.run ~rate (Rng.split rng) net ~source:0).Async_result.time)
    in
    Descriptive.mean xs
  in
  let m1 = mean 1.0 and m2 = mean 2.0 in
  check bool "rate 2 halves time" true (abs_float ((m1 /. m2) -. 2.) < 0.25)

let test_cut_push_agrees_with_tick_push () =
  let net = Dynet.of_static (Gen.star 10) in
  let rng = Rng.create 17 in
  let sample engine =
    let xs =
      Array.init 500 (fun _ ->
          let child = Rng.split rng in
          match engine with
          | `Cut ->
            (Async_cut.run ~protocol:Protocol.Push child net ~source:0)
              .Async_result.time
          | `Tick ->
            (Async_tick.run ~protocol:Protocol.Push child net ~source:0)
              .Async_result.time)
    in
    (Descriptive.mean xs, Descriptive.std_error xs)
  in
  let mc, sc = sample `Cut and mt, st = sample `Tick in
  check bool "push engines agree on star" true
    (abs_float (mc -. mt) < 5. *. sqrt ((sc *. sc) +. (st *. st)))


(* --- export --- *)

let test_dot_output () =
  let g = Gen.path 3 in
  let informed = Bitset.of_list 3 [ 0 ] in
  let dot = Export.to_dot ~name:"P3" ~highlight:informed g in
  check bool "has graph header" true
    (String.length dot > 10 && String.sub dot 0 8 = "graph P3");
  check bool "edge present" true
    (let re = "n0 -- n1" in
     let rec find i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || find (i + 1))
     in
     find 0);
  check bool "highlight styled" true
    (let re = "fillcolor" in
     let rec find i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || find (i + 1))
     in
     find 0);
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Export.to_dot: highlight capacity mismatch") (fun () ->
      ignore (Export.to_dot ~highlight:(Bitset.create 5) g))

let test_csv_output () =
  let csv =
    Export.csv_of_rows ~header:[ "a"; "b" ]
      [ [ "1"; "plain" ]; [ "2"; "with,comma" ]; [ "3"; "with\"quote" ] ]
  in
  let lines = String.split_on_char '\n' csv in
  check Alcotest.string "header" "a,b" (List.nth lines 0);
  check Alcotest.string "plain" "1,plain" (List.nth lines 1);
  check Alcotest.string "comma quoted" "2,\"with,comma\"" (List.nth lines 2);
  check Alcotest.string "quote doubled" "3,\"with\"\"quote\"" (List.nth lines 3);
  Alcotest.check_raises "arity"
    (Invalid_argument "Export.csv_of_rows: row arity mismatch") (fun () ->
      ignore (Export.csv_of_rows ~header:[ "a" ] [ [ "1"; "2" ] ]))

(* --- Lemma 4.2 coupling --- *)

let mk_clusters k delta =
  Array.init (k + 1) (fun ci -> Array.init delta (fun ii -> (ci * delta) + ii))

let test_coupling_outcomes_consistent () =
  let clusters = mk_clusters 4 3 in
  let rng = Rng.create 20 in
  for _ = 1 to 50 do
    let o = Coupling.two_push (Rng.split rng) ~clusters ~horizon:1.0 in
    check bool "last <= total" true
      (o.Coupling.informed_last <= o.Coupling.informed_total);
    check bool "S0 stays informed" true (o.Coupling.informed_total >= 3);
    check bool "reached consistent" true
      (o.Coupling.reached_last = (o.Coupling.informed_last > 0))
  done

let test_coupling_inequality () =
  (* Claim 4.3: Pr[2-push reaches S_k] <= Pr[forward reaches S_k]. *)
  let clusters = mk_clusters 3 4 in
  let rng = Rng.create 21 in
  let reps = 2000 in
  let p f =
    let hits = ref 0 in
    for _ = 1 to reps do
      if (f (Rng.split rng) ~clusters ~horizon:1.0).Coupling.reached_last then
        incr hits
    done;
    float_of_int !hits /. float_of_int reps
  in
  let p2 = p Coupling.two_push in
  let pf = p Coupling.forward_two_push in
  check bool "coupling direction" true (p2 <= pf +. (4. /. sqrt (float_of_int reps)))

let test_factorial_bound_holds () =
  let k = 5 and delta = 3 in
  let clusters = mk_clusters k delta in
  let rng = Rng.create 22 in
  let reps = 2000 in
  let sum = ref 0 in
  for _ = 1 to reps do
    sum :=
      !sum
      + (Coupling.forward_two_push (Rng.split rng) ~clusters ~horizon:1.0)
          .Coupling.informed_last
  done;
  let mean = float_of_int !sum /. float_of_int reps in
  check bool "E[I(1,k)] <= (2^k/k!) Delta" true
    (mean <= Coupling.factorial_bound ~k ~delta +. 0.05);
  check (Alcotest.float 1e-9) "bound value" (32. /. 120. *. 3.)
    (Coupling.factorial_bound ~k ~delta)

let test_coupling_validation () =
  let rng = Rng.create 23 in
  Alcotest.check_raises "one cluster"
    (Invalid_argument "Coupling: need at least 2 clusters") (fun () ->
      ignore (Coupling.two_push rng ~clusters:(mk_clusters 0 3) ~horizon:1.0));
  Alcotest.check_raises "ragged" (Invalid_argument "Coupling: ragged cluster sizes")
    (fun () ->
      ignore
        (Coupling.two_push rng ~clusters:[| [| 0; 1 |]; [| 2 |] |] ~horizon:1.0))


(* --- estimate --- *)

let test_estimate_whp_quantile () =
  check (Alcotest.float 1e-9) "n = 100" 0.99 (Estimate.whp_quantile ~n:100);
  check (Alcotest.float 1e-9) "clamped" 0.999 (Estimate.whp_quantile ~n:100_000);
  check (Alcotest.float 1e-9) "tiny n" 0.5 (Estimate.whp_quantile ~n:1)

let test_estimate_spread_time () =
  let net = Dynet.of_static (Gen.clique 64) in
  let e = Estimate.spread_time ~reps:100 (Rng.create 30) net in
  check bool "CI brackets point" true
    (e.Estimate.ci_low <= e.Estimate.point && e.Estimate.point <= e.Estimate.ci_high);
  check int "all complete" 100 e.Estimate.completed;
  check bool "point above median" true
    (e.Estimate.point >= Quantile.median e.Estimate.samples);
  check bool "plausible scale" true
    (e.Estimate.point > 2. && e.Estimate.point < 30.)


(* --- parallel runner --- *)

let test_parallel_matches_sequential () =
  let net = Dynet.of_static (Gen.clique 32) in
  let seq = Run.async_spread_times ~jobs:1 ~reps:16 (Rng.create 40) net in
  let par = Run.async_spread_times ~jobs:3 ~reps:16 (Rng.create 40) net in
  check int "completed equal" seq.Run.completed par.Run.completed;
  for i = 0 to 15 do
    check (Alcotest.float 1e-12) "identical samples" seq.Run.times.(i)
      par.Run.times.(i)
  done

let test_parallel_single_domain () =
  let net = Dynet.of_static (Gen.cycle 12) in
  let a = Run.async_spread_times ~jobs:1 ~reps:5 (Rng.create 41) net in
  check int "reps" 5 a.Run.reps;
  check int "all complete" 5 a.Run.completed

let test_parallel_adaptive_family () =
  (* Adaptive families spawn per-rep instances: safe across domains. *)
  let net = Dichotomy.g2 ~n:24 in
  let seq = Run.async_spread_times ~jobs:1 ~reps:8 (Rng.create 42) net in
  let par = Run.async_spread_times ~jobs:4 ~reps:8 (Rng.create 42) net in
  for i = 0 to 7 do
    check (Alcotest.float 1e-12) "identical on adaptive" seq.Run.times.(i)
      par.Run.times.(i)
  done

let () =
  Alcotest.run "extensions"
    [
      ( "generators",
        [
          Alcotest.test_case "wheel" `Quick test_wheel;
          Alcotest.test_case "watts-strogatz structure" `Quick
            test_watts_strogatz_structure;
          Alcotest.test_case "watts-strogatz small world" `Quick
            test_watts_strogatz_small_world;
          Alcotest.test_case "watts-strogatz rejects" `Quick
            test_watts_strogatz_rejects;
          Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
          Alcotest.test_case "barabasi-albert rejects" `Quick
            test_barabasi_albert_rejects;
          Alcotest.test_case "random geometric" `Quick test_random_geometric;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "intermittent exposure" `Quick test_intermittent_exposure;
          Alcotest.test_case "intermittent spread scaling" `Slow
            test_intermittent_spread_scaling;
          Alcotest.test_case "dropout edge statistics" `Quick
            test_dropout_degrades_gracefully;
          Alcotest.test_case "dropout still completes" `Quick
            test_dropout_spread_still_completes;
          Alcotest.test_case "interleave" `Quick test_interleave;
          Alcotest.test_case "map_graph" `Quick test_map_graph;
          Alcotest.test_case "node outage statistics" `Quick
            test_node_outage_statistics;
          Alcotest.test_case "node outage completes" `Quick
            test_node_outage_spread_completes;
        ] );
      ( "trace",
        [
          Alcotest.test_case "validate" `Quick test_trace_validate;
          Alcotest.test_case "time_to" `Quick test_trace_time_to;
          Alcotest.test_case "phases bounded" `Quick test_trace_phases_bounded;
          Alcotest.test_case "phases grow logarithmically" `Quick
            test_trace_phases_grow_logarithmically;
        ] );
      ( "cut engine protocols",
        [
          Alcotest.test_case "K2 rates" `Slow test_cut_protocols_on_k2;
          Alcotest.test_case "rate scaling" `Slow test_cut_rate_scaling;
          Alcotest.test_case "push agrees with tick" `Slow
            test_cut_push_agrees_with_tick_push;
        ] );
          ( "export",
        [
          Alcotest.test_case "dot" `Quick test_dot_output;
          Alcotest.test_case "csv" `Quick test_csv_output;
        ] );
      ( "coupling",
        [
          Alcotest.test_case "outcomes consistent" `Quick
            test_coupling_outcomes_consistent;
          Alcotest.test_case "claim 4.3 inequality" `Slow test_coupling_inequality;
          Alcotest.test_case "factorial bound" `Slow test_factorial_bound_holds;
          Alcotest.test_case "validation" `Quick test_coupling_validation;
        ] );
          ( "estimate",
        [
          Alcotest.test_case "whp quantile" `Quick test_estimate_whp_quantile;
          Alcotest.test_case "spread time CI" `Slow test_estimate_spread_time;
        ] );
          ( "parallel runner",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "single domain" `Quick test_parallel_single_domain;
          Alcotest.test_case "adaptive family" `Quick test_parallel_adaptive_family;
        ] );
    ]
