(* Tests for degree-sequence realization: Erdős–Gallai, Havel–Hakimi,
   connectivity repair, swap randomization, and the paper's
   G(A, d1, d2) gadget. *)

open Rumor_core.Rumor

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let degrees g = Array.init (Graph.n g) (Graph.degree g)

let test_erdos_gallai_positive () =
  List.iter
    (fun seq -> check bool "graphical" true (Degree_seq.is_graphical (Array.of_list seq)))
    [
      [ 0 ];
      [ 1; 1 ];
      [ 2; 2; 2 ];
      [ 3; 3; 3; 3 ];
      [ 4; 4; 4; 4; 4 ];
      [ 3; 2; 2; 2; 1 ];
      [ 5; 4; 3; 3; 2; 2; 1 ];
    ]

let test_erdos_gallai_negative () =
  List.iter
    (fun seq ->
      check bool "not graphical" false (Degree_seq.is_graphical (Array.of_list seq)))
    [
      [ 1 ] (* odd sum *);
      [ 13; 11; 11; 11 ] (* degrees exceed n-1 *);
      [ 2; 2; 1 ] (* odd sum *);
      [ 4; 4; 4; 1; 1 ] (* fails Erdos-Gallai at k = 3 *);
    ]

let test_havel_hakimi_realizes () =
  List.iter
    (fun seq ->
      let arr = Array.of_list seq in
      let g = Degree_seq.havel_hakimi arr in
      let got = degrees g in
      let want = Array.copy arr in
      Array.sort compare got;
      Array.sort compare want;
      check (Alcotest.array int) "degrees realized" want got)
    [
      [ 1; 1 ];
      [ 2; 2; 2 ];
      [ 3; 3; 2; 2; 2 ];
      [ 4; 4; 4; 4; 4; 4 ];
      [ 6; 4; 4; 4; 4; 2; 2; 2 ];
      [ 1; 1; 1; 1; 2; 2 ];
    ]

let test_havel_hakimi_rejects () =
  Alcotest.check_raises "not graphical"
    (Invalid_argument "Degree_seq.havel_hakimi: sequence is not graphical")
    (fun () -> ignore (Degree_seq.havel_hakimi [| 3; 1 |]))

let test_admits_connected () =
  check bool "cycle degrees" true (Degree_seq.admits_connected [| 2; 2; 2 |]);
  (* Two disjoint edges: graphical but sum < 2(n-1). *)
  check bool "matching cannot connect" false
    (Degree_seq.admits_connected [| 1; 1; 1; 1 |]);
  (* A zero degree can never be connected for n >= 2. *)
  check bool "isolated node" false (Degree_seq.admits_connected [| 0; 2; 2; 2 |])

let test_connect_repairs () =
  (* [2;2;2;2;2;2] realized by Havel-Hakimi can split into two
     triangles; connect must merge them while preserving degrees. *)
  let seq = [| 2; 2; 2; 2; 2; 2 |] in
  let g = Degree_seq.havel_hakimi seq in
  let connected = Degree_seq.connect g in
  check bool "connected" true (Traverse.is_connected connected);
  let got = degrees connected in
  check (Alcotest.array int) "degrees preserved" seq got

let test_connect_rejects_impossible () =
  let g = Degree_seq.havel_hakimi [| 1; 1; 1; 1 |] in
  if not (Traverse.is_connected g) then
    Alcotest.check_raises "impossible"
      (Invalid_argument "Degree_seq.connect: no connected realization exists")
      (fun () -> ignore (Degree_seq.connect g))
  else
    (* Havel-Hakimi happened to produce a connected realization of a
       different instance; the invariant under test is encoded in
       admits_connected, already covered. *)
    ()

let test_randomize_preserves () =
  let rng = Rng.create 41 in
  let g = Gen.random_connected_regular rng 30 4 in
  let r = Degree_seq.randomize ~swaps:200 ~preserve_connectivity:true rng g in
  check bool "still connected" true (Traverse.is_connected r);
  check (Alcotest.array int) "degrees preserved" (degrees g) (degrees r);
  let r2 = Degree_seq.randomize ~swaps:200 rng g in
  check (Alcotest.array int) "degrees preserved unconditionally" (degrees g)
    (degrees r2)

let test_randomize_changes_graph () =
  let rng = Rng.create 42 in
  let g = Gen.circulant 20 [ 1; 2 ] in
  let r = Degree_seq.randomize ~swaps:400 rng g in
  check bool "edge set changed" false (Graph.equal g r)

let test_realize_connected () =
  let rng = Rng.create 43 in
  let seq = [| 6; 4; 4; 4; 4; 4; 2; 2; 2; 2 |] in
  let g = Degree_seq.realize_connected rng seq in
  check bool "connected" true (Traverse.is_connected g);
  let got = degrees g in
  let want = Array.copy seq in
  Array.sort compare got;
  Array.sort compare want;
  check (Alcotest.array int) "degrees" want got

let test_regular_except_one () =
  let rng = Rng.create 44 in
  List.iter
    (fun (n, d, special) ->
      let g = Degree_seq.regular_except_one rng ~n ~d ~special_degree:special in
      check bool "connected" true (Traverse.is_connected g);
      check int "special degree" special (Graph.degree g 0);
      for u = 1 to n - 1 do
        check int "regular degree" d (Graph.degree g u)
      done)
    [ (20, 4, 8); (30, 4, 2); (25, 4, 10) ]

let test_regular_except_one_rejects () =
  let rng = Rng.create 45 in
  Alcotest.check_raises "odd sum"
    (Invalid_argument
       "Degree_seq.regular_except_one: sequence (d=4, special=3, n=10) has \
        no connected realization") (fun () ->
      ignore (Degree_seq.regular_except_one rng ~n:10 ~d:4 ~special_degree:3))

let () =
  Alcotest.run "degree_seq"
    [
      ( "erdos-gallai",
        [
          Alcotest.test_case "graphical sequences" `Quick test_erdos_gallai_positive;
          Alcotest.test_case "non-graphical sequences" `Quick
            test_erdos_gallai_negative;
          Alcotest.test_case "admits connected" `Quick test_admits_connected;
        ] );
      ( "havel-hakimi",
        [
          Alcotest.test_case "realizes" `Quick test_havel_hakimi_realizes;
          Alcotest.test_case "rejects" `Quick test_havel_hakimi_rejects;
        ] );
      ( "repair/randomize",
        [
          Alcotest.test_case "connect repairs" `Quick test_connect_repairs;
          Alcotest.test_case "connect rejects impossible" `Quick
            test_connect_rejects_impossible;
          Alcotest.test_case "randomize preserves" `Quick test_randomize_preserves;
          Alcotest.test_case "randomize changes graph" `Quick
            test_randomize_changes_graph;
          Alcotest.test_case "realize connected" `Quick test_realize_connected;
        ] );
      ( "regular-except-one",
        [
          Alcotest.test_case "realizes G(A, d1, d2)" `Quick test_regular_except_one;
          Alcotest.test_case "rejects" `Quick test_regular_except_one_rejects;
        ] );
    ]
