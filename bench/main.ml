(* Benchmark harness.

   Part 1 regenerates every paper-validation table (experiments E1-E13,
   the ablations A1/A2/O1/B1/R1, F1 and L; DESIGN.md carries the
   per-experiment index): quick sizes
   by default, full sweeps with RUMOR_BENCH_FULL=1, a single experiment
   with RUMOR_BENCH_ONLY=E4, experiments skipped entirely with
   RUMOR_BENCH_SKIP_EXPERIMENTS=1.

   Part 2 runs Bechamel micro-benchmarks of the hot engine paths — one
   Test.make per simulator/substrate operation — so performance
   regressions in the engines are visible independently of the
   statistical output. *)

open Bechamel
module Env = Rumor_util.Env
module Obs = Rumor_obs

let env_flag = Env.flag

let bench_seed () = Env.int ~default:2020 "RUMOR_BENCH_SEED"

let run_experiments () =
  let full = env_flag "RUMOR_BENCH_FULL" in
  let seed = bench_seed () in
  Printf.printf
    "mode: %s, seed %d (RUMOR_BENCH_FULL=1 for full sweeps, RUMOR_BENCH_SEED \
     to vary)\n\n%!"
    (if full then "full" else "quick")
    seed;
  match Sys.getenv_opt "RUMOR_BENCH_ONLY" with
  | Some id -> (
    match Rumor_experiments.Registry.find id with
    | Some e -> Rumor_experiments.Experiment.print ~full ~seed e
    | None ->
      Printf.eprintf "unknown experiment id %S\n" id;
      exit 2)
  | None -> Rumor_experiments.Registry.run_all ~full ~seed ()

(* --- Bechamel micro-benchmarks --- *)

let bench_tests () =
  let open Rumor_core in
  let n = 256 in
  let clique = Rumor.Gen.clique n in
  let clique_net = Rumor.Dynet.of_static clique in
  let regular = Rumor.Gen.random_connected_regular (Rumor.Rng.create 11) n 8 in
  let regular_net = Rumor.Dynet.of_static regular in
  let g2 = Rumor.Dichotomy.g2 ~n in
  let diligent = Rumor.Diligent.network ~n:512 ~rho:0.25 () in
  let counter = ref 0 in
  let fresh_rng () =
    incr counter;
    Rumor.Rng.create (1000 + !counter)
  in
  let test_async_cut name net source =
    Test.make ~name
      (Staged.stage (fun () -> ignore (Rumor.Async_cut.run (fresh_rng ()) net ~source)))
  in
  (* Dynamic-network step throughput: the incremental delta path vs the
     full O(m) rebuild on the same sparse sampler, vs the dense O(n^2)
     sampler with rebuilds (the pre-delta baseline).  Sub-critical
     churn (stationary density ~0.002) keeps the rumor from spreading,
     so these runs are horizon-censored and measure per-step work. *)
  let dyn_horizon = 50. in
  let markov = Rumor.Markovian.network ~n ~p:1e-4 ~q:0.05 () in
  let markov_dense = Rumor.Markovian.network_dense ~n ~p:1e-4 ~q:0.05 () in
  let alternating = Rumor.Alternating.network ~n () in
  let test_dyn name ?use_deltas net =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore
             (Rumor.Async_cut.run ?use_deltas ~horizon:dyn_horizon (fresh_rng ())
                net ~source:0)))
  in
  [
    (* E1/E3/E10 workhorse: static spread on dense and sparse graphs. *)
    test_async_cut "async-cut/clique-256" clique_net 0;
    test_async_cut "async-cut/regular8-256" regular_net 0;
    Test.make ~name:"async-tick/clique-256"
      (Staged.stage (fun () ->
           ignore (Rumor.Async_tick.run (fresh_rng ()) clique_net ~source:0)));
    Test.make ~name:"sync/clique-256"
      (Staged.stage (fun () ->
           ignore (Rumor.Sync.run (fresh_rng ()) clique_net ~source:0)));
    (* E7/E8 workhorse: the adaptive star. *)
    test_async_cut "async-cut/G2-star-256" g2 0;
    (* E2 workhorse: the adaptive diligent family (graph rebuilds on the
       hot path). *)
    test_async_cut "async-cut/diligent-512" diligent 0;
    (* E13 workhorse: the faulty cut path — loss rejection + churn
       bookkeeping per event.  Compare with async-cut/clique-256 for the
       fault-machinery overhead. *)
    Test.make ~name:"async-cut/clique-256-faulty"
      (let faults =
         Rumor.Fault_plan.make ~loss:0.25 ~churn:{ crash = 0.02; recover = 0.3 }
           ()
       in
       Staged.stage (fun () ->
           ignore (Rumor.Async_cut.run ~faults (fresh_rng ()) clique_net ~source:0)));
    (* Substrates: generators, spectral sweep, weighted sampling. *)
    Test.make ~name:"gen/random-regular-8-256"
      (Staged.stage (fun () -> ignore (Rumor.Gen.random_regular (fresh_rng ()) n 8)));
    Test.make ~name:"spectral/sweep-regular8-256"
      (Staged.stage (fun () ->
           ignore
             (Rumor.Spectral.conductance_sweep ~iterations:100 (fresh_rng ()) regular)));
    Test.make ~name:"eigen/jacobi-normalized-64"
      (let g64 = Rumor.Gen.random_connected_regular (Rumor.Rng.create 13) 64 4 in
       Staged.stage (fun () ->
           ignore (Rumor.Eigen.normalized_adjacency_spectrum g64)));
    Test.make ~name:"walk/cover-clique-128"
      (let net = Rumor.Dynet.of_static (Rumor.Gen.clique 128) in
       Staged.stage (fun () ->
           ignore (Rumor.Walk.cover_time (fresh_rng ()) net ~start:0)));
    Test.make ~name:"graph6/roundtrip-regular8-256"
      (Staged.stage (fun () ->
           ignore (Rumor.Graph6.decode (Rumor.Graph6.encode regular))));
    Test.make ~name:"fenwick/fill+64-samples-4096"
      (let weights = Array.init 4096 (fun i -> float_of_int (i mod 17) +. 1.) in
       let fw = Rumor.Fenwick.create 4096 in
       let rng = Rumor.Rng.create 3 in
       Staged.stage (fun () ->
           Rumor.Fenwick.fill_from fw weights;
           for _ = 1 to 64 do
             ignore
               (Rumor.Fenwick.find fw (Rumor.Rng.float rng *. Rumor.Fenwick.total fw))
           done));
    test_dyn "dyn/markovian-256-delta" markov;
    test_dyn "dyn/markovian-256-rebuild" ~use_deltas:false markov;
    test_dyn "dyn/markovian-256-seed" ~use_deltas:false markov_dense;
    (* Alternating flips between a cubic graph and the clique, so its
       deltas are Theta(m) and the engine falls back to rebuilding:
       these two entries should track each other (the no-win case). *)
    test_dyn "dyn/alternating-256-delta" alternating;
    test_dyn "dyn/alternating-256-rebuild" ~use_deltas:false alternating;
  ]

let run_benchmarks () =
  print_endline "=== Bechamel micro-benchmarks (engine hot paths) ===";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let test = Test.make_grouped ~name:"rumor" (bench_tests ()) in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let est =
          match Analyze.OLS.estimates result with
          | Some [ e ] -> e
          | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Printf.printf "%-36s (no estimate)\n" name
      else if est >= 1e6 then Printf.printf "%-36s %10.2f ms/run\n" name (est /. 1e6)
      else if est >= 1e3 then Printf.printf "%-36s %10.2f us/run\n" name (est /. 1e3)
      else Printf.printf "%-36s %10.0f ns/run\n" name est)
    rows;
  rows

(* --- Dynamic step-throughput speedup --- *)

(* Reads the dyn/* estimates out of the micro-benchmark rows, prints
   the delta path's speedup over the full-rebuild path and over the
   dense pre-delta baseline, and optionally gates on the latter
   (RUMOR_BENCH_DYN_MIN_SPEEDUP=5 exits 1 below 5x) — off by default
   because shared runners are noisy.  No-op when the micro section was
   skipped. *)
let check_dyn_speedup rows =
  let find key =
    List.find_map
      (fun (name, est) ->
        if name = key || name = "rumor/" ^ key then Some est else None)
      rows
  in
  match
    ( find "dyn/markovian-256-delta",
      find "dyn/markovian-256-rebuild",
      find "dyn/markovian-256-seed" )
  with
  | Some d, Some r, Some s when d > 0. ->
    let vs_rebuild = r /. d and vs_seed = s /. d in
    Printf.printf
      "\ndyn markovian-256 step throughput: delta %.3f ms/run, rebuild %.3f \
       ms/run (%.1fx), dense seed path %.3f ms/run (%.1fx)\n"
      (d /. 1e6) (r /. 1e6) vs_rebuild (s /. 1e6) vs_seed;
    (match Env.string "RUMOR_BENCH_DYN_MIN_SPEEDUP" with
    | Some gate_s ->
      let gate = float_of_string gate_s in
      if vs_seed < gate then begin
        Printf.eprintf "FATAL: dyn speedup %.2fx below gate %.2fx\n" vs_seed
          gate;
        exit 1
      end
    | None -> ())
  | _ -> ()

(* --- Parallel-sweep speedup smoke --- *)

(* Times the hardened sweep (the E1 clique-256 workload) at jobs=1 and
   jobs=4, asserts the two samples are bit-identical (the split-seed
   guarantee), prints the speedup, and contributes both wall-times as
   report entries.  RUMOR_BENCH_PAR_REPS sizes the sweep (default 64);
   RUMOR_BENCH_PAR_MIN_SPEEDUP=2.5 turns the printed speedup into a
   gate (exit 1 below it) — off by default because single-core runners
   cannot pass it; RUMOR_BENCH_SKIP_PAR=1 skips the section. *)
let run_par_sweep () =
  print_endline "=== Parallel sweep (split-seed Domain pool) ===";
  let open Rumor_core in
  let reps = Env.int ~default:64 "RUMOR_BENCH_PAR_REPS" in
  let net = Rumor.Dynet.of_static (Rumor.Gen.clique 256) in
  let seed = bench_seed () in
  let timed jobs =
    let rng = Rumor.Rng.create seed in
    let t0 = Obs.Clock.now_s () in
    let sweep = Rumor.Run.async_spread_sweep ~jobs ~reps rng net in
    (sweep, Obs.Clock.now_s () -. t0)
  in
  let s1, w1 = timed 1 in
  let s4, w4 = timed 4 in
  if
    s1.Rumor.Run.outcomes <> s4.Rumor.Run.outcomes
    || s1.Rumor.Run.seeds <> s4.Rumor.Run.seeds
  then begin
    prerr_endline "FATAL: jobs=1 and jobs=4 sweeps disagree (determinism bug)";
    exit 1
  end;
  let speedup = w1 /. w4 in
  Printf.printf
    "sweep e1-clique-256 reps=%d: jobs=1 %.3fs, jobs=4 %.3fs  (speedup %.2fx, \
     samples bit-identical, %d cores)\n"
    reps w1 w4 speedup (Rumor.Pool.nproc ());
  (match Env.string "RUMOR_BENCH_PAR_MIN_SPEEDUP" with
  | Some s ->
    let gate = float_of_string s in
    if speedup < gate then begin
      Printf.eprintf "FATAL: speedup %.2fx below gate %.2fx\n" speedup gate;
      exit 1
    end
  | None -> ());
  [
    ("par/sweep-e1-256-jobs1", w1 *. 1e9);
    ("par/sweep-e1-256-jobs4", w4 *. 1e9);
  ]

(* --- Coordinator overhead --- *)

(* Tasks/sec of the multi-process campaign coordinator at workers in
   {1, 2, 4} over a batch of small E1-style tasks (async spread on a
   clique, 2 replicates per task).  Tasks are deliberately tiny so the
   number measures the supervision tax — fork/exec, socket round
   trips, lease journaling, capture-file renames — rather than the
   workload.  RUMOR_BENCH_COORD_TASKS sizes the batch (default 24);
   RUMOR_BENCH_SKIP_COORD=1 skips the section. *)
let run_coordinator_overhead () =
  print_endline "\n=== Coordinator overhead (multi-process campaign) ===";
  let open Rumor_core in
  let ntasks = Env.int ~default:24 "RUMOR_BENCH_COORD_TASKS" in
  let tasks = List.init ntasks (Printf.sprintf "t%02d") in
  let seed = bench_seed () in
  let run_task task =
    let rng = Rumor.Rng.create (seed + Hashtbl.hash task) in
    let net = Rumor.Dynet.of_static (Rumor.Gen.clique 64) in
    let sweep = Rumor.Run.async_spread_sweep ~jobs:1 ~reps:2 rng net in
    Printf.printf "%s: %d replicates\n" task
      (Array.length sweep.Rumor.Run.outcomes)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter
          (fun e -> rm_rf (Filename.concat path e))
          (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  let timed workers =
    let dir = Filename.temp_file "rumor-bench-coord" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        let config =
          {
            (Rumor.Coordinator.default_config ~dir ~workers) with
            Rumor.Coordinator.fsync = false;
          }
        in
        let spawn ~slot ~socket =
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 ->
            Unix._exit
              (try
                 Rumor.Worker.run ~transport:(Rumor.Worker.Unix_sock socket)
                   ~id:slot
                   ~tasks_dir:(Rumor.Coordinator.tasks_dir config) ~run_task ()
               with _ -> 4)
          | pid -> pid
        in
        let t0 = Obs.Clock.now_s () in
        let summary = Rumor.Coordinator.run ~spawn config tasks in
        let wall = Obs.Clock.now_s () -. t0 in
        if Rumor.Coordinator.exit_code summary <> 0 then begin
          prerr_endline "FATAL: coordinator bench campaign failed";
          exit 1
        end;
        wall)
  in
  List.map
    (fun workers ->
      let wall = timed workers in
      Printf.printf
        "coordinator workers=%d: %d tasks in %.3fs  (%.1f tasks/sec)\n" workers
        ntasks wall
        (float_of_int ntasks /. wall);
      ( Printf.sprintf "harness/coordinator-overhead-w%d" workers,
        wall /. float_of_int ntasks *. 1e9 ))
    [ 1; 2; 4 ]

(* --- Adaptive sequential stopping --- *)

(* Replicate savings of the adaptive engine at equal CI width, on the
   two workloads the acceptance gate names:

   - E1 (clique-256): the fixed sweep at the full budget sets the
     reference half-width; the adaptive sweep with the clique
     control variate must reach that SAME width on a prefix.  The
     Rao-Blackwell control is exact on the clique, so the savings
     factor here is budget/min_reps — the engine's best case — and
     the control's variance-reduction factor is recorded.
   - E5 (absolute-120, the Theta(n^2) dynamic family): no closed form
     exists, so no control; the adaptive sweep targets the practical
     relative width (default 12%) and is compared against the fixed
     conservative budget that a non-adaptive run would spend.

   RUMOR_BENCH_ADAPTIVE_MIN_SAVINGS=2 turns the printed E1 savings
   factor into a gate (exit 1 below it); RUMOR_BENCH_ADAPTIVE_REL
   overrides the E5 relative width; RUMOR_BENCH_SKIP_ADAPTIVE=1 skips
   the section. *)
let run_adaptive_bench () =
  print_endline "\n=== Adaptive sequential stopping (equal CI width) ===";
  let open Rumor_core in
  let seed = bench_seed () in
  let level = 0.95 in
  (* E1: clique-256, control-variate adaptive vs fixed budget. *)
  let budget = Env.int ~default:256 "RUMOR_BENCH_ADAPTIVE_REPS" in
  let net = Rumor.Dynet.of_static (Rumor.Gen.clique 256) in
  let t0 = Obs.Clock.now_s () in
  let fixed =
    Rumor.Run.async_spread_sweep ~reps:budget (Rumor.Rng.create seed) net
  in
  let fixed_wall = Obs.Clock.now_s () -. t0 in
  let times = Rumor.Run.usable_times fixed in
  let s = Rumor.Stream.create () in
  Array.iter (Rumor.Stream.add s) times;
  let fixed_hw =
    Rumor.Adaptive.half_width ~level ~count:(Rumor.Stream.count s)
      ~sd:(Rumor.Stream.stddev s)
  in
  let config =
    Rumor.Adaptive.config ~level ~min_reps:16 ~max_reps:budget ~chunk:16
      (Rumor.Adaptive.Abs fixed_hw)
  in
  let t0 = Obs.Clock.now_s () in
  let a =
    Rumor.Run.async_spread_sweep_adaptive ~control:(Rumor.Gen.clique 256)
      ~config (Rumor.Rng.create seed) net
  in
  let adaptive_wall = Obs.Clock.now_s () -. t0 in
  if a.Rumor.Run.half_width > fixed_hw then begin
    prerr_endline "FATAL: adaptive E1 run stopped wider than the fixed CI";
    exit 1
  end;
  let savings = float_of_int budget /. float_of_int a.Rumor.Run.consumed in
  let vr =
    match a.Rumor.Run.control with
    | Some cv -> cv.Rumor.Adaptive.variance_ratio
    | None -> 1.
  in
  Printf.printf
    "adaptive e1-clique-256: fixed %d reps (hw %.4f, %.3fs) vs adaptive %d \
     reps (hw %.4f, %.3fs)  (%.1fx fewer replicates, control vr %s)\n"
    budget fixed_hw fixed_wall a.Rumor.Run.consumed a.Rumor.Run.half_width
    adaptive_wall savings
    (if Float.is_finite vr then Printf.sprintf "%.1fx" vr else "inf");
  (match Env.string "RUMOR_BENCH_ADAPTIVE_MIN_SAVINGS" with
  | Some g -> (
    match float_of_string_opt g with
    | Some gate when savings < gate ->
      Printf.eprintf "FATAL: adaptive savings %.2fx below gate %.2fx\n"
        savings gate;
      exit 1
    | _ -> ())
  | None -> ());
  (* E5: absolute-diligent dynamic family at n = 120 — no closed form,
     no control; relative-width stopping vs the conservative fixed
     budget. *)
  let e5_budget = Env.int ~default:64 "RUMOR_BENCH_ADAPTIVE_E5_REPS" in
  let rel =
    match Env.string "RUMOR_BENCH_ADAPTIVE_REL" with
    | Some r -> float_of_string r
    | None -> 0.12
  in
  let n5 = 120 in
  let dyn = Rumor.Absolute.network ~n:n5 ~rho:(10. /. float_of_int n5) in
  let t0 = Obs.Clock.now_s () in
  let f5 =
    Rumor.Run.async_spread_sweep ~horizon:1e7 ~reps:e5_budget
      (Rumor.Rng.create (seed + 5))
      dyn
  in
  let f5_wall = Obs.Clock.now_s () -. t0 in
  let config5 =
    Rumor.Adaptive.config ~level ~min_reps:8 ~max_reps:e5_budget ~chunk:8
      (Rumor.Adaptive.Rel rel)
  in
  let t0 = Obs.Clock.now_s () in
  let a5 =
    Rumor.Run.async_spread_sweep_adaptive ~horizon:1e7 ~config:config5
      (Rumor.Rng.create (seed + 5))
      dyn
  in
  let a5_wall = Obs.Clock.now_s () -. t0 in
  (* The adaptive prefix must be the fixed sweep's prefix — same seed,
     same replicates: the bench doubles as an end-to-end check. *)
  if
    a5.Rumor.Run.sweep.Rumor.Run.outcomes
    <> Array.sub f5.Rumor.Run.outcomes 0 a5.Rumor.Run.consumed
  then begin
    prerr_endline "FATAL: adaptive E5 prefix diverges from the fixed sweep";
    exit 1
  end;
  let savings5 =
    float_of_int e5_budget /. float_of_int a5.Rumor.Run.consumed
  in
  Printf.printf
    "adaptive e5-absolute-120: fixed %d reps (%.3fs) vs adaptive %d reps \
     (%.3fs) at %.0f%% relative width  (%.1fx fewer replicates, %s)\n"
    e5_budget f5_wall a5.Rumor.Run.consumed a5_wall (rel *. 100.) savings5
    (match a5.Rumor.Run.reason with
    | Rumor.Adaptive.Converged -> "converged"
    | Rumor.Adaptive.Budget -> "budget");
  [
    ("stats/adaptive-e1-fixed", fixed_wall *. 1e9);
    ("stats/adaptive-e1", adaptive_wall *. 1e9);
    ("stats/adaptive-e1-savings-x", savings);
    ("stats/adaptive-e1-vr-x", Float.min vr 1e6);
    ("stats/adaptive-e5-fixed", f5_wall *. 1e9);
    ("stats/adaptive-e5", a5_wall *. 1e9);
    ("stats/adaptive-e5-savings-x", savings5);
  ]

(* Serve daemon: cold compute vs warm cache-hit latency for an
   E1-style query (clique, n=256).  The server runs in-process on an
   ephemeral port; the warm path is driven closed-loop by the load
   generator.  RUMOR_BENCH_SERVE_MIN_SPEEDUP=100 turns the printed
   cold/hit speedup into a gate; RUMOR_BENCH_SKIP_SERVE=1 skips. *)
let run_serve_bench () =
  print_endline "\n=== Serve daemon (memoized query cache) ===";
  let open Rumor_core in
  let module Server = Rumor.Serve.Server in
  let module Query = Rumor.Serve.Query in
  let module Loadgen = Rumor.Serve.Loadgen in
  let dir = Filename.temp_file "rumor-bench-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let query =
    { (Query.default ~family:"clique" ~n:256) with Query.reps = 32 }
  in
  let config =
    { (Server.default_config ~dir) with Server.fsync = false; port = 0 }
  in
  let server = Server.create config in
  let port = Server.port server in
  let domain = Domain.spawn (fun () -> Server.serve server) in
  let roundtrip () =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
        let req =
          Bytes.of_string (Obs.Json.to_string (Query.to_json query) ^ "\n")
        in
        ignore (Unix.write fd req 0 (Bytes.length req));
        let buf = Buffer.create 512 in
        let chunk = Bytes.create 4096 in
        let rec read_line () =
          if not (String.contains (Buffer.contents buf) '\n') then begin
            let n = Unix.read fd chunk 0 (Bytes.length chunk) in
            if n > 0 then begin
              Buffer.add_subbytes buf chunk 0 n;
              read_line ()
            end
          end
        in
        let t0 = Obs.Clock.now_s () in
        read_line ();
        Obs.Clock.now_s () -. t0)
  in
  let cold_s = roundtrip () in
  let warm =
    Loadgen.run
      {
        (Loadgen.default_config ~port ~queries:[ query ]) with
        Loadgen.duration_s = 2.;
        concurrency = 2;
      }
  in
  Server.stop server;
  Domain.join domain;
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter
          (fun e -> rm_rf (Filename.concat path e))
          (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  let c = Server.counters server in
  let speedup = cold_s /. warm.Loadgen.p50_s in
  Printf.printf
    "serve clique-256x32: cold %.4fs, hit p50 %.6fs, p99 %.6fs  (%.0fx \
     speedup, %d hits, %d misses)\n"
    cold_s warm.Loadgen.p50_s warm.Loadgen.p99_s speedup warm.Loadgen.hits
    c.Server.misses;
  (match Env.string "RUMOR_BENCH_SERVE_MIN_SPEEDUP" with
  | Some s -> (
    match float_of_string_opt s with
    | Some min_speedup when speedup < min_speedup ->
      Printf.printf
        "FATAL: warm-cache speedup %.0fx below required %.0fx\n" speedup
        min_speedup;
      exit 1
    | _ -> ())
  | None -> ());
  [
    ("serve/cold-e1-256", cold_s *. 1e9);
    ("serve/hit-e1-256", warm.Loadgen.p50_s *. 1e9);
    ("serve/hit-p99-e1-256", warm.Loadgen.p99_s *. 1e9);
  ]

(* The machine-readable counterpart of the printed tables: Bechamel
   estimates + the metric-registry counters accumulated during this
   process (experiments and micro-benches both run the engines), as a
   schema-versioned BENCH_<rev>.json.  RUMOR_BENCH_REV labels the
   report (default "dev"); RUMOR_BENCH_OUT overrides the path;
   compare two reports with `rumor obs compare`. *)
let write_report rows =
  let rev =
    match Env.string "RUMOR_BENCH_REV" with
    | Some r -> Obs.Sink.sanitize r
    | None -> "dev"
  in
  let path =
    match Env.string "RUMOR_BENCH_OUT" with
    | Some p -> p
    | None -> Printf.sprintf "BENCH_%s.json" rev
  in
  let mode = if env_flag "RUMOR_BENCH_FULL" then "full" else "quick" in
  let report =
    Obs.Bench_report.make ~rev ~seed:(bench_seed ()) ~mode
      ~entries:(List.filter (fun (_, est) -> not (Float.is_nan est)) rows)
      ~counters:(Obs.Metrics.counters ())
      ~spans:(Obs.Span.totals ()) ()
  in
  Obs.Bench_report.write path report;
  Printf.printf "\nbench report (%s) written to %s\n" Obs.Bench_report.schema
    path

let () =
  (* Engine telemetry is on for the whole bench run so the report
     carries per-engine event counters; it never perturbs seeded
     results (recording does not touch any RNG).  RUMOR_BENCH_NO_OBS=1
     restores the bare-metal configuration. *)
  if not (env_flag "RUMOR_BENCH_NO_OBS") then Obs.Metrics.enable ();
  (match Env.string "RUMOR_OBS_OUT" with
  | Some dir -> Obs.Sink.set_dir (Some dir)
  | None -> ());
  if not (env_flag "RUMOR_BENCH_SKIP_EXPERIMENTS") then run_experiments ();
  let rows =
    if env_flag "RUMOR_BENCH_SKIP_MICRO" then [] else run_benchmarks ()
  in
  check_dyn_speedup rows;
  let rows =
    if env_flag "RUMOR_BENCH_SKIP_PAR" then rows else rows @ run_par_sweep ()
  in
  let rows =
    if env_flag "RUMOR_BENCH_SKIP_COORD" then rows
    else rows @ run_coordinator_overhead ()
  in
  let rows =
    if env_flag "RUMOR_BENCH_SKIP_ADAPTIVE" then rows
    else rows @ run_adaptive_bench ()
  in
  let rows =
    if env_flag "RUMOR_BENCH_SKIP_SERVE" then rows
    else rows @ run_serve_bench ()
  in
  if rows <> [] && not (env_flag "RUMOR_BENCH_NO_REPORT") then write_report rows
