.PHONY: all build test bench bench-full doc examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Paper-validation tables (quick sizes) + Bechamel micro-benchmarks.
bench:
	dune exec bench/main.exe

# Full-size sweeps (slow).
bench-full:
	RUMOR_BENCH_FULL=1 dune exec bench/main.exe

doc:
	dune build @doc

examples:
	dune exec examples/quickstart.exe
	dune exec examples/dichotomy.exe
	dune exec examples/p2p_churn.exe
	dune exec examples/mobile_gossip.exe
	dune exec examples/social_gossip.exe
	dune exec examples/bottleneck.exe

clean:
	dune clean
