open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic

let c0 = 0.5 -. (1. /. exp 1.)

let big_c ~c =
  if c < 1. then invalid_arg "Bounds.big_c: Theorem 1.1 requires c >= 1";
  ((10. *. c) +. 20.) /. c0

type step_profile = {
  phi : float;
  rho : float;
  rho_abs : float;
  connected : bool;
}

let profile_of_info (info : Dynet.info) =
  let graph = info.Dynet.graph in
  let n = Graph.n graph in
  (* A family-supplied positive conductance already certifies
     connectivity; skip the BFS on that hot path. *)
  let connected =
    match info.Dynet.phi with
    | Some v when v > 0. -> true
    | Some _ | None -> Traverse.is_connected graph
  in
  let phi =
    match info.Dynet.phi with
    | Some v -> v
    | None ->
      if not connected then 0.
      else if n <= Cut.exact_size_limit then Cut.conductance_exact graph
      else Spectral.conductance_sweep (Rng.create 7) graph
  in
  let rho =
    match info.Dynet.rho with
    | Some v -> v
    | None ->
      if not connected then 0.
      else if n <= Cut.exact_size_limit then Cut.diligence_exact graph
      else Float.nan
  in
  let rho_abs =
    match info.Dynet.rho_abs with
    | Some v -> v
    | None -> Metrics.absolute_diligence graph
  in
  { phi; rho; rho_abs; connected }

let profile ?(steps = 256) rng (net : Dynet.t) =
  let instance = net.spawn rng in
  let empty = Bitset.create net.Dynet.n in
  let cached = ref None in
  Array.init steps (fun _ ->
      let info = Dynet.next instance ~informed:empty in
      match !cached with
      | Some p when not info.Dynet.changed -> p
      | Some _ | None ->
        let p = profile_of_info info in
        cached := Some p;
        p)

let first_time ~target f ~max_steps =
  let rec go t acc =
    if t >= max_steps then None
    else begin
      let contrib = f t in
      if Float.is_nan contrib then
        invalid_arg "Bounds.first_time: NaN step contribution";
      let acc = acc +. contrib in
      if acc >= target then Some t else go (t + 1) acc
    end
  in
  go 0 0.

let theorem_1_1_time ~c ~n profiles =
  let target = big_c ~c *. log (float_of_int n) in
  first_time ~target
    (fun t -> profiles.(t).phi *. profiles.(t).rho)
    ~max_steps:(Array.length profiles)

let theorem_1_3_time ~n profiles =
  let target = 2. *. float_of_int n in
  first_time ~target
    (fun t -> if profiles.(t).connected then profiles.(t).rho_abs else 0.)
    ~max_steps:(Array.length profiles)

let corollary_1_6_time ~c ~n profiles =
  match (theorem_1_1_time ~c ~n profiles, theorem_1_3_time ~n profiles) with
  | Some a, Some b -> Some (min a b)
  | (Some _ as r), None | None, (Some _ as r) -> r
  | None, None -> None

let theorem_1_1_closed_form ~c ~n ~phi_rho =
  if phi_rho <= 0. then
    invalid_arg "Bounds.theorem_1_1_closed_form: phi_rho must be positive";
  big_c ~c *. log (float_of_int n) /. phi_rho

let theorem_1_3_closed_form ~n ~rho_abs =
  if rho_abs <= 0. then
    invalid_arg "Bounds.theorem_1_3_closed_form: rho_abs must be positive";
  2. *. float_of_int n /. rho_abs
