(** Static-network spread-time anchors from the literature the paper
    builds on — the sanity baselines of experiment E10.

    - Chierichetti, Giakkoupis, Lattanzi & Panconesi [6]: synchronous
      push–pull on any static graph completes in [O(log n / Phi)]
      rounds.
    - Acan, Collevecchio, Mehrabian & Wormald [1]: asynchronous
      push–pull on any connected static graph completes in
      [O(n log n)] time.
    - Karp, Schindelhauer, Shenker & Vöcking [19]: push–pull on the
      complete graph takes [Theta(log n)] rounds.
    - Giakkoupis, Nazari & Woelfel [16]: on static graphs
      [T_a(G) = O(T_s(G) + log n)] — no such relation survives in
      dynamic networks (Theorem 1.7).

    In each signature the trailing positional argument is [n]. *)

val chierichetti_rounds : ?c:float -> phi:float -> int -> float
(** [c * log n / phi] (default [c = 1]).
    @raise Invalid_argument if [phi <= 0] or [n < 2]. *)

val static_async_worst_case : ?c:float -> int -> float
(** [c * n * log n] (default [c = 1]). *)

val karp_clique_rounds : ?c:float -> int -> float
(** [c * log2 n]. *)

val async_from_sync : ts:float -> int -> float
(** The [16] static coupling envelope [ts + log n]. *)
