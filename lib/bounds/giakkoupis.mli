(** The dynamic-network bound of Giakkoupis, Sauerwald & Stauffer
    (ICALP 2014, [17] in the paper): w.h.p. the (synchronous) push–pull
    spread time is at most

    [min t such that sum_{p<=t} Phi(G(p)) >= c * M(G) * log n]

    where [M(G) = max_u Delta_u / delta_u] is the worst per-node
    degree fluctuation across the whole time window.

    The paper's Section 1.2 example — alternating complete and cubic
    regular graphs — makes [M(G) = (n-1)/3] and this bound
    [Theta(n log n)], an [Theta(n)] factor above the diligence bound;
    experiment E9 reproduces that separation. *)

open Rumor_rng
open Rumor_dynamic

type result = {
  bound_time : int option;  (** the bound, [None] if not reached *)
  m_factor : float;  (** the measured [M(G)] over the window *)
}

val bound : ?c:float -> ?steps:int -> Rng.t -> Dynet.t -> result
(** [bound rng net] spawns an instance, watches [steps] (default 256)
    graphs (empty informed set, as in {!Bounds.profile}), accumulates
    per-step conductances and per-node degree extremes, and evaluates
    the bound with constant [c] (default 1).  Isolated nodes make
    [M(G)] infinite (their [delta_u] is 0), matching the bound's
    connectivity requirement. *)

val m_factor_of_degrees : mins:int array -> maxs:int array -> float
(** [max_u maxs(u) / mins(u)]; infinite if some [mins(u) = 0].
    Exposed for tests. *)
