let chierichetti_rounds ?(c = 1.) ~phi n =
  if n < 2 then invalid_arg "Static_bounds.chierichetti_rounds: need n >= 2";
  if phi <= 0. then
    invalid_arg "Static_bounds.chierichetti_rounds: phi must be positive";
  c *. log (float_of_int n) /. phi

let static_async_worst_case ?(c = 1.) n =
  c *. float_of_int n *. log (float_of_int n)

let karp_clique_rounds ?(c = 1.) n = c *. (log (float_of_int n) /. log 2.)

let async_from_sync ~ts n = ts +. log (float_of_int n)
