module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist

let harmonic n =
  let acc = ref 0. in
  for k = 1 to n do
    acc := !acc +. (1. /. float_of_int k)
  done;
  !acc

let clique_rate ~n ~informed =
  if informed <= 0 || informed >= n then
    invalid_arg "Limit_laws.clique_rate: informed outside (0, n)";
  let k = float_of_int informed and nf = float_of_int n in
  2. *. k *. (nf -. k) /. (nf -. 1.)

let clique_mean n =
  if n < 1 then invalid_arg "Limit_laws.clique_mean: n < 1";
  if n = 1 then 0.
  else float_of_int (n - 1) *. harmonic (n - 1) /. float_of_int n

let clique_sample rng n =
  if n < 1 then invalid_arg "Limit_laws.clique_sample: n < 1";
  let t = ref 0. in
  for k = 1 to n - 1 do
    t := !t +. Dist.exponential rng ~rate:(clique_rate ~n ~informed:k)
  done;
  !t

let clique_samples rng ~n ~reps = Array.init reps (fun _ -> clique_sample rng n)

let star_center_rate ~n ~uninformed_leaves =
  if uninformed_leaves <= 0 || uninformed_leaves >= n then
    invalid_arg "Limit_laws.star_center_rate: uninformed_leaves outside (0, n)";
  let m = float_of_int uninformed_leaves and nf = float_of_int n in
  m *. nf /. (nf -. 1.)

let star_center_mean n =
  if n < 1 then invalid_arg "Limit_laws.star_center_mean: n < 1";
  if n = 1 then 0.
  else float_of_int (n - 1) *. harmonic (n - 1) /. float_of_int n

let gnp_limit_mean n = clique_mean n

let worst_case_lower n = log (float_of_int (max 2 n)) /. 4.

let worst_case_upper n = 4. *. float_of_int (max 1 n)
