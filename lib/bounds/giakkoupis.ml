open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic

type result = {
  bound_time : int option;
  m_factor : float;
}

let m_factor_of_degrees ~mins ~maxs =
  if Array.length mins <> Array.length maxs then
    invalid_arg "Giakkoupis.m_factor_of_degrees: length mismatch";
  let worst = ref 0. in
  Array.iteri
    (fun u dmin ->
      let ratio =
        if dmin = 0 then infinity
        else float_of_int maxs.(u) /. float_of_int dmin
      in
      if ratio > !worst then worst := ratio)
    mins;
  !worst

let bound ?(c = 1.) ?(steps = 256) rng (net : Dynet.t) =
  let n = net.Dynet.n in
  let instance = net.spawn rng in
  let empty = Bitset.create n in
  let mins = Array.make n max_int in
  let maxs = Array.make n 0 in
  let phis = Array.make steps 0. in
  for t = 0 to steps - 1 do
    let info = Dynet.next instance ~informed:empty in
    let graph = info.Dynet.graph in
    for u = 0 to n - 1 do
      let d = Graph.degree graph u in
      if d < mins.(u) then mins.(u) <- d;
      if d > maxs.(u) then maxs.(u) <- d
    done;
    phis.(t) <-
      (match info.Dynet.phi with
      | Some v -> v
      | None ->
        if not (Traverse.is_connected graph) then 0.
        else if Graph.n graph <= Cut.exact_size_limit then
          Cut.conductance_exact graph
        else Spectral.conductance_sweep (Rng.create 7) graph)
  done;
  let m_factor = m_factor_of_degrees ~mins ~maxs in
  let bound_time =
    if Float.is_finite m_factor then
      Bounds.first_time
        ~target:(c *. m_factor *. log (float_of_int n))
        (fun t -> phis.(t))
        ~max_steps:steps
    else None
  in
  { bound_time; m_factor }
