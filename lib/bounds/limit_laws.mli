(** Exact spread-time laws for the constructed families — the closed
    forms behind the adaptive engine's control variates and the
    conformance gates.

    On the complete graph [K_n], asynchronous push–pull (unit-rate
    clocks, uniform neighbour choice) is a pure-jump Markov chain in
    the informed-set size: with [k] informed the time to the next
    informing event is exactly [Exp(2 k (n-k) / (n-1))], because each
    of the [k (n-k)] informed/uninformed pairs fires an informing call
    at rate [1/(n-1) + 1/(n-1)].  Summing expectations gives the exact
    mean [(n-1) H_{n-1} / n], and sampling the chain gives the exact
    spread-time law with no graph simulation at all.

    Panagiotou–Speidel (PAPERS.md) prove that on dense [G(n,p)]
    ([n p >> log n]) the push–pull spread time is asymptotically
    independent of [p] and converges to the complete-graph law — the
    per-edge rate [1/deg] cancels the edge count.  That makes
    {!clique_sample} the reference distribution for the G(n,p)
    conformance gate in [test_conformance.ml].

    Acan, Collevecchio, Mehrabian and Wormald give universal bounds
    for any connected [n]-vertex graph: spread time [Omega(log n)] and
    [O(n)] with high probability.  {!worst_case_lower} and
    {!worst_case_upper} expose deliberately slack constants usable as
    test pins at moderate [n]. *)

val harmonic : int -> float
(** [harmonic n] is [H_n = sum_{k=1}^{n} 1/k]; [0.] for [n <= 0]. *)

val clique_rate : n:int -> informed:int -> float
(** Total informing rate of async push–pull on [K_n] with [informed]
    vertices already informed: [2 k (n-k) / (n-1)].  Matches the
    engine's Fenwick total exactly (see [Async_cut.pair_rate]).
    @raise Invalid_argument unless [0 < informed < n]. *)

val clique_mean : int -> float
(** Exact expected spread time on [K_n]: [(n-1) H_{n-1} / n].
    @raise Invalid_argument if [n < 1]. *)

val clique_sample : Rumor_rng.Rng.t -> int -> float
(** One exact draw of the [K_n] spread-time law: the sum of
    independent [Exp(clique_rate k)] jumps for [k = 1 .. n-1].
    @raise Invalid_argument if [n < 1]. *)

val clique_samples : Rumor_rng.Rng.t -> n:int -> reps:int -> float array
(** [reps] independent draws of {!clique_sample}. *)

val star_center_rate : n:int -> uninformed_leaves:int -> float
(** Informing rate on the [n]-vertex star when the rumor starts at the
    centre and [m] leaves remain uninformed: [m (1/(n-1) + 1) = m n / (n-1)]
    (centre pushes at [1/(n-1)] per leaf, each leaf pulls at rate 1).
    @raise Invalid_argument unless [0 < uninformed_leaves < n]. *)

val star_center_mean : int -> float
(** Exact expected spread time on the star from its centre:
    [(n-1) H_{n-1} / n] — coincidentally the same closed form as
    {!clique_mean}. @raise Invalid_argument if [n < 1]. *)

val gnp_limit_mean : int -> float
(** The Panagiotou–Speidel limit mean for dense [G(n,p)]: equals
    {!clique_mean} — the law is asymptotically independent of [p]. *)

val worst_case_lower : int -> float
(** Conservative Acan-et-al. lower pin for any connected graph:
    [ln n / 4].  Holds with large margin for mean spread times at the
    sizes the tests use. *)

val worst_case_upper : int -> float
(** Conservative Acan-et-al. upper pin for any connected graph:
    [4 n].  Push–pull on an [n]-path — the extremal case — has mean
    spread time [~n/2], far inside this. *)
