(** The paper's spread-time upper bounds.

    - Theorem 1.1: with probability [1 - n^-c] the rumor spreads within
      [T(G, c) = min t such that sum_{p<=t} Phi(G(p)) rho(p) >= C log n]
      with [C = (10c + 20) / c0] and [c0 = 1/2 - 1/e].
    - Theorem 1.3: w.h.p. the rumor spreads within
      [T_abs(G) = min t such that sum_{p<=t} ceil(Phi(G(p))) rho-bar(p) >= 2n]
      where [ceil(Phi) = 1] iff the step's graph is connected.
    - Corollary 1.6: the minimum of the two.

    Bounds are computed over a {!step_profile} array describing the
    per-step graph parameters; {!profile} extracts one from any
    dynamic-network description, preferring each family's analytic
    closed forms and falling back to exact (small [n]) or spectral
    computation. *)

open Rumor_rng
open Rumor_dynamic

val c0 : float
(** [1/2 - 1/e], the constant of Lemma 2.2 / Lemma 3.1. *)

val big_c : c:float -> float
(** [C = (10 c + 20) / c0] of Theorem 1.1.
    @raise Invalid_argument if [c < 1] (the theorem's regime). *)

type step_profile = {
  phi : float;  (** conductance of the step's graph (0 if disconnected) *)
  rho : float;  (** diligence (0 if disconnected); [nan] when unknown *)
  rho_abs : float;  (** absolute diligence (0 on an edgeless graph) *)
  connected : bool;
}

val profile : ?steps:int -> Rng.t -> Dynet.t -> step_profile array
(** [profile rng net] spawns an instance and reads [steps] (default
    256) step profiles, feeding the family an empty informed set (all
    families in this repo expose step-invariant parameter values, so
    the profile is informed-set independent).  Fallback order per
    parameter: the family's analytic value; exact enumeration when
    [n <= Cut.exact_size_limit]; spectral sweep for [phi]; [nan] for
    [rho]. *)

val first_time : target:float -> (int -> float) -> max_steps:int -> int option
(** [first_time ~target f ~max_steps] is the least [t < max_steps] with
    [sum_{p=0}^{t} f p >= target], if any.  NaN contributions are
    rejected with [Invalid_argument]. *)

val theorem_1_1_time : c:float -> n:int -> step_profile array -> int option
(** [T(G, c)] over the profile, [None] if the profile is too short.
    @raise Invalid_argument if any needed [rho] is [nan]. *)

val theorem_1_3_time : n:int -> step_profile array -> int option
(** [T_abs(G)] over the profile. *)

val corollary_1_6_time : c:float -> n:int -> step_profile array -> int option
(** [min(T(G,c), T_abs(G))]; [None] only if both are. *)

val theorem_1_1_closed_form : c:float -> n:int -> phi_rho:float -> float
(** [T(G, c)] when [Phi rho] is the same every step:
    [C log n / (Phi rho)].
    @raise Invalid_argument if [phi_rho <= 0]. *)

val theorem_1_3_closed_form : n:int -> rho_abs:float -> float
(** [T_abs] for an always-connected network with constant absolute
    diligence: [2n / rho-bar]. *)
