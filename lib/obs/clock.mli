(** Monotonic clock (CLOCK_MONOTONIC via a tiny C stub; wall-clock
    fallback where unavailable).  Origin is arbitrary — only
    differences are meaningful. *)

val now_ns : unit -> int64

val now_s : unit -> float
