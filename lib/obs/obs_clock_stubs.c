/* Monotonic clock for the observability layer's timing spans.
   CLOCK_MONOTONIC is immune to wall-clock adjustments, so span
   durations stay meaningful across NTP slews; the fallback covers
   platforms without it. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value rumor_obs_monotonic_ns(value unit)
{
    static LARGE_INTEGER freq;
    LARGE_INTEGER now;
    if (freq.QuadPart == 0)
        QueryPerformanceFrequency(&freq);
    QueryPerformanceCounter(&now);
    return caml_copy_int64(
        (int64_t)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else
#include <time.h>
#include <sys/time.h>

CAMLprim value rumor_obs_monotonic_ns(value unit)
{
#if defined(CLOCK_MONOTONIC)
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
#else
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_int64((int64_t)tv.tv_sec * 1000000000
                           + (int64_t)tv.tv_usec * 1000);
#endif
}
#endif
