let schema = "rumor-bench/1"

type entry = {
  name : string;
  ns_per_run : float;
}

type t = {
  rev : string;
  seed : int;
  mode : string;
  entries : entry list;
  counters : (string * int) list;
  spans : (string * (int * float)) list;
}

let make ~rev ~seed ~mode ~entries ?(counters = []) ?(spans = []) () =
  {
    rev;
    seed;
    mode;
    entries =
      List.sort compare (List.map (fun (name, ns) -> { name; ns_per_run = ns }) entries);
    counters = List.sort compare counters;
    spans = List.sort compare spans;
  }

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("rev", Json.String t.rev);
      ("seed", Json.Int t.seed);
      ("mode", Json.String t.mode);
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("name", Json.String e.name);
                   ("ns_per_run", Json.Float e.ns_per_run);
                 ])
             t.entries) );
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) t.counters) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (name, (count, total_s)) ->
               ( name,
                 Json.Obj
                   [
                     ("count", Json.Int count); ("total_s", Json.Float total_s);
                   ] ))
             t.spans) );
    ]

let ( let* ) = Result.bind

let field name extract json =
  match Option.bind (Json.member name json) extract with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bench report: missing or bad field %S" name)

let of_json json =
  let* sch = field "schema" Json.to_string_opt json in
  if sch <> schema then
    Error (Printf.sprintf "bench report: schema %S, expected %S" sch schema)
  else
    let* rev = field "rev" Json.to_string_opt json in
    let* seed = field "seed" Json.to_int_opt json in
    let* mode = field "mode" Json.to_string_opt json in
    let* raw_entries = field "entries" Json.to_list_opt json in
    let* entries =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* name = field "name" Json.to_string_opt e in
          let* ns = field "ns_per_run" Json.to_float_opt e in
          Ok ({ name; ns_per_run = ns } :: acc))
        (Ok []) raw_entries
    in
    let counters =
      match Option.bind (Json.member "counters" json) Json.obj_opt with
      | None -> []
      | Some fields ->
        List.filter_map
          (fun (name, v) ->
            Option.map (fun i -> (name, i)) (Json.to_int_opt v))
          fields
    in
    let spans =
      match Option.bind (Json.member "spans" json) Json.obj_opt with
      | None -> []
      | Some fields ->
        List.filter_map
          (fun (name, v) ->
            match
              ( Option.bind (Json.member "count" v) Json.to_int_opt,
                Option.bind (Json.member "total_s" v) Json.to_float_opt )
            with
            | Some c, Some s -> Some ((name, (c, s)))
            | _ -> None)
          fields
    in
    Ok
      {
        rev;
        seed;
        mode;
        entries = List.sort compare (List.rev entries);
        counters = List.sort compare counters;
        spans = List.sort compare spans;
      }

let write path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (to_json t));
      output_char oc '\n');
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents ->
    let* json = Json.parse contents in
    of_json json

(* --- regression comparison --- *)

type delta = {
  entry : string;
  base_ns : float;
  current_ns : float;
  ratio : float;
}

type comparison = {
  tolerance : float;
  regressions : delta list;
  improvements : delta list;
  stable : delta list;
  only_base : string list;
  only_current : string list;
  counter_drift : (string * int * int) list;
}

let compare ?(tolerance = 0.25) ~baseline ~current () =
  if tolerance < 0. then invalid_arg "Bench_report.compare: negative tolerance";
  let base_tbl = Hashtbl.create 32 in
  List.iter (fun e -> Hashtbl.replace base_tbl e.name e.ns_per_run) baseline.entries;
  let regressions = ref [] and improvements = ref [] and stable = ref [] in
  let only_current = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt base_tbl e.name with
      | None -> only_current := e.name :: !only_current
      | Some base_ns ->
        Hashtbl.remove base_tbl e.name;
        let ratio =
          if base_ns > 0. then e.ns_per_run /. base_ns
          else if e.ns_per_run > 0. then Float.infinity
          else 1.
        in
        let d = { entry = e.name; base_ns; current_ns = e.ns_per_run; ratio } in
        if Float.is_nan ratio then stable := d :: !stable
        else if ratio > 1. +. tolerance then regressions := d :: !regressions
        else if ratio < 1. /. (1. +. tolerance) then
          improvements := d :: !improvements
        else stable := d :: !stable)
    current.entries;
  let only_base =
    List.sort Stdlib.compare (Hashtbl.fold (fun name _ acc -> name :: acc) base_tbl [])
  in
  let cur_counters = Hashtbl.create 32 in
  List.iter (fun (name, v) -> Hashtbl.replace cur_counters name v) current.counters;
  let counter_drift =
    List.filter_map
      (fun (name, base_v) ->
        match Hashtbl.find_opt cur_counters name with
        | Some cur_v when cur_v <> base_v -> Some (name, base_v, cur_v)
        | _ -> None)
      baseline.counters
  in
  {
    tolerance;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    stable = List.rev !stable;
    only_base;
    only_current = List.sort Stdlib.compare !only_current;
    counter_drift;
  }

let has_regression c = c.regressions <> []
