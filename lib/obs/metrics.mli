(** Process-wide performance counters, gauges and fixed-bucket
    histograms.

    The registry is global so that instrumentation points scattered
    across the engines, the Monte-Carlo runners and the checkpointing
    layer all feed one snapshot, written into run manifests and bench
    reports by {!Sink} / {!Bench_report}.

    {b Overhead policy.}  The subsystem is disabled by default; every
    recording entry point ([add], [incr], [set], [observe]) is a
    single atomic-bool load and branch when disabled, and the engines
    batch per-run tallies in plain record fields, flushing once per
    run — so the simulation hot paths are unaffected (< 3% on the
    cut-engine micro-bench even when {e enabled}, unmeasurable when
    disabled).  Recording never touches any RNG: seeded runs are
    draw-for-draw identical with the subsystem on or off.

    {b Domain safety.}  Cells are [Atomic.t]s; registration is
    idempotent and mutex-guarded, so handles may be created from any
    domain (module-initialisation time is typical) and recorded to
    concurrently from the domain-parallel runners. *)

val enabled : unit -> bool

val enable : unit -> unit

val disable : unit -> unit

(** {1 Counters} — monotone event tallies *)

type counter

val counter : string -> counter
(** Register (or fetch) the counter with this name.  Dotted names by
    convention, e.g. ["async_cut.events"]. *)

val incr : counter -> unit
(** No-op while the subsystem is disabled (likewise [add], [set],
    [observe]). *)

val add : counter -> int -> unit

val value : counter -> int

val counter_name : counter -> string

(** {1 Gauges} — last-write-wins instantaneous values *)

type gauge

val gauge : string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

(** {1 Histograms} — fixed bucket bounds chosen at registration *)

type histogram

val default_buckets : float array
(** Powers of two from [0.25] to [2^20]: covers spread times from
    [Theta(log n)] on expanders to [Theta(n^2)] worst cases. *)

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds; one overflow
    bucket is appended implicitly.  On re-registration the existing
    histogram is returned and [buckets] is ignored.
    @raise Invalid_argument if [buckets] is empty or not increasing. *)

val observe : histogram -> float -> unit

(** {1 Shards} — per-domain accumulators for the parallel runners *)

(** A shard is an unshared batch of counter deltas and histogram
    observations.  The domain-parallel Monte-Carlo runners give each
    worker domain its own shard, record per-replicate tallies into it
    (no atomics, no sharing, no allocation after the first touch of
    each handle), and {!Shard.merge} every shard once the domains have
    joined.  Merged totals are {e exactly} equal to direct recording —
    counter addition and bucket increments commute — so snapshots are
    byte-identical for any job count.

    A shard must only ever be touched by one domain at a time;
    creating one per worker is the intended pattern. *)
module Shard : sig
  type t

  val create : unit -> t

  val incr : t -> counter -> unit
  (** No-op while the subsystem is disabled, like the global entry
      points (likewise [add] and [observe]). *)

  val add : t -> counter -> int -> unit

  val observe : t -> histogram -> float -> unit

  val merge : t -> unit
  (** Flush every accumulated delta into the global registry and zero
      the shard (it can be reused).  Call after the owning domain has
      joined.  Not gated on the enabled flag: whatever was recorded is
      never dropped. *)
end

(** {1 Snapshots} *)

val counters : unit -> (string * int) list
(** Name-sorted counter values. *)

val gauges : unit -> (string * float) list

val snapshot : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}], all
    name-sorted — deterministic, diffable. *)

val reset : unit -> unit
(** Zero every registered cell (handles stay valid).  For tests and
    for section boundaries in the bench harness. *)
