let schema = "rumor-manifest/1"

type t = {
  kind : string;
  id : string;
  seed : int option;
  rng_fingerprint : int64 option;
  engine : string option;
  network : string option;
  n : int option;
  mode : string option;
  reps : int option;
  wall_s : float;
  extra : (string * Json.t) list;
}

let make ~kind ~id ?seed ?rng_fingerprint ?engine ?network ?n ?mode ?reps
    ?(extra = []) ~wall_s () =
  { kind; id; seed; rng_fingerprint; engine; network; n; mode; reps; wall_s; extra }

let opt name f = function None -> [] | Some v -> [ (name, f v) ]

let to_json ?metrics ?spans t =
  Json.Obj
    ([ ("schema", Json.String schema);
       ("kind", Json.String t.kind);
       ("id", Json.String t.id);
     ]
    @ opt "seed" (fun s -> Json.Int s) t.seed
    @ opt "rng_fingerprint"
        (fun f -> Json.String (Printf.sprintf "%016Lx" f))
        t.rng_fingerprint
    @ opt "engine" (fun e -> Json.String e) t.engine
    @ opt "network" (fun s -> Json.String s) t.network
    @ opt "n" (fun n -> Json.Int n) t.n
    @ opt "mode" (fun m -> Json.String m) t.mode
    @ opt "reps" (fun r -> Json.Int r) t.reps
    @ [ ("wall_s", Json.Float t.wall_s) ]
    @ t.extra
    @ opt "metrics" Fun.id metrics
    @ opt "spans" Fun.id spans)

let write ?(with_registry = true) t =
  if Sink.active () then begin
    let metrics = if with_registry then Some (Metrics.snapshot ()) else None in
    let spans = if with_registry then Some (Span.snapshot ()) else None in
    Sink.write_json (t.id ^ ".manifest.json") (to_json ?metrics ?spans t)
  end
