(* Structured-output sinks.  All writers are no-ops until an output
   directory is configured (the CLI's --obs-out, RUMOR_OBS_OUT, or the
   bench harness), so instrumented code can emit unconditionally. *)

let out_dir : string option Atomic.t = Atomic.make None

let io_lock = Mutex.create ()

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()
  end

let set_dir d =
  (match d with Some d -> mkdir_p d | None -> ());
  Atomic.set out_dir d

let dir () = Atomic.get out_dir

let active () = Option.is_some (Atomic.get out_dir)

(* File names derived from experiment ids / labels: keep them shell-
   and filesystem-safe. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    name

let with_out path flags f =
  Mutex.lock io_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock io_lock)
    (fun () ->
      let oc = open_out_gen flags 0o644 path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc))

let in_dir file f =
  match Atomic.get out_dir with
  | None -> ()
  | Some d ->
    mkdir_p d;
    f (Filename.concat d (sanitize file))

let append_jsonl file row =
  in_dir file (fun path ->
      with_out path [ Open_wronly; Open_creat; Open_append ] (fun oc ->
          output_string oc (Json.to_string row);
          output_char oc '\n'))

let write_json file v =
  in_dir file (fun path ->
      with_out path [ Open_wronly; Open_creat; Open_trunc ] (fun oc ->
          output_string oc (Json.to_string ~pretty:true v);
          output_char oc '\n'))

let csv_quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let write_csv file ~header rows =
  in_dir file (fun path ->
      with_out path [ Open_wronly; Open_creat; Open_trunc ] (fun oc ->
          let emit row =
            output_string oc (String.concat "," (List.map csv_quote row));
            output_char oc '\n'
          in
          emit header;
          List.iter emit rows))
