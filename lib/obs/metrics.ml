(* Process-wide metric registry.

   Counters and histogram buckets are [Atomic.t]s, so the domain-
   parallel Monte-Carlo runners can record from every worker without
   locks on the hot path; the registry itself (name -> handle) is
   mutated only at registration time, under a mutex, and registration
   is idempotent so module-initialisation order never matters.

   The whole subsystem is off by default.  Every recording entry point
   loads one atomic bool and branches — the engines additionally batch
   their per-run tallies into plain record fields and flush once per
   run, so a disabled build pays (almost) nothing on the event path. *)

let on = Atomic.make false

let enabled () = Atomic.get on

let enable () = Atomic.set on true

let disable () = Atomic.set on false

type counter = {
  c_name : string;
  cell : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_cell : float Atomic.t;
}

type histogram = {
  h_name : string;
  upper : float array;  (* strictly increasing bucket upper bounds *)
  buckets : int Atomic.t array;  (* length upper + 1: last = overflow *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

let registry_lock = Mutex.create ()

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32

let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 8

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 8

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        Hashtbl.add counters_tbl name c;
        c)

let add c delta = if Atomic.get on then ignore (Atomic.fetch_and_add c.cell delta)

let incr c = add c 1

let value c = Atomic.get c.cell

let counter_name c = c.c_name

let gauge name =
  with_lock (fun () ->
      match Hashtbl.find_opt gauges_tbl name with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_cell = Atomic.make 0. } in
        Hashtbl.add gauges_tbl name g;
        g)

let set g x = if Atomic.get on then Atomic.set g.g_cell x

let gauge_value g = Atomic.get g.g_cell

(* Default buckets: powers of two from 1/4 to 2^20, which covers the
   spread times of every network family in the repo (Theta(log n) on
   expanders up to Theta(n^2) on the absolute-diligence family). *)
let default_buckets = Array.init 23 (fun i -> Float.of_int (1 lsl i) /. 4.)

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let histogram ?(buckets = default_buckets) name =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i b -> if i > 0 && buckets.(i - 1) >= b then ok := false)
    buckets;
  if not !ok then
    invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing";
  with_lock (fun () ->
      match Hashtbl.find_opt histograms_tbl name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            upper = Array.copy buckets;
            buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0.;
          }
        in
        Hashtbl.add histograms_tbl name h;
        h)

(* Binary search for the first upper bound >= x. *)
let bucket_index h x =
  let lo = ref 0 and hi = ref (Array.length h.upper) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if h.upper.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let observe h x =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_index h x) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    atomic_add_float h.h_sum x
  end

(* Per-domain shards: plain (unshared) accumulators that a worker
   domain records into without touching the global atomics, merged in
   one batch after the domains join.  Totals are exactly what direct
   recording would have produced — addition commutes — while the hot
   path costs a short physical-equality scan and a field update, and
   allocates only on the first touch of each handle. *)
module Shard = struct
  type ccell = { sc : counter; mutable delta : int }

  type hcell = {
    sh : histogram;
    sh_buckets : int array;
    mutable sh_count : int;
    mutable sh_sum : float;
  }

  type t = { mutable ccells : ccell list; mutable hcells : hcell list }

  let create () = { ccells = []; hcells = [] }

  let add t c delta =
    if Atomic.get on then begin
      match List.find_opt (fun cell -> cell.sc == c) t.ccells with
      | Some cell -> cell.delta <- cell.delta + delta
      | None -> t.ccells <- { sc = c; delta } :: t.ccells
    end

  let incr t c = add t c 1

  let observe t h x =
    if Atomic.get on then begin
      let cell =
        match List.find_opt (fun cell -> cell.sh == h) t.hcells with
        | Some cell -> cell
        | None ->
          let cell =
            {
              sh = h;
              sh_buckets = Array.make (Array.length h.buckets) 0;
              sh_count = 0;
              sh_sum = 0.;
            }
          in
          t.hcells <- cell :: t.hcells;
          cell
      in
      let i = bucket_index h x in
      cell.sh_buckets.(i) <- cell.sh_buckets.(i) + 1;
      cell.sh_count <- cell.sh_count + 1;
      cell.sh_sum <- cell.sh_sum +. x
    end

  (* Flush unconditionally (not gated on [on]): anything accumulated
     was recorded while the subsystem was enabled and must not be lost
     to a disable racing the merge.  Zeroes the shard, so it can be
     reused. *)
  let merge t =
    List.iter
      (fun cell ->
        if cell.delta <> 0 then begin
          ignore (Atomic.fetch_and_add cell.sc.cell cell.delta);
          cell.delta <- 0
        end)
      t.ccells;
    List.iter
      (fun cell ->
        Array.iteri
          (fun i k ->
            if k <> 0 then begin
              ignore (Atomic.fetch_and_add cell.sh.buckets.(i) k);
              cell.sh_buckets.(i) <- 0
            end)
          cell.sh_buckets;
        if cell.sh_count <> 0 then begin
          ignore (Atomic.fetch_and_add cell.sh.h_count cell.sh_count);
          cell.sh_count <- 0
        end;
        if cell.sh_sum <> 0. then begin
          atomic_add_float cell.sh.h_sum cell.sh_sum;
          cell.sh_sum <- 0.
        end)
      t.hcells
end

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters_tbl;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0.) gauges_tbl;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0.)
        histograms_tbl)

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters () =
  with_lock (fun () ->
      List.map (fun (name, c) -> (name, Atomic.get c.cell)) (sorted_bindings counters_tbl))

let gauges () =
  with_lock (fun () ->
      List.map (fun (name, g) -> (name, Atomic.get g.g_cell)) (sorted_bindings gauges_tbl))

let histogram_json h =
  let cells = ref [] in
  Array.iteri
    (fun i b ->
      let le =
        if i < Array.length h.upper then Json.Float h.upper.(i)
        else Json.Float Float.infinity
      in
      cells := Json.Obj [ ("le", le); ("count", Json.Int (Atomic.get b)) ] :: !cells)
    h.buckets;
  Json.Obj
    [
      ("count", Json.Int (Atomic.get h.h_count));
      ("sum", Json.Float (Atomic.get h.h_sum));
      ("buckets", Json.List (List.rev !cells));
    ]

let snapshot () =
  let counters =
    List.map (fun (name, v) -> (name, Json.Int v)) (counters ())
  in
  let gauges = List.map (fun (name, v) -> (name, Json.Float v)) (gauges ()) in
  let histograms =
    with_lock (fun () ->
        List.map
          (fun (name, h) -> (name, histogram_json h))
          (sorted_bindings histograms_tbl))
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]
