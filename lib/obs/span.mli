(** Monotonic-clock timing scopes — profile engine phases and
    Monte-Carlo workers without a profiler.

    Accumulators are atomic and process-wide (same registry discipline
    as {!Metrics}): any domain may time into any span concurrently.
    Timing is gated on {!Metrics.enabled}, so a disabled build pays
    one bool load per scope. *)

type t

val create : string -> t
(** Register (or fetch) the span with this name; idempotent. *)

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its monotonic duration (also on
    exceptions).  When the subsystem is disabled the thunk is invoked
    directly — no clock reads. *)

val record_ns : t -> int -> unit
(** Manually account a duration measured elsewhere. *)

val count : t -> int

val total_s : t -> float

val name : t -> string

val totals : unit -> (string * (int * float)) list
(** Name-sorted [(name, (entries, total seconds))]. *)

val snapshot : unit -> Json.t

val reset : unit -> unit
