(** Structured run artifacts: JSONL, CSV and JSON files under one
    configured output directory.

    Every writer is a silent no-op while no directory is set, so
    experiments and runners emit unconditionally and the user opts in
    with [--obs-out DIR] (or [RUMOR_OBS_OUT]).  File names are
    sanitized to filesystem-safe characters; appends are serialized
    under one process-wide lock so rows from parallel workers never
    interleave mid-line. *)

val set_dir : string option -> unit
(** Configure (and create) the output directory; [None] disables. *)

val dir : unit -> string option

val active : unit -> bool

val sanitize : string -> string
(** The file-name sanitizer used by the writers (alnum, [-_.]
    preserved, everything else mapped to [-]). *)

val append_jsonl : string -> Json.t -> unit
(** [append_jsonl file row] appends one compact JSON line to
    [DIR/file]. *)

val write_json : string -> Json.t -> unit
(** Pretty-printed whole-file write (truncates). *)

val write_csv : string -> header:string list -> string list list -> unit
(** RFC-4180-style quoting for cells containing commas, double quotes
    or newlines. *)
