(** Machine-readable record of one run: what executed, with which
    seed/engine/network, how long it took, and the metric registry at
    the end.  Written as [<id>.manifest.json] next to the other
    artifacts of the configured {!Sink} directory, so every experiment
    and sweep leaves a diffable provenance trail.

    Schema (["rumor-manifest/1"]):
    {v
    { "schema": "rumor-manifest/1",
      "kind":   "experiment" | "sweep" | "simulate" | "trace" | "bench" | ...,
      "id":     "E1",
      "seed":   2020,                     (optional)
      "rng_fingerprint": "ab54a98ceb1f0ad2",  (optional, hex of Checkpoint.fingerprint)
      "engine": "cut",                    (optional)
      "network": "clique",                (optional)
      "n":      128,                      (optional)
      "mode":   "quick" | "full",         (optional)
      "reps":   30,                       (optional)
      "wall_s": 1.25,
      ...extra fields...,
      "metrics": { Metrics.snapshot },    (unless suppressed)
      "spans":   { Span.snapshot } }
    v} *)

val schema : string

type t = {
  kind : string;
  id : string;
  seed : int option;
  rng_fingerprint : int64 option;
  engine : string option;
  network : string option;
  n : int option;
  mode : string option;
  reps : int option;
  wall_s : float;
  extra : (string * Json.t) list;
}

val make :
  kind:string ->
  id:string ->
  ?seed:int ->
  ?rng_fingerprint:int64 ->
  ?engine:string ->
  ?network:string ->
  ?n:int ->
  ?mode:string ->
  ?reps:int ->
  ?extra:(string * Json.t) list ->
  wall_s:float ->
  unit ->
  t

val to_json : ?metrics:Json.t -> ?spans:Json.t -> t -> Json.t

val write : ?with_registry:bool -> t -> unit
(** Write [<id>.manifest.json] into the sink directory (no-op when no
    sink is configured).  [with_registry] (default true) appends the
    current {!Metrics.snapshot} and {!Span.snapshot}. *)
