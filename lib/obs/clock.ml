external now_ns : unit -> int64 = "rumor_obs_monotonic_ns"

let now_s () = Int64.to_float (now_ns ()) *. 1e-9
