type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- rendering --- *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Shortest decimal string that round-trips; non-finite values map to
   JSON-legal tokens our own parser reads back ([null] for NaN, an
   overflowing literal for the infinities). *)
let float_repr x =
  if Float.is_nan x then "null"
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else begin
    let s = Printf.sprintf "%.12g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec render ~pretty ~indent buf v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let seq open_c close_c items emit =
    if items = [] then begin
      Buffer.add_char buf open_c;
      Buffer.add_char buf close_c
    end
    else begin
      Buffer.add_char buf open_c;
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            pad (indent + 2)
          end;
          emit item)
        items;
      if pretty then begin
        Buffer.add_char buf '\n';
        pad indent
      end;
      Buffer.add_char buf close_c
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s ->
    Buffer.add_char buf '"';
    add_escaped buf s;
    Buffer.add_char buf '"'
  | List items ->
    seq '[' ']' items (render ~pretty ~indent:(indent + 2) buf)
  | Obj fields ->
    seq '{' '}' fields (fun (k, v) ->
        Buffer.add_char buf '"';
        add_escaped buf k;
        Buffer.add_string buf (if pretty then "\": " else "\":");
        render ~pretty ~indent:(indent + 2) buf v)

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  render ~pretty ~indent:0 buf v;
  Buffer.contents buf

(* --- parsing --- *)

exception Error of string

let fail pos msg = raise (Error (Printf.sprintf "at offset %d: %s" pos msg))

let parse_exn s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < len && s.[!pos] = c then advance ()
    else fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= len && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= len then fail !pos "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > len then fail !pos "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code ->
                 add_utf8 buf code;
                 pos := !pos + 4
               | None -> fail !pos "bad \\u escape")
             | c -> fail !pos (Printf.sprintf "bad escape %C" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && numeric s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_int =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok)
    in
    if is_int then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* Integer literal too wide for [int]: keep it as a float. *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail start "bad number")
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail start "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            member ()
          | Some '}' -> advance ()
          | _ -> fail !pos "expected ',' or '}'"
        in
        member ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec element () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            element ()
          | Some ']' -> advance ()
          | _ -> fail !pos "expected ',' or ']'"
        in
        element ();
        List (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail !pos "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Error msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

let obj_opt = function Obj fields -> Some fields | _ -> None
