(** Minimal JSON codec for the observability layer.

    Deliberately dependency-free: the subsystem must be loadable from
    every layer of the library (engines included) without dragging in
    an external JSON package.  Only what the sinks and the bench
    report need: render (compact for JSONL, pretty for manifests) and
    a strict parser for reading reports back.

    Non-finite floats have no JSON spelling; this codec renders NaN as
    [null] and the infinities as the overflowing literals [1e999] /
    [-1e999], which {!parse} (like every IEEE [strtod]) reads back as
    the infinities. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact one-line rendering by default — one call per JSONL row.
    [~pretty:true] indents by two spaces for human-facing files. *)

exception Error of string

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document. *)

val parse_exn : string -> t
(** @raise Error on malformed input. *)

(** {1 Accessors} (shape-checked extraction, [None] on mismatch) *)

val member : string -> t -> t option

val to_int_opt : t -> int option
(** Also accepts integral floats (JSON does not distinguish). *)

val to_float_opt : t -> float option

val to_string_opt : t -> string option

val to_list_opt : t -> t list option

val obj_opt : t -> (string * t) list option
