(** Versioned, machine-readable benchmark reports — the perf
    trajectory substrate.

    [bench/main.exe] turns its Bechamel estimates and the engine
    counters into one of these ([BENCH_<rev>.json]); {!compare} diffs
    two reports and flags entries that slowed beyond a tolerance, so a
    regression is one exit code, not a table eyeballing exercise
    ([rumor obs compare A.json B.json] in the CLI, and the CI bench-
    smoke job against the committed baseline).

    Schema (["rumor-bench/1"]):
    {v
    { "schema": "rumor-bench/1",
      "rev": "dev",
      "seed": 2020,
      "mode": "micro",
      "entries": [ { "name": "rumor/async-cut/clique-256",
                     "ns_per_run": 123456.0 }, ... ],
      "counters": { "async_cut.events": 12345, ... },
      "spans": { "experiment.E1": { "count": 1, "total_s": 0.42 }, ... } }
    v} *)

val schema : string

type entry = {
  name : string;
  ns_per_run : float;
}

type t = {
  rev : string;  (** source revision or label the report was taken at *)
  seed : int;
  mode : string;
  entries : entry list;  (** name-sorted micro-bench timings *)
  counters : (string * int) list;  (** name-sorted metric counters *)
  spans : (string * (int * float)) list;  (** name -> (count, total s) *)
}

val make :
  rev:string ->
  seed:int ->
  mode:string ->
  entries:(string * float) list ->
  ?counters:(string * int) list ->
  ?spans:(string * (int * float)) list ->
  unit ->
  t

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Rejects unknown schemas. *)

val write : string -> t -> unit
(** Atomic write (tmp + rename) of the pretty-printed report. *)

val load : string -> (t, string) result

(** {1 Comparison} *)

type delta = {
  entry : string;
  base_ns : float;
  current_ns : float;
  ratio : float;  (** current / base; > 1 is slower *)
}

type comparison = {
  tolerance : float;
  regressions : delta list;  (** ratio > 1 + tolerance *)
  improvements : delta list;  (** ratio < 1 / (1 + tolerance) *)
  stable : delta list;
  only_base : string list;  (** entries that disappeared *)
  only_current : string list;  (** entries with no baseline *)
  counter_drift : (string * int * int) list;
      (** counters whose value changed: (name, base, current) —
          informational (same-seed runs are deterministic, so drift
          means the code path itself changed) *)
}

val compare : ?tolerance:float -> baseline:t -> current:t -> unit -> comparison
(** Default [tolerance] 0.25 (25% slower flags a regression).
    @raise Invalid_argument on a negative tolerance. *)

val has_regression : comparison -> bool
