(* Named timing scopes on the monotonic clock, accumulated in a
   process-wide registry like Metrics' counters: total nanoseconds and
   entry count per name, both atomic so engine phases and Monte-Carlo
   workers on different domains can time themselves concurrently. *)

type t = {
  name : string;
  count : int Atomic.t;
  total_ns : int Atomic.t;
      (* int arithmetic: 62 bits of nanoseconds ~ 146 years, plenty *)
}

let registry_lock = Mutex.create ()

let spans_tbl : (string, t) Hashtbl.t = Hashtbl.create 16

let create name =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt spans_tbl name with
      | Some s -> s
      | None ->
        let s = { name; count = Atomic.make 0; total_ns = Atomic.make 0 } in
        Hashtbl.add spans_tbl name s;
        s)

let record_ns s ns =
  if Metrics.enabled () then begin
    ignore (Atomic.fetch_and_add s.count 1);
    ignore (Atomic.fetch_and_add s.total_ns ns)
  end

let time s f =
  if Metrics.enabled () then begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        record_ns s (Int64.to_int (Int64.sub (Clock.now_ns ()) t0)))
      f
  end
  else f ()

let count s = Atomic.get s.count

let total_s s = float_of_int (Atomic.get s.total_ns) *. 1e-9

let name s = s.name

let totals () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun name s acc -> (name, (Atomic.get s.count, total_s s)) :: acc)
           spans_tbl []))

let reset () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      Hashtbl.iter
        (fun _ s ->
          Atomic.set s.count 0;
          Atomic.set s.total_ns 0)
        spans_tbl)

let snapshot () =
  Json.Obj
    (List.map
       (fun (name, (count, seconds)) ->
         ( name,
           Json.Obj
             [ ("count", Json.Int count); ("total_s", Json.Float seconds) ] ))
       (totals ()))
