(** Public façade: the whole library under one namespace.

    Downstream users depend on [rumor_core] and write
    [Rumor.Gen.clique 64], [Rumor.Async_cut.run ...], etc.  Each alias
    below points at the module whose interface documents it. *)

(* Utility substrate *)
module Bitset = Rumor_util.Bitset
module Heap = Rumor_util.Heap
module Fenwick = Rumor_util.Fenwick
module Table = Rumor_util.Table
module Ascii_plot = Rumor_util.Ascii_plot
module Env = Rumor_util.Env
module Crc32 = Rumor_util.Crc32
module Net = Rumor_util.Net

(* Randomness *)
module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist
module Alias = Rumor_rng.Alias
module Splitmix64 = Rumor_rng.Splitmix64
module Xoshiro256 = Rumor_rng.Xoshiro256

(* Statistics *)
module Descriptive = Rumor_stats.Descriptive
module Quantile = Rumor_stats.Quantile
module Histogram = Rumor_stats.Histogram
module Regression = Rumor_stats.Regression
module Bootstrap = Rumor_stats.Bootstrap
module Summary = Rumor_stats.Summary
module Ks = Rumor_stats.Ks
module Stream = Rumor_stats.Stream
module Adaptive = Rumor_stats.Adaptive

(* Graphs *)
module Graph = Rumor_graph.Graph
module Builder = Rumor_graph.Builder
module Gen = Rumor_graph.Gen
module Degree_seq = Rumor_graph.Degree_seq
module Traverse = Rumor_graph.Traverse
module Unionfind = Rumor_graph.Unionfind
module Cut = Rumor_graph.Cut
module Metrics = Rumor_graph.Metrics
module Spectral = Rumor_graph.Spectral

(* Dynamic networks *)
module Dynet = Rumor_dynamic.Dynet
module Paper_h = Rumor_dynamic.Paper_h
module Diligent = Rumor_dynamic.Diligent
module Absolute = Rumor_dynamic.Absolute
module Dichotomy = Rumor_dynamic.Dichotomy
module Alternating = Rumor_dynamic.Alternating
module Markovian = Rumor_dynamic.Markovian
module Mobile = Rumor_dynamic.Mobile
module Adversary = Rumor_dynamic.Adversary
module Family = Rumor_dynamic.Family

(* Faults & hardened harness *)
module Fault_plan = Rumor_faults.Fault_plan
module Checkpoint = Rumor_faults.Checkpoint
module Inject = Rumor_faults.Inject

(* Supervised campaign layer: durable WAL journal, replicate
   supervision (deadlines, retry/backoff, failure budget), crash-safe
   campaign runner with graceful shutdown and bit-identical resume. *)
module Wal = Rumor_harness.Wal
module Supervisor = Rumor_harness.Supervisor
module Campaign = Rumor_harness.Campaign

(* Multi-process campaign coordination: wire protocol, lease/epoch
   fencing, worker loop and the supervising coordinator. *)
module Proto = Rumor_harness.Proto
module Lease = Rumor_harness.Lease
module Worker = Rumor_harness.Worker
module Coordinator = Rumor_harness.Coordinator
module Netchaos = Rumor_harness.Netchaos
module Provenance = Rumor_harness.Provenance

(* Query service: memoized spread-time daemon (Serve.Query,
   Serve.Store, Serve.Server, Serve.Loadgen). *)
module Serve = Rumor_serve

(* Parallelism: the chunked Domain pool behind every Monte-Carlo
   runner (Pool.nproc, Pool.set_default_jobs, Pool.run). *)
module Pool = Rumor_par.Pool

(* Simulation *)
module Protocol = Rumor_sim.Protocol
module Async_result = Rumor_sim.Async_result
module Async_cut = Rumor_sim.Async_cut
module Async_tick = Rumor_sim.Async_tick
module Sync = Rumor_sim.Sync
module Flooding = Rumor_sim.Flooding
module Run = Rumor_sim.Run

(* Bounds *)
module Bounds = Rumor_bounds.Bounds
module Giakkoupis = Rumor_bounds.Giakkoupis
module Static_bounds = Rumor_bounds.Static_bounds
module Limit_laws = Rumor_bounds.Limit_laws

(* Observability: Obs.Metrics, Obs.Span, Obs.Sink, Obs.Run_manifest,
   Obs.Bench_report, Obs.Json, Obs.Clock.  (Not flattened into this
   namespace: [Metrics] already names the graph-metrics module.) *)
module Obs = Rumor_obs

(* Extensions *)
module Combinators = Rumor_dynamic.Combinators
module Trace = Rumor_sim.Trace
module Export = Rumor_graph.Export
module Coupling = Rumor_sim.Coupling
module Estimate = Rumor_sim.Estimate
module Eigen = Rumor_graph.Eigen
module Walk = Rumor_sim.Walk
module Graph6 = Rumor_graph.Graph6
