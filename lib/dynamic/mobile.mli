(** Mobile-agent proximity networks (Pettarin et al. [22], Lam et al.
    [20], cited in the paper's related work): agents perform lazy
    random walks on a torus grid and two agents are linked whenever
    their Chebyshev (L-infinity) torus distance is at most a radius.

    This family is often disconnected — exactly the situation the
    paper's convention [rho(G) = 0] and [ceil(Phi(G)) = 0] covers — so
    it doubles as a robustness workload for the simulators and the
    bound calculators. *)

val network :
  agents:int -> width:int -> height:int -> radius:int -> Dynet.t
(** One node per agent.  Each step every agent stays put or moves to
    one of its 4 lattice neighbours, uniformly (probability 1/5
    each).  Initial positions are uniform.
    @raise Invalid_argument on non-positive dimensions, agent count,
    or radius. *)

val torus_distance : width:int -> height:int -> (int * int) -> (int * int) -> int
(** Chebyshev distance on the torus (exposed for tests). *)
