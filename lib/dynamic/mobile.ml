open Rumor_rng
open Rumor_graph

let torus_distance ~width ~height (x1, y1) (x2, y2) =
  let axis_dist len a b =
    let d = abs (a - b) in
    min d (len - d)
  in
  max (axis_dist width x1 x2) (axis_dist height y1 y2)

let network ~agents ~width ~height ~radius =
  if agents < 1 then invalid_arg "Mobile.network: need at least one agent";
  if width < 1 || height < 1 then invalid_arg "Mobile.network: bad grid size";
  if radius < 1 then invalid_arg "Mobile.network: need radius >= 1";
  {
    Dynet.n = agents;
    name =
      Printf.sprintf "mobile-agents(m=%d,%dx%d,r=%d)" agents width height radius;
    source_hint = None;
    spawn =
      (fun rng ->
        let pos =
          Array.init agents (fun _ -> (Rng.int rng width, Rng.int rng height))
        in
        let proximity_graph () =
          let b = Builder.create agents in
          for i = 0 to agents - 1 do
            for j = i + 1 to agents - 1 do
              if torus_distance ~width ~height pos.(i) pos.(j) <= radius then
                Builder.add_edge_exn b i j
            done
          done;
          Builder.freeze b
        in
        let move () =
          for i = 0 to agents - 1 do
            let x, y = pos.(i) in
            pos.(i) <-
              (match Rng.int rng 5 with
              | 0 -> (x, y)
              | 1 -> ((x + 1) mod width, y)
              | 2 -> ((x + width - 1) mod width, y)
              | 3 -> (x, (y + 1) mod height)
              | 4 -> (x, (y + height - 1) mod height)
              | _ -> assert false)
          done
        in
        Dynet.make_instance (fun ~step ~informed:_ ->
            if step > 0 then move ();
            (* Positions change almost surely, so report changed
               conservatively. *)
            Dynet.info_of_graph ~changed:true (proximity_graph ())));
  }
