open Rumor_util
open Rumor_graph

(* Wire one side: clique when at most budget+1 nodes, circulant of the
   (even) budget degree otherwise. *)
let wire_side builder ids budget =
  let m = Array.length ids in
  if m <= 1 then ()
  else if m <= budget + 1 then
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        ignore (Builder.add_edge builder ids.(i) ids.(j))
      done
    done
  else begin
    let d = min budget (m - 1) in
    let d = if d mod 2 = 1 then d - 1 else d in
    let d = max 2 d in
    for s = 1 to d / 2 do
      for i = 0 to m - 1 do
        ignore (Builder.add_edge builder ids.(i) ids.((i + s) mod m))
      done
    done
  end

let greedy_min_cut ~n ~degree_budget =
  if degree_budget < 2 then
    invalid_arg "Adversary.greedy_min_cut: need degree_budget >= 2";
  if n < 8 then invalid_arg "Adversary.greedy_min_cut: need n >= 8";
  let budget = if degree_budget mod 2 = 1 then degree_budget - 1 else degree_budget in
  {
    Dynet.n;
    name = Printf.sprintf "greedy-adversary(n=%d,Delta=%d)" n budget;
    source_hint = Some 0;
    spawn =
      (fun _rng ->
        let prev = ref None in
        Dynet.make_instance (fun ~step:_ ~informed ->
            let ins = Array.make (Bitset.cardinal informed) 0 in
            let outs = Array.make (n - Bitset.cardinal informed) 0 in
            let ii = ref 0 and oi = ref 0 in
            for u = 0 to n - 1 do
              if Bitset.mem informed u then begin
                ins.(!ii) <- u;
                incr ii
              end
              else begin
                outs.(!oi) <- u;
                incr oi
              end
            done;
            (* Before the source is injected the informed side can be
               empty: expose any connected budget-bounded graph. *)
            let builder = Builder.create n in
            if Array.length ins = 0 || Array.length outs = 0 then begin
              let all = Array.init n (fun i -> i) in
              wire_side builder all budget
            end
            else begin
              wire_side builder ins budget;
              wire_side builder outs budget;
              (* The single bridge: both endpoints already carry the
                 budget degree inside their side where possible, which
                 minimises 1/d_u + 1/d_v. *)
              ignore (Builder.add_edge builder ins.(0) outs.(0))
            end;
            let graph = Builder.freeze builder in
            let rho_abs = 1. /. float_of_int (budget + 1) in
            (* Diff against the previous exposure: the cut only moves
               when the informed set grew, so most steps are genuinely
               unchanged and the rest carry a small exact delta. *)
            let info =
              match !prev with
              | None -> Dynet.info_of_graph ~changed:true ~rho_abs graph
              | Some p ->
                let added, removed = Graph.diff p graph in
                if Array.length added = 0 && Array.length removed = 0 then
                  (* Re-expose the previous value so "unchanged" means
                     physically identical. *)
                  Dynet.info_of_graph ~changed:false ~rho_abs p
                else begin
                  let d = Dynet.make_delta ~added ~removed in
                  let delta =
                    if Dynet.delta_size d > 1 + (Graph.m graph / 2) then None
                    else Some d
                  in
                  Dynet.info_of_graph ~changed:true ?delta ~rho_abs graph
                end
            in
            prev := Some info.Dynet.graph;
            info));
  }
