open Rumor_rng
open Rumor_graph

let intermittent ~every (base : Dynet.t) =
  if every < 1 then invalid_arg "Combinators.intermittent: need every >= 1";
  let blank = Gen.empty base.Dynet.n in
  {
    Dynet.n = base.Dynet.n;
    name = Printf.sprintf "intermittent(%d, %s)" every base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        Dynet.make_instance (fun ~step ~informed ->
            if step mod every = 0 then begin
              let info = Dynet.next inner ~informed in
              (* Exposed after a blank stretch: always a change unless
                 the very first exposure repeats... conservatively
                 changed except when every = 1 and the base reports
                 unchanged. *)
              let changed = if every = 1 then info.Dynet.changed else true in
              { info with Dynet.changed }
            end
            else
              (* Blank step: a change only right after an exposure. *)
              Dynet.info_of_graph
                ~changed:((step - 1) mod every = 0)
                ~phi:0. ~rho:0. ~rho_abs:0. blank))
  }

let with_edge_dropout ~p (base : Dynet.t) =
  if p < 0. || p > 1. then
    invalid_arg "Combinators.with_edge_dropout: p outside [0, 1]";
  {
    Dynet.n = base.Dynet.n;
    name = Printf.sprintf "dropout(%.2g, %s)" p base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        Dynet.make_instance (fun ~step:_ ~informed ->
            let info = Dynet.next inner ~informed in
            let g = info.Dynet.graph in
            let b = Builder.create (Graph.n g) in
            Graph.iter_edges
              (fun u v ->
                if not (Rng.bernoulli rng p) then Builder.add_edge_exn b u v)
              g;
            Dynet.info_of_graph ~changed:true (Builder.freeze b)))
  }

let with_node_outage ~p (base : Dynet.t) =
  if p < 0. || p > 1. then
    invalid_arg "Combinators.with_node_outage: p outside [0, 1]";
  {
    Dynet.n = base.Dynet.n;
    name = Printf.sprintf "node-outage(%.2g, %s)" p base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        let offline = Array.make base.Dynet.n false in
        Dynet.make_instance (fun ~step:_ ~informed ->
            let info = Dynet.next inner ~informed in
            let g = info.Dynet.graph in
            for u = 0 to Graph.n g - 1 do
              offline.(u) <- Rng.bernoulli rng p
            done;
            let b = Builder.create (Graph.n g) in
            Graph.iter_edges
              (fun u v ->
                if (not offline.(u)) && not offline.(v) then
                  Builder.add_edge_exn b u v)
              g;
            Dynet.info_of_graph ~changed:true (Builder.freeze b)))
  }

let with_churn ~crash ~recover (base : Dynet.t) =
  if crash < 0. || crash > 1. then
    invalid_arg "Combinators.with_churn: crash outside [0, 1]";
  if recover < 0. || recover > 1. then
    invalid_arg "Combinators.with_churn: recover outside [0, 1]";
  let n = base.Dynet.n in
  {
    Dynet.n;
    name = Printf.sprintf "churn(%.2g, %.2g, %s)" crash recover base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        (* Persistent per-node crash/recovery Markov chain (unlike
           with_node_outage's memoryless resampling): everyone starts
           online, each step boundary flips each node with its
           transition probability.  A crashed node keeps its rumor but
           loses every edge, so it neither spreads nor receives. *)
        let offline = Array.make n false in
        Dynet.make_instance (fun ~step ~informed ->
            let info = Dynet.next inner ~informed in
            if step > 0 then
              for u = 0 to n - 1 do
                if offline.(u) then begin
                  if Rng.bernoulli rng recover then offline.(u) <- false
                end
                else if Rng.bernoulli rng crash then offline.(u) <- true
              done;
            let g = info.Dynet.graph in
            let b = Builder.create (Graph.n g) in
            Graph.iter_edges
              (fun u v ->
                if (not offline.(u)) && not offline.(v) then
                  Builder.add_edge_exn b u v)
              g;
            Dynet.info_of_graph ~changed:true (Builder.freeze b)))
  }

let with_partition ~from_step ~until_step ~side (base : Dynet.t) =
  if until_step <= from_step then
    invalid_arg "Combinators.with_partition: empty window";
  {
    Dynet.n = base.Dynet.n;
    name =
      Printf.sprintf "partition([%d, %d), %s)" from_step until_step
        base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        Dynet.make_instance (fun ~step ~informed ->
            let info = Dynet.next inner ~informed in
            if step >= from_step && step < until_step then begin
              let g = info.Dynet.graph in
              let b = Builder.create (Graph.n g) in
              Graph.iter_edges
                (fun u v -> if side u = side v then Builder.add_edge_exn b u v)
                g;
              Dynet.info_of_graph ~changed:true (Builder.freeze b)
            end
            else
              (* Leaving the window restores the cross edges even when
                 the base graph itself did not change. *)
              { info with Dynet.changed = info.Dynet.changed || step = until_step }))
  }

let interleave nets =
  match nets with
  | [] -> invalid_arg "Combinators.interleave: empty list"
  | (first : Dynet.t) :: rest ->
    let n = first.Dynet.n in
    List.iter
      (fun (net : Dynet.t) ->
        if net.Dynet.n <> n then
          invalid_arg "Combinators.interleave: node-count mismatch")
      rest;
    let arr = Array.of_list nets in
    {
      Dynet.n;
      name =
        Printf.sprintf "interleave(%s)"
          (String.concat ", " (List.map (fun (x : Dynet.t) -> x.Dynet.name) nets));
      source_hint = first.Dynet.source_hint;
      spawn =
        (fun rng ->
          let instances =
            Array.map (fun (net : Dynet.t) -> net.Dynet.spawn (Rng.split rng)) arr
          in
          Dynet.make_instance (fun ~step ~informed ->
              let info =
                Dynet.next instances.(step mod Array.length instances) ~informed
              in
              (* Consecutive exposed graphs come from different
                 networks, so report changed conservatively. *)
              { info with Dynet.changed = true }));
    }

let map_graph ?name f (base : Dynet.t) =
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "map(%s)" base.Dynet.name
  in
  {
    Dynet.n = base.Dynet.n;
    name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        Dynet.make_instance (fun ~step ~informed ->
            let info = Dynet.next inner ~informed in
            Dynet.info_of_graph ~changed:true (f ~step info.Dynet.graph)))
  }
