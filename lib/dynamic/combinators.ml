open Rumor_rng
open Rumor_graph

let intermittent ~every (base : Dynet.t) =
  if every < 1 then invalid_arg "Combinators.intermittent: need every >= 1";
  let blank = Gen.empty base.Dynet.n in
  {
    Dynet.n = base.Dynet.n;
    name = Printf.sprintf "intermittent(%d, %s)" every base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        let last_exposed = ref None in
        Dynet.make_instance (fun ~step ~informed ->
            if step mod every = 0 then begin
              let info = Dynet.next inner ~informed in
              last_exposed := Some info.Dynet.graph;
              if every = 1 then
                (* Pure passthrough: consecutive inner steps, so the
                   inner delta stays valid. *)
                { info with Dynet.changed = info.Dynet.changed }
              else if step = 0 then { info with Dynet.changed = true; delta = None }
              else
                (* Exposed after a blank stretch: every edge of the new
                   exposure appears at once. *)
                {
                  info with
                  Dynet.changed = true;
                  delta =
                    Some
                      (Dynet.make_delta
                         ~added:(Graph.edges info.Dynet.graph)
                         ~removed:[||]);
                }
            end
            else if (step - 1) mod every = 0 then
              (* Blank step right after an exposure: its edges vanish. *)
              let removed =
                match !last_exposed with Some g -> Graph.edges g | None -> [||]
              in
              Dynet.info_of_graph ~changed:true
                ~delta:(Dynet.make_delta ~added:[||] ~removed)
                ~phi:0. ~rho:0. ~rho_abs:0. blank
            else
              Dynet.info_of_graph ~changed:false ~phi:0. ~rho:0. ~rho_abs:0.
                blank))
  }

let with_edge_dropout ~p (base : Dynet.t) =
  if p < 0. || p > 1. then
    invalid_arg "Combinators.with_edge_dropout: p outside [0, 1]";
  {
    Dynet.n = base.Dynet.n;
    name = Printf.sprintf "dropout(%.2g, %s)" p base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        Dynet.make_instance (fun ~step:_ ~informed ->
            let info = Dynet.next inner ~informed in
            let g = info.Dynet.graph in
            let b = Builder.create (Graph.n g) in
            Graph.iter_edges
              (fun u v ->
                if not (Rng.bernoulli rng p) then Builder.add_edge_exn b u v)
              g;
            Dynet.info_of_graph ~changed:true (Builder.freeze b)))
  }

let with_node_outage ~p (base : Dynet.t) =
  if p < 0. || p > 1. then
    invalid_arg "Combinators.with_node_outage: p outside [0, 1]";
  {
    Dynet.n = base.Dynet.n;
    name = Printf.sprintf "node-outage(%.2g, %s)" p base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        let offline = Array.make base.Dynet.n false in
        Dynet.make_instance (fun ~step:_ ~informed ->
            let info = Dynet.next inner ~informed in
            let g = info.Dynet.graph in
            for u = 0 to Graph.n g - 1 do
              offline.(u) <- Rng.bernoulli rng p
            done;
            let b = Builder.create (Graph.n g) in
            Graph.iter_edges
              (fun u v ->
                if (not offline.(u)) && not offline.(v) then
                  Builder.add_edge_exn b u v)
              g;
            Dynet.info_of_graph ~changed:true (Builder.freeze b)))
  }

let with_churn ~crash ~recover (base : Dynet.t) =
  if crash < 0. || crash > 1. then
    invalid_arg "Combinators.with_churn: crash outside [0, 1]";
  if recover < 0. || recover > 1. then
    invalid_arg "Combinators.with_churn: recover outside [0, 1]";
  let n = base.Dynet.n in
  {
    Dynet.n;
    name = Printf.sprintf "churn(%.2g, %.2g, %s)" crash recover base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        (* Persistent per-node crash/recovery Markov chain (unlike
           with_node_outage's memoryless resampling): everyone starts
           online, each step boundary flips each node with its
           transition probability.  A crashed node keeps its rumor but
           loses every edge, so it neither spreads nor receives. *)
        let offline = Array.make n false in
        Dynet.make_instance (fun ~step ~informed ->
            let info = Dynet.next inner ~informed in
            if step > 0 then
              for u = 0 to n - 1 do
                if offline.(u) then begin
                  if Rng.bernoulli rng recover then offline.(u) <- false
                end
                else if Rng.bernoulli rng crash then offline.(u) <- true
              done;
            let g = info.Dynet.graph in
            let b = Builder.create (Graph.n g) in
            Graph.iter_edges
              (fun u v ->
                if (not offline.(u)) && not offline.(v) then
                  Builder.add_edge_exn b u v)
              g;
            Dynet.info_of_graph ~changed:true (Builder.freeze b)))
  }

let with_partition ~from_step ~until_step ~side (base : Dynet.t) =
  if until_step <= from_step then
    invalid_arg "Combinators.with_partition: empty window";
  {
    Dynet.n = base.Dynet.n;
    name =
      Printf.sprintf "partition([%d, %d), %s)" from_step until_step
        base.Dynet.name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        let prev_exposed = ref None in
        (* Describe [g] relative to the previously exposed graph: an
           exact diff-based delta (capped: past half the edge count a
           rebuild is cheaper), and an honest [changed] flag. *)
        let describe base_info g =
          let out =
            match !prev_exposed with
            | None -> { base_info with Dynet.graph = g; changed = true; delta = None }
            | Some p ->
              let added, removed = Graph.diff p g in
              if Array.length added = 0 && Array.length removed = 0 then
                { base_info with Dynet.graph = p; changed = false; delta = None }
              else begin
                let d = Dynet.make_delta ~added ~removed in
                let delta =
                  if Dynet.delta_size d > 1 + (Graph.m g / 2) then None
                  else Some d
                in
                { base_info with Dynet.graph = g; changed = true; delta }
              end
          in
          prev_exposed := Some out.Dynet.graph;
          out
        in
        Dynet.make_instance (fun ~step ~informed ->
            let info = Dynet.next inner ~informed in
            if step >= from_step && step < until_step then begin
              match !prev_exposed with
              | Some g when (not info.Dynet.changed) && step > from_step ->
                (* Inner unchanged strictly inside the window: the
                   filtered graph is unchanged too; skip the rebuild. *)
                Dynet.info_of_graph ~changed:false g
              | _ ->
                let g0 = info.Dynet.graph in
                let b = Builder.create (Graph.n g0) in
                Graph.iter_edges
                  (fun u v -> if side u = side v then Builder.add_edge_exn b u v)
                  g0;
                (* The filter invalidates the inner analytic values, so
                   start from a bare info. *)
                describe (Dynet.info_of_graph g0) (Builder.freeze b)
            end
            else if step = until_step then
              (* Leaving the window restores the cross edges even when
                 the base graph itself did not change; diff against the
                 last filtered exposure. *)
              describe info info.Dynet.graph
            else begin
              (* Outside the window: consecutive inner exposures, so
                 the inner delta passes through unchanged. *)
              prev_exposed := Some info.Dynet.graph;
              info
            end))
  }

let interleave nets =
  match nets with
  | [] -> invalid_arg "Combinators.interleave: empty list"
  | (first : Dynet.t) :: rest ->
    let n = first.Dynet.n in
    List.iter
      (fun (net : Dynet.t) ->
        if net.Dynet.n <> n then
          invalid_arg "Combinators.interleave: node-count mismatch")
      rest;
    let arr = Array.of_list nets in
    {
      Dynet.n;
      name =
        Printf.sprintf "interleave(%s)"
          (String.concat ", " (List.map (fun (x : Dynet.t) -> x.Dynet.name) nets));
      source_hint = first.Dynet.source_hint;
      spawn =
        (fun rng ->
          let instances =
            Array.map (fun (net : Dynet.t) -> net.Dynet.spawn (Rng.split rng)) arr
          in
          Dynet.make_instance (fun ~step ~informed ->
              let info =
                Dynet.next instances.(step mod Array.length instances) ~informed
              in
              (* Consecutive exposed graphs come from different
                 networks: report changed conservatively, and drop the
                 inner delta — it describes the inner network's own
                 previous graph, not the one exposed last step. *)
              { info with Dynet.changed = true; delta = None }));
    }

let map_graph ?name f (base : Dynet.t) =
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "map(%s)" base.Dynet.name
  in
  {
    Dynet.n = base.Dynet.n;
    name;
    source_hint = base.Dynet.source_hint;
    spawn =
      (fun rng ->
        let inner = base.Dynet.spawn rng in
        Dynet.make_instance (fun ~step ~informed ->
            let info = Dynet.next inner ~informed in
            Dynet.info_of_graph ~changed:true (f ~step info.Dynet.graph)))
  }
