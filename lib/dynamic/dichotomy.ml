open Rumor_util
open Rumor_rng
open Rumor_graph

let g1 ~n =
  if n < 4 then invalid_arg "Dichotomy.g1: need n >= 4";
  let initial = Gen.clique_with_pendant n in
  let later = Gen.two_cliques_bridged n in
  (* The single switch at step 1, diffed once at construction. *)
  let switch = Dynet.delta_of_graphs initial later in
  {
    Dynet.n = n + 1;
    name = Printf.sprintf "G1(n=%d)" n;
    source_hint = Some n;
    spawn =
      (fun _rng ->
        Dynet.make_instance (fun ~step ~informed:_ ->
            if step = 0 then Dynet.info_of_graph ~changed:true initial
            else if step = 1 then
              Dynet.info_of_graph ~changed:true ?delta:switch later
            else Dynet.info_of_graph ~changed:false later));
  }

let star_graph ~n ~center =
  if center < 0 || center > n then invalid_arg "Dichotomy.star_graph: bad center";
  let b = Builder.create (n + 1) in
  for v = 0 to n do
    if v <> center then Builder.add_edge_exn b center v
  done;
  Builder.freeze b

let g2 ~n =
  if n < 2 then invalid_arg "Dichotomy.g2: need n >= 2";
  let total = n + 1 in
  (* The star is 1-diligent, absolutely 1-diligent and has
     conductance 1. *)
  let star_info ?delta ~changed center =
    Dynet.info_of_graph ~changed ?delta ~phi:1.0 ~rho:1.0 ~rho_abs:1.0
      (star_graph ~n ~center)
  in
  (* Recentering c -> c' keeps the edge (c, c') and swaps the remaining
     n - 1 spokes: an O(n) exact delta whose only degree changes are at
     the two centres. *)
  let recenter_delta ~old_c ~new_c =
    let removed = Array.make (n - 1) (0, 0)
    and added = Array.make (n - 1) (0, 0) in
    let k = ref 0 in
    for v = 0 to n do
      if v <> old_c && v <> new_c then begin
        removed.(!k) <- (old_c, v);
        added.(!k) <- (new_c, v);
        incr k
      end
    done;
    Dynet.make_delta ~added ~removed
  in
  {
    Dynet.n = total;
    name = Printf.sprintf "G2(n=%d)" n;
    source_hint = Some 0;
    spawn =
      (fun rng ->
        let center = ref total in
        (* Initial centre is node n; leaf 0 is the hinted source. *)
        Dynet.make_instance (fun ~step ~informed ->
            if step = 0 then begin
              center := n;
              star_info ~changed:true n
            end
            else begin
              (* Replace the centre by an uninformed node if any,
                 otherwise by a random other node. *)
              let uninformed =
                let acc = ref [] in
                for u = total - 1 downto 0 do
                  if (not (Bitset.mem informed u)) && u <> !center then
                    acc := u :: !acc
                done;
                !acc
              in
              let next_center =
                match uninformed with
                | [] ->
                  let rec pick () =
                    let c = Rng.int rng total in
                    if c = !center then pick () else c
                  in
                  pick ()
                | l -> Rng.choose rng (Array.of_list l)
              in
              let changed = next_center <> !center in
              let delta =
                if changed then
                  Some (recenter_delta ~old_c:!center ~new_c:next_center)
                else None
              in
              center := next_center;
              star_info ?delta ~changed next_center
            end))
  }
