(** The [H_{k,Delta}(A, B)] construction of Section 4: a string of
    [k+1] complete bipartite clusters of size [Delta] threaded between
    two 4-regular expanders — the gadget whose cuts make the
    Theorem 1.1 upper bound tight.

    Structure (paper, two steps):
    - clusters [S_0 subset A] and [S_1, ..., S_k subset B], each of
      size [Delta], consecutive clusters completely joined;
    - a random 4-regular expander on [A \ S_0] with every node of
      [S_0] attached to [Delta] distinct expander nodes (degree gain
      per expander node bounded by a constant), and symmetrically for
      [S_k] into [B \ (S_1 ∪ ... ∪ S_k)]. *)

open Rumor_rng
open Rumor_graph

type analysis = {
  phi_estimate : float;
      (** [Theta(Delta^2 / (k Delta^2 + n))] (Observation 4.1),
          evaluated with constant 1 *)
  rho_estimate : float;  (** [Theta(1/Delta)], evaluated as [1/Delta] *)
  clusters : int array array;
      (** [clusters.(i)] is [S_i], for [i = 0..k] *)
}

val min_side_a : k:int -> delta:int -> int
(** Smallest admissible [|A|]. *)

val min_side_b : k:int -> delta:int -> int
(** Smallest admissible [|B|]. *)

val build :
  Rng.t -> universe:int -> a:int array -> b:int array -> k:int -> delta:int ->
  Graph.t * analysis
(** [build rng ~universe ~a ~b ~k ~delta] constructs
    [H_{k,delta}(A, B)] as a graph over [universe] nodes; node ids
    outside [a] and [b] are left isolated (they never occur when the
    dynamic family calls this with [A ∪ B = V]).
    @raise Invalid_argument if the sides are too small, overlap, or
    repeat ids. *)

val default_k : int -> int
(** The paper's [k = Theta(log n / log log n)], clamped to [>= 1]. *)
