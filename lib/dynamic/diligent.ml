open Rumor_util

let delta_of_rho rho =
  if rho <= 0. || rho > 1. then invalid_arg "Diligent.delta_of_rho: need 0 < rho <= 1";
  int_of_float (Float.ceil (1. /. rho))

let admissible_k ~n ~rho ~k =
  let delta = delta_of_rho rho in
  let a0 = n / 4 in
  let b0 = n - a0 in
  a0 >= Paper_h.min_side_a ~k ~delta && b0 >= Paper_h.min_side_b ~k ~delta

let admissible ~n ~rho =
  rho > 0. && rho <= 1. && admissible_k ~n ~rho ~k:(Paper_h.default_k n)

let spread_lower_bound ~n ~rho ~k =
  float_of_int n /. (4. *. float_of_int k *. float_of_int (delta_of_rho rho))

let network ?k ~n ~rho () =
  let k = match k with Some k -> k | None -> Paper_h.default_k n in
  if not (admissible_k ~n ~rho ~k) then
    invalid_arg
      (Printf.sprintf "Diligent.network: (n=%d, rho=%g, k=%d) not admissible" n
         rho k);
  let delta = delta_of_rho rho in
  let a0_size = n / 4 in
  (* The paper rebuilds while |B| >= n/4; at finite sizes the gadget
     additionally needs its structural minimum on the B side, so the
     rebuild floor is the max of the two. *)
  let rebuild_floor = max a0_size (Paper_h.min_side_b ~k ~delta) in
  let spawn rng =
    (* Per-run mutable state: the current B-side and the current
       graph. *)
    let in_b = Bitset.create n in
    for u = a0_size to n - 1 do
      ignore (Bitset.add in_b u)
    done;
    let current = ref None in
    let rebuild () =
      let b_arr = Array.of_list (Bitset.to_list in_b) in
      let a_arr =
        let out = Array.make (n - Array.length b_arr) 0 in
        let idx = ref 0 in
        for u = 0 to n - 1 do
          if not (Bitset.mem in_b u) then begin
            out.(!idx) <- u;
            incr idx
          end
        done;
        out
      in
      let graph, analysis =
        Paper_h.build rng ~universe:n ~a:a_arr ~b:b_arr ~k ~delta
      in
      current := Some (graph, analysis);
      (graph, analysis)
    in
    let info_of ?edge_delta (graph, (analysis : Paper_h.analysis)) ~changed =
      {
        Dynet.graph;
        changed;
        delta = edge_delta;
        phi = Some analysis.phi_estimate;
        rho = Some analysis.rho_estimate;
        rho_abs = Some (1. /. (2. *. float_of_int delta));
      }
    in
    Dynet.make_instance (fun ~step ~informed ->
        if step = 0 then info_of (rebuild ()) ~changed:true
        else begin
          let before = Bitset.cardinal in_b in
          (* B_{t} = B_{t-1} \ I_{t}. *)
          Bitset.iter
            (fun u -> if Bitset.mem in_b u then ignore (Bitset.remove in_b u))
            informed;
          let after = Bitset.cardinal in_b in
          let shrank = after < before in
          if after >= rebuild_floor && shrank then begin
            let prev =
              match !current with Some (g, _) -> Some g | None -> None
            in
            let ((graph, _) as cur) = rebuild () in
            (* Rewirings are usually wholesale, so cap the diff: past the
               cap a full rebuild is cheaper than replaying the delta. *)
            let edge_delta =
              match prev with
              | None -> None
              | Some p ->
                Dynet.delta_of_graphs
                  ~max_edges:(1 + (Rumor_graph.Graph.m graph / 2))
                  p graph
            in
            info_of ?edge_delta cur ~changed:true
          end
          else begin
            match !current with
            | Some cur -> info_of cur ~changed:false
            | None -> assert false
          end
        end)
  in
  {
    Dynet.n;
    name = Printf.sprintf "diligent-G(n=%d,rho=%.4g,k=%d)" n rho k;
    source_hint = Some 0;
    spawn;
  }
