(** Network construction from flat, serializable parameters.

    One record names every shipped family with its knobs; {!build}
    instantiates the {!Dynet.t}.  This is the construction path shared
    by the CLI front end ([-N]/[--network] and friends) and the serve
    layer, whose cached queries must rebuild {e exactly} the network
    the offline command would have: randomized families ([regular],
    [er]) draw from [Rng.create seed], so a [params] value is a
    complete, reproducible network description. *)

type params = {
  family : string;  (** one of {!known} (case-insensitive) *)
  n : int;  (** number of nodes *)
  rho : float;  (** diligence parameter of the adaptive families *)
  degree : int;  (** degree for [regular] *)
  p : float;  (** edge/birth probability ([er], [markovian]) *)
  q : float;  (** edge death probability ([markovian]) *)
  seed : int;  (** RNG seed for the randomized constructions *)
}

val default : family:string -> n:int -> params
(** The CLI's default knobs: [rho = 0.25], [degree = 8], [p = 0.05],
    [q = 0.2], [seed = 2020]. *)

val known : string list
(** Every family {!build} accepts, lower-case. *)

val is_known : string -> bool

val build : params -> Dynet.t
(** @raise Failure on an unknown family name. *)

val static_graph : params -> Rumor_graph.Graph.t option
(** The exact graph a {e static} family simulates ([clique], [star],
    [cycle], [path], [hypercube], [regular], [er] — randomized ones
    regenerate from [Rng.create seed], so this is bit-identical to
    what {!build} wraps); [None] for the dynamic families.  This is
    the control-variate anchor for the adaptive runner
    ({!Rumor_sim.Run.async_spread_sweep_adaptive}'s [?control]): a
    closed-form Rao–Blackwell replay is only sound against the very
    graph the replicates ran on. *)
