(** The two dynamic networks of Figure 1, exhibiting the
    synchronous/asynchronous dichotomies of Theorem 1.7.

    [G1] (Figure 1a): [G(0)] is an [n]-clique with a pendant edge
    [{0, n}]; node [n] (the pendant) knows the rumor.  Every later step
    is two equally-sized bridged cliques with node [0] on the left and
    node [n] on the right.  Synchronous spreads in [Theta(log n)]
    (round 0 deterministically pushes across the pendant edge);
    asynchronous needs [Omega(n)] (with constant probability the
    pendant edge is not hit before the switch, and the bridge is then
    picked at rate [Theta(1/n)]).

    [G2] (Figure 1b): a star over [n+1] nodes whose centre is replaced
    each step by an uninformed node (a uniformly random one here;
    the paper allows any choice), or by a random node when everyone
    is informed.  Synchronous needs exactly [n] rounds (one new
    informed centre per round); asynchronous finishes in
    [Theta(log n)]. *)

val g1 : n:int -> Dynet.t
(** [n+1] nodes; source hint is the pendant node [n].
    @raise Invalid_argument if [n < 4]. *)

val g2 : n:int -> Dynet.t
(** [n+1] nodes (centre + [n] leaves); source hint is leaf [0].
    @raise Invalid_argument if [n < 2]. *)

val star_graph : n:int -> center:int -> Rumor_graph.Graph.t
(** The [n+1]-node star with the given centre (exposed for tests). *)
