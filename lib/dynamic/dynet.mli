(** Dynamic evolving networks [G = {G(t)}] (Section 2 of the paper).

    A dynamic network exposes one graph per discrete time step
    [t = 0, 1, ...] over a fixed node universe.  The paper's tight
    constructions are {e adaptive}: the graph at step [t+1] depends on
    the informed set, so the interface threads the simulator's informed
    set into each step.

    A {!t} is a reusable {e description}; {!spawn} creates a fresh
    stateful {!instance} for one simulation run (deterministic given
    the supplied RNG).  Instances must be stepped with consecutive
    [step] values starting at 0; each family enforces this. *)

open Rumor_util
open Rumor_rng

type delta = {
  added : (int * int) array;  (** edges present now but not before *)
  removed : (int * int) array;  (** edges present before but not now *)
  degree_changed : int array;
      (** nodes whose degree differs from the previous step, sorted
          ascending; always exactly the nodes with a non-zero net edge
          balance in [added]/[removed] *)
}
(** Structural difference between consecutive exposed graphs.  The
    contract is [Graph.patch prev ~add:added ~remove:removed = next]:
    a simulator holding the previous graph can reconstruct — and
    incrementally re-weight — the current one in O(delta) instead of
    O(n + m).  Edge orientation is free; build values with
    {!make_delta} so [degree_changed] stays consistent. *)

type info = {
  graph : Rumor_graph.Graph.t;
  changed : bool;
      (** [false] when the graph is physically identical to the
          previous step's — lets the simulators skip cut-rate
          rebuilds. Must be [true] at step 0. *)
  delta : delta option;
      (** The edge delta from the previous step's exposed graph, when
          the family can produce one cheaply.  [None] is always legal
          (simulators fall back to a full rebuild); a [Some] must be
          exact.  Meaningless at step 0 (no previous graph) — leave it
          [None] there. *)
  phi : float option;
      (** Analytic conductance of this step's graph, when the family
          knows a closed form (used by the bound calculators; [None]
          falls back to exact/spectral computation). *)
  rho : float option;  (** Analytic diligence [rho(G(t))]. *)
  rho_abs : float option;  (** Analytic absolute diligence. *)
}

type instance

val next : instance -> informed:Bitset.t -> info
(** Advance the instance by one discrete step and return the exposed
    graph.  The [informed] set is the simulator's informed set at the
    {e start} of the step (the adaptive families' [I_t]). *)

val step_count : instance -> int
(** Number of [next] calls made so far. *)

type t = {
  n : int;  (** number of nodes, fixed across steps *)
  name : string;
  source_hint : int option;
      (** where the paper's statement injects the rumor, when it
          matters (e.g. a node of [A_0] for Theorem 1.2); [None] means
          "any node" *)
  spawn : Rng.t -> instance;
}

val make_instance : (step:int -> informed:Bitset.t -> info) -> instance
(** Wrap a step function; the wrapper maintains and supplies the step
    counter. *)

val make_delta :
  added:(int * int) array -> removed:(int * int) array -> delta
(** Package an edge delta, deriving [degree_changed] from the net
    per-node balance of the two arrays (nodes whose additions and
    removals cancel are excluded). *)

val delta_of_graphs :
  ?max_edges:int -> Rumor_graph.Graph.t -> Rumor_graph.Graph.t ->
  delta option
(** [delta_of_graphs prev next] diffs two snapshots into a delta,
    or [None] when the edge delta exceeds [max_edges] (for families
    whose occasional rewirings are so large that a full rebuild is
    cheaper than replaying the delta). *)

val delta_size : delta -> int
(** Number of edge insertions plus removals. *)

val info_of_graph :
  ?changed:bool -> ?delta:delta -> ?phi:float -> ?rho:float ->
  ?rho_abs:float -> Rumor_graph.Graph.t -> info

val of_static :
  ?name:string -> ?phi:float -> ?rho:float -> ?rho_abs:float ->
  Rumor_graph.Graph.t -> t
(** A static network viewed as the constant dynamic network. *)

val of_sequence : ?name:string -> Rumor_graph.Graph.t array -> t
(** Cycle through the given graphs: [G(t) = graphs.(t mod length)].
    All graphs must share the node count.
    @raise Invalid_argument on an empty array or mismatched sizes. *)

val of_fun :
  n:int -> name:string -> ?source_hint:int ->
  (Rng.t -> step:int -> informed:Bitset.t -> info) -> t
(** General constructor: [spawn] gives the step function a private RNG;
    per-run state lives in the closure's environment (created fresh on
    each spawn). *)
