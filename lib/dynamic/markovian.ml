open Rumor_rng
open Rumor_graph

let stationary_edge_probability ~p ~q =
  if p +. q <= 0. then invalid_arg "Markovian: p + q must be positive";
  p /. (p +. q)

let validate ~n ~p ~q ~init =
  if p < 0. || p > 1. || q < 0. || q > 1. then
    invalid_arg "Markovian.network: p, q must lie in [0, 1]";
  (match init with
  | Some g when Graph.n g <> n ->
    invalid_arg "Markovian.network: init node-count mismatch"
  | _ -> ());
  match init with Some g -> g | None -> Gen.empty n

(* Geometric skipping: number of consecutive failures before the next
   success of a Bernoulli(prob) scan, i.e. floor(log U / log(1 - prob))
   for U uniform on (0, 1].  Visiting only the successes makes a step
   cost O(#flips) in expectation instead of O(n^2). *)
let skip rng ~prob =
  if prob >= 1. then 0
  else begin
    let s = Float.log (Rng.float_pos rng) /. Float.log1p (-.prob) in
    if Float.is_finite s && s < 1e18 then int_of_float s else max_int / 2
  end

(* Decode the k-th pair (u, v), u < v, of the lexicographic enumeration
   of the C(n,2) node pairs.  Counting r = total - 1 - k pairs from the
   end turns the row offsets into plain triangular numbers:
   row u = n-2-i holds the r in [i(i+1)/2, (i+1)(i+2)/2). *)
let decode_pair ~n ~total k =
  let r = total - 1 - k in
  let i =
    let guess =
      int_of_float ((Float.sqrt ((8. *. float_of_int r) +. 1.) -. 1.) /. 2.)
    in
    let i = ref (max 0 guess) in
    while (!i + 1) * (!i + 2) / 2 <= r do
      incr i
    done;
    while !i * (!i + 1) / 2 > r do
      decr i
    done;
    !i
  in
  let u = n - 2 - i in
  let v = n - 1 - (r - (i * (i + 1) / 2)) in
  (u, v)

let network ~n ~p ~q ?init () =
  let init = validate ~n ~p ~q ~init in
  let total = n * (n - 1) / 2 in
  {
    Dynet.n;
    name = Printf.sprintf "edge-markovian(n=%d,p=%.3g,q=%.3g)" n p q;
    source_hint = None;
    spawn =
      (fun rng ->
        let current = ref init in
        (* Present-edge pool as a growable array: deaths are sampled by
           index over it, then swap-removed from the top down. *)
        let pool = ref (Array.append (Graph.edges init) (Array.make 16 (0, 0))) in
        let count = ref (Array.length (Graph.edges init)) in
        let push e =
          if !count = Array.length !pool then
            pool := Array.append !pool (Array.make (max 16 !count) (0, 0));
          !pool.(!count) <- e;
          incr count
        in
        Dynet.make_instance (fun ~step ~informed:_ ->
            if step = 0 then Dynet.info_of_graph ~changed:true init
            else begin
              let prev = !current in
              (* Deaths: each present edge dies with probability q.
                 Indices are collected in increasing order, so the list
                 head is the largest and swap-removal never disturbs a
                 later victim. *)
              let dying = ref [] in
              if q > 0. && !count > 0 then begin
                let idx = ref (skip rng ~prob:q) in
                while !idx < !count do
                  dying := !idx :: !dying;
                  idx := !idx + 1 + skip rng ~prob:q
                done
              end;
              let removed =
                Array.of_list (List.rev_map (fun i -> !pool.(i)) !dying)
              in
              List.iter
                (fun i ->
                  decr count;
                  !pool.(i) <- !pool.(!count))
                !dying;
              (* Births: scan the virtual pair space; a hit on a pair
                 already present at the start of the step is discarded
                 (only absent edges run a birth trial), which costs an
                 expected extra p * m draws and keeps the chain exact. *)
              let born = ref [] in
              if p > 0. && total > 0 then begin
                let k = ref (skip rng ~prob:p) in
                while !k < total do
                  let ((u, v) as e) = decode_pair ~n ~total !k in
                  if not (Graph.has_edge prev u v) then born := e :: !born;
                  k := !k + 1 + skip rng ~prob:p
                done
              end;
              let added = Array.of_list (List.rev !born) in
              Array.iter push added;
              if Array.length added = 0 && Array.length removed = 0 then
                Dynet.info_of_graph ~changed:false prev
              else begin
                let g = Graph.patch prev ~add:added ~remove:removed in
                current := g;
                Dynet.info_of_graph ~changed:true
                  ~delta:(Dynet.make_delta ~added ~removed)
                  g
              end
            end));
  }

(* The original O(n^2)-per-step sampler, kept as the bench baseline and
   as a distributional cross-check for the sparse sampler above.  Emits
   no deltas, so engines take the full-rebuild path. *)
let network_dense ~n ~p ~q ?init () =
  let init = validate ~n ~p ~q ~init in
  {
    Dynet.n;
    name = Printf.sprintf "edge-markovian-dense(n=%d,p=%.3g,q=%.3g)" n p q;
    source_hint = None;
    spawn =
      (fun rng ->
        let current = ref init in
        Dynet.make_instance (fun ~step ~informed:_ ->
            if step = 0 then Dynet.info_of_graph ~changed:true init
            else begin
              let prev = !current in
              let b = Builder.create n in
              for u = 0 to n - 1 do
                for v = u + 1 to n - 1 do
                  let alive =
                    if Graph.has_edge prev u v then not (Rng.bernoulli rng q)
                    else Rng.bernoulli rng p
                  in
                  if alive then Builder.add_edge_exn b u v
                done
              done;
              let g = Builder.freeze b in
              current := g;
              Dynet.info_of_graph ~changed:(not (Graph.equal g prev)) g
            end));
  }
