open Rumor_rng
open Rumor_graph

let stationary_edge_probability ~p ~q =
  if p +. q <= 0. then invalid_arg "Markovian: p + q must be positive";
  p /. (p +. q)

let network ~n ~p ~q ?init () =
  if p < 0. || p > 1. || q < 0. || q > 1. then
    invalid_arg "Markovian.network: p, q must lie in [0, 1]";
  (match init with
  | Some g when Graph.n g <> n ->
    invalid_arg "Markovian.network: init node-count mismatch"
  | _ -> ());
  let init = match init with Some g -> g | None -> Gen.empty n in
  {
    Dynet.n;
    name = Printf.sprintf "edge-markovian(n=%d,p=%.3g,q=%.3g)" n p q;
    source_hint = None;
    spawn =
      (fun rng ->
        let current = ref init in
        Dynet.make_instance (fun ~step ~informed:_ ->
            if step = 0 then Dynet.info_of_graph ~changed:true init
            else begin
              let prev = !current in
              let b = Builder.create n in
              for u = 0 to n - 1 do
                for v = u + 1 to n - 1 do
                  let alive =
                    if Graph.has_edge prev u v then not (Rng.bernoulli rng q)
                    else Rng.bernoulli rng p
                  in
                  if alive then Builder.add_edge_exn b u v
                done
              done;
              let g = Builder.freeze b in
              current := g;
              Dynet.info_of_graph ~changed:(not (Graph.equal g prev)) g
            end));
  }
