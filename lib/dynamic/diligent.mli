(** The adaptive [rho]-diligent dynamic network [G(n, rho)] of
    Theorem 1.2 — the family on which the Theorem 1.1 upper bound is
    tight up to an [o(log^2 n)] factor.

    Evolution (Section 4): [G(0) = H_{k,Delta}(A_0, B_0)] with
    [|A_0| = n/4]; at each step the informed nodes defect from the
    B-side ([B_{t+1} = B_t \ I_{t+1}]) and the gadget is rebuilt as
    long as [|B_{t+1}| >= n/4] still holds and the B-side actually
    shrank — so the adversary keeps re-erecting the bipartite string
    between the informed and the uninformed mass. *)

val admissible : n:int -> rho:float -> bool
(** Whether [G(n, rho)] is constructible at this size (the paper's
    regime is [1/sqrt n <= rho <= 1], plus small-size slack for the
    expander residues). *)

val network : ?k:int -> n:int -> rho:float -> unit -> Dynet.t
(** [network ~n ~rho]: [k] defaults to {!Paper_h.default_k}[ n].  The
    source hint is a node of [A_0].
    @raise Invalid_argument if not {!admissible}. *)

val delta_of_rho : float -> int
(** [ceil(1/rho)]. @raise Invalid_argument unless [0 < rho <= 1]. *)

(**/**)

val spread_lower_bound : n:int -> rho:float -> k:int -> float
(** The Theorem 1.2 lower bound [n / (4 k ceil(1/rho))] (Inequality
    11's explicit constant), used by experiment E2. *)
