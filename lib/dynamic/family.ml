open Rumor_rng
open Rumor_graph

type params = {
  family : string;
  n : int;
  rho : float;
  degree : int;
  p : float;
  q : float;
  seed : int;
}

let default ~family ~n =
  { family; n; rho = 0.25; degree = 8; p = 0.05; q = 0.2; seed = 2020 }

let known =
  [
    "clique"; "star"; "cycle"; "path"; "hypercube"; "regular"; "er"; "g1";
    "g2"; "diligent"; "absolute"; "alternating"; "markovian"; "mobile";
  ]

let is_known family = List.mem (String.lowercase_ascii family) known

let log2_floor n =
  let rec go x acc = if x <= 1 then acc else go (x / 2) (acc + 1) in
  go n 0

(* The static families' graph construction, shared verbatim by [build]
   and [static_graph] so the control-variate anchor is guaranteed to
   be the very graph the network simulates (randomized constructions
   included: both paths draw from a fresh [Rng.create seed]). *)
let static_graph params =
  let { family; n; degree; p; seed; _ } = params in
  let rng = Rng.create seed in
  match String.lowercase_ascii family with
  | "clique" -> Some (Gen.clique n)
  | "star" -> Some (Gen.star n)
  | "cycle" -> Some (Gen.cycle n)
  | "path" -> Some (Gen.path n)
  | "hypercube" -> Some (Gen.hypercube (log2_floor n))
  | "regular" -> Some (Gen.random_connected_regular rng n degree)
  | "er" -> Some (Gen.erdos_renyi rng n p)
  | _ -> None

let build params =
  let { family; n; rho; degree; p; q; seed = _; _ } = params in
  let static () = Option.get (static_graph params) in
  match String.lowercase_ascii family with
  | "clique" -> Dynet.of_static ~name:"clique" ~rho:1.0 (static ())
  | "star" ->
    Dynet.of_static ~name:"star" ~phi:1.0 ~rho:1.0 ~rho_abs:1.0 (static ())
  | "cycle" ->
    Dynet.of_static ~name:"cycle"
      ~phi:(2. /. float_of_int n)
      ~rho:1.0 ~rho_abs:0.5 (static ())
  | "path" -> Dynet.of_static ~name:"path" (static ())
  | "hypercube" ->
    let d = log2_floor n in
    Dynet.of_static ~name:"hypercube"
      ~phi:(1. /. float_of_int d)
      ~rho:1.0
      ~rho_abs:(1. /. float_of_int d)
      (static ())
  | "regular" ->
    Dynet.of_static ~name:"random-regular" ~rho:1.0
      ~rho_abs:(1. /. float_of_int degree)
      (static ())
  | "er" -> Dynet.of_static ~name:"erdos-renyi" (static ())
  | "g1" -> Dichotomy.g1 ~n
  | "g2" -> Dichotomy.g2 ~n
  | "diligent" -> Diligent.network ~n ~rho ()
  | "absolute" -> Absolute.network ~n ~rho
  | "alternating" -> Alternating.network ~n ()
  | "markovian" -> Markovian.network ~n ~p ~q ()
  | "mobile" ->
    let side = max 4 (int_of_float (sqrt (float_of_int (4 * n)))) in
    Mobile.network ~agents:n ~width:side ~height:side ~radius:2
  | other -> failwith (Printf.sprintf "unknown network family %S" other)
