open Rumor_rng
open Rumor_graph

type params = {
  family : string;
  n : int;
  rho : float;
  degree : int;
  p : float;
  q : float;
  seed : int;
}

let default ~family ~n =
  { family; n; rho = 0.25; degree = 8; p = 0.05; q = 0.2; seed = 2020 }

let known =
  [
    "clique"; "star"; "cycle"; "path"; "hypercube"; "regular"; "er"; "g1";
    "g2"; "diligent"; "absolute"; "alternating"; "markovian"; "mobile";
  ]

let is_known family = List.mem (String.lowercase_ascii family) known

let build params =
  let { family; n; rho; degree; p; q; seed } = params in
  let rng = Rng.create seed in
  match String.lowercase_ascii family with
  | "clique" -> Dynet.of_static ~name:"clique" ~rho:1.0 (Gen.clique n)
  | "star" ->
    Dynet.of_static ~name:"star" ~phi:1.0 ~rho:1.0 ~rho_abs:1.0 (Gen.star n)
  | "cycle" ->
    Dynet.of_static ~name:"cycle"
      ~phi:(2. /. float_of_int n)
      ~rho:1.0 ~rho_abs:0.5 (Gen.cycle n)
  | "path" -> Dynet.of_static ~name:"path" (Gen.path n)
  | "hypercube" ->
    let d =
      let rec log2 x acc = if x <= 1 then acc else log2 (x / 2) (acc + 1) in
      log2 n 0
    in
    Dynet.of_static ~name:"hypercube"
      ~phi:(1. /. float_of_int d)
      ~rho:1.0
      ~rho_abs:(1. /. float_of_int d)
      (Gen.hypercube d)
  | "regular" ->
    Dynet.of_static ~name:"random-regular" ~rho:1.0
      ~rho_abs:(1. /. float_of_int degree)
      (Gen.random_connected_regular rng n degree)
  | "er" -> Dynet.of_static ~name:"erdos-renyi" (Gen.erdos_renyi rng n p)
  | "g1" -> Dichotomy.g1 ~n
  | "g2" -> Dichotomy.g2 ~n
  | "diligent" -> Diligent.network ~n ~rho ()
  | "absolute" -> Absolute.network ~n ~rho
  | "alternating" -> Alternating.network ~n ()
  | "markovian" -> Markovian.network ~n ~p ~q ()
  | "mobile" ->
    let side = max 4 (int_of_float (sqrt (float_of_int (4 * n)))) in
    Mobile.network ~agents:n ~width:side ~height:side ~radius:2
  | other -> failwith (Printf.sprintf "unknown network family %S" other)
