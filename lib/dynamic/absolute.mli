(** The absolutely [rho]-diligent dynamic network of Section 5.1
    (Theorem 1.5): spread time [Theta(n / rho)], matching the
    Theorem 1.3 upper bound up to constants.

    Structure at every step: a 4-regular-except-one graph
    [G(A_t, 4, Delta)] whose special degree-[Delta] node is bridged by
    a single edge to a [Delta]-regular graph [G(B_t, Delta)], with
    [Delta ∈ {ceil(1/rho), ceil(1/rho)+1}] even.  Informed B-nodes
    defect to the A-side each step; the network freezes once
    [|B| < n/6].  The single bridge of pulling rate [2/(Delta+1)]
    is the bottleneck the lower bound rides on. *)

val admissible : n:int -> rho:float -> bool
(** The paper's regime is [10/n <= rho <= 1] (plus small-size
    slack). *)

val network : n:int -> rho:float -> Dynet.t
(** @raise Invalid_argument if not {!admissible}.  Source hint: a
    regular node of [A_0]. *)

val delta_of_rho : float -> int
(** The even member of [{ceil(1/rho), ceil(1/rho)+1}]. *)

val spread_lower_bound : n:int -> rho:float -> float
(** The Theorem 1.5 lower bound evaluated with its explicit constant:
    [n0 * Delta / 4] where [n0 = n / (10 + 10 mu)] with [mu = Theta(1)]
    taken as 1 — i.e. [n * Delta / 80]. *)

(**/**)

val regular_except_one_fast : ids:int array -> delta:int -> (int * int) list
(** Deterministic O(|ids|) edge list of a connected graph over the
    given node ids in which [ids.(0)] has degree [delta] (even) and
    every other node degree 4: a circulant ring with distance-2 chords
    on [ids.(1..)], [delta/2] spaced ring edges removed and both
    endpoints of each rewired to [ids.(0)].
    @raise Invalid_argument if [delta] is odd, [delta < 2], or
    [|ids| < 2*delta + 6]. *)
