open Rumor_util
open Rumor_rng

type info = {
  graph : Rumor_graph.Graph.t;
  changed : bool;
  phi : float option;
  rho : float option;
  rho_abs : float option;
}

type instance = {
  mutable steps : int;
  fn : step:int -> informed:Bitset.t -> info;
}

let make_instance fn = { steps = 0; fn }

let next inst ~informed =
  let step = inst.steps in
  inst.steps <- step + 1;
  let info = inst.fn ~step ~informed in
  if step = 0 && not info.changed then
    invalid_arg "Dynet.next: step 0 must report changed = true";
  info

let step_count inst = inst.steps

type t = {
  n : int;
  name : string;
  source_hint : int option;
  spawn : Rng.t -> instance;
}

let info_of_graph ?(changed = true) ?phi ?rho ?rho_abs graph =
  { graph; changed; phi; rho; rho_abs }

let of_static ?name ?phi ?rho ?rho_abs graph =
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "static-n%d" (Rumor_graph.Graph.n graph)
  in
  {
    n = Rumor_graph.Graph.n graph;
    name;
    source_hint = None;
    spawn =
      (fun _rng ->
        make_instance (fun ~step ~informed:_ ->
            { graph; changed = step = 0; phi; rho; rho_abs }));
  }

let of_sequence ?name graphs =
  let len = Array.length graphs in
  if len = 0 then invalid_arg "Dynet.of_sequence: empty graph array";
  let n = Rumor_graph.Graph.n graphs.(0) in
  Array.iter
    (fun g ->
      if Rumor_graph.Graph.n g <> n then
        invalid_arg "Dynet.of_sequence: node-count mismatch")
    graphs;
  let name = match name with Some s -> s | None -> Printf.sprintf "sequence-%d" len in
  {
    n;
    name;
    source_hint = None;
    spawn =
      (fun _rng ->
        make_instance (fun ~step ~informed:_ ->
            let g = graphs.(step mod len) in
            let changed =
              step = 0
              || not (Rumor_graph.Graph.equal g graphs.((step - 1) mod len))
            in
            info_of_graph ~changed g));
  }

let of_fun ~n ~name ?source_hint f =
  { n; name; source_hint; spawn = (fun rng -> make_instance (f rng)) }
