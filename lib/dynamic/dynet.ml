open Rumor_util
open Rumor_rng

type delta = {
  added : (int * int) array;
  removed : (int * int) array;
  degree_changed : int array;
}

type info = {
  graph : Rumor_graph.Graph.t;
  changed : bool;
  delta : delta option;
  phi : float option;
  rho : float option;
  rho_abs : float option;
}

let delta_size d = Array.length d.added + Array.length d.removed

(* Net per-node degree balance of the edge delta; a node whose additions
   and removals cancel keeps its degree and is excluded. *)
let make_delta ~added ~removed =
  let bal = Hashtbl.create (2 * (Array.length added + Array.length removed) + 1) in
  let bump w (u, v) =
    let go x =
      let c = try Hashtbl.find bal x with Not_found -> 0 in
      Hashtbl.replace bal x (c + w)
    in
    go u;
    go v
  in
  Array.iter (bump 1) added;
  Array.iter (bump (-1)) removed;
  let changed = ref [] in
  Hashtbl.iter (fun x c -> if c <> 0 then changed := x :: !changed) bal;
  let degree_changed = Array.of_list !changed in
  Array.sort compare degree_changed;
  { added; removed; degree_changed }

let delta_of_graphs ?max_edges prev next =
  let added, removed = Rumor_graph.Graph.diff prev next in
  match max_edges with
  | Some cap when Array.length added + Array.length removed > cap -> None
  | _ -> Some (make_delta ~added ~removed)

type instance = {
  mutable steps : int;
  fn : step:int -> informed:Bitset.t -> info;
}

let make_instance fn = { steps = 0; fn }

let next inst ~informed =
  let step = inst.steps in
  inst.steps <- step + 1;
  let info = inst.fn ~step ~informed in
  if step = 0 && not info.changed then
    invalid_arg "Dynet.next: step 0 must report changed = true";
  info

let step_count inst = inst.steps

type t = {
  n : int;
  name : string;
  source_hint : int option;
  spawn : Rng.t -> instance;
}

let info_of_graph ?(changed = true) ?delta ?phi ?rho ?rho_abs graph =
  { graph; changed; delta; phi; rho; rho_abs }

let of_static ?name ?phi ?rho ?rho_abs graph =
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "static-n%d" (Rumor_graph.Graph.n graph)
  in
  {
    n = Rumor_graph.Graph.n graph;
    name;
    source_hint = None;
    spawn =
      (fun _rng ->
        make_instance (fun ~step ~informed:_ ->
            { graph; changed = step = 0; delta = None; phi; rho; rho_abs }));
  }

let of_sequence ?name graphs =
  let len = Array.length graphs in
  if len = 0 then invalid_arg "Dynet.of_sequence: empty graph array";
  let n = Rumor_graph.Graph.n graphs.(0) in
  Array.iter
    (fun g ->
      if Rumor_graph.Graph.n g <> n then
        invalid_arg "Dynet.of_sequence: node-count mismatch")
    graphs;
  let name = match name with Some s -> s | None -> Printf.sprintf "sequence-%d" len in
  (* Per-index transition (changed flag + delta), computed once here
     instead of an O(m) Graph.equal on every step of every run.
     trans.(i) describes graphs.((i + len - 1) mod len) -> graphs.(i). *)
  let trans =
    Array.init len (fun i ->
        let prev = graphs.((i + len - 1) mod len) in
        let added, removed = Rumor_graph.Graph.diff prev graphs.(i) in
        if Array.length added = 0 && Array.length removed = 0 then (false, None)
        else (true, Some (make_delta ~added ~removed)))
  in
  {
    n;
    name;
    source_hint = None;
    spawn =
      (fun _rng ->
        make_instance (fun ~step ~informed:_ ->
            let g = graphs.(step mod len) in
            if step = 0 then info_of_graph ~changed:true g
            else
              let changed, delta = trans.(step mod len) in
              info_of_graph ~changed ?delta g));
  }

let of_fun ~n ~name ?source_hint f =
  { n; name; source_hint; spawn = (fun rng -> make_instance (f rng)) }
