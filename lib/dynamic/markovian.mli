(** Edge-Markovian evolving graphs (Clementi et al. [7], discussed in
    the paper's related work): each step every absent edge appears
    independently with probability [p] and every present edge dies
    with probability [q].

    Included as the stochastic counterpart of the paper's adversarial
    families: the P2P-churn example and several robustness tests run
    the asynchronous algorithm on this model. *)

open Rumor_graph

val network :
  n:int -> p:float -> q:float -> ?init:Graph.t -> unit -> Dynet.t
(** [network ~n ~p ~q ()] starts from [init] (default: the empty
    graph) and evolves per step.  Steps are sampled sparsely: geometric
    skipping visits only the flipped pairs, so a step costs
    O(#flips + p * m) expected instead of O(n^2), and each step carries
    the exact {!Dynet.delta} of its flips.
    @raise Invalid_argument if [p] or [q] is outside [[0, 1]], or
    [init] has the wrong node count. *)

val network_dense :
  n:int -> p:float -> q:float -> ?init:Graph.t -> unit -> Dynet.t
(** The direct O(n^2)-per-step sampler (one Bernoulli trial per node
    pair), kept as a benchmark baseline and distributional cross-check
    for {!network}.  Emits no deltas. *)

val stationary_edge_probability : p:float -> q:float -> float
(** The chain's stationary presence probability [p / (p + q)]
    (defined when [p + q > 0]). *)
