(** Edge-Markovian evolving graphs (Clementi et al. [7], discussed in
    the paper's related work): each step every absent edge appears
    independently with probability [p] and every present edge dies
    with probability [q].

    Included as the stochastic counterpart of the paper's adversarial
    families: the P2P-churn example and several robustness tests run
    the asynchronous algorithm on this model. *)

open Rumor_graph

val network :
  n:int -> p:float -> q:float -> ?init:Graph.t -> unit -> Dynet.t
(** [network ~n ~p ~q ()] starts from [init] (default: the empty
    graph) and evolves per step.
    @raise Invalid_argument if [p] or [q] is outside [[0, 1]], or
    [init] has the wrong node count. *)

val stationary_edge_probability : p:float -> q:float -> float
(** The chain's stationary presence probability [p / (p + q)]
    (defined when [p + q > 0]). *)
