open Rumor_util
open Rumor_graph

let delta_of_rho rho =
  if rho <= 0. || rho > 1. then invalid_arg "Absolute.delta_of_rho: need 0 < rho <= 1";
  let d = int_of_float (Float.ceil (1. /. rho)) in
  let d = if d mod 2 = 0 then d else d + 1 in
  max 2 d

let regular_except_one_fast ~ids ~delta =
  if delta < 2 || delta mod 2 = 1 then
    invalid_arg "Absolute.regular_except_one_fast: delta must be even, >= 2";
  let m = Array.length ids in
  if m < (2 * delta) + 6 then
    invalid_arg
      (Printf.sprintf
         "Absolute.regular_except_one_fast: need |ids| >= %d (got %d)"
         ((2 * delta) + 6)
         m);
  let special = ids.(0) in
  let ring = Array.sub ids 1 (m - 1) in
  let r = Array.length ring in
  let edges = ref [] in
  let removed = Hashtbl.create delta in
  (* Remove ring edges (4j, 4j+1) for j = 0 .. delta/2 - 1; they are
     pairwise non-adjacent, and the distance-2 chords reconnect each
     gap. *)
  for j = 0 to (delta / 2) - 1 do
    Hashtbl.add removed (4 * j) ()
  done;
  for i = 0 to r - 1 do
    (* Ring edge (i, i+1) unless removed. *)
    if not (Hashtbl.mem removed i) then
      edges := (ring.(i), ring.((i + 1) mod r)) :: !edges;
    (* Distance-2 chord (i, i+2). *)
    edges := (ring.(i), ring.((i + 2) mod r)) :: !edges
  done;
  (* Rewire each removed ring edge's endpoints to the special node. *)
  Hashtbl.iter
    (fun i () ->
      edges := (special, ring.(i)) :: !edges;
      edges := (special, ring.((i + 1) mod r)) :: !edges)
    removed;
  !edges

let admissible ~n ~rho =
  rho > 0. && rho <= 1.
  &&
  let delta = delta_of_rho rho in
  let a0 = n / 2 in
  let b_min = n / 6 in
  (* A-side must host the 4-regular-except-one gadget even at its
     smallest (it only grows); B-side circulant needs delta < |B| at
     its smallest. *)
  a0 >= (2 * delta) + 6 && b_min > delta && b_min >= 3

let spread_lower_bound ~n ~rho =
  float_of_int n *. float_of_int (delta_of_rho rho) /. 80.

let network ~n ~rho =
  if not (admissible ~n ~rho) then
    invalid_arg (Printf.sprintf "Absolute.network: (n=%d, rho=%g) not admissible" n rho);
  let delta = delta_of_rho rho in
  let a0_size = n / 2 in
  let spawn _rng =
    let in_b = Bitset.create n in
    for u = a0_size to n - 1 do
      ignore (Bitset.add in_b u)
    done;
    let frozen = ref false in
    let current = ref None in
    let rebuild () =
      let b_arr = Array.of_list (Bitset.to_list in_b) in
      let a_arr =
        let out = Array.make (n - Array.length b_arr) 0 in
        let idx = ref 0 in
        for u = 0 to n - 1 do
          if not (Bitset.mem in_b u) then begin
            out.(!idx) <- u;
            incr idx
          end
        done;
        out
      in
      let builder = Builder.create n in
      (* A-side: all degree 4 except a_arr.(0) with degree delta. *)
      List.iter
        (fun (u, v) -> ignore (Builder.add_edge builder u v))
        (regular_except_one_fast ~ids:a_arr ~delta);
      (* B-side: delta-regular circulant over the B ids. *)
      let nb = Array.length b_arr in
      for s = 1 to delta / 2 do
        for i = 0 to nb - 1 do
          ignore (Builder.add_edge builder b_arr.(i) b_arr.((i + s) mod nb))
        done
      done;
      (* The single bridge: special A node to an arbitrary B node. *)
      ignore (Builder.add_edge builder a_arr.(0) b_arr.(0));
      let graph = Builder.freeze builder in
      (* The bridge is the bottleneck cut: one edge against the B-side
         volume. *)
      let phi = 1. /. float_of_int (Bitset.cardinal in_b * delta) in
      current := Some (graph, phi);
      (graph, phi)
    in
    let info ?edge_delta (graph, phi) ~changed =
      {
        Dynet.graph;
        changed;
        delta = edge_delta;
        phi = Some phi;
        rho = None;
        rho_abs = Some (1. /. float_of_int (delta + 1));
      }
    in
    Dynet.make_instance (fun ~step ~informed ->
        if step = 0 then info (rebuild ()) ~changed:true
        else begin
          let keep () =
            match !current with
            | Some cur -> info cur ~changed:false
            | None -> assert false
          in
          if !frozen then keep ()
          else begin
            let before = Bitset.cardinal in_b in
            let candidate = Bitset.copy in_b in
            Bitset.iter
              (fun u ->
                if Bitset.mem candidate u then ignore (Bitset.remove candidate u))
              informed;
            let after = Bitset.cardinal candidate in
            if after < n / 6 then begin
              (* The paper keeps G(t+1) = G(t) from here on; the
                 partition freezes with it. *)
              frozen := true;
              keep ()
            end
            else if after < before then begin
              Bitset.iter
                (fun u -> if Bitset.mem in_b u then ignore (Bitset.remove in_b u))
                informed;
              let prev =
                match !current with Some (g, _) -> Some g | None -> None
              in
              let ((graph, _) as cur) = rebuild () in
              (* Rewirings are usually wholesale; cap the diff so a
                 too-large delta degrades to a plain rebuild. *)
              let edge_delta =
                match prev with
                | None -> None
                | Some p ->
                  Dynet.delta_of_graphs ~max_edges:(1 + (Graph.m graph / 2)) p
                    graph
              in
              info ?edge_delta cur ~changed:true
            end
            else keep ()
          end
        end)
  in
  {
    Dynet.n;
    name = Printf.sprintf "absolute-G(n=%d,rho=%.4g)" n rho;
    source_hint = Some 1;
    spawn;
  }
