(** A greedy adaptive adversary — an extension beyond the paper's
    explicit constructions.

    The paper's lower-bound families (Theorems 1.2 and 1.5) are
    hand-crafted; this family asks what an adversary that re-optimises
    {e every step} can do under the same resource constraint (a
    maximum-degree budget [Delta], which caps the absolute diligence at
    [~1/Delta]).  The greedy strategy minimises the informing cut rate
    [lambda = sum over cut edges of (1/d_u + 1/d_v)] subject to
    connectivity: it rebuilds both sides of the informed/uninformed cut
    as dense-as-budget graphs joined by a {e single} bridge whose
    endpoints carry the full degree budget — giving
    [lambda ~ 2/(Delta+1)] per step, the information-theoretic best for
    a one-bridge, degree-[Delta] adversary.

    Experiment A2 compares it against the paper's absolutely-diligent
    family: both achieve [Theta(n Delta)] spread, evidence that the
    paper's simpler construction already extracts the full power of
    this adversary class. *)

val greedy_min_cut : n:int -> degree_budget:int -> Dynet.t
(** [greedy_min_cut ~n ~degree_budget]: every step re-partitions the
    nodes into informed/uninformed sides, each wired as a clique (if
    small) or a circulant of even degree [<= degree_budget], plus one
    bridge.  Source hint: node 0.
    @raise Invalid_argument if [degree_budget < 2] or [n < 8]. *)
