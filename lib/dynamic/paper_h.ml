open Rumor_rng
open Rumor_graph

type analysis = {
  phi_estimate : float;
  rho_estimate : float;
  clusters : int array array;
}

(* The expander side needs at least 5 nodes for a simple 4-regular
   graph. *)
let expander_min = 5

(* The residue must host the 4-regular expander (>= 5 nodes) and give
   each cluster node [delta] distinct attachment targets. *)
let min_side_a ~k:_ ~delta = delta + max expander_min delta

let min_side_b ~k ~delta = (k * delta) + max expander_min delta

let default_k n =
  if n < 3 then 1
  else begin
    let ln = log (float_of_int n) in
    let lln = log ln in
    if lln <= 0. then 1 else max 1 (int_of_float (Float.round (ln /. lln)))
  end

let check_sides ~universe ~a ~b ~k ~delta =
  if delta < 1 then invalid_arg "Paper_h.build: need delta >= 1";
  if k < 1 then invalid_arg "Paper_h.build: need k >= 1";
  if Array.length a < min_side_a ~k ~delta then
    invalid_arg
      (Printf.sprintf "Paper_h.build: |A| = %d < %d" (Array.length a)
         (min_side_a ~k ~delta));
  if Array.length b < min_side_b ~k ~delta then
    invalid_arg
      (Printf.sprintf "Paper_h.build: |B| = %d < %d" (Array.length b)
         (min_side_b ~k ~delta));
  let seen = Hashtbl.create (Array.length a + Array.length b) in
  let record u =
    if u < 0 || u >= universe then
      invalid_arg (Printf.sprintf "Paper_h.build: node %d outside universe" u);
    if Hashtbl.mem seen u then
      invalid_arg (Printf.sprintf "Paper_h.build: node %d repeated" u);
    Hashtbl.add seen u ()
  in
  Array.iter record a;
  Array.iter record b

(* Embed a random connected 4-regular graph on the given node ids. *)
let add_expander rng builder ids =
  let local = Gen.random_connected_regular rng (Array.length ids) 4 in
  Graph.iter_edges
    (fun u v -> Builder.add_edge_exn builder ids.(u) ids.(v))
    local

(* Attach every node of [cluster] to [delta] distinct nodes of
   [targets], round-robin over a shuffled target order so each target
   gains at most [ceil(delta^2 / |targets|)] edges. *)
let attach rng builder cluster targets delta =
  let order = Array.copy targets in
  Rng.shuffle_in_place rng order;
  let nt = Array.length order in
  Array.iteri
    (fun i s ->
      for j = 0 to delta - 1 do
        let target = order.(((i * delta) + j) mod nt) in
        Builder.add_edge_exn builder s target
      done)
    cluster

let build rng ~universe ~a ~b ~k ~delta =
  check_sides ~universe ~a ~b ~k ~delta;
  let builder = Builder.create universe in
  (* Clusters: S_0 from A, S_1..S_k from B. *)
  let s0 = Array.sub a 0 delta in
  let clusters =
    Array.init (k + 1) (fun i ->
        if i = 0 then s0 else Array.sub b ((i - 1) * delta) delta)
  in
  (* String of complete bipartite graphs. *)
  for i = 0 to k - 1 do
    Builder.add_complete_bipartite builder clusters.(i) clusters.(i + 1)
  done;
  (* Expanders on the residues, with cluster endpoints attached. *)
  let a_rest = Array.sub a delta (Array.length a - delta) in
  let b_rest = Array.sub b (k * delta) (Array.length b - (k * delta)) in
  add_expander rng builder a_rest;
  add_expander rng builder b_rest;
  attach rng builder clusters.(0) a_rest delta;
  attach rng builder clusters.(k) b_rest delta;
  let n_total = Array.length a + Array.length b in
  let fdelta = float_of_int delta in
  let analysis =
    {
      phi_estimate =
        fdelta *. fdelta
        /. ((float_of_int k *. fdelta *. fdelta) +. float_of_int n_total);
      rho_estimate = 1. /. fdelta;
      clusters;
    }
  in
  (Builder.freeze builder, analysis)
