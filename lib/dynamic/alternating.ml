open Rumor_graph

let clique_conductance n =
  if n < 2 then invalid_arg "Alternating.clique_conductance: need n >= 2";
  (* For |S| = s <= n/2: cut = s(n-s), vol(S) = s(n-1), so
     phi(s) = (n-s)/(n-1), minimised at the half split. *)
  float_of_int ((n / 2) + (n mod 2)) /. float_of_int (n - 1)

let network ?(fresh_cubic_each_step = false) ~n () =
  if n < 6 || n mod 2 = 1 then
    invalid_arg "Alternating.network: need even n >= 6";
  let complete = Gen.clique n in
  let phi_complete = clique_conductance n in
  {
    Dynet.n;
    name = Printf.sprintf "alternating-3/(n-1)-regular(n=%d)" n;
    source_hint = None;
    spawn =
      (fun rng ->
        (* The cubic graph plus both transition deltas (complete ->
           cubic and back).  In the default stable mode this is computed
           once per spawn; with [fresh_cubic_each_step] it is refreshed
           on every odd step, and the return delta still describes the
           cubic actually exposed at the previous step. *)
        let cubic = ref None in
        let get_cubic () =
          match !cubic with
          | Some c when not fresh_cubic_each_step -> c
          | _ ->
            let g = Gen.random_connected_regular rng n 3 in
            let added, removed = Graph.diff complete g in
            let c =
              ( g,
                Dynet.make_delta ~added ~removed,
                Dynet.make_delta ~added:removed ~removed:added )
            in
            cubic := Some c;
            c
        in
        Dynet.make_instance (fun ~step ~informed:_ ->
            if step mod 2 = 0 then begin
              let delta =
                if step = 0 then None
                else
                  match !cubic with
                  | Some (_, _, to_complete) -> Some to_complete
                  | None -> None
              in
              Dynet.info_of_graph ~changed:true ?delta ~phi:phi_complete
                ~rho:1.0
                ~rho_abs:(1. /. float_of_int (n - 1))
                complete
            end
            else begin
              (* Random cubic graphs are expanders w.h.p.; the harness
                 treats the analytic Phi as a Theta(1) placeholder and
                 the tests cross-check with the spectral sweep. *)
              let g, to_cubic, _ = get_cubic () in
              Dynet.info_of_graph ~changed:true ~delta:to_cubic ~phi:0.15
                ~rho:1.0 ~rho_abs:(1. /. 3.) g
            end));
  }
