open Rumor_graph

let clique_conductance n =
  if n < 2 then invalid_arg "Alternating.clique_conductance: need n >= 2";
  (* For |S| = s <= n/2: cut = s(n-s), vol(S) = s(n-1), so
     phi(s) = (n-s)/(n-1), minimised at the half split. *)
  float_of_int ((n / 2) + (n mod 2)) /. float_of_int (n - 1)

let network ?(fresh_cubic_each_step = false) ~n () =
  if n < 6 || n mod 2 = 1 then
    invalid_arg "Alternating.network: need even n >= 6";
  let complete = Gen.clique n in
  let phi_complete = clique_conductance n in
  {
    Dynet.n;
    name = Printf.sprintf "alternating-3/(n-1)-regular(n=%d)" n;
    source_hint = None;
    spawn =
      (fun rng ->
        let cubic = ref None in
        let get_cubic () =
          match !cubic with
          | Some g when not fresh_cubic_each_step -> g
          | _ ->
            let g = Gen.random_connected_regular rng n 3 in
            cubic := Some g;
            g
        in
        Dynet.make_instance (fun ~step ~informed:_ ->
            if step mod 2 = 0 then
              Dynet.info_of_graph ~changed:(step = 0 || true) ~phi:phi_complete
                ~rho:1.0
                ~rho_abs:(1. /. float_of_int (n - 1))
                complete
            else
              (* Random cubic graphs are expanders w.h.p.; the harness
                 treats the analytic Phi as a Theta(1) placeholder and
                 the tests cross-check with the spectral sweep. *)
              Dynet.info_of_graph ~changed:true ~phi:0.15 ~rho:1.0
                ~rho_abs:(1. /. 3.) (get_cubic ())));
  }
