(** The alternating regular dynamic network of Section 1.2: [G(t)] is
    [d(t)]-regular with [d(t)] alternating between [n-1] (complete
    graph, even steps) and [3] (random connected cubic graph, odd
    steps).

    Every step is regular, hence 1-diligent, so the Theorem 1.1 bound
    is [O(log n)]; but [M(G) = max_u Delta_u / delta_u = (n-1)/3], so
    the Giakkoupis et al. [17] synchronous-style bound inflates to
    [Theta(n log n)] — the paper's motivating example for diligence
    (experiment E9). *)

val network : ?fresh_cubic_each_step:bool -> n:int -> unit -> Dynet.t
(** [network ~n ()]: [n] must be even (cubic graphs need even order)
    and at least 6.  By default one cubic graph is sampled per run and
    reused on every odd step; [~fresh_cubic_each_step:true] resamples
    each odd step.
    @raise Invalid_argument on bad [n]. *)

val clique_conductance : int -> float
(** Exact [Phi(K_n) = ceil(n/2) / (n-1)] — the minimising cut is a
    half split. *)
