(** Combinators over dynamic networks.

    These build new adversaries/environments out of existing ones:
    duty-cycled connectivity ({!intermittent} — exercising the
    [ceil(Phi) = 0] accounting of Theorem 1.3), per-step lossy links
    ({!with_edge_dropout} — wireless-style fading over any base
    network), round-robin composition ({!interleave}) and arbitrary
    per-step graph surgery ({!map_graph}).

    Analytic parameter annotations of the base network are dropped
    wherever the transformation can invalidate them. *)

open Rumor_graph

val intermittent : every:int -> Dynet.t -> Dynet.t
(** [intermittent ~every net] exposes the base network's next graph on
    steps divisible by [every] and the empty (edgeless) graph on all
    other steps; the base instance only advances on exposed steps, so
    its own evolution is slowed by the duty cycle.  The spread time
    scales by roughly [every] (experiment E12).
    @raise Invalid_argument if [every < 1]. *)

val with_edge_dropout : p:float -> Dynet.t -> Dynet.t
(** [with_edge_dropout ~p net] removes each edge of each step's graph
    independently with probability [p] (resampled every step, even
    when the base graph is frozen).
    @raise Invalid_argument if [p] is outside [[0, 1]]. *)

val with_node_outage : p:float -> Dynet.t -> Dynet.t
(** [with_node_outage ~p net] takes each node offline independently
    with probability [p] per step: an offline node keeps its rumor but
    loses all its edges for that step (crash-recover semantics — the
    robustness model of Feige et al. [14] that the paper's introduction
    cites gossip for).  Resampled every step.
    @raise Invalid_argument if [p] is outside [[0, 1]]. *)

val with_churn : crash:float -> recover:float -> Dynet.t -> Dynet.t
(** [with_churn ~crash ~recover net] runs a persistent per-node
    two-state Markov chain over the steps: an online node crashes with
    probability [crash] at each step boundary, a crashed one recovers
    with probability [recover] (contrast {!with_node_outage}, which
    resamples memorylessly).  A crashed node keeps its rumor but loses
    all its edges until it recovers.  Everyone starts online.  The
    graph-level counterpart of [Rumor_faults.Fault_plan] churn — here
    the surviving nodes' {e degrees} shrink (their contact rates
    concentrate on live neighbours), whereas the engine-level model
    keeps degrees and silently drops contacts with crashed nodes; both
    are legitimate crash semantics, so E13 reports them separately.
    @raise Invalid_argument if a probability is outside [[0, 1]]. *)

val with_partition :
  from_step:int -> until_step:int -> side:(int -> bool) -> Dynet.t -> Dynet.t
(** [with_partition ~from_step ~until_step ~side net] removes every
    edge crossing the [side] bipartition during steps
    [from_step <= t < until_step] — a timed network split that heals
    when the window closes.
    @raise Invalid_argument if the window is empty. *)

val interleave : Dynet.t list -> Dynet.t
(** [interleave nets] exposes [nets] round-robin: step [t] shows the
    next graph of [nets.(t mod length)].  All networks must share the
    node count.  The source hint of the first network is kept.
    @raise Invalid_argument on an empty list or mismatched sizes. *)

val map_graph :
  ?name:string -> (step:int -> Graph.t -> Graph.t) -> Dynet.t -> Dynet.t
(** [map_graph f net] applies [f] to every exposed graph.  The result
    conservatively reports [changed = true] on every step (the
    transformation may differ step to step) and carries no analytic
    parameters. *)
