let to_dot ?(name = "G") ?highlight ?labels g =
  (match highlight with
  | Some h when Rumor_util.Bitset.capacity h <> Graph.n g ->
    invalid_arg "Export.to_dot: highlight capacity mismatch"
  | _ -> ());
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle];\n";
  for u = 0 to Graph.n g - 1 do
    let label =
      match labels with Some f -> f u | None -> string_of_int u
    in
    let attrs =
      match highlight with
      | Some h when Rumor_util.Bitset.mem h u ->
        Printf.sprintf " [label=\"%s\", style=filled, fillcolor=lightblue]" label
      | _ -> Printf.sprintf " [label=\"%s\"]" label
    in
    Buffer.add_string buf (Printf.sprintf "  n%d%s;\n" u attrs)
  done;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_of_rows ~header rows =
  let arity = List.length header in
  let buf = Buffer.create 1024 in
  let emit row =
    if List.length row <> arity then
      invalid_arg "Export.csv_of_rows: row arity mismatch";
    Buffer.add_string buf (String.concat "," (List.map csv_field row));
    Buffer.add_char buf '\n'
  in
  emit header;
  List.iter emit rows;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
