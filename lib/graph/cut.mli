(** Cuts, conductance and diligence — the graph parameters the paper's
    bounds are stated in (Equations (2), (4) and the absolute-diligence
    definition of Section 5).

    Exact computations enumerate all vertex subsets and are therefore
    restricted to small graphs (they raise beyond
    {!exact_size_limit}); they exist to cross-validate the analytic
    closed forms carried by the constructed dynamic families and the
    spectral estimates of {!Spectral}. *)

open Rumor_util

val exact_size_limit : int
(** Largest [n] accepted by the exact (subset-enumerating)
    functions. *)

val volume_of : Graph.t -> Bitset.t -> int
(** [vol(S)]: sum of degrees over the set. *)

val cut_size : Graph.t -> Bitset.t -> int
(** [|E(S, S-bar)|]: number of edges crossing the set. *)

val cut_edges : Graph.t -> Bitset.t -> (int * int) list
(** Crossing edges, each as [(inside, outside)]. *)

val conductance_of_cut : Graph.t -> Bitset.t -> float
(** [|E(S, S-bar)| / min(vol S, vol S-bar)] (Equation 2 for one set).
    @raise Invalid_argument if either side has zero volume. *)

val diligence_of_cut : Graph.t -> Bitset.t -> float
(** [rho(S)] for the given [S], which must satisfy
    [0 < vol(S) <= vol(G)/2]:
    [min over crossing edges {u,v} of max(dbar(S)/d_u, dbar(S)/d_v)]
    where [dbar(S) = vol(S)/|S|].  Returns [infinity] on an empty cut.
    @raise Invalid_argument if the volume constraint is violated. *)

val conductance_exact : Graph.t -> float
(** [Phi(G)] by subset enumeration; [0.] if disconnected.
    @raise Invalid_argument if [n > exact_size_limit] or [m = 0]. *)

val diligence_exact : Graph.t -> float
(** [rho(G)] by subset enumeration (Equation 4); [0.] if disconnected
    (the paper's convention).
    @raise Invalid_argument if [n > exact_size_limit]. *)

val min_conductance_cut : Graph.t -> Bitset.t * float
(** The minimising subset together with its conductance.
    @raise Invalid_argument as {!conductance_exact}. *)
