open Rumor_rng

type estimate = {
  sweep_value : float;
  gap : float;
  cheeger_lower : float;
  cheeger_upper : float;
}

(* One application of the lazy walk W = (I + D^{-1} A) / 2. *)
let apply_lazy_walk g x out =
  let n = Graph.n g in
  for u = 0 to n - 1 do
    let d = Graph.degree g u in
    let sum = ref 0. in
    Graph.iter_neighbors (fun v -> sum := !sum +. x.(v)) g u;
    out.(u) <- 0.5 *. (x.(u) +. (!sum /. float_of_int d))
  done

(* Project out the component along the all-ones vector with respect to
   the pi-weighted inner product (pi_u proportional to d_u), i.e. the
   top eigenvector of the walk. *)
let deflate g x =
  let n = Graph.n g in
  let vol = float_of_int (Graph.volume g) in
  let mean = ref 0. in
  for u = 0 to n - 1 do
    mean := !mean +. (float_of_int (Graph.degree g u) /. vol *. x.(u))
  done;
  for u = 0 to n - 1 do
    x.(u) <- x.(u) -. !mean
  done

let pi_norm g x =
  let vol = float_of_int (Graph.volume g) in
  let s = ref 0. in
  for u = 0 to Graph.n g - 1 do
    s := !s +. (float_of_int (Graph.degree g u) /. vol *. x.(u) *. x.(u))
  done;
  sqrt !s

let sweep_cut g order =
  (* Prefix sets of the ordering; track volume and cut size
     incrementally: adding node u flips each incident edge's crossing
     status. *)
  let n = Graph.n g in
  let vol_g = Graph.volume g in
  let inside = Array.make n false in
  let vol_s = ref 0 and cut = ref 0 in
  let best = ref infinity in
  Array.iteri
    (fun idx u ->
      inside.(u) <- true;
      vol_s := !vol_s + Graph.degree g u;
      Graph.iter_neighbors
        (fun v -> if inside.(v) then decr cut else incr cut)
        g u;
      if idx < n - 1 && !vol_s > 0 && !vol_s < vol_g then begin
        let phi =
          float_of_int !cut /. float_of_int (min !vol_s (vol_g - !vol_s))
        in
        if phi < !best then best := phi
      end)
    order;
  !best

let estimate ?(iterations = 300) rng g =
  let n = Graph.n g in
  if Graph.m g = 0 then invalid_arg "Spectral.estimate: edgeless graph";
  if Graph.min_degree g = 0 then
    invalid_arg "Spectral.estimate: isolated node (conductance undefined)";
  let x = Array.init n (fun _ -> Rng.float rng -. 0.5) in
  let y = Array.make n 0. in
  deflate g x;
  let norm0 = pi_norm g x in
  if norm0 > 0. then Array.iteri (fun i v -> x.(i) <- v /. norm0) x;
  let lambda = ref 0.5 in
  for _ = 1 to iterations do
    apply_lazy_walk g x y;
    deflate g y;
    let nrm = pi_norm g y in
    if nrm > 1e-300 then begin
      lambda := nrm;
      for u = 0 to n - 1 do
        x.(u) <- y.(u) /. nrm
      done
    end
  done;
  let gap = Float.max 0. (1. -. !lambda) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare x.(a) x.(b)) order;
  let ascending = sweep_cut g order in
  (* Also sweep the reversed order: the better of the two prefixes. *)
  let rev = Array.of_list (List.rev (Array.to_list order)) in
  let descending = sweep_cut g rev in
  let sweep_value = Float.min ascending descending in
  { sweep_value; gap; cheeger_lower = gap /. 2.; cheeger_upper = sqrt (2. *. gap) }

let conductance_sweep ?iterations rng g = (estimate ?iterations rng g).sweep_value
