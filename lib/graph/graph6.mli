(** graph6 interchange format (McKay's nauty suite).

    Compact ASCII encoding of simple undirected graphs: 6 bits per
    character, upper-triangular adjacency bitmap, column-major order.
    Lets constructions from this library be checked against nauty /
    networkx tooling and vice versa.  Supports the standard size
    headers for [n <= 62], [n <= 258047] and the 8-byte long form. *)

val encode : Graph.t -> string
(** graph6 string (without the optional [">>graph6<<"] prefix).
    @raise Invalid_argument for graphs larger than [2^36 - 1] nodes. *)

val decode : string -> Graph.t
(** Inverse of {!encode}.  Accepts an optional [">>graph6<<"] prefix
    and trailing newline.
    @raise Invalid_argument on malformed input. *)
