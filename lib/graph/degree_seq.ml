open Rumor_rng

let is_graphical degrees =
  let n = Array.length degrees in
  if Array.exists (fun d -> d < 0 || d > n - 1) degrees then false
  else begin
    let sum = Array.fold_left ( + ) 0 degrees in
    if sum mod 2 = 1 then false
    else begin
      let d = Array.copy degrees in
      Array.sort (fun a b -> compare b a) d;
      (* Erdos-Gallai: for each k, sum of k largest <= k(k-1) +
         sum_{i>k} min(d_i, k). *)
      let prefix = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        prefix.(i + 1) <- prefix.(i) + d.(i)
      done;
      let ok = ref true in
      for k = 1 to n do
        if !ok then begin
          let lhs = prefix.(k) in
          let rhs = ref (k * (k - 1)) in
          for i = k to n - 1 do
            rhs := !rhs + min d.(i) k
          done;
          if lhs > !rhs then ok := false
        end
      done;
      !ok
    end
  end

let admits_connected degrees =
  let n = Array.length degrees in
  is_graphical degrees
  &&
  if n <= 1 then true
  else
    Array.for_all (fun d -> d >= 1) degrees
    && Array.fold_left ( + ) 0 degrees >= 2 * (n - 1)

let havel_hakimi degrees =
  if not (is_graphical degrees) then
    invalid_arg "Degree_seq.havel_hakimi: sequence is not graphical";
  let n = Array.length degrees in
  let b = Builder.create n in
  (* Residual degrees; each round connect the max-degree node to the
     next-highest nodes. *)
  let residual = Array.copy degrees in
  let nodes = Array.init n (fun i -> i) in
  let by_residual_desc u v = compare (residual.(v), v) (residual.(u), u) in
  let continue = ref true in
  while !continue do
    Array.sort by_residual_desc nodes;
    let u = nodes.(0) in
    if residual.(u) = 0 then continue := false
    else begin
      let need = residual.(u) in
      residual.(u) <- 0;
      for i = 1 to need do
        let v = nodes.(i) in
        (* Graphicality guarantees residual.(v) >= 1 here. *)
        assert (residual.(v) >= 1);
        residual.(v) <- residual.(v) - 1;
        Builder.add_edge_exn b u v
      done
    end
  done;
  Builder.freeze b

(* Degree-preserving 2-swap that merges two components: take edge (a,b)
   in one component and (c,d) in another; replace with (a,c), (b,d).
   Cross-component endpoints are never adjacent, so the result is
   simple. *)
let connect g =
  let n = Graph.n g in
  let degrees = Array.init n (Graph.degree g) in
  if not (admits_connected degrees) then
    invalid_arg "Degree_seq.connect: no connected realization exists";
  if Traverse.is_connected g then g
  else begin
    let b = Builder.create n in
    Graph.iter_edges (fun u v -> Builder.add_edge_exn b u v) g;
    let current () = Builder.freeze b in
    let rec repair guard =
      if guard > 4 * n + 16 then
        failwith "Degree_seq.connect: repair did not converge"
      else begin
        let snapshot = current () in
        let label, count = Traverse.components snapshot in
        if count <= 1 then snapshot
        else begin
          (* One representative edge per component (components with a
             single degree-0 node are impossible: all degrees >= 1). *)
          let comp_edge = Array.make count None in
          Graph.iter_edges
            (fun u v ->
              let c = label.(u) in
              if comp_edge.(c) = None then comp_edge.(c) <- Some (u, v))
            snapshot;
          (match (comp_edge.(0), comp_edge.(1)) with
          | Some (a, bb), Some (c, d) ->
            ignore (Builder.remove_edge b a bb);
            ignore (Builder.remove_edge b c d);
            Builder.add_edge_exn b a c;
            Builder.add_edge_exn b bb d
          | _ ->
            failwith "Degree_seq.connect: component without an edge");
          repair (guard + 1)
        end
      end
    in
    repair 0
  end

let randomize ?swaps ?(preserve_connectivity = false) rng g =
  let n = Graph.n g in
  let m = Graph.m g in
  if m < 2 then g
  else begin
    let swaps = match swaps with Some s -> s | None -> 10 * m in
    let b = Builder.create n in
    Graph.iter_edges (fun u v -> Builder.add_edge_exn b u v) g;
    let edge_arr = Array.copy (Graph.edges g) in
    let try_swap () =
      let i = Rng.int rng m and j = Rng.int rng m in
      if i <> j then begin
        let a, bb = edge_arr.(i) and c, d = edge_arr.(j) in
        (* Orientation choice doubles the reachable swap set. *)
        let c, d = if Rng.bool rng then (c, d) else (d, c) in
        let distinct = a <> c && a <> d && bb <> c && bb <> d in
        if distinct && (not (Builder.has_edge b a c)) && not (Builder.has_edge b bb d)
        then begin
          ignore (Builder.remove_edge b a bb);
          ignore (Builder.remove_edge b c d);
          Builder.add_edge_exn b a c;
          Builder.add_edge_exn b bb d;
          let keep =
            (not preserve_connectivity) || Traverse.is_connected (Builder.freeze b)
          in
          if keep then begin
            edge_arr.(i) <- (min a c, max a c);
            edge_arr.(j) <- (min bb d, max bb d)
          end
          else begin
            ignore (Builder.remove_edge b a c);
            ignore (Builder.remove_edge b bb d);
            Builder.add_edge_exn b a bb;
            Builder.add_edge_exn b c d
          end
        end
      end
    in
    for _ = 1 to swaps do
      try_swap ()
    done;
    Builder.freeze b
  end

let realize_connected rng degrees =
  let g = connect (havel_hakimi degrees) in
  randomize ~swaps:(4 * Graph.m g) ~preserve_connectivity:true rng g

let regular_except_one rng ~n ~d ~special_degree =
  if n < 2 then invalid_arg "Degree_seq.regular_except_one: need n >= 2";
  let degrees = Array.make n d in
  degrees.(0) <- special_degree;
  if not (admits_connected degrees) then
    invalid_arg
      (Printf.sprintf
         "Degree_seq.regular_except_one: sequence (d=%d, special=%d, n=%d) \
          has no connected realization"
         d special_degree n);
  realize_connected rng degrees
