let edge_min_degree_max g =
  Graph.fold_edges
    (fun u v acc -> max acc (min (Graph.degree g u) (Graph.degree g v)))
    g 0

let absolute_diligence g =
  let worst = edge_min_degree_max g in
  if worst = 0 then 0. else 1. /. float_of_int worst

let mean_degree g =
  if Graph.n g = 0 then 0.
  else float_of_int (Graph.volume g) /. float_of_int (Graph.n g)

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for u = 0 to Graph.n g - 1 do
    let d = Graph.degree g u in
    let c = try Hashtbl.find tbl d with Not_found -> 0 in
    Hashtbl.replace tbl d (c + 1)
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort compare

let degree_array g = Array.init (Graph.n g) (Graph.degree g)

let is_rho_diligent g rho = Cut.diligence_exact g > rho
