let bfs g s =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(s) <- 0;
  Queue.push s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
      g u
  done;
  dist

let is_connected g =
  let n = Graph.n g in
  if n <= 1 then true
  else
    let dist = bfs g 0 in
    Array.for_all (fun d -> d >= 0) dist

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      let c = !count in
      incr count;
      let queue = Queue.create () in
      label.(s) <- c;
      Queue.push s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors
          (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- c;
              Queue.push v queue
            end)
          g u
      done
    end
  done;
  (label, !count)

let component_of g s =
  let dist = bfs g s in
  let set = Rumor_util.Bitset.create (Graph.n g) in
  Array.iteri (fun u d -> if d >= 0 then ignore (Rumor_util.Bitset.add set u)) dist;
  set

let eccentricity g s =
  let dist = bfs g s in
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Traverse.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let diameter g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    for s = 0 to n - 1 do
      best := max !best (eccentricity g s)
    done;
    !best
  end
