(* graph6: every byte encodes 6 bits as (value + 63); the header is
   N(n), then the upper triangle x_{0,1} x_{0,2} x_{1,2} x_{0,3} ...
   packed most-significant-bit first and zero-padded to a multiple of
   6. *)

let header n =
  if n < 0 then invalid_arg "Graph6.encode: negative n"
  else if n <= 62 then String.make 1 (Char.chr (n + 63))
  else if n <= 258047 then begin
    let b = Bytes.create 4 in
    Bytes.set b 0 '~';
    Bytes.set b 1 (Char.chr (((n lsr 12) land 63) + 63));
    Bytes.set b 2 (Char.chr (((n lsr 6) land 63) + 63));
    Bytes.set b 3 (Char.chr ((n land 63) + 63));
    Bytes.to_string b
  end
  else if n <= (1 lsl 36) - 1 then begin
    let b = Bytes.create 8 in
    Bytes.set b 0 '~';
    Bytes.set b 1 '~';
    for i = 0 to 5 do
      Bytes.set b (2 + i) (Char.chr (((n lsr ((5 - i) * 6)) land 63) + 63))
    done;
    Bytes.to_string b
  end
  else invalid_arg "Graph6.encode: graph too large"

let encode g =
  let n = Graph.n g in
  let head = header n in
  let nbits = n * (n - 1) / 2 in
  let nbytes = (nbits + 5) / 6 in
  let out = Bytes.make nbytes (Char.chr 63) in
  let bit = ref 0 in
  (* Column-major upper triangle: for v = 1..n-1, u = 0..v-1. *)
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      if Graph.has_edge g u v then begin
        let byte = !bit / 6 and off = !bit mod 6 in
        let current = Char.code (Bytes.get out byte) - 63 in
        Bytes.set out byte (Char.chr ((current lor (1 lsl (5 - off))) + 63))
      end;
      incr bit
    done
  done;
  head ^ Bytes.to_string out

let strip s =
  let s =
    let prefix = ">>graph6<<" in
    if String.length s >= String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
    then String.sub s (String.length prefix) (String.length s - String.length prefix)
    else s
  in
  String.trim s

let decode input =
  let s = strip input in
  let len = String.length s in
  if len = 0 then invalid_arg "Graph6.decode: empty input";
  let byte i =
    if i >= len then invalid_arg "Graph6.decode: truncated input";
    let c = Char.code s.[i] - 63 in
    if c < 0 || c > 63 then invalid_arg "Graph6.decode: invalid character";
    c
  in
  let n, start =
    if s.[0] <> '~' then (byte 0, 1)
    else if len >= 2 && s.[1] <> '~' then
      (((byte 1 lsl 12) lor (byte 2 lsl 6) lor byte 3), 4)
    else begin
      let v = ref 0 in
      for i = 2 to 7 do
        v := (!v lsl 6) lor byte i
      done;
      (!v, 8)
    end
  in
  let nbits = n * (n - 1) / 2 in
  let nbytes = (nbits + 5) / 6 in
  if len < start + nbytes then invalid_arg "Graph6.decode: truncated adjacency";
  let b = Builder.create n in
  let bit = ref 0 in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      let value = byte (start + (!bit / 6)) in
      let off = !bit mod 6 in
      if value land (1 lsl (5 - off)) <> 0 then Builder.add_edge_exn b u v;
      incr bit
    done
  done;
  Builder.freeze b
