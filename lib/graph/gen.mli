(** Graph families: the deterministic and random generators the
    experiments draw their static networks and building blocks from.

    Random generators take an explicit {!Rumor_rng.Rng.t} and are fully
    reproducible.  All outputs are simple graphs; invalid parameter
    combinations raise [Invalid_argument]. *)

open Rumor_rng

val empty : int -> Graph.t
(** [n] isolated nodes. *)

val clique : int -> Graph.t
(** Complete graph [K_n]. *)

val star : int -> Graph.t
(** Star on [n >= 1] nodes with centre [0] (the [K_{1,n-1}] of the
    dynamic-star dichotomy). *)

val path : int -> Graph.t
(** Path [0 - 1 - ... - (n-1)]. *)

val cycle : int -> Graph.t
(** Cycle on [n >= 3] nodes. *)

val circulant : int -> int list -> Graph.t
(** [circulant n strides] connects [i] to [i ± s mod n] for each stride
    [s].  With strides [1..d/2] this is the canonical connected
    [d]-regular graph used for [G(B, Delta)] in Section 5.1.
    @raise Invalid_argument if any stride [s] violates
    [1 <= s <= n/2], or strides repeat, or [s = n/2] is listed when that
    chord class collapses to single edges together with another use. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b]: side A is [{0..a-1}], side B the rest. *)

val grid : int -> int -> Graph.t
(** [grid w h]: 4-neighbour lattice without wraparound. *)

val torus : int -> int -> Graph.t
(** [torus w h]: lattice with wraparound; requires [w, h >= 3] to stay
    simple. *)

val hypercube : int -> Graph.t
(** [hypercube d] on [2^d] nodes. *)

val binary_tree : int -> Graph.t
(** Complete binary heap-shaped tree on [n] nodes. *)

val barbell : int -> Graph.t
(** Two [K_n] cliques joined by a single bridge edge: the classic
    low-conductance static network (spread bottleneck). Total [2n]
    nodes. *)

val lollipop : int -> int -> Graph.t
(** [lollipop clique_size path_len]: [K_clique_size] with a path of
    [path_len] extra nodes hanging off node 0. *)

val clique_with_pendant : int -> Graph.t
(** [K_n] plus one pendant node attached to node [0] — the [G^(0)] of
    the dynamic network [G1] (Figure 1a).  Total [n+1] nodes; the
    pendant is node [n]. *)

val two_cliques_bridged : int -> Graph.t
(** Two cliques of sizes [ceil(N/2)], [floor(N/2)] over [N = n+1] total
    nodes, joined by the bridge [{0, n}] — the [G^(t>=1)] of [G1]
    (Figure 1a): node [0] sits in the left clique and node [n] in the
    right. *)

val erdos_renyi : Rng.t -> int -> float -> Graph.t
(** [G(n, p)]: every pair independently with probability [p]. *)

val random_regular : Rng.t -> int -> int -> Graph.t
(** [random_regular rng n d]: a uniform-ish simple [d]-regular graph by
    the configuration model with restart on collisions; w.h.p. an
    expander for fixed [d >= 3].
    @raise Invalid_argument if [n * d] is odd or [d >= n] or [d < 0]. *)

val random_connected_regular : Rng.t -> int -> int -> Graph.t
(** Like {!random_regular} but resamples until connected ([d >= 3]
    virtually always succeeds on the first draw). *)

val wheel : int -> Graph.t
(** [wheel n]: node 0 as hub joined to an (n-1)-cycle; [n >= 4].  A
    star with local rim redundancy — diligence sits strictly between
    the star's 1 and a bounded-degree graph's. *)

val watts_strogatz : Rng.t -> int -> int -> float -> Graph.t
(** [watts_strogatz rng n k beta]: ring lattice with [k] neighbours per
    side, each lattice edge rewired with probability [beta] (rewired
    endpoints avoid loops and duplicates; a saturated node skips the
    rewire).  The standard small-world model for "social" gossip
    workloads.
    @raise Invalid_argument unless [1 <= k <= (n-1)/2] and
    [0 <= beta <= 1]. *)

val barabasi_albert : Rng.t -> int -> int -> Graph.t
(** [barabasi_albert rng n m]: preferential attachment starting from an
    [m+1]-clique, each arriving node attaching to [m] distinct existing
    nodes sampled proportionally to degree.  Produces the heavy-tailed
    degree distributions of the paper's "social networks" motivation
    (Doerr et al. [12]).
    @raise Invalid_argument unless [1 <= m < n]. *)

val random_geometric_torus : Rng.t -> int -> float -> Graph.t
(** [random_geometric_torus rng n radius]: [n] points uniform on the
    unit torus, edges between pairs at toroidal Euclidean distance
    [<= radius] — the static snapshot of the mobile-agent model.
    @raise Invalid_argument if [radius < 0]. *)
