(** Cheap (polynomial-time) graph parameters.

    Absolute diligence is an O(m) quantity (Section 5); the degree
    statistics feed the [M(G)] factor of the Giakkoupis et al. bound
    the paper compares against (Section 1.2). *)

val absolute_diligence : Graph.t -> float
(** [rho-bar(G) = min over edges {u,v} of max(1/d_u, 1/d_v)]; the paper
    sets it to [0.] on an empty (edgeless) graph. *)

val mean_degree : Graph.t -> float
(** [vol(G) / n]; [0.] on the empty graph. *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs in increasing degree order. *)

val degree_array : Graph.t -> int array

val edge_min_degree_max : Graph.t -> int
(** [max over edges of min(d_u, d_v)] — the reciprocal of absolute
    diligence; 0 on an edgeless graph. *)

val is_rho_diligent : Graph.t -> float -> bool
(** [is_rho_diligent g rho] iff [rho(G) > rho], computed exactly
    (so subject to {!Cut.exact_size_limit}). *)
