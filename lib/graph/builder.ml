type t = {
  n : int;
  mutable m : int;
  neigh : (int, unit) Hashtbl.t array; (* adjacency sets *)
}

let create n =
  if n < 0 then invalid_arg "Builder.create: negative node count";
  { n; m = 0; neigh = Array.init (max 1 n) (fun _ -> Hashtbl.create 4) }

let n b = b.n

let m b = b.m

let check b u =
  if u < 0 || u >= b.n then
    invalid_arg (Printf.sprintf "Builder: node %d out of range [0, %d)" u b.n)

let degree b u =
  check b u;
  Hashtbl.length b.neigh.(u)

let has_edge b u v =
  check b u;
  check b v;
  Hashtbl.mem b.neigh.(u) v

let add_edge b u v =
  check b u;
  check b v;
  if u = v then invalid_arg (Printf.sprintf "Builder.add_edge: self-loop at %d" u);
  if Hashtbl.mem b.neigh.(u) v then false
  else begin
    Hashtbl.replace b.neigh.(u) v ();
    Hashtbl.replace b.neigh.(v) u ();
    b.m <- b.m + 1;
    true
  end

let add_edge_exn b u v =
  if not (add_edge b u v) then
    invalid_arg (Printf.sprintf "Builder.add_edge_exn: duplicate edge (%d, %d)" u v)

let remove_edge b u v =
  check b u;
  check b v;
  if Hashtbl.mem b.neigh.(u) v then begin
    Hashtbl.remove b.neigh.(u) v;
    Hashtbl.remove b.neigh.(v) u;
    b.m <- b.m - 1;
    true
  end
  else false

let add_clique b nodes =
  let k = Array.length nodes in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      ignore (add_edge b nodes.(i) nodes.(j))
    done
  done

let add_complete_bipartite b left right =
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if u = v then
            invalid_arg "Builder.add_complete_bipartite: sides intersect";
          ignore (add_edge b u v))
        right)
    left

let freeze b =
  let adj =
    Array.init b.n (fun u ->
        let a = Array.make (Hashtbl.length b.neigh.(u)) 0 in
        let k = ref 0 in
        Hashtbl.iter
          (fun v () ->
            a.(!k) <- v;
            incr k)
          b.neigh.(u);
        Array.sort compare a;
        a)
  in
  Graph.unsafe_make ~n:b.n ~adj
