(** Spectral conductance estimation for graphs too large for
    {!Cut.conductance_exact}.

    Power iteration on the lazy random walk [W = (I + D^{-1}A)/2]
    approximates the second eigenvalue; a sweep cut over the resulting
    (approximate) Fiedler ordering yields a genuine conductance upper
    bound, and Cheeger's inequality turns the spectral gap into a lower
    bound:

    [gap / 2 <= Phi(G) <= sqrt(2 * gap)]

    where [gap = 1 - lambda_2(W)].  The sweep value is always an
    attained cut, so [conductance_sweep >= Phi(G)] exactly. *)

open Rumor_rng

type estimate = {
  sweep_value : float;      (** conductance of the best sweep cut (upper bound on Phi) *)
  gap : float;              (** estimated spectral gap of the lazy walk *)
  cheeger_lower : float;    (** gap / 2 *)
  cheeger_upper : float;    (** sqrt(2 * gap) *)
}

val estimate : ?iterations:int -> Rng.t -> Graph.t -> estimate
(** [estimate rng g] runs power iteration (default 300 iterations; the
    vector is re-orthogonalised against the stationary distribution
    every step) followed by a full sweep.
    @raise Invalid_argument on a graph with an isolated node or no
    edges (conductance undefined). *)

val conductance_sweep : ?iterations:int -> Rng.t -> Graph.t -> float
(** Just the sweep-cut upper bound. *)
