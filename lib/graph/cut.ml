open Rumor_util

let exact_size_limit = 22

let volume_of g set = Bitset.fold (fun u acc -> acc + Graph.degree g u) set 0

let cut_size g set =
  Graph.fold_edges
    (fun u v acc ->
      if Bitset.mem set u <> Bitset.mem set v then acc + 1 else acc)
    g 0

let cut_edges g set =
  Graph.fold_edges
    (fun u v acc ->
      match (Bitset.mem set u, Bitset.mem set v) with
      | true, false -> (u, v) :: acc
      | false, true -> (v, u) :: acc
      | true, true | false, false -> acc)
    g []

let conductance_of_cut g set =
  let vol_s = volume_of g set in
  let vol_rest = Graph.volume g - vol_s in
  if vol_s = 0 || vol_rest = 0 then
    invalid_arg "Cut.conductance_of_cut: a side has zero volume";
  float_of_int (cut_size g set) /. float_of_int (min vol_s vol_rest)

let diligence_of_cut g set =
  let vol_s = volume_of g set in
  let vol_g = Graph.volume g in
  if vol_s <= 0 || 2 * vol_s > vol_g then
    invalid_arg "Cut.diligence_of_cut: need 0 < vol(S) <= vol(G)/2";
  let dbar = float_of_int vol_s /. float_of_int (Bitset.cardinal set) in
  Graph.fold_edges
    (fun u v acc ->
      if Bitset.mem set u <> Bitset.mem set v then
        let du = float_of_int (Graph.degree g u)
        and dv = float_of_int (Graph.degree g v) in
        min acc (Float.max (dbar /. du) (dbar /. dv))
      else acc)
    g infinity

let check_exact g =
  let n = Graph.n g in
  if n > exact_size_limit then
    invalid_arg
      (Printf.sprintf "Cut: exact enumeration limited to n <= %d (got %d)"
         exact_size_limit n)

(* Enumerate subsets by bitmask.  Degree prefix, volumes and cut sizes
   are recomputed per subset over the edge list: O(2^n * m), fine for
   n <= exact_size_limit on the test sizes we use. *)
let enumerate g f =
  let n = Graph.n g in
  let edges = Graph.edges g in
  let degrees = Array.init n (Graph.degree g) in
  let vol_g = Graph.volume g in
  for mask = 1 to (1 lsl n) - 2 do
    let vol_s = ref 0 in
    for u = 0 to n - 1 do
      if mask land (1 lsl u) <> 0 then vol_s := !vol_s + degrees.(u)
    done;
    f ~mask ~vol_s:!vol_s ~vol_g ~edges ~degrees
  done

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let conductance_exact g =
  check_exact g;
  if Graph.m g = 0 then invalid_arg "Cut.conductance_exact: edgeless graph";
  if not (Traverse.is_connected g) then 0.
  else begin
    let best = ref infinity in
    enumerate g (fun ~mask ~vol_s ~vol_g ~edges ~degrees:_ ->
        if vol_s > 0 && vol_s < vol_g then begin
          let cut = ref 0 in
          Array.iter
            (fun (u, v) ->
              let iu = mask land (1 lsl u) <> 0
              and iv = mask land (1 lsl v) <> 0 in
              if iu <> iv then incr cut)
            edges;
          let phi =
            float_of_int !cut /. float_of_int (min vol_s (vol_g - vol_s))
          in
          if phi < !best then best := phi
        end);
    !best
  end

let diligence_exact g =
  check_exact g;
  if not (Traverse.is_connected g) then 0.
  else begin
    let n = Graph.n g in
    let best = ref infinity in
    enumerate g (fun ~mask ~vol_s ~vol_g ~edges ~degrees ->
        if vol_s > 0 && 2 * vol_s <= vol_g then begin
          let size_s = popcount mask in
          let dbar = float_of_int vol_s /. float_of_int size_s in
          let rho_s = ref infinity in
          Array.iter
            (fun (u, v) ->
              let iu = mask land (1 lsl u) <> 0
              and iv = mask land (1 lsl v) <> 0 in
              if iu <> iv then begin
                let du = float_of_int degrees.(u)
                and dv = float_of_int degrees.(v) in
                let m = Float.max (dbar /. du) (dbar /. dv) in
                if m < !rho_s then rho_s := m
              end)
            edges;
          if !rho_s < !best then best := !rho_s
        end);
    ignore n;
    !best
  end

let min_conductance_cut g =
  check_exact g;
  if Graph.m g = 0 then invalid_arg "Cut.min_conductance_cut: edgeless graph";
  let n = Graph.n g in
  if not (Traverse.is_connected g) then
    (* Return one whole component: conductance 0. *)
    (Traverse.component_of g 0, 0.)
  else begin
    let best = ref infinity and best_mask = ref 1 in
    enumerate g (fun ~mask ~vol_s ~vol_g ~edges ~degrees:_ ->
        if vol_s > 0 && vol_s < vol_g then begin
          let cut = ref 0 in
          Array.iter
            (fun (u, v) ->
              let iu = mask land (1 lsl u) <> 0
              and iv = mask land (1 lsl v) <> 0 in
              if iu <> iv then incr cut)
            edges;
          let phi =
            float_of_int !cut /. float_of_int (min vol_s (vol_g - vol_s))
          in
          if phi < !best then begin
            best := phi;
            best_mask := mask
          end
        end);
    let set = Bitset.create n in
    for u = 0 to n - 1 do
      if !best_mask land (1 lsl u) <> 0 then ignore (Bitset.add set u)
    done;
    (set, !best)
  end
