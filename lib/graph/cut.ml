open Rumor_util

let exact_size_limit = 22

let volume_of g set = Bitset.fold (fun u acc -> acc + Graph.degree g u) set 0

let cut_size g set =
  Graph.fold_edges
    (fun u v acc ->
      if Bitset.mem set u <> Bitset.mem set v then acc + 1 else acc)
    g 0

let cut_edges g set =
  Graph.fold_edges
    (fun u v acc ->
      match (Bitset.mem set u, Bitset.mem set v) with
      | true, false -> (u, v) :: acc
      | false, true -> (v, u) :: acc
      | true, true | false, false -> acc)
    g []

let conductance_of_cut g set =
  let vol_s = volume_of g set in
  let vol_rest = Graph.volume g - vol_s in
  if vol_s = 0 || vol_rest = 0 then
    invalid_arg "Cut.conductance_of_cut: a side has zero volume";
  float_of_int (cut_size g set) /. float_of_int (min vol_s vol_rest)

let diligence_of_cut g set =
  let vol_s = volume_of g set in
  let vol_g = Graph.volume g in
  if vol_s <= 0 || 2 * vol_s > vol_g then
    invalid_arg "Cut.diligence_of_cut: need 0 < vol(S) <= vol(G)/2";
  let dbar = float_of_int vol_s /. float_of_int (Bitset.cardinal set) in
  Graph.fold_edges
    (fun u v acc ->
      if Bitset.mem set u <> Bitset.mem set v then
        let du = float_of_int (Graph.degree g u)
        and dv = float_of_int (Graph.degree g v) in
        min acc (Float.max (dbar /. du) (dbar /. dv))
      else acc)
    g infinity

let check_exact g =
  let n = Graph.n g in
  if n > exact_size_limit then
    invalid_arg
      (Printf.sprintf "Cut: exact enumeration limited to n <= %d (got %d)"
         exact_size_limit n)

let popcount_byte =
  Array.init 256 (fun b ->
      let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
      go b 0)

(* n <= exact_size_limit = 22, so masks span at most three bytes. *)
let popcount mask =
  popcount_byte.(mask land 0xff)
  + popcount_byte.((mask lsr 8) land 0xff)
  + popcount_byte.((mask lsr 16) land 0xff)

let bit_index b =
  let i = ref 0 and b = ref b in
  while !b > 1 do
    incr i;
    b := !b lsr 1
  done;
  !i

(* Enumerate the proper non-empty subsets in Gray-code order, so that
   consecutive masks differ in exactly one node: size, volume and cut
   size are maintained incrementally in O(1) word operations per step
   (flipping node x changes the cut by +-(deg x - 2 * |N(x) cap S|)),
   for O(2^n) total instead of the previous O(2^n * (n + m)) rescans.
   Every maintained quantity is an integer, so the callback sees exactly
   the values a from-scratch recomputation would produce. *)
let enumerate g f =
  let n = Graph.n g in
  let edges = Graph.edges g in
  let degrees = Array.init n (Graph.degree g) in
  let vol_g = Graph.volume g in
  (* Adjacency as bitmasks: n <= exact_size_limit fits one word. *)
  let adj = Array.make (max 1 n) 0 in
  Array.iter
    (fun (u, v) ->
      adj.(u) <- adj.(u) lor (1 lsl v);
      adj.(v) <- adj.(v) lor (1 lsl u))
    edges;
  let full = (1 lsl n) - 1 in
  let mask = ref 0 and size_s = ref 0 and vol_s = ref 0 and cut_s = ref 0 in
  for i = 1 to full do
    (* gray(i) = i lxor (i lsr 1) differs from gray(i-1) in the lowest
       set bit of i. *)
    let b = i land -i in
    let x = bit_index b in
    (* adj.(x) never contains x, so the intersection is the same whether
       measured before or after the flip. *)
    let inside = popcount (adj.(x) land !mask) in
    if !mask land b = 0 then begin
      mask := !mask lor b;
      incr size_s;
      vol_s := !vol_s + degrees.(x);
      cut_s := !cut_s + degrees.(x) - (2 * inside)
    end
    else begin
      mask := !mask lxor b;
      decr size_s;
      vol_s := !vol_s - degrees.(x);
      cut_s := !cut_s - degrees.(x) + (2 * inside)
    end;
    if !mask <> 0 && !mask <> full then
      f ~mask:!mask ~size_s:!size_s ~vol_s:!vol_s ~cut_s:!cut_s ~vol_g ~edges
        ~degrees
  done

let conductance_exact g =
  check_exact g;
  if Graph.m g = 0 then invalid_arg "Cut.conductance_exact: edgeless graph";
  if not (Traverse.is_connected g) then 0.
  else begin
    let best = ref infinity in
    enumerate g
      (fun ~mask:_ ~size_s:_ ~vol_s ~cut_s ~vol_g ~edges:_ ~degrees:_ ->
        if vol_s > 0 && vol_s < vol_g then begin
          let phi =
            float_of_int cut_s /. float_of_int (min vol_s (vol_g - vol_s))
          in
          if phi < !best then best := phi
        end);
    !best
  end

let diligence_exact g =
  check_exact g;
  if not (Traverse.is_connected g) then 0.
  else begin
    let best = ref infinity in
    enumerate g (fun ~mask ~size_s ~vol_s ~cut_s:_ ~vol_g ~edges ~degrees ->
        if vol_s > 0 && 2 * vol_s <= vol_g then begin
          let dbar = float_of_int vol_s /. float_of_int size_s in
          let rho_s = ref infinity in
          Array.iter
            (fun (u, v) ->
              let iu = mask land (1 lsl u) <> 0
              and iv = mask land (1 lsl v) <> 0 in
              if iu <> iv then begin
                let du = float_of_int degrees.(u)
                and dv = float_of_int degrees.(v) in
                let m = Float.max (dbar /. du) (dbar /. dv) in
                if m < !rho_s then rho_s := m
              end)
            edges;
          if !rho_s < !best then best := !rho_s
        end);
    !best
  end

let min_conductance_cut g =
  check_exact g;
  if Graph.m g = 0 then invalid_arg "Cut.min_conductance_cut: edgeless graph";
  let n = Graph.n g in
  if not (Traverse.is_connected g) then
    (* Return one whole component: conductance 0. *)
    (Traverse.component_of g 0, 0.)
  else begin
    let best = ref infinity and best_mask = ref 1 in
    enumerate g (fun ~mask ~size_s:_ ~vol_s ~cut_s ~vol_g ~edges:_ ~degrees:_ ->
        if vol_s > 0 && vol_s < vol_g then begin
          let phi =
            float_of_int cut_s /. float_of_int (min vol_s (vol_g - vol_s))
          in
          if phi < !best then begin
            best := phi;
            best_mask := mask
          end
        end);
    let set = Bitset.create n in
    for u = 0 to n - 1 do
      if !best_mask land (1 lsl u) <> 0 then ignore (Bitset.add set u)
    done;
    (set, !best)
  end
