(** Degree-sequence realization.

    Section 5.1 of the paper needs [G(A, d1, d2)]: a connected simple
    graph in which every node has degree [d1] except one node of degree
    [d2].  This module provides the general machinery: the
    Erdős–Gallai graphicality test, Havel–Hakimi construction,
    connectivity repair by 2-swaps (possible whenever the sequence
    admits a connected realization), and uniformising double edge
    swaps. *)

open Rumor_rng

val is_graphical : int array -> bool
(** Erdős–Gallai: does a simple graph with this degree sequence
    exist? *)

val admits_connected : int array -> bool
(** A graphical sequence admits a connected realization iff all degrees
    are positive and the degree sum is at least [2(n-1)]
    (for [n >= 2]). *)

val havel_hakimi : int array -> Graph.t
(** Deterministic realization.
    @raise Invalid_argument if the sequence is not graphical. *)

val connect : Graph.t -> Graph.t
(** Degree-preserving 2-swaps until connected.
    @raise Invalid_argument if the degree sequence does not admit a
    connected realization. *)

val randomize : ?swaps:int -> ?preserve_connectivity:bool -> Rng.t -> Graph.t -> Graph.t
(** [randomize rng g] applies random double edge swaps (defaults:
    [10 * m] attempted swaps, connectivity not enforced) to
    approximately uniformise over realizations of the same degree
    sequence.  With [~preserve_connectivity:true], swaps that
    disconnect the graph are rolled back. *)

val realize_connected : Rng.t -> int array -> Graph.t
(** Havel–Hakimi, then {!connect}, then a light {!randomize} preserving
    connectivity: a random-looking connected graph with exactly the
    given degrees.
    @raise Invalid_argument if no connected realization exists. *)

val regular_except_one : Rng.t -> n:int -> d:int -> special_degree:int -> Graph.t
(** The paper's [G(A, d1, d2)]: [n]-node connected graph where node [0]
    has degree [special_degree] and all others degree [d].
    @raise Invalid_argument if the sequence is not graphical/connected
    (e.g. odd degree sum). *)
