(** Dense symmetric eigensolver (cyclic Jacobi rotations).

    Complements {!Spectral}'s power iteration: for graphs up to a few
    hundred nodes it computes the {e full} spectrum of the normalized
    adjacency operator, giving the exact spectral gap (hence sharp
    Cheeger bounds) instead of an iterative estimate.  Classical test
    spectra (cycle, complete graph, hypercube, complete bipartite) pin
    the implementation down in the test suite. *)

val jacobi : ?max_sweeps:int -> ?tol:float -> float array array -> float array
(** [jacobi a] returns the eigenvalues of the symmetric matrix [a] in
    ascending order.  [a] is not modified.  Convergence: off-diagonal
    Frobenius mass below [tol] (default 1e-12 times the input's norm),
    or [max_sweeps] (default 100) cyclic sweeps.
    @raise Invalid_argument if [a] is empty, non-square, or
    asymmetric beyond 1e-9. *)

val normalized_adjacency_spectrum : Graph.t -> float array
(** Eigenvalues of [D^{-1/2} A D^{-1/2}] in ascending order — the
    symmetric form of the random-walk operator (same spectrum).
    @raise Invalid_argument on a graph with an isolated node. *)

val spectral_gap : Graph.t -> float
(** The second eigenvalue of the normalized Laplacian,
    [lambda_2(L) = 1 - lambda_{n-1}(D^{-1/2} A D^{-1/2})].
    @raise Invalid_argument as above, or on fewer than 2 nodes. *)

val cheeger_bounds : Graph.t -> float * float
(** [(gap/2, sqrt(2 gap))] — the exact Cheeger sandwich
    [gap/2 <= Phi(G) <= sqrt(2 gap)]. *)
