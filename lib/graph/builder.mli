(** Mutable construction of simple graphs.

    A builder accumulates edges with O(1) duplicate detection and
    freezes into an immutable {!Graph.t}.  All generators in {!Gen} and
    all dynamic-network families construct graphs through this
    module. *)

type t

val create : int -> t
(** [create n] starts an edgeless builder over [n] nodes.
    @raise Invalid_argument if [n < 0]. *)

val n : t -> int

val m : t -> int
(** Current edge count. *)

val degree : t -> int -> int

val has_edge : t -> int -> int -> bool

val add_edge : t -> int -> int -> bool
(** [add_edge b u v] inserts the undirected edge; returns [false] if it
    was already present.  @raise Invalid_argument on a self-loop or an
    out-of-range endpoint. *)

val add_edge_exn : t -> int -> int -> unit
(** Like {!add_edge} but raises [Invalid_argument] on a duplicate: used
    by constructions that must never collide (e.g. the bipartite string
    of Section 4). *)

val remove_edge : t -> int -> int -> bool
(** Returns [false] if the edge was absent. *)

val add_clique : t -> int array -> unit
(** Pairwise-connect the given nodes (duplicates with existing edges
    are silently kept single). *)

val add_complete_bipartite : t -> int array -> int array -> unit
(** Connect every node of the first side to every node of the second.
    @raise Invalid_argument if the sides intersect. *)

val freeze : t -> Graph.t
(** Freeze into an immutable graph.  The builder remains usable (the
    frozen graph is a snapshot). *)
