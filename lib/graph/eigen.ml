let check_symmetric a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Eigen.jacobi: empty matrix";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Eigen.jacobi: non-square matrix")
    a;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Float.abs (a.(i).(j) -. a.(j).(i)) > 1e-9 then
        invalid_arg "Eigen.jacobi: asymmetric matrix"
    done
  done

let off_diagonal_norm a =
  let n = Array.length a in
  let s = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      s := !s +. (2. *. a.(i).(j) *. a.(i).(j))
    done
  done;
  sqrt !s

let frobenius a =
  let s = ref 0. in
  Array.iter (fun row -> Array.iter (fun x -> s := !s +. (x *. x)) row) a;
  sqrt !s

(* One Jacobi rotation zeroing a.(p).(q). *)
let rotate a p q =
  let apq = a.(p).(q) in
  if Float.abs apq > 0. then begin
    let n = Array.length a in
    let theta = (a.(q).(q) -. a.(p).(p)) /. (2. *. apq) in
    let t =
      let sign = if theta >= 0. then 1. else -1. in
      sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
    in
    let c = 1. /. sqrt ((t *. t) +. 1.) in
    let s = t *. c in
    let app = a.(p).(p) and aqq = a.(q).(q) in
    a.(p).(p) <- (c *. c *. app) -. (2. *. s *. c *. apq) +. (s *. s *. aqq);
    a.(q).(q) <- (s *. s *. app) +. (2. *. s *. c *. apq) +. (c *. c *. aqq);
    a.(p).(q) <- 0.;
    a.(q).(p) <- 0.;
    for k = 0 to n - 1 do
      if k <> p && k <> q then begin
        let akp = a.(k).(p) and akq = a.(k).(q) in
        a.(k).(p) <- (c *. akp) -. (s *. akq);
        a.(p).(k) <- a.(k).(p);
        a.(k).(q) <- (s *. akp) +. (c *. akq);
        a.(q).(k) <- a.(k).(q)
      end
    done
  end

let jacobi ?(max_sweeps = 100) ?tol a0 =
  check_symmetric a0;
  let n = Array.length a0 in
  let a = Array.map Array.copy a0 in
  let tol =
    match tol with Some t -> t | None -> 1e-12 *. Float.max 1. (frobenius a)
  in
  let sweeps = ref 0 in
  while off_diagonal_norm a > tol && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate a p q
      done
    done
  done;
  let eig = Array.init n (fun i -> a.(i).(i)) in
  Array.sort compare eig;
  eig

let normalized_adjacency_matrix g =
  let n = Graph.n g in
  if Graph.min_degree g = 0 && n > 0 then
    invalid_arg "Eigen: isolated node (normalized adjacency undefined)";
  let inv_sqrt_deg =
    Array.init n (fun u -> 1. /. sqrt (float_of_int (Graph.degree g u)))
  in
  let a = Array.make_matrix n n 0. in
  Graph.iter_edges
    (fun u v ->
      let w = inv_sqrt_deg.(u) *. inv_sqrt_deg.(v) in
      a.(u).(v) <- w;
      a.(v).(u) <- w)
    g;
  a

let normalized_adjacency_spectrum g = jacobi (normalized_adjacency_matrix g)

let spectral_gap g =
  let spectrum = normalized_adjacency_spectrum g in
  let n = Array.length spectrum in
  if n < 2 then invalid_arg "Eigen.spectral_gap: need at least 2 nodes";
  (* Largest eigenvalue of the normalized adjacency is 1; the gap is
     the second eigenvalue of the normalized Laplacian,
     lambda_2(L) = 1 - lambda_{n-1}(A_norm). *)
  1. -. spectrum.(n - 2)

let cheeger_bounds g =
  let gap = spectral_gap g in
  (gap /. 2., sqrt (2. *. gap))
