open Rumor_rng

let empty n = Builder.freeze (Builder.create n)

let clique n =
  let b = Builder.create n in
  Builder.add_clique b (Array.init n (fun i -> i));
  Builder.freeze b

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  let b = Builder.create n in
  for leaf = 1 to n - 1 do
    Builder.add_edge_exn b 0 leaf
  done;
  Builder.freeze b

let path n =
  let b = Builder.create n in
  for i = 0 to n - 2 do
    Builder.add_edge_exn b i (i + 1)
  done;
  Builder.freeze b

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  let b = Builder.create n in
  for i = 0 to n - 1 do
    ignore (Builder.add_edge b i ((i + 1) mod n))
  done;
  Builder.freeze b

let circulant n strides =
  if n < 1 then invalid_arg "Gen.circulant: need n >= 1";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if s < 1 || 2 * s > n then
        invalid_arg (Printf.sprintf "Gen.circulant: stride %d out of (0, n/2]" s);
      if Hashtbl.mem seen s then
        invalid_arg (Printf.sprintf "Gen.circulant: repeated stride %d" s);
      Hashtbl.add seen s ())
    strides;
  let b = Builder.create n in
  List.iter
    (fun s ->
      for i = 0 to n - 1 do
        ignore (Builder.add_edge b i ((i + s) mod n))
      done)
    strides;
  Builder.freeze b

let complete_bipartite a bn =
  if a < 0 || bn < 0 then invalid_arg "Gen.complete_bipartite: negative side";
  let b = Builder.create (a + bn) in
  Builder.add_complete_bipartite b
    (Array.init a (fun i -> i))
    (Array.init bn (fun i -> a + i));
  Builder.freeze b

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Gen.grid: need positive dimensions";
  let idx x y = (y * w) + x in
  let b = Builder.create (w * h) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then Builder.add_edge_exn b (idx x y) (idx (x + 1) y);
      if y + 1 < h then Builder.add_edge_exn b (idx x y) (idx x (y + 1))
    done
  done;
  Builder.freeze b

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Gen.torus: need w, h >= 3";
  let idx x y = (y * w) + x in
  let b = Builder.create (w * h) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      ignore (Builder.add_edge b (idx x y) (idx ((x + 1) mod w) y));
      ignore (Builder.add_edge b (idx x y) (idx x ((y + 1) mod h)))
    done
  done;
  Builder.freeze b

let hypercube d =
  if d < 0 then invalid_arg "Gen.hypercube: negative dimension";
  let n = 1 lsl d in
  let b = Builder.create n in
  for u = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let v = u lxor (1 lsl bit) in
      if u < v then Builder.add_edge_exn b u v
    done
  done;
  Builder.freeze b

let binary_tree n =
  let b = Builder.create n in
  for i = 1 to n - 1 do
    Builder.add_edge_exn b i ((i - 1) / 2)
  done;
  Builder.freeze b

let barbell n =
  if n < 1 then invalid_arg "Gen.barbell: need n >= 1";
  let b = Builder.create (2 * n) in
  Builder.add_clique b (Array.init n (fun i -> i));
  Builder.add_clique b (Array.init n (fun i -> n + i));
  Builder.add_edge_exn b (n - 1) n;
  Builder.freeze b

let lollipop clique_size path_len =
  if clique_size < 1 || path_len < 0 then invalid_arg "Gen.lollipop: bad sizes";
  let b = Builder.create (clique_size + path_len) in
  Builder.add_clique b (Array.init clique_size (fun i -> i));
  for i = 0 to path_len - 1 do
    let v = clique_size + i in
    let u = if i = 0 then 0 else v - 1 in
    Builder.add_edge_exn b u v
  done;
  Builder.freeze b

let clique_with_pendant n =
  if n < 1 then invalid_arg "Gen.clique_with_pendant: need n >= 1";
  let b = Builder.create (n + 1) in
  Builder.add_clique b (Array.init n (fun i -> i));
  Builder.add_edge_exn b 0 n;
  Builder.freeze b

let two_cliques_bridged n =
  if n < 1 then invalid_arg "Gen.two_cliques_bridged: need n >= 1";
  let total = n + 1 in
  let left_size = (total + 1) / 2 in
  let b = Builder.create total in
  Builder.add_clique b (Array.init left_size (fun i -> i));
  Builder.add_clique b (Array.init (total - left_size) (fun i -> left_size + i));
  (* Bridge between node 0 (left) and node n (right); if n fell in the
     left half (tiny graphs) use the first right node instead. *)
  let right_rep = if n >= left_size then n else left_size in
  ignore (Builder.add_edge b 0 right_rep);
  Builder.freeze b

let erdos_renyi rng n p =
  if n < 0 then invalid_arg "Gen.erdos_renyi: negative n";
  if p < 0. || p > 1. then invalid_arg "Gen.erdos_renyi: p outside [0, 1]";
  let b = Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then Builder.add_edge_exn b u v
    done
  done;
  Builder.freeze b

(* Steger-Wormald sequential stub matching: repeatedly pair two random
   remaining stubs, rejecting only the offending pair on a self-loop or
   parallel edge (not the whole graph, whose acceptance probability
   e^{-(d^2-1)/4} is hopeless already at d ~ 6).  Restart only when the
   tail of the pairing gets stuck; asymptotically the distribution is
   uniform for d = O(n^{1/3}). *)
let random_regular rng n d =
  if d < 0 then invalid_arg "Gen.random_regular: negative degree";
  if d >= n && not (n = 0 && d = 0) then
    invalid_arg "Gen.random_regular: need d < n";
  if n * d mod 2 = 1 then invalid_arg "Gen.random_regular: n * d must be even";
  if d = 0 then empty n
  else begin
    let total = n * d in
    let stubs = Array.make total 0 in
    let attempt () =
      for i = 0 to total - 1 do
        stubs.(i) <- i / d
      done;
      let b = Builder.create n in
      let remaining = ref total in
      let stuck = ref 0 in
      let take idx =
        let v = stubs.(idx) in
        stubs.(idx) <- stubs.(!remaining - 1);
        decr remaining;
        v
      in
      while !remaining > 0 && !stuck < 2000 do
        let i = Rng.int rng !remaining in
        let j = Rng.int rng !remaining in
        if i <> j then begin
          let u = stubs.(i) and v = stubs.(j) in
          if u <> v && not (Builder.has_edge b u v) then begin
            (* Remove the higher index first so the lower stays valid. *)
            let hi = max i j and lo = min i j in
            ignore (take hi);
            ignore (take lo);
            ignore (Builder.add_edge b u v);
            stuck := 0
          end
          else incr stuck
        end
        else incr stuck
      done;
      if !remaining = 0 then Some (Builder.freeze b) else None
    in
    let rec retry k =
      if k > 1_000 then
        failwith "Gen.random_regular: too many restarts (degenerate parameters)"
      else
        match attempt () with Some g -> g | None -> retry (k + 1)
    in
    retry 0
  end

let random_connected_regular rng n d =
  if d < 1 then invalid_arg "Gen.random_connected_regular: need d >= 1";
  let rec retry k =
    if k > 1_000 then
      failwith "Gen.random_connected_regular: too many disconnected draws"
    else
      let g = random_regular rng n d in
      if Traverse.is_connected g then g else retry (k + 1)
  in
  retry 0

let wheel n =
  if n < 4 then invalid_arg "Gen.wheel: need n >= 4";
  let b = Builder.create n in
  for i = 1 to n - 1 do
    Builder.add_edge_exn b 0 i;
    let next = if i = n - 1 then 1 else i + 1 in
    ignore (Builder.add_edge b i next)
  done;
  Builder.freeze b

let watts_strogatz rng n k beta =
  if k < 1 || 2 * k > n - 1 then
    invalid_arg "Gen.watts_strogatz: need 1 <= k <= (n-1)/2";
  if beta < 0. || beta > 1. then
    invalid_arg "Gen.watts_strogatz: beta outside [0, 1]";
  let b = Builder.create n in
  (* Ring lattice. *)
  for i = 0 to n - 1 do
    for s = 1 to k do
      ignore (Builder.add_edge b i ((i + s) mod n))
    done
  done;
  (* Rewire each original lattice edge (i, i+s) with probability beta:
     keep endpoint i, move the other end to a uniform non-neighbour. *)
  for i = 0 to n - 1 do
    for s = 1 to k do
      if Rng.bernoulli rng beta then begin
        let j = (i + s) mod n in
        if Builder.degree b i < n - 1 && Builder.remove_edge b i j then begin
          let rec attach guard =
            if guard = 0 then Builder.add_edge_exn b i j
            else
              let t = Rng.int rng n in
              if t <> i && Builder.add_edge b i t then () else attach (guard - 1)
          in
          attach 64
        end
      end
    done
  done;
  Builder.freeze b

let barabasi_albert rng n m =
  if m < 1 || m >= n then invalid_arg "Gen.barabasi_albert: need 1 <= m < n";
  let b = Builder.create n in
  (* Seed clique on m+1 nodes. *)
  Builder.add_clique b (Array.init (m + 1) (fun i -> i));
  (* Degree-proportional sampling via the standard endpoint-list
     trick: every edge contributes both endpoints. *)
  let endpoints = ref [] in
  let push_endpoints u v = endpoints := u :: v :: !endpoints in
  for u = 0 to m do
    for v = u + 1 to m do
      push_endpoints u v
    done
  done;
  let endpoint_arr = ref (Array.of_list !endpoints) in
  let endpoint_len = ref (Array.length !endpoint_arr) in
  let grow_endpoint x =
    if !endpoint_len = Array.length !endpoint_arr then begin
      let bigger = Array.make (max 16 (2 * !endpoint_len)) 0 in
      Array.blit !endpoint_arr 0 bigger 0 !endpoint_len;
      endpoint_arr := bigger
    end;
    !endpoint_arr.(!endpoint_len) <- x;
    incr endpoint_len
  in
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    let guard = ref (1000 * m) in
    while Hashtbl.length chosen < m && !guard > 0 do
      decr guard;
      let u = !endpoint_arr.(Rng.int rng !endpoint_len) in
      if u <> v && not (Hashtbl.mem chosen u) then Hashtbl.add chosen u ()
    done;
    (* Degenerate fallback: fill with smallest unused ids. *)
    let fill = ref 0 in
    while Hashtbl.length chosen < m do
      if !fill <> v && not (Hashtbl.mem chosen !fill) then
        Hashtbl.add chosen !fill ();
      incr fill
    done;
    Hashtbl.iter
      (fun u () ->
        Builder.add_edge_exn b u v;
        grow_endpoint u;
        grow_endpoint v)
      chosen
  done;
  Builder.freeze b

let random_geometric_torus rng n radius =
  if radius < 0. then invalid_arg "Gen.random_geometric_torus: negative radius";
  let pts = Array.init n (fun _ -> (Rng.float rng, Rng.float rng)) in
  let dist (x1, y1) (x2, y2) =
    let wrap d = let d = Float.abs d in Float.min d (1. -. d) in
    let dx = wrap (x1 -. x2) and dy = wrap (y1 -. y2) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  let b = Builder.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dist pts.(i) pts.(j) <= radius then Builder.add_edge_exn b i j
    done
  done;
  Builder.freeze b
