type t = {
  n : int;
  m : int;
  adj : int array array; (* adj.(u) sorted increasing *)
  edges : (int * int) array Lazy.t; (* (u, v) with u < v, lex-sorted *)
}

let n g = g.n

let m g = g.m

let check g u =
  if u < 0 || u >= g.n then
    invalid_arg (Printf.sprintf "Graph: node %d out of range [0, %d)" u g.n)

let degree g u =
  check g u;
  Array.length g.adj.(u)

let neighbors g u =
  check g u;
  g.adj.(u)

let neighbor g u i =
  check g u;
  let a = g.adj.(u) in
  if i < 0 || i >= Array.length a then
    invalid_arg (Printf.sprintf "Graph.neighbor: index %d out of range" i);
  a.(i)

let has_edge g u v =
  check g u;
  check g v;
  let a = g.adj.(u) in
  let rec bsearch lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 (Array.length a)

let compute_edges nn mm adj =
  let out = Array.make mm (0, 0) in
  let k = ref 0 in
  for u = 0 to nn - 1 do
    Array.iter
      (fun v ->
        if u < v then begin
          out.(!k) <- (u, v);
          incr k
        end)
      adj.(u)
  done;
  out

let edges g = Lazy.force g.edges

let iter_edges f g =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let volume g = 2 * g.m

let max_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let min_degree g =
  if g.n = 0 then 0
  else Array.fold_left (fun acc a -> min acc (Array.length a)) max_int g.adj

let is_regular g = g.n = 0 || max_degree g = min_degree g

let equal a b =
  a.n = b.n && a.m = b.m
  &&
  let ok = ref true in
  for u = 0 to a.n - 1 do
    if a.adj.(u) <> b.adj.(u) then ok := false
  done;
  !ok

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d" g.n g.m;
  if g.n <= 32 then
    for u = 0 to g.n - 1 do
      Format.fprintf fmt "@,%3d: %a" u
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt " ")
           Format.pp_print_int)
        (Array.to_list g.adj.(u))
    done;
  Format.fprintf fmt "@]"

let unsafe_make ~n ~adj =
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  { n; m; adj; edges = lazy (compute_edges n m adj) }

let of_edges n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative node count";
  let lists = Array.make (max 1 n) [] in
  let seen = Hashtbl.create (2 * List.length edge_list) in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Graph.of_edges: edge (%d, %d) out of range" u v);
      if u = v then
        invalid_arg (Printf.sprintf "Graph.of_edges: self-loop at %d" u);
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then
        invalid_arg
          (Printf.sprintf "Graph.of_edges: duplicate edge (%d, %d)" u v);
      Hashtbl.add seen key ();
      lists.(u) <- v :: lists.(u);
      lists.(v) <- u :: lists.(v))
    edge_list;
  let adj =
    Array.init n (fun u ->
        let a = Array.of_list lists.(u) in
        Array.sort compare a;
        a)
  in
  unsafe_make ~n ~adj
