(* Compressed-sparse-row (CSR) core: one offsets array of n+1 ints and
   one packed neighbour array of 2m ints, ascending within each node's
   segment.  Chosen over [int array array] for cache locality on the
   engine hot paths and because [patch] can produce the next step's
   graph from an edge delta with two array blits instead of a full
   Builder/freeze round trip. *)
type t = {
  n : int;
  m : int;
  off : int array; (* length n+1; off.(n) = 2m *)
  nbr : int array; (* length 2m; nbr.(off.(u) .. off.(u+1)-1) sorted increasing *)
  edges : (int * int) array Lazy.t; (* (u, v) with u < v, lex-sorted *)
}

let n g = g.n

let m g = g.m

let check g u =
  if u < 0 || u >= g.n then
    invalid_arg (Printf.sprintf "Graph: node %d out of range [0, %d)" u g.n)

(* Unchecked hot-path accessors: the simulators validate node ids once
   at engine creation, so per-contact bounds checks are pure waste. *)
let unsafe_degree g u =
  Array.unsafe_get g.off (u + 1) - Array.unsafe_get g.off u

let unsafe_neighbor g u i =
  Array.unsafe_get g.nbr (Array.unsafe_get g.off u + i)

let iter_neighbors f g u =
  let stop = Array.unsafe_get g.off (u + 1) in
  for k = Array.unsafe_get g.off u to stop - 1 do
    f (Array.unsafe_get g.nbr k)
  done

let degree g u =
  check g u;
  unsafe_degree g u

let neighbors g u =
  check g u;
  Array.sub g.nbr g.off.(u) (unsafe_degree g u)

let neighbor g u i =
  check g u;
  if i < 0 || i >= unsafe_degree g u then
    invalid_arg (Printf.sprintf "Graph.neighbor: index %d out of range" i);
  unsafe_neighbor g u i

let has_edge g u v =
  check g u;
  check g v;
  let lo0 = g.off.(u) in
  let rec bsearch lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let w = g.nbr.(mid) in
      if w = v then true else if w < v then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch lo0 g.off.(u + 1)

let compute_edges nn mm off nbr =
  let out = Array.make mm (0, 0) in
  let k = ref 0 in
  for u = 0 to nn - 1 do
    for i = off.(u) to off.(u + 1) - 1 do
      let v = nbr.(i) in
      if u < v then begin
        out.(!k) <- (u, v);
        incr k
      end
    done
  done;
  out

let mk ~n ~m ~off ~nbr =
  { n; m; off; nbr; edges = lazy (compute_edges n m off nbr) }

let edges g = Lazy.force g.edges

let iter_edges f g =
  for u = 0 to g.n - 1 do
    for i = g.off.(u) to g.off.(u + 1) - 1 do
      let v = g.nbr.(i) in
      if u < v then f u v
    done
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let volume g = 2 * g.m

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    let d = unsafe_degree g u in
    if d > !best then best := d
  done;
  !best

let min_degree g =
  if g.n = 0 then 0
  else begin
    let best = ref max_int in
    for u = 0 to g.n - 1 do
      let d = unsafe_degree g u in
      if d < !best then best := d
    done;
    !best
  end

let is_regular g = g.n = 0 || max_degree g = min_degree g

let equal a b = a.n = b.n && a.m = b.m && a.off = b.off && a.nbr = b.nbr

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d" g.n g.m;
  if g.n <= 32 then
    for u = 0 to g.n - 1 do
      Format.fprintf fmt "@,%3d:" u;
      iter_neighbors (fun v -> Format.fprintf fmt " %d" v) g u
    done;
  Format.fprintf fmt "@]"

let unsafe_make ~n ~adj =
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + Array.length adj.(u)
  done;
  let total = off.(n) in
  let nbr = Array.make total 0 in
  for u = 0 to n - 1 do
    Array.blit adj.(u) 0 nbr off.(u) (Array.length adj.(u))
  done;
  mk ~n ~m:(total / 2) ~off ~nbr

let of_edges n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative node count";
  let lists = Array.make (max 1 n) [] in
  let seen = Hashtbl.create (2 * List.length edge_list) in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Graph.of_edges: edge (%d, %d) out of range" u v);
      if u = v then
        invalid_arg (Printf.sprintf "Graph.of_edges: self-loop at %d" u);
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then
        invalid_arg
          (Printf.sprintf "Graph.of_edges: duplicate edge (%d, %d)" u v);
      Hashtbl.add seen key ();
      lists.(u) <- v :: lists.(u);
      lists.(v) <- u :: lists.(v))
    edge_list;
  let adj =
    Array.init n (fun u ->
        let a = Array.of_list lists.(u) in
        Array.sort compare a;
        a)
  in
  unsafe_make ~n ~adj

(* --- O(Delta) structural updates --- *)

(* In-place insertion sort of nbr.(lo .. hi-1): the segment produced by
   [patch] is a sorted prefix followed by the few freshly added
   neighbours, so this is O(length + inversions). *)
let sort_segment a lo hi =
  for i = lo + 1 to hi - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let patch g ~add ~remove =
  let n = g.n in
  let norm ctx (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Graph.patch: %s edge (%d, %d) out of range" ctx u v);
    if u = v then
      invalid_arg (Printf.sprintf "Graph.patch: self-loop at %d" u);
    if u < v then (u, v) else (v, u)
  in
  let seen = Hashtbl.create (2 * (Array.length add + Array.length remove) + 1) in
  let claim ctx key =
    if Hashtbl.mem seen key then
      invalid_arg
        (Printf.sprintf "Graph.patch: edge (%d, %d) repeated in %s" (fst key)
           (snd key) ctx);
    Hashtbl.add seen key ()
  in
  (* Per-node pending additions/removals, O(Delta) lists. *)
  let adds = Array.make (max 1 n) [] in
  let rems = Array.make (max 1 n) [] in
  Array.iter
    (fun e ->
      let (u, v) = norm "added" e in
      claim "the delta" (u, v);
      if has_edge g u v then
        invalid_arg
          (Printf.sprintf "Graph.patch: added edge (%d, %d) already present" u v);
      adds.(u) <- v :: adds.(u);
      adds.(v) <- u :: adds.(v))
    add;
  Array.iter
    (fun e ->
      let (u, v) = norm "removed" e in
      claim "the delta" (u, v);
      if not (has_edge g u v) then
        invalid_arg
          (Printf.sprintf "Graph.patch: removed edge (%d, %d) absent" u v);
      rems.(u) <- v :: rems.(u);
      rems.(v) <- u :: rems.(v))
    remove;
  let m' = g.m + Array.length add - Array.length remove in
  let off' = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off'.(u + 1) <-
      off'.(u) + unsafe_degree g u
      + List.length adds.(u) - List.length rems.(u)
  done;
  let nbr' = Array.make (2 * m') 0 in
  for u = 0 to n - 1 do
    match (adds.(u), rems.(u)) with
    | [], [] ->
      Array.blit g.nbr g.off.(u) nbr' off'.(u) (unsafe_degree g u)
    | au, ru ->
      let k = ref off'.(u) in
      (* Old neighbours minus removals. *)
      (match ru with
      | [] ->
        Array.blit g.nbr g.off.(u) nbr' off'.(u) (unsafe_degree g u);
        k := off'.(u) + unsafe_degree g u
      | _ ->
        iter_neighbors
          (fun v ->
            if not (List.memq v ru) then begin
              nbr'.(!k) <- v;
              incr k
            end)
          g u);
      (* Fresh additions, then restore segment order. *)
      List.iter
        (fun v ->
          nbr'.(!k) <- v;
          incr k)
        au;
      sort_segment nbr' off'.(u) off'.(u + 1)
  done;
  mk ~n ~m:m' ~off:off' ~nbr:nbr'

let diff a b =
  if a.n <> b.n then invalid_arg "Graph.diff: node-count mismatch";
  let added = ref [] and removed = ref [] in
  for u = 0 to a.n - 1 do
    (* Merge the two sorted segments, collecting u < v discrepancies. *)
    let ia = ref a.off.(u) and ib = ref b.off.(u) in
    let ea = a.off.(u + 1) and eb = b.off.(u + 1) in
    while !ia < ea || !ib < eb do
      if !ib >= eb || (!ia < ea && a.nbr.(!ia) < b.nbr.(!ib)) then begin
        let v = a.nbr.(!ia) in
        if u < v then removed := (u, v) :: !removed;
        incr ia
      end
      else if !ia >= ea || b.nbr.(!ib) < a.nbr.(!ia) then begin
        let v = b.nbr.(!ib) in
        if u < v then added := (u, v) :: !added;
        incr ib
      end
      else begin
        incr ia;
        incr ib
      end
    done
  done;
  (Array.of_list (List.rev !added), Array.of_list (List.rev !removed))
