(** Immutable simple undirected graphs in CSR form.

    The node universe is [{0, ..., n-1}].  Adjacency is stored as a
    compressed sparse row: one offsets array plus one packed neighbour
    array, ascending within each node's segment — cache-friendly on the
    simulator hot paths and cheap to re-derive step over step via
    {!patch}.  Graphs are immutable once built (use {!Builder}, or
    {!patch} from a predecessor); the simulators share graph values
    freely across Monte-Carlo repetitions.  Parallel edges and
    self-loops are rejected at construction time: every graph in the
    paper's model is simple (Section 2). *)

type t

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int
(** [degree g u]; O(1). @raise Invalid_argument if [u] is out of
    range. *)

val neighbors : t -> int -> int array
(** Neighbour array of [u] in increasing order, as a fresh array
    (allocates — prefer {!iter_neighbors} or {!unsafe_neighbor} on hot
    paths). *)

val neighbor : t -> int -> int -> int
(** [neighbor g u i] is the [i]-th neighbour of [u]; O(1).
    @raise Invalid_argument if [i >= degree g u]. *)

val iter_neighbors : (int -> unit) -> t -> int -> unit
(** Iterate the neighbours of a node in increasing order without
    allocating.  Unchecked: the node must be in range. *)

val unsafe_degree : t -> int -> int
(** [degree] without the bounds check.  The engines validate node ids
    once at creation and use this inside their event loops. *)

val unsafe_neighbor : t -> int -> int -> int
(** [neighbor] without any bounds check: [u] must be in range and
    [0 <= i < degree g u]. *)

val has_edge : t -> int -> int -> bool
(** Adjacency test, O(log(degree)). *)

val edges : t -> (int * int) array
(** Every edge once, as [(u, v)] with [u < v], sorted
    lexicographically.  Owned by the graph (computed once, lazily): do
    not mutate. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Iterate over edges [(u, v)] with [u < v]. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val volume : t -> int
(** [volume g = 2 * m g]: the total degree, [vol(G)] in the paper. *)

val max_degree : t -> int
(** 0 on an edgeless graph. *)

val min_degree : t -> int
(** 0 on an edgeless graph (and on any graph with an isolated node). *)

val is_regular : t -> bool

val equal : t -> t -> bool
(** Same node count and same edge set. *)

val pp : Format.formatter -> t -> unit
(** Compact [n/m] + adjacency rendering for small graphs. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edge_list] builds a graph directly; convenience wrapper
    over {!Builder}.  Duplicate edges (in either orientation) and
    self-loops are rejected.
    @raise Invalid_argument on malformed input. *)

(** {1 Structural deltas}

    The dynamic-network layer evolves graphs step over step; these two
    operations close the loop: [patch g ~add ~remove] is the next step's
    graph and [diff] recovers the delta between two snapshots. *)

val patch : t -> add:(int * int) array -> remove:(int * int) array -> t
(** [patch g ~add ~remove] is [g] with the [add] edges inserted and the
    [remove] edges deleted, built by segment blits in
    O(n + |delta| * max-touched-degree) — no Builder round trip.  Edge
    pairs may be given in either orientation.
    @raise Invalid_argument if an added edge is already present (or
    self-looping, or out of range), a removed edge is absent, or an
    edge appears twice in the delta. *)

val diff : t -> t -> (int * int) array * (int * int) array
(** [diff a b] is [(added, removed)] with both arrays lex-sorted and
    [(u, v)]-oriented ([u < v]), such that
    [patch a ~add:added ~remove:removed] equals [b].  O(n + m_a + m_b).
    @raise Invalid_argument on a node-count mismatch. *)

(**/**)

val unsafe_make : n:int -> adj:int array array -> t
(** Internal constructor used by {!Builder}; assumes [adj] is sorted,
    symmetric, loop-free and duplicate-free. *)
