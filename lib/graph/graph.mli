(** Immutable simple undirected graphs.

    The node universe is [{0, ..., n-1}].  Graphs are immutable once
    built (use {!Builder} to construct them); the simulators share
    graph values freely across Monte-Carlo repetitions.  Parallel edges
    and self-loops are rejected at construction time: every graph in
    the paper's model is simple (Section 2). *)

type t

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int
(** [degree g u]; O(1). @raise Invalid_argument if [u] is out of
    range. *)

val neighbors : t -> int -> int array
(** Neighbour array of [u] in increasing order.  The returned array is
    owned by the graph: callers must not mutate it. *)

val neighbor : t -> int -> int -> int
(** [neighbor g u i] is the [i]-th neighbour of [u]; O(1).  Used by the
    simulators to pick a uniform neighbour without allocating.
    @raise Invalid_argument if [i >= degree g u]. *)

val has_edge : t -> int -> int -> bool
(** Adjacency test, O(log(degree)). *)

val edges : t -> (int * int) array
(** Every edge once, as [(u, v)] with [u < v], sorted
    lexicographically.  Owned by the graph: do not mutate. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Iterate over edges [(u, v)] with [u < v]. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val volume : t -> int
(** [volume g = 2 * m g]: the total degree, [vol(G)] in the paper. *)

val max_degree : t -> int
(** 0 on an edgeless graph. *)

val min_degree : t -> int
(** 0 on an edgeless graph (and on any graph with an isolated node). *)

val is_regular : t -> bool

val equal : t -> t -> bool
(** Same node count and same edge set. *)

val pp : Format.formatter -> t -> unit
(** Compact [n/m] + adjacency rendering for small graphs. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edge_list] builds a graph directly; convenience wrapper
    over {!Builder}.  Duplicate edges (in either orientation) and
    self-loops are rejected.
    @raise Invalid_argument on malformed input. *)

(**/**)

val unsafe_make : n:int -> adj:int array array -> t
(** Internal constructor used by {!Builder}; assumes [adj] is sorted,
    symmetric, loop-free and duplicate-free. *)
