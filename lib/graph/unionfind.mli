(** Disjoint-set forest with union by rank and path compression.

    Used for incremental connectivity checks in the degree-sequence
    repair pass and for component counting. *)

type t

val create : int -> t
(** [create n] puts each of [{0, ..., n-1}] in its own class. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merge the classes of the two elements; [false] if already merged. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of classes. *)
