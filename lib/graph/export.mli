(** Export graphs and measurement series to standard formats.

    DOT output renders the paper's constructions in Graphviz for
    inspection (e.g. the [H_{k,Delta}] string); CSV output feeds the
    experiment tables into external plotting. *)

val to_dot :
  ?name:string ->
  ?highlight:Rumor_util.Bitset.t ->
  ?labels:(int -> string) ->
  Graph.t ->
  string
(** [to_dot g] is an undirected Graphviz document.  Nodes in
    [highlight] (e.g. the informed set) are filled; [labels] overrides
    the default integer labels.
    @raise Invalid_argument if [highlight] has the wrong capacity. *)

val csv_of_rows : header:string list -> string list list -> string
(** RFC-4180-style CSV: fields containing commas, quotes or newlines
    are quoted, quotes doubled.
    @raise Invalid_argument if any row's arity differs from the
    header's. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
