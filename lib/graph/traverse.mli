(** Graph traversal: BFS distances, connectivity, components, diameter.

    Connectivity decides whether the paper's parameters are defined at
    all ([rho(G) = 0] on a disconnected graph; [ceil(Phi(G)) = 0] in
    Theorem 1.3), and eccentricities give the flooding baseline. *)

val bfs : Graph.t -> int -> int array
(** [bfs g s] is the array of hop distances from [s]; unreachable nodes
    get [-1]. *)

val is_connected : Graph.t -> bool
(** [true] on the empty and one-node graph. *)

val components : Graph.t -> int array * int
(** [(label, count)]: [label.(u)] is the component index of [u], with
    indices in [{0, ..., count-1}] assigned in order of smallest
    member. *)

val component_of : Graph.t -> int -> Rumor_util.Bitset.t
(** Nodes reachable from the given source, as a bit set. *)

val eccentricity : Graph.t -> int -> int
(** Largest finite BFS distance from the node.
    @raise Invalid_argument if the graph is disconnected. *)

val diameter : Graph.t -> int
(** Exact diameter by all-sources BFS (O(n(n+m)); intended for the
    moderate sizes used in experiments).
    @raise Invalid_argument if the graph is disconnected. *)
