(** Run attribution recorded into campaign and serve manifests: which
    command produced this artifact, on which host, at which revision.

    Every accessor is total — a stripped container with no hostname,
    no [.git] and no CI environment yields [None]s, never an error —
    and the expensive lookups are memoized per process.  The fields
    are additive manifest metadata: consumers that do not know them
    ignore them ([rumor-campaign/1] and [/2] readers are unaffected). *)

module Json = Rumor_obs.Json

val argv : unit -> string list
(** [Sys.argv] as a list, argv[0] included. *)

val hostname : unit -> string option
(** [Unix.gethostname], [None] when unavailable or empty. *)

val git_rev : unit -> string option
(** The source revision, best effort: [RUMOR_GIT_REV], else
    [GITHUB_SHA], else one [git rev-parse --short HEAD] against the
    working directory (memoized); [None] when all three fail. *)

val manifest_fields : unit -> (string * Json.t) list
(** The optional manifest fields: always [argv], plus [hostname] and
    [git_rev] when known. *)
