(** Coordinator↔worker wire protocol: length-prefixed JSON frames
    over a Unix-domain stream socket.

    {b Framing} — every message is a 4-byte big-endian payload length
    followed by exactly that many bytes of compact JSON (the same
    canonical renderings the WAL CRCs, so a frame is one
    {!Rumor_obs.Json.t} document; a trailing newline is {e not} part
    of the frame).  Length-prefixing survives payloads containing
    newlines and lets the receiver find frame boundaries without
    parsing.

    {b Messages} (field [k] discriminates):

    worker → coordinator:
    - [{"k":"hello","w":W,"pid":P}] — sent once after connecting.
    - [{"k":"beat","w":W}] — periodic liveness heartbeat.
    - [{"k":"res","w":W,"lease":L,"ep":E,"task":ID,"ok":B,
        "wall":"<%h>","file":F (,"err":MSG,"cls":"transient"|"poison")}]
      — one task of lease [L] (fencing epoch [E]) finished; [file] is
      the basename of the captured-output file the worker wrote.

    coordinator → worker:
    - [{"k":"grant","lease":L,"ep":E,"tasks":[ID,...]}] — a lease on a
      batch of task ids.
    - [{"k":"stop"}] — drain and exit cleanly.

    A reader tolerates partial frames (stream reassembly) and reports
    EOF distinctly; oversized or malformed frames raise
    {!Protocol_error} — the peer is not speaking this protocol. *)

module Json = Rumor_obs.Json

exception Protocol_error of string

val max_frame : int
(** Upper bound on accepted payload length (1 MiB) — a corrupt length
    prefix must not trigger a gigabyte allocation. *)

val frame : Json.t -> bytes
(** The wire bytes of one frame (length prefix + compact payload), for
    callers that buffer writes themselves.
    @raise Protocol_error when the payload exceeds {!max_frame}. *)

val send : Unix.file_descr -> Json.t -> unit
(** Write one frame, handling short writes.
    @raise Unix.Unix_error as [write] (EPIPE = peer is gone). *)

type reader
(** Per-connection reassembly buffer. *)

val reader : unit -> reader

val feed : reader -> bytes -> int -> unit
(** [feed r buf n] appends the first [n] bytes just read from the
    socket. *)

val next : reader -> Json.t option
(** Pop the next complete frame, [None] if more bytes are needed.
    @raise Protocol_error on an oversized length prefix or a payload
    that does not parse. *)

(** {1 Stall detection}

    A half-open or wedged client that sends a partial frame and then
    nothing would otherwise pin its reassembly buffer (and its slot in
    a select loop) forever.  The reader timestamps every byte of
    progress; a connection is {e stalled} when bytes of an incomplete
    frame have been sitting in the buffer longer than the caller's
    timeout.  An empty buffer is merely idle, never stalled — idle
    policy is the caller's. *)

val pending : reader -> bool
(** Buffered bytes that do not yet form a complete frame.  An
    oversized length prefix counts as complete (so the error surfaces
    through {!next} rather than a stall drop). *)

val age : reader -> now:float -> float
(** Seconds since the reader last made progress (creation or a
    non-empty {!feed}), given [now] from {!Rumor_obs.Clock.now_s}. *)

val stalled : reader -> now:float -> timeout:float -> bool
(** [pending r && age r ~now > timeout]. *)

val recv : Unix.file_descr -> reader -> Json.t option
(** Blocking convenience for the worker side: read until one frame
    completes; [None] on EOF.
    @raise Protocol_error as {!next}. *)

(** {1 Message constructors / parsers}

    Parsers return [None] on shape mismatch — an unknown [k] is the
    caller's to handle (log and ignore, for forward compatibility). *)

type msg =
  | Hello of { worker : int; pid : int }
  | Beat of { worker : int }
  | Result of {
      worker : int;
      lease : int;
      epoch : int;
      task : string;
      ok : bool;
      wall_s : float;
      file : string;
      err : string option;
      transient : bool;
    }
  | Grant of { lease : int; epoch : int; tasks : string list }
  | Stop

val to_json : msg -> Json.t
val of_json : Json.t -> msg option
