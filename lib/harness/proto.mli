(** Coordinator↔worker wire protocol: length-prefixed JSON frames
    over a Unix-domain or TCP stream socket.

    {b Framing} — every message is a 4-byte big-endian payload length
    followed by exactly that many bytes of compact JSON (the same
    canonical renderings the WAL CRCs, so a frame is one
    {!Rumor_obs.Json.t} document; a trailing newline is {e not} part
    of the frame).  Length-prefixing survives payloads containing
    newlines and lets the receiver find frame boundaries without
    parsing.

    {b Integrity trailer} — when both sides negotiate it (see the
    handshake below), each frame additionally carries a 4-byte
    big-endian CRC-32 of the payload after the payload bytes.  A
    mismatch raises {!Protocol_error}: on a WAN a flipped bit must
    surface as a reconnect, never as a silently-wrong grant or
    result.  The trailer is off for legacy Unix-socket peers, whose
    frames are byte-identical to protocol version 1.

    {b Messages} (field [k] discriminates):

    worker → coordinator:
    - [{"k":"hello","w":W,"pid":P(,"v":2,"crc":B,"tok":T)}] — sent
      once after connecting.  The [v]/[crc]/[tok] fields appear only
      from protocol-2 (TCP) workers; their absence marks a legacy
      peer.  [w] = -1 asks the coordinator to assign a worker id.
    - [{"k":"beat","w":W}] — periodic liveness heartbeat.
    - [{"k":"res","w":W,"lease":L,"ep":E,"task":ID,"ok":B,
        "wall":"<%h>","file":F
        (,"err":MSG,"cls":"transient"|"poison","data":BYTES)}]
      — one task of lease [L] (fencing epoch [E]) finished; [file] is
      the basename of the captured-output file.  Remote workers
      inline the captured bytes as [data] (no shared filesystem);
      local workers omit it and the coordinator reads the file.

    coordinator → worker:
    - [{"k":"welcome","w":W,"v":V,"crc":B}] — protocol-2 admission
      reply: the worker id to use from now on (binding for [w]=-1
      hellos and resumes alike) and whether CRC trailers are on for
      every {e subsequent} frame in both directions.  The hello and
      the welcome themselves are always sent without a trailer.
      Never sent to legacy peers.
    - [{"k":"reject","err":R}] — admission refused (bad token,
      unsupported protocol version); the coordinator closes the
      connection right after.  Terminal: the worker must not retry.
    - [{"k":"grant","lease":L,"ep":E,"tasks":[ID,...]}] — a lease on a
      batch of task ids.
    - [{"k":"stop"}] — drain and exit cleanly.

    A reader tolerates partial frames (stream reassembly) and reports
    EOF distinctly; oversized, corrupted, or malformed frames raise
    {!Protocol_error} — the peer is not speaking this protocol (or
    the network damaged the stream). *)

module Json = Rumor_obs.Json

exception Protocol_error of string

val version : int
(** Current protocol version (2).  Version 1 is the PR-6 wire format:
    no welcome, no CRC trailer, no [v]/[crc]/[tok]/[data] fields. *)

val max_frame : int
(** Upper bound on accepted payload length (8 MiB) — a corrupt length
    prefix must not trigger a gigabyte allocation, but a result frame
    inlining a task's captured output must fit. *)

val frame : ?crc:bool -> Json.t -> bytes
(** The wire bytes of one frame (length prefix + compact payload +
    optional CRC-32 trailer), for callers that buffer writes
    themselves.  [crc] defaults to [false].
    @raise Protocol_error when the payload exceeds {!max_frame}. *)

val send : ?crc:bool -> Unix.file_descr -> Json.t -> unit
(** Write one frame, handling short writes.
    @raise Unix.Unix_error as [write] (EPIPE = peer is gone). *)

type reader
(** Per-connection reassembly buffer. *)

val reader : unit -> reader
(** A fresh reader, CRC trailers off (the pre-handshake default). *)

val set_crc : reader -> bool -> unit
(** Switch trailer mode.  Call exactly at a frame boundary — after
    the handshake frames have been consumed and before any bytes of a
    trailered frame are fed — or reassembly desynchronizes. *)

val crc_enabled : reader -> bool

val feed : reader -> bytes -> int -> unit
(** [feed r buf n] appends the first [n] bytes just read from the
    socket. *)

val next : reader -> Json.t option
(** Pop the next complete frame, [None] if more bytes are needed.
    @raise Protocol_error on an oversized length prefix, a CRC-trailer
    mismatch, or a payload that does not parse. *)

(** {1 Stall detection}

    A half-open or wedged client that sends a partial frame and then
    nothing would otherwise pin its reassembly buffer (and its slot in
    a select loop) forever.  The reader timestamps every byte of
    progress; a connection is {e stalled} when bytes of an incomplete
    frame have been sitting in the buffer longer than the caller's
    timeout.  An empty buffer is merely idle, never stalled — idle
    policy is the caller's. *)

val pending : reader -> bool
(** Buffered bytes that do not yet form a complete frame.  An
    oversized length prefix counts as complete (so the error surfaces
    through {!next} rather than a stall drop). *)

val age : reader -> now:float -> float
(** Seconds since the reader last made progress (creation or a
    non-empty {!feed}), given [now] from {!Rumor_obs.Clock.now_s}. *)

val stalled : reader -> now:float -> timeout:float -> bool
(** [pending r && age r ~now > timeout]. *)

val recv : Unix.file_descr -> reader -> Json.t option
(** Blocking convenience for the worker side: read until one frame
    completes; [None] on EOF.
    @raise Protocol_error as {!next}. *)

(** {1 Message constructors / parsers}

    Parsers return [None] on shape mismatch — an unknown [k] is the
    caller's to handle (log and ignore, for forward compatibility). *)

type msg =
  | Hello of {
      worker : int;  (** -1 = assign me an id (fresh protocol-2 join) *)
      pid : int;
      proto : int;  (** 1 for legacy peers (fields absent on the wire) *)
      token : string option;
      crc : bool;  (** worker requests CRC trailers after the welcome *)
    }
  | Welcome of { worker : int; proto : int; crc : bool }
  | Reject of { reason : string }
  | Beat of { worker : int }
  | Result of {
      worker : int;
      lease : int;
      epoch : int;
      task : string;
      ok : bool;
      wall_s : float;
      file : string;
      err : string option;
      transient : bool;
      data : string option;
          (** inlined captured-output bytes (remote workers only) *)
    }
  | Grant of { lease : int; epoch : int; tasks : string list }
  | Stop

val to_json : msg -> Json.t
(** A [Hello] with [proto <= 1] renders byte-identical to the
    version-1 wire format (no [v]/[crc]/[tok] fields), so legacy
    coordinators keep accepting it. *)

val of_json : Json.t -> msg option
