module Json = Rumor_obs.Json

exception Protocol_error of string

let max_frame = 1 lsl 20

(* --- framing --- *)

let frame json =
  let payload = Bytes.of_string (Json.to_string json) in
  let n = Bytes.length payload in
  if n > max_frame then
    raise (Protocol_error (Printf.sprintf "outgoing frame of %d bytes" n));
  let frame = Bytes.create (4 + n) in
  Bytes.set_uint8 frame 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 frame 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 frame 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 frame 3 (n land 0xff);
  Bytes.blit payload 0 frame 4 n;
  frame

let send fd json =
  let frame = frame json in
  let len = Bytes.length frame in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd frame !written (len - !written)
  done

type reader = { mutable buf : Buffer.t; mutable last_progress : float }

let reader () =
  { buf = Buffer.create 256; last_progress = Rumor_obs.Clock.now_s () }

let feed r bytes n =
  if n > 0 then begin
    Buffer.add_subbytes r.buf bytes 0 n;
    r.last_progress <- Rumor_obs.Clock.now_s ()
  end

(* Is a complete frame sitting in the buffer?  A length prefix beyond
   [max_frame] counts as "complete" so that [stalled] never masks what
   [next] will report as a protocol error. *)
let has_frame r =
  let len = Buffer.length r.buf in
  len >= 4
  &&
  let b i = Char.code (Buffer.nth r.buf i) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  n > max_frame || len >= 4 + n

let pending r = Buffer.length r.buf > 0 && not (has_frame r)

let age r ~now = Float.max 0. (now -. r.last_progress)

let stalled r ~now ~timeout = pending r && age r ~now > timeout

let next r =
  let len = Buffer.length r.buf in
  if len < 4 then None
  else begin
    let b i = Char.code (Buffer.nth r.buf i) in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then
      raise (Protocol_error (Printf.sprintf "frame length %d exceeds %d" n max_frame));
    if len < 4 + n then None
    else begin
      let payload = Buffer.sub r.buf 4 n in
      let rest = Buffer.sub r.buf (4 + n) (len - 4 - n) in
      Buffer.clear r.buf;
      Buffer.add_string r.buf rest;
      match Json.parse payload with
      | Ok j -> Some j
      | Error e -> raise (Protocol_error ("bad frame payload: " ^ e))
    end
  end

let recv fd r =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match next r with
    | Some _ as frame -> frame
    | None -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
        feed r chunk n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* --- messages --- *)

type msg =
  | Hello of { worker : int; pid : int }
  | Beat of { worker : int }
  | Result of {
      worker : int;
      lease : int;
      epoch : int;
      task : string;
      ok : bool;
      wall_s : float;
      file : string;
      err : string option;
      transient : bool;
    }
  | Grant of { lease : int; epoch : int; tasks : string list }
  | Stop

let to_json = function
  | Hello { worker; pid } ->
    Json.Obj
      [ ("k", Json.String "hello"); ("w", Json.Int worker);
        ("pid", Json.Int pid) ]
  | Beat { worker } ->
    Json.Obj [ ("k", Json.String "beat"); ("w", Json.Int worker) ]
  | Result { worker; lease; epoch; task; ok; wall_s; file; err; transient } ->
    Json.Obj
      ([ ("k", Json.String "res");
         ("w", Json.Int worker);
         ("lease", Json.Int lease);
         ("ep", Json.Int epoch);
         ("task", Json.String task);
         ("ok", Json.Bool ok);
         ("wall", Json.String (Printf.sprintf "%h" wall_s));
         ("file", Json.String file) ]
      @ (match err with Some e -> [ ("err", Json.String e) ] | None -> [])
      @
      if ok then []
      else
        [ ("cls", Json.String (if transient then "transient" else "poison")) ])
  | Grant { lease; epoch; tasks } ->
    Json.Obj
      [ ("k", Json.String "grant");
        ("lease", Json.Int lease);
        ("ep", Json.Int epoch);
        ("tasks", Json.List (List.map (fun t -> Json.String t) tasks)) ]
  | Stop -> Json.Obj [ ("k", Json.String "stop") ]

let of_json j =
  let str field = Option.bind (Json.member field j) Json.to_string_opt in
  let int field = Option.bind (Json.member field j) Json.to_int_opt in
  let ( let* ) = Option.bind in
  match str "k" with
  | Some "hello" ->
    let* worker = int "w" in
    let* pid = int "pid" in
    Some (Hello { worker; pid })
  | Some "beat" ->
    let* worker = int "w" in
    Some (Beat { worker })
  | Some "res" ->
    let* worker = int "w" in
    let* lease = int "lease" in
    let* epoch = int "ep" in
    let* task = str "task" in
    let* ok =
      match Json.member "ok" j with Some (Json.Bool b) -> Some b | _ -> None
    in
    let* wall_s = Option.bind (str "wall") float_of_string_opt in
    let* file = str "file" in
    Some
      (Result
         {
           worker;
           lease;
           epoch;
           task;
           ok;
           wall_s;
           file;
           err = str "err";
           transient = str "cls" = Some "transient";
         })
  | Some "grant" ->
    let* lease = int "lease" in
    let* epoch = int "ep" in
    let* tasks =
      match Json.member "tasks" j with
      | Some (Json.List l) ->
        List.fold_right
          (fun t acc ->
            match (Json.to_string_opt t, acc) with
            | Some s, Some acc -> Some (s :: acc)
            | _ -> None)
          l (Some [])
      | _ -> None
    in
    Some (Grant { lease; epoch; tasks })
  | Some "stop" -> Some Stop
  | _ -> None
