module Json = Rumor_obs.Json
module Crc32 = Rumor_util.Crc32

exception Protocol_error of string

let version = 2

(* Result frames may inline a task's captured output (the TCP
   transport ships bytes instead of relying on a shared filesystem),
   so the cap is sized for data frames, not just control frames. *)
let max_frame = 1 lsl 23

(* --- framing --- *)

let be32 buf off n =
  Bytes.set_uint8 buf off ((n lsr 24) land 0xff);
  Bytes.set_uint8 buf (off + 1) ((n lsr 16) land 0xff);
  Bytes.set_uint8 buf (off + 2) ((n lsr 8) land 0xff);
  Bytes.set_uint8 buf (off + 3) (n land 0xff)

let frame ?(crc = false) json =
  let payload = Json.to_string json in
  let n = String.length payload in
  if n > max_frame then
    raise (Protocol_error (Printf.sprintf "outgoing frame of %d bytes" n));
  let trailer = if crc then 4 else 0 in
  let frame = Bytes.create (4 + n + trailer) in
  be32 frame 0 n;
  Bytes.blit_string payload 0 frame 4 n;
  if crc then
    be32 frame (4 + n)
      (Int32.to_int (Crc32.digest payload) land 0xffffffff);
  frame

let send ?crc fd json =
  let frame = frame ?crc json in
  let len = Bytes.length frame in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd frame !written (len - !written)
  done

type reader = {
  mutable buf : Buffer.t;
  mutable last_progress : float;
  mutable crc : bool;
}

let reader () =
  {
    buf = Buffer.create 256;
    last_progress = Rumor_obs.Clock.now_s ();
    crc = false;
  }

let set_crc r on = r.crc <- on

let crc_enabled r = r.crc

let feed r bytes n =
  if n > 0 then begin
    Buffer.add_subbytes r.buf bytes 0 n;
    r.last_progress <- Rumor_obs.Clock.now_s ()
  end

let trailer_len r = if r.crc then 4 else 0

(* Is a complete frame sitting in the buffer?  A length prefix beyond
   [max_frame] counts as "complete" so that [stalled] never masks what
   [next] will report as a protocol error. *)
let has_frame r =
  let len = Buffer.length r.buf in
  len >= 4
  &&
  let b i = Char.code (Buffer.nth r.buf i) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  n > max_frame || len >= 4 + n + trailer_len r

let pending r = Buffer.length r.buf > 0 && not (has_frame r)

let age r ~now = Float.max 0. (now -. r.last_progress)

let stalled r ~now ~timeout = pending r && age r ~now > timeout

let next r =
  let len = Buffer.length r.buf in
  if len < 4 then None
  else begin
    let b i = Char.code (Buffer.nth r.buf i) in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then
      raise (Protocol_error (Printf.sprintf "frame length %d exceeds %d" n max_frame));
    let trailer = trailer_len r in
    if len < 4 + n + trailer then None
    else begin
      let payload = Buffer.sub r.buf 4 n in
      (if r.crc then begin
         let t i = Char.code (Buffer.nth r.buf (4 + n + i)) in
         let advertised =
           (t 0 lsl 24) lor (t 1 lsl 16) lor (t 2 lsl 8) lor t 3
         in
         let computed = Int32.to_int (Crc32.digest payload) land 0xffffffff in
         if advertised <> computed then
           raise
             (Protocol_error
                (Printf.sprintf "frame CRC mismatch (got %08x, computed %08x)"
                   advertised computed))
       end);
      let total = 4 + n + trailer in
      let rest = Buffer.sub r.buf total (len - total) in
      Buffer.clear r.buf;
      Buffer.add_string r.buf rest;
      match Json.parse payload with
      | Ok j -> Some j
      | Error e -> raise (Protocol_error ("bad frame payload: " ^ e))
    end
  end

let recv fd r =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match next r with
    | Some _ as frame -> frame
    | None -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
        feed r chunk n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* --- messages --- *)

type msg =
  | Hello of {
      worker : int;
      pid : int;
      proto : int;
      token : string option;
      crc : bool;
    }
  | Welcome of { worker : int; proto : int; crc : bool }
  | Reject of { reason : string }
  | Beat of { worker : int }
  | Result of {
      worker : int;
      lease : int;
      epoch : int;
      task : string;
      ok : bool;
      wall_s : float;
      file : string;
      err : string option;
      transient : bool;
      data : string option;
    }
  | Grant of { lease : int; epoch : int; tasks : string list }
  | Stop

let to_json = function
  | Hello { worker; pid; proto; token; crc } ->
    Json.Obj
      ([ ("k", Json.String "hello"); ("w", Json.Int worker);
         ("pid", Json.Int pid) ]
      @ (if proto > 1 then
           [ ("v", Json.Int proto); ("crc", Json.Bool crc) ]
           @ match token with
             | Some t -> [ ("tok", Json.String t) ]
             | None -> []
         else []))
  | Welcome { worker; proto; crc } ->
    Json.Obj
      [ ("k", Json.String "welcome"); ("w", Json.Int worker);
        ("v", Json.Int proto); ("crc", Json.Bool crc) ]
  | Reject { reason } ->
    Json.Obj [ ("k", Json.String "reject"); ("err", Json.String reason) ]
  | Beat { worker } ->
    Json.Obj [ ("k", Json.String "beat"); ("w", Json.Int worker) ]
  | Result { worker; lease; epoch; task; ok; wall_s; file; err; transient; data }
    ->
    Json.Obj
      ([ ("k", Json.String "res");
         ("w", Json.Int worker);
         ("lease", Json.Int lease);
         ("ep", Json.Int epoch);
         ("task", Json.String task);
         ("ok", Json.Bool ok);
         ("wall", Json.String (Printf.sprintf "%h" wall_s));
         ("file", Json.String file) ]
      @ (match err with Some e -> [ ("err", Json.String e) ] | None -> [])
      @ (if ok then []
         else
           [ ("cls", Json.String (if transient then "transient" else "poison")) ])
      @ match data with Some d -> [ ("data", Json.String d) ] | None -> [])
  | Grant { lease; epoch; tasks } ->
    Json.Obj
      [ ("k", Json.String "grant");
        ("lease", Json.Int lease);
        ("ep", Json.Int epoch);
        ("tasks", Json.List (List.map (fun t -> Json.String t) tasks)) ]
  | Stop -> Json.Obj [ ("k", Json.String "stop") ]

let of_json j =
  let str field = Option.bind (Json.member field j) Json.to_string_opt in
  let int field = Option.bind (Json.member field j) Json.to_int_opt in
  let bool field =
    match Json.member field j with Some (Json.Bool b) -> Some b | _ -> None
  in
  let ( let* ) = Option.bind in
  match str "k" with
  | Some "hello" ->
    let* worker = int "w" in
    let* pid = int "pid" in
    Some
      (Hello
         {
           worker;
           pid;
           (* Absent fields = a legacy (PR-6, Unix-socket) peer. *)
           proto = Option.value ~default:1 (int "v");
           token = str "tok";
           crc = Option.value ~default:false (bool "crc");
         })
  | Some "welcome" ->
    let* worker = int "w" in
    let* proto = int "v" in
    let* crc = bool "crc" in
    Some (Welcome { worker; proto; crc })
  | Some "reject" ->
    let* reason = str "err" in
    Some (Reject { reason })
  | Some "beat" ->
    let* worker = int "w" in
    Some (Beat { worker })
  | Some "res" ->
    let* worker = int "w" in
    let* lease = int "lease" in
    let* epoch = int "ep" in
    let* task = str "task" in
    let* ok = bool "ok" in
    let* wall_s = Option.bind (str "wall") float_of_string_opt in
    let* file = str "file" in
    Some
      (Result
         {
           worker;
           lease;
           epoch;
           task;
           ok;
           wall_s;
           file;
           err = str "err";
           transient = str "cls" = Some "transient";
           data = str "data";
         })
  | Some "grant" ->
    let* lease = int "lease" in
    let* epoch = int "ep" in
    let* tasks =
      match Json.member "tasks" j with
      | Some (Json.List l) ->
        List.fold_right
          (fun t acc ->
            match (Json.to_string_opt t, acc) with
            | Some s, Some acc -> Some (s :: acc)
            | _ -> None)
          l (Some [])
      | _ -> None
    in
    Some (Grant { lease; epoch; tasks })
  | Some "stop" -> Some Stop
  | _ -> None
