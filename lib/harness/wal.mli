(** Durable campaign journal: an append-only JSONL write-ahead log
    with per-record CRC32 framing and crash recovery.

    The supervised campaign runner records every decided unit of work
    (a replicate outcome, a task transition) here {e before} moving
    on, so a crash — power loss included — loses at most the record
    in flight, and a resumed campaign replays exactly what was
    decided.

    {b Format} ([rumor-wal/1]) — a magic first line, then one JSON
    object per line:

    {v
    rumor-wal/1
    {"crc":"<hex8>","rec":<payload>}
    ...
    v}

    where [crc] is the CRC-32 (ISO-HDLC) of the compact rendering of
    [rec].  Verification re-renders the parsed payload, which is exact
    because the codec's renderings are canonical (parse∘render = id
    and render∘parse∘render = render).

    {b Durability} — the header is published by an atomic
    write-fsync-rename, so the magic line is never torn under the
    final name; each {!append} writes one complete line and (by
    default) [fsync]s before returning.

    {b Recovery} — {!open_} scans an existing log and {e quarantines}
    — never silently drops — anything it cannot trust: a record
    failing its CRC or not parsing, and a torn final line (no
    terminating newline; kept only if its CRC still verifies).
    Offenders are appended to [<path>.quarantine], tallied in the
    [harness.wal_corrupt_records] counter, and the log is compacted
    (atomically, same tmp-fsync-rename discipline) down to the records
    that verified, so a recovered log is clean for the next crash. *)

module Json = Rumor_obs.Json

val magic : string
(** First line of every log: ["rumor-wal/1"]. *)

type t
(** An open log handle.  Appends are mutex-guarded: safe from multiple
    domains. *)

exception Bad_magic of { path : string; found : string }
(** The file exists but its first line is not {!magic} — it is not a
    WAL (or not one this version reads); refusing is safer than
    quarantining the whole file. *)

type recovery = {
  records : Json.t list;
      (** every record that verified, in append order *)
  corrupt_records : int;
      (** records quarantined to [<path>.quarantine] (torn tail
          included) *)
  truncated_tail : bool;
      (** the file ended mid-record and the fragment did not verify *)
  existed : bool;  (** the file was already on disk *)
}

val open_ : ?fsync:bool -> string -> t
(** Open for appending, creating (with a durable header) or
    recovering (see above) as needed.  [fsync] (default [true])
    makes every {!append} flush to stable storage; turn it off only
    for tests.
    @raise Bad_magic as documented above. *)

val recovery : t -> recovery
(** What {!open_} found on disk — the resume state. *)

val append : t -> Json.t -> unit
(** Durably append one record (one CRC-framed line).
    @raise Invalid_argument on a closed log. *)

val close : t -> unit
(** Flush, sync and close.  Idempotent. *)

val path : t -> string

val quarantine_path : string -> string
(** [<path>.quarantine] — where recovery moves untrusted records. *)

val read : string -> recovery
(** Scan a log read-only: same validation as {!open_} but with no
    side effects — nothing quarantined, nothing compacted, no
    counters.  A missing file reads as an empty recovery.
    @raise Bad_magic as {!open_}. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] publishes [content] under [path] via
    tmp-file, flush, [fsync], [Sys.rename], then an [fsync] of the
    parent directory (so the rename itself survives power loss, not
    just the file contents) — the discipline used for the WAL header,
    compaction, and the campaign manifest.  A crash at any point
    leaves either the old file or the new one, never a torn mix. *)
