module Pool = Rumor_par.Pool
module Run = Rumor_sim.Run
module Obs = Rumor_obs.Metrics
module Clock = Rumor_obs.Clock
module Json = Rumor_obs.Json

(* Telemetry (lib/obs): task-level mirrors of the replicate-level
   counters in Supervisor — same names, same cells, one registry. *)
let m_retries = Obs.counter "harness.retries"
let m_quarantined = Obs.counter "harness.quarantined"

type task = {
  id : string;
  run : unit -> unit;
}

type task_outcome =
  | Done of float
  | Cached
  | Quarantined of string
  | Interrupted
  | Not_run

type config = {
  dir : string;
  resume : bool;
  deadline_s : float option;
  retries : int;
  backoff_s : float;
  fail_budget : float;
  fsync : bool;
  classify : exn -> Supervisor.classification;
}

let default_config ~dir =
  {
    dir;
    resume = false;
    deadline_s = None;
    retries = 1;
    backoff_s = 0.5;
    fail_budget = 1.0;
    fsync = true;
    classify = Supervisor.default_classify;
  }

type summary = {
  outcomes : (string * task_outcome) list;
  resumed : bool;
  interrupted : bool;
  aborted : bool;
  retries : int;
  quarantined : int;
  wal_corrupt_records : int;
  wall_s : float;
}

let wal_path config = Filename.concat config.dir "campaign.wal"
let manifest_path config = Filename.concat config.dir "campaign.manifest.json"

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let install_signal_handlers () =
  (* One atomic store, no allocation — safe from a signal handler.
     The pools drain cooperatively; the campaign loop then observes
     the cancelled token between (and after) tasks.

     Idempotent: the first signal starts the drain; a second signal
     means the operator is done waiting for it, so it hard-exits the
     process immediately (128 + SIGINT, the conventional status)
     instead of re-running the drain path.  [Unix._exit] skips
     [at_exit] — nothing that could block or re-enter runs. *)
  let handler =
    Sys.Signal_handle
      (fun _ ->
        if Pool.is_cancelled Pool.global then Unix._exit 130
        else Pool.cancel Pool.global)
  in
  List.iter
    (fun signal ->
      try Sys.set_signal signal handler
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* --- journal records ---

   {"k":"task","id":"E1","ev":"done","att":1,"wall":"<%h>"}

   Events: started, retry (with err), done, quarantined (with err),
   interrupted.  Only "done" short-circuits a resume: a quarantined
   or interrupted task gets a fresh chance. *)

let task_to_json id ev ~att ?wall ?err () =
  Json.Obj
    ([ ("k", Json.String "task");
       ("id", Json.String id);
       ("ev", Json.String ev);
       ("att", Json.Int att) ]
    @ (match wall with
      | Some w -> [ ("wall", Json.String (Printf.sprintf "%h" w)) ]
      | None -> [])
    @ match err with Some e -> [ ("err", Json.String e) ] | None -> [])

let done_ids records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun j ->
      let str field = Option.bind (Json.member field j) Json.to_string_opt in
      match (str "k", str "id", str "ev") with
      | Some "task", Some id, Some "done" -> Hashtbl.replace tbl id ()
      | _ -> ())
    records;
  tbl

let outcome_status = function
  | Done _ -> "done"
  | Cached -> "cached"
  | Quarantined _ -> "quarantined"
  | Interrupted -> "interrupted"
  | Not_run -> "not-run"

let write_manifest config summary =
  let manifest =
    Json.Obj
      ([
        ("schema", Json.String "rumor-campaign/1");
        ("resumed", Json.Bool summary.resumed);
        ("interrupted", Json.Bool summary.interrupted);
        ("aborted", Json.Bool summary.aborted);
        ("retries", Json.Int summary.retries);
        ("quarantined", Json.Int summary.quarantined);
        ("wal_corrupt_records", Json.Int summary.wal_corrupt_records);
        ("wall_s", Json.Float summary.wall_s);
        ( "tasks",
          Json.Obj
            (List.map
               (fun (id, o) -> (id, Json.String (outcome_status o)))
               summary.outcomes) );
      ]
      @ Provenance.manifest_fields ())
  in
  Wal.write_atomic (manifest_path config)
    (Json.to_string ~pretty:true manifest ^ "\n")

let run ?(cancel = Pool.global) config tasks =
  mkdirs config.dir;
  let wal_file = wal_path config in
  if not config.resume then
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ wal_file; Wal.quarantine_path wal_file ];
  let resumed = config.resume && Sys.file_exists wal_file in
  let wal = Wal.open_ ~fsync:config.fsync wal_file in
  let recovery = Wal.recovery wal in
  let finished = done_ids recovery.Wal.records in
  let n_tasks = List.length tasks in
  let retries = ref 0 in
  let quarantined = ref 0 in
  let interrupted = ref false in
  let aborted = ref false in
  let t0 = Clock.now_s () in
  let previous_deadline = Run.default_deadline () in
  Run.set_default_deadline config.deadline_s;
  let outcomes =
    Fun.protect
      ~finally:(fun () ->
        Run.set_default_deadline previous_deadline;
        Wal.close wal)
      (fun () ->
        List.map
          (fun task ->
            let outcome =
              if Pool.is_cancelled cancel then begin
                interrupted := true;
                Not_run
              end
              else if !aborted then Not_run
              else if Hashtbl.mem finished task.id then Cached
              else begin
                let rec attempt k =
                  Wal.append wal (task_to_json task.id "started" ~att:k ());
                  let started = Clock.now_s () in
                  match task.run () with
                  | () ->
                    if Pool.is_cancelled cancel then begin
                      (* The pools drained mid-task: whatever the task
                         printed is partial.  Shutdown, not failure —
                         resume re-runs it from its seed. *)
                      interrupted := true;
                      Wal.append wal
                        (task_to_json task.id "interrupted" ~att:k ());
                      Interrupted
                    end
                    else begin
                      let wall = Clock.now_s () -. started in
                      Wal.append wal
                        (task_to_json task.id "done" ~att:k ~wall ());
                      Done wall
                    end
                  | exception e ->
                    if Pool.is_cancelled cancel then begin
                      (* A drained pool can surface as an exception from
                         code holding partial data; attribute it to the
                         shutdown, never to the task. *)
                      interrupted := true;
                      Wal.append wal
                        (task_to_json task.id "interrupted" ~att:k ());
                      Interrupted
                    end
                    else begin
                      let err = Printexc.to_string e in
                      match config.classify e with
                      | Supervisor.Transient when k <= config.retries ->
                        incr retries;
                        Obs.incr m_retries;
                        Wal.append wal
                          (task_to_json task.id "retry" ~att:k ~err ());
                        if config.backoff_s > 0. then
                          Unix.sleepf
                            (Float.min 30.
                               (config.backoff_s
                               *. (2. ** float_of_int (k - 1))));
                        attempt (k + 1)
                      | _ ->
                        incr quarantined;
                        Obs.incr m_quarantined;
                        Wal.append wal
                          (task_to_json task.id "quarantined" ~att:k ~err ());
                        Quarantined err
                    end
                in
                let o = attempt 1 in
                (match o with
                | Quarantined _
                  when float_of_int !quarantined
                       > config.fail_budget *. float_of_int n_tasks ->
                  aborted := true
                | _ -> ());
                o
              end
            in
            (task.id, outcome))
          tasks)
  in
  let summary =
    {
      outcomes;
      resumed;
      interrupted = !interrupted || Pool.is_cancelled cancel;
      aborted = !aborted;
      retries = !retries;
      quarantined = !quarantined;
      wal_corrupt_records = recovery.Wal.corrupt_records;
      wall_s = Clock.now_s () -. t0;
    }
  in
  write_manifest config summary;
  summary

let exit_code summary =
  if summary.aborted || summary.quarantined > 0 then 1 else 0
