(** Multi-process campaign coordinator: process-level supervision on
    top of the PR-5 WAL/campaign substrate.

    [run ~spawn config tasks] forks [config.workers] worker processes
    (via [spawn], typically a re-exec of the [rumor] binary in its
    hidden [worker] mode) and feeds them task batches over a
    Unix-domain socket with the length-prefixed JSONL protocol of
    {!Proto}.  With [config.listen] set, it additionally accepts
    {e remote} workers over TCP ([rumor worker --connect]), so a
    campaign can span machines.  Each batch is a {!Lease}: lease id +
    fencing epoch, journaled to the campaign WAL before the grant is
    sent, so the log always knows who was allowed to produce what.

    {b Remote admission} — a TCP worker opens with a versioned hello
    (protocol version, campaign token, CRC request).  Version or
    token mismatches are rejected {e at the door} with a terminal
    [Reject] frame — a stray worker from another campaign never
    touches a lease.  Admitted workers get a [Welcome] naming their
    worker id (fresh ids are allocated above the local slot range;
    a returning id resumes its slot) and, when negotiated, every
    subsequent frame in both directions carries a CRC-32 trailer: a
    corrupted stream surfaces as a protocol error → disconnect →
    reconnect, never as a silently-wrong grant or result.  Remote
    results inline their captured bytes in the frame; the coordinator
    materializes them through the same stamped-partial + atomic-rename
    path a local worker's file takes.

    {b Failure model} — a local worker can die at any instant (crash,
    segfault, OOM-kill, [kill -9]) or hang (heartbeat timeout).  On
    either, the coordinator reclaims the lease (bumping the fencing
    epoch), journals the incident, returns the unfinished tasks to
    the queue for a surviving worker, and — unless the slot exhausted
    its restart budget — forks a replacement.  A remote worker's drop
    (EOF, reset, heartbeat timeout) reclaims the same way but charges
    {e no} retry budget — network faults are exogenous, like chaos
    kills — and leaves the slot ready for the worker to reconnect and
    resume; an uncharged-reassignment cap bounds the livelock a
    permanently flapping link could cause.  A {e zombie} (declared
    dead but still writing) can only speak with its stale lease/epoch
    pair; its results are fenced, counted, and its stamped output file
    deleted, so it can never corrupt the campaign.  The same fencing
    check runs over the journal at [--resume] time ({!Lease.Replay}),
    rejecting a zombie's writes that raced a crash into the WAL.

    {b Determinism} — workers run tasks with the ordinary in-process
    machinery (index-keyed split-seed replicate streams), each task's
    stdout captured to [<dir>/tasks/<id>.out] via an atomic
    epoch-stamped rename.  However many workers die, restart,
    disconnect or get chaos-killed, the accepted output files are
    byte-identical to a [workers = 1] run of the same campaign.

    {b Graceful degradation} — the campaign finishes with however
    many workers survive; it aborts only when live {e local} workers
    fall below [min_workers], or quarantined tasks exceed
    [fail_budget].  A flapping local worker (more than [max_restarts]
    uncommanded deaths) is demoted — no longer respawned — before it
    burns the campaign budget.  Chaos kills
    ({!config.chaos_kill_every_s}, used by tests and CI) are
    coordinator-inflicted, local-only, and charge {e no} budget: they
    prove the recovery machinery, not the workload.

    {b Shutdown} — the [cancel] token (default
    {!Rumor_par.Pool.global}, wired to SIGINT/SIGTERM by
    {!Campaign.install_signal_handlers}) stops new grants; in-flight
    batches drain, workers are stopped, and a [--resume] run
    continues bit-identically from the journal. *)

type config = {
  dir : string;  (** journal, manifest and [tasks/] outputs live here *)
  workers : int;
      (** local processes to fork; may be 0 when [listen] is set *)
  min_workers : int;
      (** abort when live (non-demoted) {e local} workers fall below
          this; never triggered by remote departures *)
  batch : int;  (** tasks per lease (default 1) *)
  resume : bool;  (** replay the journal; [false] starts fresh *)
  heartbeat_timeout_s : float;
      (** a worker silent for this long is declared dead (zombied) *)
  chaos_kill_every_s : float option;
      (** SIGKILL a random live local worker this often (chaos mode).
          Progress is guaranteed: a task chaos-reassigned 5 times makes
          its next holder immune, so a task longer than the kill
          interval cannot livelock the campaign. *)
  retries : int;
      (** per-task budget for transient failures and uncommanded
          local worker deaths before the task is quarantined *)
  max_restarts : int;
      (** per-slot uncommanded-death budget before demotion *)
  fail_budget : float;
      (** abort when quarantined tasks exceed this fraction of the
          task list; [1.0] disables the gate *)
  fsync : bool;  (** fsync journal appends (tests may turn it off) *)
  seed : int;  (** seeds the chaos-victim RNG only *)
  listen : (string * int) option;
      (** also accept TCP workers on this host/port (port 0 =
          kernel-assigned; the bound port is written to
          [<dir>/coord.port]) *)
  token : string option;
      (** campaign token TCP workers must present; [None] admits any *)
}

val default_config : dir:string -> workers:int -> config
(** [min_workers = 1], [batch = 1], [resume = false],
    [heartbeat_timeout_s = 30.], no chaos, [retries = 1],
    [max_restarts = 3], [fail_budget = 1.0], [fsync = true],
    [seed = 2020], [listen = None], [token = None]. *)

type worker_stats = {
  slot : int;
  restarts : int;  (** uncommanded deaths charged to the slot *)
  chaos_kills : int;  (** coordinator-inflicted SIGKILLs (uncharged) *)
  tasks_done : int;
  fenced : int;  (** stale-epoch results rejected from this slot *)
  demoted : bool;
  remote : bool;  (** joined over TCP *)
}

type summary = {
  outcomes : (string * Campaign.task_outcome) list;  (** task order *)
  resumed : bool;
  interrupted : bool;
  aborted : bool;
  cached : int;  (** trusted journal replays (task skipped) *)
  retries : int;
  quarantined : int;
  reassignments : int;
      (** tasks returned to the queue by a reclaimed lease *)
  fences : int;  (** live stale-epoch results rejected *)
  replay_fenced : int;  (** journal done-records rejected at replay *)
  worker_deaths : int;
      (** uncommanded deaths (timeouts and remote drops included) *)
  worker_restarts : int;
  chaos_kills : int;
  stalled_drops : int;
      (** stray connections dropped for holding a partial frame (or
          never completing a hello) past the heartbeat timeout *)
  remote_reconnects : int;
      (** admitted hellos that resumed an existing remote slot *)
  rejected : int;  (** hellos refused at admission (token/version) *)
  wal_corrupt_records : int;
  wall_s : float;
  workers : worker_stats list;  (** local slots, then remote joiners *)
}

val wal_path : config -> string
val manifest_path : config -> string

val port_path : config -> string
(** [<dir>/coord.port] — the bound TCP port, written before the first
    accept when [listen] is set (authoritative for port 0), removed at
    shutdown. *)

val tasks_dir : config -> string
(** [<dir>/tasks] — canonical captured outputs ([<id>.out]) plus the
    workers' epoch-stamped [.partial] files awaiting acceptance. *)

val output_path : config -> string -> string
(** Canonical captured output of a task: [<dir>/tasks/<id>.out]. *)

val run :
  ?cancel:Rumor_par.Pool.token ->
  spawn:(slot:int -> socket:string -> int) ->
  config ->
  string list ->
  summary
(** Run the campaign over the named tasks.  [spawn] forks one worker
    process for a local slot and returns its pid; the worker must
    connect to [socket] and speak {!Proto} (use {!Worker.run}, either
    behind an exec of the CLI's [worker] subcommand or directly after
    [Unix.fork]).  Remote workers join on their own over
    [config.listen].  The manifest is written on every exit path.
    @raise Invalid_argument on [workers < 0], on [workers = 0]
    without [listen], or [batch < 1]
    @raise Wal.Bad_magic if [resume] finds a non-WAL file in the way.
    @raise Failure if [listen] names an unresolvable host. *)

val exit_code : summary -> int
(** As {!Campaign.exit_code}: [0] clean or interrupted, [1] when
    anything was quarantined or the campaign aborted. *)
