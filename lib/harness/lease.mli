(** Lease table with epoch fencing — the coordinator's source of
    truth for "who may complete which task".

    Every batch handed to a worker is a {e lease}: a fresh lease id
    plus the value of a process-wide, monotonically increasing
    {e fencing epoch}.  Both ride along in every grant, every worker
    result, and every WAL record.  When the coordinator declares a
    worker dead (crash, OOM-kill, heartbeat timeout) it {e reclaims}
    the lease: the lease becomes inactive, the epoch advances, and the
    unfinished tasks return to the queue.  A zombie — a worker that
    was declared dead but is still running — can only produce results
    stamped with its old (lease, epoch) pair, and {!complete} rejects
    them ([`Fenced]); the same check applied to journal records at
    replay time ({!Replay}) rejects a zombie's writes that raced a
    crash into the WAL. *)

type t

type lease = {
  id : int;
  epoch : int;  (** fencing token at grant time *)
  worker : int;  (** slot the lease was granted to *)
  tasks : string list;  (** batch, in execution order *)
}

val create : unit -> t

val epoch : t -> int
(** Current fencing epoch (advances on every grant and reclaim). *)

val grant : t -> worker:int -> string list -> lease
(** Issue a fresh lease on a batch.  Advances the epoch; the returned
    lease carries the new value. *)

val complete :
  t -> lease_id:int -> epoch:int -> task:string ->
  [ `Ok | `Fenced | `Unknown_task ]
(** Validate a worker result against the table.  [`Ok] marks the task
    complete inside its lease (a lease whose every task completed is
    retired); [`Fenced] = the lease was reclaimed or the epoch is
    stale — the result must be discarded; [`Unknown_task] = active
    lease but a task it does not contain (protocol error). *)

val reclaim : t -> lease_id:int -> string list
(** Deactivate a lease and return its {e unfinished} tasks (completed
    ones stay completed).  Advances the epoch, so any later result
    carrying the old pair is [`Fenced].  Reclaiming an unknown or
    already-reclaimed lease returns []. *)

val active : t -> lease_id:int -> lease option
(** The lease, if still active. *)

val outstanding : t -> int
(** Number of active leases. *)

(** {1 Replay fencing}

    The WAL interleaves lease grant/reclaim records with task-done
    records (each stamped lease + epoch).  Replaying in order with
    {!Replay.step} reconstructs the fencing decisions: a done record
    is trusted only if its lease was granted and not yet reclaimed at
    that point in the log.  The coordinator never {e writes} a fenced
    done record in normal operation — this defends the resume path
    against logs merged, truncated or raced by a crashing zombie. *)
module Replay : sig
  type state

  val create : unit -> state

  val note_grant : state -> lease_id:int -> epoch:int -> unit
  val note_reclaim : state -> lease_id:int -> unit

  val check_done :
    state -> lease_id:int -> epoch:int -> [ `Trusted | `Fenced ]
  (** [`Fenced] iff the lease was reclaimed before this record, was
      never granted, or the epoch does not match its grant. *)
end
