module Clock = Rumor_obs.Clock
module Rng = Rumor_rng.Rng
module Net = Rumor_util.Net

let partial_name ~task ~lease ~epoch =
  Printf.sprintf ".%s.l%de%d.partial" task lease epoch

type transport =
  | Unix_sock of string
  | Tcp of { host : string; port : int; token : string option }

let describe = function
  | Unix_sock path -> path
  | Tcp { host; port; _ } -> Printf.sprintf "%s:%d" host port

(* Serialize socket writes: the heartbeat domain and the main loop
   share one stream, and an interleaved frame would desynchronize the
   coordinator's reader.  [closed] is flipped under the same lock, so
   a straggling heartbeat can never write into a recycled fd number
   after a reconnect tears the old socket down. *)
type conn = {
  fd : Unix.file_descr;
  lock : Mutex.t;
  mutable crc : bool;
  mutable closed : bool;
}

let send conn msg =
  Mutex.lock conn.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.lock)
    (fun () ->
      if conn.closed then raise (Sys_error "connection closed");
      Proto.send ~crc:conn.crc conn.fd (Proto.to_json msg))

let close_conn conn =
  Mutex.lock conn.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.lock)
    (fun () ->
      if not conn.closed then begin
        conn.closed <- true;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)

let backoff_s ~seed ~attempt =
  let jitter = Rng.float (Rng.derive seed attempt) in
  Float.min 3. (0.05 *. (2. ** float_of_int (attempt - 1))) *. (0.5 +. jitter)

(* Errors worth a fresh attempt: the coordinator may simply not be
   listening yet (campaign startup races the worker fork) or the
   network hiccuped.  Anything else (EACCES, bad address family, ...)
   is a configuration problem retries cannot fix. *)
let retryable_errno = function
  | Unix.ENOENT | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ETIMEDOUT
  | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.EINTR | Unix.EAGAIN ->
    true
  | _ -> false

let connect ?(attempts = 10) ~seed transport =
  (* A fresh socket per attempt: a failed [connect] leaves the fd in
     an unspecified state, and retrying on it is EINVAL on some
     platforms. *)
  let try_once () =
    match transport with
    | Unix_sock path -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok fd
      | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error e)
    | Tcp { host; port; _ } -> (
      match Net.resolve host with
      | Error msg -> Error (Failure msg)
      | Ok addr -> (
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        match
          Unix.connect fd (Unix.ADDR_INET (addr, port));
          Net.tune_stream_socket fd
        with
        | () -> Ok fd
        | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error e))
  in
  let rec go k =
    match try_once () with
    | Ok fd -> Some fd
    | Error e ->
      let retry =
        match e with
        | Unix.Unix_error (err, _, _) -> retryable_errno err
        | Failure _ -> true (* resolver failures can be transient *)
        | _ -> false
      in
      if retry && k < attempts then begin
        Unix.sleepf (backoff_s ~seed ~attempt:k);
        go (k + 1)
      end
      else None
  in
  go 1

(* Run one task with stdout redirected to its stamped capture file.
   The file is complete (flushed, synced) before the result frame is
   sent, so an accepted result always has its bytes behind it. *)
let run_captured ~tasks_dir ~task ~lease ~epoch run_task =
  let file = partial_name ~task ~lease ~epoch in
  let path = Filename.concat tasks_dir file in
  flush stdout;
  let saved = Unix.dup ~cloexec:true Unix.stdout in
  let out =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let restore () =
    flush stdout;
    (try Unix.fsync out with Unix.Unix_error _ -> ());
    Unix.dup2 saved Unix.stdout;
    (try Unix.close saved with Unix.Unix_error _ -> ());
    try Unix.close out with Unix.Unix_error _ -> ()
  in
  Unix.dup2 out Unix.stdout;
  let t0 = Clock.now_s () in
  let outcome =
    match run_task task with
    | () -> Ok (Clock.now_s () -. t0)
    | exception e -> Error (Clock.now_s () -. t0, e)
  in
  restore ();
  (file, outcome)

(* Remote results inline the captured bytes.  The cap leaves the JSON
   escaper (worst case six output bytes per input byte) comfortable
   room under [Proto.max_frame], so building the frame can never
   itself raise. *)
let max_inline = 1 lsl 20

let read_back path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Some s
  | exception (Sys_error _ | End_of_file) -> None

exception Reconnect of string
exception Fatal of string

let rec select_read fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | ready, _, _ -> ready <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_read fd timeout

let rec read_chunk fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_chunk fd buf

let run ?(heartbeat_s = 0.5) ?(read_timeout_s = 30.) ?(max_reconnects = 100)
    ~transport ~id ~tasks_dir ~run_task () =
  (* A coordinator that died mid-write must surface as EPIPE on our
     next send, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let legacy = match transport with Unix_sock _ -> true | Tcp _ -> false in
  let token =
    match transport with Tcp { token; _ } -> token | Unix_sock _ -> None
  in
  let seed = Int64.of_int (if id >= 0 then id + 1 else Unix.getpid ()) in
  let sess_id = ref id in
  (* Results of the current lease the coordinator has not provably
     processed yet; re-sent after a reconnect so a result whose frame
     died with the connection still arrives (lease/epoch replay on the
     coordinator decides whether to trust a duplicate). *)
  let unacked : Proto.msg list ref = ref [] (* newest first *) in
  let conn_cell : (conn * int) option Atomic.t = Atomic.make None in
  let stop_beats = Atomic.make false in
  let beats =
    Domain.spawn (fun () ->
        (* Sleep in small slices: an orderly Stop must not wait out
           a whole heartbeat period before the domain can join. *)
        let rec nap left =
          if left > 0. && not (Atomic.get stop_beats) then begin
            let dt = Float.min 0.05 left in
            Unix.sleepf dt;
            nap (left -. dt)
          end
        in
        while not (Atomic.get stop_beats) do
          nap heartbeat_s;
          if not (Atomic.get stop_beats) then
            match Atomic.get conn_cell with
            | None -> () (* between sessions: nothing to prove alive on *)
            | Some (conn, w) -> (
              try send conn (Proto.Beat { worker = w })
              with Unix.Unix_error _ | Sys_error _ ->
                (* Main loop owns reconnect; drop the beat. *)
                ())
        done)
  in
  let reconnects = ref 0 in
  (* Consecutive sessions that died before completing the handshake;
     gates an extra between-session backoff so a coordinator that
     accepts and immediately drops us is not hammered. *)
  let fail_streak = ref 0 in
  let recv_deadline conn reader ~deadline_s =
    let deadline = Clock.now_s () +. deadline_s in
    let chunk = Bytes.create 65536 in
    let rec go () =
      match Proto.next reader with
      | Some j -> Some j
      | None ->
        if Clock.now_s () > deadline then begin
          incr fail_streak;
          raise (Reconnect "handshake timeout")
        end;
        if select_read conn.fd 0.2 then begin
          match read_chunk conn.fd chunk with
          | 0 -> None
          | n ->
            Proto.feed reader chunk n;
            go ()
        end
        else go ()
    in
    go ()
  in
  let handshake conn reader =
    if legacy then begin
      send conn
        (Proto.Hello
           {
             worker = !sess_id;
             pid = Unix.getpid ();
             proto = 1;
             token = None;
             crc = false;
           });
      fail_streak := 0
    end
    else begin
      send conn
        (Proto.Hello
           {
             worker = !sess_id;
             pid = Unix.getpid ();
             proto = Proto.version;
             token;
             crc = true;
           });
      match Option.map Proto.of_json (recv_deadline conn reader ~deadline_s:10.)
      with
      | None ->
        incr fail_streak;
        raise (Reconnect "no welcome (EOF)")
      | Some (Some (Proto.Welcome { worker; proto = _; crc })) ->
        sess_id := worker;
        conn.crc <- crc;
        Proto.set_crc reader crc;
        fail_streak := 0
      | Some (Some (Proto.Reject { reason })) ->
        raise (Fatal (Printf.sprintf "admission rejected: %s" reason))
      | Some _ ->
        incr fail_streak;
        raise (Reconnect "unexpected pre-welcome frame")
    end
  in
  let recv_msg conn reader =
    if legacy then Proto.recv conn.fd reader
    else begin
      let chunk = Bytes.create 65536 in
      let rec go () =
        match Proto.next reader with
        | Some j -> Some j
        | None ->
          if select_read conn.fd 0.25 then begin
            match read_chunk conn.fd chunk with
            | 0 -> None
            | n ->
              Proto.feed reader chunk n;
              go ()
          end
          else if
            Proto.stalled reader ~now:(Clock.now_s ()) ~timeout:read_timeout_s
          then raise (Reconnect "mid-frame read timeout")
          else go ()
      in
      go ()
    end
  in
  let result_msg ~lease ~epoch ~task ~file outcome =
    match outcome with
    | Ok wall_s ->
      if legacy then
        Proto.Result
          {
            worker = !sess_id; lease; epoch; task; ok = true; wall_s; file;
            err = None; transient = false; data = None;
          }
      else begin
        (* No shared filesystem with the coordinator: ship the bytes. *)
        match read_back (Filename.concat tasks_dir file) with
        | Some s when String.length s <= max_inline ->
          Proto.Result
            {
              worker = !sess_id; lease; epoch; task; ok = true; wall_s; file;
              err = None; transient = false; data = Some s;
            }
        | Some s ->
          Proto.Result
            {
              worker = !sess_id; lease; epoch; task; ok = false; wall_s; file;
              err =
                Some
                  (Printf.sprintf "captured output of %d bytes exceeds the %d-byte inline cap"
                     (String.length s) max_inline);
              transient = false; data = None;
            }
        | None ->
          Proto.Result
            {
              worker = !sess_id; lease; epoch; task; ok = false; wall_s; file;
              err = Some "cannot read captured output back"; transient = true;
              data = None;
            }
      end
    | Error (wall_s, e) ->
      Proto.Result
        {
          worker = !sess_id; lease; epoch; task; ok = false; wall_s; file;
          err = Some (Printexc.to_string e);
          transient = Supervisor.default_classify e = Supervisor.Transient;
          data = None;
        }
  in
  let handle_grant conn ~lease ~epoch tasks =
    (* A fresh grant proves the coordinator processed everything we
       sent on the previous lease: drop the replay buffer. *)
    unacked := [];
    let broken = ref None in
    List.iter
      (fun task ->
        let file, outcome =
          run_captured ~tasks_dir ~task ~lease ~epoch run_task
        in
        let msg = result_msg ~lease ~epoch ~task ~file outcome in
        unacked := msg :: !unacked;
        if !broken = None then
          try send conn msg
          with (Unix.Unix_error _ | Sys_error _) as e ->
            if legacy then raise e
            else
              (* Finish the whole batch first — the work is done
                 either way; results flow through [unacked] after the
                 reconnect. *)
              broken := Some (Printexc.to_string e))
      tasks;
    match !broken with
    | Some why -> raise (Reconnect ("send failed: " ^ why))
    | None -> ()
  in
  let rec sessions () =
    match connect ~seed transport with
    | None ->
      Printf.eprintf "rumor worker %d: cannot reach coordinator at %s\n%!"
        !sess_id (describe transport);
      3
    | Some fd -> (
      let conn = { fd; lock = Mutex.create (); crc = false; closed = false } in
      let reader = Proto.reader () in
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            Atomic.set conn_cell None;
            close_conn conn)
          (fun () ->
            try
              handshake conn reader;
              Atomic.set conn_cell (Some (conn, !sess_id));
              List.iter (fun m -> send conn m) (List.rev !unacked);
              let rec loop () =
                match recv_msg conn reader with
                | None -> if legacy then `Done 0 else raise (Reconnect "eof")
                | Some j -> (
                  match Proto.of_json j with
                  | Some Proto.Stop -> `Done 0
                  | Some (Proto.Grant { lease; epoch; tasks }) ->
                    handle_grant conn ~lease ~epoch tasks;
                    loop ()
                  | Some _ | None ->
                    (* unknown message: ignore, stay compatible *)
                    loop ())
              in
              loop ()
            with
            | Fatal msg ->
              Printf.eprintf "rumor worker %d: %s\n%!" !sess_id msg;
              `Done 3
            | Reconnect why when not legacy -> `Again why
            | (Unix.Unix_error _ | Sys_error _ | Proto.Protocol_error _) when
                not legacy ->
              `Again "connection error"
            | Unix.Unix_error _ | Sys_error _ | Proto.Protocol_error _ ->
              (* Legacy path: coordinator vanished or the stream
                 corrupted — exit quietly; the coordinator reclaims
                 our lease either way. *)
              `Done 0)
      in
      match outcome with
      | `Done code -> code
      | `Again why ->
        incr reconnects;
        if !reconnects > max_reconnects then begin
          Printf.eprintf
            "rumor worker %d: giving up after %d reconnects (%s)\n%!" !sess_id
            !reconnects why;
          3
        end
        else begin
          if !fail_streak > 0 then
            Unix.sleepf (backoff_s ~seed ~attempt:(Int.min 10 !fail_streak));
          sessions ()
        end)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop_beats true;
      Domain.join beats)
    sessions
