module Clock = Rumor_obs.Clock

let partial_name ~task ~lease ~epoch =
  Printf.sprintf ".%s.l%de%d.partial" task lease epoch

(* Serialize socket writes: the heartbeat domain and the main loop
   share one stream, and an interleaved frame would desynchronize the
   coordinator's reader. *)
type conn = { fd : Unix.file_descr; lock : Mutex.t }

let send conn msg =
  Mutex.lock conn.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.lock)
    (fun () -> Proto.send conn.fd (Proto.to_json msg))

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec attempt k =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Some fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when k < 20 ->
      Unix.sleepf 0.05;
      attempt (k + 1)
    | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
  in
  attempt 0

(* Run one task with stdout redirected to its stamped capture file.
   The file is complete (flushed, synced) before the result frame is
   sent, so an accepted result always has its bytes behind it. *)
let run_captured ~tasks_dir ~task ~lease ~epoch run_task =
  let file = partial_name ~task ~lease ~epoch in
  let path = Filename.concat tasks_dir file in
  flush stdout;
  let saved = Unix.dup ~cloexec:true Unix.stdout in
  let out =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let restore () =
    flush stdout;
    (try Unix.fsync out with Unix.Unix_error _ -> ());
    Unix.dup2 saved Unix.stdout;
    (try Unix.close saved with Unix.Unix_error _ -> ());
    try Unix.close out with Unix.Unix_error _ -> ()
  in
  Unix.dup2 out Unix.stdout;
  let t0 = Clock.now_s () in
  let outcome =
    match run_task task with
    | () -> Ok (Clock.now_s () -. t0)
    | exception e -> Error (Clock.now_s () -. t0, e)
  in
  restore ();
  (file, outcome)

let run ?(heartbeat_s = 0.5) ~socket ~id ~tasks_dir ~run_task () =
  (* A coordinator that died mid-write must surface as EPIPE on our
     next send, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  match connect socket with
  | None ->
    Printf.eprintf "rumor worker %d: cannot reach coordinator at %s\n%!" id
      socket;
    3
  | Some fd ->
    let conn = { fd; lock = Mutex.create () } in
    let stop_beats = Atomic.make false in
    let beats =
      Domain.spawn (fun () ->
          (* Sleep in small slices: an orderly Stop must not wait out
             a whole heartbeat period before the domain can join. *)
          let rec nap left =
            if left > 0. && not (Atomic.get stop_beats) then begin
              let dt = Float.min 0.05 left in
              Unix.sleepf dt;
              nap (left -. dt)
            end
          in
          while not (Atomic.get stop_beats) do
            nap heartbeat_s;
            if not (Atomic.get stop_beats) then
              try send conn (Proto.Beat { worker = id })
              with Unix.Unix_error (_, _, _) | Sys_error _ ->
                (* Coordinator is gone: the main loop will see EOF. *)
                Atomic.set stop_beats true
          done)
    in
    let reader = Proto.reader () in
    let code = ref 0 in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop_beats true;
        Domain.join beats;
        try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try
          send conn (Proto.Hello { worker = id; pid = Unix.getpid () });
          let running = ref true in
          while !running do
            match Option.bind (Proto.recv fd reader) Proto.of_json with
            | None | Some Proto.Stop -> running := false
            | Some (Proto.Grant { lease; epoch; tasks }) ->
              List.iter
                (fun task ->
                  let file, outcome =
                    run_captured ~tasks_dir ~task ~lease ~epoch run_task
                  in
                  let msg =
                    match outcome with
                    | Ok wall_s ->
                      Proto.Result
                        {
                          worker = id; lease; epoch; task; ok = true;
                          wall_s; file; err = None; transient = false;
                        }
                    | Error (wall_s, e) ->
                      Proto.Result
                        {
                          worker = id; lease; epoch; task; ok = false;
                          wall_s; file;
                          err = Some (Printexc.to_string e);
                          transient =
                            Supervisor.default_classify e
                            = Supervisor.Transient;
                        }
                  in
                  send conn msg)
                tasks
            | Some _ -> ()  (* unknown message: ignore, stay compatible *)
          done
        with
        | Unix.Unix_error (_, _, _) | Sys_error _ | Proto.Protocol_error _ ->
          (* Coordinator vanished or the stream corrupted: exit quietly;
             the coordinator reclaims our lease either way. *)
          code := 0);
    !code
