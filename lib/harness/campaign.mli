(** Crash-safe supervised campaign runner: executes a list of named
    tasks (registry experiments, typically) under a durable journal,
    per-task retry/backoff, a failure budget, and graceful
    SIGINT/SIGTERM shutdown with bit-identical resume.

    The runner journals every task transition to
    [<dir>/campaign.wal] (see {!Wal} for the [rumor-wal/1] format and
    its recovery guarantees) {e before} acting on it, and publishes a
    [<dir>/campaign.manifest.json] summary on every exit path —
    completion, quarantine, budget abort and shutdown alike.

    {b Shutdown} — {!install_signal_handlers} routes SIGINT/SIGTERM
    to {!Rumor_par.Pool.cancel} on {!Rumor_par.Pool.global}: every
    Monte-Carlo pool in the process (including ones buried inside
    experiment code) drains cooperatively — in-flight replicates
    finish, nothing is interrupted mid-replicate — and the campaign
    records the task as interrupted, writes the manifest and returns.
    A later run with [resume = true] skips the journaled-done tasks
    and re-runs the interrupted one from its seed, producing
    bit-identical output (replicate streams are index-keyed; see
    {!Rumor_sim.Run}).

    {b Deadlines} — [deadline_s] is installed as the process-wide
    {!Rumor_sim.Run.set_default_deadline} for the duration of the
    campaign, so replicates inside experiments are wall-clock bounded
    (censored, tallied in [harness.deadline_censored]) even though
    the experiment code never heard of deadlines. *)

type task = {
  id : string;  (** journal key — stable across runs *)
  run : unit -> unit;  (** the work; must be re-runnable from scratch *)
}

type task_outcome =
  | Done of float  (** completed this run; wall seconds *)
  | Cached  (** journaled as done by a previous run; skipped *)
  | Quarantined of string  (** failed after retries; printed exception *)
  | Interrupted  (** shutdown arrived while it ran; resume re-runs it *)
  | Not_run  (** never started (shutdown or budget abort upstream) *)

type config = {
  dir : string;  (** journal + manifest directory (created) *)
  resume : bool;
      (** reuse an existing journal; [false] starts fresh (the old
          journal and quarantine are deleted) *)
  deadline_s : float option;  (** per-replicate wall-clock bound *)
  retries : int;  (** extra attempts per task, transients only *)
  backoff_s : float;  (** base exponential backoff between attempts *)
  fail_budget : float;
      (** abort when quarantined tasks exceed this fraction of the
          task list; [1.0] disables the gate *)
  fsync : bool;  (** fsync every journal append (default; tests may
                     turn it off) *)
  classify : exn -> Supervisor.classification;
}

val default_config : dir:string -> config
(** [resume = false], no deadline, [retries = 1], [backoff_s = 0.5],
    [fail_budget = 1.0], [fsync = true],
    {!Supervisor.default_classify}. *)

type summary = {
  outcomes : (string * task_outcome) list;  (** in task-list order *)
  resumed : bool;  (** an existing journal was reused *)
  interrupted : bool;
  aborted : bool;  (** the failure budget tripped *)
  retries : int;
  quarantined : int;
  wal_corrupt_records : int;  (** quarantined during journal recovery *)
  wall_s : float;
}

val wal_path : config -> string
val manifest_path : config -> string

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to cancelling
    {!Rumor_par.Pool.global} (one atomic store — handler-safe).
    Idempotent: the {e first} signal starts the cooperative drain; a
    {e second} signal (the token is already cancelled) hard-exits the
    process immediately with status 130 — it never re-runs the drain
    path, so a stuck drain cannot absorb repeated Ctrl-C.  Call once,
    before {!run}; platforms without these signals are ignored. *)

val run : ?cancel:Rumor_par.Pool.token -> config -> task list -> summary
(** Execute the tasks in order under the journal.  [cancel] (default
    {!Rumor_par.Pool.global}) is the shutdown token; a cancelled token
    marks the running task interrupted and the rest not-run.  The
    manifest is written on every exit path; the journal is closed
    and the previous default deadline restored even if a task dies
    irrecoverably.
    @raise Wal.Bad_magic if [resume] finds a non-WAL file in the way. *)

val exit_code : summary -> int
(** [0] for a clean or merely interrupted campaign (interruption is
    an operator action, not a failure), [1] when anything was
    quarantined or the budget aborted the run. *)
