module Pool = Rumor_par.Pool
module Obs = Rumor_obs.Metrics
module Clock = Rumor_obs.Clock
module Json = Rumor_obs.Json
module Rng = Rumor_rng.Rng
module Net = Rumor_util.Net

(* Telemetry (lib/obs): the process-supervision layer.  These are the
   numbers the chaos tests assert on — a recovery that silently loses
   a reassignment shows up here first. *)
let m_reassign = Obs.counter "harness.coord.reassignments"
let m_fences = Obs.counter "harness.coord.lease_fences"
let m_replay_fenced = Obs.counter "harness.coord.replay_fenced"
let m_deaths = Obs.counter "harness.coord.worker_deaths"
let m_restarts = Obs.counter "harness.coord.worker_restarts"
let m_chaos = Obs.counter "harness.coord.chaos_kills"
let m_stalled = Obs.counter "harness.coord.stalled_drops"
let m_remote_reconnects = Obs.counter "harness.coord.remote_reconnects"
let m_rejected = Obs.counter "harness.coord.rejected_hellos"
let h_beat_latency = Obs.histogram "harness.coord.heartbeat_latency_s"

type config = {
  dir : string;
  workers : int;
  min_workers : int;
  batch : int;
  resume : bool;
  heartbeat_timeout_s : float;
  chaos_kill_every_s : float option;
  retries : int;
  max_restarts : int;
  fail_budget : float;
  fsync : bool;
  seed : int;
  listen : (string * int) option;
  token : string option;
}

let default_config ~dir ~workers =
  {
    dir;
    workers;
    min_workers = 1;
    batch = 1;
    resume = false;
    heartbeat_timeout_s = 30.;
    chaos_kill_every_s = None;
    retries = 1;
    max_restarts = 3;
    fail_budget = 1.0;
    fsync = true;
    seed = 2020;
    listen = None;
    token = None;
  }

type worker_stats = {
  slot : int;
  restarts : int;
  chaos_kills : int;
  tasks_done : int;
  fenced : int;
  demoted : bool;
  remote : bool;
}

type summary = {
  outcomes : (string * Campaign.task_outcome) list;
  resumed : bool;
  interrupted : bool;
  aborted : bool;
  cached : int;
  retries : int;
  quarantined : int;
  reassignments : int;
  fences : int;
  replay_fenced : int;
  worker_deaths : int;
  worker_restarts : int;
  chaos_kills : int;
  stalled_drops : int;
  remote_reconnects : int;
  rejected : int;
  wal_corrupt_records : int;
  wall_s : float;
  workers : worker_stats list;
}

let wal_path config = Filename.concat config.dir "campaign.wal"
let manifest_path config = Filename.concat config.dir "campaign.manifest.json"
let port_path config = Filename.concat config.dir "coord.port"
let tasks_dir config = Filename.concat config.dir "tasks"
let output_path config task = Filename.concat (tasks_dir config) (task ^ ".out")

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* sockaddr_un paths are capped around 104 bytes; a deeply nested
   campaign dir must not silently break the coordinator. *)
let socket_path config =
  let candidate = Filename.concat config.dir "coord.sock" in
  if String.length candidate < 100 then candidate
  else begin
    let tmp = Filename.temp_file "rumor-coord" ".sock" in
    Sys.remove tmp;
    tmp
  end

(* --- journal records ---

   Task records share Campaign's shape ({"k":"task",...}) extended
   with the fencing stamp; lease grant/reclaim records interleave so
   replay can re-run the fencing decisions; incident records make the
   failure history auditable. *)

let task_record id ev ~att ?wall ?err ?lease ?epoch ?worker () =
  Json.Obj
    ([ ("k", Json.String "task");
       ("id", Json.String id);
       ("ev", Json.String ev);
       ("att", Json.Int att) ]
    @ (match wall with
      | Some w -> [ ("wall", Json.String (Printf.sprintf "%h" w)) ]
      | None -> [])
    @ (match err with Some e -> [ ("err", Json.String e) ] | None -> [])
    @ (match lease with Some l -> [ ("lease", Json.Int l) ] | None -> [])
    @ (match epoch with Some e -> [ ("ep", Json.Int e) ] | None -> [])
    @ match worker with Some w -> [ ("w", Json.Int w) ] | None -> [])

let lease_record ev ~lease ~epoch ~worker ?(tasks = []) () =
  Json.Obj
    ([ ("k", Json.String "lease");
       ("ev", Json.String ev);
       ("lease", Json.Int lease);
       ("ep", Json.Int epoch);
       ("w", Json.Int worker) ]
    @
    if tasks = [] then []
    else [ ("tasks", Json.List (List.map (fun t -> Json.String t) tasks)) ])

let incident_record ev ~worker ?detail () =
  Json.Obj
    ([ ("k", Json.String "incident");
       ("ev", Json.String ev);
       ("w", Json.Int worker) ]
    @ match detail with Some d -> [ ("detail", Json.String d) ] | None -> [])

(* Replay: walk the journal in append order re-running the fencing
   decisions.  A done record is trusted only if its (lease, epoch)
   was granted and not reclaimed at that point in the log — and its
   canonical output file actually exists (the rename precedes the
   journal append, so a trusted record always has bytes behind it
   unless the operator deleted them; re-run in that case). *)
let replay_done config records =
  let replay = Lease.Replay.create () in
  let done_ = Hashtbl.create 16 in
  let fenced = ref 0 in
  List.iter
    (fun j ->
      let str field = Option.bind (Json.member field j) Json.to_string_opt in
      let int field = Option.bind (Json.member field j) Json.to_int_opt in
      match (str "k", str "ev") with
      | Some "lease", Some "grant" -> (
        match (int "lease", int "ep") with
        | Some lease_id, Some epoch ->
          Lease.Replay.note_grant replay ~lease_id ~epoch
        | _ -> ())
      | Some "lease", Some "reclaim" -> (
        match int "lease" with
        | Some lease_id -> Lease.Replay.note_reclaim replay ~lease_id
        | None -> ())
      | Some "task", Some "done" -> (
        match str "id" with
        | None -> ()
        | Some id -> (
          match (int "lease", int "ep") with
          | Some lease_id, Some epoch -> (
            match Lease.Replay.check_done replay ~lease_id ~epoch with
            | `Trusted ->
              if Sys.file_exists (output_path config id) then
                Hashtbl.replace done_ id ()
            | `Fenced ->
              incr fenced;
              Obs.incr m_replay_fenced)
          | _ ->
            (* Stampless done record: a single-process campaign journal
               (PR 5).  Trust it — there were no processes to fence. *)
            Hashtbl.replace done_ id ()))
      | _ -> ())
    records;
  (done_, !fenced)

(* --- per-slot worker state --- *)

type incarnation = {
  mutable pid : int;
  mutable fd : Unix.file_descr option;
  mutable reader : Proto.reader;
  mutable last_seen : float;
  mutable hello : bool;
  mutable crc : bool;  (* CRC trailers negotiated for this connection *)
}

type wslot = {
  slot : int;
  remote : bool;  (* joined over TCP; no process to kill or respawn *)
  mutable inc : incarnation option;  (* current incarnation, if any *)
  mutable lease : int option;
  mutable restarts : int;
  mutable chaos_kills : int;
  mutable tasks_done : int;
  mutable fenced : int;
  mutable demoted : bool;
  mutable chaos_pending : bool;  (* next death is ours, not the slot's *)
}

(* A connection no longer owned by a slot: a declared-dead worker we
   keep draining so its late (fenced) writes are observed, or a fresh
   accept that has not said hello yet. *)
type stray = {
  s_fd : Unix.file_descr;
  s_reader : Proto.reader;
  s_pid : int option;  (* known for zombies; None for fresh accepts *)
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let kill_quiet signal pid =
  if pid > 0 then try Unix.kill pid signal with Unix.Unix_error _ -> ()

let run ?(cancel = Pool.global) ~spawn (config : config) task_ids =
  if config.workers < 0 then
    invalid_arg "Coordinator.run: negative worker count";
  if config.workers < 1 && config.listen = None then
    invalid_arg "Coordinator.run: need at least one worker (or a listen address)";
  if config.batch < 1 then invalid_arg "Coordinator.run: batch must be >= 1";
  mkdirs config.dir;
  mkdirs (tasks_dir config);
  let wal_file = wal_path config in
  if not config.resume then begin
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ wal_file; Wal.quarantine_path wal_file ];
    Array.iter
      (fun e -> Sys.remove (Filename.concat (tasks_dir config) e))
      (try Sys.readdir (tasks_dir config) with Sys_error _ -> [||])
  end;
  let resumed = config.resume && Sys.file_exists wal_file in
  let wal = Wal.open_ ~fsync:config.fsync wal_file in
  let recovery = Wal.recovery wal in
  let finished, replay_fenced = replay_done config recovery.Wal.records in
  let n_tasks = List.length task_ids in
  (* Final per-task outcomes; a task is open until its slot is filled. *)
  let outcomes : (string, Campaign.task_outcome) Hashtbl.t =
    Hashtbl.create 16
  in
  let cached = ref 0 in
  let queue = Queue.create () in
  List.iter
    (fun id ->
      if Hashtbl.mem finished id then begin
        Hashtbl.replace outcomes id Campaign.Cached;
        incr cached
      end
      else Queue.add id queue)
    task_ids;
  let remaining = ref (Queue.length queue) in
  (* Chaos progress guarantee: once a task has been chaos-reassigned
     this many times, its current holder is immune to further chaos
     kills — otherwise a task longer than the kill interval livelocks
     (holder killed, reassigned, killed again, forever). *)
  let chaos_task_cap = 5 in
  (* Uncharged reassignments (chaos kills, remote disconnects) do not
     burn the task's retry budget, so a task bouncing off a flapping
     network link needs its own bound or the campaign livelocks. *)
  let uncharged_cap = 25 in
  let chaos_reassigns : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let attempt_of id = 1 + Option.value ~default:0 (Hashtbl.find_opt attempts id) in
  let leases = Lease.create () in
  let retries = ref 0 in
  let quarantined = ref 0 in
  let reassignments = ref 0 in
  let fences = ref 0 in
  let worker_deaths = ref 0 in
  let worker_restarts = ref 0 in
  let chaos_kills = ref 0 in
  let stalled_drops = ref 0 in
  let remote_reconnects = ref 0 in
  let rejected = ref 0 in
  let aborted = ref false in
  let interrupted = ref false in
  let t0 = Clock.now_s () in
  (* --- socket plumbing --- *)
  let sock_path = socket_path config in
  if Sys.file_exists sock_path then Sys.remove sock_path;
  let backlog = Int.max 16 (2 * config.workers) in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX sock_path);
  Unix.listen listen_fd backlog;
  let tcp_listen =
    match config.listen with
    | None -> None
    | Some (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Net.resolve_exn host, port));
      Unix.listen fd backlog;
      (* The bound port (authoritative when the config said port 0)
         is published for workers and scripts to discover. *)
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      Wal.write_atomic (port_path config) (string_of_int bound ^ "\n");
      Some fd
  in
  (* A worker dying mid-send must surface as EPIPE, not SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let slots =
    Array.init config.workers (fun slot ->
        {
          slot;
          remote = false;
          inc = None;
          lease = None;
          restarts = 0;
          chaos_kills = 0;
          tasks_done = 0;
          fenced = 0;
          demoted = false;
          chaos_pending = false;
        })
  in
  (* TCP workers: slots created at admission, ids from [next_remote]
     (above the local range so the two can never collide). *)
  let remotes : (int, wslot) Hashtbl.t = Hashtbl.create 8 in
  let next_remote = ref config.workers in
  let remote_slots () =
    Hashtbl.fold (fun _ w acc -> w :: acc) remotes []
    |> List.sort (fun a b -> compare a.slot b.slot)
  in
  let all_slots () = Array.to_list slots @ remote_slots () in
  let strays : stray list ref = ref [] in
  let drop_stray fd = strays := List.filter (fun x -> x.s_fd <> fd) !strays in
  (* Dead children of ours whose WNOHANG reap raced the exit: swept
     every loop iteration until collected.  Only pids this coordinator
     spawned or killed go here — a waitpid(-1) sweep would steal exit
     statuses from children the embedding process forked for its own
     purposes (a test harness's own TCP workers, say). *)
  let reapable : int list ref = ref [] in
  let reap_later pid =
    if pid > 0 then
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> reapable := pid :: !reapable
      | _ -> ()
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  let sweep_reapable () =
    reapable :=
      List.filter
        (fun pid ->
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> true
          | _ -> false
          | exception Unix.Unix_error (_, _, _) -> false)
        !reapable
  in
  let spawn_slot w =
    let pid = spawn ~slot:w.slot ~socket:sock_path in
    w.inc <-
      Some
        {
          pid;
          fd = None;
          reader = Proto.reader ();
          last_seen = Clock.now_s ();
          hello = false;
          crc = false;
        }
  in
  Array.iter spawn_slot slots;
  let chaos_rng = Rng.create config.seed in
  let next_chaos =
    ref
      (match config.chaos_kill_every_s with
      | Some d -> Clock.now_s () +. d
      | None -> infinity)
  in
  let live_slots () =
    (* Local slots only: [min_workers] and chaos target the processes
       this coordinator owns, not remote peers that come and go. *)
    Array.to_list slots
    |> List.filter (fun w -> (not w.demoted) && Option.is_some w.inc)
  in
  let journal rec_ = Wal.append wal rec_ in
  (* Quarantine a task: its slot in the outcome table is final. *)
  let quarantine id err =
    Hashtbl.replace outcomes id (Campaign.Quarantined err);
    incr quarantined;
    decr remaining;
    journal (task_record id "quarantined" ~att:(attempt_of id - 1) ~err ());
    if
      float_of_int !quarantined > config.fail_budget *. float_of_int n_tasks
    then aborted := true
  in
  (* Return a task to the queue after a failure or a reclaimed lease.
     [charge] is false for chaos-inflicted deaths and remote
     disconnects: exogenous faults prove the machinery and must not
     burn the task's budget. *)
  let requeue ~charge ~why id =
    if charge then begin
      Hashtbl.replace attempts id (attempt_of id);
      if attempt_of id > config.retries + 1 then
        quarantine id (Printf.sprintf "retry budget exhausted (%s)" why)
      else begin
        Queue.add id queue;
        incr reassignments;
        Obs.incr m_reassign
      end
    end
    else begin
      let n =
        1 + Option.value ~default:0 (Hashtbl.find_opt chaos_reassigns id)
      in
      Hashtbl.replace chaos_reassigns id n;
      if n > uncharged_cap then
        quarantine id
          (Printf.sprintf "excessive uncharged reassignments (%s)" why)
      else begin
        Queue.add id queue;
        incr reassignments;
        Obs.incr m_reassign
      end
    end
  in
  let reclaim_lease ~charge w why =
    match w.lease with
    | None -> ()
    | Some lease_id ->
      let pending = Lease.reclaim leases ~lease_id in
      w.lease <- None;
      journal
        (lease_record "reclaim" ~lease:lease_id ~epoch:(Lease.epoch leases)
           ~worker:w.slot ());
      List.iter (fun id -> requeue ~charge ~why id) pending
  in
  (* Uncommanded death or heartbeat timeout: reclaim, journal, respawn
     within budget.  [zombie] keeps the old connection draining (the
     process may still be alive and about to write something stale).
     A remote slot has no process behind it: nothing to kill, reap or
     respawn, and its drop is presumed a network fault (uncharged);
     the peer is expected to reconnect and resume its id. *)
  let declare_dead ~ev ~zombie w =
    if w.remote then begin
      (match w.inc with
      | None -> ()
      | Some inc ->
        (if zombie then
           match inc.fd with
           | Some fd ->
             strays :=
               { s_fd = fd; s_reader = inc.reader; s_pid = None } :: !strays
           | None -> ()
         else match inc.fd with Some fd -> close_quiet fd | None -> ());
        w.inc <- None);
      journal (incident_record ev ~worker:w.slot ());
      incr worker_deaths;
      w.restarts <- w.restarts + 1;
      Obs.incr m_deaths;
      reclaim_lease ~charge:false w ev
    end
    else begin
      let chaos = w.chaos_pending in
      w.chaos_pending <- false;
      (match w.inc with
      | None -> ()
      | Some inc ->
        (if zombie then
           match inc.fd with
           | Some fd ->
             strays :=
               { s_fd = fd; s_reader = inc.reader; s_pid = Some inc.pid }
               :: !strays
           | None ->
             kill_quiet Sys.sigkill inc.pid;
             reap_later inc.pid
         else begin
           (match inc.fd with Some fd -> close_quiet fd | None -> ());
           kill_quiet Sys.sigkill inc.pid;
           reap_later inc.pid
         end);
        w.inc <- None);
      journal (incident_record ev ~worker:w.slot ());
      if chaos then begin
        incr chaos_kills;
        w.chaos_kills <- w.chaos_kills + 1;
        Obs.incr m_chaos
      end
      else begin
        incr worker_deaths;
        w.restarts <- w.restarts + 1;
        Obs.incr m_deaths
      end;
      reclaim_lease ~charge:(not chaos) w ev;
      if (not chaos) && w.restarts > config.max_restarts then begin
        w.demoted <- true;
        journal (incident_record "demoted" ~worker:w.slot ())
      end
      else if !remaining > 0 && not (Pool.is_cancelled cancel) then begin
        spawn_slot w;
        incr worker_restarts;
        Obs.incr m_restarts;
        journal (incident_record "restart" ~worker:w.slot ())
      end;
      if List.length (live_slots ()) < config.min_workers then begin
        aborted := true;
        journal (incident_record "min_workers_abort" ~worker:w.slot ())
      end
    end
  in
  let accept_result w_opt
      (lease_id, epoch, task, ok, wall_s, file, err, transient, data) =
    let file = Filename.basename file in
    let partial = Filename.concat (tasks_dir config) file in
    match Lease.complete leases ~lease_id ~epoch ~task with
    | `Fenced ->
      incr fences;
      Obs.incr m_fences;
      (match w_opt with Some w -> w.fenced <- w.fenced + 1 | None -> ());
      journal
        (incident_record "fence"
           ~worker:(match w_opt with Some w -> w.slot | None -> -1)
           ~detail:(Printf.sprintf "task %s lease %d ep %d" task lease_id epoch)
           ());
      if Sys.file_exists partial then Sys.remove partial
    | `Unknown_task ->
      journal
        (incident_record "unknown_task"
           ~worker:(match w_opt with Some w -> w.slot | None -> -1)
           ~detail:task ());
      if Sys.file_exists partial then Sys.remove partial
    | `Ok ->
      (match w_opt with
      | Some w ->
        if Lease.active leases ~lease_id = None then w.lease <- None
      | None -> ());
      (* A remote result carries its bytes inline (the coordinator
         cannot read the worker's filesystem): materialize them where
         a local worker would have written the stamped partial.  Only
         on the trusted path — a fenced frame's bytes are never
         written anywhere. *)
      (match data with
      | Some d when ok -> Wal.write_atomic partial d
      | _ -> ());
      if ok && Sys.file_exists partial then begin
        (* Rename before journaling: a trusted done record always has
           its canonical bytes on disk. *)
        Sys.rename partial (output_path config task);
        Rumor_util.Fsutil.fsync_parent_dir (output_path config task);
        Hashtbl.replace outcomes task (Campaign.Done wall_s);
        decr remaining;
        (match w_opt with Some w -> w.tasks_done <- w.tasks_done + 1 | None -> ());
        journal
          (task_record task "done" ~att:(attempt_of task) ~wall:wall_s
             ~lease:lease_id ~epoch
             ?worker:(Option.map (fun w -> w.slot) w_opt)
             ())
      end
      else begin
        if Sys.file_exists partial then Sys.remove partial;
        let err =
          Option.value err
            ~default:(if ok then "output file missing" else "failed")
        in
        let transient = transient || ok (* lost output: environmental *) in
        if transient && attempt_of task <= config.retries then begin
          incr retries;
          journal (task_record task "retry" ~att:(attempt_of task) ~err ());
          requeue ~charge:true ~why:"transient failure" task
        end
        else quarantine task err
      end
  in
  let handle_msg w_opt msg =
    (match w_opt with
    | Some w -> (
      match w.inc with
      | Some inc ->
        let now = Clock.now_s () in
        (match msg with
        | Proto.Beat _ -> Obs.observe h_beat_latency (now -. inc.last_seen)
        | _ -> ());
        inc.last_seen <- now
      | None -> ())
    | None -> ());
    match msg with
    | Proto.Hello _ -> (
      match w_opt with
      | Some w -> (
        match w.inc with Some inc -> inc.hello <- true | None -> ())
      | None -> ())
    | Proto.Beat _ -> ()
    | Proto.Result
        { lease; epoch; task; ok; wall_s; file; err; transient; data; _ } ->
      accept_result w_opt
        (lease, epoch, task, ok, wall_s, file, err, transient, data)
    | Proto.Grant _ | Proto.Stop | Proto.Welcome _ | Proto.Reject _ ->
      ()  (* not ours to receive *)
  in
  (* Route a raw frame: a hello from a fresh accept binds the stray
     connection to its slot's current incarnation; everything else is
     dispatched with whatever slot attribution the worker id gives. *)
  let slot_of_worker_id w =
    if w >= 0 && w < Array.length slots then Some slots.(w)
    else Hashtbl.find_opt remotes w
  in
  let send_to inc json =
    Proto.send ~crc:inc.crc (Option.get inc.fd) json
  in
  let grant_work () =
    if not (Pool.is_cancelled cancel || !aborted) then
      List.iter
        (fun w ->
          if
            (not w.demoted) && w.lease = None
            && not (Queue.is_empty queue)
          then
            match w.inc with
            | Some inc when inc.hello && inc.fd <> None -> (
              let batch = ref [] in
              let n = min config.batch (Queue.length queue) in
              for _ = 1 to n do
                batch := Queue.pop queue :: !batch
              done;
              let batch = List.rev !batch in
              let lease = Lease.grant leases ~worker:w.slot batch in
              (* Journal the grant before sending it: replay must know
                 every lease the worker could possibly stamp. *)
              journal
                (lease_record "grant" ~lease:lease.Lease.id
                   ~epoch:lease.Lease.epoch ~worker:w.slot ~tasks:batch ());
              w.lease <- Some lease.Lease.id;
              match
                send_to inc
                  (Proto.to_json
                     (Proto.Grant
                        {
                          lease = lease.Lease.id;
                          epoch = lease.Lease.epoch;
                          tasks = batch;
                        }))
              with
              | () -> ()
              | exception (Unix.Unix_error (_, _, _) | Sys_error _) ->
                declare_dead ~ev:"worker_death" ~zombie:false w)
            | _ -> ())
        (all_slots ())
  in
  (* Admission of a protocol-2 (TCP) hello: version and token are
     checked here, at the door, so a stray worker from another
     campaign is turned away before it can touch a lease.  A known
     worker id resumes its slot (superseding any half-open previous
     connection); -1 gets a fresh id.  The welcome — like the hello —
     is always sent without a CRC trailer; the negotiated mode starts
     with the first frame after it, in both directions. *)
  let admit_remote (s : stray) ~worker ~pid ~proto ~tok ~crc =
    let fd = s.s_fd in
    let reject reason =
      incr rejected;
      Obs.incr m_rejected;
      journal (incident_record "hello_rejected" ~worker ~detail:reason ());
      (try Proto.send fd (Proto.to_json (Proto.Reject { reason }))
       with Unix.Unix_error _ | Sys_error _ -> ());
      close_quiet fd;
      drop_stray fd
    in
    if proto > Proto.version then
      reject
        (Printf.sprintf "unsupported protocol version %d (coordinator max %d)"
           proto Proto.version)
    else if not (config.token = None || config.token = tok) then
      reject "bad campaign token"
    else if worker >= 0 && worker < Array.length slots then
      reject (Printf.sprintf "worker id %d names a local slot" worker)
    else begin
      let resume = worker >= 0 && Hashtbl.mem remotes worker in
      let w =
        if resume then Hashtbl.find remotes worker
        else begin
          (* An explicit id above the local range is honoured (a
             worker resuming across a coordinator restart); otherwise
             allocate the next one. *)
          let id = if worker >= 0 then worker else !next_remote in
          next_remote := Int.max !next_remote (id + 1);
          let w =
            {
              slot = id;
              remote = true;
              inc = None;
              lease = None;
              restarts = 0;
              chaos_kills = 0;
              tasks_done = 0;
              fenced = 0;
              demoted = false;
              chaos_pending = false;
            }
          in
          Hashtbl.replace remotes id w;
          w
        end
      in
      (match w.inc with
      | Some old ->
        (match old.fd with Some ofd -> close_quiet ofd | None -> ());
        w.inc <- None
      | None -> ());
      match
        Proto.send fd
          (Proto.to_json
             (Proto.Welcome { worker = w.slot; proto = Proto.version; crc }))
      with
      | exception (Unix.Unix_error _ | Sys_error _) ->
        close_quiet fd;
        drop_stray fd
      | () ->
        Proto.set_crc s.s_reader crc;
        w.inc <-
          Some
            {
              pid;
              fd = Some fd;
              reader = s.s_reader;
              last_seen = Clock.now_s ();
              hello = true;
              crc;
            };
        drop_stray fd;
        if resume then begin
          incr remote_reconnects;
          Obs.incr m_remote_reconnects;
          journal (incident_record "remote_reconnect" ~worker:w.slot ())
        end
        else journal (incident_record "remote_join" ~worker:w.slot ());
        (* A grant may have died with the old connection, which would
           deadlock the pair (coordinator waiting for results, worker
           for work).  Re-send the active batch: already-finished
           tasks in it come back as fenced/unknown duplicates and are
           discarded. *)
        (match w.lease with
        | None -> ()
        | Some lease_id -> (
          match Lease.active leases ~lease_id with
          | None -> w.lease <- None
          | Some l -> (
            journal
              (incident_record "regrant" ~worker:w.slot
                 ~detail:
                   (Printf.sprintf "lease %d ep %d" l.Lease.id l.Lease.epoch)
                 ());
            match
              Proto.send ~crc fd
                (Proto.to_json
                   (Proto.Grant
                      {
                        lease = l.Lease.id;
                        epoch = l.Lease.epoch;
                        tasks = l.Lease.tasks;
                      }))
            with
            | () -> ()
            | exception (Unix.Unix_error _ | Sys_error _) ->
              declare_dead ~ev:"worker_death" ~zombie:false w)))
    end
  in
  let read_fd fd =
    let chunk = Bytes.create 65536 in
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n -> `Data (chunk, n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Data (chunk, 0)
    | exception Unix.Unix_error (_, _, _) -> `Eof
  in
  let drain_reader w_opt reader =
    let rec go () =
      match Proto.next reader with
      | Some j ->
        (match Proto.of_json j with
        | Some msg ->
          let w_opt =
            match msg with
            | Proto.Hello { worker; _ }
            | Proto.Beat { worker }
            | Proto.Result { worker; _ } -> (
              match w_opt with Some _ -> w_opt | None -> slot_of_worker_id worker)
            | _ -> w_opt
          in
          handle_msg w_opt msg
        | None -> ());
        go ()
      | None -> ()
    in
    go ()
  in
  let finished_campaign () =
    !remaining = 0 && Lease.outstanding leases = 0
  in
  let cleanup () =
    (* Orderly stop for live workers, hard stop for everything else. *)
    Array.iter
      (fun w ->
        match w.inc with
        | Some inc ->
          (match inc.fd with
          | Some fd ->
            (try Proto.send ~crc:inc.crc fd (Proto.to_json Proto.Stop)
             with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
            close_quiet fd
          | None -> ());
          let deadline = Clock.now_s () +. 2.0 in
          let rec wait () =
            match Unix.waitpid [ Unix.WNOHANG ] inc.pid with
            | 0, _ ->
              if Clock.now_s () > deadline then begin
                kill_quiet Sys.sigkill inc.pid;
                reap_later inc.pid
              end
              else begin
                Unix.sleepf 0.02;
                wait ()
              end
            | _ -> ()
            | exception Unix.Unix_error (_, _, _) -> ()
          in
          wait ()
        | None -> ())
      slots;
    (* Remote peers: an orderly stop frame, then hang up — their
       processes belong to another machine. *)
    List.iter
      (fun w ->
        match w.inc with
        | Some inc -> (
          match inc.fd with
          | Some fd ->
            (try Proto.send ~crc:inc.crc fd (Proto.to_json Proto.Stop)
             with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
            close_quiet fd
          | None -> ())
        | None -> ())
      (remote_slots ());
    List.iter
      (fun s ->
        close_quiet s.s_fd;
        (match s.s_pid with
        | Some pid ->
          kill_quiet Sys.sigkill pid;
          reap_later pid
        | None -> ()))
      !strays;
    (* Collect the stragglers whose reap raced their kill. *)
    let deadline = Clock.now_s () +. 2.0 in
    let rec drain () =
      sweep_reapable ();
      if !reapable <> [] && Clock.now_s () < deadline then begin
        Unix.sleepf 0.02;
        drain ()
      end
    in
    drain ();
    close_quiet listen_fd;
    (match tcp_listen with Some fd -> close_quiet fd | None -> ());
    if Sys.file_exists sock_path then Sys.remove sock_path;
    if Sys.file_exists (port_path config) then Sys.remove (port_path config);
    (* Stale stamped partials (fenced or never-accepted writes) must
       not survive into a byte-compare of the tasks directory. *)
    Array.iter
      (fun e ->
        if String.length e > 0 && e.[0] = '.' then
          try Sys.remove (Filename.concat (tasks_dir config) e)
          with Sys_error _ -> ())
      (try Sys.readdir (tasks_dir config) with Sys_error _ -> [||]);
    Wal.close wal
  in
  Fun.protect ~finally:cleanup (fun () ->
      let drained_since_cancel = ref 0. in
      while
        (not (finished_campaign ()))
        && (not !aborted)
        &&
        if Pool.is_cancelled cancel then begin
          if !drained_since_cancel = 0. then
            drained_since_cancel := Clock.now_s ();
          interrupted := true;
          (* Drain: in-flight leases finish (workers are between-task
             cancellable only at batch granularity), bounded so a hung
             worker cannot wedge the shutdown. *)
          Lease.outstanding leases > 0
          && Clock.now_s () -. !drained_since_cancel
             < config.heartbeat_timeout_s
        end
        else true
      do
        grant_work ();
        let now = Clock.now_s () in
        let timeout =
          let next = min (!next_chaos -. now) 0.2 in
          Float.max 0.01 next
        in
        let conn_slots =
          List.filter_map
            (fun w ->
              match w.inc with
              | Some { fd = Some fd; _ } -> Some (fd, w)
              | _ -> None)
            (all_slots ())
        in
        let watched =
          (listen_fd :: Option.to_list tcp_listen)
          @ List.map fst conn_slots
          @ List.map (fun s -> s.s_fd) !strays
        in
        let readable, _, _ =
          match Unix.select watched [] [] timeout with
          | r -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            if fd = listen_fd || Some fd = tcp_listen then begin
              match Unix.accept ~cloexec:true fd with
              | conn_fd, _ ->
                if Some fd = tcp_listen then Net.tune_stream_socket conn_fd;
                strays :=
                  { s_fd = conn_fd; s_reader = Proto.reader (); s_pid = None }
                  :: !strays
              | exception Unix.Unix_error (_, _, _) -> ()
            end
            else begin
              (* Slot connection? *)
              let slot =
                List.find_opt (fun (f, _) -> f = fd) conn_slots
                |> Option.map snd
              in
              match slot with
              | Some w -> (
                match w.inc with
                | None -> ()
                | Some inc -> (
                  match read_fd fd with
                  | `Eof -> declare_dead ~ev:"worker_death" ~zombie:false w
                  | `Data (chunk, n) ->
                    Proto.feed inc.reader chunk n;
                    (match drain_reader (Some w) inc.reader with
                    | () -> ()
                    | exception Proto.Protocol_error _ ->
                      (* Corrupted or desynchronized stream (a CRC
                         mismatch lands here): cut the connection; a
                         remote peer reconnects and resumes. *)
                      declare_dead ~ev:"protocol_error" ~zombie:false w)))
              | None -> (
                match List.find_opt (fun s -> s.s_fd = fd) !strays with
                | None -> ()
                | Some s -> (
                  match read_fd fd with
                  | `Eof ->
                    close_quiet fd;
                    (match s.s_pid with Some pid -> reap_later pid | None -> ());
                    drop_stray fd
                  | `Data (chunk, n) -> (
                    Proto.feed s.s_reader chunk n;
                    (* A hello binds this stray to its slot; results
                       and beats are dispatched by worker id (stale
                       ones fence naturally). *)
                    let rec pump () =
                      match Proto.next s.s_reader with
                      | None -> ()
                      | Some j ->
                        (match Proto.of_json j with
                        | Some (Proto.Hello { worker; pid; proto; token; crc })
                          when proto >= 2 ->
                          admit_remote s ~worker ~pid ~proto ~tok:token ~crc
                        | Some (Proto.Hello { worker; pid; _ }) -> (
                          match slot_of_worker_id worker with
                          | Some w -> (
                            match w.inc with
                            | Some inc
                              when inc.fd = None && inc.pid = pid ->
                              inc.fd <- Some fd;
                              inc.reader <- s.s_reader;
                              inc.hello <- true;
                              inc.last_seen <- Clock.now_s ();
                              drop_stray fd
                            | _ ->
                              (* Not the incarnation we are waiting
                                 for: keep it stray (it is a zombie). *)
                              ())
                          | None -> ())
                        | Some
                            (Proto.Result
                               {
                                 worker; lease; epoch; task; ok; wall_s;
                                 file; err; transient; data;
                               }) ->
                          (* A zombie's late result: its lease was
                             reclaimed when we declared it dead, so
                             this fences — attributed to the slot. *)
                          accept_result
                            (slot_of_worker_id worker)
                            (lease, epoch, task, ok, wall_s, file, err,
                             transient, data)
                        | Some _ -> ()  (* stray beats: ignore *)
                        | None -> ());
                        if List.exists (fun x -> x.s_fd = fd) !strays then
                          pump ()
                    in
                    match pump () with
                    | () -> ()
                    | exception Proto.Protocol_error _ ->
                      close_quiet fd;
                      drop_stray fd)))
            end)
          readable;
        (* Heartbeat deadlines: silence past the timeout means dead —
           maybe hung, maybe OOM-killed before the socket closed.  The
           connection (if any) survives as a stray so late writes are
           fenced rather than lost in a closed pipe. *)
        let now = Clock.now_s () in
        List.iter
          (fun w ->
            match w.inc with
            | Some inc when now -. inc.last_seen > config.heartbeat_timeout_s
              ->
              declare_dead ~ev:"heartbeat_timeout" ~zombie:true w
            | _ -> ())
          (all_slots ());
        (* Stalled strays: a half-open connection holding bytes of an
           incomplete frame — or a fresh accept that never said hello —
           past the heartbeat timeout is dropped, or it would pin its
           select slot forever.  Quiet zombies at a clean frame
           boundary stay: they exist so late writes fence. *)
        (let timeout = config.heartbeat_timeout_s in
         let dropped, kept =
           List.partition
             (fun s ->
               Proto.stalled s.s_reader ~now ~timeout
               || (s.s_pid = None && Proto.age s.s_reader ~now > timeout))
             !strays
         in
         if dropped <> [] then begin
           strays := kept;
           List.iter
             (fun s ->
               incr stalled_drops;
               Obs.incr m_stalled;
               journal
                 (incident_record "stalled_drop" ~worker:(-1)
                    ?detail:
                      (Option.map (Printf.sprintf "zombie pid %d") s.s_pid)
                    ());
               close_quiet s.s_fd;
               match s.s_pid with Some pid -> reap_later pid | None -> ())
             dropped
         end);
        (* Reap exited children: the WNOHANG at kill time can race the
           SIGKILL, so sweep the coordinator's own dead pids every
           iteration or defunct processes pile up across a long chaos
           run.  Never waitpid(-1) here: it would also collect — and
           so destroy the exit status of — children the embedding
           process forked for itself. *)
        sweep_reapable ();
        (* Chaos: SIGKILL a random live worker, lease held or not —
           that is the scenario the recovery machinery exists for. *)
        if now >= !next_chaos && not (Pool.is_cancelled cancel) then begin
          (match config.chaos_kill_every_s with
          | Some d -> next_chaos := now +. d
          | None -> next_chaos := infinity);
          let victims =
            List.filter
              (fun w ->
                match w.inc with
                | Some { hello = true; _ } -> (
                  match w.lease with
                  | None -> true
                  | Some lease_id -> (
                    match Lease.active leases ~lease_id with
                    | None -> true
                    | Some l ->
                      List.for_all
                        (fun t ->
                          Option.value ~default:0
                            (Hashtbl.find_opt chaos_reassigns t)
                          < chaos_task_cap)
                        l.Lease.tasks))
                | _ -> false)
              (live_slots ())
          in
          match victims with
          | [] -> ()
          | _ ->
            let w = List.nth victims (Rng.int chaos_rng (List.length victims)) in
            (match w.inc with
            | Some inc ->
              w.chaos_pending <- true;
              journal (incident_record "chaos_kill" ~worker:w.slot ());
              kill_quiet Sys.sigkill inc.pid
            | None -> ())
        end
      done;
      (* Tasks never decided: shutdown or abort upstream. *)
      List.iter
        (fun id ->
          if not (Hashtbl.mem outcomes id) then
            Hashtbl.replace outcomes id
              (if !interrupted then Campaign.Interrupted else Campaign.Not_run))
        task_ids);
  let summary =
    {
      outcomes =
        List.map
          (fun id ->
            ( id,
              Option.value ~default:Campaign.Not_run
                (Hashtbl.find_opt outcomes id) ))
          task_ids;
      resumed;
      interrupted = !interrupted || Pool.is_cancelled cancel;
      aborted = !aborted;
      cached = !cached;
      retries = !retries;
      quarantined = !quarantined;
      reassignments = !reassignments;
      fences = !fences;
      replay_fenced;
      worker_deaths = !worker_deaths;
      worker_restarts = !worker_restarts;
      chaos_kills = !chaos_kills;
      stalled_drops = !stalled_drops;
      remote_reconnects = !remote_reconnects;
      rejected = !rejected;
      wal_corrupt_records = recovery.Wal.corrupt_records;
      wall_s = Clock.now_s () -. t0;
      workers =
        List.map
          (fun w ->
            {
              slot = w.slot;
              restarts = w.restarts;
              chaos_kills = w.chaos_kills;
              tasks_done = w.tasks_done;
              fenced = w.fenced;
              demoted = w.demoted;
              remote = w.remote;
            })
          (all_slots ());
    }
  in
  let manifest =
    Json.Obj
      ([
        ("schema", Json.String "rumor-campaign/2");
        ("workers", Json.Int config.workers);
        ("resumed", Json.Bool summary.resumed);
        ("interrupted", Json.Bool summary.interrupted);
        ("aborted", Json.Bool summary.aborted);
        ("cached", Json.Int summary.cached);
        ("retries", Json.Int summary.retries);
        ("quarantined", Json.Int summary.quarantined);
        ("reassignments", Json.Int summary.reassignments);
        ("lease_fences", Json.Int summary.fences);
        ("replay_fenced", Json.Int summary.replay_fenced);
        ("worker_deaths", Json.Int summary.worker_deaths);
        ("worker_restarts", Json.Int summary.worker_restarts);
        ("chaos_kills", Json.Int summary.chaos_kills);
        ("stalled_drops", Json.Int summary.stalled_drops);
        ("remote_reconnects", Json.Int summary.remote_reconnects);
        ("rejected_hellos", Json.Int summary.rejected);
        ("wal_corrupt_records", Json.Int summary.wal_corrupt_records);
        ("wall_s", Json.Float summary.wall_s);
        ( "tasks",
          Json.Obj
            (List.map
               (fun (id, o) ->
                 ( id,
                   Json.String
                     (match o with
                     | Campaign.Done _ -> "done"
                     | Campaign.Cached -> "cached"
                     | Campaign.Quarantined _ -> "quarantined"
                     | Campaign.Interrupted -> "interrupted"
                     | Campaign.Not_run -> "not-run") ))
               summary.outcomes) );
        ( "worker_stats",
          Json.List
            (List.map
               (fun (w : worker_stats) ->
                 Json.Obj
                   [
                     ("slot", Json.Int w.slot);
                     ("restarts", Json.Int w.restarts);
                     ("chaos_kills", Json.Int w.chaos_kills);
                     ("tasks_done", Json.Int w.tasks_done);
                     ("fenced", Json.Int w.fenced);
                     ("demoted", Json.Bool w.demoted);
                     ("remote", Json.Bool w.remote);
                   ])
               summary.workers) );
      ]
      @ Provenance.manifest_fields ())
  in
  Wal.write_atomic (manifest_path config)
    (Json.to_string ~pretty:true manifest ^ "\n");
  summary

let exit_code summary =
  if summary.aborted || summary.quarantined > 0 then 1 else 0
