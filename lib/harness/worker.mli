(** Worker-process side of the multi-process campaign: connect to the
    coordinator (Unix-domain socket on the same host, or TCP from
    another machine), pull leased task batches, run them with stdout
    captured per task, report results, heartbeat.

    A worker is intentionally dumb: it holds no queue state, never
    touches the WAL, and can be SIGKILLed at any instant — everything
    it was doing is reconstructed by the coordinator from the lease
    table.  The one durable thing it produces is the captured output
    file of each task, written under a {e lease-and-epoch-stamped}
    name ([.<task>.l<lease>e<epoch>.partial] inside [tasks_dir]); only
    the coordinator renames an accepted file to its canonical
    [<task>.out], so a zombie worker's late file can never clobber the
    output of the reassigned run.  Remote (TCP) workers additionally
    inline the captured bytes in the result frame, since the
    coordinator cannot read their filesystem.

    {b Heartbeats} — a dedicated domain sends a beat every
    [heartbeat_s] whatever the main loop is doing, so a worker grinding
    through a long replicate still proves liveness; socket writes are
    mutex-serialized against result frames.

    {b Reconnect/resume (TCP only)} — on EPIPE/ECONNRESET/EOF or a
    mid-frame read timeout the worker finishes its in-flight batch,
    then reconnects with deterministic exponential backoff, re-hellos
    with its prior worker id, and re-sends the results the coordinator
    has not provably processed (a fresh grant is the proof).  The
    coordinator's lease/epoch replay decides whether a re-sent result
    is still trusted, so a duplicate can never corrupt an output.  A
    [Reject] at admission (bad token, bad protocol version) is
    terminal — exit code 3, no retry.  Legacy Unix-socket workers keep
    the PR-6 behaviour exactly: any error or EOF is a quiet exit 0.

    {b Determinism} — tasks run in-process through [run_task] exactly
    as the single-process campaign would run them ([Experiment.print]
    and friends), replicates on the ordinary {!Rumor_par.Pool} Domain
    pool; the split-seed contract makes the captured bytes identical
    whichever worker, attempt, connection or job count executed the
    task. *)

val partial_name : task:string -> lease:int -> epoch:int -> string
(** Basename of the stamped capture file — shared with the
    coordinator, which renames or deletes it. *)

type transport =
  | Unix_sock of string  (** coordinator's Unix-domain socket path *)
  | Tcp of { host : string; port : int; token : string option }
      (** remote coordinator; [token] must match [--token] on the
          campaign or admission is rejected *)

val backoff_s : seed:int64 -> attempt:int -> float
(** Delay before connect [attempt] (1-based):
    [min 3 (0.05 * 2^(attempt-1)) * (0.5 + u)] with [u] drawn from
    [Rng.derive seed attempt] — deterministic per worker, exponential,
    jittered so a fleet of workers does not reconnect in lockstep. *)

val connect :
  ?attempts:int -> seed:int64 -> transport -> Unix.file_descr option
(** Dial the coordinator, creating a {e fresh} socket per attempt (a
    failed [connect] leaves an fd in unspecified state; retrying on it
    is EINVAL on some platforms) and sleeping {!backoff_s} between
    attempts (default 10).  Only plausibly-transient errors
    (ENOENT/ECONNREFUSED on startup races, reset/unreachable/timeout
    on network blips) are retried.  TCP sockets get
    [TCP_NODELAY]/[SO_KEEPALIVE]; all sockets are close-on-exec. *)

val run :
  ?heartbeat_s:float ->
  ?read_timeout_s:float ->
  ?max_reconnects:int ->
  transport:transport ->
  id:int ->
  tasks_dir:string ->
  run_task:(string -> unit) ->
  unit ->
  int
(** Serve until the coordinator says [Stop] or (legacy transport)
    hangs up; returns the process exit code: 0 on an orderly stop, 3
    when the coordinator is unreachable, admission is rejected, or
    [max_reconnects] (default 100) TCP sessions in a row have failed.
    [id] is the worker id to announce; pass [-1] over TCP to let the
    coordinator assign one (the [Welcome] reply is binding either
    way).  [read_timeout_s] (default 30) bounds how long a TCP worker
    lets a {e partially received} frame sit before treating the
    connection as wedged and reconnecting — an idle connection with an
    empty buffer waits indefinitely.  [run_task] exceptions are
    caught, classified with {!Supervisor.default_classify} and
    reported in the result frame — they never kill the worker. *)
