(** Worker-process side of the multi-process campaign: connect to the
    coordinator's Unix-domain socket, pull leased task batches, run
    them with stdout captured per task, report results, heartbeat.

    A worker is intentionally dumb: it holds no queue state, never
    touches the WAL, and can be SIGKILLed at any instant — everything
    it was doing is reconstructed by the coordinator from the lease
    table.  The one durable thing it produces is the captured output
    file of each task, written under a {e lease-and-epoch-stamped}
    name ([.<task>.l<lease>e<epoch>.partial] inside [tasks_dir]); only
    the coordinator renames an accepted file to its canonical
    [<task>.out], so a zombie worker's late file can never clobber the
    output of the reassigned run.

    {b Heartbeats} — a dedicated domain sends a beat every
    [heartbeat_s] whatever the main loop is doing, so a worker grinding
    through a long replicate still proves liveness; socket writes are
    mutex-serialized against result frames.

    {b Determinism} — tasks run in-process through [run_task] exactly
    as the single-process campaign would run them ([Experiment.print]
    and friends), replicates on the ordinary {!Rumor_par.Pool} Domain
    pool; the split-seed contract makes the captured bytes identical
    whichever worker, attempt or job count executed the task. *)

val partial_name : task:string -> lease:int -> epoch:int -> string
(** Basename of the stamped capture file — shared with the
    coordinator, which renames or deletes it. *)

val run :
  ?heartbeat_s:float ->
  socket:string ->
  id:int ->
  tasks_dir:string ->
  run_task:(string -> unit) ->
  unit ->
  int
(** Serve until the coordinator says [Stop] or hangs up; returns the
    process exit code (0 on an orderly stop or coordinator EOF, 3 when
    the socket cannot be reached).  [run_task] exceptions are caught,
    classified with {!Supervisor.default_classify} and reported in the
    result frame — they never kill the worker. *)
