(** Deterministic in-process TCP chaos proxy.

    [start ~forward_host ~forward_port fault] listens on a local port
    and forwards every accepted connection to the target, injecting
    network faults on the way: added latency and jitter, a bandwidth
    cap, dropped / duplicated / corrupted chunks, mid-frame
    truncation, and abortive connection resets (SO_LINGER 0, so peers
    see ECONNRESET exactly as they would from a real mid-transfer
    failure).  Tests and the [netchaos-smoke] CI job put the
    coordinator↔worker TCP link behind it and assert the campaign
    still produces byte-identical outputs.

    {b Determinism} — every per-chunk fault decision is a pure
    function of [(seed, connection index, direction, chunk index)]
    via {!Rumor_rng.Rng.derive}, so a given seed yields the same
    fault {e schedule} on every run.  Chunk boundaries themselves
    depend on socket timing, so the exact bytes a decision lands on
    may shift between runs — the schedule is deterministic, the
    byte-level trace is not.  What the proxied protocol must
    guarantee (and the tests assert) is that {e any} schedule leaves
    the campaign's outputs byte-identical.

    The proxy runs in its own domain; [stop] wakes it via a self-pipe
    and joins it.  Faults apply per 16 KiB read chunk.  A dropped
    chunk silently vanishes (TCP offers the proxy no retransmission —
    this models a broken middlebox, and is the stress the frame CRC +
    reconnect machinery must absorb).  Resets and truncations share
    the [max_resets] budget so a smoke test can ask for "exactly one
    forced failure". *)

type fault = {
  latency_s : float;  (** fixed one-way delay added to every chunk *)
  jitter_s : float;  (** uniform extra delay in [0, jitter_s) *)
  bandwidth_bps : int option;  (** per-direction throughput cap *)
  drop_p : float;  (** P(chunk silently discarded) *)
  dup_p : float;  (** P(chunk delivered twice) *)
  corrupt_p : float;  (** P(one byte of the chunk bit-flipped) *)
  truncate_p : float;
      (** P(half the chunk delivered, then the link reset) *)
  reset_p : float;  (** P(link reset before the chunk) *)
  reset_after_bytes : int option;
      (** reset a connection once it has carried this many bytes *)
  max_resets : int option;
      (** global budget for resets + truncations; [None] = unlimited *)
}

val passthrough : fault
(** All-zero fault: a faithful (if slightly slower) TCP relay. *)

type stats = {
  conns : int;
  chunks : int;
  bytes : int;
  dropped_chunks : int;
  dup_chunks : int;
  corrupted_chunks : int;
  truncated_chunks : int;
  resets : int;
}

type t

val start :
  ?seed:int ->
  ?listen_host:string ->
  ?port:int ->
  forward_host:string ->
  forward_port:int ->
  fault ->
  t
(** Bind [listen_host:port] (defaults [127.0.0.1], kernel-assigned)
    and start proxying to [forward_host:forward_port] in a fresh
    domain.  Each accepted connection dials the target on demand; a
    target that refuses closes the client end immediately.
    @raise Unix.Unix_error when the listen socket cannot be bound.
    @raise Failure when [listen_host] does not resolve. *)

val port : t -> int
(** The bound listening port (useful with [port = 0]). *)

val stats : t -> stats
(** Snapshot of the fault counters (thread-safe). *)

val stop : t -> unit
(** Reset every live link, close the listener, join the proxy domain.
    Idempotent. *)
