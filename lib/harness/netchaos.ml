module Clock = Rumor_obs.Clock
module Rng = Rumor_rng.Rng
module Net = Rumor_util.Net

type fault = {
  latency_s : float;
  jitter_s : float;
  bandwidth_bps : int option;
  drop_p : float;
  dup_p : float;
  corrupt_p : float;
  truncate_p : float;
  reset_p : float;
  reset_after_bytes : int option;
  max_resets : int option;
}

let passthrough =
  {
    latency_s = 0.;
    jitter_s = 0.;
    bandwidth_bps = None;
    drop_p = 0.;
    dup_p = 0.;
    corrupt_p = 0.;
    truncate_p = 0.;
    reset_p = 0.;
    reset_after_bytes = None;
    max_resets = None;
  }

type stats = {
  conns : int;
  chunks : int;
  bytes : int;
  dropped_chunks : int;
  dup_chunks : int;
  corrupted_chunks : int;
  truncated_chunks : int;
  resets : int;
}

type counters = {
  mutable c_conns : int;
  mutable c_chunks : int;
  mutable c_bytes : int;
  mutable c_dropped : int;
  mutable c_dup : int;
  mutable c_corrupted : int;
  mutable c_truncated : int;
  mutable c_resets : int;
}

(* One direction of a proxied connection.  [q] holds chunks scheduled
   for delivery ([due] timestamp each); [next_avail] enforces FIFO
   order and the bandwidth cap. *)
type dir = {
  src : Unix.file_descr;
  dst : Unix.file_descr;
  dir_bit : int;  (* 0 = client->server, 1 = server->client *)
  q : (float * Bytes.t) Queue.t;
  mutable next_avail : float;
  mutable chunk_idx : int;
  mutable src_open : bool;  (* no EOF from src yet *)
  mutable eof_sent : bool;  (* SHUTDOWN_SEND already done on dst *)
}

type link = {
  id : int;
  client : Unix.file_descr;
  server : Unix.file_descr;
  fwd : dir;  (* client -> server *)
  bwd : dir;  (* server -> client *)
  mutable forwarded : int;  (* bytes accepted on the link, both dirs *)
  mutable dead : bool;
}

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  forward_host : string;
  forward_port : int;
  stop_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  counters : counters;
  lock : Mutex.t;
  mutable domain : unit Domain.t option;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* An abortive close: SO_LINGER 0 turns the close into an RST, which
   is what a real mid-transfer network failure looks like to both
   peers (ECONNRESET, not a clean EOF). *)
let reset_close fd =
  (try Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0)
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  close_quiet fd

let kill_link ~rst link =
  if not link.dead then begin
    link.dead <- true;
    if rst then begin
      reset_close link.client;
      reset_close link.server
    end
    else begin
      close_quiet link.client;
      close_quiet link.server
    end
  end

let write_all fd buf =
  let len = Bytes.length buf in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd buf !written (len - !written)
  done

let run_proxy t ~seed fault =
  let links : link list ref = ref [] in
  let next_id = ref 0 in
  let locked f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f
  in
  let resets_left =
    ref (match fault.max_resets with Some n -> n | None -> max_int)
  in
  let chunk_buf = Bytes.create 16384 in
  (* Every decision about chunk [idx] of direction [d] of link [l] is
     a pure function of (seed, l, d, idx): the fault schedule is
     deterministic per seed even though chunk boundaries (and so the
     exact bytes affected) depend on socket timing. *)
  let decisions link (d : dir) =
    let base =
      Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int link.id) 1000003L)
    in
    let rng = Rng.derive base ((2 * d.chunk_idx) + d.dir_bit) in
    d.chunk_idx <- d.chunk_idx + 1;
    rng
  in
  let schedule d ~now ~jit (payload : Bytes.t) =
    let due = Float.max (now +. fault.latency_s +. jit) d.next_avail in
    d.next_avail <-
      (due
      +.
      match fault.bandwidth_bps with
      | Some bps when bps > 0 ->
        float_of_int (Bytes.length payload) /. float_of_int bps
      | _ -> 0.);
    Queue.add (due, payload) d.q
  in
  let handle_chunk link d n =
    let now = Clock.now_s () in
    let rng = decisions link d in
    let u_drop = Rng.float rng in
    let u_dup = Rng.float rng in
    let u_corrupt = Rng.float rng in
    let u_trunc = Rng.float rng in
    let u_reset = Rng.float rng in
    let u_jit = Rng.float rng in
    let payload = Bytes.sub chunk_buf 0 n in
    locked (fun () ->
        t.counters.c_chunks <- t.counters.c_chunks + 1;
        t.counters.c_bytes <- t.counters.c_bytes + n);
    link.forwarded <- link.forwarded + n;
    let jit = fault.jitter_s *. u_jit in
    let want_reset =
      u_reset < fault.reset_p
      || (match fault.reset_after_bytes with
         | Some cap -> link.forwarded >= cap
         | None -> false)
    in
    let want_trunc = u_trunc < fault.truncate_p in
    if (want_reset || want_trunc) && !resets_left > 0 then begin
      decr resets_left;
      (if want_trunc && not want_reset then begin
         (* Deliver a prefix, then cut: the receiver sees a frame
            truncated mid-stream, exactly the failure CRC trailers
            and stall detection exist for. *)
         locked (fun () ->
             t.counters.c_truncated <- t.counters.c_truncated + 1);
         try write_all d.dst (Bytes.sub payload 0 (Int.max 1 (n / 2)))
         with Unix.Unix_error _ -> ()
       end
       else
         locked (fun () -> t.counters.c_resets <- t.counters.c_resets + 1));
      kill_link ~rst:true link
    end
    else if u_drop < fault.drop_p then
      locked (fun () -> t.counters.c_dropped <- t.counters.c_dropped + 1)
    else begin
      (if u_corrupt < fault.corrupt_p && n > 0 then begin
         let pos = Rng.int rng n in
         Bytes.set payload pos
           (Char.chr (Char.code (Bytes.get payload pos) lxor 0x20));
         locked (fun () ->
             t.counters.c_corrupted <- t.counters.c_corrupted + 1)
       end);
      schedule d ~now ~jit payload;
      if u_dup < fault.dup_p then begin
        locked (fun () -> t.counters.c_dup <- t.counters.c_dup + 1);
        schedule d ~now ~jit:(jit +. fault.jitter_s) (Bytes.copy payload)
      end
    end
  in
  let flush_dir link d ~now =
    (try
       let continue = ref true in
       while (not (Queue.is_empty d.q)) && !continue do
         let due, payload = Queue.peek d.q in
         if due <= now then begin
           ignore (Queue.pop d.q);
           write_all d.dst payload
         end
         else continue := false
       done
     with Unix.Unix_error _ -> kill_link ~rst:false link);
    if
      (not link.dead) && (not d.src_open) && Queue.is_empty d.q
      && not d.eof_sent
    then begin
      d.eof_sent <- true;
      try Unix.shutdown d.dst Unix.SHUTDOWN_SEND
      with Unix.Unix_error _ -> ()
    end
  in
  let accept_client () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception Unix.Unix_error _ -> ()
    | client, _ -> (
      Net.tune_stream_socket client;
      match
        let server =
          Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0
        in
        (try
           Unix.connect server
             (Unix.ADDR_INET (Net.resolve_exn t.forward_host, t.forward_port));
           Net.tune_stream_socket server
         with e ->
           close_quiet server;
           raise e);
        server
      with
      | exception _ -> close_quiet client
      | server ->
        let id = !next_id in
        incr next_id;
        locked (fun () -> t.counters.c_conns <- t.counters.c_conns + 1);
        let mk src dst dir_bit =
          {
            src;
            dst;
            dir_bit;
            q = Queue.create ();
            next_avail = 0.;
            chunk_idx = 0;
            src_open = true;
            eof_sent = false;
          }
        in
        links :=
          {
            id;
            client;
            server;
            fwd = mk client server 0;
            bwd = mk server client 1;
            forwarded = 0;
            dead = false;
          }
          :: !links)
  in
  let loop () =
    while not (Atomic.get t.stop_flag) do
      let now = Clock.now_s () in
      let live = List.filter (fun l -> not l.dead) !links in
      links := live;
      (* Deliver everything due, then figure out how long select may
         sleep: until the next due chunk, capped for liveness. *)
      List.iter
        (fun l ->
          flush_dir l l.fwd ~now;
          if not l.dead then flush_dir l l.bwd ~now)
        live;
      let next_due =
        List.fold_left
          (fun acc l ->
            let dir_due d acc =
              match Queue.peek_opt d.q with
              | Some (due, _) -> Float.min acc due
              | None -> acc
            in
            if l.dead then acc else dir_due l.fwd (dir_due l.bwd acc))
          infinity live
      in
      let timeout =
        Float.max 0.002 (Float.min 0.2 (next_due -. Clock.now_s ()))
      in
      let watched =
        t.listen_fd :: t.wake_r
        :: List.concat_map
             (fun l ->
               (if l.fwd.src_open then [ l.fwd.src ] else [])
               @ if l.bwd.src_open then [ l.bwd.src ] else [])
             (List.filter (fun l -> not l.dead) !links)
      in
      let readable =
        match Unix.select watched [] [] timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> []
      in
      List.iter
        (fun fd ->
          if fd = t.listen_fd then accept_client ()
          else if fd = t.wake_r then begin
            let b = Bytes.create 64 in
            try ignore (Unix.read t.wake_r b 0 64) with Unix.Unix_error _ -> ()
          end
          else
            match
              List.find_opt
                (fun l ->
                  (not l.dead)
                  && ((l.fwd.src_open && l.fwd.src = fd)
                     || (l.bwd.src_open && l.bwd.src = fd)))
                !links
            with
            | None -> ()
            | Some l -> (
              let d = if l.fwd.src_open && l.fwd.src = fd then l.fwd else l.bwd in
              match Unix.read d.src chunk_buf 0 (Bytes.length chunk_buf) with
              | 0 -> d.src_open <- false
              | n -> handle_chunk l d n
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error (_, _, _) ->
                kill_link ~rst:false l))
        readable;
      (* A link whose both sides saw EOF and drained is finished. *)
      List.iter
        (fun l ->
          if (not l.dead) && l.fwd.eof_sent && l.bwd.eof_sent then
            kill_link ~rst:false l)
        !links
    done;
    List.iter (fun l -> kill_link ~rst:false l) !links;
    close_quiet t.listen_fd;
    close_quiet t.wake_r;
    close_quiet t.wake_w
  in
  loop ()

let start ?(seed = 2020) ?(listen_host = "127.0.0.1") ?(port = 0)
    ~forward_host ~forward_port fault =
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Net.resolve_exn listen_host, port));
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      listen_fd;
      bound_port;
      forward_host;
      forward_port;
      stop_flag = Atomic.make false;
      wake_r;
      wake_w;
      counters =
        {
          c_conns = 0;
          c_chunks = 0;
          c_bytes = 0;
          c_dropped = 0;
          c_dup = 0;
          c_corrupted = 0;
          c_truncated = 0;
          c_resets = 0;
        };
      lock = Mutex.create ();
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> run_proxy t ~seed fault));
  t

let port t = t.bound_port

let stats t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      {
        conns = t.counters.c_conns;
        chunks = t.counters.c_chunks;
        bytes = t.counters.c_bytes;
        dropped_chunks = t.counters.c_dropped;
        dup_chunks = t.counters.c_dup;
        corrupted_chunks = t.counters.c_corrupted;
        truncated_chunks = t.counters.c_truncated;
        resets = t.counters.c_resets;
      })

let stop t =
  if not (Atomic.get t.stop_flag) then begin
    Atomic.set t.stop_flag true;
    (try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1)
     with Unix.Unix_error _ -> ());
    match t.domain with
    | Some d ->
      Domain.join d;
      t.domain <- None
    | None -> ()
  end
