module Json = Rumor_obs.Json

let argv () = Array.to_list Sys.argv

let hostname =
  lazy (match Unix.gethostname () with
    | "" -> None
    | h -> Some h
    | exception (Unix.Unix_error _ | Failure _) -> None)

(* Best-effort revision: explicit environment first (CI exports it and
   release binaries have no .git), then one `git rev-parse` per
   process.  Never raises, never blocks on anything but a local git. *)
let git_rev =
  lazy
    (let from_env name =
       match Sys.getenv_opt name with Some "" | None -> None | some -> some
     in
     match (from_env "RUMOR_GIT_REV", from_env "GITHUB_SHA") with
     | Some r, _ | None, Some r -> Some r
     | None, None -> (
       try
         let ic =
           Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
         in
         let line = try String.trim (input_line ic) with End_of_file -> "" in
         match Unix.close_process_in ic with
         | Unix.WEXITED 0 when line <> "" -> Some line
         | _ -> None
       with Unix.Unix_error _ | Sys_error _ -> None))

let hostname () = Lazy.force hostname

let git_rev () = Lazy.force git_rev

let manifest_fields () =
  (("argv", Json.List (List.map (fun a -> Json.String a) (argv ())))
   :: (match hostname () with
      | Some h -> [ ("hostname", Json.String h) ]
      | None -> []))
  @ (match git_rev () with
    | Some r -> [ ("git_rev", Json.String r) ]
    | None -> [])
