(** Supervised Monte-Carlo sweep: the replicate-level layer of the
    campaign harness.

    Runs the same split-seed replicate plan as
    {!Rumor_sim.Run.async_spread_sweep} (replicate [r] on
    [Rng.derive base r], so outcomes are bit-identical for any job
    count and any interrupt/resume split), and adds the supervision
    the hardened sweep does not have:

    - {b wall-clock deadlines} — each attempt gets a fresh absolute
      expiry fed to the engines' cooperative [stop] brake; an expired
      replicate is [Censored] and tallied in
      [harness.deadline_censored].  Deadline censoring is the one
      machine-dependent outcome source, so a run that trips no
      deadline stays inside the bit-identity contract.
    - {b retry with backoff} — a raising replicate is classified
      {!Transient} (I/O flakes, [Out_of_memory]) or {!Poison}
      (everything else: a deterministic bug would fail identically
      forever).  Transients are retried up to [retries] times with
      exponential backoff and deterministic seed-keyed jitter; each
      retry re-derives the {e same} child stream, so a
      succeed-after-retry outcome is bit-identical to never having
      failed.  Exhausted or poisoned replicates are quarantined:
      recorded as [Failed] and tallied in [harness.quarantined].
    - {b durable journal} — with [?wal], every decided outcome is
      appended (CRC-framed, fsync'd) {e before} the sweep moves on,
      keyed by the replicate's split-RNG fingerprint; on resume,
      journaled outcomes are reused and only missing indices run.
    - {b failure budget} — when more than
      [fail_budget * reps] replicates have been quarantined the sweep
      cancels its pool token and drains (in-flight replicates finish,
      undecided ones stay [None]).
    - {b graceful shutdown} — an external {!Rumor_par.Pool.token}
      (or the process-wide {!Rumor_par.Pool.global} one, always
      polled) drains the pool the same way; journaled outcomes make
      the subsequent resume bit-identical. *)

open Rumor_rng
open Rumor_dynamic
open Rumor_faults
module Run = Rumor_sim.Run

type classification = Transient | Poison

val default_classify : exn -> classification
(** [Sys_error], [Unix.Unix_error] and [Out_of_memory] are transient;
    everything else is poison. *)

type config = {
  deadline_s : float option;
      (** per-replicate wall-clock bound; [None] falls back to
          {!Rumor_sim.Run.default_deadline} *)
  retries : int;  (** extra attempts after the first, transients only *)
  backoff_s : float;
      (** base backoff; attempt [k] sleeps
          [backoff_s * 2^(k-1) * (0.5 + jitter)] with jitter drawn
          from a stream keyed by (replicate seed, attempt) — so
          parallel retry storms decorrelate deterministically *)
  fail_budget : float;
      (** abort when quarantined replicates exceed this fraction of
          [reps]; [1.0] disables the gate *)
  classify : exn -> classification;
}

val default_config : config
(** No deadline, [retries = 2], [backoff_s = 0.05],
    [fail_budget = 1.0], {!default_classify}. *)

type report = {
  outcomes : Run.outcome option array;
      (** per replicate; [None] = never decided (drained by
          cancellation or the failure budget) *)
  seeds : int64 array;  (** split-RNG fingerprints, the journal keys *)
  attempts : int array;  (** attempts consumed per decided replicate *)
  cached : int;  (** outcomes prefilled from the journal *)
  retried : int;  (** transient retries performed this run *)
  quarantined : int;  (** replicates recorded as [Failed] this run *)
  deadline_censored : int;  (** deadline expiries this run *)
  aborted : bool;  (** the failure budget tripped *)
  cancelled : bool;
      (** the pool drained early (abort, external token, or the global
          shutdown token) *)
}

val sweep :
  ?jobs:int ->
  ?reps:int ->
  ?horizon:float ->
  ?engine:Run.engine ->
  ?protocol:Rumor_sim.Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  ?max_events:int ->
  ?wal:Wal.t ->
  ?cancel:Rumor_par.Pool.token ->
  ?config:config ->
  Rng.t ->
  Dynet.t ->
  report
(** Engine parameters as in {!Rumor_sim.Run.async_spread_sweep}
    (defaults: 30 reps, [Cut] engine).  The parent RNG is consumed
    exactly like the unsupervised runners (one {!Rng.bits64} draw), so
    a supervised sweep is outcome-identical to
    [async_spread_sweep] when nothing fails, times out, or is
    cancelled.
    @raise Invalid_argument if [reps < 1] or [jobs < 1]. *)

val counts : report -> int * int * int
(** [(finished, censored, failed)] over the decided replicates. *)

val finished_times : report -> float array
(** Spread times of the [Finished] replicates, in replicate order. *)

val to_sweep : report -> Run.sweep
(** Collapse for the existing statistics helpers
    ({!Rumor_sim.Run.usable_times}, {!Rumor_sim.Estimate});
    undecided replicates become [Failed "replicate never ran"]. *)
