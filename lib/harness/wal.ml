module Json = Rumor_obs.Json
module Obs = Rumor_obs.Metrics
module Crc32 = Rumor_util.Crc32

let magic = "rumor-wal/1"

(* Telemetry (lib/obs): recovery accounting for the campaign journal.
   [wal_corrupt_records] is the load-bearing one — the acceptance
   tests assert it is nonzero whenever a record was quarantined. *)
let m_corrupt = Obs.counter "harness.wal_corrupt_records"
let m_appends = Obs.counter "harness.wal_appends"
let m_recovered = Obs.counter "harness.wal_recovered_records"

exception Bad_magic of { path : string; found : string }

type recovery = {
  records : Json.t list;
  corrupt_records : int;
  truncated_tail : bool;
  existed : bool;
}

type t = {
  path : string;
  fsync : bool;
  lock : Mutex.t;
  mutable oc : out_channel option;
  recovery : recovery;
}

let quarantine_path path = path ^ ".quarantine"
let path t = t.path
let recovery t = t.recovery

let sync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc content;
      sync_channel oc);
  Sys.rename tmp path;
  (* The rename lives in the directory inode: without this, power loss
     can roll the publication back even though the contents synced. *)
  Rumor_util.Fsutil.fsync_parent_dir path

(* --- record framing --- *)

let render_record rec_ =
  let payload = Json.to_string rec_ in
  "{\"crc\":\"" ^ Crc32.to_hex (Crc32.digest payload) ^ "\",\"rec\":" ^ payload
  ^ "}"

(* CRC over the canonical compact rendering of the payload: verified by
   re-rendering the parsed payload, exact because the codec's
   renderings are canonical. *)
let parse_record line =
  match Json.parse line with
  | Error _ -> None
  | Ok v -> (
    match (Json.member "crc" v, Json.member "rec" v) with
    | Some crc_j, Some rec_ -> (
      match Option.bind (Json.to_string_opt crc_j) Crc32.of_hex with
      | Some crc when Crc32.digest (Json.to_string rec_) = crc -> Some rec_
      | _ -> None)
    | _ -> None)

(* --- scanning --- *)

type scan = {
  valid : (string * Json.t) list;  (* (line, payload), append order *)
  corrupt : string list;  (* quarantined lines, append order *)
  torn : bool;
  terminated : bool;  (* final line carried its newline *)
}

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

(* [content] is the whole file.  The header line must be [magic]; the
   body is one record per line.  A final line without its newline is a
   torn append — kept if its CRC still verifies (only the newline was
   lost), quarantined otherwise. *)
let scan_content ~path content =
  let header, body =
    match String.index_opt content '\n' with
    | None -> (content, "")
    | Some i ->
      ( String.sub content 0 i,
        String.sub content (i + 1) (String.length content - i - 1) )
  in
  if header <> magic then raise (Bad_magic { path; found = header });
  let terminated =
    String.length body = 0 || body.[String.length body - 1] = '\n'
  in
  let lines = String.split_on_char '\n' body in
  (* split_on_char leaves a trailing "" when the body is newline-
     terminated; otherwise the last element is the torn fragment. *)
  let n = List.length lines in
  let valid = ref [] and corrupt = ref [] and torn = ref false in
  List.iteri
    (fun i line ->
      let is_last = i = n - 1 in
      if line = "" then ()
      else
        match parse_record line with
        | Some rec_ -> valid := (line, rec_) :: !valid
        | None ->
          corrupt := line :: !corrupt;
          if is_last && not terminated then torn := true)
    lines;
  {
    valid = List.rev !valid;
    corrupt = List.rev !corrupt;
    torn = !torn;
    terminated;
  }

let recovery_of_scan ~existed scan =
  {
    records = List.map snd scan.valid;
    corrupt_records = List.length scan.corrupt;
    truncated_tail = scan.torn;
    existed;
  }

let read path =
  if not (Sys.file_exists path) then
    { records = []; corrupt_records = 0; truncated_tail = false;
      existed = false }
  else recovery_of_scan ~existed:true (scan_content ~path (read_all path))

(* --- opening: create, or recover and compact --- *)

let quarantine ~fsync path lines =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644
      (quarantine_path path)
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines;
      if fsync then sync_channel oc)

let open_ ?(fsync = true) path =
  let existed = Sys.file_exists path in
  let recovery =
    if not existed then begin
      write_atomic path (magic ^ "\n");
      { records = []; corrupt_records = 0; truncated_tail = false;
        existed = false }
    end
    else begin
      let scan = scan_content ~path (read_all path) in
      if scan.corrupt <> [] || not scan.terminated then begin
        (* Never silently drop: untrusted lines move to the quarantine
           file, then the log is compacted down to what verified so
           the next crash starts from a clean file.  Compaction also
           re-terminates a torn-but-verifying tail (its newline was
           lost) so later appends start on a fresh line. *)
        if scan.corrupt <> [] then begin
          quarantine ~fsync path scan.corrupt;
          Obs.add m_corrupt (List.length scan.corrupt);
          Printf.eprintf
            "rumor: warning: WAL %s: quarantined %d corrupt record%s%s to %s\n%!"
            path
            (List.length scan.corrupt)
            (if List.length scan.corrupt = 1 then "" else "s")
            (if scan.torn then " (torn tail)" else "")
            (quarantine_path path)
        end;
        let buf = Buffer.create 4096 in
        Buffer.add_string buf magic;
        Buffer.add_char buf '\n';
        List.iter
          (fun (line, _) ->
            Buffer.add_string buf line;
            Buffer.add_char buf '\n')
          scan.valid;
        write_atomic path (Buffer.contents buf)
      end;
      Obs.add m_recovered (List.length scan.valid);
      recovery_of_scan ~existed:true scan
    end
  in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  { path; fsync; lock = Mutex.create (); oc = Some oc; recovery }

let append t rec_ =
  let line = render_record rec_ ^ "\n" in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.oc with
      | None -> invalid_arg "Wal.append: log is closed"
      | Some oc ->
        output_string oc line;
        flush oc;
        if t.fsync then Unix.fsync (Unix.descr_of_out_channel oc));
  Obs.incr m_appends

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        (try sync_channel oc with
        | Sys_error _ | Unix.Unix_error (_, _, _) -> ());
        close_out_noerr oc)
