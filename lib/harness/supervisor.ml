open Rumor_rng
open Rumor_dynamic
open Rumor_faults
module Run = Rumor_sim.Run
module Async_cut = Rumor_sim.Async_cut
module Async_tick = Rumor_sim.Async_tick
module Async_result = Rumor_sim.Async_result
module Pool = Rumor_par.Pool
module Obs = Rumor_obs.Metrics
module Clock = Rumor_obs.Clock
module Json = Rumor_obs.Json

(* Telemetry (lib/obs).  [harness.deadline_censored] is shared with
   lib/sim/Run — registration is idempotent by name, so both layers
   feed the same cell whichever runner censored the replicate. *)
let m_retries = Obs.counter "harness.retries"
let m_quarantined = Obs.counter "harness.quarantined"
let m_deadline_censored = Obs.counter "harness.deadline_censored"
let m_wal_hits = Obs.counter "harness.wal_hits"
let h_spread_time = Obs.histogram "run.spread_time"

type classification = Transient | Poison

(* Transient = the environment may behave differently next time;
   poison = a deterministic replicate would fail identically forever
   (retrying it burns the budget and hides the bug). *)
let default_classify = function
  | Sys_error _ | Unix.Unix_error (_, _, _) | Out_of_memory -> Transient
  | _ -> Poison

type config = {
  deadline_s : float option;
  retries : int;
  backoff_s : float;
  fail_budget : float;
  classify : exn -> classification;
}

let default_config =
  {
    deadline_s = None;
    retries = 2;
    backoff_s = 0.05;
    fail_budget = 1.0;
    classify = default_classify;
  }

type report = {
  outcomes : Run.outcome option array;
  seeds : int64 array;
  attempts : int array;
  cached : int;
  retried : int;
  quarantined : int;
  deadline_censored : int;
  aborted : bool;
  cancelled : bool;
}

(* --- journal records ---

   {"k":"rep","seed":"<hex16>","att":N,"o":"finished","t":"<%h>"}

   Seeds are the split-RNG fingerprints (hex), times are hex floats —
   both round-trip exactly, so a resumed outcome is the decided one
   bit for bit. *)

let rep_to_json seed o att =
  let tail =
    match (o : Run.outcome) with
    | Run.Finished t ->
      [ ("o", Json.String "finished");
        ("t", Json.String (Printf.sprintf "%h" t)) ]
    | Run.Censored t ->
      [ ("o", Json.String "censored");
        ("t", Json.String (Printf.sprintf "%h" t)) ]
    | Run.Failed msg -> [ ("o", Json.String "failed"); ("err", Json.String msg) ]
  in
  Json.Obj
    ([ ("k", Json.String "rep");
       ("seed", Json.String (Printf.sprintf "%016Lx" seed));
       ("att", Json.Int att) ]
    @ tail)

let rep_of_json j =
  let str field = Option.bind (Json.member field j) Json.to_string_opt in
  let time field = Option.bind (str field) float_of_string_opt in
  match str "k" with
  | Some "rep" -> (
    match
      Option.bind (str "seed") (fun s -> Int64.of_string_opt ("0x" ^ s))
    with
    | None -> None
    | Some seed -> (
      match (str "o", time "t", str "err") with
      | Some "finished", Some t, _ -> Some (seed, Run.Finished t)
      | Some "censored", Some t, _ -> Some (seed, Run.Censored t)
      | Some "failed", _, Some msg -> Some (seed, Run.Failed msg)
      | _ -> None))
  | _ -> None

(* --- the sweep --- *)

let sweep ?jobs ?(reps = 30) ?horizon ?(engine = Run.Cut) ?protocol ?rate
    ?faults ?source ?max_events ?wal ?cancel ?(config = default_config) rng
    (net : Dynet.t) =
  if reps < 1 then invalid_arg "Supervisor.sweep: need at least one repetition";
  let source = Run.source_of net source in
  let deadline_s =
    match config.deadline_s with
    | Some _ as d -> d
    | None -> Run.default_deadline ()
  in
  (* Same parent consumption and replicate keying as lib/sim/Run: one
     bits64 draw, replicate r on [Rng.derive base r]. *)
  let base = Rng.bits64 rng in
  let seeds =
    Array.init reps (fun r -> Checkpoint.fingerprint (Rng.derive base r))
  in
  let outcomes : Run.outcome option array = Array.make reps None in
  let attempts = Array.make reps 0 in
  (* Resume: the journal keys outcomes by fingerprint — a pure
     function of (sweep seed, index) — so whatever scattered subset an
     interrupted sweep decided lines up here, whatever [jobs] or
     [reps] it used. *)
  let cached = ref 0 in
  (match wal with
  | None -> ()
  | Some w ->
    let journaled = Hashtbl.create 64 in
    List.iter
      (fun j ->
        match rep_of_json j with
        | Some (seed, o) -> Hashtbl.replace journaled seed o
        | None -> ())
      (Wal.recovery w).Wal.records;
    Array.iteri
      (fun i seed ->
        match Hashtbl.find_opt journaled seed with
        | Some o ->
          outcomes.(i) <- Some o;
          incr cached;
          Obs.incr m_wal_hits
        | None -> ())
      seeds);
  let cancel = match cancel with Some t -> t | None -> Pool.token () in
  let retried = Atomic.make 0 in
  let quarantined = Atomic.make 0 in
  let deadline_censored = Atomic.make 0 in
  let failed = Atomic.make 0 in
  let aborted = Atomic.make false in
  (* Budget gate: quarantining is rare, so a plain atomic tally and a
     compare on each failure is enough; the first tripper cancels the
     token and the pool drains. *)
  let note_failure () =
    if
      float_of_int (Atomic.fetch_and_add failed 1 + 1)
      > config.fail_budget *. float_of_int reps
    then
      if not (Atomic.exchange aborted true) then Pool.cancel cancel
  in
  (* Deterministic seed-keyed jitter: the stream is a pure function of
     (replicate seed, attempt), so concurrent retry storms spread out
     the same way on every machine. *)
  let backoff r k =
    if config.backoff_s > 0. then begin
      let jitter = Rng.float (Rng.derive seeds.(r) k) in
      let delay =
        Float.min 30. (config.backoff_s *. (2. ** float_of_int (k - 1)))
        *. (0.5 +. jitter)
      in
      Unix.sleepf delay
    end
  in
  let one ~domain:_ r =
    if Option.is_none outcomes.(r) then begin
      let rec attempt k =
        (* Every attempt re-derives the same child stream: a replicate
           that succeeds on retry is bit-identical to one that never
           failed. *)
        let child = Rng.derive base r in
        let stop =
          match deadline_s with
          | None -> None
          | Some s ->
            let expiry = Clock.now_s () +. s in
            Some (fun () -> Clock.now_s () >= expiry)
        in
        match
          match engine with
          | Run.Cut ->
            Async_cut.run ?protocol ?rate ?faults ?horizon ?max_events ?stop
              child net ~source
          | Run.Tick ->
            Async_tick.run ?protocol ?rate ?faults ?horizon ?max_events ?stop
              child net ~source
        with
        | result ->
          if result.Async_result.complete then
            (Run.Finished result.Async_result.time, k)
          else begin
            (match stop with
            | Some expired when expired () ->
              Atomic.incr deadline_censored;
              Obs.incr m_deadline_censored
            | _ -> ());
            (Run.Censored result.Async_result.time, k)
          end
        | exception e -> (
          match config.classify e with
          | Transient when k <= config.retries ->
            Atomic.incr retried;
            Obs.incr m_retries;
            backoff r k;
            attempt (k + 1)
          | _ ->
            Atomic.incr quarantined;
            Obs.incr m_quarantined;
            (Run.Failed (Printexc.to_string e), k))
      in
      let o, att = attempt 1 in
      outcomes.(r) <- Some o;
      attempts.(r) <- att;
      (match o with
      | Run.Finished t -> Obs.observe h_spread_time t
      | Run.Censored _ -> ()
      | Run.Failed _ -> note_failure ());
      (* Journal the decision before moving on: a crash after this
         line loses nothing, a crash before it re-runs the replicate
         bit-identically. *)
      match wal with
      | None -> ()
      | Some w -> Wal.append w (rep_to_json seeds.(r) o att)
    end
  in
  let stats = Pool.run ?jobs ~cancel reps one in
  {
    outcomes;
    seeds;
    attempts;
    cached = !cached;
    retried = Atomic.get retried;
    quarantined = Atomic.get quarantined;
    deadline_censored = Atomic.get deadline_censored;
    aborted = Atomic.get aborted;
    cancelled = stats.Pool.cancelled;
  }

let counts report =
  Array.fold_left
    (fun (f, c, x) -> function
      | Some (Run.Finished _) -> (f + 1, c, x)
      | Some (Run.Censored _) -> (f, c + 1, x)
      | Some (Run.Failed _) -> (f, c, x + 1)
      | None -> (f, c, x))
    (0, 0, 0) report.outcomes

let finished_times report =
  Array.of_seq
    (Seq.filter_map
       (function Some (Run.Finished t) -> Some t | _ -> None)
       (Array.to_seq report.outcomes))

let to_sweep report =
  {
    Run.outcomes =
      Array.map
        (function Some o -> o | None -> Run.Failed "replicate never ran")
        report.outcomes;
    seeds = report.seeds;
  }
