type lease = {
  id : int;
  epoch : int;
  worker : int;
  tasks : string list;
}

type entry = {
  lease : lease;
  mutable pending : string list;  (* tasks not yet completed *)
}

type t = {
  mutable next_id : int;
  mutable fence : int;
  table : (int, entry) Hashtbl.t;
}

let create () = { next_id = 1; fence = 0; table = Hashtbl.create 16 }

let epoch t = t.fence

let grant t ~worker tasks =
  t.fence <- t.fence + 1;
  let lease = { id = t.next_id; epoch = t.fence; worker; tasks } in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.table lease.id { lease; pending = tasks };
  lease

let complete t ~lease_id ~epoch ~task =
  match Hashtbl.find_opt t.table lease_id with
  | None -> `Fenced
  | Some entry ->
    if entry.lease.epoch <> epoch then `Fenced
    else if not (List.mem task entry.pending) then `Unknown_task
    else begin
      entry.pending <- List.filter (fun x -> x <> task) entry.pending;
      if entry.pending = [] then Hashtbl.remove t.table lease_id;
      `Ok
    end

let reclaim t ~lease_id =
  match Hashtbl.find_opt t.table lease_id with
  | None -> []
  | Some entry ->
    Hashtbl.remove t.table lease_id;
    (* Advance the fence even though the lease entry is gone: the
       epoch's monotonicity is the documented invariant, and any
       record stamped below it is provably pre-reclaim. *)
    t.fence <- t.fence + 1;
    entry.pending

let active t ~lease_id =
  Option.map (fun e -> e.lease) (Hashtbl.find_opt t.table lease_id)

let outstanding t = Hashtbl.length t.table

module Replay = struct
  type state = {
    granted : (int, int) Hashtbl.t;  (* lease id -> grant epoch *)
    reclaimed : (int, unit) Hashtbl.t;
  }

  let create () =
    { granted = Hashtbl.create 16; reclaimed = Hashtbl.create 16 }

  let note_grant s ~lease_id ~epoch = Hashtbl.replace s.granted lease_id epoch

  let note_reclaim s ~lease_id = Hashtbl.replace s.reclaimed lease_id ()

  let check_done s ~lease_id ~epoch =
    match Hashtbl.find_opt s.granted lease_id with
    | Some e when e = epoch && not (Hashtbl.mem s.reclaimed lease_id) ->
      `Trusted
    | _ -> `Fenced
end
