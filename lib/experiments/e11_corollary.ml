(* E11 — Corollary 1.6: the spread time is bounded by
   min(T(G,c), T_abs(G)), and neither part dominates: on expander-like
   networks the conductance-diligence bound T(G,c) is far smaller,
   while on sparse low-conductance networks (cycle, path-like) the
   absolute bound T_abs wins by a wide margin.  This ablation shows
   both regimes and that the combined bound always holds. *)

open Rumor_util
open Rumor_bounds

let run ~full rng =
  let reps = if full then 60 else 24 in
  let table =
    Table.create
      ~aligns:[ Left; Right; Right; Right; Right; Left; Left ]
      [ "network"; "n"; "q99"; "T(G,1)"; "T_abs"; "winner"; "min holds" ]
  in
  let violations = ref 0 in
  let both_regimes = ref (false, false) in
  let add_case label n phi_rho rho_abs (m : Workloads.measured) =
    let t11 = Bounds.theorem_1_1_closed_form ~c:1. ~n ~phi_rho in
    let t13 = Bounds.theorem_1_3_closed_form ~n ~rho_abs in
    let combined = Float.min t11 t13 in
    let q99 = m.summary.Rumor_stats.Summary.q99 in
    let holds = q99 <= combined in
    if not holds then incr violations;
    let winner = if t11 <= t13 then "Thm 1.1" else "Thm 1.3" in
    let a, b = !both_regimes in
    both_regimes := (a || t11 <= t13, b || t13 < t11);
    Table.add_row table
      [
        label;
        Table.cell_i n;
        Table.cell_f q99;
        Table.cell_f ~digits:0 t11;
        Table.cell_f ~digits:0 t13;
        winner;
        (if holds then "yes" else "VIOLATED");
      ]
  in
  List.iter
    (fun (case : Workloads.static_case) ->
      let m = Workloads.measure_async ~reps rng case.net in
      add_case case.label case.n (case.phi *. case.rho) case.rho_abs m)
    (Workloads.static_zoo ~full rng);
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      "Corollary 1.6: the combined bound min(T(G,1), T_abs)" table
  in
  let out =
    let a, b = !both_regimes in
    Experiment.add_note out
      (if a && b then
         "both regimes observed: conductance-diligence wins on expanders \
          (clique, star, hypercube, random-regular), absolute diligence wins \
          on the cycle — neither theorem subsumes the other."
       else "only one regime observed at these sizes.")
  in
  Experiment.add_note out
    (if !violations = 0 then "the combined bound held in every case (q99)."
     else Printf.sprintf "COMBINED BOUND VIOLATED in %d cases!" !violations)

let experiment =
  {
    Experiment.id = "E11";
    title = "Corollary 1.6: combining the two bounds";
    claim = "the spread time is bounded by min(T(G,c), T_abs(G))";
    run;
  }
