open Rumor_util
module Obs = Rumor_obs

type output = {
  tables : (string * Table.t) list;
  notes : string list;
  plots : string list;
}

type t = {
  id : string;
  title : string;
  claim : string;
  run : full:bool -> Rumor_rng.Rng.t -> output;
}

let output_empty = { tables = []; notes = []; plots = [] }

let add_table out caption table =
  { out with tables = out.tables @ [ (caption, table) ] }

let add_note out note = { out with notes = out.notes @ [ note ] }

let add_plot out plot = { out with plots = out.plots @ [ plot ] }

(* Structured mirror of the printed output: one JSONL row per table
   row (cells keyed by header) and per note, plus a run manifest with
   the metric registry — written only when a sink directory is
   configured, so the printed output is untouched either way. *)
let emit_structured exp ~full ~seed ~wall_s out =
  if Obs.Sink.active () then begin
    let file = exp.id ^ ".jsonl" in
    List.iteri
      (fun table_index (caption, table) ->
        let headers = Table.headers table in
        List.iteri
          (fun row_index row ->
            Obs.Sink.append_jsonl file
              (Obs.Json.Obj
                 [
                   ("experiment", Obs.Json.String exp.id);
                   ("table", Obs.Json.String caption);
                   ("table_index", Obs.Json.Int table_index);
                   ("row_index", Obs.Json.Int row_index);
                   ( "cells",
                     Obs.Json.Obj
                       (List.map2
                          (fun h c -> (h, Obs.Json.String c))
                          headers row) );
                 ]))
          (Table.rows table))
      out.tables;
    List.iteri
      (fun i note ->
        Obs.Sink.append_jsonl file
          (Obs.Json.Obj
             [
               ("experiment", Obs.Json.String exp.id);
               ("note_index", Obs.Json.Int i);
               ("note", Obs.Json.String note);
             ]))
      out.notes;
    (* The replicate pool's shape rides along: jobs plus per-domain
       wall time of the last pool run, so artifacts record how
       parallel the experiment actually was. *)
    let pool_extra =
      match Rumor_par.Pool.last () with
      | Some st ->
        [
          ("jobs", Obs.Json.Int st.Rumor_par.Pool.jobs);
          ( "domain_wall_s",
            Obs.Json.List
              (Array.to_list
                 (Array.map
                    (fun w -> Obs.Json.Float w)
                    st.Rumor_par.Pool.wall_s)) );
        ]
      | None -> [ ("jobs", Obs.Json.Int (Rumor_par.Pool.default_jobs ())) ]
    in
    Obs.Run_manifest.write
      (Obs.Run_manifest.make ~kind:"experiment" ~id:exp.id ~seed
         ~mode:(if full then "full" else "quick")
         ~extra:
           ([
              ("title", Obs.Json.String exp.title);
              ("claim", Obs.Json.String exp.claim);
              ("tables", Obs.Json.Int (List.length out.tables));
              ("notes", Obs.Json.Int (List.length out.notes));
            ]
           @ pool_extra)
         ~wall_s ())
  end

let print ?(full = false) ?(seed = 2020) ?jobs exp =
  (* Every experiment's Monte-Carlo replicates run on the Domain pool;
     an explicit [jobs] becomes the process-wide default so the
     experiment's own runner calls (which pass no [?jobs]) inherit
     it.  Samples are bit-identical whatever the value. *)
  (match jobs with
  | Some j -> Rumor_par.Pool.set_default_jobs (Some j)
  | None -> ());
  Printf.printf "=== %s: %s ===\n" exp.id exp.title;
  Printf.printf "claim: %s\n\n" exp.claim;
  let rng = Rumor_rng.Rng.create seed in
  let span = Obs.Span.create ("experiment." ^ exp.id) in
  let t0 = Obs.Clock.now_s () in
  let out = Obs.Span.time span (fun () -> exp.run ~full rng) in
  let wall_s = Obs.Clock.now_s () -. t0 in
  List.iter (fun (caption, table) -> Table.print ~title:caption table) out.tables;
  List.iter (fun plot -> print_string plot) out.plots;
  List.iter (fun note -> Printf.printf "-> %s\n" note) out.notes;
  print_newline ();
  emit_structured exp ~full ~seed ~wall_s out
