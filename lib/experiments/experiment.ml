open Rumor_util

type output = {
  tables : (string * Table.t) list;
  notes : string list;
  plots : string list;
}

type t = {
  id : string;
  title : string;
  claim : string;
  run : full:bool -> Rumor_rng.Rng.t -> output;
}

let output_empty = { tables = []; notes = []; plots = [] }

let add_table out caption table =
  { out with tables = out.tables @ [ (caption, table) ] }

let add_note out note = { out with notes = out.notes @ [ note ] }

let add_plot out plot = { out with plots = out.plots @ [ plot ] }

let print ?(full = false) ?(seed = 2020) exp =
  Printf.printf "=== %s: %s ===\n" exp.id exp.title;
  Printf.printf "claim: %s\n\n" exp.claim;
  let rng = Rumor_rng.Rng.create seed in
  let out = exp.run ~full rng in
  List.iter (fun (caption, table) -> Table.print ~title:caption table) out.tables;
  List.iter (fun plot -> print_string plot) out.plots;
  List.iter (fun note -> Printf.printf "-> %s\n" note) out.notes;
  print_newline ()
