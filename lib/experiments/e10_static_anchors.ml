(* E10 — static-network anchors from the literature the paper builds
   on, used as end-to-end sanity checks of the simulators:
   - Karp et al. [19]: sync push-pull on the clique takes Theta(log n)
     rounds;
   - Chierichetti et al. [6]: sync push-pull on any static graph takes
     O(log n / Phi) rounds;
   - Acan et al. [1]: async push-pull on any connected static graph
     takes O(n log n) time;
   - Giakkoupis et al. [16]: on static graphs Ta = O(Ts + log n) —
     the relation Theorem 1.7 shows cannot survive in dynamic
     networks. *)

open Rumor_util
open Rumor_bounds

let run ~full rng =
  let reps = if full then 60 else 24 in
  let table =
    Table.create
      ~aligns:[ Left; Right; Right; Right; Right; Right; Left ]
      [ "network"; "n"; "sync mean"; "c log n/phi [6]"; "async mean"; "n log n [1]"; "Ta <= 4(Ts+ln n) [16]" ]
  in
  let coupling_ok = ref true in
  List.iter
    (fun (case : Workloads.static_case) ->
      let ms = Workloads.measure_sync ~reps rng case.net in
      let ma = Workloads.measure_async ~reps rng case.net in
      let sync_mean = ms.summary.Rumor_stats.Summary.mean in
      let async_mean = ma.summary.Rumor_stats.Summary.mean in
      let chierichetti =
        Static_bounds.chierichetti_rounds ~c:4. ~phi:case.phi case.n
      in
      let nlogn = Static_bounds.static_async_worst_case case.n in
      let envelope = 4. *. Static_bounds.async_from_sync ~ts:sync_mean case.n in
      let coupled = async_mean <= envelope in
      if not coupled then coupling_ok := false;
      Table.add_row table
        [
          case.label;
          Table.cell_i case.n;
          Table.cell_f sync_mean;
          Table.cell_f ~digits:0 chierichetti;
          Table.cell_f async_mean;
          Table.cell_f ~digits:0 nlogn;
          (if coupled then "yes" else "NO");
        ])
    (Workloads.static_zoo ~full rng);
  let n = if full then 512 else 128 in
  let karp = Static_bounds.karp_clique_rounds n in
  let out = Experiment.output_empty in
  let out = Experiment.add_table out "static anchors" table in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "Karp et al. [19] clique anchor: log2 n = %.1f rounds at n = %d — compare the clique row's sync mean."
         karp n)
  in
  Experiment.add_note out
    (if !coupling_ok then
       "the static coupling Ta = O(Ts + log n) of [16] held on every static \
        case — exactly the relation Theorem 1.7 breaks in dynamic networks \
        (see E6/E7)."
     else "STATIC COUPLING VIOLATED!")

let experiment =
  {
    Experiment.id = "E10";
    title = "Static-network anchors ([19], [6], [1], [16])";
    claim =
      "the simulators reproduce the classical static results the paper \
       builds on";
    run;
  }
