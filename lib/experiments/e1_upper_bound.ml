(* E1 — Theorem 1.1: the asynchronous push-pull spread time is at most
   T(G, c) = min { t : sum Phi(G(p)) rho(p) >= C log n }.  The theorem's
   explicit constant C = (10c + 20)/c0 is intentionally generous, so the
   check is two-fold: (a) the bound holds at every measured quantile,
   and (b) the *shape* log n / (Phi rho) tracks the measured spread time
   across a zoo of networks spanning three orders of magnitude in
   Phi rho. *)

open Rumor_util
open Rumor_bounds

(* With an observability sink configured, one traced run per case is
   exported as per-step JSONL rows (informed-count delta per dynamic
   step, with the running Phi-rho account), so the Theorem 1.1
   [sum Phi rho >= C log n] stopping rule can be overlaid on measured
   trajectories.  The traced runs draw from a *copy* of the
   experiment's RNG: the printed tables are byte-identical with the
   sink on or off. *)
let export_progress rng cases =
  if Rumor_obs.Sink.active () then begin
    let trng = Rumor_rng.Rng.copy rng in
    List.iter
      (fun (label, n, phi_rho, net) ->
        let source = Rumor_sim.Run.source_of net None in
        let result =
          Rumor_sim.Async_cut.run ~record_trace:true (Rumor_rng.Rng.split trng)
            net ~source
        in
        let deltas =
          Rumor_sim.Trace.per_step_progress result.Rumor_sim.Async_result.trace
        in
        let informed = ref 1 in
        Array.iteri
          (fun step delta ->
            informed := !informed + delta;
            Rumor_obs.Sink.append_jsonl "E1_progress.jsonl"
              (Rumor_obs.Json.Obj
                 [
                   ("experiment", Rumor_obs.Json.String "E1");
                   ("network", Rumor_obs.Json.String label);
                   ("n", Rumor_obs.Json.Int n);
                   ("step", Rumor_obs.Json.Int step);
                   ("delta", Rumor_obs.Json.Int delta);
                   ("informed", Rumor_obs.Json.Int !informed);
                   ("phi_rho", Rumor_obs.Json.Float phi_rho);
                   ( "phi_rho_sum",
                     Rumor_obs.Json.Float (phi_rho *. float_of_int (step + 1))
                   );
                 ]))
          deltas)
      (List.rev cases)
  end

let run ~full rng =
  let reps = if full then 100 else 30 in
  let table =
    Table.create
      ~aligns:[ Left; Right; Right; Right; Right; Right; Right; Left ]
      [ "network"; "n"; "phi*rho"; "mean"; "q99"; "T(G,1)"; "shape log n/(phi rho)"; "bound holds" ]
  in
  let violations = ref 0 in
  let shape_points = ref [] in
  let traced = ref [] in
  let add_case label n phi_rho net (m : Workloads.measured) =
    let bound = Bounds.theorem_1_1_closed_form ~c:1. ~n ~phi_rho in
    let shape = log (float_of_int n) /. phi_rho in
    let holds = m.summary.Rumor_stats.Summary.q99 <= bound in
    if not holds then incr violations;
    traced := (label, n, phi_rho, net) :: !traced;
    shape_points := (shape, m.summary.Rumor_stats.Summary.mean) :: !shape_points;
    Table.add_row table
      [
        label;
        Table.cell_i n;
        Table.cell_g phi_rho;
        Table.cell_f m.summary.Rumor_stats.Summary.mean;
        Table.cell_f m.summary.Rumor_stats.Summary.q99;
        Table.cell_f ~digits:0 bound;
        Table.cell_f ~digits:1 shape;
        (if holds then "yes" else "VIOLATED");
      ]
  in
  (* Static zoo: all parameters in closed form. *)
  List.iter
    (fun (case : Workloads.static_case) ->
      let m = Workloads.measure_async ~reps rng case.net in
      add_case case.label case.n (case.phi *. case.rho) case.net m)
    (Workloads.static_zoo ~full rng);
  (* Dynamic families with analytic parameters. *)
  let n_dyn = if full then 512 else 128 in
  let g2 = Rumor_dynamic.Dichotomy.g2 ~n:n_dyn in
  add_case "G2 (dynamic star)" (n_dyn + 1) 1.0 g2
    (Workloads.measure_async ~reps rng g2);
  let rho = 0.25 in
  let dil = Rumor_dynamic.Diligent.network ~n:(4 * n_dyn) ~rho () in
  let profiles = Bounds.profile ~steps:1 rng dil in
  let p = profiles.(0) in
  add_case
    (Printf.sprintf "G(n,rho=%.2f) (Thm 1.2 family)" rho)
    (4 * n_dyn) (p.Bounds.phi *. p.Bounds.rho)
    dil
    (Workloads.measure_async ~reps:(max 10 (reps / 3)) rng dil);
  export_progress rng !traced;
  let out = Experiment.output_empty in
  let out = Experiment.add_table out "measured asynchronous spread vs Theorem 1.1 bound" table in
  let fit =
    Rumor_stats.Regression.log_log (List.rev !shape_points)
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "shape check: log-log slope of measured mean vs log n/(Phi rho) = %.2f with R^2 = %.3f — positive and strongly correlated, i.e. Phi rho is the right predictor; the bound is an upper envelope (slope <= 1 expected: e.g. the cycle's true spread is Theta(n), a log n under the bound)"
         fit.Rumor_stats.Regression.slope fit.Rumor_stats.Regression.r_squared)
  in
  Experiment.add_note out
    (if !violations = 0 then "Theorem 1.1 bound held in every case (q99)."
     else Printf.sprintf "BOUND VIOLATED in %d cases!" !violations)

let experiment =
  {
    Experiment.id = "E1";
    title = "Theorem 1.1 upper bound T(G,c)";
    claim =
      "w.p. 1 - n^-c the async push-pull finishes by the first t with sum \
       Phi(G(p)) rho(p) >= (10c+20)/c0 * log n";
    run;
  }
