(* E5 — Remark 1.4 and the introduction's headline: every connected
   dynamic network spreads in O(n^2) time, and the bound is achieved:
   at rho = Theta(1/n) the absolutely-diligent family needs Theta(n^2).
   Contrast: on *static* connected networks the universal ceiling is
   O(n log n) [1] — our static path baseline grows linearly.  The
   log-log slopes separate cleanly: ~2 for the dynamic family, ~1 for
   the path. *)

open Rumor_util
open Rumor_dynamic

let run ~full rng =
  let ns = if full then [ 120; 180; 240; 320; 420 ] else [ 120; 180; 240; 320 ] in
  let reps = if full then 10 else 8 in
  let table =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right ]
      [ "n"; "dynamic median"; "dynamic/n^2"; "static path mean"; "path/n" ]
  in
  let dyn_points = ref [] and path_points = ref [] in
  List.iter
    (fun n ->
      let rho = 10. /. float_of_int n in
      let dyn = Absolute.network ~n ~rho in
      let md = Workloads.measure_async ~reps ~horizon:1e7 rng dyn in
      let dyn_mean = md.summary.Rumor_stats.Summary.median in
      let path = Dynet.of_static ~name:"path" (Rumor_graph.Gen.path n) in
      let mp = Workloads.measure_async ~reps rng path in
      let path_mean = mp.summary.Rumor_stats.Summary.mean in
      dyn_points := (float_of_int n, dyn_mean) :: !dyn_points;
      path_points := (float_of_int n, path_mean) :: !path_points;
      Table.add_row table
        [
          Table.cell_i n;
          Table.cell_f dyn_mean;
          Table.cell_g (dyn_mean /. (float_of_int n ** 2.));
          Table.cell_f path_mean;
          Table.cell_f ~digits:3 (path_mean /. float_of_int n);
        ])
    ns;
  let dyn_fit = Rumor_stats.Regression.log_log (List.rev !dyn_points) in
  let path_fit = Rumor_stats.Regression.log_log (List.rev !path_points) in
  let plot =
    Ascii_plot.render ~logx:true ~logy:true
      ~title:"spread time vs n (log-log): d = dynamic Theta(n^2) family, p = static path"
      [
        { Ascii_plot.label = 'd'; points = List.rev !dyn_points };
        { Ascii_plot.label = 'p'; points = List.rev !path_points };
      ]
  in
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      "worst-case growth: dynamic abs-G(n, 10/n) vs static path" table
  in
  let out = Experiment.add_plot out plot in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "dynamic growth exponent %.2f (Theta(n^2) predicts ~2.0; R^2 = %.3f)"
         dyn_fit.Rumor_stats.Regression.slope
         dyn_fit.Rumor_stats.Regression.r_squared)
  in
  Experiment.add_note out
    (Printf.sprintf
       "static path growth exponent %.2f (linear, consistent with the O(n log n) static ceiling of [1])"
       path_fit.Rumor_stats.Regression.slope)

let experiment =
  {
    Experiment.id = "E5";
    title = "Remark 1.4: the Theta(n^2) dynamic worst case";
    claim =
      "connected dynamic networks spread in O(n^2) and some need \
       Theta(n^2) — strictly worse than the O(n log n) static ceiling";
    run;
  }
