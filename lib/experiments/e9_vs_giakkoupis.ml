(* E9 — Section 1.2's motivating separation: on the alternating
   { 3, n-1 }-regular network every step is 1-diligent, so the
   Theorem 1.1 bound stays Theta(log n); but the Giakkoupis et al. [17]
   bound pays M(G) = (n-1)/3 and inflates to Theta(n log n) — a
   Theta(n)-factor over-estimate that diligence repairs.  Both bounds
   are "first t such that a per-step sum reaches target log n"; the
   network is 2-periodic, so we read the per-step contributions off a
   short profile and extrapolate the crossing time in closed form,
   using the same leading constant C = (10c+20)/c0 for both targets so
   only the structural factors (1 vs M(G)) differ. *)

open Rumor_util
open Rumor_bounds
open Rumor_dynamic

let run ~full rng =
  let ns = if full then [ 64; 128; 256; 512 ] else [ 32; 64; 128; 256 ] in
  let reps = if full then 60 else 24 in
  let table =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right; Right; Right ]
      [ "n"; "async mean"; "sync mean"; "T(G,1) ours"; "M(G)"; "Giakkoupis bound"; "Giak/ours" ]
  in
  let ratio_points = ref [] in
  List.iter
    (fun n ->
      let net = Alternating.network ~n () in
      let ma = Workloads.measure_async ~reps rng net in
      let ms = Workloads.measure_sync ~reps rng net in
      (* Per-step contributions over one short window (the family is
         2-periodic with constant parameters). *)
      let window = 64 in
      let profiles = Bounds.profile ~steps:window rng net in
      let avg f =
        Array.fold_left (fun acc p -> acc +. f p) 0. profiles
        /. float_of_int window
      in
      let avg_phirho = avg (fun p -> p.Bounds.phi *. p.Bounds.rho) in
      let avg_phi = avg (fun p -> p.Bounds.phi) in
      let target = Bounds.big_c ~c:1. *. log (float_of_int n) in
      let ours = target /. avg_phirho in
      let giak = Giakkoupis.bound ~steps:window rng net in
      let m_factor = giak.Giakkoupis.m_factor in
      let giak_time = target *. m_factor /. avg_phi in
      let ratio = giak_time /. ours in
      ratio_points := (float_of_int n, ratio) :: !ratio_points;
      Table.add_row table
        [
          Table.cell_i n;
          Table.cell_f ma.summary.Rumor_stats.Summary.mean;
          Table.cell_f ms.summary.Rumor_stats.Summary.mean;
          Table.cell_f ~digits:0 ours;
          Table.cell_f ~digits:1 m_factor;
          Table.cell_f ~digits:0 giak_time;
          Table.cell_f ~digits:1 ratio;
        ])
    ns;
  let fit = Rumor_stats.Regression.log_log (List.rev !ratio_points) in
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      "alternating {3, n-1}-regular network: diligence bound vs M(G) bound \
       (same leading constant for both)"
      table
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "Giakkoupis/ours ratio growth exponent %.2f (the paper predicts a \
          Theta(n) separation, i.e. ~1.0; R^2 = %.3f)"
         fit.Rumor_stats.Regression.slope fit.Rumor_stats.Regression.r_squared)
  in
  Experiment.add_note out
    "both algorithms actually finish in Theta(log n): the diligence bound \
     has the right shape, the M(G) bound is off by the degree-fluctuation \
     factor."

let experiment =
  {
    Experiment.id = "E9";
    title = "Section 1.2: diligence bound vs Giakkoupis et al. [17]";
    claim =
      "on the alternating {3, n-1}-regular network the M(G)-based bound \
       of [17] is a Theta(n) factor above the diligence bound";
    run;
  }
