(* B1 — engine performance: the cut-rate engine pays O(vol log n)
   total (O(deg) weight updates per informed node), independent of the
   spread time; the literal tick engine pays O(n * T) clock events.
   On sparse long-spread networks (cycle: T = Theta(n)) the cut engine
   wins by growing factors; on dense fast-spreading graphs (clique:
   T = Theta(log n) but vol = Theta(n^2)) the tick engine is cheaper.
   This experiment documents the trade-off so future engine changes
   are caught by inspection. *)

open Rumor_util
open Rumor_rng
open Rumor_dynamic

let cpu_time_of f =
  let t0 = Sys.time () in
  f ();
  Sys.time () -. t0

let run ~full rng =
  let ns = if full then [ 128; 256; 512; 1024 ] else [ 64; 128; 256 ] in
  let reps = if full then 20 else 10 in
  let table =
    Table.create
      ~aligns:[ Left; Right; Right; Right; Right ]
      [ "network"; "n"; "cut engine (ms/run)"; "tick engine (ms/run)"; "tick/cut" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun (label, graph) ->
          let net = Dynet.of_static graph in
          let time engine =
            let rng = Rng.copy rng in
            cpu_time_of (fun () ->
                for _ = 1 to reps do
                  match engine with
                  | `Cut ->
                    ignore (Rumor_sim.Async_cut.run (Rng.split rng) net ~source:0)
                  | `Tick ->
                    ignore (Rumor_sim.Async_tick.run (Rng.split rng) net ~source:0)
                done)
            /. float_of_int reps *. 1000.
          in
          let cut = time `Cut in
          let tick = time `Tick in
          Table.add_row table
            [
              label;
              Table.cell_i n;
              Table.cell_f ~digits:3 cut;
              Table.cell_f ~digits:3 tick;
              (if cut > 0. then Table.cell_f (tick /. cut) else "-");
            ])
        [
          ("clique", Rumor_graph.Gen.clique n);
          ("cycle", Rumor_graph.Gen.cycle n);
        ])
    ns;
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      "CPU time per run: cut-rate engine vs literal tick engine" table
  in
  let out =
    Experiment.add_note out
      "the tick/cut ratio grows with the spread time (cycle: 16x to 55x and \
       rising) because the tick engine simulates every wasted clock; on dense \
       fast-spreading graphs (clique) the tick engine is actually cheaper, \
       since the cut engine pays O(deg) weight updates per informed node."
  in
  Experiment.add_note out
    "rule of thumb: use Cut unless the graph is dense AND the spread is \
     O(log n); both engines sample the same distribution (see the agreement \
     tests)."

let experiment =
  {
    Experiment.id = "B1";
    title = "Engine performance scaling";
    claim = "cut-rate wins on long spreads, tick on dense fast ones";
    run;
  }
