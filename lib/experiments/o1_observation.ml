(* O1 — Observation 4.1: the H_{k,Delta}(A,B) gadget has
   Phi = Theta(Delta^2 / (k Delta^2 + n)) and rho = Theta(1/Delta).
   We validate the closed forms three ways:
   - tiny instances: exact subset-enumeration conductance & diligence;
   - medium instances: the spectral sweep-cut upper bound (a real cut,
     so an upper bound on Phi) against the estimate;
   - the designed bottleneck cut (a cluster prefix A_q) evaluated
     directly: its conductance upper-bounds Phi and must sit within a
     constant of the estimate. *)

open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic

let build rng ~k ~delta ~pad =
  let a_size = Paper_h.min_side_a ~k ~delta + pad in
  let b_size = Paper_h.min_side_b ~k ~delta + pad in
  let universe = a_size + b_size in
  let a = Array.init a_size (fun i -> i) in
  let b = Array.init b_size (fun i -> a_size + i) in
  let g, analysis = Paper_h.build rng ~universe ~a ~b ~k ~delta in
  (g, analysis, a, b)

(* Conductance of the designed cut: A side plus the first q clusters. *)
let designed_cut_conductance g (analysis : Paper_h.analysis) a q =
  let n = Graph.n g in
  let set = Bitset.create n in
  Array.iter (fun u -> ignore (Bitset.add set u)) a;
  for i = 1 to q do
    Array.iter (fun u -> ignore (Bitset.add set u)) analysis.Paper_h.clusters.(i)
  done;
  Cut.conductance_of_cut g set

let run ~full rng =
  let table =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right; Right; Right ]
      [ "k"; "Delta"; "n"; "phi est"; "phi measured"; "ratio"; "rho est vs 1/Delta" ]
  in
  let ok = ref true in
  (* Tiny: exact. *)
  let tiny_rng = Rng.split rng in
  let g, analysis, _, _ = build tiny_rng ~k:1 ~delta:2 ~pad:0 in
  if Graph.n g <= Cut.exact_size_limit then begin
    let exact = Cut.conductance_exact g in
    let est = analysis.Paper_h.phi_estimate in
    let rho_exact = Cut.diligence_exact g in
    if est /. exact > 8. || exact /. est > 8. then ok := false;
    Table.add_row table
      [
        "1"; "2";
        Table.cell_i (Graph.n g);
        Table.cell_g est;
        Table.cell_g exact ^ " (exact)";
        Table.cell_f (exact /. est);
        Printf.sprintf "rho exact %.3f vs 0.5" rho_exact;
      ]
  end;
  (* Medium: spectral sweep + designed cut. *)
  let cases = if full then [ (2, 4, 64); (3, 6, 128); (4, 8, 256) ] else [ (2, 4, 32); (3, 6, 64) ] in
  List.iter
    (fun (k, delta, pad) ->
      let g, analysis, a, _ = build (Rng.split rng) ~k ~delta ~pad in
      let est = analysis.Paper_h.phi_estimate in
      let sweep = Spectral.conductance_sweep (Rng.split rng) g in
      let designed =
        (* The tightest prefix cut. *)
        let best = ref infinity in
        for q = 0 to k - 1 do
          best := Float.min !best (designed_cut_conductance g analysis a q)
        done;
        !best
      in
      let measured = Float.min sweep designed in
      let ratio = measured /. est in
      if ratio > 16. || ratio < 1. /. 16. then ok := false;
      Table.add_row table
        [
          Table.cell_i k;
          Table.cell_i delta;
          Table.cell_i (Graph.n g);
          Table.cell_g est;
          Table.cell_g measured ^ " (cut)";
          Table.cell_f ratio;
          Printf.sprintf "1/Delta = %.3f" (1. /. float_of_int delta);
        ])
    cases;
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      "Observation 4.1: closed forms vs measured cuts on H_{k,Delta}(A,B)"
      table
  in
  Experiment.add_note out
    (if !ok then
       "the Theta-estimates track the measured conductance within small \
        constant factors at every size, and exact diligence matches \
        Theta(1/Delta) on the tiny instance."
     else "OBSERVATION 4.1 ESTIMATE OFF BY MORE THAN A CONSTANT!")

let experiment =
  {
    Experiment.id = "O1";
    title = "Observation 4.1: parameters of H_{k,Delta}(A,B)";
    claim = "Phi(H) = Theta(Delta^2/(k Delta^2 + n)) and rho(H) = Theta(1/Delta)";
    run;
  }
