open Rumor_rng
open Rumor_stats
open Rumor_graph
open Rumor_dynamic
module Run = Rumor_sim.Run
module Adaptive = Rumor_stats.Adaptive

type measured = {
  summary : Summary.t;
  completed : int;
  reps : int;
}

let measure_async ?reps ?horizon ?engine ?source rng net =
  match Run.default_adaptive () with
  | Some config ->
    (* Campaign-wide adaptive opt-in (see [Run.set_default_adaptive]):
       the experiment's requested replicate count becomes the budget —
       sequential stopping may only save replicates relative to the
       fixed path, never exceed it. *)
    let config =
      match reps with
      | Some r when r >= 1 ->
        {
          config with
          Adaptive.max_reps = r;
          min_reps = min config.Adaptive.min_reps r;
        }
      | _ -> config
    in
    let a = Run.async_spread_sweep_adaptive ?horizon ?engine ?source ~config rng net in
    let mc = Run.mc_of_sweep a.Run.sweep in
    {
      summary = Summary.of_samples mc.Run.times;
      completed = mc.Run.completed;
      reps = a.Run.consumed;
    }
  | None ->
    let mc = Run.async_spread_times ?reps ?horizon ?engine ?source rng net in
    {
      summary = Summary.of_samples mc.Run.times;
      completed = mc.Run.completed;
      reps = mc.Run.reps;
    }

let measure_sync ?reps ?max_rounds ?source rng net =
  let mc = Run.sync_spread_rounds ?reps ?max_rounds ?source rng net in
  {
    summary = Summary.of_samples mc.Run.times;
    completed = mc.Run.completed;
    reps = mc.Run.reps;
  }

type static_case = {
  label : string;
  net : Dynet.t;
  n : int;
  phi : float;
  rho : float;
  rho_abs : float;
}

let clique_phi n = float_of_int ((n / 2) + (n mod 2)) /. float_of_int (n - 1)

let static_zoo ?(full = false) rng =
  let n = if full then 512 else 128 in
  let d_hyper = if full then 9 else 7 in
  let reg_d = 8 in
  let clique = Gen.clique n in
  let star = Gen.star n in
  let cyc = Gen.cycle n in
  let hyper = Gen.hypercube d_hyper in
  let regular = Gen.random_connected_regular rng n reg_d in
  let phi_regular = Spectral.conductance_sweep (Rng.split rng) regular in
  [
    {
      label = "clique";
      net = Dynet.of_static ~name:"clique" clique;
      n;
      phi = clique_phi n;
      rho = 1.;
      rho_abs = 1. /. float_of_int (n - 1);
    };
    {
      label = "star";
      net = Dynet.of_static ~name:"star" star;
      n;
      phi = 1.;
      rho = 1.;
      rho_abs = 1.;
    };
    {
      label = "cycle";
      net = Dynet.of_static ~name:"cycle" cyc;
      n;
      phi = 2. /. float_of_int n;
      rho = 1.;
      rho_abs = 0.5;
    };
    {
      label = "hypercube";
      net = Dynet.of_static ~name:"hypercube" hyper;
      n = 1 lsl d_hyper;
      phi = 1. /. float_of_int d_hyper;
      rho = 1.;
      rho_abs = 1. /. float_of_int d_hyper;
    };
    {
      label = Printf.sprintf "random-%d-regular" reg_d;
      net = Dynet.of_static ~name:"random-regular" regular;
      n;
      phi = phi_regular;
      rho = 1.;
      rho_abs = 1. /. float_of_int reg_d;
    };
  ]

let fmt_ratio a b =
  if b = 0. then "-" else Printf.sprintf "%.2f" (a /. b)
