(* E12 — duty-cycled connectivity: the Theorem 1.1/1.3 sums only
   accumulate on steps whose graph is connected (rho(G) = 0 and
   ceil(Phi(G)) = 0 on disconnected steps — the paper's conventions).
   Exposing a base network only every j-th step must therefore scale
   both the bounds and the measured spread time by ~j.  This validates
   the zero-contribution accounting end to end and exercises the
   Combinators.intermittent adversary. *)

open Rumor_util
open Rumor_dynamic
open Rumor_bounds

let run ~full rng =
  let n = if full then 256 else 128 in
  let reps = if full then 60 else 24 in
  let base =
    Dynet.of_static ~name:"clique" ~rho:1.0
      ~phi:(Alternating.clique_conductance n)
      ~rho_abs:(1. /. float_of_int (n - 1))
      (Rumor_graph.Gen.clique n)
  in
  let base_mean =
    (Workloads.measure_async ~reps rng base).summary.Rumor_stats.Summary.mean
  in
  let table =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right ]
      [ "duty cycle 1/j"; "mean"; "mean/base"; "T(G,1)"; "T(G,1)/j vs base" ]
  in
  let scaling_ok = ref true in
  let base_bound = ref Float.nan in
  List.iter
    (fun j ->
      let net = Combinators.intermittent ~every:j base in
      let m = Workloads.measure_async ~reps rng net in
      let mean = m.summary.Rumor_stats.Summary.mean in
      let profiles = Bounds.profile ~steps:(j * 4096) rng net in
      let bound =
        match Bounds.theorem_1_1_time ~c:1. ~n profiles with
        | Some t -> float_of_int t
        | None -> Float.nan
      in
      if j = 1 then base_bound := bound;
      let ratio = mean /. base_mean in
      (* The spread should scale linearly in j (within MC noise and the
         half-step the rumor can make inside each exposed step). *)
      if Float.abs (ratio -. float_of_int j) > 0.6 *. float_of_int j +. 1.5 then
        scaling_ok := false;
      Table.add_row table
        [
          Printf.sprintf "1/%d" j;
          Table.cell_f mean;
          Table.cell_f ratio;
          Table.cell_f ~digits:0 bound;
          Table.cell_f (bound /. float_of_int j /. !base_bound);
        ])
    [ 1; 2; 4; 8 ];
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      (Printf.sprintf
         "clique %d exposed every j-th step (blank otherwise); base mean = %.2f"
         n base_mean)
      table
  in
  let out =
    Experiment.add_note out
      "the bound column scales exactly linearly in j: blank steps \
       contribute Phi rho = 0 to the Theorem 1.1 sum, as the paper's \
       disconnected-step convention prescribes."
  in
  Experiment.add_note out
    (if !scaling_ok then
       "measured spread scaled ~linearly with the duty-cycle denominator."
     else "DUTY-CYCLE SCALING VIOLATED!")

let experiment =
  {
    Experiment.id = "E12";
    title = "Duty-cycled connectivity and the zero-contribution convention";
    claim =
      "disconnected steps contribute nothing to the bound sums; spread and \
       bounds scale with the duty cycle";
    run;
  }
