(** Shared measurement helpers and the static-network zoo used by
    several experiments. *)

open Rumor_rng
open Rumor_stats
open Rumor_dynamic

type measured = {
  summary : Summary.t;
  completed : int;
  reps : int;
}

val measure_async :
  ?reps:int -> ?horizon:float -> ?engine:Rumor_sim.Run.engine -> ?source:int ->
  Rng.t -> Dynet.t -> measured
(** When a process-wide adaptive config is installed
    ({!Rumor_sim.Run.set_default_adaptive}), the measurement runs the
    sequentially stopped sweep with [reps] as its replicate budget and
    reports the consumed prefix; otherwise (the default) the classic
    fixed-count sampler, byte-identical to before. *)

val measure_sync :
  ?reps:int -> ?max_rounds:int -> ?source:int -> Rng.t -> Dynet.t -> measured

(** A static network together with its known graph parameters. *)
type static_case = {
  label : string;
  net : Dynet.t;
  n : int;
  phi : float;  (** closed form where known, spectral sweep otherwise *)
  rho : float;
  rho_abs : float;
}

val static_zoo : ?full:bool -> Rng.t -> static_case list
(** Clique, star, cycle, hypercube and a random 8-regular graph at
    quick (or full) sizes.  All five are regular or star-shaped, so
    diligence is exactly 1 and the other parameters have closed
    forms (the random-regular conductance is a spectral sweep
    estimate). *)

val fmt_ratio : float -> float -> string
(** ["a/b"-style ratio cell]; "-" when the denominator is 0. *)
