(* E7 — Theorem 1.7(ii): on the dynamic star G2 (the adversary
   re-centres the star on an uninformed node each step) the
   synchronous algorithm needs *exactly* n rounds — a freshly informed
   centre cannot relay within its round, so precisely one new node
   (the next centre) learns the rumor per round — while the
   asynchronous algorithm finishes in Theta(log n): the star is
   1-diligent with conductance 1, so Theorem 1.1 applies directly. *)

open Rumor_util
open Rumor_dynamic

let run ~full rng =
  let ns = if full then [ 128; 256; 512; 1024 ] else [ 64; 128; 256; 512 ] in
  let async_reps = if full then 200 else 80 in
  let sync_reps = if full then 10 else 5 in
  let table =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Left ]
      [ "n"; "async mean"; "async mean/ln n"; "sync rounds"; "sync = n exactly" ]
  in
  let exact_ok = ref true in
  let async_points = ref [] in
  List.iter
    (fun n ->
      let net = Dichotomy.g2 ~n in
      let ma = Workloads.measure_async ~reps:async_reps rng net in
      let ms = Workloads.measure_sync ~reps:sync_reps rng net in
      let async_mean = ma.summary.Rumor_stats.Summary.mean in
      async_points := (float_of_int n, async_mean) :: !async_points;
      let sync_min = ms.summary.Rumor_stats.Summary.min in
      let sync_max = ms.summary.Rumor_stats.Summary.max in
      let exact = sync_min = float_of_int n && sync_max = float_of_int n in
      if not exact then exact_ok := false;
      Table.add_row table
        [
          Table.cell_i n;
          Table.cell_f async_mean;
          Table.cell_f (async_mean /. log (float_of_int n));
          Printf.sprintf "%.0f..%.0f" sync_min sync_max;
          (if exact then "yes" else "NO");
        ])
    ns;
  let afit = Rumor_stats.Regression.log_log (List.rev !async_points) in
  let out = Experiment.output_empty in
  let out = Experiment.add_table out "G2: asynchronous vs synchronous" table in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "async growth exponent %.2f (Theta(log n) predicts ~0, i.e. far below 1)"
         afit.Rumor_stats.Regression.slope)
  in
  Experiment.add_note out
    (if !exact_ok then
       "synchronous spread was exactly n rounds in every repetition, as Theorem 1.7(ii) states."
     else "SYNC SPREAD DEVIATED FROM n!")

let experiment =
  {
    Experiment.id = "E7";
    title = "Theorem 1.7(ii): dichotomy on G2";
    claim = "Ta(G2) = Theta(log n) while Ts(G2) = n exactly";
    run;
  }
