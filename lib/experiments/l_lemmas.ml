(* L — the paper's key lemmas validated at distribution level:
   - Lemma 2.2: Poisson lower tail Pr[X <= r/2] <= e^{r(1/e + 1/2 - 1)};
   - Theorem 2.1: non-homogeneous Poisson counts have the integrated
     rate (checked through the Dist sampler);
   - Lemma 5.2: on a Delta-regular graph, E[I_tau] and Var[I_tau] are
     Theta(1) for tau in (0, 1];
   - Lemma 4.2: the probability that the rumor crosses the k-cluster
     bipartite string within one time unit is at most (2^k / k!) Delta;
   - Lemmas 6.1/6.2: both phases on the dynamic star finish in O(k)
     with exponentially small failure probability (subsumed by E8). *)

open Rumor_util
open Rumor_rng
open Rumor_dynamic
module Dist = Rumor_rng.Dist

let lemma_2_2_row rng reps r =
  let hits = ref 0 in
  for _ = 1 to reps do
    if float_of_int (Dist.poisson rng ~rate:r) <= r /. 2. then incr hits
  done;
  let emp = float_of_int !hits /. float_of_int reps in
  let bound = exp (r *. ((1. /. exp 1.) +. 0.5 -. 1.)) in
  (emp, bound)

let lemma_5_2_stats rng ~n ~delta ~reps =
  (* Asynchronous spread restricted to one unit of time on a
     Delta-regular circulant, counting informed nodes at tau = 1. *)
  let graph = Rumor_graph.Gen.circulant n (List.init (delta / 2) (fun i -> i + 1)) in
  let net = Dynet.of_static graph in
  let counts = Array.make reps 0. in
  for i = 0 to reps - 1 do
    let child = Rng.split rng in
    let result = Rumor_sim.Async_cut.run ~horizon:1.0 child net ~source:0 in
    counts.(i) <- float_of_int (Bitset.cardinal result.Rumor_sim.Async_result.informed)
  done;
  (Rumor_stats.Descriptive.mean counts, Rumor_stats.Descriptive.variance counts)

(* Claim 4.3's coupled processes, directly on a cluster string. *)
let claim_4_3 rng ~k ~delta ~reps =
  let clusters = Array.init (k + 1) (fun ci -> Array.init delta (fun ii -> (ci * delta) + ii)) in
  let count f =
    let hits = ref 0 and last_sum = ref 0 in
    for _ = 1 to reps do
      let o = f (Rng.split rng) in
      if o.Rumor_sim.Coupling.reached_last then incr hits;
      last_sum := !last_sum + o.Rumor_sim.Coupling.informed_last
    done;
    ( float_of_int !hits /. float_of_int reps,
      float_of_int !last_sum /. float_of_int reps )
  in
  let p2, _ = count (fun r -> Rumor_sim.Coupling.two_push r ~clusters ~horizon:1.0) in
  let pf, ef =
    count (fun r -> Rumor_sim.Coupling.forward_two_push r ~clusters ~horizon:1.0)
  in
  (p2, pf, ef)

let lemma_4_2_escape rng ~k ~delta ~reps =
  (* Build one H_{k,Delta}; inform all of S_0 (and the A side, which
     only helps); run one unit; count runs where any S_k node is
     informed. *)
  let a_size = Paper_h.min_side_a ~k ~delta + 8 in
  let b_size = Paper_h.min_side_b ~k ~delta + 8 in
  let universe = a_size + b_size in
  let a = Array.init a_size (fun i -> i) in
  let b = Array.init b_size (fun i -> a_size + i) in
  let graph, analysis = Paper_h.build rng ~universe ~a ~b ~k ~delta in
  let sk = analysis.Paper_h.clusters.(k) in
  let net = Dynet.of_static graph in
  let escapes = ref 0 in
  for _ = 1 to reps do
    let child = Rng.split rng in
    (* Source in S_0; one unit horizon. *)
    let source = analysis.Paper_h.clusters.(0).(0) in
    let result = Rumor_sim.Async_cut.run ~horizon:1.0 child net ~source in
    let informed = result.Rumor_sim.Async_result.informed in
    if Array.exists (fun u -> Bitset.mem informed u) sk then incr escapes
  done;
  float_of_int !escapes /. float_of_int reps

let run ~full rng =
  let reps = if full then 40_000 else 10_000 in
  (* Lemma 2.2. *)
  let t22 =
    Table.create ~aligns:[ Right; Right; Right ]
      [ "rate r"; "empirical Pr[X<=r/2]"; "bound e^{r(1/e-1/2)}" ]
  in
  let l22_ok = ref true in
  List.iter
    (fun r ->
      let emp, bound = lemma_2_2_row rng reps r in
      if emp > bound +. (3. /. sqrt (float_of_int reps)) then l22_ok := false;
      Table.add_row t22
        [ Table.cell_f ~digits:0 r; Printf.sprintf "%.4f" emp; Printf.sprintf "%.4f" bound ])
    [ 4.; 8.; 16.; 32. ];
  (* Theorem 2.1: linear rate lambda(t) = 1 + 2t over [0, 3];
     integrated rate = 3 + 9 = 12. *)
  let nh_counts =
    Array.init (reps / 10) (fun _ ->
        float_of_int
          (Dist.nonhomogeneous_count rng
             ~rate_at:(fun t -> 1. +. (2. *. t))
             ~a:0. ~b:3. ~steps:64))
  in
  let nh_mean = Rumor_stats.Descriptive.mean nh_counts in
  let nh_var = Rumor_stats.Descriptive.variance nh_counts in
  (* Lemma 5.2. *)
  let n52 = if full then 512 else 256 in
  let i_mean_8, i_var_8 = lemma_5_2_stats rng ~n:n52 ~delta:8 ~reps:(reps / 20) in
  let i_mean_16, i_var_16 = lemma_5_2_stats rng ~n:n52 ~delta:16 ~reps:(reps / 20) in
  (* Lemma 4.2. *)
  let k = 6 and delta = 4 in
  let escape = lemma_4_2_escape rng ~k ~delta ~reps:(reps / 20) in
  let fact k = Array.fold_left ( * ) 1 (Array.init k (fun i -> i + 1)) in
  let l42_bound =
    float_of_int delta *. (2. ** float_of_int k) /. float_of_int (fact k)
  in
  let out = Experiment.output_empty in
  let out = Experiment.add_table out "Lemma 2.2: Poisson lower tail" t22 in
  let out =
    Experiment.add_note out
      (if !l22_ok then "Lemma 2.2 bound held at every rate."
       else "LEMMA 2.2 BOUND VIOLATED!")
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "Theorem 2.1: non-homogeneous Poisson with integral 12.0 measured mean %.2f, variance %.2f (both should be ~12)."
         nh_mean nh_var)
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "Lemma 5.2 (Delta-regular, tau = 1): informed count mean/var = %.2f/%.2f at Delta = 8 and %.2f/%.2f at Delta = 16 — Theta(1), independent of Delta and n = %d."
         i_mean_8 i_var_8 i_mean_16 i_var_16 n52)
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "Lemma 4.2 (k = %d, Delta = %d): escape probability through the bipartite string in one unit = %.4f <= bound (2^k/k!) Delta = %.4f: %s"
         k delta escape l42_bound
         (if escape <= l42_bound then "holds" else "VIOLATED"))
  in
  let p2, pf, ef = claim_4_3 rng ~k ~delta ~reps:(reps / 10) in
  let slack = 4. /. sqrt (float_of_int (reps / 10)) in
  Experiment.add_note out
    (Printf.sprintf
       "Claim 4.3 coupling (2-push vs forward 2-push on the string): \
        Pr[2-push reaches S_k] = %.4f <= Pr[forward reaches] + MC slack = \
        %.4f: %s; forward E[informed in S_k at time 1] = %.4f <= (2^k/k!) \
        Delta = %.4f: %s"
       p2 (pf +. slack)
       (if p2 <= pf +. slack then "holds" else "VIOLATED")
       ef
       (Rumor_sim.Coupling.factorial_bound ~k ~delta)
       (if ef <= Rumor_sim.Coupling.factorial_bound ~k ~delta then "holds"
        else "VIOLATED"))

let experiment =
  {
    Experiment.id = "L";
    title = "Key lemmas (2.2, 2.1, 5.2, 4.2)";
    claim = "the probabilistic building blocks behave as proved";
    run;
  }
