(* E8 — Theorem 1.7(iii): on the dynamic star the asynchronous spread
   time has an exponential tail,
   Pr[spread > 2k] <= e^{-k/2 - o(1)} + e^{-k - o(1)}.
   We estimate the empirical tail over many repetitions and compare it
   pointwise with the analytic envelope (evaluated without the o(1)
   slack, so the empirical curve should sit at or below a small
   constant multiple of it). *)

open Rumor_util
open Rumor_dynamic

let envelope k = exp (-.k /. 2.) +. exp (-.k)

let run ~full rng =
  let n = if full then 512 else 256 in
  let reps = if full then 4000 else 1000 in
  let net = Dichotomy.g2 ~n in
  let mc = Rumor_sim.Run.async_spread_times ~reps rng net in
  let times = mc.Rumor_sim.Run.times in
  let table =
    Table.create
      ~aligns:[ Right; Right; Right; Right ]
      [ "k"; "Pr[spread > 2k] empirical"; "envelope e^-k/2 + e^-k"; "ratio" ]
  in
  let ok = ref true in
  let slack = 3. +. (5. /. sqrt (float_of_int reps)) in
  List.iter
    (fun k ->
      let kf = float_of_int k in
      let emp = Rumor_stats.Histogram.empirical_tail times (2. *. kf) in
      let env = envelope kf in
      (* Monte-Carlo noise floor: below ~3/reps the empirical tail is
         indistinguishable from zero. *)
      let noise_floor = 3. /. float_of_int reps in
      if emp > (slack *. env) +. noise_floor then ok := false;
      Table.add_row table
        [
          Table.cell_i k;
          Printf.sprintf "%.4f" emp;
          Printf.sprintf "%.4f" env;
          (if env > 0. then Printf.sprintf "%.2f" (emp /. env) else "-");
        ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  (* Phase split of Lemmas 6.1/6.2: t_f = first time Omega(n) nodes
     (n/4 here) are informed; t_s - t_f = remainder.  Each phase has
     an exponential tail of its own. *)
  let phase_reps = min reps 400 in
  let tf = Array.make phase_reps 0. and rest = Array.make phase_reps 0. in
  let phase_rng = Rumor_rng.Rng.create 77 in
  for i = 0 to phase_reps - 1 do
    let child = Rumor_rng.Rng.split phase_rng in
    let r =
      Rumor_sim.Async_cut.run ~record_trace:true child net
        ~source:(Rumor_sim.Run.source_of net None)
    in
    let trace = r.Rumor_sim.Async_result.trace in
    let total = r.Rumor_sim.Async_result.time in
    let first =
      match Rumor_sim.Trace.time_to_fraction trace ~n:(n + 1) 0.25 with
      | Some t -> t
      | None -> total
    in
    tf.(i) <- first;
    rest.(i) <- total -. first
  done;
  let phase_table =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right ]
      [ "k"; "Pr[t_f > k]"; "e^-k/2 (L6.1)"; "Pr[t_s - t_f > k]"; "n e^-k (L6.2 union bound)" ]
  in
  let phases_ok = ref true in
  (* Lemma 6.2's per-leaf geometric argument union-bounds over the
     remaining leaves, so the honest finite-n envelope for the second
     phase is min(1, n e^-k); the stated e^{-k-o(1)} absorbs the log n
     shift asymptotically. *)
  let l62_envelope kf = Float.min 1. (float_of_int (n + 1) *. exp (-.kf)) in
  List.iter
    (fun k ->
      let kf = float_of_int k in
      let p1 = Rumor_stats.Histogram.empirical_tail tf kf in
      let p2 = Rumor_stats.Histogram.empirical_tail rest kf in
      let noise = 3. /. float_of_int phase_reps in
      if p1 > (slack *. exp (-.kf /. 2.)) +. noise then phases_ok := false;
      if p2 > (slack *. l62_envelope kf) +. noise then phases_ok := false;
      Table.add_row phase_table
        [
          Table.cell_i k;
          Printf.sprintf "%.4f" p1;
          Printf.sprintf "%.4f" (exp (-.kf /. 2.));
          Printf.sprintf "%.4f" p2;
          Printf.sprintf "%.4f" (l62_envelope kf);
        ])
    [ 2; 4; 6; 8; 10; 12 ];
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      (Printf.sprintf "empirical tail of async spread on G2 (n = %d, %d reps)"
         n reps)
      table
  in
  let out =
    Experiment.add_table out
      (Printf.sprintf
         "Lemmas 6.1/6.2 phase split (%d traced runs): t_f = time to n/4 informed"
         phase_reps)
      phase_table
  in
  let out =
    Experiment.add_note out
      (if !phases_ok then
         "both phase tails sit under their Lemma 6.1/6.2 envelopes (phase 2 \
          against the finite-n union bound n e^-k)."
       else "PHASE TAIL EXCEEDED ENVELOPE!")
  in
  Experiment.add_note out
    (if !ok then
       Printf.sprintf
         "empirical tail sat below %.1f x the analytic envelope at every k \
          (the paper's bound carries e^{o(1)} slack)."
         slack
     else "TAIL EXCEEDED THE ANALYTIC ENVELOPE!")

let experiment =
  {
    Experiment.id = "E8";
    title = "Theorem 1.7(iii): exponential tail on the dynamic star";
    claim = "Pr[spread(G2) > 2k] <= e^{-k/2-o(1)} + e^{-k-o(1)}";
    run;
  }
