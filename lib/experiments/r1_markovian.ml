(* R1 — related work: Clementi et al. [7] prove that the (synchronous)
   push protocol on edge-Markovian evolving graphs with birth rate
   p = Omega(1/n) and constant death rate q spreads a rumor in
   O(log n) rounds w.h.p.  We run exactly that process (sync push-only
   on the Markovian family, started at stationarity) and fit the
   growth of the round count: the exponent should be far below any
   polynomial, and rounds/log n roughly constant. *)

open Rumor_util
open Rumor_dynamic

let run ~full rng =
  let ns = if full then [ 64; 128; 256; 512 ] else [ 48; 96; 192 ] in
  let reps = if full then 40 else 20 in
  let q = 0.5 in
  let c = 8. in
  let table =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right ]
      [ "n"; "p = c/n"; "push rounds mean"; "q90"; "rounds/ln n" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let p = c /. float_of_int n in
      (* Start at the stationary density so round 0 is typical. *)
      let pi = Markovian.stationary_edge_probability ~p ~q in
      let init = Rumor_graph.Gen.erdos_renyi rng n pi in
      let net = Markovian.network ~n ~p ~q ~init () in
      let mc =
        Rumor_sim.Run.sync_spread_rounds ~reps ~max_rounds:100000
          ~protocol:Rumor_sim.Protocol.Push rng net
      in
      let s = Rumor_stats.Summary.of_samples mc.Rumor_sim.Run.times in
      points := (float_of_int n, s.Rumor_stats.Summary.mean) :: !points;
      Table.add_row table
        [
          Table.cell_i n;
          Table.cell_g p;
          Table.cell_f s.Rumor_stats.Summary.mean;
          Table.cell_f s.Rumor_stats.Summary.q90;
          Table.cell_f (s.Rumor_stats.Summary.mean /. log (float_of_int n));
        ])
    ns;
  let fit = Rumor_stats.Regression.log_log (List.rev !points) in
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      (Printf.sprintf
         "sync push on edge-Markovian graphs (q = %.1f, p = %.0f/n, started at stationarity)"
         q c)
      table
  in
  Experiment.add_note out
    (Printf.sprintf
       "round growth exponent %.2f (O(log n) predicts ~0, far below 1; R^2 = %.3f) — the [7] anchor reproduces on our Markovian substrate."
       fit.Rumor_stats.Regression.slope fit.Rumor_stats.Regression.r_squared)

let experiment =
  {
    Experiment.id = "R1";
    title = "Related work: push on edge-Markovian graphs [7]";
    claim =
      "with p = Omega(1/n) and constant q, synchronous push spreads in \
       O(log n) rounds";
    run;
  }
