(* E6 — Theorem 1.7(i): on the dynamic network G1 (clique with a
   pendant source that splits into two bridged cliques) the
   synchronous algorithm finishes in Theta(log n) rounds — round 0
   deterministically pushes the rumor across the pendant edge — while
   the asynchronous algorithm needs Omega(n): with constant probability
   the pendant edge is missed during [0, 1) and the rumor must then
   cross the bridge, an exponential clock of rate 4/n.  The dichotomy
   shows in the high quantiles: async q90 grows linearly in n while
   sync stays logarithmic. *)

open Rumor_util
open Rumor_dynamic

let run ~full rng =
  let ns = if full then [ 128; 256; 512; 1024 ] else [ 64; 128; 256; 512 ] in
  let reps = if full then 200 else 80 in
  let table =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right; Right ]
      [ "n"; "async mean"; "async q90"; "async q90/n"; "sync mean"; "sync/ln n" ]
  in
  let async_points = ref [] and sync_points = ref [] in
  List.iter
    (fun n ->
      let net = Dichotomy.g1 ~n in
      let ma = Workloads.measure_async ~reps rng net in
      let ms = Workloads.measure_sync ~reps:(max 20 (reps / 4)) rng net in
      let q90 = ma.summary.Rumor_stats.Summary.q90 in
      let sync_mean = ms.summary.Rumor_stats.Summary.mean in
      async_points := (float_of_int n, q90) :: !async_points;
      sync_points := (float_of_int n, sync_mean) :: !sync_points;
      Table.add_row table
        [
          Table.cell_i n;
          Table.cell_f ma.summary.Rumor_stats.Summary.mean;
          Table.cell_f q90;
          Table.cell_f ~digits:3 (q90 /. float_of_int n);
          Table.cell_f sync_mean;
          Table.cell_f (sync_mean /. log (float_of_int n));
        ])
    ns;
  let afit = Rumor_stats.Regression.log_log (List.rev !async_points) in
  let sfit = Rumor_stats.Regression.log_log (List.rev !sync_points) in
  let out = Experiment.output_empty in
  let out = Experiment.add_table out "G1: asynchronous vs synchronous" table in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "async q90 growth exponent %.2f (Omega(n) predicts ~1.0); sync growth exponent %.2f (Theta(log n) predicts ~0)"
         afit.Rumor_stats.Regression.slope sfit.Rumor_stats.Regression.slope)
  in
  Experiment.add_note out
    "dichotomy direction on G1: synchronous beats asynchronous by an \
     unbounded factor — impossible on static networks [16]."

let experiment =
  {
    Experiment.id = "E6";
    title = "Theorem 1.7(i): dichotomy on G1";
    claim = "Ta(G1) = Omega(n) while Ts(G1) = Theta(log n)";
    run;
  }
