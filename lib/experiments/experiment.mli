(** Experiment framework: every theorem-validation run in DESIGN.md's
    per-experiment index is an {!t} registered in {!Registry}
    (see [registry.ml]); [bench/main.exe] and the CLI render them
    through {!print}. *)

open Rumor_util

type output = {
  tables : (string * Table.t) list;  (** (caption, table) pairs *)
  notes : string list;  (** shape conclusions, fit slopes, pass/fail lines *)
  plots : string list;  (** pre-rendered ASCII plots *)
}

type t = {
  id : string;  (** e.g. "E1" *)
  title : string;
  claim : string;  (** the paper statement being validated *)
  run : full:bool -> Rumor_rng.Rng.t -> output;
      (** [full = false] uses quick sizes suitable for CI *)
}

val print : ?full:bool -> ?seed:int -> ?jobs:int -> t -> unit
(** Run and pretty-print one experiment (default quick mode,
    seed 2020).

    Monte-Carlo replicates inside the experiment execute on the
    {!Rumor_par.Pool} Domain pool; [jobs] installs a process-wide
    job-count override for the run (default: [RUMOR_JOBS] or the
    processor count).  Printed tables are bit-identical for any job
    count — the runners key every replicate's RNG stream by its index.

    When an observability sink is configured
    ({!Rumor_obs.Sink.set_dir}, via the CLI's [--obs-out] or
    [RUMOR_OBS_OUT]), the printed output is additionally mirrored as
    structured artifacts: every table row and note becomes a JSONL
    record in [<id>.jsonl], and a [<id>.manifest.json] records seed,
    mode, wall time and the metric-registry snapshot.  Stdout is
    byte-identical with the sink on or off. *)

val output_empty : output

val add_table : output -> string -> Table.t -> output

val add_note : output -> string -> output

val add_plot : output -> string -> output
