(* E4 — Theorem 1.5: on the absolutely rho-diligent family the spread
   time is Omega(n / rho) with probability 1 - O(1/n), matching the
   Theorem 1.3 bound T_abs = 2n(Delta + 1) = Theta(n / rho) up to a
   constant.  Sweeps rho at fixed n and n at fixed rho; in both sweeps
   the three quantities must stay within constant factors of each
   other. *)

open Rumor_util
open Rumor_dynamic
open Rumor_bounds

let measure rng reps net =
  Workloads.measure_async ~reps ~horizon:1e7 rng net

let run ~full rng =
  let n = if full then 480 else 240 in
  let reps = if full then 16 else 8 in
  let table_a =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right; Right; Right ]
      [ "rho"; "Delta"; "mean"; "min"; "lower n Delta/80"; "T_abs"; "T_abs/mean" ]
  in
  let rho_sweep = [ 0.05; 0.1; 0.2; 0.5 ] in
  let const_ok = ref true in
  List.iter
    (fun rho ->
      if Absolute.admissible ~n ~rho then begin
        let net = Absolute.network ~n ~rho in
        let delta = Absolute.delta_of_rho rho in
        let m = measure rng reps net in
        let mean = m.summary.Rumor_stats.Summary.mean in
        let lower = Absolute.spread_lower_bound ~n ~rho in
        let t_abs =
          Bounds.theorem_1_3_closed_form ~n
            ~rho_abs:(1. /. float_of_int (delta + 1))
        in
        (* Tightness: T_abs/measured bounded by a constant across the
           sweep (we allow 64x for the explicit theorem constants). *)
        if t_abs /. mean > 64. || mean < lower /. 8. then const_ok := false;
        Table.add_row table_a
          [
            Printf.sprintf "%.2f" rho;
            Table.cell_i delta;
            Table.cell_f mean;
            Table.cell_f m.summary.Rumor_stats.Summary.min;
            Table.cell_f ~digits:1 lower;
            Table.cell_f ~digits:0 t_abs;
            Table.cell_f ~digits:1 (t_abs /. mean);
          ]
      end)
    rho_sweep;
  (* n sweep at fixed rho: all three quantities scale linearly. *)
  let rho = 0.1 in
  let ns = if full then [ 240; 360; 480; 720 ] else [ 180; 240; 300; 420 ] in
  let table_b =
    Table.create ~aligns:[ Right; Right; Right; Right ]
      [ "n"; "mean"; "n/rho"; "mean/(n/rho)" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let net = Absolute.network ~n ~rho in
      let m = measure rng (max 4 (reps / 2)) net in
      let mean = m.summary.Rumor_stats.Summary.mean in
      points := (float_of_int n, mean) :: !points;
      let envelope = float_of_int n /. rho in
      Table.add_row table_b
        [
          Table.cell_i n;
          Table.cell_f mean;
          Table.cell_f ~digits:0 envelope;
          Table.cell_f ~digits:3 (mean /. envelope);
        ])
    ns;
  let fit = Rumor_stats.Regression.log_log (List.rev !points) in
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out (Printf.sprintf "(a) n = %d: rho sweep" n) table_a
  in
  let out =
    Experiment.add_table out (Printf.sprintf "(b) rho = %.2f: n sweep" rho)
      table_b
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "n-sweep growth exponent %.2f (Theorem 1.5 predicts ~1.0 at fixed rho; R^2 = %.3f)"
         fit.Rumor_stats.Regression.slope fit.Rumor_stats.Regression.r_squared)
  in
  Experiment.add_note out
    (if !const_ok then
       "measured spread stayed within constant factors of both Omega(n/rho) and T_abs across the sweep."
     else "CONSTANT-FACTOR ENVELOPE VIOLATED!")

let experiment =
  {
    Experiment.id = "E4";
    title = "Theorem 1.5 tightness of the absolute bound";
    claim =
      "on the absolutely rho-diligent family the spread time is \
       Omega(n/rho), so Theorem 1.3 is tight up to constants";
    run;
  }
