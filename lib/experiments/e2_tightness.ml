(* E2 — Theorem 1.2: on the adaptive family G(n, rho) the spread time
   is Omega(n / (rho^-1 ... )) — concretely >= n / (4 k ceil(1/rho)) —
   while the Theorem 1.1 bound is O((rho n + k/rho) log n), i.e. the
   bound is tight up to o(log^2 n).  Two sweeps:
   (a) fixed n, rho from ~1/sqrt(n) to 1: measured spread sits between
       the lower bound and the upper bound, and the upper/measured gap
       stays below log^2 n;
   (b) fixed rho, growing n: measured spread grows linearly in n
       (slope ~ 1 in log-log). *)

open Rumor_util
open Rumor_dynamic
open Rumor_bounds

let run ~full rng =
  let n = if full then 1024 else 512 in
  let reps = if full then 30 else 12 in
  let k = Paper_h.default_k n in
  let rho_sweep =
    let base = [ 1. /. sqrt (float_of_int n); 0.1; 0.2; 0.5; 1.0 ] in
    List.filter (fun rho -> Diligent.admissible ~n ~rho) base
  in
  let table_a =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right; Right; Right; Right ]
      [ "rho"; "Delta"; "mean"; "q90"; "lower nrho/4k"; "upper T(G,1)"; "upper/mean"; "log^2 n" ]
  in
  let log2n = log (float_of_int n) ** 2. in
  let gap_ok = ref true in
  let lower_ok = ref true in
  List.iter
    (fun rho ->
      let net = Diligent.network ~k ~n ~rho () in
      let m = Workloads.measure_async ~reps rng net in
      let profiles = Bounds.profile ~steps:1 rng net in
      let p = profiles.(0) in
      let upper =
        Bounds.theorem_1_1_closed_form ~c:1. ~n
          ~phi_rho:(p.Bounds.phi *. p.Bounds.rho)
      in
      let lower = Diligent.spread_lower_bound ~n ~rho ~k in
      let mean = m.summary.Rumor_stats.Summary.mean in
      (* The shape checks: measured within a constant of the lower
         bound envelope (we allow 1/8x slack for the Theta constants),
         and the upper/measured gap within the o(log^2 n) margin once
         the theorem's explicit constant C = (10c+20)/c0 is folded
         out. *)
      if mean < lower /. 8. then lower_ok := false;
      if upper /. mean > 2. *. Bounds.big_c ~c:1. *. log2n then gap_ok := false;
      Table.add_row table_a
        [
          Printf.sprintf "%.3f" rho;
          Table.cell_i (Diligent.delta_of_rho rho);
          Table.cell_f mean;
          Table.cell_f m.summary.Rumor_stats.Summary.q90;
          Table.cell_f ~digits:1 lower;
          Table.cell_f ~digits:0 upper;
          Table.cell_f ~digits:1 (upper /. mean);
          Table.cell_f ~digits:1 log2n;
        ])
    rho_sweep;
  (* Sweep (b): fixed rho, growing n -> linear growth. *)
  let rho = 0.2 in
  let ns = if full then [ 512; 768; 1024; 1536 ] else [ 256; 384; 512; 768 ] in
  let table_b =
    Table.create ~aligns:[ Right; Right; Right; Right ]
      [ "n"; "k"; "mean"; "mean/(n/(k Delta))" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let k = Paper_h.default_k n in
      let net = Diligent.network ~k ~n ~rho () in
      let m = Workloads.measure_async ~reps:(max 6 (reps / 2)) rng net in
      let mean = m.summary.Rumor_stats.Summary.mean in
      let envelope =
        float_of_int n /. float_of_int (k * Diligent.delta_of_rho rho)
      in
      points := (envelope, mean) :: !points;
      Table.add_row table_b
        [
          Table.cell_i n;
          Table.cell_i k;
          Table.cell_f mean;
          Table.cell_f (mean /. envelope);
        ])
    ns;
  let fit = Rumor_stats.Regression.log_log (List.rev !points) in
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      (Printf.sprintf "(a) n = %d, k = %d: rho sweep" n k)
      table_a
  in
  let out =
    Experiment.add_table out
      (Printf.sprintf "(b) rho = %.2f: n sweep" rho)
      table_b
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "n-sweep: log-log slope of measured spread vs the predictor n/(k Delta) = %.2f (Theorem 1.2 predicts proportionality, ~1.0; R^2 = %.3f)"
         fit.Rumor_stats.Regression.slope fit.Rumor_stats.Regression.r_squared)
  in
  let out =
    Experiment.add_note out
      (if !lower_ok then
         "measured spread >= Omega(n/(k Delta)) lower-bound envelope in every case."
       else "LOWER BOUND SHAPE VIOLATED!")
  in
  Experiment.add_note out
    (if !gap_ok then
       "upper-bound/measured gap stayed within the o(log^2 n) margin (after \
        folding out the theorem's explicit constant C) in every case."
     else "GAP EXCEEDED log^2 n MARGIN!")

let experiment =
  {
    Experiment.id = "E2";
    title = "Theorem 1.2 tightness on G(n, rho)";
    claim =
      "on the adaptive family G(n, rho) the spread time is \
       Omega(n/(k ceil(1/rho))) and the Theorem 1.1 bound exceeds it by \
       at most o(log^2 n)";
    run;
  }
