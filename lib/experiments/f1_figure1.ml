(* F1 — Figure 1 reproduction: machine-checked structure of the two
   dynamic networks G1 and G2 at each phase of their evolution, plus an
   ASCII rendering of small instances (the paper's only figure defines
   these networks; reproducing it means verifying the construction). *)

open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic

let check table label ok =
  Table.add_row table [ label; (if ok then "pass" else "FAIL") ];
  ok

let run ~full:_ rng =
  let table = Table.create ~aligns:[ Left; Left ] [ "structural invariant"; "status" ] in
  let all_ok = ref true in
  let assert_ label ok = if not (check table label ok) then all_ok := false in
  let n = 10 in
  (* --- G1, step 0: n-clique with pendant {0, n}. --- *)
  let g1 = Dichotomy.g1 ~n in
  let inst = g1.Dynet.spawn (Rng.split rng) in
  let informed = Bitset.create (n + 1) in
  ignore (Bitset.add informed n);
  let step0 = (Dynet.next inst ~informed).Dynet.graph in
  assert_ "G1 step 0: pendant node n has degree 1"
    (Graph.degree step0 n = 1 && Graph.has_edge step0 0 n);
  assert_ "G1 step 0: nodes 0..n-1 form a clique"
    (let ok = ref true in
     for u = 0 to n - 1 do
       for v = u + 1 to n - 1 do
         if not (Graph.has_edge step0 u v) then ok := false
       done
     done;
     !ok);
  (* --- G1, steps >= 1: two bridged cliques containing 0 and n. --- *)
  let step1 = (Dynet.next inst ~informed).Dynet.graph in
  let step2 = (Dynet.next inst ~informed).Dynet.graph in
  assert_ "G1 steps 1, 2: identical graphs (frozen)" (Graph.equal step1 step2);
  let half = (n + 2) / 2 in
  assert_ "G1 step 1: left clique holds node 0, right holds node n"
    (Graph.has_edge step1 0 1 && Graph.has_edge step1 half n);
  assert_ "G1 step 1: exactly one bridge edge crosses the halves"
    (let crossing = ref 0 in
     Graph.iter_edges (fun u v -> if u < half && v >= half then incr crossing) step1;
     !crossing = 1);
  (* --- G2: re-centering star. --- *)
  let g2 = Dichotomy.g2 ~n in
  let inst2 = g2.Dynet.spawn (Rng.split rng) in
  let informed2 = Bitset.create (n + 1) in
  ignore (Bitset.add informed2 0);
  let s0 = (Dynet.next inst2 ~informed:informed2).Dynet.graph in
  assert_ "G2 step 0: star with centre n"
    (Graph.degree s0 n = n && Graph.m s0 = n);
  (* Inform the centre (as a pull would) and step: the new centre must
     be uninformed. *)
  ignore (Bitset.add informed2 n);
  let s1 = (Dynet.next inst2 ~informed:informed2).Dynet.graph in
  let new_center = ref (-1) in
  for u = 0 to n do
    if Graph.degree s1 u = n then new_center := u
  done;
  assert_ "G2 step 1: exposes a star" (!new_center >= 0 && Graph.m s1 = n);
  assert_ "G2 step 1: the new centre is an uninformed node"
    (not (Bitset.mem informed2 !new_center));
  (* ASCII rendering of tiny instances, echoing Figure 1. *)
  let render caption g =
    Format.asprintf "%s@.%a@.@." caption Graph.pp g
  in
  let tiny = Dichotomy.g1 ~n:4 in
  let inst3 = tiny.Dynet.spawn (Rng.split rng) in
  let e = Bitset.create 5 in
  let t0 = (Dynet.next inst3 ~informed:e).Dynet.graph in
  let t1 = (Dynet.next inst3 ~informed:e).Dynet.graph in
  let plot =
    render "Figure 1(a) G1 at t=0 (K4 + pendant 4):" t0
    ^ render "Figure 1(a) G1 at t>=1 (two bridged cliques):" t1
    ^ render "Figure 1(b) G2 star at t=0 (centre 4):"
        (Dichotomy.star_graph ~n:4 ~center:4)
  in
  let out = Experiment.output_empty in
  let out = Experiment.add_table out "Figure 1 structural invariants" table in
  let out = Experiment.add_plot out plot in
  Experiment.add_note out
    (if !all_ok then "every Figure 1 structural invariant holds."
     else "FIGURE 1 INVARIANT FAILED!")

let experiment =
  {
    Experiment.id = "F1";
    title = "Figure 1: the dynamic networks G1 and G2";
    claim = "the constructions match the paper's figure step by step";
    run;
  }
