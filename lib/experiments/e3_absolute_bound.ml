(* E3 — Theorem 1.3: the spread time is at most
   T_abs(G) = min { t : sum ceil(Phi(G(p))) rho_bar(p) >= 2n }, i.e.
   2n / rho_bar for an always-connected network with constant absolute
   diligence.  Checked on the static zoo plus the dynamic star and the
   absolutely-diligent family; also checks Remark 1.4's O(n^2)
   universal consequence (rho_bar >= 1/(n-1) always). *)

open Rumor_util
open Rumor_bounds

let run ~full rng =
  let reps = if full then 60 else 24 in
  let table =
    Table.create
      ~aligns:[ Left; Right; Right; Right; Right; Right; Left ]
      [ "network"; "n"; "rho_bar"; "mean"; "q99"; "T_abs = 2n/rho_bar"; "bound holds" ]
  in
  let violations = ref 0 in
  let add_case label n rho_abs (m : Workloads.measured) =
    let bound = Bounds.theorem_1_3_closed_form ~n ~rho_abs in
    let holds = m.summary.Rumor_stats.Summary.q99 <= bound in
    if not holds then incr violations;
    Table.add_row table
      [
        label;
        Table.cell_i n;
        Table.cell_g rho_abs;
        Table.cell_f m.summary.Rumor_stats.Summary.mean;
        Table.cell_f m.summary.Rumor_stats.Summary.q99;
        Table.cell_f ~digits:0 bound;
        (if holds then "yes" else "VIOLATED");
      ]
  in
  List.iter
    (fun (case : Workloads.static_case) ->
      let m = Workloads.measure_async ~reps rng case.net in
      add_case case.label case.n case.rho_abs m)
    (Workloads.static_zoo ~full rng);
  let n_dyn = if full then 512 else 128 in
  add_case "G2 (dynamic star)" (n_dyn + 1) 1.0
    (Workloads.measure_async ~reps rng (Rumor_dynamic.Dichotomy.g2 ~n:n_dyn));
  let rho = 0.1 in
  let n_abs = if full then 480 else 240 in
  let abs_net = Rumor_dynamic.Absolute.network ~n:n_abs ~rho in
  let delta = Rumor_dynamic.Absolute.delta_of_rho rho in
  add_case
    (Printf.sprintf "abs-G(n,rho=%.2f) (Thm 1.5 family)" rho)
    n_abs
    (1. /. float_of_int (delta + 1))
    (Workloads.measure_async ~reps:(max 6 (reps / 4)) rng abs_net);
  (* Remark 1.4: the universal O(n^2) ceiling, rho_bar >= 1/(n-1). *)
  let universal n = 2. *. float_of_int n *. float_of_int (n - 1) in
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out "measured asynchronous spread vs Theorem 1.3 bound"
      table
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "Remark 1.4: every connected network above also sits under the universal 2n(n-1) ceiling (e.g. %.0f at n = %d)."
         (universal n_dyn) n_dyn)
  in
  Experiment.add_note out
    (if !violations = 0 then "Theorem 1.3 bound held in every case (q99)."
     else Printf.sprintf "BOUND VIOLATED in %d cases!" !violations)

let experiment =
  {
    Experiment.id = "E3";
    title = "Theorem 1.3 absolute-diligence bound";
    claim =
      "w.h.p. the async push-pull finishes by the first t with sum \
       ceil(Phi(G(p))) rho_bar(p) >= 2n";
    run;
  }
