(* E13 — fault tolerance: the thinning self-check and bound
   degradation under churn.

   The load-bearing validation is distribution-level: by the paper's
   Equation 1 each directed contact u->v is an independent Poisson
   process of rate 1/d_u, so dropping every message independently with
   probability p thins each process to rate (1-p)/d_u — i.e. message
   loss IS a clock-rate rescale by (1-p).  The engines implement loss
   by a genuinely different mechanism than the rate parameter
   (rejection of arrivals in the cut engine, per-message Bernoulli
   trials in the tick engine), so agreement between "loss p" and
   "rate 1-p" is a non-trivial end-to-end check of the fault
   machinery on both engines.

   Part 2 measures degradation under crash/recovery churn: at
   stationary availability a both endpoints of a contact are alive
   with probability ~a^2, so the spread should slow by roughly 1/a^2
   (engine-level churn; the graph-level combinator concentrates the
   survivors' rates and degrades less).

   Part 3 exercises the hardened Monte-Carlo runner: an injected
   always-raising replicate must be recorded as failed without taking
   the sweep down, and an event-budget watchdog must censor rather
   than hang. *)

open Rumor_util
open Rumor_graph
open Rumor_dynamic
open Rumor_faults
module Run = Rumor_sim.Run
module Estimate = Rumor_sim.Estimate

let ci_overlap (a : Estimate.t) (b : Estimate.t) =
  a.Estimate.ci_low <= b.Estimate.ci_high
  && b.Estimate.ci_low <= a.Estimate.ci_high

let run ~full rng =
  let n = if full then 96 else 48 in
  let reps = if full then 200 else 80 in
  let q = 0.9 in
  let out = Experiment.output_empty in

  (* --- Part 1: thinning self-check, both engines --- *)
  let nets =
    [
      ("clique", Dynet.of_static ~name:"clique" (Gen.clique n));
      ("G2", Dichotomy.g2 ~n);
    ]
  in
  let thinning =
    Table.create
      ~aligns:[ Table.Left; Left; Right; Right; Right; Right ]
      [ "network"; "engine"; "loss p"; "loss q90 [ci]"; "rate 1-p q90 [ci]"; "agree" ]
  in
  let all_agree = ref true in
  List.iter
    (fun (label, net) ->
      List.iter
        (fun (ename, engine) ->
          List.iter
            (fun p ->
              let lossy =
                Estimate.spread_time ~reps ~q ~engine
                  ~faults:(Fault_plan.message_loss p) rng net
              in
              let rescaled =
                Estimate.spread_time ~reps ~q ~engine ~rate:(1. -. p) rng net
              in
              let agree = ci_overlap lossy rescaled in
              if not agree then all_agree := false;
              Table.add_row thinning
                [
                  label;
                  ename;
                  Printf.sprintf "%.2f" p;
                  Printf.sprintf "%.2f [%.2f, %.2f]" lossy.Estimate.point
                    lossy.Estimate.ci_low lossy.Estimate.ci_high;
                  Printf.sprintf "%.2f [%.2f, %.2f]" rescaled.Estimate.point
                    rescaled.Estimate.ci_low rescaled.Estimate.ci_high;
                  (if agree then "yes" else "NO");
                ])
            [ 0.25; 0.5 ])
        [ ("cut", Run.Cut); ("tick", Run.Tick) ])
    nets;
  let out =
    Experiment.add_table out
      (Printf.sprintf
         "thinning self-check (n = %d, %d reps): spread under message loss p \
          vs fault-free run at rate 1-p"
         n reps)
      thinning
  in
  let out =
    Experiment.add_note out
      (if !all_agree then
         "thinning identity holds: loss-p and rate-(1-p) q90 bootstrap CIs \
          overlap in every cell, on both engines."
       else "THINNING SELF-CHECK FAILED in at least one cell!")
  in

  (* --- Part 2: degradation under churn --- *)
  let n2 = if full then 128 else 64 in
  let reps2 = if full then 60 else 30 in
  let clique2 = Dynet.of_static ~name:"clique" (Gen.clique n2) in
  let mean_of sweep =
    let times = Run.usable_times sweep in
    if Array.length times = 0 then Float.nan
    else Rumor_stats.Descriptive.mean times
  in
  let base_sweep =
    Run.async_spread_sweep ~reps:reps2 ~horizon:1e4 rng clique2
  in
  let base_mean = mean_of base_sweep in
  let churn_t =
    Table.create
      ~aligns:[ Table.Right; Right; Right; Right; Right; Right ]
      [ "crash"; "recover"; "avail a"; "mean"; "slowdown"; "~1/a^2" ]
  in
  List.iter
    (fun (crash, recover) ->
      let churn = { Fault_plan.crash; recover } in
      let a = Fault_plan.availability churn in
      let sweep =
        Run.async_spread_sweep ~reps:reps2 ~horizon:1e4
          ~max_events:(n2 * 100_000)
          ~faults:(Fault_plan.node_churn ~crash ~recover)
          rng clique2
      in
      let mean = mean_of sweep in
      Table.add_row churn_t
        [
          Printf.sprintf "%.2f" crash;
          Printf.sprintf "%.2f" recover;
          Printf.sprintf "%.2f" a;
          Table.cell_f mean;
          Table.cell_f (mean /. base_mean);
          Table.cell_f (1. /. (a *. a));
        ])
    [ (0.05, 0.45); (0.1, 0.3); (0.2, 0.2) ];
  let out =
    Experiment.add_table out
      (Printf.sprintf
         "engine-level crash/recovery churn on the clique (n = %d, %d reps); \
          fault-free mean = %.2f"
         n2 reps2 base_mean)
      churn_t
  in
  let out =
    Experiment.add_note out
      "churn slowdown tracks the 1/a^2 pair-availability heuristic: a \
       contact only counts when both endpoints are alive."
  in

  (* --- Part 3: hardened harness --- *)
  let failing =
    Inject.failing ~spawns:[ 2 ] (Dynet.of_static ~name:"clique" (Gen.clique 32))
  in
  let sweep = Run.async_spread_sweep ~reps:8 rng failing in
  let finished, censored, failed = Run.sweep_counts sweep in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "hardened sweep with an injected always-raising replicate: %d \
          finished, %d censored, %d failed (first failure: %s) — the sweep \
          survived and kept every other sample."
         finished censored failed
         (match Run.first_failure sweep with Some m -> m | None -> "none"))
  in
  let capped =
    Run.async_spread_sweep ~reps:4 ~max_events:3 rng
      (Dynet.of_static ~name:"clique" (Gen.clique 32))
  in
  let _, capped_censored, _ = Run.sweep_counts capped in
  Experiment.add_note out
    (Printf.sprintf
       "watchdog: a 3-event budget censors %d/4 replicates gracefully \
        instead of hanging or crashing."
       capped_censored)

let experiment =
  {
    Experiment.id = "E13";
    title = "Fault tolerance: thinning self-check, churn, hardened harness";
    claim =
      "per-message loss p is distribution-identical to a clock-rate rescale \
       by 1-p (Eq. 1 thinning) on both engines; churn degrades spread by \
       ~1/a^2; the hardened runner isolates failures and censors runaways";
    run;
  }
