let all =
  [
    E1_upper_bound.experiment;
    E2_tightness.experiment;
    E3_absolute_bound.experiment;
    E4_absolute_tightness.experiment;
    E5_quadratic.experiment;
    E6_dichotomy_g1.experiment;
    E7_dichotomy_g2.experiment;
    E8_star_tail.experiment;
    E9_vs_giakkoupis.experiment;
    E10_static_anchors.experiment;
    E11_corollary.experiment;
    E12_intermittent.experiment;
    E13_faults.experiment;
    A1_protocols.experiment;
    A2_adversary.experiment;
    O1_observation.experiment;
    B1_engine_perf.experiment;
    R1_markovian.experiment;
    F1_figure1.experiment;
    L_lemmas.experiment;
  ]

let ids = List.map (fun e -> e.Experiment.id) all

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt
    (fun e -> String.lowercase_ascii e.Experiment.id = id)
    all

let run_all ?full ?seed ?jobs () =
  List.iter (fun e -> Experiment.print ?full ?seed ?jobs e) all
