(* A1 — protocol ablation: push-only vs pull-only vs push-pull.  The
   paper's algorithm is push-pull (Definition 1) and its dynamic-star
   analysis leans on both directions being available; this ablation
   shows *why*:

   - on the adaptive star G2, pull is what lets the n leaves drain the
     centre: push-only must wait for the centre's own rate-1 clock to
     visit leaves one at a time, Theta(n log n) (coupon collector);
   - symmetric picture on the static star with a leaf source;
   - on regular graphs the three protocols differ by constants only.

   The ablation also cross-checks the generalized cut engine against
   the literal tick engine for each protocol. *)

open Rumor_util
open Rumor_sim

let run ~full rng =
  let n = if full then 256 else 96 in
  let reps = if full then 60 else 30 in
  let table =
    Table.create
      ~aligns:[ Left; Right; Right; Right; Right ]
      [ "network"; "n"; "push-pull"; "push"; "pull" ]
  in
  let measure net protocol =
    let mc =
      Run.async_spread_times ~reps ~horizon:1e5 ~protocol rng net
    in
    Rumor_stats.Descriptive.mean mc.Run.times
  in
  let cases =
    [
      ("G2 (adaptive star)", Rumor_dynamic.Dichotomy.g2 ~n);
      ( "static star (leaf source)",
        {
          (Rumor_dynamic.Dynet.of_static ~name:"star" (Rumor_graph.Gen.star (n + 1)))
          with
          Rumor_dynamic.Dynet.source_hint = Some 1;
        } );
      ( "clique",
        Rumor_dynamic.Dynet.of_static ~name:"clique" (Rumor_graph.Gen.clique n) );
      ( "random 8-regular",
        Rumor_dynamic.Dynet.of_static ~name:"regular"
          (Rumor_graph.Gen.random_connected_regular rng n 8) );
    ]
  in
  let star_gap = ref 0. in
  List.iter
    (fun (label, net) ->
      let pp = measure net Protocol.Push_pull in
      let push = measure net Protocol.Push in
      let pull = measure net Protocol.Pull in
      if label = "G2 (adaptive star)" then star_gap := push /. pp;
      Table.add_row table
        [
          label;
          Table.cell_i net.Rumor_dynamic.Dynet.n;
          Table.cell_f pp;
          Table.cell_f push;
          Table.cell_f pull;
        ])
    cases;
  (* Engine cross-check per protocol on a fixed graph. *)
  let cross = Rumor_dynamic.Dynet.of_static (Rumor_graph.Gen.clique 32) in
  let engine_table =
    Table.create ~aligns:[ Left; Right; Right ]
      [ "protocol"; "cut engine mean"; "tick engine mean" ]
  in
  let engines_ok = ref true in
  List.iter
    (fun protocol ->
      let sample engine =
        let mc =
          Run.async_spread_times ~reps:200 ~engine ~protocol rng cross
        in
        ( Rumor_stats.Descriptive.mean mc.Run.times,
          Rumor_stats.Descriptive.std_error mc.Run.times )
      in
      let mc, sc = sample Run.Cut in
      let mt, st = sample Run.Tick in
      if Float.abs (mc -. mt) > 5. *. sqrt ((sc *. sc) +. (st *. st)) then
        engines_ok := false;
      Table.add_row engine_table
        [ Protocol.to_string protocol; Table.cell_f mc; Table.cell_f mt ])
    Protocol.all;
  let out = Experiment.output_empty in
  let out = Experiment.add_table out "mean spread time by protocol" table in
  let out =
    Experiment.add_table out "cut vs tick engine per protocol (clique 32)"
      engine_table
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "on the adaptive star, push-only pays a %.1fx coupon-collector \
          penalty over push-pull — the pull direction is what Theorem \
          1.7(ii)'s Theta(log n) rests on."
         !star_gap)
  in
  Experiment.add_note out
    (if !engines_ok then
       "generalized cut engine agrees with the literal tick engine for all \
        three protocols."
     else "ENGINE DISAGREEMENT!")

let experiment =
  {
    Experiment.id = "A1";
    title = "Ablation: push vs pull vs push-pull";
    claim =
      "push-pull's bidirectionality is load-bearing on star-like dynamic \
       networks; protocols differ by constants on regular graphs";
    run;
  }
