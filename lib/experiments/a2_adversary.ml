(* A2 — extension: how strong is the paper's hand-crafted
   absolutely-diligent family compared with a greedy adversary that
   re-optimises the topology *every* step under the same degree
   budget?  Both should achieve Theta(n Delta) spread (lambda ~
   2/(Delta+1) per step across a single bridge), so the measured ratio
   greedy/paper should be a constant — evidence that the explicit
   Theorem 1.5 construction already extracts the full power of
   single-bridge degree-bounded adversaries.  Both must also respect
   the Theorem 1.3 bound with rho_bar = 1/(Delta+1). *)

open Rumor_util
open Rumor_dynamic
open Rumor_bounds

let run ~full rng =
  let n = if full then 480 else 240 in
  let reps = if full then 12 else 6 in
  let table =
    Table.create
      ~aligns:[ Right; Right; Right; Right; Right; Right ]
      [ "Delta"; "greedy mean"; "paper mean"; "greedy/paper"; "T_abs"; "bound holds" ]
  in
  let ratios = ref [] in
  let bounds_ok = ref true in
  List.iter
    (fun delta ->
      let rho = 1. /. float_of_int delta in
      if Absolute.admissible ~n ~rho then begin
        let greedy = Adversary.greedy_min_cut ~n ~degree_budget:delta in
        let paper = Absolute.network ~n ~rho in
        let mg = Workloads.measure_async ~reps ~horizon:1e7 rng greedy in
        let mp = Workloads.measure_async ~reps ~horizon:1e7 rng paper in
        let gm = mg.summary.Rumor_stats.Summary.mean in
        let pm = mp.summary.Rumor_stats.Summary.mean in
        let t_abs =
          Bounds.theorem_1_3_closed_form ~n
            ~rho_abs:(1. /. float_of_int (delta + 1))
        in
        let holds =
          mg.summary.Rumor_stats.Summary.max <= t_abs
          && mp.summary.Rumor_stats.Summary.max <= t_abs
        in
        if not holds then bounds_ok := false;
        ratios := (gm /. pm) :: !ratios;
        Table.add_row table
          [
            Table.cell_i delta;
            Table.cell_f gm;
            Table.cell_f pm;
            Table.cell_f (gm /. pm);
            Table.cell_f ~digits:0 t_abs;
            (if holds then "yes" else "VIOLATED");
          ]
      end)
    [ 4; 10; 20 ];
  let out = Experiment.output_empty in
  let out =
    Experiment.add_table out
      (Printf.sprintf
         "greedy per-step adversary vs the Theorem 1.5 construction (n = %d)" n)
      table
  in
  let ratio_spread =
    match !ratios with
    | [] -> 0.
    | l ->
      let mx = List.fold_left Float.max neg_infinity l in
      let mn = List.fold_left Float.min infinity l in
      mx /. mn
  in
  let out =
    Experiment.add_note out
      (Printf.sprintf
         "greedy/paper ratio varies by only %.2fx across the Delta sweep — \
          both are Theta(n Delta): re-optimising every step buys the \
          adversary no more than constants over the paper's construction."
         ratio_spread)
  in
  Experiment.add_note out
    (if !bounds_ok then
       "Theorem 1.3 held (at the sample max) for both adversaries, as it \
        must for any degree-budgeted dynamic network."
     else "THEOREM 1.3 VIOLATED!")

let experiment =
  {
    Experiment.id = "A2";
    title = "Extension: greedy per-step adversary vs Theorem 1.5";
    claim =
      "a per-step re-optimising degree-bounded adversary gains only \
       constants over the paper's explicit construction";
    run;
  }
