(** All registered experiments, in DESIGN.md index order. *)

val all : Experiment.t list

val ids : string list
(** Registered ids, in {!all} order — what the CLI expands "all" to
    and validates comma lists against. *)

val find : string -> Experiment.t option
(** Case-insensitive lookup by id (e.g. "e2"). *)

val run_all : ?full:bool -> ?seed:int -> ?jobs:int -> unit -> unit
(** Print every experiment in order; [jobs] as in {!Experiment.print}. *)
