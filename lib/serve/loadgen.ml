module Json = Rumor_obs.Json
module Clock = Rumor_obs.Clock
module Proto = Rumor_harness.Proto
module Quantile = Rumor_stats.Quantile
module Stream = Rumor_stats.Stream

type config = {
  host : string;
  port : int;
  duration_s : float;
  concurrency : int;
  rate : float option;
  queries : Query.t list;
  stream : bool;
  binary : bool;
}

let default_config ~port ~queries =
  {
    host = "127.0.0.1";
    port;
    duration_s = 5.;
    concurrency = 4;
    rate = None;
    queries;
    stream = false;
    binary = false;
  }

type report = {
  sent : int;
  ok : int;
  hits : int;
  misses : int;
  coalesced : int;
  shed : int;
  errors : int;
  partials : int;
  wall_s : float;
  rps : float;
  mean_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  max_s : float;
}

type conn = {
  fd : Unix.file_descr;
  rdr : Proto.reader;
  line : Buffer.t;
  pending : float Queue.t;  (* send times of unanswered requests *)
  mutable busy : bool;  (* closed loop: one outstanding request *)
}

type state = {
  cfg : config;
  mutable sent : int;
  mutable ok : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable shed : int;
  mutable errors : int;
  mutable partials : int;
  lat : float list ref;
  lat_stream : Stream.t;
  mutable next_query : int;
}

let connect cfg =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Rumor_util.Net.resolve_exn cfg.host, cfg.port));
  Rumor_util.Net.tune_stream_socket fd;
  { fd; rdr = Proto.reader (); line = Buffer.create 256; pending = Queue.create (); busy = false }

let send_query st conn =
  let qs = st.cfg.queries in
  let q = List.nth qs (st.next_query mod List.length qs) in
  st.next_query <- st.next_query + 1;
  let j =
    match Query.to_json q with
    | Json.Obj fields ->
      Json.Obj
        (fields @ if st.cfg.stream then [ ("stream", Json.Bool true) ] else [])
    | j -> j
  in
  let bytes =
    if st.cfg.binary then Proto.frame j
    else Bytes.of_string (Json.to_string j ^ "\n")
  in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write conn.fd bytes !written (len - !written)
  done;
  Queue.add (Clock.now_s ()) conn.pending;
  conn.busy <- true;
  st.sent <- st.sent + 1

let on_response st conn j =
  let str f = Option.bind (Json.member f j) Json.to_string_opt in
  match str "k" with
  | Some "partial" -> st.partials <- st.partials + 1
  | Some k ->
    (match k with
    | "result" -> (
      st.ok <- st.ok + 1;
      match str "cache" with
      | Some "hit" -> st.hits <- st.hits + 1
      | Some "miss" -> st.misses <- st.misses + 1
      | Some "coalesced" -> st.coalesced <- st.coalesced + 1
      | _ -> ())
    | "overloaded" -> st.shed <- st.shed + 1
    | _ -> st.errors <- st.errors + 1);
    (match Queue.take_opt conn.pending with
    | Some t0 ->
      let l = Clock.now_s () -. t0 in
      st.lat := l :: !(st.lat);
      Stream.add st.lat_stream l
    | None -> ());
    conn.busy <- Queue.length conn.pending > 0
  | None -> st.errors <- st.errors + 1

let drain st conn =
  if st.cfg.binary then begin
    let continue = ref true in
    while !continue do
      match Proto.next conn.rdr with
      | Some j -> on_response st conn j
      | None -> continue := false
    done
  end
  else begin
    let continue = ref true in
    while !continue do
      let s = Buffer.contents conn.line in
      match String.index_opt s '\n' with
      | None -> continue := false
      | Some i ->
        Buffer.clear conn.line;
        Buffer.add_string conn.line
          (String.sub s (i + 1) (String.length s - i - 1));
        let doc = String.trim (String.sub s 0 i) in
        if doc <> "" then (
          match Json.parse doc with
          | Ok j -> on_response st conn j
          | Error _ -> st.errors <- st.errors + 1)
    done
  end

let run cfg =
  if cfg.queries = [] then invalid_arg "Loadgen.run: empty query mix";
  if cfg.concurrency < 1 then invalid_arg "Loadgen.run: concurrency >= 1";
  let st =
    {
      cfg;
      sent = 0;
      ok = 0;
      hits = 0;
      misses = 0;
      coalesced = 0;
      shed = 0;
      errors = 0;
      partials = 0;
      lat = ref [];
      lat_stream = Stream.create ();
      next_query = 0;
    }
  in
  let conns = Array.init cfg.concurrency (fun _ -> connect cfg) in
  let started = Clock.now_s () in
  let deadline = started +. cfg.duration_s in
  let interval = Option.map (fun r -> 1. /. r) cfg.rate in
  let next_send = ref started in
  let rr = ref 0 in
  let outstanding () =
    Array.fold_left (fun acc c -> acc + Queue.length c.pending) 0 conns
  in
  (* Send phase, then a short grace period to collect the tail. *)
  let phase = ref `Load in
  let finished = ref false in
  while not !finished do
    let now = Clock.now_s () in
    (match !phase with
    | `Load when now >= deadline ->
      phase := `Drain (now +. Float.min 5. (Float.max 1. cfg.duration_s))
    | `Load -> (
      match interval with
      | None ->
        (* closed loop: refill every idle connection *)
        Array.iter (fun c -> if not c.busy then send_query st c) conns
      | Some dt ->
        (* open loop: paced sends round-robin, regardless of completion *)
        while !next_send <= Clock.now_s () && !phase = `Load do
          send_query st conns.(!rr mod cfg.concurrency);
          incr rr;
          next_send := !next_send +. dt
        done)
    | `Drain until -> if now >= until || outstanding () = 0 then finished := true);
    if not !finished then begin
      let fds = Array.to_list (Array.map (fun c -> c.fd) conns) in
      let timeout =
        match (!phase, interval) with
        | `Load, Some _ -> Float.max 0.001 (!next_send -. Clock.now_s ())
        | _ -> 0.05
      in
      let readable, _, _ =
        match Unix.select fds [] [] timeout with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          let conn = Array.to_list conns |> List.find (fun c -> c.fd = fd) in
          let chunk = Bytes.create 65536 in
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> finished := true (* server went away *)
          | n ->
            if cfg.binary then Proto.feed conn.rdr chunk n
            else Buffer.add_subbytes conn.line chunk 0 n;
            drain st conn
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
            ())
        readable
    end
  done;
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  let wall_s = Clock.now_s () -. started in
  let lats = Array.of_list !(st.lat) in
  let q p =
    if Array.length lats = 0 then Float.nan
    else match Quantile.quantiles lats [ p ] with [ v ] -> v | _ -> Float.nan
  in
  {
    sent = st.sent;
    ok = st.ok;
    hits = st.hits;
    misses = st.misses;
    coalesced = st.coalesced;
    shed = st.shed;
    errors = st.errors;
    partials = st.partials;
    wall_s;
    rps = (if wall_s > 0. then float_of_int st.ok /. wall_s else 0.);
    mean_s = Stream.mean st.lat_stream;
    p50_s = q 0.5;
    p90_s = q 0.9;
    p99_s = q 0.99;
    max_s = Stream.max st.lat_stream;
  }

let report_json (r : report) =
  Json.Obj
    [
      ("k", Json.String "loadgen");
      ("sent", Json.Int r.sent);
      ("ok", Json.Int r.ok);
      ("hits", Json.Int r.hits);
      ("misses", Json.Int r.misses);
      ("coalesced", Json.Int r.coalesced);
      ("shed", Json.Int r.shed);
      ("errors", Json.Int r.errors);
      ("partials", Json.Int r.partials);
      ("wall_s", Json.Float r.wall_s);
      ("rps", Json.Float r.rps);
      ("mean_s", Json.Float r.mean_s);
      ("p50_s", Json.Float r.p50_s);
      ("p90_s", Json.Float r.p90_s);
      ("p99_s", Json.Float r.p99_s);
      ("max_s", Json.Float r.max_s);
    ]
