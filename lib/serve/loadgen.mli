(** Load generator for the serve daemon: drives a query mix over N
    concurrent connections and reports throughput and latency
    quantiles.

    Two pacing disciplines: {e closed loop} ([rate = None] — every
    connection keeps exactly one request outstanding, so offered load
    adapts to service time) and {e open loop} ([rate = Some r] —
    sends are scheduled at fixed [1/r] intervals round-robin across
    connections regardless of completions, which is what exposes
    queueing and shedding behaviour).  After [duration_s] of sends a
    short grace period collects in-flight tails.  Single-threaded:
    one [select] multiplexes all connections. *)

type config = {
  host : string;  (** numeric or a resolvable hostname *)
  port : int;
  duration_s : float;
  concurrency : int;
  rate : float option;  (** [Some r] = open loop at [r] req/s total *)
  queries : Query.t list;  (** cycled round-robin; must be non-empty *)
  stream : bool;  (** request partial quantile updates *)
  binary : bool;  (** length-prefixed frames instead of JSONL *)
}

val default_config : port:int -> queries:Query.t list -> config
(** 127.0.0.1, 5 s, 4 connections, closed loop, JSONL. *)

type report = {
  sent : int;
  ok : int;  (** terminal [result] responses *)
  hits : int;
  misses : int;
  coalesced : int;  (** by the server's [cache] field *)
  shed : int;  (** [overloaded] responses *)
  errors : int;
  partials : int;  (** streamed partial updates (not terminal) *)
  wall_s : float;
  rps : float;  (** [ok / wall_s] *)
  mean_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  max_s : float;  (** request latency, send to terminal response *)
}

val run : config -> report
(** @raise Invalid_argument on an empty mix or [concurrency < 1].
    @raise Unix.Unix_error when the server cannot be reached. *)

val report_json : report -> Rumor_obs.Json.t
