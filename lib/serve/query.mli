(** A spread-time query: the complete, serializable description of one
    Monte-Carlo sweep — family, size, protocol knobs, fault plan,
    replicate count and the quantile points to report.

    The canonical compact-JSON rendering ({!to_json}) is the
    {!fingerprint} input, so two queries collide exactly when they
    would run the same sweep: unknown wire fields ([op], [stream])
    are dropped by {!of_json} and field order is fixed.  Execution
    ({!sweep}) goes through {!Rumor_sim.Run.async_spread_sweep} with
    [Rng.create seed], inheriting its split-seed determinism: the
    served sample is bit-identical to the offline CLI's for the same
    query, for any [jobs], and a [reps]-prefix of any larger run. *)

module Json = Rumor_obs.Json
module Family = Rumor_dynamic.Family
module Protocol = Rumor_sim.Protocol
module Run = Rumor_sim.Run
module Fault_plan = Rumor_faults.Fault_plan

type t = {
  family : string;  (** lower-case, one of {!Family.known} *)
  n : int;
  rho : float;
  degree : int;
  p : float;
  q : float;
  protocol : Protocol.t;
  engine : Run.engine;
  rate : float;
  reps : int;
  horizon : float;
  seed : int;
  max_events : int option;
  loss : float;
  crash : float;
  recover : float;
  slow_frac : float;
  slow_rate : float;
  part_from : int;
  part_until : int;
  part_frac : float;
  points : float list;  (** quantile points, each in [[0,1]] *)
  ci_width : float option;
      (** adaptive stopping: stop the server's chunked compute once the
          CI half-width on the mean spread time reaches this absolute
          target ([reps] stays the budget).  [None] (the default) is
          the fixed-count path.  Rendered into the canonical form only
          when present, so every pre-adaptive query keeps its
          fingerprint — old stores stay warm. *)
  ci_level : float;  (** confidence level of the stopping CI (0.95) *)
}

val default_points : float list
(** [[0.5; 0.9; 0.99]] *)

val default : family:string -> n:int -> t
(** The CLI's defaults: push–pull on the cut engine, rate 1, 30
    replicates, seed 2020, no faults, {!default_points}. *)

val validate : t -> (t, string) result

val to_json : t -> Json.t
(** Canonical rendering (fixed field order; [max_events] omitted when
    [None]) — the fingerprint input. *)

val of_json : Json.t -> (t, string) result
(** Parse a wire query: [family] and [n] are required, everything else
    defaults; unknown fields are ignored.  Validates. *)

val fingerprint : t -> int64
(** 64-bit FNV/SplitMix fold of the canonical rendering. *)

val key : t -> string
(** {!fingerprint} as 16 hex digits — the cache key. *)

val family_params : t -> Family.params

val fault_plan : t -> Fault_plan.t
(** Mirrors the [faults] subcommand: churn when [crash] or [recover]
    is positive; the first [round(slow_frac*n)] nodes tick at
    [slow_rate]; one partition window cutting off [round(part_frac*n)]
    nodes when [part_until > part_from]. *)

val sweep : ?jobs:int -> ?checkpoint:string -> ?reps:int -> t -> Run.sweep
(** Run (or resume) the query's sweep; [reps] overrides [q.reps] so a
    server can compute in chunks — by the prefix property the chunks
    concatenate into exactly the offline sample. *)
