(** The memoized result store: an in-memory LRU map from query
    fingerprints to finished sweep summaries, journaled to a
    crash-safe {!Rumor_harness.Wal} so a restarted server serves its
    warm set again.

    {b Journal.}  One [results.wal] under the cache directory holds
    [{"k":"result",...}] and [{"k":"evict","fp":...}] records; the
    live set is (results − later evicts), replayed on {!open_} in
    append order (which is LRU order: re-adds and the compactor both
    preserve it).  Quantile vectors ride as [%h] hex-float literals —
    the cache is bit-transparent by construction, never through a
    decimal round trip.

    {b Compaction.}  When live entries fall below half the journal's
    records (and the journal is non-trivial), or recovery quarantined
    a corrupt record, the live set is rewritten to a fresh WAL and
    atomically renamed over the old one — eviction churn cannot grow
    the journal without bound, and a torn tail never survives a
    restart.

    Not thread-safe: the server confines the store to its event-loop
    domain. *)

type entry = {
  query : Query.t;
  quantiles : float array;  (** one per [query.points], bit-exact *)
  reps : int;
  finished : int;
  censored : int;
  failed : int;
  wall_s : float;  (** compute wall-clock of the original miss *)
}

type t

val open_ : ?fsync:bool -> ?cap:int -> dir:string -> unit -> t
(** Open (creating the directory and journal as needed) and replay.
    [cap] (default 512) bounds the live set; [fsync] (default [true])
    is forwarded to the WAL.
    @raise Invalid_argument if [cap < 1].
    @raise Wal.Bad_magic if [results.wal] is not a WAL. *)

val find : t -> string -> entry option
(** Lookup by {!Query.key}; a hit refreshes the entry's LRU stamp. *)

val add : t -> string -> entry -> unit
(** Insert, journalling the result (and any evictions it forces).
    A duplicate fingerprint is ignored — results are immutable. *)

val size : t -> int

val evictions : t -> int
(** Evictions performed over this handle's lifetime. *)

val close : t -> unit
