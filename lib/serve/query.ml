module Json = Rumor_obs.Json
module Family = Rumor_dynamic.Family
module Protocol = Rumor_sim.Protocol
module Run = Rumor_sim.Run
module Fault_plan = Rumor_faults.Fault_plan
module Rng = Rumor_rng.Rng
module Splitmix64 = Rumor_rng.Splitmix64

type t = {
  family : string;
  n : int;
  rho : float;
  degree : int;
  p : float;
  q : float;
  protocol : Protocol.t;
  engine : Run.engine;
  rate : float;
  reps : int;
  horizon : float;
  seed : int;
  max_events : int option;
  loss : float;
  crash : float;
  recover : float;
  slow_frac : float;
  slow_rate : float;
  part_from : int;
  part_until : int;
  part_frac : float;
  points : float list;
  ci_width : float option;
      (* adaptive stopping target (absolute CI half-width); [None] =
         fixed count.  Rendered only when present so pre-adaptive
         queries keep their fingerprints. *)
  ci_level : float;
}

let default_points = [ 0.5; 0.9; 0.99 ]

let default ~family ~n =
  {
    family;
    n;
    rho = 0.25;
    degree = 8;
    p = 0.05;
    q = 0.2;
    protocol = Protocol.Push_pull;
    engine = Run.Cut;
    rate = 1.0;
    reps = 30;
    horizon = 1e5;
    seed = 2020;
    max_events = None;
    loss = 0.;
    crash = 0.;
    recover = 0.;
    slow_frac = 0.;
    slow_rate = 0.25;
    part_from = 0;
    part_until = 0;
    part_frac = 0.5;
    points = default_points;
    ci_width = None;
    ci_level = 0.95;
  }

(* --- validation -------------------------------------------------- *)

let prob01 name v =
  if v >= 0. && v <= 1. then Ok v
  else Error (Printf.sprintf "%s must be in [0,1], got %g" name v)

let ( let* ) = Result.bind

let validate q =
  let* _ =
    if Family.is_known q.family then Ok ()
    else Error (Printf.sprintf "unknown family %S" q.family)
  in
  let* _ = if q.n >= 2 then Ok () else Error "n must be >= 2" in
  let* _ = if q.reps >= 1 then Ok () else Error "reps must be >= 1" in
  let* _ = if q.degree >= 1 then Ok () else Error "degree must be >= 1" in
  let* _ =
    if q.horizon > 0. then Ok () else Error "horizon must be positive"
  in
  let* _ =
    if q.rate > 0. && Float.is_finite q.rate then Ok ()
    else Error "rate must be positive and finite"
  in
  let* _ =
    if q.slow_rate > 0. && Float.is_finite q.slow_rate then Ok ()
    else Error "slow_rate must be positive and finite"
  in
  let* _ = prob01 "p" q.p in
  let* _ = prob01 "q" q.q in
  let* _ = prob01 "rho" q.rho in
  let* _ =
    if q.loss >= 0. && q.loss < 1. then Ok ()
    else Error (Printf.sprintf "loss must be in [0,1), got %g" q.loss)
  in
  let* _ = prob01 "crash" q.crash in
  let* _ = prob01 "recover" q.recover in
  let* _ = prob01 "slow_frac" q.slow_frac in
  let* _ = prob01 "part_frac" q.part_frac in
  let* _ =
    match q.max_events with
    | Some m when m < 1 -> Error "max_events must be >= 1"
    | _ -> Ok ()
  in
  let* _ =
    match q.ci_width with
    | Some w when not (Float.is_finite w && w > 0.) ->
      Error "ci_width must be positive and finite"
    | _ -> Ok ()
  in
  let* _ =
    if q.ci_level > 0. && q.ci_level < 1. then Ok ()
    else Error "ci_level must lie in (0, 1)"
  in
  let* _ =
    if q.points = [] then Error "points must be non-empty"
    else if List.for_all (fun x -> x >= 0. && x <= 1.) q.points then Ok ()
    else Error "points must all be in [0,1]"
  in
  Ok q

(* --- wire codec -------------------------------------------------- *)

let protocol_of_string = function
  | "push" -> Some Protocol.Push
  | "pull" -> Some Protocol.Pull
  | "pushpull" | "push-pull" | "push_pull" -> Some Protocol.Push_pull
  | _ -> None

let protocol_to_string = function
  | Protocol.Push -> "push"
  | Protocol.Pull -> "pull"
  | Protocol.Push_pull -> "pushpull"

let engine_of_string = function
  | "cut" -> Some Run.Cut
  | "tick" -> Some Run.Tick
  | _ -> None

let engine_to_string = function Run.Cut -> "cut" | Run.Tick -> "tick"

(* Canonical field order: [to_json] is the fingerprint input, so the
   rendering must be a pure function of the query value — unknown wire
   fields ([op], [stream], ...) never survive the round trip. *)
let to_json q =
  Json.Obj
    ([
       ("family", Json.String (String.lowercase_ascii q.family));
       ("n", Json.Int q.n);
       ("rho", Json.Float q.rho);
       ("degree", Json.Int q.degree);
       ("p", Json.Float q.p);
       ("q", Json.Float q.q);
       ("protocol", Json.String (protocol_to_string q.protocol));
       ("engine", Json.String (engine_to_string q.engine));
       ("rate", Json.Float q.rate);
       ("reps", Json.Int q.reps);
       ("horizon", Json.Float q.horizon);
       ("seed", Json.Int q.seed);
     ]
    @ (match q.max_events with
      | Some m -> [ ("max_events", Json.Int m) ]
      | None -> [])
    @ [
        ("loss", Json.Float q.loss);
        ("crash", Json.Float q.crash);
        ("recover", Json.Float q.recover);
        ("slow_frac", Json.Float q.slow_frac);
        ("slow_rate", Json.Float q.slow_rate);
        ("part_from", Json.Int q.part_from);
        ("part_until", Json.Int q.part_until);
        ("part_frac", Json.Float q.part_frac);
        ("points", Json.List (List.map (fun x -> Json.Float x) q.points));
      ]
    (* Adaptive fields render only when requested: the canonical form
       (hence fingerprint) of every pre-adaptive query is unchanged. *)
    @
    match q.ci_width with
    | Some w ->
      [ ("ci_width", Json.Float w); ("ci_level", Json.Float q.ci_level) ]
    | None -> [])

let of_json j =
  match Json.obj_opt j with
  | None -> Error "query must be a JSON object"
  | Some _ ->
    let str f = Option.bind (Json.member f j) Json.to_string_opt in
    let int f = Option.bind (Json.member f j) Json.to_int_opt in
    let flt f = Option.bind (Json.member f j) Json.to_float_opt in
    let* family =
      match str "family" with
      | Some f -> Ok (String.lowercase_ascii f)
      | None -> Error "missing field: family"
    in
    let* n =
      match int "n" with Some n -> Ok n | None -> Error "missing field: n"
    in
    let d = default ~family ~n in
    let opt get field dflt = Option.value (get field) ~default:dflt in
    let* protocol =
      match str "protocol" with
      | None -> Ok d.protocol
      | Some s -> (
        match protocol_of_string s with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown protocol %S" s))
    in
    let* engine =
      match str "engine" with
      | None -> Ok d.engine
      | Some s -> (
        match engine_of_string s with
        | Some e -> Ok e
        | None -> Error (Printf.sprintf "unknown engine %S" s))
    in
    let* points =
      match Json.member "points" j with
      | None -> Ok d.points
      | Some (Json.List l) ->
        List.fold_right
          (fun x acc ->
            let* acc = acc in
            match Json.to_float_opt x with
            | Some f -> Ok (f :: acc)
            | None -> Error "points must be numbers")
          l (Ok [])
      | Some _ -> Error "points must be a list"
    in
    validate
      {
        family;
        n;
        rho = opt flt "rho" d.rho;
        degree = opt int "degree" d.degree;
        p = opt flt "p" d.p;
        q = opt flt "q" d.q;
        protocol;
        engine;
        rate = opt flt "rate" d.rate;
        reps = opt int "reps" d.reps;
        horizon = opt flt "horizon" d.horizon;
        seed = opt int "seed" d.seed;
        max_events = int "max_events";
        loss = opt flt "loss" d.loss;
        crash = opt flt "crash" d.crash;
        recover = opt flt "recover" d.recover;
        slow_frac = opt flt "slow_frac" d.slow_frac;
        slow_rate = opt flt "slow_rate" d.slow_rate;
        part_from = opt int "part_from" d.part_from;
        part_until = opt int "part_until" d.part_until;
        part_frac = opt flt "part_frac" d.part_frac;
        points;
        ci_width = flt "ci_width";
        ci_level = opt flt "ci_level" d.ci_level;
      }

(* --- fingerprint ------------------------------------------------- *)

let fingerprint q =
  let s = Json.to_string (to_json q) in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Splitmix64.mix
          Int64.(
            add
              (logxor !h (of_int (Char.code c)))
              Splitmix64.golden_gamma))
    s;
  !h

let key q = Printf.sprintf "%016Lx" (fingerprint q)

(* --- execution --------------------------------------------------- *)

let family_params q =
  {
    Family.family = q.family;
    n = q.n;
    rho = q.rho;
    degree = q.degree;
    p = q.p;
    q = q.q;
    seed = q.seed;
  }

(* Mirrors the [faults] subcommand's plan construction exactly, so a
   served query and the offline CLI agree replicate-for-replicate. *)
let fault_plan q =
  let churn =
    if q.crash > 0. || q.recover > 0. then
      Some { Fault_plan.crash = q.crash; recover = q.recover }
    else None
  in
  let node_rate =
    if q.slow_frac > 0. then begin
      let cutoff =
        int_of_float (Float.round (q.slow_frac *. float_of_int q.n))
      in
      Some (fun u -> if u < cutoff then q.slow_rate else 1.0)
    end
    else None
  in
  let partitions =
    if q.part_until > q.part_from then begin
      let cutoff =
        int_of_float (Float.round (q.part_frac *. float_of_int q.n))
      in
      [
        {
          Fault_plan.from_step = q.part_from;
          until_step = q.part_until;
          side = (fun u -> u < cutoff);
        };
      ]
    end
    else []
  in
  Fault_plan.make ~loss:q.loss ?node_rate ?churn ~partitions ()

let sweep ?jobs ?checkpoint ?reps q =
  let reps = Option.value reps ~default:q.reps in
  let net = Family.build (family_params q) in
  Run.async_spread_sweep ?jobs ~reps ~horizon:q.horizon ~engine:q.engine
    ~protocol:q.protocol ~rate:q.rate ~faults:(fault_plan q)
    ?max_events:q.max_events ?checkpoint (Rng.create q.seed) net
