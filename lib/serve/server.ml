module Json = Rumor_obs.Json
module Clock = Rumor_obs.Clock
module Metrics = Rumor_obs.Metrics
module Proto = Rumor_harness.Proto
module Wal = Rumor_harness.Wal
module Provenance = Rumor_harness.Provenance
module Run = Rumor_sim.Run
module Adaptive = Rumor_stats.Adaptive
module Stream = Rumor_stats.Stream

type config = {
  dir : string;
  host : string;
  port : int;
  queue_cap : int;
  cache_cap : int;
  jobs : int option;
  chunk : int;
  read_timeout_s : float;
  throttle_s : float;
  max_n : int;
  max_reps : int;
  fsync : bool;
}

let default_config ~dir =
  {
    dir;
    host = "127.0.0.1";
    port = 0;
    queue_cap = 64;
    cache_cap = 512;
    jobs = None;
    chunk = 8;
    read_timeout_s = 30.;
    throttle_s = 0.;
    max_n = 65536;
    max_reps = 10_000;
    fsync = true;
  }

type counters = {
  requests : int;
  hits : int;
  misses : int;
  coalesced : int;
  shed : int;
  stalled_drops : int;
  errors : int;
}

(* --- connections -------------------------------------------------- *)

type mode = Unknown | Jsonl | Binary

type conn = {
  fd : Unix.file_descr;
  mutable mode : mode;
  rdr : Proto.reader;  (* binary reassembly *)
  line : Buffer.t;  (* jsonl reassembly *)
  out : Buffer.t;
  mutable last_progress : float;
  mutable subs : int;  (* in-flight jobs this conn awaits *)
  mutable closed : bool;
}

let max_out = 4 * 1024 * 1024

(* --- jobs --------------------------------------------------------- *)

type waiter = {
  w_conn : conn;
  w_role : string;  (* "miss" | "coalesced" *)
  w_stream : bool;
  w_arrived : float;
}

type job = {
  j_fp : string;
  j_query : Query.t;
  mutable j_waiters : waiter list;
}

type event =
  | Partial of {
      fp : string;
      done_reps : int;
      finished : int;
      quantiles : float array;
    }
  | Done of { fp : string; entry : Store.entry }
  | Failed of { fp : string; error : string }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  store : Store.t;
  mutable conns : conn list;
  inflight : (string, job) Hashtbl.t;
  (* admission queue + compute-domain mailbox, both [lock]-guarded *)
  lock : Mutex.t;
  queue : job Queue.t;
  mutable events : event list;  (* newest first *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  started_at : float;
  (* authoritative counters: manifest and [stats] work with the
     Metrics subsystem disabled; [m_*] mirrors feed bench reports *)
  mutable requests : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable shed : int;
  mutable stalled_drops : int;
  mutable errors : int;
  m_requests : Metrics.counter;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_coalesced : Metrics.counter;
  m_shed : Metrics.counter;
  m_stalled : Metrics.counter;
  m_errors : Metrics.counter;
  m_latency : Metrics.histogram;
}

let latency_buckets =
  [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.; 3.; 10.; 30. |]

let create config =
  if config.queue_cap < 1 then invalid_arg "Server.create: queue_cap >= 1";
  if config.chunk < 1 then invalid_arg "Server.create: chunk >= 1";
  Metrics.enable ();
  let store =
    Store.open_ ~fsync:config.fsync ~cap:config.cache_cap ~dir:config.dir ()
  in
  (* Checkpoints of in-progress sweeps live beside the journal so a
     killed server resumes a half-computed query bit-identically. *)
  (let cp = Filename.concat config.dir "cp" in
   try Unix.mkdir cp 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr =
    Unix.ADDR_INET (Rumor_util.Net.resolve_exn config.host, config.port)
  in
  (try Unix.bind listen_fd addr
   with e ->
     Unix.close listen_fd;
     Store.close store;
     raise e);
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    config;
    listen_fd;
    bound_port;
    store;
    conns = [];
    inflight = Hashtbl.create 16;
    lock = Mutex.create ();
    queue = Queue.create ();
    events = [];
    wake_r;
    wake_w;
    stopping = Atomic.make false;
    started_at = Clock.now_s ();
    requests = 0;
    hits = 0;
    misses = 0;
    coalesced = 0;
    shed = 0;
    stalled_drops = 0;
    errors = 0;
    m_requests = Metrics.counter "harness.serve.requests";
    m_hits = Metrics.counter "harness.serve.cache_hits";
    m_misses = Metrics.counter "harness.serve.cache_misses";
    m_coalesced = Metrics.counter "harness.serve.coalesced";
    m_shed = Metrics.counter "harness.serve.shed";
    m_stalled = Metrics.counter "harness.serve.stalled_drops";
    m_errors = Metrics.counter "harness.serve.errors";
    m_latency =
      Metrics.histogram ~buckets:latency_buckets "harness.serve.latency_s";
  }

let port t = t.bound_port

let counters t =
  {
    requests = t.requests;
    hits = t.hits;
    misses = t.misses;
    coalesced = t.coalesced;
    shed = t.shed;
    stalled_drops = t.stalled_drops;
    errors = t.errors;
  }

let wake t =
  (* Signal-safe and domain-safe: one byte into the self-pipe. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

let stop t =
  Atomic.set t.stopping true;
  wake t

(* --- compute domain ----------------------------------------------- *)

let post t ev =
  Mutex.lock t.lock;
  t.events <- ev :: t.events;
  Mutex.unlock t.lock;
  wake t

let checkpoint_path t fp =
  Filename.concat (Filename.concat t.config.dir "cp") (fp ^ ".ckpt")

(* Chunked execution: [reps = k] then [k + chunk] then ... resuming the
   same checkpoint each round.  By the sweep's resume + prefix
   guarantees the concatenation is bit-identical to one offline
   [Run.async_spread_sweep] call at the full replicate count.

   When the query carries [ci_width = Some w] the chunk boundary doubles
   as an adaptive stopping decision: once the CI half-width on the mean
   spread time over the prefix reaches [w] (at [ci_level]), the loop
   stops early and the store entry records the actually consumed
   prefix.  Because the decision only ever truncates to a replicate
   prefix, the served sample stays bit-identical to the same prefix of
   the fixed-count run. *)
let adaptive_stop (q : Query.t) ~consumed sweep =
  match q.Query.ci_width with
  | None -> false
  | Some w ->
    let config =
      Adaptive.config ~level:q.Query.ci_level
        ~min_reps:(min 16 q.Query.reps) ~max_reps:q.Query.reps
        (Adaptive.Abs w)
    in
    let s = Stream.create () in
    Array.iter (Stream.add s) (Run.usable_times sweep);
    (match
       Adaptive.decide config ~consumed ~used:(Stream.count s)
         ~mean:(Stream.mean s) ~sd:(Stream.stddev s)
     with
     | Adaptive.Stop Adaptive.Converged -> true
     | Adaptive.Stop Adaptive.Budget | Adaptive.Continue -> false)

let compute t (job : job) =
  let q = job.j_query in
  let fp = job.j_fp in
  let cp = checkpoint_path t fp in
  let t0 = Clock.now_s () in
  try
    let k = ref 0 in
    let last = ref None in
    let aborted = ref false in
    let converged = ref false in
    while !k < q.reps && not !aborted && not !converged do
      if Atomic.get t.stopping then aborted := true
      else begin
        if t.config.throttle_s > 0. then Unix.sleepf t.config.throttle_s;
        let k' = min q.reps (!k + t.config.chunk) in
        let sweep =
          Query.sweep ?jobs:t.config.jobs ~checkpoint:cp ~reps:k' q
        in
        k := k';
        last := Some sweep;
        if adaptive_stop q ~consumed:!k sweep then converged := true
        else if !k < q.reps then begin
          let finished, _, _ = Run.sweep_counts sweep in
          post t
            (Partial
               {
                 fp;
                 done_reps = !k;
                 finished;
                 quantiles = Run.quantiles_of_sweep sweep q.points;
               })
        end
      end
    done;
    if !aborted then post t (Failed { fp; error = "server shutting down" })
    else begin
      let sweep = Option.get !last in
      let finished, censored, failed = Run.sweep_counts sweep in
      let entry =
        {
          Store.query = q;
          quantiles = Run.quantiles_of_sweep sweep q.points;
          reps = !k;
          finished;
          censored;
          failed;
          wall_s = Clock.now_s () -. t0;
        }
      in
      (* The checkpoint only matters for crash resume; the WAL-journaled
         store is the durable artifact now. *)
      (try Sys.remove cp with Sys_error _ -> ());
      post t (Done { fp; entry })
    end
  with e -> post t (Failed { fp; error = Printexc.to_string e })

let compute_loop t =
  let rec go () =
    if Atomic.get t.stopping then ()
    else begin
      Mutex.lock t.lock;
      let job = Queue.take_opt t.queue in
      Mutex.unlock t.lock;
      match job with
      | Some job ->
        compute t job;
        go ()
      | None ->
        Unix.sleepf 0.02;
        go ()
    end
  in
  go ()

(* --- responses ---------------------------------------------------- *)

let float_list a = Json.List (List.map (fun x -> Json.Float x) a)

let hex_list a =
  Json.List
    (List.map (fun x -> Json.String (Printf.sprintf "%h" x)) a)

let result_json ~fp ~cache (e : Store.entry) =
  let qs = Array.to_list e.quantiles in
  Json.Obj
    [
      ("k", Json.String "result");
      ("fp", Json.String fp);
      ("cache", Json.String cache);
      ("reps", Json.Int e.reps);
      ("finished", Json.Int e.finished);
      ("censored", Json.Int e.censored);
      ("failed", Json.Int e.failed);
      ("points", float_list e.query.Query.points);
      ("quantiles", float_list qs);
      ("quantiles_hex", hex_list qs);
      ("wall_s", Json.Float e.wall_s);
    ]

let partial_json ~fp ~done_reps ~reps ~finished quantiles =
  Json.Obj
    [
      ("k", Json.String "partial");
      ("fp", Json.String fp);
      ("done", Json.Int done_reps);
      ("reps", Json.Int reps);
      ("finished", Json.Int finished);
      ("quantiles", float_list (Array.to_list quantiles));
    ]

let error_json msg =
  Json.Obj [ ("k", Json.String "error"); ("error", Json.String msg) ]

let drop_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns
  end

let flush_out conn =
  let len = Buffer.length conn.out in
  if len > 0 && not conn.closed then begin
    let b = Buffer.to_bytes conn.out in
    match Unix.write conn.fd b 0 len with
    | n ->
      Buffer.clear conn.out;
      if n < len then Buffer.add_subbytes conn.out b n (len - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> conn.closed <- true
  end

let respond t conn json =
  if not conn.closed then begin
    (match conn.mode with
    | Binary -> Buffer.add_bytes conn.out (Proto.frame json)
    | Jsonl | Unknown ->
      Buffer.add_string conn.out (Json.to_string json);
      Buffer.add_char conn.out '\n');
    if Buffer.length conn.out > max_out then drop_conn t conn
    else flush_out conn
  end

(* --- request handling --------------------------------------------- *)

let stats_json t =
  Json.Obj
    [
      ("k", Json.String "stats");
      ("uptime_s", Json.Float (Clock.now_s () -. t.started_at));
      ("requests", Json.Int t.requests);
      ("hits", Json.Int t.hits);
      ("misses", Json.Int t.misses);
      ("coalesced", Json.Int t.coalesced);
      ("shed", Json.Int t.shed);
      ("stalled_drops", Json.Int t.stalled_drops);
      ("errors", Json.Int t.errors);
      ("cache_size", Json.Int (Store.size t.store));
      ("evictions", Json.Int (Store.evictions t.store));
      ("queue", Json.Int (Queue.length t.queue));
      ("inflight", Json.Int (Hashtbl.length t.inflight));
    ]

let observe_latency t arrived =
  Metrics.observe t.m_latency (Clock.now_s () -. arrived)

let fail_request t conn msg =
  t.errors <- t.errors + 1;
  Metrics.incr t.m_errors;
  respond t conn (error_json msg)

let handle_query t conn j =
  let stream =
    match Json.member "stream" j with Some (Json.Bool b) -> b | _ -> false
  in
  match Query.of_json j with
  | Error e -> fail_request t conn e
  | Ok q when q.Query.n > t.config.max_n ->
    fail_request t conn
      (Printf.sprintf "n %d exceeds server limit %d" q.Query.n t.config.max_n)
  | Ok q when q.Query.reps > t.config.max_reps ->
    fail_request t conn
      (Printf.sprintf "reps %d exceeds server limit %d" q.Query.reps
         t.config.max_reps)
  | Ok q -> (
    let fp = Query.key q in
    let arrived = Clock.now_s () in
    match Store.find t.store fp with
    | Some entry ->
      t.hits <- t.hits + 1;
      Metrics.incr t.m_hits;
      respond t conn (result_json ~fp ~cache:"hit" entry);
      observe_latency t arrived
    | None -> (
      match Hashtbl.find_opt t.inflight fp with
      | Some job ->
        t.coalesced <- t.coalesced + 1;
        Metrics.incr t.m_coalesced;
        conn.subs <- conn.subs + 1;
        job.j_waiters <-
          { w_conn = conn; w_role = "coalesced"; w_stream = stream; w_arrived = arrived }
          :: job.j_waiters
      | None ->
        let depth = Mutex.protect t.lock (fun () -> Queue.length t.queue) in
        if depth >= t.config.queue_cap then begin
          t.shed <- t.shed + 1;
          Metrics.incr t.m_shed;
          respond t conn
            (Json.Obj
               [
                 ("k", Json.String "overloaded");
                 ("queue", Json.Int depth);
                 ("capacity", Json.Int t.config.queue_cap);
               ])
        end
        else begin
          t.misses <- t.misses + 1;
          Metrics.incr t.m_misses;
          conn.subs <- conn.subs + 1;
          let job =
            {
              j_fp = fp;
              j_query = q;
              j_waiters =
                [ { w_conn = conn; w_role = "miss"; w_stream = stream; w_arrived = arrived } ];
            }
          in
          Hashtbl.replace t.inflight fp job;
          Mutex.protect t.lock (fun () -> Queue.add job t.queue)
        end))

let handle_request t conn j =
  t.requests <- t.requests + 1;
  Metrics.incr t.m_requests;
  let op =
    match Option.bind (Json.member "op" j) Json.to_string_opt with
    | Some op -> op
    | None -> "query"
  in
  match op with
  | "ping" -> respond t conn (Json.Obj [ ("k", Json.String "pong") ])
  | "stats" -> respond t conn (stats_json t)
  | "query" -> handle_query t conn j
  | other -> fail_request t conn (Printf.sprintf "unknown op %S" other)

(* --- events from the compute domain ------------------------------- *)

let settle_waiter t fp entry w =
  if not w.w_conn.closed then begin
    respond t w.w_conn (result_json ~fp ~cache:w.w_role entry);
    observe_latency t w.w_arrived
  end;
  w.w_conn.subs <- w.w_conn.subs - 1

let handle_event t = function
  | Partial { fp; done_reps; finished; quantiles } -> (
    match Hashtbl.find_opt t.inflight fp with
    | None -> ()
    | Some job ->
      let reps = job.j_query.Query.reps in
      List.iter
        (fun w ->
          if w.w_stream && not w.w_conn.closed then
            respond t w.w_conn
              (partial_json ~fp ~done_reps ~reps ~finished quantiles))
        job.j_waiters)
  | Done { fp; entry } -> (
    Store.add t.store fp entry;
    match Hashtbl.find_opt t.inflight fp with
    | None -> ()
    | Some job ->
      Hashtbl.remove t.inflight fp;
      List.iter (settle_waiter t fp entry) (List.rev job.j_waiters))
  | Failed { fp; error } -> (
    match Hashtbl.find_opt t.inflight fp with
    | None -> ()
    | Some job ->
      Hashtbl.remove t.inflight fp;
      t.errors <- t.errors + 1;
      Metrics.incr t.m_errors;
      List.iter
        (fun w ->
          if not w.w_conn.closed then
            respond t w.w_conn (error_json ("compute failed: " ^ error));
          w.w_conn.subs <- w.w_conn.subs - 1)
        (List.rev job.j_waiters))

let drain_events t =
  let evs =
    Mutex.protect t.lock (fun () ->
        let evs = t.events in
        t.events <- [];
        List.rev evs)
  in
  List.iter (handle_event t) evs

(* --- input -------------------------------------------------------- *)

let parse_and_handle t conn payload =
  let payload = String.trim payload in
  if payload <> "" then
    match Json.parse payload with
    | Ok j -> handle_request t conn j
    | Error e -> fail_request t conn ("bad request: " ^ e)

let drain_jsonl t conn =
  let continue = ref true in
  while !continue && not conn.closed do
    let s = Buffer.contents conn.line in
    match String.index_opt s '\n' with
    | None -> continue := false
    | Some i ->
      Buffer.clear conn.line;
      Buffer.add_string conn.line
        (String.sub s (i + 1) (String.length s - i - 1));
      parse_and_handle t conn (String.sub s 0 i)
  done

let drain_binary t conn =
  let continue = ref true in
  while !continue && not conn.closed do
    match Proto.next conn.rdr with
    | Some j -> handle_request t conn j
    | None -> continue := false
    | exception Proto.Protocol_error e ->
      fail_request t conn ("bad frame: " ^ e);
      flush_out conn;
      drop_conn t conn;
      continue := false
  done

let on_readable t conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_conn t conn
  | n ->
    conn.last_progress <- Clock.now_s ();
    if conn.mode = Unknown then begin
      (* First byte decides the wire mode: a JSON object or whitespace
         opens a JSONL session; anything else is a length prefix (a
         leading '{' would imply a > [max_frame] length, so the two
         framings cannot be confused). *)
      let c = Bytes.get chunk 0 in
      conn.mode <-
        (if c = '{' || c = ' ' || c = '\t' || c = '\r' || c = '\n' then Jsonl
         else Binary)
    end;
    (match conn.mode with
    | Jsonl ->
      Buffer.add_subbytes conn.line chunk 0 n;
      drain_jsonl t conn
    | Binary ->
      Proto.feed conn.rdr chunk n;
      drain_binary t conn
    | Unknown -> ())
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn t conn

(* A connection is stalled when bytes of an incomplete request have
   aged past the read timeout, or it connected and never sent anything.
   Quietly idle clients with a live subscription (or a clean request
   boundary) are fine — only half-open peers lose their slot. *)
let conn_stalled t conn ~now =
  let timeout = t.config.read_timeout_s in
  timeout > 0.
  &&
  let age = now -. conn.last_progress in
  match conn.mode with
  | Unknown -> age > timeout
  | Jsonl -> Buffer.length conn.line > 0 && age > timeout
  | Binary -> Proto.stalled conn.rdr ~now ~timeout

let reap_stalled t =
  let now = Clock.now_s () in
  List.iter
    (fun conn ->
      if conn_stalled t conn ~now then begin
        t.stalled_drops <- t.stalled_drops + 1;
        Metrics.incr t.m_stalled;
        drop_conn t conn
      end)
    t.conns

(* --- manifest ----------------------------------------------------- *)

let manifest_path t = Filename.concat t.config.dir "serve.manifest.json"

let write_manifest t =
  let c = t.config in
  let json =
    Json.Obj
      ([
         ("schema", Json.String "rumor-serve/1");
         ("host", Json.String c.host);
         ("port", Json.Int t.bound_port);
         ("queue_cap", Json.Int c.queue_cap);
         ("cache_cap", Json.Int c.cache_cap);
         ("chunk", Json.Int c.chunk);
         ("read_timeout_s", Json.Float c.read_timeout_s);
         ("uptime_s", Json.Float (Clock.now_s () -. t.started_at));
         ("requests", Json.Int t.requests);
         ("hits", Json.Int t.hits);
         ("misses", Json.Int t.misses);
         ("coalesced", Json.Int t.coalesced);
         ("shed", Json.Int t.shed);
         ("stalled_drops", Json.Int t.stalled_drops);
         ("errors", Json.Int t.errors);
         ("cache_size", Json.Int (Store.size t.store));
         ("evictions", Json.Int (Store.evictions t.store));
       ]
      @ Provenance.manifest_fields ())
  in
  Wal.write_atomic (manifest_path t) (Json.to_string ~pretty:true json ^ "\n")

(* --- main loop ---------------------------------------------------- *)

let serve t =
  let compute_domain = Domain.spawn (fun () -> compute_loop t) in
  let drain_wake () =
    let b = Bytes.create 64 in
    let rec go () =
      match Unix.read t.wake_r b 0 64 with
      | 64 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  while not (Atomic.get t.stopping) do
    let readable_want =
      t.listen_fd :: t.wake_r :: List.map (fun c -> c.fd) t.conns
    in
    let writable_want =
      List.filter_map
        (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
        t.conns
    in
    let readable, writable, _ =
      match Unix.select readable_want writable_want [] 0.2 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        match List.find_opt (fun c -> c.fd = fd) t.conns with
        | Some conn -> flush_out conn
        | None -> ())
      writable;
    List.iter
      (fun fd ->
        if fd = t.wake_r then drain_wake ()
        else if fd = t.listen_fd then begin
          match Unix.accept ~cloexec:true t.listen_fd with
          | conn_fd, _ ->
            Unix.set_nonblock conn_fd;
            Rumor_util.Net.tune_stream_socket conn_fd;
            t.conns <-
              {
                fd = conn_fd;
                mode = Unknown;
                rdr = Proto.reader ();
                line = Buffer.create 256;
                out = Buffer.create 256;
                last_progress = Clock.now_s ();
                subs = 0;
                closed = false;
              }
              :: t.conns
          | exception Unix.Unix_error _ -> ()
        end
        else
          match List.find_opt (fun c -> c.fd = fd) t.conns with
          | Some conn -> on_readable t conn
          | None -> ())
      readable;
    drain_events t;
    reap_stalled t;
    t.conns <- List.filter (fun c -> not c.closed) t.conns
  done;
  (* Drain: the compute domain notices [stopping] at its next chunk
     boundary and fails the in-flight job; its waiters get an explicit
     shutdown error rather than a silent hangup. *)
  Domain.join compute_domain;
  drain_events t;
  (* Jobs still queued (never started) get the same explicit error. *)
  Hashtbl.iter
    (fun _ job ->
      List.iter
        (fun w ->
          if not w.w_conn.closed then
            respond t w.w_conn (error_json "server shutting down"))
        job.j_waiters)
    t.inflight;
  Hashtbl.reset t.inflight;
  List.iter (fun c -> flush_out c) t.conns;
  List.iter (fun c -> drop_conn t c) t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  write_manifest t;
  Store.close t.store
