(** The spread-time query daemon: a single-threaded select loop plus
    one compute domain, answering {!Query} requests over TCP.

    {b Wire.}  One JSON document per request.  Two framings share the
    port, auto-detected per connection on its first byte: plain JSONL
    (['{'] or whitespace — one compact document per line, curl/netcat
    friendly) or the harness's 4-byte length-prefixed {!Proto} frames
    (any other first byte; a ['{'] prefix would imply a frame beyond
    [max_frame], so the detection is unambiguous).  Requests carry an
    optional ["op"]: ["query"] (default), ["ping"], ["stats"].  A
    query may set ["stream": true] to receive [{"k":"partial",...}]
    quantile updates as replicate chunks land.

    {b Caching.}  Completed sweeps live in the WAL-journaled {!Store}
    keyed by {!Query.key}; responses carry ["cache"] =
    ["hit"]/["miss"]/["coalesced"] and bit-identical quantiles in all
    three cases (decimal shortest-round-trip plus [%h] hex).

    {b Backpressure.}  Duplicate in-flight queries coalesce onto one
    job.  New work is admitted to a bounded queue; at capacity the
    request is shed immediately with [{"k":"overloaded",...}] — the
    queue never grows without bound and the client learns at once.

    {b Stalls.}  A connection holding bytes of an incomplete request
    (or silent since accept) longer than [read_timeout_s] is dropped
    and counted — a half-open client cannot pin a loop slot.

    Counters are authoritative plain fields (so [stats] and the
    manifest work even with {!Rumor_obs.Metrics} disabled) and are
    mirrored to [harness.serve.*] metrics; request latencies feed the
    [harness.serve.latency_s] histogram.  On shutdown ({!stop}, from
    any domain or a signal handler) the loop drains — in-flight
    waiters get an explicit shutdown error — and writes a
    [rumor-serve/1] manifest (config, counters, provenance) to
    [<dir>/serve.manifest.json]. *)

type config = {
  dir : string;  (** cache directory: journal, checkpoints, manifest *)
  host : string;  (** bind address: numeric or a resolvable hostname *)
  port : int;  (** 0 = ephemeral; see {!port} *)
  queue_cap : int;  (** admission-queue bound *)
  cache_cap : int;  (** LRU capacity *)
  jobs : int option;  (** sweep worker domains, [None] = pool default *)
  chunk : int;  (** replicates per compute chunk *)
  read_timeout_s : float;  (** stalled-connection drop; 0 disables *)
  throttle_s : float;  (** test hook: sleep before each chunk *)
  max_n : int;
  max_reps : int;  (** admission limits, rejected with an error *)
  fsync : bool;
}

val default_config : dir:string -> config
(** 127.0.0.1:ephemeral, queue 64, cache 512, chunk 8, 30 s read
    timeout, limits 65536 nodes / 10000 replicates. *)

type counters = {
  requests : int;
  hits : int;
  misses : int;
  coalesced : int;
  shed : int;
  stalled_drops : int;
  errors : int;
}

type t

val create : config -> t
(** Open the store, bind and listen.  Enables {!Rumor_obs.Metrics}.
    @raise Invalid_argument on a non-positive [queue_cap] or [chunk].
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The bound port (resolves an ephemeral request). *)

val serve : t -> unit
(** Run until {!stop}: spawns the compute domain, serves, then drains,
    writes the manifest and closes the store.  Call once. *)

val stop : t -> unit
(** Request shutdown; async-signal-safe (atomic flag + self-pipe). *)

val counters : t -> counters
