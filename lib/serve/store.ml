module Json = Rumor_obs.Json
module Wal = Rumor_harness.Wal

type entry = {
  query : Query.t;
  quantiles : float array;
  reps : int;
  finished : int;
  censored : int;
  failed : int;
  wall_s : float;
}

type slot = { entry : entry; mutable stamp : int }

type t = {
  dir : string;
  cap : int;
  fsync : bool;
  mutable wal : Wal.t;
  table : (string, slot) Hashtbl.t;
  mutable clock : int;  (* LRU stamp source; higher = fresher *)
  mutable evictions : int;
  mutable journal_total : int;  (* records in the WAL, live or not *)
}

let wal_path dir = Filename.concat dir "results.wal"

(* --- record codec ------------------------------------------------ *)

(* Floats ride as [%h] hex literals: the cache must hand back the
   replicate quantiles bit-for-bit, and a decimal round trip is a
   correctness question we simply never want to ask. *)
let hex_float f = Json.String (Printf.sprintf "%h" f)

let hex_floats l = Json.List (List.map hex_float l)

let of_hex_floats j =
  Option.bind (Json.to_list_opt j) (fun l ->
      List.fold_right
        (fun x acc ->
          match (acc, Option.bind (Json.to_string_opt x) float_of_string_opt) with
          | Some acc, Some f -> Some (f :: acc)
          | _ -> None)
        l (Some []))

let result_record fp e =
  Json.Obj
    [
      ("k", Json.String "result");
      ("fp", Json.String fp);
      ("reps", Json.Int e.reps);
      ("fin", Json.Int e.finished);
      ("cen", Json.Int e.censored);
      ("fail", Json.Int e.failed);
      ("wall", hex_float e.wall_s);
      ("qs", hex_floats (Array.to_list e.quantiles));
      ("query", Query.to_json e.query);
    ]

let evict_record fp =
  Json.Obj [ ("k", Json.String "evict"); ("fp", Json.String fp) ]

let entry_of_record j =
  let str f = Option.bind (Json.member f j) Json.to_string_opt in
  let int f = Option.bind (Json.member f j) Json.to_int_opt in
  let ( let* ) = Option.bind in
  let* fp = str "fp" in
  let* reps = int "reps" in
  let* finished = int "fin" in
  let* censored = int "cen" in
  let* failed = int "fail" in
  let* wall_s = Option.bind (str "wall") float_of_string_opt in
  let* qs = Option.bind (Json.member "qs" j) of_hex_floats in
  let* qj = Json.member "query" j in
  let* query = Result.to_option (Query.of_json qj) in
  Some
    ( fp,
      {
        query;
        quantiles = Array.of_list qs;
        reps;
        finished;
        censored;
        failed;
        wall_s;
      } )

(* --- replay / compaction ----------------------------------------- *)

let replay records =
  (* Later records win: a re-added fp after an evict is live again. *)
  let live = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun j ->
      match Option.bind (Json.member "k" j) Json.to_string_opt with
      | Some "result" -> (
        match entry_of_record j with
        | Some (fp, e) ->
          if not (Hashtbl.mem live fp) then order := fp :: !order;
          Hashtbl.replace live fp e
        | None -> ())
      | Some "evict" -> (
        match Option.bind (Json.member "fp" j) Json.to_string_opt with
        | Some fp ->
          Hashtbl.remove live fp;
          order := List.filter (fun f -> f <> fp) !order
        | None -> ())
      | _ -> ())
    records;
  (* [order] is newest-first insert order; oldest first for restamping. *)
  (live, List.rev !order)

let oldest t =
  Hashtbl.fold
    (fun fp slot acc ->
      match acc with
      | Some (_, stamp) when stamp <= slot.stamp -> acc
      | _ -> Some (fp, slot.stamp))
    t.table None

let compact t =
  let tmp = wal_path t.dir ^ ".compact" in
  if Sys.file_exists tmp then Sys.remove tmp;
  let fresh = Wal.open_ ~fsync:t.fsync tmp in
  (* Oldest first so replay order preserves LRU order. *)
  let slots =
    List.sort
      (fun (_, a) (_, b) -> compare a.stamp b.stamp)
      (Hashtbl.fold (fun fp slot acc -> (fp, slot) :: acc) t.table [])
  in
  List.iter (fun (fp, slot) -> Wal.append fresh (result_record fp slot.entry)) slots;
  Wal.close fresh;
  Wal.close t.wal;
  Sys.rename tmp (wal_path t.dir);
  Rumor_util.Fsutil.fsync_dir t.dir;
  t.wal <- Wal.open_ ~fsync:t.fsync (wal_path t.dir);
  t.journal_total <- List.length slots

let maybe_compact t =
  let live = Hashtbl.length t.table in
  if t.journal_total > 64 && live * 2 < t.journal_total then compact t

let evict_one t =
  match oldest t with
  | None -> ()
  | Some (fp, _) ->
    Hashtbl.remove t.table fp;
    Wal.append t.wal (evict_record fp);
    t.journal_total <- t.journal_total + 1;
    t.evictions <- t.evictions + 1

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?(fsync = true) ?(cap = 512) ~dir () =
  if cap < 1 then invalid_arg "Store.open_: cap must be >= 1";
  mkdir_p dir;
  let wal = Wal.open_ ~fsync (wal_path dir) in
  let recovery = Wal.recovery wal in
  let live, order = replay recovery.Wal.records in
  let t =
    {
      dir;
      cap;
      fsync;
      wal;
      table = Hashtbl.create 64;
      clock = 0;
      evictions = 0;
      journal_total = List.length recovery.Wal.records;
    }
  in
  List.iter
    (fun fp ->
      match Hashtbl.find_opt live fp with
      | Some e ->
        t.clock <- t.clock + 1;
        Hashtbl.replace t.table fp { entry = e; stamp = t.clock }
      | None -> ())
    order;
  while Hashtbl.length t.table > t.cap do
    evict_one t
  done;
  (* A quarantined tail means lost records; rewrite a clean journal. *)
  if recovery.Wal.corrupt_records > 0 then compact t else maybe_compact t;
  t

let find t fp =
  match Hashtbl.find_opt t.table fp with
  | None -> None
  | Some slot ->
    t.clock <- t.clock + 1;
    slot.stamp <- t.clock;
    Some slot.entry

let add t fp entry =
  if not (Hashtbl.mem t.table fp) then begin
    while Hashtbl.length t.table >= t.cap do
      evict_one t
    done;
    t.clock <- t.clock + 1;
    Hashtbl.replace t.table fp { entry; stamp = t.clock };
    Wal.append t.wal (result_record fp entry);
    t.journal_total <- t.journal_total + 1;
    maybe_compact t
  end

let size t = Hashtbl.length t.table
let evictions t = t.evictions
let close t = Wal.close t.wal
