(** Chunked, work-stealing-free Domain pool for Monte-Carlo replicates.

    The pool runs [n] indexed tasks on up to [jobs] OCaml 5 domains.
    Task [i] is assigned to a domain by a {e static} contiguous-chunk
    partition (domain [d] of [j] runs indices [d*n/j .. (d+1)*n/j - 1]),
    so the mapping from task index to domain is a pure function of
    [(n, jobs)] — no queues, no stealing, no scheduling nondeterminism.
    Callers that key each task's randomness by its index (see
    {!Rumor_rng.Rng.derive}) therefore produce bit-identical results
    for {e any} job count, including [jobs = 1], which degrades to a
    plain in-order loop on the calling domain with no spawns at all.

    Job-count resolution, in priority order:
    + the explicit [?jobs] argument;
    + the process-wide override ({!set_default_jobs}, wired to the
      CLI's [--jobs] flag);
    + the [RUMOR_JOBS] environment variable;
    + the detected processor count ({!nproc}).

    Pools must not be nested: a task body spawning another pool would
    multiply domains past the hardware. The Monte-Carlo runners are the
    only intended call sites. *)

type stats = {
  jobs : int;  (** domains actually used (after clamping to [n]) *)
  tasks : int;  (** [n], the task count *)
  chunk : int array;
      (** tasks assigned per domain, length [jobs] (all of them
          executed unless the run was cancelled) *)
  wall_s : float array;
      (** per-domain busy wall time, length [jobs] — recorded into run
          manifests so parallel efficiency is observable per run *)
  cancelled : bool;
      (** [true] iff a cancellation token stopped at least one domain
          before it exhausted its chunk *)
}

(** {1 Cooperative cancellation} *)

type token
(** A one-way stop flag shared between a supervisor and the pools it
    oversees.

    {b Guarantee} — tokens are polled {e between} tasks only: when a
    token is cancelled, every domain finishes the task it is currently
    executing (nothing is interrupted mid-replicate, so no partial
    outcome is ever observed), starts no further task, and joins; [run]
    then returns normally with [stats.cancelled = true].  Tasks that
    never started are simply not executed — callers that record
    per-task outcomes see them as undecided and can re-run them later
    (the index-keyed RNG streams make the re-run bit-identical).
    Cancelling is safe from any domain and from a signal handler (one
    atomic store, no allocation). *)

val token : unit -> token

val cancel : token -> unit

val is_cancelled : token -> bool

val reset : token -> unit
(** Re-arm a cancelled token (for reuse across supervised campaigns in
    one process; not synchronized with in-flight pools — only reset
    between runs). *)

val global : token
(** Process-wide token polled by {e every} [run] in addition to the
    explicit [?cancel] argument.  The campaign harness's SIGINT/SIGTERM
    handlers cancel it, so a shutdown request drains every pool in the
    process — including pools buried inside experiment code that was
    never told about cancellation.  The handlers are idempotent on this
    token: a second signal finds it already cancelled and hard-exits
    the process (status 130) rather than re-entering the drain — see
    {!Rumor_harness.Campaign.install_signal_handlers}. *)

val nproc : unit -> int
(** Detected processor count ([Domain.recommended_domain_count]). *)

val set_default_jobs : int option -> unit
(** Install (or with [None] clear) the process-wide job-count override;
    takes precedence over [RUMOR_JOBS] and {!nproc}.  The CLI's
    [--jobs] flag lands here, so every runner an invocation touches
    inherits it.
    @raise Invalid_argument if the value is [< 1]. *)

val default_jobs : unit -> int
(** The job count used when no explicit [?jobs] is given: the
    {!set_default_jobs} override, else [RUMOR_JOBS] (values [< 1] are
    ignored), else {!nproc}. *)

val resolve : ?jobs:int -> int -> int
(** [resolve ?jobs n] is the domain count a pool over [n] tasks will
    use: [jobs] (default {!default_jobs}) clamped to [n], and at least
    [1].  Exposed so callers can size per-domain state (metric shards)
    before calling {!run}.
    @raise Invalid_argument if [jobs < 1]. *)

val run :
  ?jobs:int -> ?cancel:token -> int -> (domain:int -> int -> unit) -> stats
(** [run ?jobs n body] executes [body ~domain i] for every
    [i] in [0..n-1], partitioned into contiguous chunks across
    [resolve ?jobs n] domains.  [domain] is the executing domain's
    pool-local index in [0..jobs-1] (use it to select per-domain
    state; within one domain, tasks run in increasing index order).

    [cancel] (plus the always-polled {!global} token) stops the pool
    cooperatively between tasks — see {!type:token} for the drain
    guarantee.

    {b Exception policy} — exceptions are isolated per domain: a
    raising task stops only its own domain's chunk; every spawned
    domain is always joined before [run] returns; and the recorded
    exception of the {e lowest-indexed} failing domain is re-raised
    once all domains are accounted for (deterministic choice, so a
    multi-domain failure reproduces the [jobs = 1] exception whenever
    domain 0's chunk contains the first raising task).

    @raise Invalid_argument if [n < 0] or [jobs < 1]. *)

val last : unit -> stats option
(** The {!stats} of the most recently completed [run] in this process,
    for manifest enrichment after the fact.  Updated even when [run]
    re-raises a task exception. *)
