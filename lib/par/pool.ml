module Env = Rumor_util.Env
module Obs = Rumor_obs

(* Telemetry (lib/obs): pool usage per process.  Deliberately no
   job-count gauge here — the registry snapshot must stay
   byte-identical for any [jobs] (the runners' determinism contract);
   the actual parallelism of a run is recorded in its manifest from
   {!last}. *)
let m_runs = Obs.Metrics.counter "par.runs"
let m_tasks = Obs.Metrics.counter "par.tasks"

type stats = {
  jobs : int;
  tasks : int;
  chunk : int array;
  wall_s : float array;
  cancelled : bool;
}

(* Cooperative cancellation: a token is a one-way-settable flag the
   chunk loops poll between tasks.  Cancelling never interrupts the
   task in flight — it only stops further tasks from starting — so a
   cancelled pool still drains cleanly and [run] still returns stats.
   [global] is additionally polled by every pool in the process; the
   harness's signal handlers cancel it for graceful shutdown. *)
type token = bool Atomic.t

let token () = Atomic.make false

let cancel t = Atomic.set t true

let is_cancelled t = Atomic.get t

let reset t = Atomic.set t false

let global : token = token ()

let nproc () = Domain.recommended_domain_count ()

let override : int option Atomic.t = Atomic.make None

let set_default_jobs = function
  | Some j when j < 1 ->
    invalid_arg "Par.Pool.set_default_jobs: jobs must be at least 1"
  | v -> Atomic.set override v

let default_jobs () =
  match Atomic.get override with
  | Some j -> j
  | None ->
    let j = Env.int ~default:(nproc ()) "RUMOR_JOBS" in
    if j < 1 then nproc () else j

let resolve ?jobs n =
  let j =
    match jobs with
    | Some j ->
      if j < 1 then invalid_arg "Par.Pool: jobs must be at least 1" else j
    | None -> default_jobs ()
  in
  max 1 (min j n)

(* Balanced contiguous chunks: domain d of j over n tasks owns
   [d*n/j, (d+1)*n/j) — sizes differ by at most one, and the index ->
   domain map depends only on (n, j). *)
let chunk_bounds ~jobs ~n d = (d * n / jobs, (d + 1) * n / jobs)

let last_stats : stats option Atomic.t = Atomic.make None

let last () = Atomic.get last_stats

let run ?jobs ?cancel n body =
  if n < 0 then invalid_arg "Par.Pool.run: negative task count";
  let jobs = resolve ?jobs n in
  let wall = Array.make jobs 0. in
  (* Polled between tasks only — one or two atomic loads per task, and
     never mid-task, so a cancelled pool drains its in-flight work. *)
  let stop () =
    Atomic.get global
    || (match cancel with Some t -> Atomic.get t | None -> false)
  in
  let was_cancelled = Atomic.make false in
  let exec d =
    let t0 = Obs.Clock.now_s () in
    Fun.protect
      ~finally:(fun () -> wall.(d) <- Obs.Clock.now_s () -. t0)
      (fun () ->
        let lo, hi = chunk_bounds ~jobs ~n d in
        let i = ref lo in
        while !i < hi && not (stop ()) do
          body ~domain:d !i;
          incr i
        done;
        if !i < hi then Atomic.set was_cancelled true)
  in
  (* The lowest failing domain index wins, whatever the arrival order,
     so the re-raised exception is deterministic. *)
  let failure : (int * exn) option Atomic.t = Atomic.make None in
  let note d e =
    let rec loop () =
      match Atomic.get failure with
      | Some (d', _) when d' <= d -> ()
      | cur ->
        if not (Atomic.compare_and_set failure cur (Some (d, e))) then loop ()
    in
    loop ()
  in
  if jobs = 1 then (match exec 0 with () -> () | exception e -> note 0 e)
  else begin
    let workers =
      Array.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              match exec (i + 1) with
              | () -> ()
              | exception e -> note (i + 1) e))
    in
    (* Every spawned domain is joined even if the main chunk raises
       something fatal outside [exec] (it cannot: [exec] catches). *)
    Fun.protect
      ~finally:(fun () -> Array.iter Domain.join workers)
      (fun () -> match exec 0 with () -> () | exception e -> note 0 e)
  end;
  let chunk =
    Array.init jobs (fun d ->
        let lo, hi = chunk_bounds ~jobs ~n d in
        hi - lo)
  in
  let st =
    {
      jobs;
      tasks = n;
      chunk;
      wall_s = wall;
      cancelled = Atomic.get was_cancelled;
    }
  in
  Atomic.set last_stats (Some st);
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_tasks n;
  match Atomic.get failure with Some (_, e) -> raise e | None -> st
