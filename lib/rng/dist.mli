(** Random variates for the distributions the paper's analysis lives on.

    Exponential clocks drive the asynchronous protocol (Definition 1),
    non-homogeneous Poisson counts drive the upper-bound proofs
    (Theorem 2.1), and geometric phases appear in the dynamic-star
    analysis (Lemmas 6.1/6.2). *)

val exponential : Rng.t -> rate:float -> float
(** [exponential t ~rate] draws [Exp(rate)] by inversion.
    @raise Invalid_argument if [rate <= 0]. *)

val poisson : Rng.t -> rate:float -> int
(** [poisson t ~rate] draws a Poisson variate.  Uses Knuth
    multiplication for small rates and the PTRS transformed-rejection
    sampler (Hörmann, 1993) for [rate >= 10].
    @raise Invalid_argument if [rate < 0]. *)

val geometric : Rng.t -> p:float -> int
(** [geometric t ~p] is the number of Bernoulli(p) trials up to and
    including the first success (support [{1, 2, ...}]).
    @raise Invalid_argument unless [0 < p <= 1]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Sum of [n] Bernoulli(p); O(n) exact sampling (sufficient for the
    sizes used here). @raise Invalid_argument if [n < 0] or [p] is
    outside [[0, 1]]. *)

val uniform_float : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [[lo, hi)]. @raise Invalid_argument if [hi < lo]. *)

(** {1 Poisson-process helpers} *)

val poisson_process_count : Rng.t -> rate:float -> horizon:float -> int
(** Number of arrivals of a homogeneous Poisson process of [rate] in
    [[0, horizon)], sampled directly as a Poisson variate. *)

val nonhomogeneous_count :
  Rng.t -> rate_at:(float -> float) -> a:float -> b:float -> steps:int -> int
(** Arrivals of a non-homogeneous Poisson process on [[a, b)] whose
    rate function is integrated numerically with [steps] midpoint
    slices (Theorem 2.1: the count is Poisson with the integrated
    rate).  Used in tests to cross-check the simulators. *)
