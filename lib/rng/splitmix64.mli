(** SplitMix64 pseudo-random generator (Steele, Lea & Flood, 2014).

    A tiny, fast, well-tested 64-bit generator with a trivially
    splittable state.  We use it (a) to seed {!Xoshiro256} and (b) as
    the source of independent child seeds for parallel Monte-Carlo
    runs.  Outputs match the reference C implementation bit for bit
    (see the known-answer tests in [test/test_rng.ml]). *)

type t

val create : int64 -> t
(** [create seed] starts a stream at [seed]. *)

val next : t -> int64
(** Next raw 64-bit output; advances the state. *)

val split : t -> t
(** A child generator whose stream is (for all practical purposes)
    independent of the parent's subsequent outputs. *)
