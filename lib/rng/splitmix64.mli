(** SplitMix64 pseudo-random generator (Steele, Lea & Flood, 2014).

    A tiny, fast, well-tested 64-bit generator with a trivially
    splittable state.  We use it (a) to seed {!Xoshiro256} and (b) as
    the source of independent child seeds for parallel Monte-Carlo
    runs.  Outputs match the reference C implementation bit for bit
    (see the known-answer tests in [test/test_rng.ml]). *)

type t

val create : int64 -> t
(** [create seed] starts a stream at [seed]. *)

val next : t -> int64
(** Next raw 64-bit output; advances the state. *)

val split : t -> t
(** A child generator whose stream is (for all practical purposes)
    independent of the parent's subsequent outputs. *)

val golden_gamma : int64
(** The Weyl-sequence increment [0x9E3779B97F4A7C15] (2^64 / phi).
    Exposed so that indexed derivation ({!Rumor_rng.Rng.derive}) can
    compute the [i]-th split of a base seed in O(1): the [i]-th
    sequential output of [create base] is [mix (base + (i+1) *
    golden_gamma)]. *)

val mix : int64 -> int64
(** The reference SplitMix64 finalizer: a bijective avalanche mix of
    one 64-bit word.  [mix (base + (i+1) * golden_gamma)] is the
    [i]-th output of the stream started at [base]. *)
