(** xoshiro256** 1.0 (Blackman & Vigna, 2018).

    The workhorse generator behind {!Rng}: 256-bit state, period
    [2^256 - 1], excellent statistical quality, and a [jump] function
    giving [2^128] non-overlapping subsequences for independent
    streams.  Outputs match the reference C implementation. *)

type t

val of_seed : int64 -> t
(** Seed the 256-bit state from a 64-bit seed via SplitMix64, as
    recommended by the authors. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val jump : t -> unit
(** Advance the state by [2^128] steps in place. *)

val copy : t -> t
